// HTAP: the paper's motivating scenario (Figures 1 and 12). An
// S/4HANA-style OLTP query — primary-key lookup on a wide ACDOCA-like
// table followed by a projection through large NVARCHAR dictionaries —
// shares the machine with an analytical column scan. Cache
// partitioning protects the OLTP query's dictionaries from the scan's
// pollution.
package main

import (
	"fmt"
	"log"

	"cachepart"
)

func main() {
	params := cachepart.FastParams()
	params.Cores = 22

	sys, err := cachepart.NewSystem(params)
	if err != nil {
		log.Fatal(err)
	}

	// The ACDOCA model: five primary-key columns with an inverted
	// index, 13 big-dictionary projection columns.
	acdoca, err := cachepart.NewACDOCA(sys, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	scan, err := cachepart.NewScanQuery(sys)
	if err != nil {
		log.Fatal(err)
	}

	// The OLAP scan takes most of the machine; the OLTP query runs in
	// a small dedicated pool, as the engine does (Section V-C).
	all := sys.AllCores()
	olapCores, oltpCores := all[:len(all)-2], all[len(all)-2:]

	fmt.Println("projected columns | OLTP vs isolated:  shared   partitioned   gain")
	for _, cols := range []int{2, 6, 13} {
		oltp, err := cachepart.NewOLTPQuery(acdoca, cols)
		if err != nil {
			log.Fatal(err)
		}

		if err := sys.SetPartitioning(false); err != nil {
			log.Fatal(err)
		}
		alone, err := sys.RunIsolated(oltp, oltpCores)
		if err != nil {
			log.Fatal(err)
		}
		_, shared, err := sys.RunPair(scan, olapCores, oltp, oltpCores)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SetPartitioning(true); err != nil {
			log.Fatal(err)
		}
		_, part, err := sys.RunPair(scan, olapCores, oltp, oltpCores)
		if err != nil {
			log.Fatal(err)
		}

		sh := shared.Throughput / alone.Throughput
		pt := part.Throughput / alone.Throughput
		fmt.Printf("%17d | %26.1f%% %12.1f%% %+6.1f%%\n",
			cols, 100*sh, 100*pt, 100*(pt-sh))
	}

	fmt.Println("\nThe wider the projection, the more dictionaries must stay cached,")
	fmt.Println("and the more the OLTP query gains from restricting the scan to 10%.")
}
