// TPC-H co-run: the Figure 11 scenario on a subset of queries. Each
// TPC-H pipeline runs concurrently with a polluting column scan; cache
// partitioning restricts the scan to 10% of the LLC while the TPC-H
// query keeps all of it. Queries that aggregate through large
// dictionaries (Q1, Q7) profit; scan-bound queries (Q6) do not — and
// none regress.
package main

import (
	"fmt"
	"log"

	"cachepart"
)

func main() {
	params := cachepart.FastParams()
	params.Cores = 22
	params.RowsAgg = 1 << 19 // lineitem sample

	sys, err := cachepart.NewSystem(params)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cachepart.NewTPCH(sys)
	if err != nil {
		log.Fatal(err)
	}
	scan, err := cachepart.NewScanQuery(sys)
	if err != nil {
		log.Fatal(err)
	}
	scanCores, tpchCores := sys.SplitCores()

	fmt.Println("query | co-run throughput vs isolated:  shared  partitioned    gain")
	for _, n := range []int{1, 3, 6, 7, 9, 12, 18} {
		q, err := cachepart.NewTPCHQuery(sys, db, n)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SetPartitioning(false); err != nil {
			log.Fatal(err)
		}
		alone, err := sys.RunIsolated(q, tpchCores)
		if err != nil {
			log.Fatal(err)
		}
		_, shared, err := sys.RunPair(scan, scanCores, q, tpchCores)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SetPartitioning(true); err != nil {
			log.Fatal(err)
		}
		_, part, err := sys.RunPair(scan, scanCores, q, tpchCores)
		if err != nil {
			log.Fatal(err)
		}
		sh := shared.Throughput / alone.Throughput
		pt := part.Throughput / alone.Throughput
		fmt.Printf("  Q%-2d | %31.1f%% %12.1f%% %+7.1f%%\n", n, 100*sh, 100*pt, 100*(pt-sh))
	}
}
