// Quickstart: build the paper's machine at 1/32 scale, run the column
// scan and a grouped aggregation concurrently, and watch what cache
// partitioning does to both — the 60-second version of the paper.
package main

import (
	"fmt"
	"log"

	"cachepart"
)

func main() {
	params := cachepart.FastParams()
	params.Cores = 22

	sys, err := cachepart.NewSystem(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %d cores, %.1f MiB LLC (scale 1/%d of the paper's Xeon)\n\n",
		sys.Machine.Cores(), float64(sys.LLCBytes())/(1<<20), params.Scale)

	// Query 1: SELECT COUNT(*) FROM A WHERE A.X > ?  — a polluting scan.
	scan, err := cachepart.NewScanQuery(sys)
	if err != nil {
		log.Fatal(err)
	}
	// Query 2: SELECT MAX(B.V), B.G FROM B GROUP BY B.G — with the
	// paper's 40 MiB dictionary and 10^5 groups, squarely in the
	// cache-sensitive regime.
	agg, err := cachepart.NewAggQuery(sys, 10_000_000, 100_000)
	if err != nil {
		log.Fatal(err)
	}

	scanCores, aggCores := sys.SplitCores()

	// Baselines: each query alone on its half of the machine.
	scanAlone, err := sys.RunIsolated(scan, scanCores)
	if err != nil {
		log.Fatal(err)
	}
	aggAlone, err := sys.RunIsolated(agg, aggCores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolated:     scan %6.1f GB/s | aggregation %5.1f M rows/s (LLC hit ratio %.2f)\n",
		scanAlone.Bandwidth/1e9, aggAlone.Throughput/1e6, aggAlone.HitRatio)

	// Concurrent, sharing the LLC freely: the scan evicts the
	// aggregation's dictionary and hash tables.
	report := func(label string, s, a cachepart.Measure) {
		fmt.Printf("%-13s scan %6.1f%% | aggregation %6.1f%% of isolated (LLC hit ratio %.2f)\n",
			label,
			100*s.Throughput/scanAlone.Throughput,
			100*a.Throughput/aggAlone.Throughput,
			a.HitRatio)
	}
	s, a, err := sys.RunPair(scan, scanCores, agg, aggCores)
	if err != nil {
		log.Fatal(err)
	}
	report("concurrent:", s, a)

	// Concurrent with the paper's scheme: the engine moves the scan's
	// job workers into a resctrl group masked to 10% of the LLC.
	if err := sys.SetPartitioning(true); err != nil {
		log.Fatal(err)
	}
	s, a, err = sys.RunPair(scan, scanCores, agg, aggCores)
	if err != nil {
		log.Fatal(err)
	}
	report("partitioned:", s, a)

	fmt.Printf("\nscheme: polluting jobs get mask %v, sensitive jobs %v\n",
		sys.Engine.Policy().MaskFor(cachepart.Polluting, cachepart.Footprint{}),
		sys.Engine.Policy().MaskFor(cachepart.Sensitive, cachepart.Footprint{}))
	fmt.Printf("mask writes performed by the engine: %d (redundant writes elided)\n",
		sys.Engine.MaskWrites())
}
