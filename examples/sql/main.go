// SQL: the paper's benchmarks exactly as written. This example creates
// the Figure 3 schemata with DDL, bulk-loads scaled versions of the
// Figure 2 data sets, plans the three SQL queries — the planner
// annotates each with its cache usage identifier — and co-runs the
// scan against the aggregation with cache partitioning on and off.
package main

import (
	"fmt"
	"log"

	"cachepart"
)

func main() {
	params := cachepart.FastParams()
	params.Cores = 22

	sys, err := cachepart.NewSystem(params)
	if err != nil {
		log.Fatal(err)
	}
	cat := cachepart.NewCatalog(sys)

	// Figure 3, verbatim.
	for _, ddl := range []string{
		"CREATE COLUMN TABLE A( X INT );",
		"CREATE COLUMN TABLE B( V INT, G INT );",
		"CREATE COLUMN TABLE R( P INT, PRIMARY KEY(P));",
		"CREATE COLUMN TABLE S( F INT );",
	} {
		if err := cat.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}

	// The paper's data sets, scaled like the machine: uniform values,
	// 10^6-distinct scan column, 40 MiB-dictionary aggregation column
	// with 10^4 groups, 10^8-key join.
	scale := int64(params.Scale)
	rows := 1 << 20
	keyRows := int(100_000_000 / scale)
	loads := []struct {
		table   string
		rows    int
		domains map[string][2]int64
	}{
		{"A", rows, map[string][2]int64{"X": {1, 1_000_000 / scale}}},
		{"B", rows, map[string][2]int64{
			"V": {1, 10_000_000 / scale},
			"G": {1, 10_000 / scale},
		}},
		{"R", keyRows, map[string][2]int64{"P": {1, int64(keyRows)}}},
		{"S", rows, map[string][2]int64{"F": {1, int64(keyRows)}}},
	}
	for _, l := range loads {
		if err := cat.BulkUniform(sys.Rng, l.table, l.rows, l.domains); err != nil {
			log.Fatal(err)
		}
	}

	// Figure 2, verbatim.
	queries := []string{
		"SELECT COUNT(*) FROM A WHERE A.X > ?;",
		"SELECT MAX(B.V), B.G FROM B GROUP BY B.G;",
		"SELECT COUNT(*) FROM R, S WHERE R.P = S.F;",
	}
	plans := make([]*cachepart.Plan, len(queries))
	for i, q := range queries {
		p, err := cachepart.PlanQuery(cat, q)
		if err != nil {
			log.Fatal(err)
		}
		plans[i] = p
		fmt.Printf("Query %d plans as %-15s  cache-usage class: %v\n", i+1, p.Kind, p.CUID())
	}

	// Synchronous execution returns real results.
	if err := cachepart.ExecutePlan(sys, plans[2], 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery 3 result: COUNT(*) = %d (every foreign key matches)\n\n", plans[2].Count())

	// Co-run Query 1 (scan) against Query 2 (aggregation) through the
	// engine, with and without the paper's partitioning scheme.
	scanCores, aggCores := sys.SplitCores()
	aggAlone, err := sys.RunIsolated(plans[1], aggCores)
	if err != nil {
		log.Fatal(err)
	}
	for _, enabled := range []bool{false, true} {
		if err := sys.SetPartitioning(enabled); err != nil {
			log.Fatal(err)
		}
		_, agg, err := sys.RunPair(plans[0], scanCores, plans[1], aggCores)
		if err != nil {
			log.Fatal(err)
		}
		mode := "shared LLC"
		if enabled {
			mode = "scan masked to 10%"
		}
		fmt.Printf("Query 2 concurrent to Query 1 (%-18s): %5.1f%% of isolated, hit ratio %.2f\n",
			mode, 100*agg.Throughput/aggAlone.Throughput, agg.HitRatio)
	}
}
