// Scheme derivation: Section V-B as code. Instead of hand-reading the
// micro-benchmark plots, measure each operator's LLC-size sweep on the
// simulated machine, classify it (polluting / sensitive / depends),
// and derive the partitioning policy automatically.
package main

import (
	"fmt"
	"log"

	"cachepart"
)

func main() {
	params := cachepart.FastParams()
	params.Cores = 22
	params.Ways = []int{2, 4, 8, 12, 16, 20}

	sys, err := cachepart.NewSystem(params)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep each operator across LLC sizes, as Section IV does.
	sweep := func(q cachepart.Query) []cachepart.CurvePoint {
		var pts []cachepart.CurvePoint
		var best float64
		for _, w := range params.Ways {
			if err := sys.Engine.LimitWays(w); err != nil {
				log.Fatal(err)
			}
			m, err := sys.RunIsolated(q, sys.AllCores())
			if err != nil {
				log.Fatal(err)
			}
			pts = append(pts, cachepart.CurvePoint{Ways: w, Throughput: m.Throughput})
			if m.Throughput > best {
				best = m.Throughput
			}
		}
		if err := sys.Engine.LimitWays(0); err != nil {
			log.Fatal(err)
		}
		for i := range pts {
			pts[i].Throughput /= best
		}
		return pts
	}

	scan, err := cachepart.NewScanQuery(sys)
	if err != nil {
		log.Fatal(err)
	}
	agg, err := cachepart.NewAggQuery(sys, 10_000_000, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	join, err := cachepart.NewJoinQuery(sys, 100_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep in a fixed order so the simulated runs and the printed
	// report are identical across invocations.
	operators := []struct {
		name string
		q    cachepart.Query
	}{
		{"column scan", scan},
		{"aggregation", agg},
		{"foreign-key join", join},
	}
	curves := map[string][]cachepart.CurvePoint{}
	for _, op := range operators {
		curves[op.name] = sweep(op.q)
	}

	fmt.Println("operator classification from measured curves:")
	var pollutingCurves [][]cachepart.CurvePoint
	for _, name := range []string{"column scan", "aggregation", "foreign-key join"} {
		cuid, err := cachepart.ClassifyCurve(curves[name], 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-17s -> %v   (norm. throughput at 2/20 ways: %.2f / %.2f)\n",
			name, cuid, curves[name][0].Throughput, curves[name][len(curves[name])-1].Throughput)
		if cuid == cachepart.Polluting {
			pollutingCurves = append(pollutingCurves, curves[name])
		}
	}

	policy, err := cachepart.DeriveScheme(uint64(sys.LLCBytes()), 20, pollutingCurves)
	if err != nil {
		log.Fatal(err)
	}
	policy.Enabled = true
	fmt.Printf("\nderived scheme:\n")
	fmt.Printf("  polluting jobs  -> %v\n", policy.MaskFor(cachepart.Polluting, cachepart.Footprint{}))
	fmt.Printf("  sensitive jobs  -> %v\n", policy.MaskFor(cachepart.Sensitive, cachepart.Footprint{}))
	fmt.Printf("  join, small bit vector      -> %v\n",
		policy.MaskFor(cachepart.Depends, cachepart.Footprint{BitVectorBytes: 125_000}))
	fmt.Printf("  join, LLC-comparable vector -> %v\n",
		policy.MaskFor(cachepart.Depends, cachepart.Footprint{BitVectorBytes: uint64(sys.LLCBytes() / 4)}))
}
