// Command cachepart regenerates the paper's tables and figures on the
// simulated machine. Each subcommand runs one experiment and prints
// the series the paper plots.
//
// Usage:
//
//	cachepart [flags] <fig1|fig4|fig5|fig6|fig9|fig10|fig11|fig12|proj|derive|cosched|adapt|chaos|all>
//
// Flags tune the machine scale, core count and the simulated
// measurement window; see -help.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cachepart/internal/core"
	"cachepart/internal/harness"
	"cachepart/internal/resctrl"
)

func main() {
	var (
		fast     = flag.Bool("fast", false, "use 1/32-scale test parameters")
		scale    = flag.Int("scale", 0, "divide the paper machine's sizes by this factor (default 8, or 32 with -fast)")
		cores    = flag.Int("cores", 0, "simulated physical cores (default 22)")
		duration = flag.Float64("duration", 0, "simulated seconds per measurement (default 0.008)")
		rows     = flag.Int("rows", 0, "sampled rows per aggregation/join input (default ~2M)")
		scanRows = flag.Int("scanrows", 0, "rows of the scan column (default ~33M; must exceed the scaled LLC several times)")
		ways     = flag.String("ways", "", "comma-separated LLC way limits to sweep (default 2,4,...,20)")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Bool("parallel", false, "simulate private cache levels on parallel host goroutines (deterministic; DESIGN.md §11)")
		workers  = flag.Int("workers", 0, "host goroutines for -parallel (default GOMAXPROCS)")
		epoch    = flag.Int64("epochticks", 0, "virtual-time lookahead between parallel merge barriers (default 65536)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cachepart [flags] <fig1|fig4|fig5|fig6|fig9|fig10|fig11|fig12|proj|derive|cosched|adapt|chaos|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	p := harness.Default()
	if *fast {
		p = harness.Fast()
		p.Cores = 22
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *cores > 0 {
		p.Cores = *cores
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	if *rows > 0 {
		p.RowsAgg = *rows
		p.RowsProbe = *rows
	}
	if *scanRows > 0 {
		p.RowsScan = *scanRows
	}
	if *ways != "" {
		p.Ways = nil
		for _, field := range strings.Split(*ways, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || w < 1 || w > 20 {
				fmt.Fprintf(os.Stderr, "cachepart: bad -ways entry %q\n", field)
				os.Exit(2)
			}
			p.Ways = append(p.Ways, w)
		}
	}
	p.Seed = *seed
	p.Parallel = *parallel
	p.Workers = *workers
	p.EpochTicks = *epoch

	cmd := flag.Arg(0)
	t0 := time.Now() //lint:allow nondet operator-facing progress timing, not simulation state
	var err error
	switch cmd {
	case "fig1":
		err = runFig1(p)
	case "fig4":
		err = runFig4(p)
	case "fig5":
		err = runFig5(p)
	case "fig6":
		err = runFig6(p)
	case "fig9":
		err = runFig9(p)
	case "fig10":
		err = runFig10(p)
	case "fig11":
		err = runFig11(p)
	case "fig12":
		err = runFig12(p)
	case "proj":
		err = runProj(p)
	case "derive":
		err = runDerive(p)
	case "cosched":
		err = runCoSched(p)
	case "adapt":
		err = runAdapt(p)
	case "chaos":
		err = runChaos(p)
	case "all":
		for _, f := range []func(harness.Params) error{
			runFig4, runFig5, runFig6, runFig9, runFig10, runFig11, runFig12, runFig1, runProj, runDerive, runCoSched, runAdapt, runChaos,
		} {
			if err = f(p); err != nil {
				break
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cachepart: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(t0) //lint:allow nondet operator-facing progress timing, not simulation state
	fmt.Printf("(%s, scale 1/%d, %d cores, %.0f ms windows, completed in %.1fs)\n",
		cmd, p.Scale, p.Cores, p.Duration*1e3, elapsed.Seconds())
}

func runFig1(p harness.Params) error {
	r, err := harness.Fig1(p)
	if err != nil {
		return err
	}
	harness.PrintFig1(os.Stdout, r)
	return nil
}

func runFig4(p harness.Params) error {
	pts, err := harness.Fig4(p)
	if err != nil {
		return err
	}
	harness.PrintWayPoints(os.Stdout, "Figure 4 — column scan vs. LLC size (expect: flat)", pts)
	return nil
}

func runFig5(p harness.Params) error {
	sets, err := harness.Fig5(p)
	if err != nil {
		return err
	}
	harness.PrintCurveSets(os.Stdout, "Figure 5 — aggregation vs. LLC size (expect: knees where hash table ≈ LLC)", sets)
	return nil
}

func runFig6(p harness.Params) error {
	series, err := harness.Fig6(p)
	if err != nil {
		return err
	}
	harness.PrintGroupSeries(os.Stdout, "Figure 6 — foreign-key join vs. LLC size (expect: only P=1e8 sensitive)", series)
	return nil
}

func runFig9(p harness.Params) error {
	panels, err := harness.Fig9(p)
	if err != nil {
		return err
	}
	for _, panel := range panels {
		harness.PrintPairRows(os.Stdout,
			"Figure 9 — scan ∥ aggregation, "+panel.Label+" (A=scan, B=aggregation)", panel.Rows)
	}
	return nil
}

func runFig10(p harness.Params) error {
	rows, err := harness.Fig10(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Figure 10 — aggregation ∥ join under join→10% and join→60% schemes (A=aggregation, B=join)", rows)
	return nil
}

func runFig11(p harness.Params) error {
	rows, err := harness.Fig11(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Figure 11 — column scan ∥ TPC-H queries (A=scan, B=TPC-H; expect Q1/Q7/Q8/Q9 to gain most)", rows)
	return nil
}

func runFig12(p harness.Params) error {
	rows, err := harness.Fig12(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Figure 12 — column scan ∥ S/4HANA OLTP query (A=scan, B=OLTP)", rows)
	return nil
}

func runProj(p harness.Params) error {
	rows, err := harness.FigProjSweep(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Section VI-E sweep — OLTP benefit vs. projected columns (A=scan, B=OLTP)", rows)
	return nil
}

// runAdapt contrasts the static scheme with the online feedback
// controller on the Figure 9(b) co-run, with correct annotations and
// with annotations stripped (where only the controller can tell the
// scan from the aggregation).
func runAdapt(p harness.Params) error {
	r, err := harness.FigAdapt(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Adaptive controller — scan ∥ aggregation, annotated (A=scan, B=aggregation)",
		[]harness.PairRow{r.Annotated})
	harness.PrintPairRows(os.Stdout,
		"Adaptive controller — scan ∥ aggregation, annotations stripped (A=scan, B=aggregation)",
		[]harness.PairRow{r.Blind})
	return nil
}

// runChaos sweeps control-plane fault rates over the partitioned
// co-run: every point must complete without error, trading isolation
// (degraded placements) and retry cycles for survival.
func runChaos(p harness.Params) error {
	r, err := harness.FigChaos(p)
	if err != nil {
		return err
	}
	harness.PrintChaos(os.Stdout, r)
	return nil
}

func runCoSched(p harness.Params) error {
	row, err := harness.FigCoSchedule(p)
	if err != nil {
		return err
	}
	harness.PrintCoSchedule(os.Stdout, row)
	return nil
}

// runDerive demonstrates the automated Section V-B: derive the
// partitioning scheme from the measured scan curve.
func runDerive(p harness.Params) error {
	pts, err := harness.Fig4(p)
	if err != nil {
		return err
	}
	curve := make([]core.CurvePoint, 0, len(pts))
	for _, pt := range pts {
		curve = append(curve, core.CurvePoint{Ways: pt.Ways, Throughput: pt.Norm})
	}
	cuid, err := core.ClassifyCurve(curve, 20)
	if err != nil {
		return err
	}
	pol, err := core.DeriveScheme(55<<20, 20, [][]core.CurvePoint{curve})
	if err != nil {
		return err
	}
	pol.Enabled = true
	fmt.Printf("Derived scheme — the scan classifies as %q; polluting mask %v (%d of 20 ways)\n\n",
		cuid, pol.MaskFor(core.Polluting, core.Footprint{}),
		pol.MaskFor(core.Polluting, core.Footprint{}).Ways())
	script, err := resctrl.Script(pol)
	if err != nil {
		return err
	}
	fmt.Println("To apply on a real Linux machine with CAT:")
	fmt.Println(script)
	return nil
}
