// Command cachepart regenerates the paper's tables and figures on the
// simulated machine. Each subcommand runs one experiment and prints
// the series the paper plots.
//
// Usage:
//
//	cachepart [flags] <fig1|fig4|fig5|fig6|fig9|fig10|fig11|fig12|proj|derive|cosched|adapt|chaos|serve|overload|all>
//
// Flags tune the machine scale, core count and the simulated
// measurement window; see -help.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cachepart/internal/core"
	"cachepart/internal/fault"
	"cachepart/internal/harness"
	"cachepart/internal/resctrl"
	"cachepart/internal/serve"
)

func main() {
	var (
		fast     = flag.Bool("fast", false, "use 1/32-scale test parameters")
		scale    = flag.Int("scale", 0, "divide the paper machine's sizes by this factor (default 8, or 32 with -fast)")
		cores    = flag.Int("cores", 0, "simulated physical cores (default 22)")
		duration = flag.Float64("duration", 0, "simulated seconds per measurement (default 0.008)")
		rows     = flag.Int("rows", 0, "sampled rows per aggregation/join input (default ~2M)")
		scanRows = flag.Int("scanrows", 0, "rows of the scan column (default ~33M; must exceed the scaled LLC several times)")
		ways     = flag.String("ways", "", "comma-separated LLC way limits to sweep (default 2,4,...,20)")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Bool("parallel", false, "simulate private cache levels on parallel host goroutines (deterministic; DESIGN.md §11)")
		workers  = flag.Int("workers", 0, "host goroutines for -parallel (default GOMAXPROCS)")
		epoch    = flag.Int64("epochticks", 0, "virtual-time lookahead between parallel merge barriers (default 65536)")

		// serve-only flags (DESIGN.md §13).
		rate     = flag.Float64("rate", 0, "serve: absolute offered rate in queries per simulated second (overrides -loads)")
		loads    = flag.String("loads", "", "serve: comma-separated capacity multiples to sweep (default 0.7,1.0,3.0)")
		tenants  = flag.Int("tenants", 0, "serve: keep only the first N built-in cohorts (default all 3)")
		policy   = flag.String("policy", "taildrop", "serve: admission policy — taildrop or tokenbucket:<qps>:<burst>")
		capacity = flag.Int("capacity", 0, "serve: per-tenant queue capacity (default 16)")
		disc     = flag.String("disc", "clos", "serve: dispatch discipline — clos, fifo or rr")
		arrivals = flag.Int("arrivals", 0, "serve: target arrivals per load point (default 240; overload default 320)")

		// overload-only flags (DESIGN.md §15).
		sloMult = flag.Float64("slo", 0, "overload: SLO multiple of each tenant's isolated mean latency (default 15)")
		sheds   = flag.String("shed", "", "overload: comma-separated shedding policies to sweep — none, fair, polluter (default all)")
		retries = flag.Int("retries", 0, "overload: client retry attempts per query (default 3; 1 disables retries)")
		burst   = flag.Float64("burst", 0, "overload: inject a serving-plane arrival-burst fault at this rate factor (default off)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cachepart [flags] <fig1|fig4|fig5|fig6|fig9|fig10|fig11|fig12|proj|derive|cosched|adapt|chaos|serve|overload|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	p := harness.Default()
	if *fast {
		p = harness.Fast()
		p.Cores = 22
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *cores > 0 {
		p.Cores = *cores
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	if *rows > 0 {
		p.RowsAgg = *rows
		p.RowsProbe = *rows
	}
	if *scanRows > 0 {
		p.RowsScan = *scanRows
	}
	if *ways != "" {
		p.Ways = nil
		for _, field := range strings.Split(*ways, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || w < 1 || w > 20 {
				fmt.Fprintf(os.Stderr, "cachepart: bad -ways entry %q\n", field)
				os.Exit(2)
			}
			p.Ways = append(p.Ways, w)
		}
	}
	p.Seed = *seed
	p.Parallel = *parallel
	p.Workers = *workers
	p.EpochTicks = *epoch

	cmd := flag.Arg(0)
	t0 := time.Now() //lint:allow nondet operator-facing progress timing, not simulation state
	var err error
	switch cmd {
	case "fig1":
		err = runFig1(p)
	case "fig4":
		err = runFig4(p)
	case "fig5":
		err = runFig5(p)
	case "fig6":
		err = runFig6(p)
	case "fig9":
		err = runFig9(p)
	case "fig10":
		err = runFig10(p)
	case "fig11":
		err = runFig11(p)
	case "fig12":
		err = runFig12(p)
	case "proj":
		err = runProj(p)
	case "derive":
		err = runDerive(p)
	case "cosched":
		err = runCoSched(p)
	case "adapt":
		err = runAdapt(p)
	case "chaos":
		err = runChaos(p)
	case "serve":
		var o harness.ServeOptions
		o, err = serveOptions(*rate, *loads, *tenants, *policy, *capacity, *arrivals, *disc)
		if err == nil {
			err = runServe(p, o)
		}
	case "overload":
		var o harness.OverloadOptions
		o, err = overloadOptions(*loads, *arrivals, *sloMult, *sheds, *retries, *burst, *capacity, *disc, *seed)
		if err == nil {
			err = runOverload(p, o)
		}
	case "all":
		for _, f := range []func(harness.Params) error{
			runFig4, runFig5, runFig6, runFig9, runFig10, runFig11, runFig12, runFig1, runProj, runDerive, runCoSched, runAdapt, runChaos,
		} {
			if err = f(p); err != nil {
				break
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cachepart: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(t0) //lint:allow nondet operator-facing progress timing, not simulation state
	fmt.Printf("(%s, scale 1/%d, %d cores, %.0f ms windows, completed in %.1fs)\n",
		cmd, p.Scale, p.Cores, p.Duration*1e3, elapsed.Seconds())
}

func runFig1(p harness.Params) error {
	r, err := harness.Fig1(p)
	if err != nil {
		return err
	}
	harness.PrintFig1(os.Stdout, r)
	return nil
}

func runFig4(p harness.Params) error {
	pts, err := harness.Fig4(p)
	if err != nil {
		return err
	}
	harness.PrintWayPoints(os.Stdout, "Figure 4 — column scan vs. LLC size (expect: flat)", pts)
	return nil
}

func runFig5(p harness.Params) error {
	sets, err := harness.Fig5(p)
	if err != nil {
		return err
	}
	harness.PrintCurveSets(os.Stdout, "Figure 5 — aggregation vs. LLC size (expect: knees where hash table ≈ LLC)", sets)
	return nil
}

func runFig6(p harness.Params) error {
	series, err := harness.Fig6(p)
	if err != nil {
		return err
	}
	harness.PrintGroupSeries(os.Stdout, "Figure 6 — foreign-key join vs. LLC size (expect: only P=1e8 sensitive)", series)
	return nil
}

func runFig9(p harness.Params) error {
	panels, err := harness.Fig9(p)
	if err != nil {
		return err
	}
	for _, panel := range panels {
		harness.PrintPairRows(os.Stdout,
			"Figure 9 — scan ∥ aggregation, "+panel.Label+" (A=scan, B=aggregation)", panel.Rows)
	}
	return nil
}

func runFig10(p harness.Params) error {
	rows, err := harness.Fig10(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Figure 10 — aggregation ∥ join under join→10% and join→60% schemes (A=aggregation, B=join)", rows)
	return nil
}

func runFig11(p harness.Params) error {
	rows, err := harness.Fig11(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Figure 11 — column scan ∥ TPC-H queries (A=scan, B=TPC-H; expect Q1/Q7/Q8/Q9 to gain most)", rows)
	return nil
}

func runFig12(p harness.Params) error {
	rows, err := harness.Fig12(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Figure 12 — column scan ∥ S/4HANA OLTP query (A=scan, B=OLTP)", rows)
	return nil
}

func runProj(p harness.Params) error {
	rows, err := harness.FigProjSweep(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Section VI-E sweep — OLTP benefit vs. projected columns (A=scan, B=OLTP)", rows)
	return nil
}

// runAdapt contrasts the static scheme with the online feedback
// controller on the Figure 9(b) co-run, with correct annotations and
// with annotations stripped (where only the controller can tell the
// scan from the aggregation).
func runAdapt(p harness.Params) error {
	r, err := harness.FigAdapt(p)
	if err != nil {
		return err
	}
	harness.PrintPairRows(os.Stdout,
		"Adaptive controller — scan ∥ aggregation, annotated (A=scan, B=aggregation)",
		[]harness.PairRow{r.Annotated})
	harness.PrintPairRows(os.Stdout,
		"Adaptive controller — scan ∥ aggregation, annotations stripped (A=scan, B=aggregation)",
		[]harness.PairRow{r.Blind})
	return nil
}

// runChaos sweeps control-plane fault rates over the partitioned
// co-run: every point must complete without error, trading isolation
// (degraded placements) and retry cycles for survival.
func runChaos(p harness.Params) error {
	r, err := harness.FigChaos(p)
	if err != nil {
		return err
	}
	harness.PrintChaos(os.Stdout, r)
	return nil
}

// serveOptions folds the serve-only flags into harness.ServeOptions.
func serveOptions(rate float64, loads string, tenants int, policy string, capacity, arrivals int, disc string) (harness.ServeOptions, error) {
	o := harness.ServeOptions{RateQPS: rate, Tenants: tenants, QueueCap: capacity, Arrivals: arrivals}
	if loads != "" {
		for _, field := range strings.Split(loads, ",") {
			l, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil || l <= 0 {
				return o, fmt.Errorf("bad -loads entry %q", field)
			}
			o.Loads = append(o.Loads, l)
		}
	}
	d, err := serve.ParseDiscipline(disc)
	if err != nil {
		return o, err
	}
	o.Discipline = d
	switch {
	case policy == "" || policy == "taildrop":
		// serve defaults to tail-drop.
	case strings.HasPrefix(policy, "tokenbucket:"):
		parts := strings.Split(policy, ":")
		if len(parts) != 3 {
			return o, fmt.Errorf("bad -policy %q (want tokenbucket:<qps>:<burst>)", policy)
		}
		qps, err1 := strconv.ParseFloat(parts[1], 64)
		burst, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || qps <= 0 || burst <= 0 {
			return o, fmt.Errorf("bad -policy %q (want tokenbucket:<qps>:<burst>)", policy)
		}
		o.Policy = &serve.TokenBucket{RatePerSec: qps, Burst: burst}
	default:
		return o, fmt.Errorf("unknown -policy %q (want taildrop or tokenbucket:<qps>:<burst>)", policy)
	}
	return o, nil
}

// runServe regenerates the FigServe capacity sweep: the open-loop
// multi-tenant serving tier under shared-pool, static partitioning and
// the adaptive controller.
func runServe(p harness.Params, o harness.ServeOptions) error {
	r, err := harness.FigServeOpts(p, o)
	if err != nil {
		return err
	}
	harness.PrintServe(os.Stdout, r)
	return nil
}

// overloadOptions folds the overload-only flags into
// harness.OverloadOptions.
func overloadOptions(loads string, arrivals int, sloMult float64, sheds string, retries int, burst float64, capacity int, disc string, seed int64) (harness.OverloadOptions, error) {
	o := harness.OverloadOptions{Arrivals: arrivals, SLOMultiple: sloMult, QueueCap: capacity}
	if loads != "" {
		for _, field := range strings.Split(loads, ",") {
			l, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil || l <= 0 {
				return o, fmt.Errorf("bad -loads entry %q", field)
			}
			o.Loads = append(o.Loads, l)
		}
	}
	if sheds != "" {
		for _, field := range strings.Split(sheds, ",") {
			name := strings.TrimSpace(field)
			if _, err := serve.ParseShedPolicy(name); err != nil {
				return o, err
			}
			o.Sheds = append(o.Sheds, name)
		}
	}
	if retries > 0 {
		o.Retry = serve.Retry{MaxAttempts: retries, BudgetFraction: 0.3}
	}
	if burst > 0 {
		o.ServeFaults = &fault.ServeConfig{Seed: seed, Bursts: 1, BurstFactor: burst}
	}
	d, err := serve.ParseDiscipline(disc)
	if err != nil {
		return o, err
	}
	o.Discipline = d
	return o, nil
}

// runOverload regenerates the FigOverload sweep: the serving tier
// under rogue-polluter overload with SLO-aware shedding, retries and
// circuit breakers.
func runOverload(p harness.Params, o harness.OverloadOptions) error {
	r, err := harness.FigOverloadOpts(p, o)
	if err != nil {
		return err
	}
	harness.PrintOverload(os.Stdout, r)
	return nil
}

func runCoSched(p harness.Params) error {
	row, err := harness.FigCoSchedule(p)
	if err != nil {
		return err
	}
	harness.PrintCoSchedule(os.Stdout, row)
	return nil
}

// runDerive demonstrates the automated Section V-B: derive the
// partitioning scheme from the measured scan curve.
func runDerive(p harness.Params) error {
	pts, err := harness.Fig4(p)
	if err != nil {
		return err
	}
	curve := make([]core.CurvePoint, 0, len(pts))
	for _, pt := range pts {
		curve = append(curve, core.CurvePoint{Ways: pt.Ways, Throughput: pt.Norm})
	}
	cuid, err := core.ClassifyCurve(curve, 20)
	if err != nil {
		return err
	}
	pol, err := core.DeriveScheme(55<<20, 20, [][]core.CurvePoint{curve})
	if err != nil {
		return err
	}
	pol.Enabled = true
	fmt.Printf("Derived scheme — the scan classifies as %q; polluting mask %v (%d of 20 ways)\n\n",
		cuid, pol.MaskFor(core.Polluting, core.Footprint{}),
		pol.MaskFor(core.Polluting, core.Footprint{}).Ways())
	script, err := resctrl.Script(pol)
	if err != nil {
		return err
	}
	fmt.Println("To apply on a real Linux machine with CAT:")
	fmt.Println(script)
	return nil
}
