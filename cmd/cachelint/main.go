// Command cachelint runs the repository's domain static analyses over
// the module: determinism (no wall clock, no global math/rand, no
// order-sensitive map iteration), CAT-mask validity (constant masks
// must be non-empty and contiguous), explicit cache-usage identifiers
// on job phases, no discarded resctrl/os errors, and lock safety.
//
// Usage:
//
//	cachelint [-tier intra|inter|perf|conc|all[,...]] [-checks nondet,...] [-baseline file] [-json] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. The
// exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 on usage or load errors. Diagnostics print as
// "file:line:col: [check] message"; intentional exceptions are
// annotated in the source with "//lint:allow <check> <reason>".
//
// -tier selects the analysis tiers to run, as a comma-separated list —
// "intra" (single-package correctness), "inter" (interprocedural
// correctness), "perf" (hot-path performance over the //perf:hot
// reachability set), "conc" (concurrency isolation over goroutine
// spawn sites) — or "all" (the default). Unknown tier names are a
// usage error. -checks narrows further to named checks.
//
// -baseline reads a JSONL file of accepted findings (same schema as
// -json output) and suppresses any current finding matching an entry
// by (file, check, message), ignoring line and column so unrelated
// edits do not invalidate it. An entry that names a tier only matches
// findings of that tier. scripts/check.sh passes the checked-in
// .cachelint-baseline.jsonl.
//
// With -json each diagnostic prints as one JSON object per line
// (file, line, col, check, tier, message, allowed). This mode
// additionally includes findings suppressed by //lint:allow, marked
// "allowed":true, so CI can audit the escape hatch; only unsuppressed
// findings set the exit status. CI feeds this stream to a GitHub
// problem matcher (.github/cachelint-matcher.json) to surface findings
// as annotations.
//
// The tool builds from the standard library alone (go/parser, go/ast,
// go/types with the source importer), so it needs no module
// dependencies and runs offline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cachepart/internal/lint"
)

func main() {
	var (
		tier     = flag.String("tier", "all", "comma-separated analysis tiers to run: intra, inter, perf, conc or all")
		checks   = flag.String("checks", "", "comma-separated subset of checks to run (default: the selected tier)")
		baseline = flag.String("baseline", "", "JSONL file of accepted findings to suppress, matched by (file, check, message)")
		list     = flag.Bool("list", false, "list the available checks and exit")
		jsonMode = flag.Bool("json", false, "print one JSON object per diagnostic, including allowed findings")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cachelint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %-6s %s\n", a.Name, a.Tier, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	analyzers, err := selectAnalyzers(*tier, *checks)
	if err != nil {
		fatal(err)
	}
	accepted, err := loadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}

	cwd, _ := os.Getwd()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Package patterns are relative to the working directory, as with
	// the go tool; the loader itself resolves against the module root.
	for i, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		if !filepath.IsAbs(base) && cwd != "" {
			base = filepath.Join(cwd, base)
		}
		if recursive {
			base += "/..."
		}
		patterns[i] = base
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}
	pkgs := make([]*lint.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}

	cfg := lint.DefaultConfig(loader.Module)
	cfg.ReportAllowed = *jsonMode
	tierOf := make(map[string]string)
	for _, a := range lint.Analyzers() {
		tierOf[a.Name] = a.Tier
	}
	diags := lint.Run(loader, pkgs, analyzers, cfg)
	failing, baselined := 0, 0
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		if accepted[baselineKey(pos.Filename, d.Check, "", d.Message)] ||
			accepted[baselineKey(pos.Filename, d.Check, tierOf[d.Check], d.Message)] {
			baselined++
			continue
		}
		if !d.Allowed {
			failing++
		}
		if *jsonMode {
			line, err := json.Marshal(jsonDiagnostic{
				File:    pos.Filename,
				Line:    pos.Line,
				Col:     pos.Column,
				Check:   d.Check,
				Tier:    tierOf[d.Check],
				Message: d.Message,
				Allowed: d.Allowed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n", line)
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Check, d.Message)
	}
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "cachelint: %d finding(s) suppressed by baseline %s\n", baselined, *baseline)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "cachelint: %d problem(s) in %d package(s)\n", failing, len(pkgs))
		os.Exit(1)
	}
}

// jsonDiagnostic is the -json line format. Field order is fixed so the
// output is byte-stable and the CI problem matcher can anchor on it.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Tier    string `json:"tier"`
	Message string `json:"message"`
	Allowed bool   `json:"allowed"`
}

// selectAnalyzers resolves the -tier and -checks flags against the
// registry. -tier is a comma-separated list of tiers ("intra,conc");
// "all" selects every tier; unknown names are a usage error. -checks
// narrows within the selected tiers' suite.
func selectAnalyzers(tier, checks string) ([]*lint.Analyzer, error) {
	selected := make(map[string]bool)
	for _, t := range strings.Split(tier, ",") {
		t = strings.TrimSpace(t)
		switch {
		case t == "":
			continue
		case t == "all":
			for _, k := range lint.Tiers() {
				selected[k] = true
			}
		default:
			known := false
			for _, k := range lint.Tiers() {
				if k == t {
					known = true
				}
			}
			if !known {
				return nil, fmt.Errorf("cachelint: unknown tier %q (intra, inter, perf, conc or all)", t)
			}
			selected[t] = true
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("cachelint: -tier selects no tier (intra, inter, perf, conc or all)")
	}
	var all []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if selected[a.Tier] {
			all = append(all, a)
		}
	}
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("cachelint: unknown check %q in tier %q (use -list)", name, tier)
		}
		out = append(out, a)
	}
	return out, nil
}

// baselineKey is the identity a baseline entry matches on: file, check
// and message, but not line or column, so edits elsewhere in the file
// do not invalidate accepted findings. A non-empty tier narrows the
// entry to findings of that tier.
func baselineKey(file, check, tier, message string) string {
	return file + "\x00" + check + "\x00" + tier + "\x00" + message
}

// loadBaseline reads a JSONL baseline of accepted findings. Blank
// lines and #-comments are skipped, so an empty baseline can document
// its own format.
func loadBaseline(path string) (map[string]bool, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cachelint: reading baseline: %w", err)
	}
	accepted := make(map[string]bool)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return nil, fmt.Errorf("cachelint: baseline %s:%d: %v", path, i+1, err)
		}
		accepted[baselineKey(d.File, d.Check, d.Tier, d.Message)] = true
	}
	return accepted, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("cachelint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(2)
}
