package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachepart/internal/lint"
)

func analyzerNames(as []*lint.Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

func TestSelectAnalyzersTierList(t *testing.T) {
	got, err := selectAnalyzers("intra,conc", "")
	if err != nil {
		t.Fatal(err)
	}
	tiers := make(map[string]bool)
	for _, a := range got {
		tiers[a.Tier] = true
	}
	if !tiers[lint.TierIntra] || !tiers[lint.TierConc] || len(tiers) != 2 {
		t.Errorf("tiers selected by intra,conc: %v", tiers)
	}
	// Suite order is preserved: the selection must be a subsequence of
	// the full analyzer list.
	all := analyzerNames(lint.Analyzers())
	i := 0
	for _, name := range analyzerNames(got) {
		for i < len(all) && all[i] != name {
			i++
		}
		if i == len(all) {
			t.Fatalf("selection order diverges from suite order at %s", name)
		}
	}
}

func TestSelectAnalyzersAll(t *testing.T) {
	got, err := selectAnalyzers("all", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lint.Analyzers()) {
		t.Errorf("all selected %d analyzers, want %d", len(got), len(lint.Analyzers()))
	}
	// Duplicate tier names collapse.
	dup, err := selectAnalyzers("perf,perf", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(lint.AnalyzersForTier(lint.TierPerf)); len(dup) != want {
		t.Errorf("perf,perf selected %d analyzers, want %d", len(dup), want)
	}
}

func TestSelectAnalyzersErrors(t *testing.T) {
	if _, err := selectAnalyzers("bogus", ""); err == nil || !strings.Contains(err.Error(), `unknown tier "bogus"`) {
		t.Errorf("unknown tier: err = %v", err)
	}
	if _, err := selectAnalyzers("intra,,bogus", ""); err == nil || !strings.Contains(err.Error(), `unknown tier "bogus"`) {
		t.Errorf("unknown tier in list: err = %v", err)
	}
	if _, err := selectAnalyzers("", ""); err == nil || !strings.Contains(err.Error(), "selects no tier") {
		t.Errorf("empty tier: err = %v", err)
	}
	// A check outside the selected tiers is a usage error.
	if _, err := selectAnalyzers("intra", "epochshare"); err == nil || !strings.Contains(err.Error(), `unknown check "epochshare"`) {
		t.Errorf("check outside tier: err = %v", err)
	}
}

func TestSelectAnalyzersChecksNarrow(t *testing.T) {
	got, err := selectAnalyzers("conc", "atomicmix")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "atomicmix" {
		t.Errorf("conc/atomicmix selected %v", analyzerNames(got))
	}
}

func TestBaselineTierMatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.jsonl")
	lines := []string{
		`# comment`,
		``,
		`{"file":"a.go","check":"epochshare","tier":"conc","message":"m1"}`,
		`{"file":"b.go","check":"bounds","message":"m2"}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	accepted, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// An entry with a tier matches only under that tier's key; one
	// without matches under the tierless key — main checks both forms
	// for every finding.
	if !accepted[baselineKey("a.go", "epochshare", "conc", "m1")] {
		t.Error("tiered entry missing under tiered key")
	}
	if accepted[baselineKey("a.go", "epochshare", "", "m1")] {
		t.Error("tiered entry must not match the tierless key")
	}
	if !accepted[baselineKey("b.go", "bounds", "", "m2")] {
		t.Error("tierless entry missing under tierless key")
	}
	if accepted[baselineKey("b.go", "bounds", "intra", "m2")] {
		t.Error("tierless entry must not match a tiered key")
	}
}

func TestLoadBaselineRejectsBadJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.jsonl")
	if err := os.WriteFile(path, []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Error("malformed baseline line accepted")
	}
}
