package cachepart_test

import (
	"fmt"
	"log"

	"cachepart"
)

// The paper's partitioning scheme (Section V-B/V-C): polluting jobs
// get 10% of a 20-way LLC, sensitive jobs the full cache, joins 10%
// or 60% by the bit-vector heuristic.
func ExampleDefaultPolicy() {
	policy := cachepart.DefaultPolicy(55<<20, 20)
	policy.Enabled = true

	fmt.Println("polluting:", policy.MaskFor(cachepart.Polluting, cachepart.Footprint{}))
	fmt.Println("sensitive:", policy.MaskFor(cachepart.Sensitive, cachepart.Footprint{}))
	fmt.Println("join, 10^6 keys:", policy.MaskFor(cachepart.Depends,
		cachepart.Footprint{BitVectorBytes: 125_000}))
	fmt.Println("join, 10^8 keys:", policy.MaskFor(cachepart.Depends,
		cachepart.Footprint{BitVectorBytes: 12_500_000}))
	// Output:
	// polluting: 0x3
	// sensitive: 0xfffff
	// join, 10^6 keys: 0x3
	// join, 10^8 keys: 0xfff
}

// Classifying operators from measured LLC sweeps automates the paper's
// Section V-B: a flat curve is a polluter, one that needs the whole
// cache is sensitive.
func ExampleClassifyCurve() {
	flat := make([]cachepart.CurvePoint, 20)
	rising := make([]cachepart.CurvePoint, 20)
	for i := range flat {
		flat[i] = cachepart.CurvePoint{Ways: i + 1, Throughput: 1.0}
		rising[i] = cachepart.CurvePoint{Ways: i + 1, Throughput: 0.3 + 0.035*float64(i+1)}
	}
	scan, _ := cachepart.ClassifyCurve(flat, 20)
	agg, _ := cachepart.ClassifyCurve(rising, 20)
	fmt.Println("scan-like curve:", scan)
	fmt.Println("aggregation-like curve:", agg)
	// Output:
	// scan-like curve: polluting
	// aggregation-like curve: sensitive
}

// The SQL planner recognises the paper's three query shapes (Figure 2)
// and annotates each with its cache usage identifier.
func ExamplePlanQuery() {
	sys, err := cachepart.NewSystem(cachepart.FastParams())
	if err != nil {
		log.Fatal(err)
	}
	cat := cachepart.NewCatalog(sys)
	for _, ddl := range []string{
		"CREATE COLUMN TABLE A( X INT );",
		"CREATE COLUMN TABLE B( V INT, G INT );",
		"CREATE COLUMN TABLE R( P INT, PRIMARY KEY(P));",
		"CREATE COLUMN TABLE S( F INT );",
	} {
		if err := cat.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}
	if err := cat.Exec("INSERT INTO A VALUES (1), (2), (3)"); err != nil {
		log.Fatal(err)
	}
	if err := cat.Exec("INSERT INTO B VALUES (10, 1), (20, 1), (5, 2)"); err != nil {
		log.Fatal(err)
	}
	if err := cat.Exec("INSERT INTO R VALUES (1), (2)"); err != nil {
		log.Fatal(err)
	}
	if err := cat.Exec("INSERT INTO S VALUES (1), (1), (2)"); err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{
		"SELECT COUNT(*) FROM A WHERE A.X > ?;",
		"SELECT MAX(B.V), B.G FROM B GROUP BY B.G;",
		"SELECT COUNT(*) FROM R, S WHERE R.P = S.F;",
	} {
		plan, err := cachepart.PlanQuery(cat, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %v\n", plan.Kind, plan.CUID())
	}

	join, _ := cachepart.PlanQuery(cat, "SELECT COUNT(*) FROM R, S WHERE R.P = S.F;")
	if err := cachepart.ExecutePlan(sys, join, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("join count:", join.Count())
	// Output:
	// scan-count -> polluting
	// group-aggregate -> sensitive
	// join-count -> depends
	// join count: 3
}
