# Standard developer entry points. `make check` is the full gate that
# scripts/check.sh (and CI) runs.

GO ?= go

.PHONY: build test lint perflint race chaos check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cachelint -baseline .cachelint-baseline.jsonl ./...

# The performance tier alone: hot-path findings over the //perf:hot
# reachability set, without the correctness tiers' runtime.
perflint:
	$(GO) run ./cmd/cachelint -tier=perf ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/cachesim/...
	$(GO) test -race -run 'Parallel' ./internal/harness/...

bench:
	sh scripts/bench.sh

chaos:
	sh scripts/check.sh chaos

check:
	sh scripts/check.sh
