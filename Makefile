# Standard developer entry points. `make check` is the full gate that
# scripts/check.sh (and CI) runs.

GO ?= go

.PHONY: build test lint perflint conclint race chaos overload check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cachelint -baseline .cachelint-baseline.jsonl ./...

# The performance tier alone: hot-path findings over the //perf:hot
# reachability set, without the correctness tiers' runtime.
perflint:
	$(GO) run ./cmd/cachelint -tier=perf ./...

# The concurrency-isolation tier alone: the epoch-ownership contract
# (epochshare, atomicmix, chanproto, wgbalance, goroutinecapture)
# rooted at goroutine spawn sites.
conclint:
	$(GO) run ./cmd/cachelint -tier=conc ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/cachesim/... ./internal/exec/...
	$(GO) test -race -run 'Parallel' ./internal/harness/...

bench:
	sh scripts/bench.sh

chaos:
	sh scripts/check.sh chaos

overload:
	sh scripts/check.sh overload

check:
	sh scripts/check.sh
