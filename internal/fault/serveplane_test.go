package fault

import (
	"reflect"
	"testing"
)

func testServePlane(t *testing.T, seed int64) *ServePlane {
	t.Helper()
	cfg := ServeConfig{Seed: seed, Bursts: 2, BurstFactor: 4, BurstSpan: 0.1, Stalls: 1.5, StallSpan: 0.08}
	p, err := NewServePlane(cfg, 1e-4, 3, 4, 3.52e10)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestServePlaneDeterminism(t *testing.T) {
	a, b := testServePlane(t, 42), testServePlane(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical configs built different chaos schedules")
	}
	c := testServePlane(t, 43)
	if reflect.DeepEqual(a, c) {
		t.Error("different fault seeds built identical chaos schedules")
	}
}

func TestServePlaneWindows(t *testing.T) {
	p := testServePlane(t, 7)
	const horizon = 1e-4
	nb := 0
	for tn := 0; tn < 3; tn++ {
		for _, b := range p.Bursts(tn) {
			nb++
			if b.Start < 0 || b.End > horizon || b.Start >= b.End {
				t.Errorf("tenant %d burst [%v, %v) out of bounds", tn, b.Start, b.End)
			}
			if b.Factor != 4 {
				t.Errorf("tenant %d burst factor %v, want 4", tn, b.Factor)
			}
		}
	}
	if nb == 0 {
		t.Error("no burst windows generated with Bursts=2 over 3 tenants")
	}
	ns := 0
	for g := 0; g < 4; g++ {
		ns += len(p.StallWindows(g))
	}
	if ns == 0 {
		t.Error("no stall windows generated with Stalls=1.5 over 4 groups")
	}
}

func TestServePlaneStallUntil(t *testing.T) {
	p := testServePlane(t, 7)
	for g := 0; g < 4; g++ {
		for _, s := range p.StallWindows(g) {
			if s.Start >= s.End {
				t.Fatalf("group %d stall [%d, %d) empty", g, s.Start, s.End)
			}
			// Inside the window the park target strictly exceeds now.
			mid := s.Start + (s.End-s.Start)/2
			if end := p.StallUntil(g, mid); end != s.End {
				t.Errorf("group %d StallUntil(%d) = %d, want %d", g, mid, end, s.End)
			}
			if end := p.StallUntil(g, s.End); end == s.End {
				t.Errorf("group %d still stalled at its own end tick", g)
			}
			if p.StallUntil(g, mid) <= mid {
				t.Errorf("group %d stall end does not exceed now", g)
			}
		}
		if end := p.StallUntil(g, -1); end != 0 {
			t.Errorf("group %d stalled before the run started", g)
		}
	}
	// Nil plane and out-of-range groups are safe no-ops.
	var nilPlane *ServePlane
	if nilPlane.StallUntil(0, 10) != 0 || nilPlane.Bursts(0) != nil {
		t.Error("nil plane injected chaos")
	}
	if p.StallUntil(99, 10) != 0 || p.Bursts(99) != nil {
		t.Error("out-of-range index injected chaos")
	}
}

func TestServeConfigValidate(t *testing.T) {
	good := ServeConfig{Bursts: 1, Stalls: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []ServeConfig{
		{Bursts: -1},
		{Stalls: -0.5},
		{BurstSpan: -0.1},
		{StallSpan: -0.1},
		{BurstFactor: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if _, err := NewServePlane(ServeConfig{Bursts: -1}, 1e-4, 1, 1, 1e9); err == nil {
		t.Error("NewServePlane accepted a negative rate")
	}
}

func TestUniformServe(t *testing.T) {
	cfg := UniformServe(2, 9)
	if cfg.Seed != 9 || cfg.Bursts != 2 || cfg.Stalls != 2 {
		t.Errorf("UniformServe built %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}
