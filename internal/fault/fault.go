// Package fault is a seeded, deterministic fault-injection layer for
// the resctrl control plane. The simulator's FS never fails, but the
// kernel interface it models does: schemata writes return EBUSY or
// EINVAL, mkdir fails with ENOSPC when CLOSes or RMIDs are exhausted,
// writes to a tasks file race with exiting threads (ESRCH), and the
// CMT/MBM mon_data files read the literal strings "Unavailable" and
// "Error" while an RMID is in limbo or a domain counter is broken.
//
// Wrap interposes a Plane between the engine and the real mount and
// injects those failures with per-operation probabilities drawn from a
// seeded *rand.Rand. Faults are transient by default — a retry may
// succeed — and become persistent with Config.PersistentFraction
// probability, after which the same (operation, group) pair fails
// every time, the shape of a genuinely exhausted or broken resource.
//
// Determinism: all control-plane calls happen inside the engine's
// serial virtual-time loop, so the injector's random draws occur in a
// deterministic order and two runs with the same fault seed inject the
// identical schedule. The internal mutex exists only so the race
// detector stays satisfied when tests probe the plane from outside a
// run; it serialises nothing the engine does not already serialise.
package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"cachepart/internal/cat"
	"cachepart/internal/resctrl"
)

// Operation names used in Fault.Op and broken-breaker keys.
const (
	OpWriteSchemata = "WriteSchemata"
	OpMoveTask      = "MoveTask"
	OpMakeGroup     = "MakeGroup"
	OpSchedule      = "Schedule"
	OpReadMonData   = "ReadMonData"
)

// Fault is one injected control-plane failure. It records which
// operation on which group failed and which real-kernel failure it
// mirrors (an errno name, or the literal mon_data file content for
// monitoring reads).
type Fault struct {
	Op    string
	Group string
	// Errno names the mirrored kernel failure: EBUSY, ESRCH, ENOSPC,
	// EAGAIN, or the mon_data literals "Unavailable" / "Error".
	Errno string
	// Persistent marks a failure that will repeat on every retry of the
	// same operation on the same group.
	Persistent bool
}

// Error renders the fault in the shape of the mirrored syscall error.
func (f *Fault) Error() string {
	kind := "transient"
	if f.Persistent {
		kind = "persistent"
	}
	return fmt.Sprintf("fault: %s(%q): %s (injected, %s)", f.Op, f.Group, f.Errno, kind)
}

// Transient reports whether retrying the failed operation may succeed.
// The engine's retry loop classifies errors through this method.
func (f *Fault) Transient() bool { return !f.Persistent }

// Config sets the per-operation injection probabilities. The zero
// value injects nothing; Uniform builds a single-rate config.
type Config struct {
	// Seed drives the injection schedule. Two planes wrapping identical
	// inners with identical configs inject identical fault sequences.
	Seed int64

	// Per-operation probabilities in [0,1] that one call fails.
	WriteSchemata float64 // mirrors EBUSY: domain locked or mid-update
	MoveTask      float64 // mirrors ESRCH: the task raced an exit
	MakeGroup     float64 // mirrors ENOSPC: out of CLOSes or RMIDs
	Schedule      float64 // mirrors EAGAIN: the association IPI failed

	// MonUnavailable is the probability a monitoring read returns the
	// "Unavailable" file content: a transient RMID-limbo gap.
	MonUnavailable float64
	// MonError is the probability a monitoring read trips the sticky
	// "Error" state: the group's domain counter stays unreadable.
	MonError float64

	// PersistentFraction is the probability an injected control-plane
	// fault is persistent rather than transient, tripping the breaker
	// for its (operation, group) pair.
	PersistentFraction float64
}

// Uniform builds a config injecting every control-plane operation and
// monitoring read at the same rate, with one in ten faults persistent
// and sticky counter errors at a tenth of the gap rate.
func Uniform(rate float64, seed int64) Config {
	return Config{
		Seed:               seed,
		WriteSchemata:      rate,
		MoveTask:           rate,
		MakeGroup:          rate,
		Schedule:           rate,
		MonUnavailable:     rate,
		MonError:           rate / 10,
		PersistentFraction: 0.1,
	}
}

// Validate checks every probability is in [0,1].
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"WriteSchemata", c.WriteSchemata},
		{"MoveTask", c.MoveTask},
		{"MakeGroup", c.MakeGroup},
		{"Schedule", c.Schedule},
		{"MonUnavailable", c.MonUnavailable},
		{"MonError", c.MonError},
		{"PersistentFraction", c.PersistentFraction},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s rate %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// Stats counts what the plane injected.
type Stats struct {
	// Injected is the total number of failed calls, including repeats
	// served from tripped breakers.
	Injected int64
	// PersistentTrips is how many (operation, group) breakers tripped.
	PersistentTrips int64
	// MonFaults is how many monitoring reads failed.
	MonFaults int64
}

// Plane wraps a resctrl control plane with fault injection. Build one
// with Wrap; it implements resctrl.Plane.
type Plane struct {
	mu    sync.Mutex
	inner resctrl.Plane
	cfg   Config
	rng   *rand.Rand
	// broken holds tripped (operation, group) breakers. Accessed by
	// key only, never iterated.
	broken map[string]bool
	stats  Stats
}

var _ resctrl.Plane = (*Plane)(nil)

// Wrap interposes a fault injector over a control plane.
func Wrap(inner resctrl.Plane, cfg Config) (*Plane, error) {
	if inner == nil {
		return nil, fmt.Errorf("fault: nil inner plane")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Plane{
		inner:  inner,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		broken: make(map[string]bool),
	}, nil
}

// Inner returns the wrapped plane, for unwrapping after an experiment.
func (p *Plane) Inner() resctrl.Plane { return p.inner }

// Config returns the injection configuration.
func (p *Plane) Config() Config { return p.cfg }

// Stats returns a snapshot of the injection counters.
func (p *Plane) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Reset clears the breakers and counters and rewinds the random
// schedule to the seed, so a reused plane replays the same faults.
func (p *Plane) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rng = rand.New(rand.NewSource(p.cfg.Seed))
	clear(p.broken)
	p.stats = Stats{}
}

// maybeFail decides one call's fate. A tripped breaker fails without
// consuming randomness — the draw order over non-broken calls is what
// the determinism guarantee covers — and a fresh fault draws once for
// the injection and, when injected, once for persistence.
func (p *Plane) maybeFail(op, group string, rate float64, errno string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := op + "\x00" + group
	if p.broken[key] {
		p.stats.Injected++
		return &Fault{Op: op, Group: group, Errno: errno, Persistent: true}
	}
	if rate <= 0 || p.rng.Float64() >= rate {
		return nil
	}
	p.stats.Injected++
	f := &Fault{Op: op, Group: group, Errno: errno}
	if p.cfg.PersistentFraction > 0 && p.rng.Float64() < p.cfg.PersistentFraction {
		f.Persistent = true
		p.broken[key] = true
		p.stats.PersistentTrips++
	}
	return f
}

// MakeGroup injects ENOSPC — the CLOS/RMID exhaustion mkdir surfaces —
// before delegating, so a failed call creates nothing.
func (p *Plane) MakeGroup(name string) error {
	if err := p.maybeFail(OpMakeGroup, name, p.cfg.MakeGroup, "ENOSPC"); err != nil {
		return err
	}
	return p.inner.MakeGroup(name)
}

// RemoveGroup passes through: rmdir of an existing group does not fail
// on real kernels short of unmount races the simulator has no analog
// for.
func (p *Plane) RemoveGroup(name string) error { return p.inner.RemoveGroup(name) }

// Groups passes through (read-only).
func (p *Plane) Groups() []string { return p.inner.Groups() }

// WriteSchemata injects EBUSY, the errno a schemata write returns when
// the domain is locked or another writer is mid-update.
func (p *Plane) WriteSchemata(groupName, schemata string) error {
	if err := p.maybeFail(OpWriteSchemata, groupName, p.cfg.WriteSchemata, "EBUSY"); err != nil {
		return err
	}
	return p.inner.WriteSchemata(groupName, schemata)
}

// ReadSchemata passes through (read-only).
func (p *Plane) ReadSchemata(groupName string) (string, error) {
	return p.inner.ReadSchemata(groupName)
}

// Mask passes through (read-only).
func (p *Plane) Mask(groupName string) (cat.WayMask, error) { return p.inner.Mask(groupName) }

// MoveTask injects ESRCH, the tasks-file write failure when the TID
// raced an exit.
func (p *Plane) MoveTask(tid int, groupName string) error {
	if err := p.maybeFail(OpMoveTask, groupName, p.cfg.MoveTask, "ESRCH"); err != nil {
		return err
	}
	return p.inner.MoveTask(tid, groupName)
}

// GroupOf passes through (read-only).
func (p *Plane) GroupOf(tid int) string { return p.inner.GroupOf(tid) }

// Tasks passes through (read-only).
func (p *Plane) Tasks(groupName string) []int { return p.inner.Tasks(groupName) }

// Schedule injects EAGAIN — a failed association on the context-switch
// path. Schedule faults are always transient: the next dispatch of the
// task retries the association, so no breaker is kept. The group key
// is the task's current group so the draw stays group-attributed.
func (p *Plane) Schedule(tid, core int) error {
	p.mu.Lock()
	if p.cfg.Schedule > 0 && p.rng.Float64() < p.cfg.Schedule {
		p.stats.Injected++
		p.mu.Unlock()
		return &Fault{Op: OpSchedule, Group: p.inner.GroupOf(tid), Errno: "EAGAIN"}
	}
	p.mu.Unlock()
	return p.inner.Schedule(tid, core)
}

// Writes passes through (read-only).
func (p *Plane) Writes() int { return p.inner.Writes() }

// ReadMonData injects the kernel's two non-numeric mon_data file
// states: a transient "Unavailable" gap and the sticky per-group
// "Error" counter failure. Both are returned wrapping the resctrl
// sentinels so errors.Is sees through the injection layer.
func (p *Plane) ReadMonData(groupName string) (resctrl.MonData, error) {
	p.mu.Lock()
	key := OpReadMonData + "\x00" + groupName
	switch {
	case p.broken[key]:
		p.stats.Injected++
		p.stats.MonFaults++
		p.mu.Unlock()
		return resctrl.MonData{}, fmt.Errorf("%w (injected, persistent)", resctrl.ErrCounter)
	case p.cfg.MonError > 0 && p.rng.Float64() < p.cfg.MonError:
		p.broken[key] = true
		p.stats.Injected++
		p.stats.MonFaults++
		p.stats.PersistentTrips++
		p.mu.Unlock()
		return resctrl.MonData{}, fmt.Errorf("%w (injected, persistent)", resctrl.ErrCounter)
	case p.cfg.MonUnavailable > 0 && p.rng.Float64() < p.cfg.MonUnavailable:
		p.stats.Injected++
		p.stats.MonFaults++
		p.mu.Unlock()
		return resctrl.MonData{}, fmt.Errorf("%w (injected)", resctrl.ErrUnavailable)
	}
	p.mu.Unlock()
	return p.inner.ReadMonData(groupName)
}
