package fault

import (
	"errors"
	"strings"
	"testing"

	"cachepart/internal/cat"
	"cachepart/internal/resctrl"
)

func newPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	regs, err := cat.NewRegisters(4, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Wrap(resctrl.Mount(regs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// script exercises a fixed sequence of control-plane calls and records
// which draw an injected fault, as a fault-schedule fingerprint.
// Genuine inner errors (group already exists, no monitor attached) are
// excluded so the fingerprint depends only on the injector.
func script(pl *Plane) []bool {
	var fails []bool
	ops := []func() error{
		func() error { return pl.MakeGroup("g0") },
		func() error { return pl.WriteSchemata("g0", "L3:0=3") },
		func() error { return pl.MoveTask(1000, "g0") },
		func() error { return pl.Schedule(1000, 0) },
		func() error { _, err := pl.ReadMonData("g0"); return err },
	}
	for round := 0; round < 50; round++ {
		for _, op := range ops {
			err := op()
			fails = append(fails, err != nil && strings.Contains(err.Error(), "injected"))
		}
	}
	return fails
}

func TestFaultZeroRateInjectsNothing(t *testing.T) {
	pl := newPlane(t, Config{Seed: 1})
	if err := pl.MakeGroup("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := pl.WriteSchemata("g", "L3:0=3"); err != nil {
			t.Fatalf("write %d failed with zero rates: %v", i, err)
		}
		if err := pl.MoveTask(1000, "g"); err != nil {
			t.Fatal(err)
		}
		if err := pl.Schedule(1000, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s := pl.Stats(); s.Injected != 0 {
		t.Errorf("injected %d faults at rate 0", s.Injected)
	}
}

func TestFaultFullRateAlwaysFails(t *testing.T) {
	pl := newPlane(t, Config{Seed: 1, WriteSchemata: 1, MoveTask: 1, MakeGroup: 1, Schedule: 1})
	if err := pl.MakeGroup("g"); err == nil {
		t.Error("MakeGroup succeeded at rate 1")
	}
	if err := pl.MoveTask(1000, "g"); err == nil {
		t.Error("MoveTask succeeded at rate 1")
	}
	if err := pl.Schedule(1000, 0); err == nil {
		t.Error("Schedule succeeded at rate 1")
	}
	// Reads are never injected.
	if _, err := pl.Mask(resctrl.RootGroup); err != nil {
		t.Errorf("read-only Mask failed: %v", err)
	}
}

func TestFaultSameSeedSameSchedule(t *testing.T) {
	cfg := Uniform(0.3, 42)
	a := script(newPlane(t, cfg))
	b := script(newPlane(t, cfg))
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d", i)
		}
	}
	// A different seed must (at this rate and length) differ somewhere.
	c := script(newPlane(t, Uniform(0.3, 43)))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 42 and 43 injected identical schedules")
	}
}

func TestFaultResetReplaysSchedule(t *testing.T) {
	pl := newPlane(t, Uniform(0.3, 7))
	a := script(pl)
	pl.Reset()
	if s := pl.Stats(); s != (Stats{}) {
		t.Errorf("stats not cleared by Reset: %+v", s)
	}
	b := script(pl)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at call %d", i)
		}
	}
}

func TestFaultTransience(t *testing.T) {
	f := &Fault{Op: OpWriteSchemata, Group: "g", Errno: "EBUSY"}
	if !f.Transient() {
		t.Error("non-persistent fault reports not transient")
	}
	f.Persistent = true
	if f.Transient() {
		t.Error("persistent fault reports transient")
	}
	var iface interface{ Transient() bool }
	if !errors.As(error(f), &iface) {
		t.Error("Fault does not satisfy the Transient interface via errors.As")
	}
}

func TestFaultPersistentTripsBreaker(t *testing.T) {
	// Every injected fault is persistent; once one fires, the same
	// (op, group) pair must fail on every subsequent call.
	pl := newPlane(t, Config{Seed: 3, WriteSchemata: 0.5, PersistentFraction: 1})
	if err := pl.MakeGroup("g"); err != nil {
		t.Fatal(err)
	}
	tripped := -1
	for i := 0; i < 200; i++ {
		if err := pl.WriteSchemata("g", "L3:0=3"); err != nil {
			tripped = i
			break
		}
	}
	if tripped < 0 {
		t.Fatal("no fault in 200 calls at rate 0.5")
	}
	for i := 0; i < 20; i++ {
		err := pl.WriteSchemata("g", "L3:0=3")
		if err == nil {
			t.Fatalf("tripped breaker let call %d through", i)
		}
		var f *Fault
		if !errors.As(err, &f) || !f.Persistent {
			t.Fatalf("breaker error not a persistent Fault: %v", err)
		}
	}
	// Other groups are unaffected by g's breaker (they draw their own
	// fate from the rate).
	if err := pl.MakeGroup("other"); err != nil {
		t.Fatal(err)
	}
	if got := pl.Stats(); got.PersistentTrips != 1 {
		t.Errorf("PersistentTrips = %d, want 1", got.PersistentTrips)
	}
}

func TestFaultMonErrorsWrapSentinels(t *testing.T) {
	unavailable := newPlane(t, Config{Seed: 5, MonUnavailable: 1})
	if _, err := unavailable.ReadMonData(resctrl.RootGroup); !errors.Is(err, resctrl.ErrUnavailable) {
		t.Errorf("MonUnavailable error = %v, want ErrUnavailable", err)
	}
	sticky := newPlane(t, Config{Seed: 5, MonError: 1})
	for i := 0; i < 3; i++ {
		if _, err := sticky.ReadMonData(resctrl.RootGroup); !errors.Is(err, resctrl.ErrCounter) {
			t.Errorf("MonError read %d = %v, want ErrCounter", i, err)
		}
	}
	if s := sticky.Stats(); s.MonFaults != 3 || s.PersistentTrips != 1 {
		t.Errorf("sticky stats = %+v, want 3 mon faults from 1 trip", s)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	if err := (Config{Seed: 1}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := (Config{MoveTask: 1.5}).Validate(); err == nil {
		t.Error("rate above 1 accepted")
	}
	if err := (Config{MonError: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Wrap(nil, Config{}); err == nil {
		t.Error("nil inner plane accepted")
	}
	cfg := Uniform(0.2, 9)
	if cfg.Seed != 9 || cfg.WriteSchemata != 0.2 || cfg.MonUnavailable != 0.2 {
		t.Errorf("Uniform built %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Uniform config invalid: %v", err)
	}
}
