package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// serveplane: seeded fault injection for the serving plane. Where
// fault.Plane breaks the resctrl control plane, ServePlane breaks the
// workload itself: arrival bursts (a rogue tenant's rate surging for a
// window, the shape of a retry storm or a misbehaving client) and
// dispatcher stalls (a core group frozen for a window, the shape of a
// GC pause or a preempted dispatcher thread). Both compose freely with
// the control-plane chaos — a serving run can take resctrl EBUSYs and
// a 4× arrival surge in the same replay.
//
// Determinism: every window is precomputed from ServeConfig.Seed at
// plane construction, in tenant-then-group order, so the schedule is a
// pure function of (config, horizon, tenants, groups) and two runs
// with equal fault seeds see identical chaos. Burst arrivals are drawn
// by the serving generator from separate per-tenant rngs, so the base
// trace is bit-identical with and without faults.

// ServeConfig describes serving-plane chaos. The zero value injects
// nothing; UniformServe builds a single-intensity config. Expected
// counts may be fractional: the fractional part is one extra window
// with that probability.
type ServeConfig struct {
	// Seed drives the window schedule, independent of the run seed and
	// the control-plane fault seed.
	Seed int64

	// Bursts is the expected number of arrival-burst windows per tenant
	// over the horizon.
	Bursts float64
	// BurstFactor is the tenant's rate multiplier inside a burst window
	// (2.0 = arrivals at twice the configured rate); values <= 1 inject
	// no extra arrivals. 0 uses DefaultBurstFactor.
	BurstFactor float64
	// BurstSpan is the mean window length as a fraction of the horizon;
	// 0 uses DefaultSpan.
	BurstSpan float64

	// Stalls is the expected number of dispatcher-stall windows per
	// core group over the horizon.
	Stalls float64
	// StallSpan is the mean stall length as a fraction of the horizon;
	// 0 uses DefaultSpan.
	StallSpan float64
}

// Serving-plane defaults: a burst triples the tenant's rate, and a
// window spans a few percent of the horizon.
const (
	DefaultBurstFactor = 3.0
	DefaultSpan        = 0.05
)

// UniformServe builds a config injecting `windows` expected burst
// windows per tenant and stall windows per group at default intensity.
func UniformServe(windows float64, seed int64) ServeConfig {
	return ServeConfig{Seed: seed, Bursts: windows, Stalls: windows}
}

// Validate checks the configuration.
func (c ServeConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Bursts", c.Bursts},
		{"BurstSpan", c.BurstSpan},
		{"Stalls", c.Stalls},
		{"StallSpan", c.StallSpan},
	} {
		if p.v < 0 {
			return fmt.Errorf("fault: serve %s %v must be >= 0", p.name, p.v)
		}
	}
	if c.BurstFactor < 0 {
		return fmt.Errorf("fault: serve BurstFactor %v must be >= 0", c.BurstFactor)
	}
	return nil
}

// Burst is one arrival-surge window, in simulated seconds relative to
// the run start.
type Burst struct {
	Start, End float64
	// Factor is the rate multiplier inside the window.
	Factor float64
}

// Stall is one dispatcher-stall window, in virtual ticks.
type Stall struct {
	Start, End int64
}

// ServePlane is the precomputed serving-plane chaos schedule.
type ServePlane struct {
	bursts [][]Burst // per tenant, sorted by Start
	stalls [][]Stall // per group, sorted by Start
}

// servePlaneSalt keys the window rng off the fault seed so the
// schedule stream is independent of any other seeded stream.
const servePlaneSalt = 0x73727620 // "srv "

// NewServePlane precomputes the chaos schedule for a run over horizon
// simulated seconds with the given tenant and group counts.
// ticksPerSec converts stall windows to virtual ticks.
func NewServePlane(cfg ServeConfig, horizon float64, tenants, groups int, ticksPerSec float64) (*ServePlane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factor := cfg.BurstFactor
	if factor == 0 {
		factor = DefaultBurstFactor
	}
	burstSpan := cfg.BurstSpan
	if burstSpan == 0 {
		burstSpan = DefaultSpan
	}
	stallSpan := cfg.StallSpan
	if stallSpan == 0 {
		stallSpan = DefaultSpan
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ servePlaneSalt))
	p := &ServePlane{
		bursts: make([][]Burst, tenants),
		stalls: make([][]Stall, groups),
	}
	for t := 0; t < tenants; t++ {
		for i, n := 0, windowCount(rng, cfg.Bursts); i < n; i++ {
			start := rng.Float64() * horizon
			end := start + burstSpan*horizon*(0.5+rng.Float64())
			if end > horizon {
				end = horizon
			}
			p.bursts[t] = append(p.bursts[t], Burst{Start: start, End: end, Factor: factor})
		}
		sort.Slice(p.bursts[t], func(i, j int) bool { return p.bursts[t][i].Start < p.bursts[t][j].Start })
	}
	for g := 0; g < groups; g++ {
		for i, n := 0, windowCount(rng, cfg.Stalls); i < n; i++ {
			start := rng.Float64() * horizon
			end := start + stallSpan*horizon*(0.5+rng.Float64())
			p.stalls[g] = append(p.stalls[g], Stall{
				Start: int64(start * ticksPerSec),
				End:   int64(end * ticksPerSec),
			})
		}
		sort.Slice(p.stalls[g], func(i, j int) bool { return p.stalls[g][i].Start < p.stalls[g][j].Start })
	}
	return p, nil
}

// windowCount realises a fractional expected count: the integer part
// plus one more with the fractional probability.
func windowCount(rng *rand.Rand, expect float64) int {
	n := int(expect)
	if rng.Float64() < expect-float64(n) {
		n++
	}
	return n
}

// Bursts returns the tenant's burst windows, sorted by start.
func (p *ServePlane) Bursts(tenant int) []Burst {
	if p == nil || tenant >= len(p.bursts) {
		return nil
	}
	return p.bursts[tenant]
}

// StallUntil reports the end tick of the stall window containing now
// for the group, or 0 when the group is not stalled. The returned end
// strictly exceeds now, so callers can park until it.
func (p *ServePlane) StallUntil(group int, now int64) int64 {
	if p == nil || group >= len(p.stalls) {
		return 0
	}
	for _, s := range p.stalls[group] {
		if s.Start <= now && now < s.End {
			return s.End
		}
	}
	return 0
}

// StallWindows returns the group's stall windows (for tests and
// reports).
func (p *ServePlane) StallWindows(group int) []Stall {
	if p == nil || group >= len(p.stalls) {
		return nil
	}
	return p.stalls[group]
}
