package adapt

import (
	"cachepart/internal/cat"
	"cachepart/internal/resctrl"
)

// maskFor plans the capacity mask for a class: Streaming with a
// beneficiary to protect is confined to the narrow low slice (the
// static scheme's polluting portion, so steady workloads converge to
// the paper's masks), everything else keeps the full cache. Unknown
// deliberately maps to the full mask — the controller must never make
// an unclassified stream slower than an unpartitioned run would.
func (c *Controller) maskFor(class Class, confine bool) cat.WayMask {
	if class == Streaming && confine {
		return cat.PortionMask(c.ways, c.cfg.StreamingWaysFraction)
	}
	return cat.FullMask(c.ways)
}

// program writes a stream's group schemata if — and only if — the
// target mask differs from what the group is already programmed with.
// This controller-level elision is what makes quiescent epochs cost
// zero writes: the resctrl model, like the kernel, does not elide
// schemata writes itself.
//
// An injected write fault (EBUSY) is absorbed, not propagated: the
// group keeps its previous mask — a safe, merely stale partitioning —
// and because the mask then still differs from the plan, the next
// epoch's elision check retries the write without any extra machinery.
func (c *Controller) program(st *streamState, mask cat.WayMask) (bool, error) {
	cur, err := c.fs.Mask(st.group)
	if err != nil {
		return false, err
	}
	if cur == mask {
		return false, nil
	}
	if err := c.fs.WriteSchemata(st.group, resctrl.FormatSchemata(mask)); err != nil {
		if injected(err) {
			c.writeFailures++
			return false, nil
		}
		return false, err
	}
	return true, nil
}
