package adapt

import (
	"errors"
	"fmt"

	"cachepart/internal/cat"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/resctrl"
)

// Controller implements engine.Controller: one resctrl monitoring
// group per stream, sampled and reclassified every control epoch.
// Build one with Attach; all methods are driven from the engine's
// serial scheduling loop and must not be called concurrently.
//
// The controller is fault-tolerant by holding course: a monitoring
// read that fails (the kernel's "Unavailable"/"Error" files) keeps the
// stream's class, streak and probation exactly where they were — the
// epoch simply never happened for that stream, which also extends a
// running probation — and a failed schemata write is absorbed and
// retried by the next epoch's natural elision check. A stream whose
// control group cannot be created at all is degraded: the controller
// stops steering it and the engine's static path takes over.
type Controller struct {
	fs     resctrl.Plane
	win    *resctrl.MonWindow
	cfg    Config
	policy core.Policy

	ways     int
	llcBytes uint64
	// peakBytesPerSecond is the machine's DRAM bandwidth, the yardstick
	// for the streaming classification.
	peakBytesPerSecond float64

	streams []streamState
	history []Transition
	writes  int
	// gaps counts failed telemetry samples, writeFailures absorbed
	// schemata-write faults, across the run.
	gaps          int
	writeFailures int
}

// injected reports whether an error is an injected control-plane
// fault (internal/fault) rather than a genuine programming error.
func injected(err error) bool {
	var f interface{ Transient() bool }
	return errors.As(err, &f)
}

// Attach builds a controller over the engine's resctrl mount and
// machine geometry and attaches it. The engine then calls the
// controller back every cfg.EpochSeconds of simulated time; detach
// with e.DetachController().
func Attach(e *engine.Engine, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := e.Policy()
	c := &Controller{
		fs:                 e.ControlPlane(),
		win:                resctrl.NewMonWindow(e.ControlPlane()),
		cfg:                cfg,
		policy:             p,
		ways:               p.LLCWays,
		llcBytes:           p.LLCBytes,
		peakBytesPerSecond: e.Machine().Config().DRAMBandwidth,
	}
	if err := e.AttachController(c, cfg.EpochSeconds); err != nil {
		return nil, err
	}
	return c, nil
}

// groupName names the monitoring/control group of a stream.
func groupName(stream int) string { return fmt.Sprintf("adapt%d", stream) }

// BeginRun sets up one control group per stream — giving each stream
// its own CLOS and therefore its own CMT/MBM counters — programs them
// all to the full mask, and forgets any state from the previous run.
func (c *Controller) BeginRun(streams []engine.StreamInfo) error {
	c.streams = make([]streamState, len(streams))
	c.history = nil
	c.writes = 0
	c.gaps = 0
	c.writeFailures = 0
	c.win.Reset()
	full := cat.FullMask(c.ways)
	for i := range c.streams {
		st := &c.streams[i]
		st.group = groupName(i)
		st.cores = streams[i].Cores
		if st.cores < 1 {
			st.cores = 1
		}
		st.class = Unknown
		st.prevClass = Unknown
		st.lastHint = Unknown
		st.pending = Unknown
		st.nextTrial = c.cfg.TrialInterval
		if _, err := c.fs.Mask(st.group); err != nil {
			// First run on this mount: the group does not exist yet.
			if err := c.fs.MakeGroup(st.group); err != nil {
				if injected(err) {
					// No CLOS for this stream (ENOSPC): give up on
					// steering it. GroupFor falls back to the engine's
					// static path, which degrades safely on its own.
					st.degraded = true
					continue
				}
				return err
			}
		}
		if _, err := c.program(st, full); err != nil {
			return err
		}
	}
	return nil
}

// GroupFor routes every job of a stream into the stream's group. A
// changed annotation re-seeds the stream's class on the spot — the
// phase boundary is exactly when behaviour is announced to change —
// while a repeated annotation is left to telemetry.
func (c *Controller) GroupFor(stream int, cuid core.CUID, fp core.Footprint) (string, error) {
	if stream < 0 || stream >= len(c.streams) {
		return "", fmt.Errorf("adapt: stream %d out of range (run has %d)",
			stream, len(c.streams))
	}
	st := &c.streams[stream]
	if st.degraded {
		return "", nil // static fallback: the controller lost this group
	}
	if c.cfg.UseCUIDHints {
		if hint := c.hintClass(cuid, fp); hint != st.lastHint {
			st.lastHint = hint
			if hint != Unknown && hint != st.class && st.trialLeft == 0 {
				from := st.class
				st.class = hint
				st.pending = hint
				st.streak = 0
				st.sinceTrial = 0
				st.nextTrial = c.cfg.TrialInterval
				if err := c.apply(st, stream, -1, from, false); err != nil {
					return "", err
				}
			}
		}
	}
	return st.group, nil
}

// OnEpoch advances the control loop by one epoch: first every stream
// is sampled and (re)classified, then every mask is re-planned — the
// split matters because a stream's mask depends on the *other*
// streams' classes through the beneficiary rule.
func (c *Controller) OnEpoch(epoch int) error {
	for i := range c.streams {
		if c.streams[i].degraded {
			continue
		}
		if err := c.observe(&c.streams[i], i, epoch); err != nil {
			return err
		}
	}
	for i := range c.streams {
		st := &c.streams[i]
		if st.degraded {
			continue
		}
		if st.trialLeft > 0 {
			continue // probation holds the full mask
		}
		trial := st.trialEnded
		st.trialEnded = false
		if err := c.apply(st, i, epoch, st.prevClass, trial); err != nil {
			return err
		}
	}
	return nil
}

// observe samples one stream and advances its classification state.
// A failed sample — an "Unavailable"/"Error" monitoring file — is a
// telemetry gap, not evidence: the stream's class, debounce streak and
// probation countdown all hold exactly where they were (so a running
// probation is extended), and the MonWindow keeps its baseline so the
// next successful sample spans the gap instead of misreading it.
func (c *Controller) observe(st *streamState, stream, epoch int) error {
	d, err := c.win.Sample(st.group)
	if err != nil {
		c.gaps++
		return nil
	}
	obs := c.classify(d, st.cores)

	if st.trialLeft > 0 {
		// Probation: the mask is temporarily full; any epoch observed
		// below the streaming threshold clears the stream.
		st.trialLeft--
		if obs != Streaming {
			st.trialObs = obs
		}
		if st.trialLeft == 0 {
			st.sinceTrial = 0
			if st.trialObs != Unknown {
				// The stream stopped streaming the moment it got cache
				// back: it was thrashing, not scanning. Commit the
				// class observed under the full mask and restart
				// probation from the base interval.
				st.class = st.trialObs
				st.pending = st.trialObs
				st.streak = 0
				st.nextTrial = c.cfg.TrialInterval
			} else {
				// Still streaming with the whole cache on offer:
				// confine it again and back off the next probation.
				st.trialEnded = true
				st.nextTrial = int(float64(st.nextTrial) * c.cfg.TrialBackoff)
				if st.nextTrial > c.cfg.TrialIntervalMax {
					st.nextTrial = c.cfg.TrialIntervalMax
				}
			}
		}
		return nil
	}

	// Debounced reclassification.
	switch {
	case obs == st.class:
		st.streak = 0
		st.pending = obs
	case obs == st.pending:
		st.streak++
	default:
		st.pending = obs
		st.streak = 1
	}
	if obs != st.class && st.streak >= c.cfg.Hysteresis {
		st.class = obs
		st.streak = 0
		st.sinceTrial = 0
		st.nextTrial = c.cfg.TrialInterval
	}

	// Schedule probation for streams that are actually confined; an
	// unconfined streaming stream (no beneficiary) has nothing to
	// probe.
	if st.class == Streaming {
		cur, err := c.fs.Mask(st.group)
		if err != nil {
			return err
		}
		if cur == c.maskFor(Streaming, true) {
			st.sinceTrial++
			if st.sinceTrial >= st.nextTrial {
				st.sinceTrial = 0
				st.trialLeft = c.cfg.TrialLength
				st.trialObs = Unknown
				written, err := c.program(st, cat.FullMask(c.ways))
				if err != nil {
					return err
				}
				c.record(Transition{Epoch: epoch, Stream: stream, From: st.class,
					To: st.class, Mask: cat.FullMask(c.ways), Trial: true, Written: written})
			}
		}
	}
	return nil
}

// beneficiary reports whether confining stream i would protect
// anyone: some other stream must hold (or, while still unclassified,
// may hold) a working set in the cache. Without a beneficiary the
// controller leaves even streaming streams unconfined — confinement
// costs the stream a little (prefetched lines evict each other in a
// narrow slice) and buys nothing. Disabled via RequireBeneficiary.
func (c *Controller) beneficiary(i int) bool {
	if !c.cfg.RequireBeneficiary {
		return true
	}
	for j := range c.streams {
		if j == i {
			continue
		}
		if cl := c.streams[j].class; cl == CacheSensitive || cl == Unknown {
			return true
		}
	}
	return false
}

// apply programs the mask planned for a stream's class (elided when
// unchanged) and records the transition; from is the stream's class
// before this step, for the log.
func (c *Controller) apply(st *streamState, stream, epoch int, from Class, trial bool) error {
	mask := c.maskFor(st.class, c.beneficiary(stream))
	written, err := c.program(st, mask)
	if err != nil {
		return err
	}
	c.record(Transition{Epoch: epoch, Stream: stream, From: from,
		To: st.class, Mask: mask, Trial: trial, Written: written})
	st.prevClass = st.class
	return nil
}

// record logs a transition if it changed anything — a real schemata
// write or a class change — trimming the history to the configured
// bound.
func (c *Controller) record(t Transition) {
	if t.Written {
		c.writes++
	}
	if !t.Written && t.From == t.To {
		return
	}
	if c.cfg.HistoryLimit == 0 {
		return
	}
	c.history = append(c.history, t)
	if len(c.history) > c.cfg.HistoryLimit {
		c.history = append(c.history[:0], c.history[len(c.history)-c.cfg.HistoryLimit:]...)
	}
}

// Transitions returns the recorded mask reprogrammings of the current
// run, oldest first (bounded by Config.HistoryLimit).
func (c *Controller) Transitions() []Transition {
	out := make([]Transition, len(c.history))
	copy(out, c.history)
	return out
}

// SchemataWrites reports how many schemata writes the controller has
// performed since BeginRun — the number elision keeps at zero across
// quiescent epochs.
func (c *Controller) SchemataWrites() int { return c.writes }

// Gaps reports how many telemetry samples failed since BeginRun —
// epochs the controller rode out by holding its last decision.
func (c *Controller) Gaps() int { return c.gaps }

// WriteFailures reports how many schemata writes were absorbed as
// injected faults since BeginRun; each leaves the previous mask in
// place until a later epoch's elision check retries it.
func (c *Controller) WriteFailures() int { return c.writeFailures }

// ClassOf reports a stream's current class.
func (c *Controller) ClassOf(stream int) Class {
	if stream < 0 || stream >= len(c.streams) {
		return Unknown
	}
	return c.streams[stream].class
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }
