package adapt_test

import (
	"math/rand"
	"reflect"
	"testing"

	"cachepart/internal/adapt"
	"cachepart/internal/cachesim"
	"cachepart/internal/cat"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// walkKernel reads a region at line stride, wrapping around, for a
// fixed number of rows. Over a region much larger than the LLC it
// behaves as a scan; over a small region it is reuse-heavy.
type walkKernel struct {
	region memory.Region
	pos    uint64
	left   int
}

func (k *walkKernel) Step(ctx *exec.Ctx, budget int) (int, bool) {
	n := budget
	if n > k.left {
		n = k.left
	}
	for i := 0; i < n; i++ {
		ctx.Read(k.region.Addr(k.pos))
		k.pos += memory.LineSize
		if k.pos >= k.region.Size {
			k.pos = 0
		}
		ctx.Compute(2, 2)
	}
	k.left -= n
	return n, k.left == 0
}

// flipQuery alternates a streaming phase over a region far larger
// than the LLC with a reuse phase over a small resident region —
// the mid-query behaviour change (think join build turning into
// probe) the controller must track. Both phases carry the default
// annotation: the controller is blind.
type flipQuery struct {
	big, small memory.Region
	streamRows int
	reuseRows  int
}

func (q *flipQuery) Name() string { return "flip" }

func (q *flipQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	return []engine.Phase{
		{
			Name: "stream", CUID: core.Sensitive,
			Kernels:   []exec.Kernel{&walkKernel{region: q.big, left: q.streamRows}},
			CountRows: true,
		},
		{
			Name: "reuse", CUID: core.Sensitive,
			Kernels:   []exec.Kernel{&walkKernel{region: q.small, left: q.reuseRows}},
			CountRows: true,
		},
	}, nil
}

// flipSystem builds a small machine with an attached controller tuned
// to a fast probation cadence.
func flipSystem(t *testing.T) (*engine.Engine, *adapt.Controller, *flipQuery) {
	t.Helper()
	cfg := cachesim.DefaultConfig().Scaled(32)
	cfg.Cores = 2
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(m, core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways))
	if err != nil {
		t.Fatal(err)
	}
	acfg := adapt.DefaultConfig()
	acfg.EpochSeconds = 20e-6
	acfg.TrialInterval = 8
	acfg.TrialLength = 3
	acfg.TrialIntervalMax = 32
	// The flip query runs alone; confinement itself is under test, so
	// drop the nobody-to-protect escape.
	acfg.RequireBeneficiary = false
	ctrl, err := adapt.Attach(e, acfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := cfg.LLC.Size
	space := memory.NewSpace()
	q := &flipQuery{
		big:        space.Alloc("flip.big", 4*llc),
		small:      space.Alloc("flip.small", llc/4),
		streamRows: 60_000,
		reuseRows:  100_000,
	}
	return e, ctrl, q
}

// TestPhaseFlipReclassified runs the flip query under the blind
// controller and checks that it tracks both directions: the streaming
// phase gets confined to the narrow slice, and after the flip a
// probation widens the mask and the reuse phase is committed
// cache-sensitive.
func TestPhaseFlipReclassified(t *testing.T) {
	e, ctrl, q := flipSystem(t)
	res, err := e.Run([]engine.StreamSpec{{Query: q, Cores: []int{0}}},
		engine.RunOptions{Duration: 0.004, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows == 0 {
		t.Fatal("flip query made no measured progress")
	}

	ways := e.Policy().LLCWays
	full := cat.FullMask(ways)
	narrow := cat.PortionMask(ways, ctrl.Config().StreamingWaysFraction)
	var confines, widens, recoveries int
	firstConfine, firstRecovery := -1, -1
	for _, tr := range ctrl.Transitions() {
		switch {
		case !tr.Trial && tr.To == adapt.Streaming && tr.Mask == narrow:
			confines++
			if firstConfine < 0 {
				firstConfine = tr.Epoch
			}
		case tr.Trial && tr.Mask == full:
			widens++
		case !tr.Trial && tr.To == adapt.CacheSensitive && tr.Mask == full:
			recoveries++
			if firstRecovery < 0 {
				firstRecovery = tr.Epoch
			}
		}
	}
	if confines == 0 {
		t.Fatal("streaming phase was never confined")
	}
	if widens == 0 {
		t.Fatal("confined stream was never probed")
	}
	if recoveries == 0 {
		t.Fatal("reuse phase was never reclassified cache-sensitive")
	}
	if firstRecovery >= 0 && firstConfine >= 0 && firstRecovery <= firstConfine {
		t.Fatalf("recovery (epoch %d) before confinement (epoch %d)",
			firstRecovery, firstConfine)
	}
	// The flip query alternates every execution, so the controller
	// should confine again after recovering at least once.
	if confines < 2 {
		t.Fatalf("controller confined only %d time(s); never re-narrowed after recovery",
			confines)
	}
	t.Logf("transitions: %d confine, %d widen, %d recover (%d writes)",
		confines, widens, recoveries, ctrl.SchemataWrites())
}

// TestAdaptiveRunBitIdentical runs the same seeded flip workload twice
// with a controller attached and requires identical results and an
// identical transition log — the determinism contract extended to the
// adaptive path.
func TestAdaptiveRunBitIdentical(t *testing.T) {
	run := func() ([]engine.StreamResult, []adapt.Transition) {
		e, ctrl, q := flipSystem(t)
		res, err := e.Run([]engine.StreamSpec{{Query: q, Cores: []int{0}}},
			engine.RunOptions{Duration: 0.002, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res, ctrl.Transitions()
	}
	res1, tr1 := run()
	res2, tr2 := run()
	if len(tr1) == 0 {
		t.Fatal("expected controller activity")
	}
	assertDeepEqual(t, "results", res1, res2)
	assertDeepEqual(t, "transitions", tr1, tr2)
}

func assertDeepEqual(t *testing.T, what string, a, b any) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s differ between same-seed runs:\n%+v\n%+v", what, a, b)
	}
}
