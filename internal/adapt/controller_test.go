package adapt

import (
	"testing"

	"cachepart/internal/cat"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/resctrl"
)

// beginRun starts a run of single-core streams with the given names.
func beginRun(c *Controller, names ...string) error {
	infos := make([]engine.StreamInfo, len(names))
	for i, n := range names {
		infos[i] = engine.StreamInfo{Name: n, Cores: 1}
	}
	return c.BeginRun(infos)
}

// fakeMon lets tests script per-CLOS telemetry.
type fakeMon struct {
	occ     map[int]uint64
	traffic map[int]uint64
}

func (m *fakeMon) LLCOccupancyOfCLOS(clos int) uint64 { return m.occ[clos] }
func (m *fakeMon) MemTrafficOfCLOS(clos int) uint64   { return m.traffic[clos] }

const (
	testLLCBytes = 1 << 20
	// testPeakBW is the fake machine's DRAM bandwidth; the default
	// config marks a stream streaming above 3.5% of it per core.
	testPeakBW = 8e9
)

// testConfig shortens the probation cadence so tests stay compact,
// and drops the beneficiary rule: most tests drive a single stream
// whose confinement is the behaviour under test.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TrialInterval = 4
	cfg.TrialLength = 2
	cfg.TrialIntervalMax = 16
	cfg.RequireBeneficiary = false
	return cfg
}

// newTestController builds a controller over a fake mount without an
// engine, so tests can drive the control loop epoch by epoch.
func newTestController(t *testing.T, cfg Config) (*Controller, *fakeMon) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	regs, err := cat.NewRegisters(4, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	fs := resctrl.Mount(regs)
	mon := &fakeMon{occ: map[int]uint64{}, traffic: map[int]uint64{}}
	fs.AttachMonitor(mon)
	return &Controller{
		fs:                 fs,
		win:                resctrl.NewMonWindow(fs),
		cfg:                cfg,
		policy:             core.DefaultPolicy(testLLCBytes, 20),
		ways:               20,
		llcBytes:           testLLCBytes,
		peakBytesPerSecond: testPeakBW,
	}, mon
}

// Stream 0's group "adapt0" is the first group created on the mount,
// so it occupies CLOS 1 (the root group holds CLOS 0).
const stream0CLOS = 1

// epoch scripts one control epoch for stream 0: trafficDelta fresh
// DRAM bytes and an instantaneous occupancy.
func epoch(t *testing.T, c *Controller, mon *fakeMon, n int, trafficDelta, occ uint64) {
	t.Helper()
	mon.traffic[stream0CLOS] += trafficDelta
	mon.occ[stream0CLOS] = occ
	if err := c.OnEpoch(n); err != nil {
		t.Fatalf("epoch %d: %v", n, err)
	}
}

const (
	// Comfortably above/below the default thresholds: hotTraffic over a
	// 100 µs epoch is ~1.3 GB/s on one core, well above 3.5% of
	// testPeakBW; the occupancy split is at 5% of the 1 MiB test LLC.
	hotTraffic = testLLCBytes / 8
	bigOcc     = testLLCBytes / 2
	tinyOcc    = testLLCBytes / 1024
)

func narrowMask() cat.WayMask { return cat.PortionMask(20, 0.10) }

func TestBlindStreamingThenSensitive(t *testing.T) {
	cfg := testConfig()
	cfg.TrialInterval = 64 // keep probation out of this test
	cfg.TrialIntervalMax = 64
	c, mon := newTestController(t, cfg)
	if err := beginRun(c, "s"); err != nil {
		t.Fatal(err)
	}
	if got := c.SchemataWrites(); got != 0 {
		t.Fatalf("BeginRun on a fresh mount wrote %d times, want 0", got)
	}

	// Two stream-like epochs: hysteresis commits Streaming and
	// confines the stream.
	epoch(t, c, mon, 0, hotTraffic, bigOcc)
	epoch(t, c, mon, 1, hotTraffic, bigOcc)
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("class after 2 hot epochs = %v, want streaming", got)
	}
	if m, err := c.fs.Mask("adapt0"); err != nil || m != narrowMask() {
		t.Fatalf("mask = %v (%v), want %v", m, err, narrowMask())
	}
	if got := c.SchemataWrites(); got != 1 {
		t.Fatalf("writes after confinement = %d, want 1", got)
	}

	// Steady streaming: quiescent epochs are free.
	for e := 2; e < 6; e++ {
		epoch(t, c, mon, e, hotTraffic, bigOcc)
	}
	if got := c.SchemataWrites(); got != 1 {
		t.Fatalf("steady epochs performed %d extra writes", got-1)
	}

	// The stream settles onto a resident working set: traffic stops,
	// occupancy stays. Telemetry overrides the earlier verdict.
	epoch(t, c, mon, 6, 0, bigOcc)
	epoch(t, c, mon, 7, 0, bigOcc)
	if got := c.ClassOf(0); got != CacheSensitive {
		t.Fatalf("class after quiet epochs = %v, want cache-sensitive", got)
	}
	if m, _ := c.fs.Mask("adapt0"); m != cat.FullMask(20) {
		t.Fatalf("mask = %v, want full", m)
	}

	// Quiescent again: no further writes, ever.
	w := c.SchemataWrites()
	for e := 8; e < 16; e++ {
		epoch(t, c, mon, e, 0, bigOcc)
	}
	if got := c.SchemataWrites(); got != w {
		t.Fatalf("quiescent epochs performed %d writes", got-w)
	}
}

func TestTrialRecoversThrashingStream(t *testing.T) {
	c, mon := newTestController(t, testConfig())
	if err := beginRun(c, "s"); err != nil {
		t.Fatal(err)
	}
	// Annotated polluting: confined immediately, before any epoch.
	if _, err := c.GroupFor(0, core.Polluting, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	if m, _ := c.fs.Mask("adapt0"); m != narrowMask() {
		t.Fatalf("hinted mask = %v, want %v", m, narrowMask())
	}

	// The job is actually reuse-heavy, but inside the narrow slice it
	// thrashes: traffic stays hot, indistinguishable from a scan.
	flip := 0
	e := 0
	for ; e < 16; e++ {
		if c.streams[0].trialLeft > 0 {
			break // probation: the mask was widened
		}
		epoch(t, c, mon, e, hotTraffic, testLLCBytes/8)
	}
	if c.streams[0].trialLeft == 0 {
		t.Fatal("confined stream never went on probation")
	}
	if m, _ := c.fs.Mask("adapt0"); m != cat.FullMask(20) {
		t.Fatal("probation did not widen the mask")
	}
	// With the cache back, the working set fits: one loading epoch,
	// then traffic collapses.
	epoch(t, c, mon, e, hotTraffic, bigOcc)
	epoch(t, c, mon, e+1, 0, bigOcc)
	if got := c.ClassOf(0); got != CacheSensitive {
		t.Fatalf("class after probation = %v, want cache-sensitive", got)
	}
	if m, _ := c.fs.Mask("adapt0"); m != cat.FullMask(20) {
		t.Fatal("recovered stream did not keep the full mask")
	}
	if bound := c.cfg.TrialInterval + c.cfg.TrialLength + c.cfg.Hysteresis; e+1-flip > bound {
		t.Fatalf("recovery took %d epochs, bound %d", e+1-flip, bound)
	}
}

func TestTrialConfirmsStreamingAndBacksOff(t *testing.T) {
	c, mon := newTestController(t, testConfig())
	if err := beginRun(c, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GroupFor(0, core.Polluting, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	// A genuine scan: hot through confinement and both probations.
	widenEpochs := []int{}
	for e := 0; e < 40; e++ {
		before := c.streams[0].trialLeft
		epoch(t, c, mon, e, hotTraffic, bigOcc)
		if before == 0 && c.streams[0].trialLeft > 0 {
			widenEpochs = append(widenEpochs, e)
		}
	}
	if len(widenEpochs) < 2 {
		t.Fatalf("saw %d probations in 40 epochs, want at least 2", len(widenEpochs))
	}
	// Each probation ends narrow again.
	if m, _ := c.fs.Mask("adapt0"); m != narrowMask() {
		t.Fatalf("mask after probations = %v, want %v", m, narrowMask())
	}
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("class = %v, want streaming", got)
	}
	// Backoff: the second interval is at least twice the first.
	first := widenEpochs[1] - widenEpochs[0]
	if first < 2*c.cfg.TrialInterval-1 {
		t.Fatalf("probation interval %d did not back off (base %d)",
			first, c.cfg.TrialInterval)
	}
	// The transition log shows the widen/narrow pairs as trials.
	var widens, narrows int
	for _, tr := range c.Transitions() {
		if !tr.Trial {
			continue
		}
		if tr.Mask == cat.FullMask(20) {
			widens++
		}
		if tr.Mask == narrowMask() {
			narrows++
		}
	}
	if widens < 2 || narrows < 2 {
		t.Fatalf("trial transitions widen=%d narrow=%d, want ≥2 each", widens, narrows)
	}
}

func TestHintSeeding(t *testing.T) {
	c, _ := newTestController(t, testConfig())
	if err := beginRun(c, "s"); err != nil {
		t.Fatal(err)
	}
	// Sensitive is the unannotated default: no information, full mask.
	if _, err := c.GroupFor(0, core.Sensitive, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	if got := c.ClassOf(0); got != Unknown {
		t.Fatalf("class after default annotation = %v, want unknown", got)
	}
	// Polluting confines immediately.
	if _, err := c.GroupFor(0, core.Polluting, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("class after polluting annotation = %v, want streaming", got)
	}
	// A repeated unannotated phase does not un-confine: Sensitive
	// carries no information either way.
	if _, err := c.GroupFor(0, core.Sensitive, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("default annotation overrode telemetry seed: %v", got)
	}
	// Depends follows the bit-vector heuristic, both directions.
	big := core.Footprint{BitVectorBytes: testLLCBytes / 2}
	if _, err := c.GroupFor(0, core.Depends, big); err != nil {
		t.Fatal(err)
	}
	if got := c.ClassOf(0); got != CacheSensitive {
		t.Fatalf("class for LLC-sized bit vector = %v, want cache-sensitive", got)
	}
	small := core.Footprint{BitVectorBytes: testLLCBytes / 1024}
	if _, err := c.GroupFor(0, core.Depends, small); err != nil {
		t.Fatal(err)
	}
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("class for tiny bit vector = %v, want streaming", got)
	}
	// Unknown streams are rejected.
	if _, err := c.GroupFor(7, core.Sensitive, core.Footprint{}); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
	// Transitions seeded by annotations carry epoch -1.
	for _, tr := range c.Transitions() {
		if tr.Epoch != -1 {
			t.Fatalf("annotation-seeded transition has epoch %d", tr.Epoch)
		}
	}
}

func TestBeginRunResetsState(t *testing.T) {
	c, mon := newTestController(t, testConfig())
	if err := beginRun(c, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GroupFor(0, core.Polluting, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	epoch(t, c, mon, 0, hotTraffic, bigOcc)
	if len(c.Transitions()) == 0 {
		t.Fatal("expected transitions in first run")
	}
	// A second run starts clean: full masks, empty history.
	if err := beginRun(c, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if m, _ := c.fs.Mask("adapt0"); m != cat.FullMask(20) {
		t.Fatalf("mask after BeginRun = %v, want full", m)
	}
	if got := c.ClassOf(0); got != Unknown {
		t.Fatalf("class after BeginRun = %v, want unknown", got)
	}
	if got := len(c.Transitions()); got != 0 {
		t.Fatalf("history after BeginRun has %d entries", got)
	}
}

// epochAt scripts one epoch for an arbitrary stream's CLOS without
// advancing the other streams' counters.
func epochBoth(t *testing.T, c *Controller, mon *fakeMon, n int, d0, o0, d1, o1 uint64) {
	t.Helper()
	mon.traffic[1] += d0
	mon.occ[1] = o0
	mon.traffic[2] += d1
	mon.occ[2] = o1
	if err := c.OnEpoch(n); err != nil {
		t.Fatalf("epoch %d: %v", n, err)
	}
}

func TestBeneficiaryGate(t *testing.T) {
	cfg := testConfig()
	cfg.RequireBeneficiary = true
	c, mon := newTestController(t, cfg)

	// Scan ∥ scan: two streaming streams, nobody with a working set to
	// protect — neither gets confined.
	if err := beginRun(c, "a", "b"); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		epochBoth(t, c, mon, e, hotTraffic, tinyOcc, hotTraffic, tinyOcc)
	}
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("stream 0 class = %v, want streaming", got)
	}
	if m, _ := c.fs.Mask("adapt0"); m != cat.FullMask(20) {
		t.Fatalf("stream 0 confined to %v with no beneficiary", m)
	}
	if m, _ := c.fs.Mask("adapt1"); m != cat.FullMask(20) {
		t.Fatalf("stream 1 confined to %v with no beneficiary", m)
	}

	// Stream 1 settles onto a resident working set: now confining the
	// scan protects it.
	for e := 6; e < 10; e++ {
		epochBoth(t, c, mon, e, hotTraffic, tinyOcc, 0, bigOcc)
	}
	if got := c.ClassOf(1); got != CacheSensitive {
		t.Fatalf("stream 1 class = %v, want cache-sensitive", got)
	}
	if m, _ := c.fs.Mask("adapt0"); m != narrowMask() {
		t.Fatalf("scan not confined (%v) once a beneficiary appeared", m)
	}
	// The sensitive stream itself keeps the full cache.
	if m, _ := c.fs.Mask("adapt1"); m != cat.FullMask(20) {
		t.Fatalf("beneficiary stream confined to %v", m)
	}

	// Single-stream run under the same config: a lone scan is never
	// confined, however hot.
	if err := beginRun(c, "solo"); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 8; e++ {
		epoch(t, c, mon, e, hotTraffic, tinyOcc)
	}
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("solo class = %v, want streaming", got)
	}
	if m, _ := c.fs.Mask("adapt0"); m != cat.FullMask(20) {
		t.Fatalf("isolated stream confined to %v", m)
	}
}

func TestClassify(t *testing.T) {
	c, _ := newTestController(t, testConfig())
	cases := []struct {
		name string
		d    resctrl.MonDelta
		want Class
	}{
		{"hot traffic", resctrl.MonDelta{LLCOccupancyBytes: bigOcc, MemBytesDelta: hotTraffic}, Streaming},
		{"hot traffic, empty cache", resctrl.MonDelta{LLCOccupancyBytes: 0, MemBytesDelta: hotTraffic}, Streaming},
		{"resident set", resctrl.MonDelta{LLCOccupancyBytes: bigOcc, MemBytesDelta: 0}, CacheSensitive},
		{"idle", resctrl.MonDelta{LLCOccupancyBytes: tinyOcc, MemBytesDelta: 0}, Neutral},
	}
	for _, tc := range cases {
		if got := c.classify(tc.d, 1); got != tc.want {
			t.Errorf("%s: classify(%+v) = %v, want %v", tc.name, tc.d, got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.EpochSeconds = 0 },
		func(c *Config) { c.Hysteresis = 0 },
		func(c *Config) { c.StreamingBandwidthFraction = 0 },
		func(c *Config) { c.StreamingBandwidthFraction = 1.5 },
		func(c *Config) { c.SensitiveOccupancyFraction = -1 },
		func(c *Config) { c.StreamingWaysFraction = 1.5 },
		func(c *Config) { c.TrialInterval = 0 },
		func(c *Config) { c.TrialLength = 0 },
		func(c *Config) { c.TrialBackoff = 0.5 },
		func(c *Config) { c.TrialIntervalMax = 1 },
		func(c *Config) { c.HistoryLimit = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
