package adapt

import (
	"testing"

	"cachepart/internal/cat"
	"cachepart/internal/core"
	"cachepart/internal/resctrl"
)

// flakyErr is a locally-declared injected control-plane error: it
// carries the Transient marker the controller classifies by, without
// importing internal/fault — proving the classification contract is
// the interface, not the concrete type.
type flakyErr struct{ persistent bool }

func (e *flakyErr) Error() string   { return "flaky: injected control-plane failure" }
func (e *flakyErr) Transient() bool { return !e.persistent }

// flakyPlane wraps the real mount and fails a scripted number of
// schemata writes and group creations with injected errors.
type flakyPlane struct {
	resctrl.Plane
	failWrites int
	failMake   int
}

func (p *flakyPlane) WriteSchemata(group, schemata string) error {
	if p.failWrites > 0 {
		p.failWrites--
		return &flakyErr{}
	}
	return p.Plane.WriteSchemata(group, schemata)
}

func (p *flakyPlane) MakeGroup(name string) error {
	if p.failMake > 0 {
		p.failMake--
		return &flakyErr{persistent: true}
	}
	return p.Plane.MakeGroup(name)
}

// gapController builds a controller over an optionally-wrapped mount,
// returning the underlying FS so tests can script telemetry gaps by
// detaching the monitor.
func gapController(t *testing.T, wrap func(resctrl.Plane) resctrl.Plane) (*Controller, *fakeMon, *resctrl.FS) {
	t.Helper()
	cfg := testConfig()
	cfg.TrialInterval = 64 // keep probation out of these tests
	cfg.TrialIntervalMax = 64
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	regs, err := cat.NewRegisters(4, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	fs := resctrl.Mount(regs)
	mon := &fakeMon{occ: map[int]uint64{}, traffic: map[int]uint64{}}
	fs.AttachMonitor(mon)
	var plane resctrl.Plane = fs
	if wrap != nil {
		plane = wrap(fs)
	}
	return &Controller{
		fs:                 plane,
		win:                resctrl.NewMonWindow(plane),
		cfg:                cfg,
		policy:             core.DefaultPolicy(testLLCBytes, 20),
		ways:               20,
		llcBytes:           testLLCBytes,
		peakBytesPerSecond: testPeakBW,
	}, mon, fs
}

// TestTelemetryGapHoldsClass scripts a monitoring outage in the middle
// of a streaming phase: the controller must hold its last decision —
// class, mask, debounce state — across the gap rather than treat
// missing telemetry as evidence of anything.
func TestTelemetryGapHoldsClass(t *testing.T) {
	c, mon, fs := gapController(t, nil)
	if err := beginRun(c, "s"); err != nil {
		t.Fatal(err)
	}
	epoch(t, c, mon, 0, hotTraffic, bigOcc)
	epoch(t, c, mon, 1, hotTraffic, bigOcc)
	if got := c.ClassOf(0); got != Streaming {
		t.Fatalf("class before gap = %v, want streaming", got)
	}

	// Outage: every sample fails until the monitor comes back.
	fs.AttachMonitor(nil)
	for e := 2; e < 6; e++ {
		if err := c.OnEpoch(e); err != nil {
			t.Fatalf("epoch %d errored during telemetry gap: %v", e, err)
		}
	}
	if got := c.ClassOf(0); got != Streaming {
		t.Errorf("class during gap = %v, want streaming held", got)
	}
	if m, _ := c.fs.Mask("adapt0"); m != narrowMask() {
		t.Errorf("mask during gap = %v, want %v held", m, narrowMask())
	}
	if got := c.Gaps(); got != 4 {
		t.Errorf("Gaps() = %d, want 4", got)
	}

	// Recovery: the stream is still streaming; no spurious transition.
	fs.AttachMonitor(mon)
	transitions := len(c.Transitions())
	epoch(t, c, mon, 6, hotTraffic, bigOcc)
	epoch(t, c, mon, 7, hotTraffic, bigOcc)
	if got := c.ClassOf(0); got != Streaming {
		t.Errorf("class after recovery = %v, want streaming", got)
	}
	if got := len(c.Transitions()); got != transitions {
		t.Errorf("recovery logged %d spurious transitions", got-transitions)
	}
}

// TestGapSpanningDeltaNotMisclassified pins the rate normalization: a
// quiet stream keeps trickling traffic through a two-epoch outage, so
// the first sample after recovery sees three epochs' bytes at once.
// Divided by the spanned epochs it is still a quiet rate; read naively
// it would look like a streaming burst.
func TestGapSpanningDeltaNotMisclassified(t *testing.T) {
	// Per-epoch traffic at ~60% of the streaming threshold: three
	// epochs' accumulation reads ~1.8x the threshold if the gap is
	// ignored.
	quiet := uint64(hotTraffic / 8)
	c, mon, fs := gapController(t, nil)
	if err := beginRun(c, "s"); err != nil {
		t.Fatal(err)
	}
	epoch(t, c, mon, 0, quiet, tinyOcc)
	epoch(t, c, mon, 1, quiet, tinyOcc)
	if got := c.ClassOf(0); got == Streaming {
		t.Fatalf("quiet stream classified streaming before gap")
	}

	fs.AttachMonitor(nil)
	for e := 2; e < 4; e++ {
		mon.traffic[stream0CLOS] += quiet // traffic continues unobserved
		if err := c.OnEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	fs.AttachMonitor(mon)
	epoch(t, c, mon, 4, quiet, tinyOcc)
	epoch(t, c, mon, 5, quiet, tinyOcc)
	if got := c.ClassOf(0); got == Streaming {
		t.Error("gap-spanning delta misclassified a quiet stream as streaming")
	}
	if got := c.Gaps(); got != 2 {
		t.Errorf("Gaps() = %d, want 2", got)
	}
}

// TestWriteFaultDegradesToStaleMask scripts an EBUSY-style schemata
// write fault at the confinement moment: the epoch must not error, the
// group keeps its previous (full, safe) mask, and the next epoch's
// elision check retries and lands the write.
func TestWriteFaultDegradesToStaleMask(t *testing.T) {
	var fp *flakyPlane
	c, mon, _ := gapController(t, func(p resctrl.Plane) resctrl.Plane {
		fp = &flakyPlane{Plane: p, failWrites: 1}
		return fp
	})
	if err := beginRun(c, "s"); err != nil {
		t.Fatal(err)
	}
	epoch(t, c, mon, 0, hotTraffic, bigOcc)
	epoch(t, c, mon, 1, hotTraffic, bigOcc) // confinement write → injected fault
	if got := c.WriteFailures(); got != 1 {
		t.Fatalf("WriteFailures() = %d, want 1", got)
	}
	if m, _ := c.fs.Mask("adapt0"); m != cat.FullMask(20) {
		t.Fatalf("mask after failed write = %v, want full (stale but safe)", m)
	}
	epoch(t, c, mon, 2, hotTraffic, bigOcc) // elision check retries
	if m, _ := c.fs.Mask("adapt0"); m != narrowMask() {
		t.Errorf("mask after retry epoch = %v, want %v", m, narrowMask())
	}
	if got := c.WriteFailures(); got != 1 {
		t.Errorf("retry recorded %d extra failures", got-1)
	}
}

// TestMakeGroupFaultDegradesStream scripts CLOS exhaustion at run
// start: the stream whose group cannot be created is degraded — its
// jobs route to the engine's static path — while the run proceeds.
func TestMakeGroupFaultDegradesStream(t *testing.T) {
	c, mon, _ := gapController(t, func(p resctrl.Plane) resctrl.Plane {
		return &flakyPlane{Plane: p, failMake: 1}
	})
	if err := beginRun(c, "s", "u"); err != nil {
		t.Fatalf("BeginRun errored on injected MakeGroup fault: %v", err)
	}
	g, err := c.GroupFor(0, core.Polluting, core.Footprint{})
	if err != nil {
		t.Fatal(err)
	}
	if g != "" {
		t.Errorf("degraded stream routed to group %q, want static fallback", g)
	}
	// The second stream's group was created normally and is steered.
	g, err = c.GroupFor(1, core.Sensitive, core.Footprint{})
	if err != nil {
		t.Fatal(err)
	}
	if g == "" {
		t.Error("healthy stream degraded alongside the faulted one")
	}
	// Epochs skip the degraded stream without error.
	mon.traffic[2] += hotTraffic // the healthy stream's CLOS
	if err := c.OnEpoch(0); err != nil {
		t.Fatalf("OnEpoch errored with a degraded stream: %v", err)
	}
}
