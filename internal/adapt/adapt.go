// Package adapt is an online feedback controller that reprograms CAT
// masks from CMT/MBM telemetry, the dynamic counterpart of the static
// CUID→mask scheme in internal/core. The paper derives its
// partitioning scheme offline (Section V-B) and notes in the outlook
// (Section VIII) that production systems want the masks adjusted at
// runtime; this package closes that loop in the spirit of LFOC's
// occupancy/traffic classifier and Com-CAS's phase-boundary
// re-apportioning.
//
// Every control epoch of *virtual* time the controller samples each
// stream's resctrl monitoring group — llc_occupancy and the
// mbm_total_bytes delta over the epoch, via resctrl.MonWindow — and
// classifies the stream's current behaviour:
//
//   - Streaming: the stream's per-core DRAM traffic runs at a sizeable
//     fraction of the machine's memory bandwidth — it pulls new lines
//     far faster than it could possibly reuse them (the column scan).
//     It is confined to a small slice of the cache, the same slice the
//     static scheme gives Polluting jobs.
//   - CacheSensitive: little fresh traffic but substantial occupancy —
//     the stream lives off its resident working set (the grouped
//     aggregation). It keeps the full cache.
//   - Neutral: neither; the full mask, since a job that touches little
//     cache cannot pollute it.
//
// Classification changes are debounced by a hysteresis streak, and a
// stream confined as Streaming is periodically put on *probation*:
// its mask is widened for a few epochs and only kept narrow if the
// traffic stays stream-like. Probation is what recovers a stream whose
// behaviour changed mid-query (a join switching from build to probe):
// inside a too-small partition a reuse-heavy job thrashes and looks
// exactly like a scan, so the controller must widen to tell them
// apart. Probation intervals back off exponentially so a genuine scan
// is not repeatedly handed the whole cache.
//
// CUID annotations, when present, seed the classification (Polluting
// plans straight into the narrow slice; a Depends join is decided by
// the same bit-vector heuristic as the static policy), and a changed
// annotation at a phase boundary re-seeds it. Telemetry then
// overrides in either direction, which is what lets the controller
// beat a mis-annotated workload and infer classes for an unannotated
// one. On a steady, correctly-annotated workload the controller
// converges to exactly the static scheme's masks and — thanks to
// redundant-write elision — performs zero schemata writes in
// quiescent epochs.
//
// The controller runs inside the engine's serial virtual-time loop
// (see engine.Controller), so it needs no locking and its decisions
// are bit-identical across same-seed runs.
package adapt

import (
	"fmt"

	"cachepart/internal/cat"
)

// Class is the controller's behavioural classification of a stream.
type Class int

const (
	// Unknown is the initial class before any telemetry or annotation;
	// it plans the full mask so an unclassified stream can never
	// regress.
	Unknown Class = iota
	// Neutral streams touch too little cache to matter either way.
	Neutral
	// CacheSensitive streams live off a resident working set.
	CacheSensitive
	// Streaming streams pull fresh lines far faster than they reuse
	// them and are confined to a narrow slice.
	Streaming
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Unknown:
		return "unknown"
	case Neutral:
		return "neutral"
	case CacheSensitive:
		return "cache-sensitive"
	case Streaming:
		return "streaming"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config holds the controller's knobs. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// EpochSeconds is the control epoch in simulated time. The default
	// of 100 µs matches the paper's observation that mask updates cost
	// tens of microseconds of kernel interaction: epochs are long
	// enough that even an epoch with a mask write costs well under one
	// percent of it.
	EpochSeconds float64

	// Hysteresis is how many consecutive epochs telemetry must suggest
	// a different class before the controller commits it.
	Hysteresis int

	// StreamingBandwidthFraction classifies an epoch as stream-like
	// when the stream's average DRAM traffic rate over the epoch,
	// divided by its worker-core count, exceeds this fraction of the
	// machine's DRAM bandwidth. The rate is the discriminator occupancy
	// cannot provide: an unconfined scan fills the whole cache just
	// like a resident working set, but only a scan keeps DRAM busy at a
	// sizeable share of peak per core — data arriving that fast cannot
	// be getting reused out of the cache. The per-core normalization
	// keeps one threshold valid across machine scales and stream
	// widths: measured per-core rates are ~5-7 GB/s for the column scan
	// and ~1.1 GB/s for the 40 MiB-dictionary aggregation at both 1/32
	// and 1/8 scale, so the default (0.035 of 64 GB/s ≈ 2.2 GB/s per
	// core) sits about 2× from either.
	StreamingBandwidthFraction float64

	// SensitiveOccupancyFraction classifies a quiet epoch as
	// cache-sensitive when the stream's occupancy exceeds this
	// fraction of the LLC, and as neutral below it.
	SensitiveOccupancyFraction float64

	// StreamingWaysFraction is the slice of the cache a Streaming
	// stream is confined to. It defaults to the static policy's
	// polluting fraction so the controller converges to the paper's
	// scheme.
	StreamingWaysFraction float64

	// TrialInterval is how many epochs a stream stays confined before
	// its first probation; TrialLength is how many epochs a probation
	// lasts. TrialBackoff multiplies the interval after each probation
	// that confirms the stream is still streaming, bounded by
	// TrialIntervalMax.
	TrialInterval    int
	TrialLength      int
	TrialBackoff     float64
	TrialIntervalMax int

	// UseCUIDHints seeds classifications from job annotations when
	// true. Telemetry overrides hints either way; disabling hints
	// makes the controller fully blind.
	UseCUIDHints bool

	// RequireBeneficiary confines a Streaming stream only while some
	// other stream of the run is classified CacheSensitive (or is
	// still Unknown and may turn out to be): confinement protects
	// co-runners and costs the confined stream a little, so with
	// nobody to protect the controller leaves the full mask in place.
	// In particular an isolated query is never confined. Disable to
	// always confine, as the static scheme does.
	RequireBeneficiary bool

	// HistoryLimit bounds the transition log; older entries are
	// dropped first. Zero keeps no history.
	HistoryLimit int
}

// DefaultConfig returns the controller defaults discussed above.
func DefaultConfig() Config {
	return Config{
		EpochSeconds:               100e-6,
		Hysteresis:                 2,
		StreamingBandwidthFraction: 0.035,
		SensitiveOccupancyFraction: 0.05,
		StreamingWaysFraction:      0.10,
		TrialInterval:              32,
		TrialLength:                2,
		TrialBackoff:               2,
		TrialIntervalMax:           128,
		UseCUIDHints:               true,
		RequireBeneficiary:         true,
		HistoryLimit:               4096,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.EpochSeconds <= 0:
		return fmt.Errorf("adapt: epoch %v must be positive", c.EpochSeconds)
	case c.Hysteresis < 1:
		return fmt.Errorf("adapt: hysteresis %d must be at least 1", c.Hysteresis)
	case c.StreamingBandwidthFraction <= 0 || c.StreamingBandwidthFraction > 1:
		return fmt.Errorf("adapt: streaming bandwidth fraction %v out of (0,1]",
			c.StreamingBandwidthFraction)
	case c.SensitiveOccupancyFraction <= 0:
		return fmt.Errorf("adapt: sensitive occupancy fraction %v must be positive",
			c.SensitiveOccupancyFraction)
	case c.StreamingWaysFraction <= 0 || c.StreamingWaysFraction > 1:
		return fmt.Errorf("adapt: streaming ways fraction %v out of (0,1]",
			c.StreamingWaysFraction)
	case c.TrialInterval < 1:
		return fmt.Errorf("adapt: trial interval %d must be at least 1", c.TrialInterval)
	case c.TrialLength < 1:
		return fmt.Errorf("adapt: trial length %d must be at least 1", c.TrialLength)
	case c.TrialBackoff < 1:
		return fmt.Errorf("adapt: trial backoff %v must be at least 1", c.TrialBackoff)
	case c.TrialIntervalMax < c.TrialInterval:
		return fmt.Errorf("adapt: trial interval cap %d below interval %d",
			c.TrialIntervalMax, c.TrialInterval)
	case c.HistoryLimit < 0:
		return fmt.Errorf("adapt: history limit %d must not be negative", c.HistoryLimit)
	}
	return nil
}

// Transition records one mask reprogramming: which stream, between
// which classes, onto which mask, and whether it was a probation step
// rather than a committed reclassification.
type Transition struct {
	// Epoch is the control epoch of the write, or -1 for
	// annotation-seeded reprogrammings, which happen at phase
	// boundaries between epochs.
	Epoch  int
	Stream int
	From   Class
	To     Class
	Mask   cat.WayMask
	// Trial marks probation mask changes: the widening at probation
	// start and the narrowing back when it confirms streaming.
	Trial bool
	// Written reports whether the step performed a real schemata
	// write; class changes whose planned mask was already in place are
	// logged with Written false.
	Written bool
}
