package adapt

import (
	"cachepart/internal/core"
	"cachepart/internal/resctrl"
)

// classify maps one epoch's telemetry window to the class the stream
// behaved as during that epoch. The streaming test is rate-based: a
// stream whose per-core DRAM traffic runs at a sizeable fraction of
// the machine's memory bandwidth cannot be reusing what it pulls,
// however large its occupancy reads — an unconfined scan fills the
// whole cache, so occupancy alone cannot separate it from an
// aggregation, but each scan core keeps DRAM several times busier
// than an aggregation core. Normalizing by the stream's worker-core
// count is what keeps one threshold valid across machine scales and
// stream widths. Quiet streams split on occupancy: resident working
// set means cache-sensitive, an empty cache means the stream is
// indifferent.
// A delta that follows failed samples spans Gap+1 epochs, so the rate
// divides by the full span — otherwise the accumulated traffic of the
// missed windows would read as one epoch's burst and misclassify a
// quiet stream as streaming the moment telemetry recovers.
func (c *Controller) classify(d resctrl.MonDelta, cores int) Class {
	rate := float64(d.MemBytesDelta) / (c.cfg.EpochSeconds * float64(d.Gap+1)) / float64(cores)
	if rate >= c.cfg.StreamingBandwidthFraction*c.peakBytesPerSecond {
		return Streaming
	}
	if float64(d.LLCOccupancyBytes) >= c.cfg.SensitiveOccupancyFraction*float64(c.llcBytes) {
		return CacheSensitive
	}
	return Neutral
}

// hintClass maps a job's CUID annotation to the class it seeds.
// Sensitive is the engine default for unannotated jobs, so it cannot
// be read as information and seeds Unknown — the controller infers.
// Depends is decided by the same bit-vector heuristic as the static
// policy.
func (c *Controller) hintClass(cuid core.CUID, fp core.Footprint) Class {
	switch cuid {
	case core.Polluting:
		return Streaming
	case core.Depends:
		if c.policy.DependsSensitive(fp) {
			return CacheSensitive
		}
		return Streaming
	default:
		return Unknown
	}
}

// streamState is the controller's per-stream memory. Streams are
// indexed by their position in the run's spec list, so all state
// lives in a slice and every epoch walks it in index order —
// deterministic by construction.
type streamState struct {
	group string
	// cores is the stream's worker-core count, the divisor that turns
	// its group's traffic into a per-core rate.
	cores int
	class Class
	// prevClass is the class the stream's last applied mask was
	// planned for, the From side of the next logged transition.
	prevClass Class

	// lastHint is the class the most recent annotation seeded;
	// a *changed* hint at a phase boundary re-seeds the class
	// (Com-CAS-style re-apportioning), an unchanged one is ignored so
	// telemetry verdicts are not fought every phase.
	lastHint Class

	// pending/streak debounce telemetry reclassification.
	pending Class
	streak  int

	// Probation of a confined stream: sinceTrial counts epochs since
	// the last one, nextTrial is the current (backed-off) interval,
	// trialLeft counts down the probation epochs, and trialObs holds
	// the last non-streaming class observed under the widened mask.
	sinceTrial int
	nextTrial  int
	trialLeft  int
	trialObs   Class
	// trialEnded flags the epoch a probation confirmed streaming, so
	// the restoring narrow write is logged as a trial step.
	trialEnded bool

	// degraded marks a stream whose control group could not be created
	// (CLOS exhaustion): the controller neither observes nor steers it,
	// and GroupFor routes its jobs to the engine's static path.
	degraded bool
}
