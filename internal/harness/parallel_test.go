package harness

import (
	"reflect"
	"testing"

	"cachepart/internal/engine"
	"cachepart/internal/fault"
)

// parallelParams returns tiny-scale parameters with the epoch-parallel
// simulation mode selected and the given host worker count.
func parallelParams(seed int64, workers int) Params {
	p := tinyParams()
	p.Duration = 0.002
	p.Seed = seed
	p.Parallel = true
	p.Workers = workers
	return p
}

// runFig9Pair builds a fresh system and co-runs the Figure 9(b) pair —
// polluting scan against the cache-sensitive aggregation on split
// cores, partitioning on — returning the raw engine results so the
// comparison covers every counter, not just derived measures.
func runFig9Pair(t *testing.T, p Params) []engine.StreamResult {
	t.Helper()
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQ1(sys)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQ2(sys, 10_000_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(true); err != nil {
		t.Fatal(err)
	}
	a, b := sys.SplitCores()
	res, err := sys.Engine.Run([]engine.StreamSpec{
		{Query: q1, Cores: a},
		{Query: q2, Cores: b},
	}, sys.runOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runFig10Pair co-runs the Figure 10 pair: aggregation against the
// bit-vector join at its cache-sensitive key count.
func runFig10Pair(t *testing.T, p Params) []engine.StreamResult {
	t.Helper()
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQ2(sys, 10_000_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := NewQ3(sys, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(true); err != nil {
		t.Fatal(err)
	}
	a, b := sys.SplitCores()
	res, err := sys.Engine.Run([]engine.StreamSpec{
		{Query: q2, Cores: a},
		{Query: q3, Cores: b},
	}, sys.runOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelWorkerEquivalenceFig9 pins the parallel mode's
// determinism contract end to end through the harness on the paper's
// headline co-run: for several seeds, a Workers=1 run and Workers=4
// runs of the Figure 9(b) pair are bit-identical in every stream
// counter, cache statistic and execution duration.
func TestParallelWorkerEquivalenceFig9(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		base := runFig9Pair(t, parallelParams(seed, 1))
		for _, w := range []int{4} {
			if got := runFig9Pair(t, parallelParams(seed, w)); !reflect.DeepEqual(base, got) {
				t.Errorf("seed %d: Workers=%d diverged from Workers=1:\n base: %+v\n  got: %+v",
					seed, w, base, got)
			}
		}
	}
}

// TestParallelWorkerEquivalenceFig10 repeats the worker-equivalence
// check on the join co-run, whose probe phase stresses the shared
// bit vector and the Depends mask path.
func TestParallelWorkerEquivalenceFig10(t *testing.T) {
	base := runFig10Pair(t, parallelParams(3, 1))
	if got := runFig10Pair(t, parallelParams(3, 4)); !reflect.DeepEqual(base, got) {
		t.Errorf("Workers=4 diverged from Workers=1 on the Fig 10 pair:\n base: %+v\n  got: %+v", base, got)
	}
}

// TestParallelChaosEquivalence runs the Fig 9(b) pair with the fault
// injector between the engine and its resctrl mount: faults fire from
// the control plane's own seeded RNG at coordinator barriers, so
// retries, degradations and every counter must still be independent of
// the host worker count.
func TestParallelChaosEquivalence(t *testing.T) {
	run := func(workers int) []engine.StreamResult {
		t.Helper()
		p := parallelParams(5, workers)
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		q1, err := NewQ1(sys)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := NewQ2(sys, 10_000_000, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.EnableChaos(fault.Uniform(0.3, 99)); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetPartitioning(true); err != nil {
			t.Fatal(err)
		}
		a, b := sys.SplitCores()
		res, err := sys.Engine.Run([]engine.StreamSpec{
			{Query: q1, Cores: a},
			{Query: q2, Cores: b},
		}, sys.runOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if got := run(4); !reflect.DeepEqual(base, got) {
		t.Errorf("Workers=4 diverged from Workers=1 under chaos:\n base: %+v\n  got: %+v", base, got)
	}
}
