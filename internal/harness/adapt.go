package harness

import (
	"math/rand"

	"cachepart/internal/adapt"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/memory"
)

// EnableAdaptive attaches an online feedback controller (internal/
// adapt) to the system's engine. While attached, runs ignore the
// static CUID→mask policy and let the controller program per-stream
// masks from CMT/MBM telemetry. The returned controller exposes the
// transition log for inspection.
func (s *System) EnableAdaptive(cfg adapt.Config) (*adapt.Controller, error) {
	return adapt.Attach(s.Engine, cfg)
}

// DisableAdaptive detaches the controller, restoring the static
// policy path.
func (s *System) DisableAdaptive() { s.Engine.DetachController() }

// unannotated erases a query's cache-usage annotations: every phase
// reports the default Sensitive CUID and an empty footprint, the
// shape of a workload whose operators were never classified. Prewarm
// regions are forwarded so measurement windows stay comparable.
type unannotated struct {
	q engine.Query
}

// Unannotated wraps a query with its CUID annotations stripped.
func Unannotated(q engine.Query) engine.Query {
	if pw, ok := q.(engine.Prewarmer); ok {
		return &unannotatedPrewarmer{unannotated{q: q}, pw}
	}
	return &unannotated{q: q}
}

func (u *unannotated) Name() string { return u.q.Name() }

func (u *unannotated) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	phases, err := u.q.Plan(cores, rng)
	if err != nil {
		return nil, err
	}
	for i := range phases {
		phases[i].CUID = core.Sensitive
		phases[i].Footprint = core.Footprint{}
	}
	return phases, nil
}

// unannotatedPrewarmer additionally forwards PrewarmRegions.
type unannotatedPrewarmer struct {
	unannotated
	pw engine.Prewarmer
}

func (u *unannotatedPrewarmer) PrewarmRegions(cores int) []memory.Region {
	return u.pw.PrewarmRegions(cores)
}

// AdaptResult is the adaptive-controller experiment: the Figure 9(b)
// co-run (Query 1 scan ∥ Query 2 aggregation, 40 MiB dictionary)
// under three arms — no partitioning, the paper's static scheme, and
// the online controller — once with correct CUID annotations and once
// with annotations stripped, where only the controller can tell the
// scan from the aggregation.
type AdaptResult struct {
	Annotated PairRow
	Blind     PairRow
	// Config is the controller configuration both rows ran under.
	Config adapt.Config
}

// adaptArms builds the three experiment arms over a system. The
// static policy stays disabled in the adaptive arm: whatever the
// controller achieves it achieves from telemetry (plus whatever
// annotations the queries carry).
func (s *System) adaptArms(cfg adapt.Config) []struct {
	name  string
	apply func() error
} {
	return []struct {
		name  string
		apply func() error
	}{
		{"shared", func() error {
			s.DisableAdaptive()
			return s.SetPartitioning(false)
		}},
		{"static", func() error {
			s.DisableAdaptive()
			return s.SetPartitioning(true)
		}},
		{"adaptive", func() error {
			if err := s.SetPartitioning(false); err != nil {
				return err
			}
			_, err := s.EnableAdaptive(cfg)
			return err
		}},
	}
}

// FigAdaptNominal are the Figure 9(b) co-run parameters the adaptive
// experiment reuses: the 40 MiB dictionary and a mid-sweep group
// count where the paper's static scheme helps most.
var (
	FigAdaptDistinct int64 = 10_000_000
	FigAdaptGroups   int64 = 100_000
)

// FigAdapt runs the adaptive-controller experiment at the given
// parameters with the default controller configuration.
func FigAdapt(p Params) (AdaptResult, error) {
	return FigAdaptConfig(p, adapt.DefaultConfig())
}

// FigAdaptConfig runs the adaptive-controller experiment with an
// explicit controller configuration.
func FigAdaptConfig(p Params, cfg adapt.Config) (AdaptResult, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return AdaptResult{}, err
	}
	defer sys.DisableAdaptive()
	q1, err := NewQ1(sys)
	if err != nil {
		return AdaptResult{}, err
	}
	q2, err := NewQ2(sys, FigAdaptDistinct, FigAdaptGroups)
	if err != nil {
		return AdaptResult{}, err
	}
	out := AdaptResult{Config: cfg}

	sys.DisableAdaptive()
	annotated, err := sys.runPairArms("annotated", q1, q2, sys.adaptArms(cfg))
	if err != nil {
		return AdaptResult{}, err
	}
	out.Annotated = annotated

	sys.DisableAdaptive()
	blind, err := sys.runPairArms("blind", Unannotated(q1), Unannotated(q2), sys.adaptArms(cfg))
	if err != nil {
		return AdaptResult{}, err
	}
	out.Blind = blind
	return out, nil
}
