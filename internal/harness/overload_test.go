package harness

import (
	"os"
	"reflect"
	"testing"

	"cachepart/internal/fault"
)

// overloadTestOpts pins the 3x rogue-polluter point the acceptance
// criterion cares about, with both the no-shed control and the
// polluter-first treatment.
func overloadTestOpts() OverloadOptions {
	return OverloadOptions{Loads: []float64{3.0}, Sheds: []string{"none", "polluter"}}
}

// TestFigOverloadSmoke prints a reduced sweep at test scale (visual
// check with -v; the assertions below pin the contract).
func TestFigOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	r, err := FigOverloadOpts(Fast(), OverloadOptions{Loads: []float64{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	PrintOverload(os.Stderr, r)
}

// TestFigOverloadAcceptance pins the experiment's headline claim: at
// 3x rogue-polluter overload, polluter-first shedding recovers the
// victim tenant — lower p99 AND higher SLO attainment than no-shed —
// on every cache arm.
func TestFigOverloadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep in short mode")
	}
	r, err := FigOverloadOpts(Fast(), overloadTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	ld := r.Loads[0]
	for _, arm := range []string{"shared", "static", "adaptive"} {
		none, pol := ld.Run(arm, "none"), ld.Run(arm, "polluter")
		if none == nil || pol == nil {
			t.Fatalf("arm %q missing none/polluter cells", arm)
		}
		vNone, vPol := none.Tenants[r.Victim], pol.Tenants[r.Victim]
		if vPol.P99 >= vNone.P99 {
			t.Errorf("%s: polluter-first victim p99 %d >= no-shed %d at 3x", arm, vPol.P99, vNone.P99)
		}
		if vPol.SLOAttainment <= vNone.SLOAttainment {
			t.Errorf("%s: polluter-first victim SLO attainment %.3f <= no-shed %.3f at 3x",
				arm, vPol.SLOAttainment, vNone.SLOAttainment)
		}
		// The recovery comes from shedding the polluter, not from
		// accounting tricks: the polluting cohort is classified and
		// actually shed.
		if p := pol.Tenants[r.Polluter]; !p.Polluter || p.DropShed == 0 {
			t.Errorf("%s: polluter cohort not shed (classified=%v, shed=%d)", arm, p.Polluter, p.DropShed)
		}
		if vPol.DropShed != 0 {
			t.Errorf("%s: polluter-first shed %d victim queries", arm, vPol.DropShed)
		}
	}
}

// overloadChaosOpts composes control-plane resctrl chaos with
// serving-plane bursts and stalls on top of retries and breakers.
func overloadChaosOpts() OverloadOptions {
	o := OverloadOptions{
		Loads: []float64{3.0},
		Sheds: []string{"polluter"},
		Arms:  []string{"static", "adaptive"},
	}
	cfg := fault.Uniform(0.2, 7)
	o.Faults = &cfg
	o.ServeFaults = &fault.ServeConfig{Seed: 7, Bursts: 1, BurstFactor: 3, Stalls: 1}
	return o
}

// TestFigOverloadChaosReplay pins chaos interop: the sweep under
// composed control-plane and serving-plane fault injection replays
// bit-identically per (seed, fault-seed), and a different fault seed
// actually changes the outcome.
func TestFigOverloadChaosReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep in short mode")
	}
	a, err := FigOverloadOpts(Fast(), overloadChaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigOverloadOpts(Fast(), overloadChaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("chaos overload sweep differs across identical replays")
	}
	reseed := overloadChaosOpts()
	reseed.ServeFaults.Seed = 8
	c, err := FigOverloadOpts(Fast(), reseed)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different serving-plane fault seed left the sweep unchanged")
	}
	// Under overload control admitted != completed is expected (queries
	// drop); the accounting identity must still close per tenant.
	for _, ld := range a.Loads {
		for _, run := range ld.Runs {
			for _, tr := range run.Report.Tenants {
				if tr.Attempts != tr.Completed+tr.Dropped {
					t.Errorf("%s/%s tenant %s: attempts %d != completed %d + dropped %d",
						run.Arm, run.Shed, tr.Name, tr.Attempts, tr.Completed, tr.Dropped)
				}
				if tr.Attempts != tr.Arrivals+tr.Retries {
					t.Errorf("%s/%s tenant %s: attempts %d != arrivals %d + retries %d",
						run.Arm, run.Shed, tr.Name, tr.Attempts, tr.Arrivals, tr.Retries)
				}
			}
		}
	}
}

// TestFigOverloadWorkerInvariance pins that the chaos-composed sweep
// is bit-identical between Workers=1 and Workers=4 in epoch-parallel
// mode.
func TestFigOverloadWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep in short mode")
	}
	run := func(workers int) *OverloadResult {
		t.Helper()
		p := Fast()
		p.Parallel = true
		p.Workers = workers
		p.EpochTicks = 1 << 12
		r, err := FigOverloadOpts(p, overloadChaosOpts())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if a, b := run(1), run(4); !reflect.DeepEqual(a, b) {
		t.Error("overload sweep differs between Workers=1 and Workers=4")
	}
}
