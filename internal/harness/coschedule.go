package harness

import (
	"fmt"
	"io"
	"math/rand"

	"cachepart/internal/core"
	"cachepart/internal/engine"
)

// CoScheduleRow compares schedules for a four-query workload of two
// scans and two aggregations (the Section VIII idea): a naive mixed
// schedule co-runs a scan with an aggregation in each round; the
// cache-aware schedule co-runs the two scans together and the two
// aggregations together. Each entry is the workload's mean normalized
// throughput (each query's co-run throughput over its isolated
// throughput on the same cores, averaged).
type CoScheduleRow struct {
	Mixed            float64
	MixedPartitioned float64
	Aware            float64
	AwarePartitioned float64
}

// FigCoSchedule runs the scheduling comparison.
func FigCoSchedule(p Params) (CoScheduleRow, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return CoScheduleRow{}, err
	}
	scan1, err := NewQ1(sys)
	if err != nil {
		return CoScheduleRow{}, err
	}
	scan2, err := NewQ1(sys)
	if err != nil {
		return CoScheduleRow{}, err
	}
	agg1, err := NewQ2(sys, 10_000_000, 10_000)
	if err != nil {
		return CoScheduleRow{}, err
	}
	agg2, err := NewQ2(sys, 10_000_000, 100_000)
	if err != nil {
		return CoScheduleRow{}, err
	}
	queries := []engine.Query{scan1, agg1, scan2, agg2}

	// Isolated baselines on half the machine (the co-run core count).
	half, _ := sys.SplitCores()
	baselines := make(map[engine.Query]float64, len(queries))
	for _, q := range queries {
		m, err := sys.RunIsolated(q, half)
		if err != nil {
			return CoScheduleRow{}, err
		}
		baselines[q] = m.Throughput
	}

	profiles := make([]core.CUID, len(queries))
	rng := rand.New(rand.NewSource(p.Seed))
	for i, q := range queries {
		c, err := engine.ProfileOf(q, len(half), rng)
		if err != nil {
			return CoScheduleRow{}, err
		}
		profiles[i] = c
	}

	run := func(cacheAware, partitioned bool) (float64, error) {
		if err := sys.SetPartitioning(partitioned); err != nil {
			return 0, err
		}
		rounds := engine.PlanRounds(queries, profiles, 2, cacheAware)
		results, err := sys.Engine.RunRounds(rounds, sys.runOptions())
		if err != nil {
			return 0, err
		}
		var sum float64
		var n int
		for ri, r := range rounds {
			for qi, q := range r {
				sum += ratio(results[ri][qi].Throughput, baselines[q])
				n++
			}
		}
		return sum / float64(n), nil
	}

	var row CoScheduleRow
	if row.Mixed, err = run(false, false); err != nil {
		return row, err
	}
	if row.MixedPartitioned, err = run(false, true); err != nil {
		return row, err
	}
	if row.Aware, err = run(true, false); err != nil {
		return row, err
	}
	if row.AwarePartitioned, err = run(true, true); err != nil {
		return row, err
	}
	return row, sys.SetPartitioning(false)
}

// PrintCoSchedule renders the comparison.
func PrintCoSchedule(w io.Writer, r CoScheduleRow) {
	fmt.Fprintln(w, "Section VIII sketch — schedules for 2 scans + 2 aggregations")
	fmt.Fprintln(w, "(mean normalized throughput across the four queries):")
	fmt.Fprintf(w, "  mixed rounds (scan ∥ agg):                %.3f\n", r.Mixed)
	fmt.Fprintf(w, "  mixed rounds + cache partitioning:        %.3f\n", r.MixedPartitioned)
	fmt.Fprintf(w, "  cache-aware rounds (scan ∥ scan):         %.3f\n", r.Aware)
	fmt.Fprintf(w, "  cache-aware rounds + cache partitioning:  %.3f\n", r.AwarePartitioned)
	fmt.Fprintln(w)
}
