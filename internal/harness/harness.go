// Package harness assembles the simulated system and regenerates every
// table and figure of the paper's evaluation: the isolated operator
// sweeps of Figures 4-6, the concurrent experiments of Figures 9-10,
// the TPC-H co-run of Figure 11 and the S/4HANA OLTP experiments of
// Figures 1 and 12.
//
// All experiments support proportional downscaling: Scale divides the
// cache capacities and the paper's data-structure sizes together, so
// normalized-throughput curves keep their shape while simulations run
// orders of magnitude faster. Scale 1 reproduces the paper's absolute
// sizes (55 MiB LLC, 4/40/400 MiB dictionaries, 10^6..10^9 keys).
package harness

import (
	"fmt"
	"math/rand"

	"cachepart/internal/cachesim"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/memory"
	"cachepart/internal/workload"
)

// Params configures an experiment run.
type Params struct {
	// Scale divides the paper's nominal sizes (cache capacities,
	// dictionary cardinalities, group counts, key counts). 1 is the
	// paper's machine.
	Scale int
	// Cores is the simulated physical core count (paper: 22).
	Cores int
	// Ways lists the LLC way limits swept by the micro-benchmarks;
	// defaults to {2, 4, ..., 20}.
	Ways []int
	// Duration is the simulated measurement time per point in seconds.
	Duration float64
	// Rows per execution for the scan / aggregation / join-probe
	// inputs (already scaled; these are sampling sizes, not the
	// paper's 10^9).
	RowsScan, RowsAgg, RowsProbe int
	// Seed makes runs reproducible.
	Seed int64
	// Quantum is the scheduling slice in rows.
	Quantum int

	// Parallel selects the epoch-parallel simulation mode: private
	// cache levels simulate on Workers host goroutines between merge
	// barriers EpochTicks of virtual time apart (DESIGN.md §11).
	// Results are deterministic and independent of Workers.
	Parallel bool
	// Workers caps the host goroutines of a parallel run; 0 uses
	// GOMAXPROCS.
	Workers int
	// EpochTicks overrides the parallel lookahead horizon; 0 uses the
	// engine default (65536 ticks).
	EpochTicks int64

	// DictSweep, GroupSweep and KeySweep override the paper-nominal
	// parameter lists of Figures 5/9 (dictionary cardinalities, group
	// counts) and 6/10 (primary-key counts). Empty uses the paper's
	// values; tests and quick looks pass subsets.
	DictSweep  []int64
	GroupSweep []int64
	KeySweep   []int64
}

// Default returns parameters tuned for the command-line tool: 1/8 of
// the paper machine, a few seconds of simulation per figure.
func Default() Params {
	return Params{
		Scale:     8,
		Cores:     22,
		Duration:  0.008,
		RowsScan:  1 << 25, // scan input ~70 MB >> scaled 6.9 MiB LLC
		RowsAgg:   1 << 21,
		RowsProbe: 1 << 21,
		Seed:      1,
	}
}

// Fast returns parameters for tests and benchmarks: 1/32 scale and
// short windows.
func Fast() Params {
	return Params{
		Scale:     32,
		Cores:     8,
		Ways:      []int{2, 4, 8, 12, 16, 20},
		Duration:  0.003,
		RowsScan:  1 << 22, // scan input ~8 MB >> scaled 1.7 MiB LLC
		RowsAgg:   1 << 20,
		RowsProbe: 1 << 20,
		Seed:      1,
	}
}

func (p *Params) setDefaults() error {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Cores <= 0 {
		p.Cores = 22
	}
	if p.Cores > 32 {
		return fmt.Errorf("harness: %d cores exceed simulator limit", p.Cores)
	}
	if len(p.Ways) == 0 {
		for w := 2; w <= 20; w += 2 {
			p.Ways = append(p.Ways, w)
		}
	}
	if p.Duration <= 0 {
		p.Duration = 0.008
	}
	if p.RowsScan <= 0 {
		p.RowsScan = 1 << 20
	}
	if p.RowsAgg <= 0 {
		p.RowsAgg = 1 << 20
	}
	if p.RowsProbe <= 0 {
		p.RowsProbe = 1 << 20
	}
	return nil
}

// dictSweep returns the Figure 5/9 dictionary cardinalities.
func (p Params) dictSweep() []int64 {
	if len(p.DictSweep) > 0 {
		return p.DictSweep
	}
	return Fig5Dictionaries
}

// groupSweep returns the Figure 5/9/10 group counts.
func (p Params) groupSweep() []int64 {
	if len(p.GroupSweep) > 0 {
		return p.GroupSweep
	}
	return Fig5Groups
}

// keySweep returns the Figure 6 primary-key counts.
func (p Params) keySweep() []int64 {
	if len(p.KeySweep) > 0 {
		return p.KeySweep
	}
	return Fig6Keys
}

// ScaleN divides a paper-nominal cardinality by the scale factor,
// never below 1.
func (p Params) ScaleN(n int64) int64 {
	s := n / int64(p.Scale)
	if s < 1 {
		return 1
	}
	return s
}

// System bundles the simulated machine, the engine and the address
// space data sets live in.
type System struct {
	Params  Params
	Space   *memory.Space
	Machine *cachesim.Machine
	Engine  *engine.Engine
	Rng     *rand.Rand
}

// NewSystem builds a machine at the requested scale with partitioning
// initially disabled.
func NewSystem(p Params) (*System, error) {
	if err := p.setDefaults(); err != nil {
		return nil, err
	}
	cfg := cachesim.DefaultConfig().Scaled(p.Scale)
	cfg.Cores = p.Cores
	m, err := cachesim.New(cfg)
	if err != nil {
		return nil, err
	}
	pol := core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways)
	e, err := engine.New(m, pol)
	if err != nil {
		return nil, err
	}
	return &System{
		Params:  p,
		Space:   memory.NewSpace(),
		Machine: m,
		Engine:  e,
		Rng:     rand.New(rand.NewSource(p.Seed)),
	}, nil
}

// SetPartitioning toggles the paper's scheme.
func (s *System) SetPartitioning(enabled bool) error {
	pol := s.Engine.Policy()
	pol.Enabled = enabled
	return s.Engine.SetPolicy(pol)
}

// LLCBytes reports the scaled LLC capacity.
func (s *System) LLCBytes() uint64 { return s.Machine.Config().LLC.Size }

// AllCores returns core ids [0, n).
func (s *System) AllCores() []int {
	out := make([]int, s.Machine.Cores())
	for i := range out {
		out[i] = i
	}
	return out
}

// SplitCores halves the cores for a co-run: the first half for stream
// A, the second for stream B.
func (s *System) SplitCores() (a, b []int) {
	n := s.Machine.Cores()
	all := s.AllCores()
	return all[:n/2], all[n/2:]
}

// Measure summarises one stream's window: throughput plus the PCM-style
// counters the paper reports.
type Measure struct {
	Throughput float64 // counted rows per simulated second
	Executions int64
	HitRatio   float64 // LLC hit ratio
	MPI        float64 // LLC misses per instruction
	Bandwidth  float64 // DRAM bytes per second (misses + prefetch + writebacks)
	// P50 and P99 are end-to-end response-time percentiles in
	// simulated seconds of the executions completed in the window
	// (zero when none completed — long statements sampled mid-flight).
	P50 float64
	P99 float64
	// Retries and Degraded surface the stream's control-plane fault
	// accounting: retried transient faults and placements that fell
	// back to the root group (see System.EnableChaos). Zero without
	// fault injection.
	Retries  int64
	Degraded int64
}

// measureOf converts a stream result on the system's machine clock.
func (s *System) measureOf(r engine.StreamResult) Measure {
	lines := r.Stats.LLCMisses + r.Stats.PrefetchIssued + r.Stats.Writebacks
	m := Measure{
		Throughput: r.Throughput,
		Executions: r.Executions,
		HitRatio:   r.Stats.LLCHitRatio(),
		MPI:        r.Stats.LLCMissesPerInstruction(),
		Bandwidth:  float64(lines*memory.LineSize) / r.WindowSeconds,
		Retries:    r.Retries,
		Degraded:   r.Degraded,
	}
	if len(r.ExecTicks) > 0 {
		m.P50 = s.Machine.Seconds(r.Percentile(0.50))
		m.P99 = s.Machine.Seconds(r.Percentile(0.99))
	}
	return m
}

// runOptions builds the engine options for this harness.
func (s *System) runOptions() engine.RunOptions {
	return engine.RunOptions{
		Duration:   s.Params.Duration,
		Seed:       s.Params.Seed,
		Quantum:    s.Params.Quantum,
		Parallel:   s.Params.Parallel,
		Workers:    s.Params.Workers,
		EpochTicks: s.Params.EpochTicks,
	}
}

// RunIsolated measures one query alone on the given cores.
func (s *System) RunIsolated(q engine.Query, cores []int) (Measure, error) {
	res, err := s.Engine.Run([]engine.StreamSpec{{Query: q, Cores: cores}}, s.runOptions())
	if err != nil {
		return Measure{}, err
	}
	return s.measureOf(res[0]), nil
}

// RunShared measures queries co-running on one shared worker pool —
// the engine's real execution model, where jobs of all statements
// time-share every core and the CUID mask is applied on each context
// switch.
func (s *System) RunShared(queries ...engine.Query) ([]Measure, error) {
	res, err := s.Engine.RunSharedPool(queries, s.runOptions())
	if err != nil {
		return nil, err
	}
	out := make([]Measure, len(res))
	for i, r := range res {
		out[i] = s.measureOf(r)
	}
	return out, nil
}

// RunPair measures two queries co-running on disjoint core sets.
func (s *System) RunPair(qa engine.Query, ca []int, qb engine.Query, cb []int) (Measure, Measure, error) {
	res, err := s.Engine.Run([]engine.StreamSpec{
		{Query: qa, Cores: ca},
		{Query: qb, Cores: cb},
	}, s.runOptions())
	if err != nil {
		return Measure{}, Measure{}, err
	}
	return s.measureOf(res[0]), s.measureOf(res[1]), nil
}

// Q1Spec instantiates the paper's Query 1 data set at scale.
func (p Params) Q1Spec() workload.Q1Spec {
	return workload.Q1Spec{Rows: p.RowsScan, Distinct: p.ScaleN(1_000_000)}
}

// Q2Spec instantiates Query 2 at scale for the given paper-nominal
// distinct-value and group counts.
func (p Params) Q2Spec(nominalDistinctV, nominalGroups int64) workload.Q2Spec {
	return workload.Q2Spec{
		Rows:      p.RowsAgg,
		DistinctV: p.ScaleN(nominalDistinctV),
		Groups:    p.ScaleN(nominalGroups),
	}
}

// Q3Spec instantiates Query 3 at scale for the given paper-nominal
// primary-key count.
func (p Params) Q3Spec(nominalKeys int64) workload.Q3Spec {
	return workload.Q3Spec{
		ProbeRows: p.RowsProbe,
		Keys:      p.ScaleN(nominalKeys),
		PaperKeys: nominalKeys,
	}
}
