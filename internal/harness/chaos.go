package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cachepart/internal/fault"
)

// EnableChaos interposes a seeded fault injector (internal/fault)
// between the engine and its resctrl mount. While enabled, schemata
// writes, task moves, group creation, scheduling and monitoring reads
// fail with the configured probabilities; the engine retries, degrades
// and keeps running. Call before EnableAdaptive so the controller's
// writes route through the injector too; undo with DisableChaos.
func (s *System) EnableChaos(cfg fault.Config) (*fault.Plane, error) {
	pl, err := fault.Wrap(s.Engine.ControlPlane(), cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Engine.SetControlPlane(pl); err != nil {
		return nil, err
	}
	return pl, nil
}

// DisableChaos unwraps the fault injector, restoring the direct mount.
// A no-op when chaos was never enabled.
func (s *System) DisableChaos() {
	if pl, ok := s.Engine.ControlPlane().(*fault.Plane); ok {
		// The wrapped plane is never nil, so the error cannot fire.
		if err := s.Engine.SetControlPlane(pl.Inner()); err != nil {
			panic(err)
		}
	}
}

// ChaosPoint is one fault rate of the chaos sweep: the partitioned
// co-run's two measures, normalized against the fault-free partitioned
// baseline, plus the run's fault accounting.
type ChaosPoint struct {
	Rate float64
	A, B Measure
	// NormA and NormB are throughputs relative to the same co-run with
	// no faults injected — 1.0 means injection cost nothing.
	NormA, NormB float64
	// Retries and Degraded sum both streams' counters; Injected is the
	// injector's total failed calls (including breaker repeats).
	Retries  int64
	Degraded int64
	Injected int64
}

// ChaosResult is the chaos experiment: the fault-free baseline co-run
// and one point per swept fault rate.
type ChaosResult struct {
	BaseA, BaseB Measure
	Points       []ChaosPoint
}

// FigChaosRates is the default fault-rate sweep: from one failure per
// thousand control-plane calls up to every call failing.
var FigChaosRates = []float64{0.001, 0.01, 0.05, 0.2, 1.0}

// FigChaos sweeps control-plane fault rates over the Figure 9(b)
// co-run (scan ∥ aggregation, partitioned) and reports throughput
// against the fault-free baseline alongside retry/degradation counts.
// The experiment demonstrates the robustness contract: at every rate
// the run completes and returns correct results; what injection costs
// is isolation (degraded streams share the full cache) and retry
// cycles, both of which the result quantifies.
func FigChaos(p Params) (ChaosResult, error) {
	return FigChaosRatesConfig(p, FigChaosRates)
}

// FigChaosRatesConfig runs the chaos sweep over an explicit rate list.
func FigChaosRatesConfig(p Params, rates []float64) (ChaosResult, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return ChaosResult{}, err
	}
	defer sys.DisableChaos()
	q1, err := NewQ1(sys)
	if err != nil {
		return ChaosResult{}, err
	}
	q2, err := NewQ2(sys, FigAdaptDistinct, FigAdaptGroups)
	if err != nil {
		return ChaosResult{}, err
	}
	if err := sys.SetPartitioning(true); err != nil {
		return ChaosResult{}, err
	}
	ca, cb := sys.SplitCores()

	baseA, baseB, err := sys.RunPair(q1, ca, q2, cb)
	if err != nil {
		return ChaosResult{}, err
	}
	out := ChaosResult{BaseA: baseA, BaseB: baseB}

	for _, rate := range rates {
		pl, err := sys.EnableChaos(fault.Uniform(rate, p.Seed))
		if err != nil {
			return ChaosResult{}, err
		}
		ma, mb, err := sys.RunPair(q1, ca, q2, cb)
		sys.DisableChaos()
		if err != nil {
			return ChaosResult{}, fmt.Errorf("chaos at rate %v: %w", rate, err)
		}
		out.Points = append(out.Points, ChaosPoint{
			Rate:     rate,
			A:        ma,
			B:        mb,
			NormA:    ratio(ma.Throughput, baseA.Throughput),
			NormB:    ratio(mb.Throughput, baseB.Throughput),
			Retries:  ma.Retries + mb.Retries,
			Degraded: ma.Degraded + mb.Degraded,
			Injected: pl.Stats().Injected,
		})
	}
	return out, nil
}

// PrintChaos renders the chaos sweep as a table.
func PrintChaos(w io.Writer, r ChaosResult) {
	fmt.Fprintln(w, "Chaos — scan ∥ aggregation, partitioned, under control-plane fault injection")
	fmt.Fprintln(w, "(norm vs. fault-free partitioned co-run; no run may error at any rate)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rate\tnormA\tnormB\tretries\tdegraded\tinjected")
	for _, pt := range r.Points {
		fmt.Fprintf(tw, "%.3f\t%.3f\t%.3f\t%d\t%d\t%d\n",
			pt.Rate, pt.NormA, pt.NormB, pt.Retries, pt.Degraded, pt.Injected)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
