package harness

import (
	"reflect"
	"testing"

	"cachepart/internal/fault"
)

// TestFigChaosFunction runs a short chaos sweep at test scale: every
// point must complete without error — the robustness contract — while
// reporting the injection accounting that proves faults actually flew.
func TestFigChaosFunction(t *testing.T) {
	p := Fast()
	r, err := FigChaosRatesConfig(p, []float64{0.05, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(r.Points))
	}
	if r.BaseA.Throughput <= 0 || r.BaseB.Throughput <= 0 {
		t.Fatalf("fault-free baseline has zero throughput: %+v", r)
	}
	for _, pt := range r.Points {
		if pt.A.Throughput <= 0 || pt.B.Throughput <= 0 {
			t.Errorf("rate %v: zero throughput under faults: %+v", pt.Rate, pt)
		}
		if pt.Injected == 0 {
			t.Errorf("rate %v: injector reports zero faults", pt.Rate)
		}
	}
	// At rate 1.0 every placement attempt fails, so the run must have
	// degraded streams to survive.
	if last := r.Points[len(r.Points)-1]; last.Degraded == 0 {
		t.Errorf("rate 1.0 reported zero degradations: %+v", last)
	}
}

// TestChaosSameSeedIdentical pins determinism end to end through the
// harness: two sweeps with identical params (run seed and fault seed
// alike) must produce identical results, faults and all.
func TestChaosSameSeedIdentical(t *testing.T) {
	run := func() ChaosResult {
		t.Helper()
		r, err := FigChaosRatesConfig(Fast(), []float64{0.1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed chaos sweeps diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestChaosDisableRestoresPlane checks EnableChaos/DisableChaos
// round-trip: after disabling, the engine's control plane is the
// original mount and a clean run matches the pre-chaos baseline.
func TestChaosDisableRestoresPlane(t *testing.T) {
	sys, err := NewSystem(Fast())
	if err != nil {
		t.Fatal(err)
	}
	orig := sys.Engine.ControlPlane()
	pl, err := sys.EnableChaos(fault.Uniform(0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Engine.ControlPlane() != pl {
		t.Error("EnableChaos did not install the injector")
	}
	sys.DisableChaos()
	if sys.Engine.ControlPlane() != orig {
		t.Error("DisableChaos did not restore the original plane")
	}
	sys.DisableChaos() // second disable is a no-op
	if sys.Engine.ControlPlane() != orig {
		t.Error("repeated DisableChaos changed the plane")
	}
}
