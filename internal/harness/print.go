package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// PrintWayPoints renders an LLC-size sweep (Figure 4 style).
func PrintWayPoints(w io.Writer, title string, pts []WayPoint) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ways\tLLC(paper MiB)\tnorm.throughput\tLLC hit ratio\tmisses/instr\tDRAM GB/s")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.2f\t%.3f\t%.3f\t%.2e\t%.1f\n",
			p.Ways, p.LLCMiB, p.Norm, p.Measure.HitRatio, p.Measure.MPI, p.Measure.Bandwidth/1e9)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// PrintGroupSeries renders a family of sweeps (Figure 6 style).
func PrintGroupSeries(w io.Writer, title string, series []GroupSeries) {
	fmt.Fprintf(w, "%s\n", title)
	if len(series) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"LLC(paper MiB)"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%.2f", series[0].Points[i].LLCMiB)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3f", s.Points[i].Norm))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// PrintCurveSets renders panelled sweeps (Figure 5 style).
func PrintCurveSets(w io.Writer, title string, sets []CurveSet) {
	fmt.Fprintf(w, "%s\n\n", title)
	for _, set := range sets {
		PrintGroupSeries(w, "  "+set.Label, set.Series)
	}
}

// PrintPairRows renders co-run results (Figures 9-12 style): per row,
// each query's normalized throughput under every arm.
func PrintPairRows(w io.Writer, title string, rows []PairRow) {
	fmt.Fprintf(w, "%s\n", title)
	if len(rows) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"workload"}
	for _, arm := range rows[0].Arms {
		header = append(header,
			fmt.Sprintf("A:%s", arm.Name),
			fmt.Sprintf("B:%s", arm.Name))
	}
	header = append(header, "A hit sh/part", "B hit sh/part")
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		row := []string{fmt.Sprintf("%s [A=%s B=%s]", r.Label, r.NameA, r.NameB)}
		for _, arm := range r.Arms {
			row = append(row,
				fmt.Sprintf("%.3f", arm.NormA),
				fmt.Sprintf("%.3f", arm.NormB))
		}
		row = append(row, hitPair(r, "A"), hitPair(r, "B"))
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func hitPair(r PairRow, side string) string {
	sh, ok1 := r.Arm("shared")
	pt, ok2 := r.Arm("partitioned")
	if !ok2 {
		pt, ok2 = r.Arm("join60")
	}
	if !ok1 || !ok2 {
		return "-"
	}
	if side == "A" {
		return fmt.Sprintf("%.2f/%.2f", sh.A.HitRatio, pt.A.HitRatio)
	}
	return fmt.Sprintf("%.2f/%.2f", sh.B.HitRatio, pt.B.HitRatio)
}

// PrintFig1 renders the teaser figure.
func PrintFig1(w io.Writer, r Fig1Result) {
	fmt.Fprintln(w, "Figure 1 — OLTP query throughput (normalized to isolated):")
	bars := []struct {
		label string
		v     float64
	}{
		{"isolated", r.Isolated},
		{"concurrent to OLAP", r.Concurrent},
		{"concurrent, cache partitioned", r.Partitioned},
	}
	for _, b := range bars {
		n := int(b.v*40 + 0.5)
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-30s %-40s %.2f\n", b.label, strings.Repeat("#", n), b.v)
	}
	fmt.Fprintln(w)
}
