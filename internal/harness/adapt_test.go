package harness

import (
	"testing"

	"cachepart/internal/adapt"
)

// TestFigAdaptAcceptance pins the headline claims of the adaptive
// controller on the Figure 9(b)-style co-run (scan ∥ aggregation):
//
//  1. blind (annotations stripped), the controller recovers at least
//     half of the static scheme's throughput gain for the
//     cache-sensitive aggregation — static partitioning recovers
//     nothing blind, since every phase carries the default CUID;
//  2. with correct annotations the controller lands within a few
//     percent of the static scheme;
//  3. the controller never makes either co-runner meaningfully slower
//     than the unpartitioned run.
func TestFigAdaptAcceptance(t *testing.T) {
	r, err := FigAdapt(Fast())
	if err != nil {
		t.Fatal(err)
	}
	arm := func(row PairRow, name string) PairArm {
		a, ok := row.Arm(name)
		if !ok {
			t.Fatalf("row %q misses arm %q", row.Label, name)
		}
		return a
	}

	annShared := arm(r.Annotated, "shared")
	annStatic := arm(r.Annotated, "static")
	annAdaptive := arm(r.Annotated, "adaptive")
	blindShared := arm(r.Blind, "shared")
	blindStatic := arm(r.Blind, "static")
	blindAdaptive := arm(r.Blind, "adaptive")

	t.Logf("annotated: agg shared %.3f static %.3f adaptive %.3f | scan shared %.3f static %.3f adaptive %.3f",
		annShared.NormB, annStatic.NormB, annAdaptive.NormB,
		annShared.NormA, annStatic.NormA, annAdaptive.NormA)
	t.Logf("blind:     agg shared %.3f static %.3f adaptive %.3f | scan shared %.3f static %.3f adaptive %.3f",
		blindShared.NormB, blindStatic.NormB, blindAdaptive.NormB,
		blindShared.NormA, blindStatic.NormA, blindAdaptive.NormA)

	staticGain := annStatic.NormB - annShared.NormB
	if staticGain <= 0 {
		t.Fatalf("static scheme shows no gain (%.3f) — co-run configuration too benign", staticGain)
	}
	// (1) Blind recovery.
	blindGain := blindAdaptive.NormB - blindShared.NormB
	if blindGain < staticGain/2 {
		t.Errorf("blind adaptive gain %.3f recovers less than half the static gain %.3f",
			blindGain, staticGain)
	}
	// Sanity: blind static partitioning cannot act on stripped
	// annotations (all phases default to Sensitive → full mask).
	if blindStatic.NormB > blindShared.NormB+staticGain/2 {
		t.Errorf("blind static arm gained %.3f without annotations; stripping is broken",
			blindStatic.NormB-blindShared.NormB)
	}
	// (2) Annotated adaptive tracks static.
	if annAdaptive.NormB < annStatic.NormB-0.05 {
		t.Errorf("annotated adaptive agg %.3f more than 5 pp below static %.3f",
			annAdaptive.NormB, annStatic.NormB)
	}
	// (3) No victim: neither query falls meaningfully below its
	// unpartitioned co-run throughput under the controller.
	if annAdaptive.NormA < annShared.NormA-0.05 {
		t.Errorf("annotated adaptive scan %.3f below shared %.3f", annAdaptive.NormA, annShared.NormA)
	}
	if blindAdaptive.NormA < blindShared.NormA-0.05 {
		t.Errorf("blind adaptive scan %.3f below shared %.3f", blindAdaptive.NormA, blindShared.NormA)
	}
}

// TestAdaptiveIsolatedNoRegression runs each micro-benchmark query
// alone, unpartitioned versus controller-enabled: the controller must
// never make an isolated query slower (beyond run-to-run noise).
func TestAdaptiveIsolatedNoRegression(t *testing.T) {
	sys, err := NewSystem(Fast())
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQ1(sys)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQ2(sys, FigAdaptDistinct, FigAdaptGroups)
	if err != nil {
		t.Fatal(err)
	}
	cores := sys.AllCores()[:4]
	check := func(label string, iso func() (Measure, error)) {
		if err := sys.SetPartitioning(false); err != nil {
			t.Fatal(err)
		}
		sys.DisableAdaptive()
		base, err := iso()
		if err != nil {
			t.Fatalf("%s unpartitioned: %v", label, err)
		}
		if _, err := sys.EnableAdaptive(adapt.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		adaptive, err := iso()
		sys.DisableAdaptive()
		if err != nil {
			t.Fatalf("%s adaptive: %v", label, err)
		}
		ratio := adaptive.Throughput / base.Throughput
		t.Logf("%s isolated: unpartitioned %.3g rows/s, adaptive %.3g rows/s (%.3f×)",
			label, base.Throughput, adaptive.Throughput, ratio)
		if ratio < 0.97 {
			t.Errorf("%s isolated slowed to %.3f× under the controller", label, ratio)
		}
	}
	check("scan", func() (Measure, error) { return sys.RunIsolated(q1, cores) })
	check("agg", func() (Measure, error) { return sys.RunIsolated(q2, cores) })
	check("scan-blind", func() (Measure, error) { return sys.RunIsolated(Unannotated(q1), cores) })
	check("agg-blind", func() (Measure, error) { return sys.RunIsolated(Unannotated(q2), cores) })
}
