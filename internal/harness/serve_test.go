package harness

import (
	"os"
	"reflect"
	"testing"

	"cachepart/internal/fault"
	"cachepart/internal/serve"
)

// serveTestOpts keeps the sweep small enough for CI while preserving
// the saturation point the acceptance criterion cares about.
func serveTestOpts() ServeOptions {
	return ServeOptions{Loads: []float64{1.0}, Arrivals: 120}
}

// TestFigServeSmoke prints a full sweep at test scale (visual check
// with -v; the assertions below pin the contract).
func TestFigServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	r, err := FigServe(Fast())
	if err != nil {
		t.Fatal(err)
	}
	PrintServe(os.Stderr, r)
}

// TestFigServeAcceptance pins the experiment's headline claim: at the
// 1.0x saturation point, both the paper's static scheme and the
// adaptive controller deliver lower p99 latency and higher Jain
// fairness than the shared-pool baseline (the committed table in
// EXPERIMENTS.md).
func TestFigServeAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	r, err := FigServeOpts(Fast(), ServeOptions{Loads: []float64{1.0}})
	if err != nil {
		t.Fatal(err)
	}
	arms := map[string]*serve.Report{}
	for _, arm := range r.Loads[0].Arms {
		arms[arm.Name] = arm.Report
	}
	shared := arms["shared"]
	for _, name := range []string{"static", "adaptive"} {
		rep := arms[name]
		if rep == nil {
			t.Fatalf("arm %q missing from sweep", name)
		}
		if rep.P99 >= shared.P99 {
			t.Errorf("%s p99 %d >= shared %d at 1.0x", name, rep.P99, shared.P99)
		}
		if rep.Jain <= shared.Jain {
			t.Errorf("%s Jain %.3f <= shared %.3f at 1.0x", name, rep.Jain, shared.Jain)
		}
	}
}

// TestFigServeDeterminism pins bit-identical reports per seed.
func TestFigServeDeterminism(t *testing.T) {
	a, err := FigServeOpts(Fast(), serveTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigServeOpts(Fast(), serveTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("FigServe reports differ across identical runs")
	}
}

// TestFigServeChaos pins chaos interop: the sweep under control-plane
// fault injection is bit-identical per (run-seed, fault-seed), and
// degraded runs still report complete latency accounting.
func TestFigServeChaos(t *testing.T) {
	opts := serveTestOpts()
	cfg := fault.Uniform(0.2, 7)
	opts.Faults = &cfg
	a, err := FigServeOpts(Fast(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigServeOpts(Fast(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("chaos FigServe reports differ across identical runs")
	}
	degraded := int64(0)
	for _, ld := range a.Loads {
		for _, arm := range ld.Arms {
			rep := arm.Report
			if rep.Completed != rep.Admitted {
				t.Errorf("%s at %.1fx: %d admitted but %d completed under faults",
					arm.Name, ld.Load, rep.Admitted, rep.Completed)
			}
			if rep.P99 <= 0 {
				t.Errorf("%s at %.1fx: missing latency percentiles under faults", arm.Name, ld.Load)
			}
			for _, g := range rep.Groups {
				degraded += g.Degraded
			}
		}
	}
	if degraded == 0 {
		t.Error("20% fault rate degraded nothing — injection not reaching the serve path")
	}
}
