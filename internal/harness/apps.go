package harness

import (
	"fmt"

	"cachepart/internal/engine"
	"cachepart/internal/workload/s4"
	"cachepart/internal/workload/tpch"
)

// Fig11 reproduces Figure 11: each TPC-H query co-running with the
// polluting column scan (Query 1), with partitioning off and on (scan
// restricted to 10%, TPC-H query at 100%). Expected shape: queries 1,
// 7, 8, 9 gain the most; most others change little; nothing regresses.
func Fig11(p Params) ([]PairRow, error) {
	return fig11Queries(p, nil)
}

// Fig11Query runs a single TPC-H query number of Figure 11.
func Fig11Query(p Params, number int) (PairRow, error) {
	rows, err := fig11Queries(p, []int{number})
	if err != nil {
		return PairRow{}, err
	}
	return rows[0], nil
}

func fig11Queries(p Params, numbers []int) ([]PairRow, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	q1, err := NewQ1(sys)
	if err != nil {
		return nil, err
	}
	db, err := tpch.Load(sys.Space, sys.Rng, tpch.Spec{
		Scale:        p.Scale,
		LineitemRows: p.RowsAgg,
	})
	if err != nil {
		return nil, err
	}
	if numbers == nil {
		for n := 1; n <= len(tpch.Specs); n++ {
			numbers = append(numbers, n)
		}
	}
	var rows []PairRow
	for _, n := range numbers {
		q, err := tpch.NewQuery(db, sys.Space, n)
		if err != nil {
			return nil, err
		}
		row, err := sys.runPairArms(q.Name(), q1, q,
			[]struct {
				name  string
				apply func() error
			}{
				{"shared", func() error { return sys.SetPartitioning(false) }},
				{"partitioned", func() error { return sys.SetPartitioning(true) }},
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// loadS4 builds the ACDOCA model sized from the aggregation sampling
// parameter. The row count is kept high enough that the inverted
// index exceeds the scaled LLC: as with the paper's 151-million-row
// table, index probes are uncacheable and only the dictionaries are a
// protectable working set.
func loadS4(sys *System) (*s4.Table, error) {
	rows := sys.Params.RowsAgg
	if minRows := int(sys.LLCBytes()); rows*4 < 2*minRows {
		rows = minRows / 2 // index = 4 B/row ⇒ index ≈ 2× LLC
	}
	return s4.Load(sys.Space, sys.Rng, s4.Spec{
		Rows:  rows,
		Scale: sys.Params.Scale,
	})
}

// oltpCoreSplit gives the OLAP scan most of the machine and reserves a
// small dedicated pool for the OLTP query, mirroring the engine's
// dedicated OLTP thread pool (Section V-C).
func (s *System) oltpCoreSplit() (olap, oltp []int) {
	n := s.Machine.Cores()
	reserve := 2
	if n <= 4 {
		reserve = 1
	}
	all := s.AllCores()
	return all[:n-reserve], all[n-reserve:]
}

// Fig12 reproduces Figure 12: Query 1 (column scan) concurrent with
// the S/4HANA OLTP query, projecting the 13 biggest-dictionary columns
// (a) or 6 smaller ones (b). With partitioning the scan is restricted
// to 10% of the LLC.
func Fig12(p Params) ([]PairRow, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	table, err := loadS4(sys)
	if err != nil {
		return nil, err
	}
	q1, err := NewQ1(sys)
	if err != nil {
		return nil, err
	}
	var rows []PairRow
	projections := []struct {
		label   string
		columns int
		big     bool
	}{
		{"13 big-dictionary columns", 13, true},
		{"6 smaller-dictionary columns", 6, false},
	}
	for _, sel := range projections {
		project := table.Small
		if sel.big {
			project = table.Big
		}
		project = project[:sel.columns]
		oltp, err := s4.NewOLTPQuery(table, project)
		if err != nil {
			return nil, err
		}
		row, err := sys.runOLTPArms(sel.label, q1, oltp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runOLTPArms is runPairArms with the dedicated OLTP core split.
func (s *System) runOLTPArms(label string, olap, oltp engine.Query) (PairRow, error) {
	ca, cb := s.oltpCoreSplit()
	if err := s.SetPartitioning(false); err != nil {
		return PairRow{}, err
	}
	isoA, err := s.RunIsolated(olap, ca)
	if err != nil {
		return PairRow{}, err
	}
	isoB, err := s.RunIsolated(oltp, cb)
	if err != nil {
		return PairRow{}, err
	}
	row := PairRow{
		Label: label,
		NameA: olap.Name(), NameB: oltp.Name(),
		IsoA: isoA, IsoB: isoB,
	}
	for _, arm := range []struct {
		name    string
		enabled bool
	}{
		{"shared", false},
		{"partitioned", true},
	} {
		if err := s.SetPartitioning(arm.enabled); err != nil {
			return PairRow{}, err
		}
		ma, mb, err := s.RunPair(olap, ca, oltp, cb)
		if err != nil {
			return PairRow{}, err
		}
		row.Arms = append(row.Arms, PairArm{
			Name:  arm.name,
			A:     ma,
			B:     mb,
			NormA: ratio(ma.Throughput, isoA.Throughput),
			NormB: ratio(mb.Throughput, isoB.Throughput),
		})
	}
	return row, s.SetPartitioning(false)
}

// Fig1 reproduces the teaser figure: the OLTP query's throughput
// isolated, concurrent to the OLAP scan, and concurrent with
// partitioning applied. It is the 13-column configuration of
// Figure 12 re-expressed.
type Fig1Result struct {
	Isolated    float64 // always 1.0 (baseline)
	Concurrent  float64
	Partitioned float64
}

// Fig1 runs the teaser experiment.
func Fig1(p Params) (Fig1Result, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return Fig1Result{}, err
	}
	table, err := loadS4(sys)
	if err != nil {
		return Fig1Result{}, err
	}
	q1, err := NewQ1(sys)
	if err != nil {
		return Fig1Result{}, err
	}
	oltp, err := s4.NewOLTPQuery(table, table.Big)
	if err != nil {
		return Fig1Result{}, err
	}
	row, err := sys.runOLTPArms("teaser", q1, oltp)
	if err != nil {
		return Fig1Result{}, err
	}
	shared, ok := row.Arm("shared")
	if !ok {
		return Fig1Result{}, fmt.Errorf("harness: missing shared arm")
	}
	part, ok := row.Arm("partitioned")
	if !ok {
		return Fig1Result{}, fmt.Errorf("harness: missing partitioned arm")
	}
	return Fig1Result{
		Isolated:    1.0,
		Concurrent:  shared.NormB,
		Partitioned: part.NormB,
	}, nil
}

// FigProjSweep reproduces the additional experiment of Section VI-E:
// the OLTP query's partitioning benefit as the number of projected
// (big-dictionary) columns grows from 2 to 13.
func FigProjSweep(p Params) ([]PairRow, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	table, err := loadS4(sys)
	if err != nil {
		return nil, err
	}
	q1, err := NewQ1(sys)
	if err != nil {
		return nil, err
	}
	var rows []PairRow
	for _, k := range []int{2, 4, 6, 8, 10, 13} {
		oltp, err := s4.NewOLTPQuery(table, table.Big[:k])
		if err != nil {
			return nil, err
		}
		row, err := sys.runOLTPArms(fmt.Sprintf("%d columns", k), q1, oltp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
