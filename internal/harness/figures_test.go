package harness

import "testing"

// figureParams trims every sweep to a single representative value so
// the full set of figure functions runs in seconds.
func figureParams() Params {
	p := tinyParams()
	p.Ways = []int{2, 20}
	p.DictSweep = []int64{10_000_000}
	p.GroupSweep = []int64{10_000}
	p.KeySweep = []int64{100_000_000}
	return p
}

func TestFig5Function(t *testing.T) {
	sets, err := Fig5(figureParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0].Series) != 1 {
		t.Fatalf("panel shape = %+v", sets)
	}
	pts := sets[0].Series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Norm >= pts[1].Norm {
		t.Errorf("40 MiB-dict aggregation not cache-sensitive: %.3f vs %.3f", pts[0].Norm, pts[1].Norm)
	}
	if sets[0].Label != "40 MiB dictionary" {
		t.Errorf("panel label = %q", sets[0].Label)
	}
}

func TestFig6Function(t *testing.T) {
	series, err := Fig6(figureParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Label != "P=1e8" {
		t.Fatalf("series = %+v", series)
	}
	pts := series[0].Points
	if pts[0].Norm >= pts[1].Norm {
		t.Errorf("1e8-key join not sensitive: %.3f vs %.3f", pts[0].Norm, pts[1].Norm)
	}
}

func TestFig9Function(t *testing.T) {
	panels, err := Fig9(figureParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 1 || len(panels[0].Rows) != 1 {
		t.Fatalf("panels = %+v", panels)
	}
	row := panels[0].Rows[0]
	shared, ok1 := row.Arm("shared")
	part, ok2 := row.Arm("partitioned")
	if !ok1 || !ok2 {
		t.Fatalf("arms = %+v", row.Arms)
	}
	if part.NormB <= shared.NormB {
		t.Errorf("Fig9 partitioning did not help: %.3f -> %.3f", shared.NormB, part.NormB)
	}
}

func TestFig10Function(t *testing.T) {
	rows, err := Fig10(figureParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	j10, ok1 := rows[0].Arm("join10")
	j60, ok2 := rows[0].Arm("join60")
	if !ok1 || !ok2 {
		t.Fatalf("arms = %+v", rows[0].Arms)
	}
	if j60.NormB < j10.NormB {
		t.Errorf("join60 (%.3f) should protect the 1e8-key join better than join10 (%.3f)",
			j60.NormB, j10.NormB)
	}
}

func TestFig11QueryFunction(t *testing.T) {
	p := figureParams()
	p.RowsAgg = 1 << 17
	row, err := Fig11Query(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := row.Arm("shared")
	part, _ := row.Arm("partitioned")
	// TPC-H Q1 is the paper's headline winner.
	if part.NormB <= shared.NormB {
		t.Errorf("TPC-H Q1 gained nothing: %.3f -> %.3f", shared.NormB, part.NormB)
	}
	if _, err := Fig11Query(p, 99); err == nil {
		t.Error("query 99 accepted")
	}
}

func TestFig12Function(t *testing.T) {
	p := figureParams()
	rows, err := Fig12(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		shared, _ := r.Arm("shared")
		part, _ := r.Arm("partitioned")
		if part.NormB <= shared.NormB {
			t.Errorf("%s: OLTP gained nothing: %.3f -> %.3f", r.Label, shared.NormB, part.NormB)
		}
	}
}

func TestFigProjSweepFunction(t *testing.T) {
	p := figureParams()
	rows, err := FigProjSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want the 2..13 column sweep", len(rows))
	}
	// The widening-projection trend (Section VI-E) needs scale >= 1/8
	// to discriminate (see EXPERIMENTS.md); at test scale assert the
	// scale-independent claim: partitioning never regresses the OLTP
	// query.
	for _, r := range rows {
		shared, _ := r.Arm("shared")
		part, _ := r.Arm("partitioned")
		if part.NormB < shared.NormB*0.95 {
			t.Errorf("%s: partitioning regressed OLTP %.3f -> %.3f", r.Label, shared.NormB, part.NormB)
		}
	}
}

func TestFig1Function(t *testing.T) {
	r, err := Fig1(figureParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Partitioned < r.Concurrent {
		t.Errorf("teaser: partitioning regressed %.3f -> %.3f", r.Concurrent, r.Partitioned)
	}
}
