package harness

import (
	"fmt"

	"cachepart/internal/engine"
	"cachepart/internal/workload"
)

// WayPoint is one sample of an LLC-size sweep.
type WayPoint struct {
	Ways    int
	LLCMiB  float64 // available LLC in (scaled-back) paper MiB
	Measure Measure
	Norm    float64 // throughput normalized to the sweep's best
}

// GroupSeries is one curve of Figure 5/6: a parameter value (paper
// nominal) and its way sweep.
type GroupSeries struct {
	Label   string
	Nominal int64
	Points  []WayPoint
}

// CurveSet is one panel: a data-set configuration with its curves.
type CurveSet struct {
	Label  string
	Series []GroupSeries
}

// sweepWays measures a query across the way limits and normalizes.
// The paper normalizes to the throughput with the entire cache, which
// is the maximum across the sweep.
func (s *System) sweepWays(q engine.Query, cores []int) ([]WayPoint, error) {
	p := s.Params
	points := make([]WayPoint, 0, len(p.Ways))
	for _, w := range p.Ways {
		if err := s.Engine.LimitWays(w); err != nil {
			return nil, err
		}
		m, err := s.RunIsolated(q, cores)
		if err != nil {
			return nil, err
		}
		// Report the x-axis in unscaled paper MiB so figures carry the
		// paper's labels at any scale.
		paperMiB := 55.0 * float64(w) / 20.0
		points = append(points, WayPoint{Ways: w, LLCMiB: paperMiB, Measure: m})
	}
	if err := s.Engine.LimitWays(0); err != nil {
		return nil, err
	}
	best := 0.0
	for _, pt := range points {
		if pt.Measure.Throughput > best {
			best = pt.Measure.Throughput
		}
	}
	if best > 0 {
		for i := range points {
			points[i].Norm = points[i].Measure.Throughput / best
		}
	}
	return points, nil
}

// Fig4 reproduces Figure 4: normalized throughput of the column scan
// at varying LLC sizes. Expected shape: flat — the operator is hardly
// sensitive to the cache size.
func Fig4(p Params) ([]WayPoint, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	q1, err := NewQ1(sys)
	if err != nil {
		return nil, err
	}
	return sys.sweepWays(q1, sys.AllCores())
}

// Fig5Dictionaries are the paper's three dictionary configurations:
// 10^6, 10^7, 10^8 distinct values = 4, 40, 400 MiB.
var Fig5Dictionaries = []int64{1_000_000, 10_000_000, 100_000_000}

// Fig5Groups are the paper's group counts 10^2..10^6.
var Fig5Groups = []int64{100, 1_000, 10_000, 100_000, 1_000_000}

// Fig5 reproduces Figure 5 (a, b, c): normalized throughput of
// aggregation with grouping at varying LLC sizes, for the three
// dictionary sizes and five group counts.
func Fig5(p Params) ([]CurveSet, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	var sets []CurveSet
	for _, distinct := range p.dictSweep() {
		set := CurveSet{Label: fmt.Sprintf("%d MiB dictionary", 4*distinct/1_000_000)}
		for _, groups := range p.groupSweep() {
			q2, err := NewQ2(sys, distinct, groups)
			if err != nil {
				return nil, err
			}
			pts, err := sys.sweepWays(q2, sys.AllCores())
			if err != nil {
				return nil, err
			}
			set.Series = append(set.Series, GroupSeries{
				Label:   fmt.Sprintf("G=%s", sciLabel(groups)),
				Nominal: groups,
				Points:  pts,
			})
		}
		sets = append(sets, set)
	}
	return sets, nil
}

// Fig6Keys are the paper's primary-key counts 10^6..10^9.
var Fig6Keys = []int64{1_000_000, 10_000_000, 100_000_000, 1_000_000_000}

// Fig6 reproduces Figure 6: normalized throughput of the foreign-key
// join at varying LLC sizes and primary-key counts. Expected shape:
// sensitive only around 10^8 keys, when the bit vector is comparable
// to the LLC.
func Fig6(p Params) ([]GroupSeries, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	var out []GroupSeries
	for _, keys := range p.keySweep() {
		q3, err := NewQ3(sys, keys)
		if err != nil {
			return nil, err
		}
		pts, err := sys.sweepWays(q3, sys.AllCores())
		if err != nil {
			return nil, err
		}
		out = append(out, GroupSeries{
			Label:   fmt.Sprintf("P=%s", sciLabel(keys)),
			Nominal: keys,
			Points:  pts,
		})
	}
	return out, nil
}

// NewQ1 builds the Query 1 data set in the system's space.
func NewQ1(sys *System) (*workload.ScanQuery, error) {
	return workload.NewQ1(sys.Space, sys.Rng, sys.Params.Q1Spec())
}

// NewQ2 builds a Query 2 data set for paper-nominal distinct values
// and groups.
func NewQ2(sys *System, nominalDistinctV, nominalGroups int64) (*workload.AggQuery, error) {
	return workload.NewQ2(sys.Space, sys.Rng, sys.Params.Q2Spec(nominalDistinctV, nominalGroups))
}

// NewQ3 builds a Query 3 data set for a paper-nominal key count.
func NewQ3(sys *System, nominalKeys int64) (*workload.JoinQuery, error) {
	return workload.NewQ3(sys.Space, sys.Rng, sys.Params.Q3Spec(nominalKeys))
}

// sciLabel renders 100000 as "1e5" for series labels.
func sciLabel(n int64) string {
	exp := 0
	v := n
	for v >= 10 && v%10 == 0 {
		v /= 10
		exp++
	}
	if v == 1 && exp > 0 {
		return fmt.Sprintf("1e%d", exp)
	}
	return fmt.Sprintf("%d", n)
}
