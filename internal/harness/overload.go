package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cachepart/internal/adapt"
	"cachepart/internal/fault"
	"cachepart/internal/serve"
)

// overload.go: the FigOverload experiment — the serving tier driven
// past capacity (1x–5x) under SLO-aware overload control, sweeping the
// shedding policy (none / fair / polluter-first) against the three
// cache arms (shared / static / adaptive). The question the figure
// answers: when the system must drop work, does dropping the polluting
// cohort first keep the cache-sensitive victim inside its SLO? The
// paper's partitioning story says yes — the polluter's queries buy no
// cache benefit, so shedding them frees both CPU time and LLC space.

// OverloadOptions tunes the overload sweep.
type OverloadOptions struct {
	// Loads are rogue-tenant overload multiples (noisy-neighbor model):
	// the well-behaved cohorts keep their nominal share of estimated
	// capacity while the polluting reporting cohort offers Load × its
	// provisioned rate. Default {1, 3, 5}.
	Loads []float64
	// Arrivals is the target arrival count per run; default 320 (long
	// enough that steady state, not the warm-up transient, dominates
	// the SLO accounting).
	Arrivals int
	// Sheds names the shedding policies to sweep (serve.ParseShedPolicy
	// names); default {"none", "fair", "polluter"}.
	Sheds []string
	// Arms keeps only the named cache arms (shared / static /
	// adaptive); empty keeps all three.
	Arms []string
	// SLOMultiple sets each tenant's SLO from its isolated baseline:
	// target p99 = SLOMultiple × isolated mean, queueing deadline =
	// 2 × SLOMultiple × isolated mean. Default 15: loose enough that a
	// well-partitioned tenant at its provisioned rate sits comfortably
	// inside the target, so violations measure interference and
	// overload, not ordinary queueing noise.
	SLOMultiple float64
	// ShedThreshold is the queue-occupancy fraction where the fair and
	// polluter-first policies begin shedding. The sweep defaults to 0.3
	// — tighter than serve.DefaultShedThreshold — because a surging
	// polluter saturates the dispatch groups long before the combined
	// queues look full.
	ShedThreshold float64
	// Retry is the client retry model; zero value uses MaxAttempts 3
	// with a 0.3 retry budget (set MaxAttempts 1 to disable).
	Retry serve.Retry
	// Breaker configures the per-tenant circuit breakers; zero value
	// uses a 32-completion window (set Window < 0 error-free off is not
	// supported — use a huge TripFraction instead).
	Breaker serve.Breaker
	// QueueCap bounds every tenant queue; default 16 as in FigServe.
	QueueCap int
	// Discipline and Policy configure the front end as in ServeOptions.
	Discipline serve.Discipline
	Policy     serve.AdmitPolicy
	// Faults interposes control-plane chaos (resctrl fault injection);
	// ServeFaults adds serving-plane chaos (arrival bursts, dispatcher
	// stalls). Both compose.
	Faults      *fault.Config
	ServeFaults *fault.ServeConfig
}

func (o *OverloadOptions) setDefaults() {
	if len(o.Loads) == 0 {
		o.Loads = []float64{1, 3, 5}
	}
	if o.Arrivals <= 0 {
		o.Arrivals = 320
	}
	if len(o.Sheds) == 0 {
		o.Sheds = []string{"none", "fair", "polluter"}
	}
	if o.SLOMultiple <= 0 {
		o.SLOMultiple = 15
	}
	if o.ShedThreshold <= 0 {
		o.ShedThreshold = 0.3
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = serve.Retry{MaxAttempts: 3, BudgetFraction: 0.3}
	}
	if o.Breaker.Window == 0 {
		o.Breaker = serve.Breaker{Window: 32}
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
}

// OverloadRun is one (cache arm, shed policy) cell at one load point.
type OverloadRun struct {
	Arm    string
	Shed   string
	Report *serve.Report
}

// OverloadLoad is one load point of the sweep.
type OverloadLoad struct {
	Load    float64
	RateQPS float64
	Runs    []OverloadRun
}

// OverloadResult is the FigOverload experiment.
type OverloadResult struct {
	CapacityQPS    float64
	BaselineTicks  []float64
	SecondsPerTick float64
	Groups         int
	// Victim and Polluter index the cache-sensitive OLTP cohort and the
	// streaming reporting cohort in each report's Tenants.
	Victim   int
	Polluter int
	Loads    []OverloadLoad
}

// Run returns the cell for the named (arm, shed) pair, nil if absent.
func (l *OverloadLoad) Run(arm, shed string) *serve.Report {
	for i := range l.Runs {
		if l.Runs[i].Arm == arm && l.Runs[i].Shed == shed {
			return l.Runs[i].Report
		}
	}
	return nil
}

// FigOverload runs the overload sweep with default options.
func FigOverload(p Params) (*OverloadResult, error) {
	return FigOverloadOpts(p, OverloadOptions{})
}

// FigOverloadOpts runs the SLO-aware overload sweep: the FigServe
// cohorts with per-tenant SLOs derived from their isolated baselines,
// client retries and circuit breakers enabled, driven at Loads ×
// capacity under every (shed policy, cache arm) pair. Reports are
// bit-identical per (Params.Seed, options) — including under composed
// control-plane and serving-plane chaos, at any worker count.
func FigOverloadOpts(p Params, o OverloadOptions) (*OverloadResult, error) {
	o.setDefaults()
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	defer sys.DisableAdaptive()
	defer sys.DisableChaos()

	groups := sys.serveGroups()
	if len(groups) < 2 {
		return nil, fmt.Errorf("harness: overload sweep needs at least 4 cores")
	}
	tenants, err := sys.serveTenants(len(groups))
	if err != nil {
		return nil, err
	}
	shares := make([]float64, len(tenants))
	var shareSum float64
	for ti := range tenants {
		shares[ti] = serveShares[ti%len(serveShares)]
		shareSum += shares[ti]
	}
	for ti := range shares {
		shares[ti] /= shareSum
	}
	baselines, capacity, err := sys.calibrateServe(tenants, shares, groups)
	if err != nil {
		return nil, err
	}
	if o.Faults != nil {
		if _, err := sys.EnableChaos(*o.Faults); err != nil {
			return nil, err
		}
	}

	// SLOs anchor to each tenant's isolated mean: the p99 target allows
	// SLOMultiple of queueing slowdown, and clients hang up (deadline)
	// at twice that.
	secPerTick := sys.Machine.Seconds(1)
	for ti := range tenants {
		base := baselines[ti] * secPerTick
		tenants[ti].SLO = serve.SLO{
			TargetP99Seconds: o.SLOMultiple * base,
			DeadlineSeconds:  2 * o.SLOMultiple * base,
		}
		tenants[ti].QueueCap = o.QueueCap
	}

	out := &OverloadResult{
		CapacityQPS:    capacity,
		BaselineTicks:  baselines,
		SecondsPerTick: secPerTick,
		Groups:         len(groups),
		Victim:         0,
		Polluter:       len(tenants) - 1,
	}
	for _, load := range o.Loads {
		// The overload is polluter-driven: the reporting cohort surges to
		// load × its provisioned rate while everyone else stays nominal —
		// the only regime where shedding the right tenant can recover the
		// victim at all.
		var offered float64
		for ti := range tenants {
			r := capacity * shares[ti]
			if ti == out.Polluter {
				r *= load
			}
			tenants[ti].Process.Rate = r
			offered += r
		}
		point := OverloadLoad{Load: load, RateQPS: offered}
		for _, shedName := range o.Sheds {
			shed, err := overloadShedPolicy(shedName, o.ShedThreshold)
			if err != nil {
				return nil, err
			}
			for _, arm := range sys.adaptArms(adapt.DefaultConfig()) {
				if !armSelected(o.Arms, arm.name) {
					continue
				}
				if err := arm.apply(); err != nil {
					return nil, err
				}
				cfg := serve.Config{
					Seed:       p.Seed,
					Horizon:    float64(o.Arrivals) / offered,
					Tenants:    tenants,
					Policy:     o.Policy,
					Discipline: o.Discipline,
					Shed:       shed,
					Retry:      o.Retry,
					Breaker:    o.Breaker,
					Faults:     o.ServeFaults,
					Quantum:    p.Quantum,
					Parallel:   p.Parallel,
					Workers:    p.Workers,
					EpochTicks: p.EpochTicks,
				}
				r, err := serve.Run(sys.Engine, groups, cfg)
				if err != nil {
					return nil, fmt.Errorf("overload %s/%s at %.1fx: %w", arm.name, shedName, load, err)
				}
				point.Runs = append(point.Runs, OverloadRun{Arm: arm.name, Shed: shedName, Report: r})
			}
			sys.DisableAdaptive()
		}
		out.Loads = append(out.Loads, point)
	}
	return out, nil
}

// overloadShedPolicy builds the named policy at the sweep's threshold
// (serve.ParseShedPolicy keeps the package defaults for the CLI).
func overloadShedPolicy(name string, threshold float64) (serve.ShedPolicy, error) {
	switch name {
	case "none", "":
		return serve.ShedNone{}, nil
	case "fair":
		return &serve.ShedFair{Threshold: threshold}, nil
	case "polluter":
		return &serve.ShedPolluter{Threshold: threshold}, nil
	}
	return serve.ParseShedPolicy(name)
}

// armSelected filters cache arms by name; an empty filter keeps all.
func armSelected(arms []string, name string) bool {
	if len(arms) == 0 {
		return true
	}
	for _, a := range arms {
		if a == name {
			return true
		}
	}
	return false
}

// PrintOverload renders the sweep: per load point and shed policy,
// each arm's victim-tenant p99, aggregate goodput, SLO attainment and
// the per-reason drop/retry accounting.
func PrintOverload(w io.Writer, r *OverloadResult) {
	fmt.Fprintf(w, "FigOverload — SLO-aware overload control over %d dispatch groups, capacity ≈ %.0f q/s\n",
		r.Groups, r.CapacityQPS)
	fmt.Fprintln(w, "(latencies in simulated µs; victim = oltp cohort; drops split deadline/shed/breaker/queue+policy)")
	us := func(ticks int64) float64 { return float64(ticks) * r.SecondsPerTick * 1e6 }
	for _, ld := range r.Loads {
		fmt.Fprintf(w, "\nload %.1fx (%.0f q/s offered)\n", ld.Load, ld.RateQPS)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "arm\tshed\tvictim p99 µs\tvictim SLO\tgood q/s\tSLO att\tdl\tshed\tbrk\tother\tretries\tlost")
		for _, run := range ld.Runs {
			rep := run.Report
			v := rep.Tenants[r.Victim]
			var dl, sh, brk, other int64
			for _, tr := range rep.Tenants {
				dl += tr.DropDeadline
				sh += tr.DropShed
				brk += tr.DropBreaker
				other += tr.DropPolicy + tr.DropQueue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.3f\t%.0f\t%.3f\t%d\t%d\t%d\t%d\t%d\t%d\n",
				run.Arm, run.Shed, us(v.P99), v.SLOAttainment,
				rep.GoodQPS, rep.SLOAttainment, dl, sh, brk, other, rep.Retries, rep.Abandoned)
		}
		tw.Flush()
	}
	fmt.Fprintln(w)
}
