package harness

import (
	"fmt"

	"cachepart/internal/engine"
)

// PairArm is one configuration of a two-query co-run experiment.
type PairArm struct {
	Name  string
	A, B  Measure
	NormA float64 // A's throughput relative to its isolated run
	NormB float64
}

// PairRow is one x-axis point of a co-run figure: the two queries'
// isolated baselines and every experiment arm.
type PairRow struct {
	Label        string
	NameA, NameB string
	IsoA, IsoB   Measure
	Arms         []PairArm
}

// Arm returns the named arm, for tests and printers.
func (r PairRow) Arm(name string) (PairArm, bool) {
	for _, a := range r.Arms {
		if a.Name == name {
			return a, true
		}
	}
	return PairArm{}, false
}

// Fig9Panel is one dictionary configuration of Figure 9.
type Fig9Panel struct {
	Label string
	Rows  []PairRow
}

// runPairArms measures the isolated baselines and each policy arm of a
// query pair. The two queries run on disjoint halves of the cores, as
// the engine pins co-running statements; isolated baselines use the
// same core counts so normalization isolates cache and bandwidth
// interference.
func (s *System) runPairArms(label string, qa, qb engine.Query, arms []struct {
	name  string
	apply func() error
}) (PairRow, error) {
	ca, cb := s.SplitCores()
	if err := s.SetPartitioning(false); err != nil {
		return PairRow{}, err
	}
	isoA, err := s.RunIsolated(qa, ca)
	if err != nil {
		return PairRow{}, err
	}
	isoB, err := s.RunIsolated(qb, cb)
	if err != nil {
		return PairRow{}, err
	}
	row := PairRow{
		Label: label,
		NameA: qa.Name(), NameB: qb.Name(),
		IsoA: isoA, IsoB: isoB,
	}
	basePolicy := s.Engine.Policy()
	for _, arm := range arms {
		if err := s.Engine.SetPolicy(basePolicy); err != nil {
			return PairRow{}, err
		}
		if err := arm.apply(); err != nil {
			return PairRow{}, err
		}
		ma, mb, err := s.RunPair(qa, ca, qb, cb)
		if err != nil {
			return PairRow{}, err
		}
		row.Arms = append(row.Arms, PairArm{
			Name:  arm.name,
			A:     ma,
			B:     mb,
			NormA: ratio(ma.Throughput, isoA.Throughput),
			NormB: ratio(mb.Throughput, isoB.Throughput),
		})
	}
	if err := s.Engine.SetPolicy(basePolicy); err != nil {
		return PairRow{}, err
	}
	return row, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig9 reproduces Figure 9 (a, b, c): Query 1 (column scan) and
// Query 2 (aggregation) executed concurrently, for the three
// dictionary sizes and the group-count sweep, with partitioning
// disabled and enabled. With partitioning the scan is restricted to
// 10% of the LLC and the aggregation keeps 100%.
func Fig9(p Params) ([]Fig9Panel, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	q1, err := NewQ1(sys)
	if err != nil {
		return nil, err
	}
	var panels []Fig9Panel
	for _, distinct := range p.dictSweep() {
		panel := Fig9Panel{Label: fmt.Sprintf("%d MiB dictionary", 4*distinct/1_000_000)}
		for _, groups := range p.groupSweep() {
			q2, err := NewQ2(sys, distinct, groups)
			if err != nil {
				return nil, err
			}
			row, err := sys.runPairArms(
				fmt.Sprintf("G=%s", sciLabel(groups)), q1, q2,
				[]struct {
					name  string
					apply func() error
				}{
					{"shared", func() error { return sys.SetPartitioning(false) }},
					{"partitioned", func() error { return sys.SetPartitioning(true) }},
				})
			if err != nil {
				return nil, err
			}
			panel.Rows = append(panel.Rows, row)
		}
		panels = append(panels, panel)
	}
	return panels, nil
}

// Fig10Keys are the two primary-key counts of Figure 10.
var Fig10Keys = []int64{1_000_000, 100_000_000}

// Fig10 reproduces Figure 10 (a, b): Query 2 (aggregation, 40 MiB
// dictionary) and Query 3 (foreign-key join) executed concurrently for
// 10^6 and 10^8 primary keys, comparing three configurations: no
// partitioning, join restricted to 10% of the LLC, and join
// restricted to 60%.
func Fig10(p Params) ([]PairRow, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	var rows []PairRow
	keys10 := Fig10Keys
	if len(p.KeySweep) > 0 {
		keys10 = p.KeySweep
	}
	for _, keys := range keys10 {
		q3, err := NewQ3(sys, keys)
		if err != nil {
			return nil, err
		}
		for _, groups := range p.groupSweep() {
			q2, err := NewQ2(sys, 10_000_000, groups)
			if err != nil {
				return nil, err
			}
			row, err := sys.runPairArms(
				fmt.Sprintf("P=%s G=%s", sciLabel(keys), sciLabel(groups)), q2, q3,
				[]struct {
					name  string
					apply func() error
				}{
					{"shared", func() error { return sys.SetPartitioning(false) }},
					{"join10", func() error { return sys.setJoinFraction(0.10) }},
					{"join60", func() error { return sys.setJoinFraction(0.60) }},
				})
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// setJoinFraction forces the Depends class to a fixed LLC fraction by
// collapsing the bit-vector heuristic band.
func (sys *System) setJoinFraction(fraction float64) error {
	pol := sys.Engine.Policy()
	pol.Enabled = true
	if fraction >= 0.5 {
		// Treat every join as cache-sensitive: the 60% slice.
		pol.DependsLargeFraction = fraction
		pol.SensitiveLo = 0
		pol.SensitiveHi = 1e18
	} else {
		// Treat every join as polluting: the small slice. Pushing the
		// band far beyond any real bit vector disables the heuristic.
		pol.PollutingFraction = fraction
		pol.SensitiveLo = 1e15
		pol.SensitiveHi = 1e15
	}
	return sys.Engine.SetPolicy(pol)
}
