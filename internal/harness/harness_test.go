package harness

import (
	"strings"
	"testing"

	"cachepart/internal/core"
	"cachepart/internal/workload/s4"
)

// tinyParams keeps shape tests fast: 1/64 scale, 8 cores, 3 sweep
// points.
func tinyParams() Params {
	return Params{
		Scale:     64,
		Cores:     8,
		Ways:      []int{2, 8, 20},
		Duration:  0.002,
		RowsScan:  1 << 21,
		RowsAgg:   1 << 19,
		RowsProbe: 1 << 19,
		Seed:      1,
	}
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	if err := p.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if p.Scale != 1 || p.Cores != 22 || len(p.Ways) == 0 {
		t.Errorf("defaults: %+v", p)
	}
	bad := Params{Cores: 64}
	if err := bad.setDefaults(); err == nil {
		t.Error("64 cores accepted")
	}
}

func TestScaleN(t *testing.T) {
	p := Params{Scale: 8}
	if got := p.ScaleN(1_000_000); got != 125_000 {
		t.Errorf("ScaleN = %d", got)
	}
	if got := p.ScaleN(3); got != 1 {
		t.Errorf("ScaleN small = %d, want clamp to 1", got)
	}
}

func TestNewSystemAndCores(t *testing.T) {
	sys, err := NewSystem(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.AllCores()); got != 8 {
		t.Errorf("AllCores = %d", got)
	}
	a, b := sys.SplitCores()
	if len(a) != 4 || len(b) != 4 {
		t.Errorf("SplitCores = %d/%d", len(a), len(b))
	}
	for _, c := range b {
		for _, c2 := range a {
			if c == c2 {
				t.Fatal("core sets overlap")
			}
		}
	}
	if sys.LLCBytes() == 0 {
		t.Error("zero LLC")
	}
	olap, oltp := sys.oltpCoreSplit()
	if len(oltp) != 2 || len(olap) != 6 {
		t.Errorf("oltpCoreSplit = %d/%d", len(olap), len(oltp))
	}
}

func TestSpecHelpers(t *testing.T) {
	p := tinyParams()
	q1 := p.Q1Spec()
	if q1.Rows != p.RowsScan || q1.Distinct != p.ScaleN(1_000_000) {
		t.Errorf("Q1Spec = %+v", q1)
	}
	q2 := p.Q2Spec(10_000_000, 100_000)
	if q2.DistinctV != p.ScaleN(10_000_000) || q2.Groups != p.ScaleN(100_000) {
		t.Errorf("Q2Spec = %+v", q2)
	}
	q3 := p.Q3Spec(100_000_000)
	if q3.Keys != p.ScaleN(100_000_000) || q3.PaperKeys != 100_000_000 {
		t.Errorf("Q3Spec = %+v", q3)
	}
}

// TestFig4Flat asserts the paper's headline for the scan: hardly
// sensitive to cache size.
func TestFig4Flat(t *testing.T) {
	pts, err := Fig4(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.Norm < 0.85 {
			t.Errorf("scan at %d ways degraded to %.3f — should be flat", pt.Ways, pt.Norm)
		}
	}
	// The x-axis carries paper MiB labels.
	if pts[len(pts)-1].LLCMiB != 55.0 {
		t.Errorf("full cache labelled %.1f MiB, want 55", pts[len(pts)-1].LLCMiB)
	}
}

// TestAggregationSensitive asserts Figure 5's headline: aggregation
// over the 40 MiB dictionary degrades markedly with a small cache.
func TestAggregationSensitive(t *testing.T) {
	sys, err := NewSystem(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQ2(sys, 10_000_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sys.sweepWays(q2, sys.AllCores())
	if err != nil {
		t.Fatal(err)
	}
	small, full := pts[0], pts[len(pts)-1]
	if full.Norm != 1.0 && small.Norm != 1.0 {
		// One of the endpoints should be the normalisation anchor.
		t.Errorf("normalisation lost: %+v", pts)
	}
	if small.Norm > 0.8*full.Norm {
		t.Errorf("aggregation at 2 ways = %.3f of full cache — not sensitive enough", small.Norm/full.Norm)
	}
	// The scan is much flatter than this (contrast with TestFig4Flat).
}

// TestJoinSensitivityByKeyCount asserts Figure 6's headline: the join
// is sensitive around 10^8 keys and much less at 10^7.
func TestJoinSensitivityByKeyCount(t *testing.T) {
	p := tinyParams()
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	drop := func(keys int64) float64 {
		q3, err := NewQ3(sys, keys)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := sys.sweepWays(q3, sys.AllCores())
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].Norm / pts[len(pts)-1].Norm
	}
	mid := drop(10_000_000)   // bit vector far below LLC
	knee := drop(100_000_000) // bit vector comparable to LLC
	if knee >= mid {
		t.Errorf("join sensitivity: P=1e8 ratio %.3f should be below P=1e7 ratio %.3f", knee, mid)
	}
	if knee > 0.9 {
		t.Errorf("join at 1e8 keys not sensitive: %.3f", knee)
	}
}

// TestPartitioningHelpsCoRun asserts the paper's core result (Figure
// 9): restricting the scan to 10% improves the sensitive aggregation
// and does not hurt the scan.
func TestPartitioningHelpsCoRun(t *testing.T) {
	p := tinyParams()
	p.Duration = 0.003
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQ1(sys)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQ2(sys, 10_000_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	row, err := sys.runPairArms("G=1e4", q1, q2, []struct {
		name  string
		apply func() error
	}{
		{"shared", func() error { return sys.SetPartitioning(false) }},
		{"partitioned", func() error { return sys.SetPartitioning(true) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := row.Arm("shared")
	part, _ := row.Arm("partitioned")
	if shared.NormB >= 0.95 {
		t.Errorf("aggregation unaffected by pollution (%.3f) — experiment not discriminating", shared.NormB)
	}
	if part.NormB < shared.NormB*1.1 {
		t.Errorf("partitioning should improve the aggregation: %.3f -> %.3f", shared.NormB, part.NormB)
	}
	if part.NormA < shared.NormA*0.9 {
		t.Errorf("partitioning hurt the scan: %.3f -> %.3f", shared.NormA, part.NormA)
	}
	// Partitioning restores the aggregation's hit ratio.
	if part.B.HitRatio <= shared.B.HitRatio {
		t.Errorf("hit ratio not restored: %.3f -> %.3f", shared.B.HitRatio, part.B.HitRatio)
	}
}

// TestSharedPoolPartitioning runs the paper's actual execution model —
// both statements' jobs time-sharing one worker pool — and checks that
// partitioning still rescues the aggregation.
func TestSharedPoolPartitioning(t *testing.T) {
	p := tinyParams()
	p.Duration = 0.003
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQ1(sys)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQ2(sys, 10_000_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := sys.RunIsolated(q2, sys.AllCores())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(false); err != nil {
		t.Fatal(err)
	}
	shared, err := sys.RunShared(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(true); err != nil {
		t.Fatal(err)
	}
	part, err := sys.RunShared(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(false); err != nil {
		t.Fatal(err)
	}
	sh := shared[1].Throughput / iso.Throughput
	pt := part[1].Throughput / iso.Throughput
	if pt < sh*1.05 {
		t.Errorf("shared-pool partitioning did not help the aggregation: %.3f -> %.3f", sh, pt)
	}
	// The engine performed mask writes (context switches between
	// classes) but elision kept them bounded.
	if sys.Engine.MaskWrites() == 0 {
		t.Error("no mask writes in a mixed shared pool")
	}
}

// TestOLTPLatencyUnderPollution: cache partitioning lowers the OLTP
// query's end-to-end response time (the quantity the paper actually
// measures) as well as raising its throughput.
func TestOLTPLatencyUnderPollution(t *testing.T) {
	p := tinyParams()
	p.Duration = 0.003
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	table, err := loadS4(sys)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQ1(sys)
	if err != nil {
		t.Fatal(err)
	}
	oltp, err := s4.NewOLTPQuery(table, table.Big)
	if err != nil {
		t.Fatal(err)
	}
	olap, pool := sys.oltpCoreSplit()

	if err := sys.SetPartitioning(false); err != nil {
		t.Fatal(err)
	}
	_, shared, err := sys.RunPair(q1, olap, oltp, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(true); err != nil {
		t.Fatal(err)
	}
	_, part, err := sys.RunPair(q1, olap, oltp, pool)
	if err != nil {
		t.Fatal(err)
	}
	if shared.P50 <= 0 || part.P50 <= 0 {
		t.Fatalf("missing latency percentiles: shared %v, partitioned %v", shared.P50, part.P50)
	}
	if part.P50 >= shared.P50 {
		t.Errorf("partitioning should lower OLTP median latency: %.2fus -> %.2fus",
			shared.P50*1e6, part.P50*1e6)
	}
}

// TestFig10SchemeContrast asserts Figure 10b's lesson: restricting a
// cache-sensitive join (P=1e8) to 10% hurts it, while 60% is safe.
func TestFig10SchemeContrast(t *testing.T) {
	p := tinyParams()
	p.Duration = 0.003
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQ2(sys, 10_000_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := NewQ3(sys, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	row, err := sys.runPairArms("P=1e8", q2, q3, []struct {
		name  string
		apply func() error
	}{
		{"shared", func() error { return sys.SetPartitioning(false) }},
		{"join10", func() error { return sys.setJoinFraction(0.10) }},
		{"join60", func() error { return sys.setJoinFraction(0.60) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	j10, _ := row.Arm("join10")
	j60, _ := row.Arm("join60")
	if j60.NormB < j10.NormB {
		t.Errorf("join at 60%% (%.3f) should beat join at 10%% (%.3f) for a comparable bit vector",
			j60.NormB, j10.NormB)
	}
}

// TestPolicyAutoMatchesHeuristic checks that the default policy picks
// the 60% mask for the comparable bit vector and 10% otherwise, via
// the live engine.
func TestPolicyAutoMatchesHeuristic(t *testing.T) {
	sys, err := NewSystem(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	pol := sys.Engine.Policy()
	pol.Enabled = true
	// Bit vector bytes at this scale: keys/scale/8.
	bvBytes := func(keys int64) uint64 { return uint64(sys.Params.ScaleN(keys)) / 8 }
	small := pol.MaskFor(core.Depends, core.Footprint{BitVectorBytes: bvBytes(1_000_000)})
	comp := pol.MaskFor(core.Depends, core.Footprint{BitVectorBytes: bvBytes(100_000_000)})
	if small.Ways() >= comp.Ways() {
		t.Errorf("heuristic masks: small %v, comparable %v", small, comp)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var sb strings.Builder
	PrintWayPoints(&sb, "t", []WayPoint{{Ways: 2, LLCMiB: 5.5, Norm: 0.5}})
	PrintGroupSeries(&sb, "t", []GroupSeries{{Label: "a", Points: []WayPoint{{Ways: 2, LLCMiB: 5.5, Norm: 1}}}})
	PrintCurveSets(&sb, "t", []CurveSet{{Label: "p", Series: []GroupSeries{{Label: "a", Points: []WayPoint{{Ways: 2}}}}}})
	PrintPairRows(&sb, "t", []PairRow{{
		Label: "x", NameA: "a", NameB: "b",
		Arms: []PairArm{{Name: "shared", NormA: 1, NormB: 0.5}, {Name: "partitioned", NormA: 1, NormB: 0.7}},
	}})
	PrintFig1(&sb, Fig1Result{Isolated: 1, Concurrent: 0.6, Partitioned: 0.8})
	out := sb.String()
	for _, want := range []string{"ways", "LLC", "shared", "partitioned", "isolated"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q", want)
		}
	}
	// Empty inputs do not panic.
	PrintGroupSeries(&sb, "empty", nil)
	PrintPairRows(&sb, "empty", nil)
}

// TestFigCoSchedule exercises the Section VIII sketch: the cache-aware
// schedule (with partitioning) should not be worse than the naive
// mixed schedule without it.
func TestFigCoSchedule(t *testing.T) {
	p := tinyParams()
	row, err := FigCoSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"mixed": row.Mixed, "mixed+part": row.MixedPartitioned,
		"aware": row.Aware, "aware+part": row.AwarePartitioned,
	} {
		if v <= 0 || v > 1.5 {
			t.Errorf("%s = %v out of plausible range", name, v)
		}
	}
	// Some cache-aware configuration must beat the naive mixed
	// schedule; empirically it is mixing plus partitioning, matching
	// the paper's conclusion that partitioning is the better lever.
	best := row.MixedPartitioned
	if row.Aware > best {
		best = row.Aware
	}
	if row.AwarePartitioned > best {
		best = row.AwarePartitioned
	}
	if best < row.Mixed {
		t.Errorf("no configuration beats naive mixed: %+v", row)
	}
}

func TestRatio(t *testing.T) {
	if ratio(1, 0) != 0 {
		t.Error("ratio by zero should be 0")
	}
	if ratio(3, 2) != 1.5 {
		t.Error("ratio wrong")
	}
}

func TestSciLabel(t *testing.T) {
	cases := map[int64]string{
		100:       "1e2",
		1_000_000: "1e6",
		42:        "42",
		1:         "1",
		2500:      "2500",
	}
	for in, want := range cases {
		if got := sciLabel(in); got != want {
			t.Errorf("sciLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
