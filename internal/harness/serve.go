package harness

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"cachepart/internal/adapt"
	"cachepart/internal/column"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/fault"
	"cachepart/internal/serve"
	"cachepart/internal/workload/s4"
	"cachepart/internal/workload/tpch"
)

// serve.go: the FigServe capacity-sweep experiment — the serving tier
// (internal/serve) exercised over three tenants built from the
// repository's existing kernels, under shared-pool, the paper's static
// scheme, and the adaptive controller, at fractions of the system's
// estimated capacity.

// ServeOptions tunes the capacity sweep.
type ServeOptions struct {
	// Loads are the offered-load multiples of estimated capacity;
	// default {0.7, 1.0, 3.0}.
	Loads []float64
	// Arrivals is the target arrival count per load point (sets the
	// horizon); default 240.
	Arrivals int
	// Discipline and Policy configure the serving front end; defaults
	// CLOS-aware dispatch + tail-drop.
	Discipline serve.Discipline
	Policy     serve.AdmitPolicy
	// QueueCap bounds every tenant queue; 0 uses serve.DefaultQueueCap.
	// Tight caps keep overload latencies service-bound (load shedding)
	// instead of wait-bound.
	QueueCap int
	// AgingSeconds is the CLOS-affinity starvation bound; 0 uses
	// serve.DefaultAgingSeconds. Longer residency per class lets the
	// adaptive controller's group classification settle between
	// switches.
	AgingSeconds float64
	// Tenants keeps only the first N of the built-in cohorts (OLTP,
	// analytics, reporting); 0 keeps all three. Load shares are
	// renormalised over the kept cohorts.
	Tenants int
	// RateQPS, when positive, replaces the Loads sweep with a single
	// point at this absolute aggregate offered rate.
	RateQPS float64
	// Faults, when non-nil, interposes the seeded control-plane fault
	// injector for every run of the sweep (chaos interop).
	Faults *fault.Config
}

func (o *ServeOptions) setDefaults() {
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.7, 1.0, 3.0}
	}
	if o.Arrivals <= 0 {
		o.Arrivals = 240
	}
	if o.QueueCap <= 0 {
		// Tight queues keep overload latency service-bound: the 3x
		// point sheds load instead of reporting pure queueing delay,
		// so the arms' cache behaviour stays visible in the tail.
		o.QueueCap = 16
	}
}

// ServeArmReport is one policy arm at one load point.
type ServeArmReport struct {
	Name   string
	Report *serve.Report
}

// ServeLoad is one load point of the sweep.
type ServeLoad struct {
	// Load is the multiple of estimated capacity; RateQPS the resulting
	// aggregate offered rate in queries per simulated second.
	Load    float64
	RateQPS float64
	Arms    []ServeArmReport
}

// ServeResult is the FigServe experiment.
type ServeResult struct {
	// CapacityQPS is the estimated saturation throughput: group count
	// over the tenants' rate-weighted mean isolated service time.
	CapacityQPS float64
	// BaselineTicks are the per-tenant isolated mean service times the
	// slowdown metric normalises by.
	BaselineTicks []float64
	// SecondsPerTick converts the reports' virtual ticks to simulated
	// seconds.
	SecondsPerTick float64
	Groups         int
	Loads          []ServeLoad
}

// chunkScanQuery is the serving-sized slice of the paper's polluting
// column scan: each execution scans a random fixed-length window of
// the big Query 1 column, so one query is a few hundred microseconds
// instead of a full-table pass, while the access pattern stays a
// streaming, cache-polluting scan.
type chunkScanQuery struct {
	label    string
	col      *column.Column
	rows     int
	distinct int64
}

func (q *chunkScanQuery) Name() string { return q.label }

func (q *chunkScanQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	total := q.col.Rows()
	rows := q.rows
	if rows > total {
		rows = total
	}
	start := 0
	if total > rows {
		start = int(rng.Int63n(int64(total - rows + 1)))
	}
	bound := 1 + rng.Int63n(q.distinct)
	parts := engine.PartitionRows(rows, cores)
	kernels := make([]exec.Kernel, 0, len(parts))
	for _, p := range parts {
		k, err := exec.NewColumnScan(q.col, start+p[0], start+p[1], bound)
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	return []engine.Phase{{
		Name:      "serve-scan",
		CUID:      core.Polluting,
		Kernels:   kernels,
		CountRows: true,
	}}, nil
}

// serveShares split the offered load across the three tenants: the
// OLTP cohort dominates by query count, analytics is rare but heavy,
// the reporting scans sit between.
var serveShares = [3]float64{0.60, 0.15, 0.25}

// serveGroups carves the machine into dispatch groups of two cores.
func (s *System) serveGroups() [][]int {
	all := s.AllCores()
	var groups [][]int
	for i := 0; i+1 < len(all); i += 2 {
		groups = append(groups, []int{all[i], all[i+1]})
	}
	return groups
}

// serveTenants builds the three-tenant cohort over the system's data
// sets, with one query instance per dispatch group where the query
// carries per-execution scratch state.
func (s *System) serveTenants(groups int) ([]serve.Tenant, error) {
	table, err := loadS4(s)
	if err != nil {
		return nil, err
	}
	oltp, err := s4.NewOLTPQuery(table, table.Big)
	if err != nil {
		return nil, err
	}
	db, err := tpch.Load(s.Space, s.Rng, tpch.Spec{
		Scale: s.Params.Scale,
		// Serving-sized statements: a few thousand lineitem rows per
		// execution instead of the closed-loop figures' millions.
		LineitemRows: 1 << 13,
	})
	if err != nil {
		return nil, err
	}
	// tpch queries carry per-execution aggregation scratch, so each
	// dispatch group needs its own instance over the shared tables.
	q1s := make([]engine.Query, groups)
	q6s := make([]engine.Query, groups)
	for g := 0; g < groups; g++ {
		if q1s[g], err = tpch.NewQuery(db, s.Space, 1); err != nil {
			return nil, err
		}
		if q6s[g], err = tpch.NewQuery(db, s.Space, 6); err != nil {
			return nil, err
		}
	}
	scan, err := NewQ1(s)
	if err != nil {
		return nil, err
	}
	chunk := &chunkScanQuery{
		label:    "serve-scan",
		col:      scan.Col,
		rows:     1 << 19,
		distinct: scan.Spec().Distinct,
	}

	return []serve.Tenant{
		{
			Name:    "oltp",
			Process: serve.Process{Kind: serve.ProcPoisson},
			Mix: []serve.Workload{{Name: "pklookup", Weight: 1,
				Instances: aliasQuery(oltp, groups), Class: int(core.Sensitive)}},
		},
		{
			Name: "analytics",
			// Analytics traffic follows a two-period diurnal profile
			// compressed into simulated time.
			Process: serve.Process{Kind: serve.ProcDiurnal, Periods: []serve.Period{
				{Seconds: 2e-4, Amplitude: 0.5},
				{Seconds: 8e-4, Amplitude: 0.3, Phase: 1.2},
			}},
			Mix: []serve.Workload{
				{Name: "tpch-q1", Weight: 2, Instances: q1s, Class: int(core.Sensitive)},
				{Name: "tpch-q6", Weight: 1, Instances: q6s, Class: int(core.Sensitive)},
			},
		},
		{
			Name:    "reporting",
			Process: serve.Process{Kind: serve.ProcPoisson},
			Mix: []serve.Workload{{Name: "chunk-scan", Weight: 1,
				Instances: aliasQuery(chunk, groups), Class: int(core.Polluting)}},
		},
	}, nil
}

func aliasQuery(q engine.Query, groups int) []engine.Query {
	out := make([]engine.Query, groups)
	for i := range out {
		out[i] = q
	}
	return out
}

// calibrateServe measures each tenant's isolated mixture-mean service
// time (full cache, no co-runners) on the first dispatch group and
// derives the system's estimated capacity λ* = groups / E[S].
func (s *System) calibrateServe(tenants []serve.Tenant, shares []float64, groups [][]int) (baselines []float64, capacityQPS float64, err error) {
	if err := s.SetPartitioning(false); err != nil {
		return nil, 0, err
	}
	baselines = make([]float64, len(tenants))
	var mixMean float64
	for ti := range tenants {
		t := &tenants[ti]
		var mean, wsum float64
		for wi := range t.Mix {
			w := &t.Mix[wi]
			res, err := s.Engine.Run(
				[]engine.StreamSpec{{Query: w.Instances[0], Cores: groups[0]}},
				engine.RunOptions{Duration: s.Params.Duration, Seed: s.Params.Seed, Quantum: s.Params.Quantum},
			)
			if err != nil {
				return nil, 0, fmt.Errorf("calibrating %s/%s: %w", t.Name, w.Name, err)
			}
			if len(res[0].ExecTicks) == 0 {
				return nil, 0, fmt.Errorf("calibrating %s/%s: no execution completed in %vs", t.Name, w.Name, s.Params.Duration)
			}
			var sum int64
			for _, ticks := range res[0].ExecTicks {
				sum += ticks
			}
			weight := float64(w.Weight)
			if weight <= 0 {
				weight = 1
			}
			mean += weight * float64(sum) / float64(len(res[0].ExecTicks))
			wsum += weight
		}
		baselines[ti] = mean / wsum
		tenants[ti].BaselineTicks = baselines[ti]
		mixMean += shares[ti] * baselines[ti]
	}
	ticksPerSec := float64(s.Machine.Ticks(1))
	capacityQPS = float64(len(groups)) / (mixMean / ticksPerSec)
	return baselines, capacityQPS, nil
}

// FigServe runs the capacity sweep with default options.
func FigServe(p Params) (*ServeResult, error) {
	return FigServeOpts(p, ServeOptions{})
}

// FigServeOpts runs the serving-tier capacity sweep: tenant rates are
// set to Load × estimated capacity (split by serveShares), and each
// load point runs under the shared-pool, static-partitioning and
// adaptive-controller arms. Reports are bit-identical per
// (Params.Seed, options) — including under fault injection.
func FigServeOpts(p Params, o ServeOptions) (*ServeResult, error) {
	o.setDefaults()
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	defer sys.DisableAdaptive()
	defer sys.DisableChaos()

	groups := sys.serveGroups()
	if len(groups) < 2 {
		return nil, fmt.Errorf("harness: serving needs at least 4 cores")
	}
	tenants, err := sys.serveTenants(len(groups))
	if err != nil {
		return nil, err
	}
	if o.Tenants > 0 && o.Tenants < len(tenants) {
		tenants = tenants[:o.Tenants]
	}
	shares := make([]float64, len(tenants))
	var shareSum float64
	for ti := range tenants {
		shares[ti] = serveShares[ti%len(serveShares)]
		shareSum += shares[ti]
	}
	for ti := range shares {
		shares[ti] /= shareSum
	}
	baselines, capacity, err := sys.calibrateServe(tenants, shares, groups)
	if err != nil {
		return nil, err
	}
	if o.RateQPS > 0 {
		o.Loads = []float64{o.RateQPS / capacity}
	}
	if o.Faults != nil {
		if _, err := sys.EnableChaos(*o.Faults); err != nil {
			return nil, err
		}
	}

	out := &ServeResult{
		CapacityQPS:    capacity,
		BaselineTicks:  baselines,
		SecondsPerTick: sys.Machine.Seconds(1),
		Groups:         len(groups),
	}
	for _, load := range o.Loads {
		rate := load * capacity
		point := ServeLoad{Load: load, RateQPS: rate}
		for ti := range tenants {
			tenants[ti].Process.Rate = rate * shares[ti]
			tenants[ti].QueueCap = o.QueueCap
		}
		cfg := serve.Config{
			Seed:         p.Seed,
			Horizon:      float64(o.Arrivals) / rate,
			Tenants:      tenants,
			Policy:       o.Policy,
			Discipline:   o.Discipline,
			AgingSeconds: o.AgingSeconds,
			Quantum:      p.Quantum,
			Parallel:     p.Parallel,
			Workers:      p.Workers,
			EpochTicks:   p.EpochTicks,
		}
		for _, arm := range sys.adaptArms(adapt.DefaultConfig()) {
			if err := arm.apply(); err != nil {
				return nil, err
			}
			r, err := serve.Run(sys.Engine, groups, cfg)
			if err != nil {
				return nil, fmt.Errorf("serve %s at %.1fx: %w", arm.name, load, err)
			}
			point.Arms = append(point.Arms, ServeArmReport{Name: arm.name, Report: r})
		}
		sys.DisableAdaptive()
		out.Loads = append(out.Loads, point)
	}
	return out, nil
}

// PrintServe renders the capacity sweep: per load point, each arm's
// aggregate latency percentiles (in simulated µs), throughput, drop
// counts and Jain fairness over tenant slowdowns.
func PrintServe(w io.Writer, r *ServeResult) {
	fmt.Fprintf(w, "FigServe — open-loop serving over %d dispatch groups, capacity ≈ %.0f q/s\n",
		r.Groups, r.CapacityQPS)
	fmt.Fprintln(w, "(latencies in simulated µs; Jain over per-tenant slowdowns, 1.0 = perfectly fair)")
	us := func(ticks int64) float64 { return float64(ticks) * r.SecondsPerTick * 1e6 }
	for _, ld := range r.Loads {
		fmt.Fprintf(w, "\nload %.1fx (%.0f q/s offered)\n", ld.Load, ld.RateQPS)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "arm\tcompleted\tdropped\tdl\tshed\tbrk\tq/s\tp50 µs\tp99 µs\tp999 µs\tJain")
		for _, arm := range ld.Arms {
			rep := arm.Report
			var dl, sh, brk int64
			for _, tr := range rep.Tenants {
				dl += tr.DropDeadline
				sh += tr.DropShed
				brk += tr.DropBreaker
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.1f\t%.1f\t%.1f\t%.3f\n",
				arm.Name, rep.Completed, rep.Dropped, dl, sh, brk, rep.QPS,
				us(rep.P50), us(rep.P99), us(rep.P999), rep.Jain)
		}
		tw.Flush()
	}
	fmt.Fprintln(w)
}
