// Package sql implements the SQL subset the paper's benchmarks are
// written in (Figures 2 and 3): CREATE COLUMN TABLE with INT columns
// and primary keys, INSERT of literal rows, and SELECT with COUNT(*),
// MAX(col), WHERE range and equi-join predicates, and GROUP BY. The
// planner lowers statements onto the engine's operators with the
// cache-usage identifiers of Section V-C attached.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
	tokParam // the "?" placeholder of Query 1
)

// token is one lexeme with its source position (1-based byte offset).
type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int
}

// keywords of the accepted subset.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "AND": true, "AS": true, "COUNT": true, "MAX": true,
	"MIN": true, "SUM": true, "CREATE": true, "COLUMN": true,
	"TABLE": true, "INT": true, "INTEGER": true, "PRIMARY": true,
	"KEY": true, "INSERT": true, "INTO": true, "VALUES": true,
	"NOT": true, "NULL": true,
}

// lexer splits SQL text into tokens.
type lexer struct {
	src string
	pos int
}

// isSymbolStart reports characters that begin operator/punctuation
// tokens.
func isSymbolStart(c byte) bool {
	return strings.IndexByte("(),*;=<>.", c) >= 0
}

// lex tokenises the whole input.
func lex(src string) ([]token, error) {
	lx := lexer{src: src}
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			// Line comment, as in the paper's Figure 2 listings.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: lx.pos + 1}, nil

scan:
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '?':
		lx.pos++
		return token{kind: tokParam, text: "?", pos: start + 1}, nil

	case c == '\'':
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '\'' {
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, fmt.Errorf("sql: unterminated string at offset %d", start+1)
		}
		lx.pos++
		return token{kind: tokString, text: lx.src[start+1 : lx.pos-1], pos: start + 1}, nil

	case c >= '0' && c <= '9' || c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9':
		lx.pos++
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			// Accept digits, a decimal exponent form like 1e9, and _.
			if d >= '0' && d <= '9' || d == '_' ||
				(d == 'e' || d == 'E') && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
				lx.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start + 1}, nil

	case isIdentStart(rune(c)):
		lx.pos++
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		if up := strings.ToUpper(word); keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start + 1}, nil
		}
		return token{kind: tokIdent, text: word, pos: start + 1}, nil

	case isSymbolStart(c):
		lx.pos++
		text := string(c)
		// Two-character comparators.
		if lx.pos < len(lx.src) {
			two := text + string(lx.src[lx.pos])
			switch two {
			case ">=", "<=", "<>":
				lx.pos++
				text = two
			}
		}
		return token{kind: tokSymbol, text: text, pos: start + 1}, nil

	default:
		return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start+1)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
