package sql

import (
	"math/rand"
	"strings"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT COUNT(*) FROM A WHERE A.X > ? -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "COUNT", "(", "*", ")", "FROM", "A", "WHERE", "A", ".", "X", ">", "?", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != tokKeyword || kinds[6] != tokIdent || kinds[12] != tokParam {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestLexNumbersAndErrors(t *testing.T) {
	toks, err := lex("42 1e6 1_000_000 -5")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // 4 numbers + EOF
		t.Fatalf("tokens = %v", toks)
	}
	for i, want := range []string{"42", "1e6", "1_000_000", "-5"} {
		if toks[i].kind != tokNumber || toks[i].text != want {
			t.Errorf("token %d = %+v", i, toks[i])
		}
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParsePaperQueries(t *testing.T) {
	// The exact statements of Figure 2.
	q1, err := Parse("SELECT COUNT(*) FROM A WHERE A.X > ?;")
	if err != nil {
		t.Fatal(err)
	}
	sel := q1.(*Select)
	if len(sel.Items) != 1 || sel.Items[0].Func != AggCountStar {
		t.Errorf("Q1 items = %+v", sel.Items)
	}
	if !sel.Where[0].IsParam {
		t.Error("Q1 predicate should be parameterised")
	}

	q2, err := Parse("SELECT MAX(B.V), B.G FROM B GROUP BY B.G;")
	if err != nil {
		t.Fatal(err)
	}
	sel = q2.(*Select)
	if len(sel.Items) != 2 || sel.Items[0].Func != AggMax {
		t.Errorf("Q2 items = %+v", sel.Items)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Column != "G" {
		t.Errorf("Q2 group by = %+v", sel.GroupBy)
	}

	q3, err := Parse("SELECT COUNT(*) FROM R, S WHERE R.P = S.F;")
	if err != nil {
		t.Fatal(err)
	}
	sel = q3.(*Select)
	if len(sel.From) != 2 || !sel.Where[0].IsJoin() {
		t.Errorf("Q3 = %+v", sel)
	}
}

func TestParsePaperSchemata(t *testing.T) {
	// The exact statements of Figure 3.
	for _, ddl := range []string{
		"CREATE COLUMN TABLE A( X INT );",
		"CREATE COLUMN TABLE B( V INT, G INT );",
		"CREATE COLUMN TABLE R( P INT, PRIMARY KEY(P));",
		"CREATE COLUMN TABLE S( F INT );",
	} {
		stmt, err := Parse(ddl)
		if err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
		if _, ok := stmt.(*CreateTable); !ok {
			t.Fatalf("%s parsed to %T", ddl, stmt)
		}
	}
	ct, _ := Parse("CREATE COLUMN TABLE R( P INT, PRIMARY KEY(P));")
	if !ct.(*CreateTable).Columns[0].PrimaryKey {
		t.Error("table-level PRIMARY KEY not applied")
	}
	ct, _ = Parse("CREATE COLUMN TABLE T( K INT PRIMARY KEY, V INT NOT NULL );")
	cols := ct.(*CreateTable).Columns
	if !cols[0].PrimaryKey || cols[1].PrimaryKey {
		t.Error("inline PRIMARY KEY misparsed")
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 2), (3, 4);")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if len(ins.Rows) != 2 || ins.Rows[1][1] != 4 {
		t.Errorf("rows = %v", ins.Rows)
	}
	if _, err := Parse("INSERT INTO t VALUES (1), (2, 3);"); err == nil {
		t.Error("mixed arity accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE FROM t",
		"SELECT FROM t",
		"SELECT COUNT(*)",
		"SELECT COUNT(*) FROM a, b, c",
		"SELECT COUNT(*) FROM t WHERE",
		"SELECT COUNT(*) FROM t WHERE x !! 3",
		"CREATE TABLE t (x INT)", // missing COLUMN
		"CREATE COLUMN TABLE t ()",
		"CREATE COLUMN TABLE t (x TEXT)", // unsupported type
		"CREATE COLUMN TABLE t (x INT, PRIMARY KEY(y))",
		"SELECT COUNT(*) FROM t WHERE x > 1 extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func newTestCtx(t *testing.T) *exec.Ctx {
	t.Helper()
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 2
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &exec.Ctx{M: m, Core: 0}
}

func TestCatalogDDLAndInsert(t *testing.T) {
	cat := NewCatalog(memory.NewSpace())
	if err := cat.Exec("CREATE COLUMN TABLE t (x INT, y INT)"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Exec("CREATE COLUMN TABLE t (x INT)"); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := cat.Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Exec("INSERT INTO nope VALUES (1)"); err == nil {
		t.Error("insert into missing table accepted")
	}
	if err := cat.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := cat.Exec("SELECT COUNT(*) FROM t WHERE x > 1"); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	tab, meta, err := cat.Table("T") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 || meta.PrimaryKey != "" {
		t.Errorf("table = %d rows, pk %q", tab.Rows(), meta.PrimaryKey)
	}
	// Further INSERT after build is rejected.
	if err := cat.Exec("INSERT INTO t VALUES (4, 40)"); err == nil {
		t.Error("insert after build accepted")
	}
}

func TestScanCountEndToEnd(t *testing.T) {
	cat := NewCatalog(memory.NewSpace())
	if err := cat.Exec("CREATE COLUMN TABLE A (X INT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO A VALUES ")
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		sb.WriteString(itoa(int64(i)))
		sb.WriteString(")")
	}
	if err := cat.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanQuery(cat, "SELECT COUNT(*) FROM A WHERE X > 60")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != PlanScanCount {
		t.Fatalf("kind = %v", plan.Kind)
	}
	ctx := newTestCtx(t)
	if err := plan.Execute(ctx, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if plan.Count() != 39 { // 61..99
		t.Errorf("Count = %d, want 39", plan.Count())
	}

	// All comparison operators.
	for _, tc := range []struct {
		sql  string
		want int64
	}{
		{"SELECT COUNT(*) FROM A WHERE X >= 60", 40},
		{"SELECT COUNT(*) FROM A WHERE X < 10", 10},
		{"SELECT COUNT(*) FROM A WHERE X <= 10", 11},
		{"SELECT COUNT(*) FROM A WHERE X = 42", 1},
		{"SELECT COUNT(*) FROM A WHERE X = 1000", 0},
	} {
		p, err := PlanQuery(cat, tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if err := p.Execute(ctx, rand.New(rand.NewSource(1))); err != nil {
			t.Fatal(err)
		}
		if p.Count() != tc.want {
			t.Errorf("%s = %d, want %d", tc.sql, p.Count(), tc.want)
		}
	}
}

func TestGroupAggEndToEnd(t *testing.T) {
	cat := NewCatalog(memory.NewSpace())
	if err := cat.Exec("CREATE COLUMN TABLE B (V INT, G INT)"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Exec("INSERT INTO B VALUES (5, 1), (9, 1), (2, 2), (7, 2), (7, 3)"); err != nil {
		t.Fatal(err)
	}
	ctx := newTestCtx(t)

	plan, err := PlanQuery(cat, "SELECT MAX(B.V), B.G FROM B GROUP BY B.G")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != PlanGroupAgg {
		t.Fatalf("kind = %v", plan.Kind)
	}
	if err := plan.Execute(ctx, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{1: 9, 2: 7, 3: 7}
	got := plan.Groups()
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("MAX group %d = %d, want %d", k, got[k], v)
		}
	}

	// MIN and SUM.
	pMin, err := PlanQuery(cat, "SELECT MIN(V), G FROM B GROUP BY G")
	if err != nil {
		t.Fatal(err)
	}
	_ = pMin.Execute(ctx, rand.New(rand.NewSource(1)))
	if g := pMin.Groups(); g[1] != 5 || g[2] != 2 || g[3] != 7 {
		t.Errorf("MIN groups = %v", g)
	}
	pSum, err := PlanQuery(cat, "SELECT SUM(V), G FROM B GROUP BY G")
	if err != nil {
		t.Fatal(err)
	}
	_ = pSum.Execute(ctx, rand.New(rand.NewSource(1)))
	if g := pSum.Groups(); g[1] != 14 || g[2] != 9 || g[3] != 7 {
		t.Errorf("SUM groups = %v", g)
	}
}

func TestJoinCountEndToEnd(t *testing.T) {
	cat := NewCatalog(memory.NewSpace())
	if err := cat.Exec("CREATE COLUMN TABLE R (P INT, PRIMARY KEY(P))"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Exec("CREATE COLUMN TABLE S (F INT)"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Exec("INSERT INTO R VALUES (1), (2), (3), (4)"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Exec("INSERT INTO S VALUES (1), (1), (2), (4), (4), (4)"); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanQuery(cat, "SELECT COUNT(*) FROM R, S WHERE R.P = S.F")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != PlanJoinCount {
		t.Fatalf("kind = %v", plan.Kind)
	}
	if plan.CUID().String() != "depends" {
		t.Errorf("join CUID = %v", plan.CUID())
	}
	ctx := newTestCtx(t)
	if err := plan.Execute(ctx, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if plan.Count() != 6 {
		t.Errorf("join count = %d, want 6", plan.Count())
	}
}

func TestBulkUniform(t *testing.T) {
	cat := NewCatalog(memory.NewSpace())
	if err := cat.Exec("CREATE COLUMN TABLE A (X INT)"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := cat.BulkUniform(rng, "A", 10_000, map[string][2]int64{"X": {1, 1000}}); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanQuery(cat, "SELECT COUNT(*) FROM A WHERE X >= 1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newTestCtx(t)
	if err := plan.Execute(ctx, rng); err != nil {
		t.Fatal(err)
	}
	if plan.Count() != 10_000 {
		t.Errorf("count = %d, want all rows", plan.Count())
	}
	// PK domain must match row count.
	if err := cat.Exec("CREATE COLUMN TABLE R (P INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if err := cat.BulkUniform(rng, "R", 100, map[string][2]int64{"P": {1, 50}}); err == nil {
		t.Error("PK domain mismatch accepted")
	}
	if err := cat.BulkUniform(rng, "R", 100, map[string][2]int64{"P": {1, 100}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.BulkUniform(rng, "R", 100, map[string][2]int64{"P": {1, 100}}); err == nil {
		t.Error("double load accepted")
	}
	if err := cat.BulkUniform(rng, "R2", 1, nil); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestPlannerRejections(t *testing.T) {
	cat := NewCatalog(memory.NewSpace())
	_ = cat.Exec("CREATE COLUMN TABLE t (x INT, y INT)")
	_ = cat.Exec("CREATE COLUMN TABLE u (z INT)")
	_ = cat.Exec("INSERT INTO t VALUES (1, 2)")
	_ = cat.Exec("INSERT INTO u VALUES (3)")
	bad := []string{
		"SELECT MAX(x) FROM t",                         // aggregate without GROUP BY
		"SELECT COUNT(*) FROM t",                       // no predicate
		"SELECT COUNT(*) FROM t WHERE x > 1 AND y > 2", // multiple predicates
		"SELECT COUNT(*) FROM t WHERE x <> 1",          // unsupported scan op
		"SELECT MAX(x), y FROM t GROUP BY x",           // stray column
		"SELECT COUNT(*), x FROM t GROUP BY x",         // COUNT with GROUP BY
		"SELECT MAX(x) FROM t GROUP BY x, y",           // two group columns
		"SELECT MAX(x) FROM t WHERE y > 1 GROUP BY x",  // filtered aggregation
		"SELECT COUNT(*) FROM t, u WHERE x > 1",        // join without join pred
		"SELECT COUNT(*) FROM t, u WHERE x = y",        // both columns in t
		"SELECT COUNT(*) FROM t, u WHERE x = z",        // no PK on either side
		"SELECT COUNT(*) FROM t WHERE q > 1",           // unknown column
		"SELECT COUNT(*) FROM nope WHERE x > 1",        // unknown table
	}
	for _, src := range bad {
		if _, err := PlanQuery(cat, src); err == nil {
			t.Errorf("planned: %s", src)
		}
	}
	if _, err := PlanQuery(cat, "CREATE COLUMN TABLE z (a INT)"); err == nil {
		t.Error("DDL planned as query")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := NewCatalog(memory.NewSpace())
	_ = cat.Exec("CREATE COLUMN TABLE a (x INT, PRIMARY KEY(x))")
	_ = cat.Exec("CREATE COLUMN TABLE b (x INT)")
	_ = cat.Exec("INSERT INTO a VALUES (1)")
	_ = cat.Exec("INSERT INTO b VALUES (1)")
	if _, err := PlanQuery(cat, "SELECT COUNT(*) FROM a, b WHERE x = x"); err == nil {
		t.Error("ambiguous column accepted")
	}
	if _, err := PlanQuery(cat, "SELECT COUNT(*) FROM a, b WHERE a.x = b.x"); err != nil {
		t.Errorf("qualified join rejected: %v", err)
	}
}

// itoa avoids pulling strconv into the test imports for one literal
// builder.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
