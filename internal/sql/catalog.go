package sql

import (
	"fmt"
	"math/rand"
	"strings"

	"cachepart/internal/column"
	"cachepart/internal/memory"
	"cachepart/internal/workload"
)

// Catalog owns the tables created through DDL and their storage.
// Names are case-insensitive, as in SQL.
type Catalog struct {
	space  *memory.Space
	tables map[string]*TableMeta
}

// TableMeta is one catalogued table: definition, staged rows (from
// INSERT) and the built columnar storage.
type TableMeta struct {
	Def        *CreateTable
	PrimaryKey string // column name, empty if none

	staged [][]int64
	built  *column.Table
}

// NewCatalog creates an empty catalog over a simulated address space.
func NewCatalog(space *memory.Space) *Catalog {
	return &Catalog{space: space, tables: make(map[string]*TableMeta)}
}

func key(name string) string { return strings.ToLower(name) }

// Exec executes a DDL or INSERT statement given as SQL text.
func (c *Catalog) Exec(src string) error {
	stmt, err := Parse(src)
	if err != nil {
		return err
	}
	switch s := stmt.(type) {
	case *CreateTable:
		return c.Create(s)
	case *Insert:
		return c.Insert(s)
	default:
		return fmt.Errorf("sql: Exec expects DDL or INSERT; use Plan for queries")
	}
}

// Create registers a table.
func (c *Catalog) Create(ct *CreateTable) error {
	if _, ok := c.tables[key(ct.Name)]; ok {
		return fmt.Errorf("sql: table %q exists", ct.Name)
	}
	meta := &TableMeta{Def: ct}
	for _, col := range ct.Columns {
		if col.PrimaryKey {
			if meta.PrimaryKey != "" {
				return fmt.Errorf("sql: table %q has multiple primary keys", ct.Name)
			}
			meta.PrimaryKey = col.Name
		}
	}
	c.tables[key(ct.Name)] = meta
	return nil
}

// Insert stages literal rows; storage is built lazily on first use.
func (c *Catalog) Insert(ins *Insert) error {
	meta, ok := c.tables[key(ins.Table)]
	if !ok {
		return fmt.Errorf("sql: no table %q", ins.Table)
	}
	if meta.built != nil {
		return fmt.Errorf("sql: table %q already built; INSERT before first query", ins.Table)
	}
	for _, row := range ins.Rows {
		if len(row) != len(meta.Def.Columns) {
			return fmt.Errorf("sql: INSERT arity %d, table %q has %d columns",
				len(row), ins.Table, len(meta.Def.Columns))
		}
	}
	meta.staged = append(meta.staged, ins.Rows...)
	return nil
}

// BulkUniform generates rows with uniformly distributed column values,
// the loading path for the paper's billion-row data sets. domains maps
// column name to its inclusive [lo, hi] range; a primary-key column
// instead receives the distinct values lo..lo+rows-1 in random order.
func (c *Catalog) BulkUniform(rng *rand.Rand, table string, rows int, domains map[string][2]int64) error {
	meta, ok := c.tables[key(table)]
	if !ok {
		return fmt.Errorf("sql: no table %q", table)
	}
	if meta.built != nil || len(meta.staged) > 0 {
		return fmt.Errorf("sql: table %q already has data", table)
	}
	t := column.NewTable(meta.Def.Name)
	for _, def := range meta.Def.Columns {
		dom, ok := domains[def.Name]
		if !ok {
			return fmt.Errorf("sql: no domain for column %q", def.Name)
		}
		var col *column.Column
		var err error
		if def.PrimaryKey {
			span := dom[1] - dom[0] + 1
			if span != int64(rows) {
				return fmt.Errorf("sql: primary key %q domain of %d values for %d rows",
					def.Name, span, rows)
			}
			vals, derr := workload.DistinctInts(rng, rows, dom[0], dom[1])
			if derr != nil {
				return derr
			}
			col, err = column.EncodeDense(c.space, meta.Def.Name+"."+def.Name,
				vals, dom[0], dom[1], column.DefaultEntrySize)
		} else {
			col, err = workload.EncodeUniformDense(c.space, meta.Def.Name+"."+def.Name,
				rng, rows, dom[0], dom[1])
		}
		if err != nil {
			return err
		}
		col.Name = def.Name
		if err := t.AddColumn(col); err != nil {
			return err
		}
	}
	meta.built = t
	return nil
}

// Table returns the built storage, building it from staged INSERTs on
// first use.
func (c *Catalog) Table(name string) (*column.Table, *TableMeta, error) {
	meta, ok := c.tables[key(name)]
	if !ok {
		return nil, nil, fmt.Errorf("sql: no table %q", name)
	}
	if meta.built == nil {
		if len(meta.staged) == 0 {
			return nil, nil, fmt.Errorf("sql: table %q is empty", name)
		}
		t := column.NewTable(meta.Def.Name)
		for i, def := range meta.Def.Columns {
			vals := make([]int64, len(meta.staged))
			for r, row := range meta.staged {
				vals[r] = row[i]
			}
			col, err := column.Encode(c.space, meta.Def.Name+"."+def.Name,
				vals, column.DefaultEntrySize)
			if err != nil {
				return nil, nil, err
			}
			col.Name = def.Name
			if err := t.AddColumn(col); err != nil {
				return nil, nil, err
			}
		}
		meta.built = t
		meta.staged = nil
	}
	return meta.built, meta, nil
}

// resolve finds the table and column a reference names within the
// FROM list.
func (c *Catalog) resolve(ref ColRef, from []string) (string, *column.Column, error) {
	if ref.Table != "" {
		for _, f := range from {
			if strings.EqualFold(f, ref.Table) {
				t, _, err := c.Table(f)
				if err != nil {
					return "", nil, err
				}
				col, err := findColumn(t, ref.Column)
				return f, col, err
			}
		}
		return "", nil, fmt.Errorf("sql: table %q not in FROM", ref.Table)
	}
	var foundTable string
	var found *column.Column
	for _, f := range from {
		t, _, err := c.Table(f)
		if err != nil {
			return "", nil, err
		}
		if col, err := findColumn(t, ref.Column); err == nil {
			if found != nil {
				return "", nil, fmt.Errorf("sql: column %q is ambiguous", ref.Column)
			}
			foundTable, found = f, col
		}
	}
	if found == nil {
		return "", nil, fmt.Errorf("sql: no column %q", ref.Column)
	}
	return foundTable, found, nil
}

// findColumn looks a column up case-insensitively.
func findColumn(t *column.Table, name string) (*column.Column, error) {
	for _, col := range t.Columns() {
		if strings.EqualFold(col.Name, name) {
			return col, nil
		}
	}
	return nil, fmt.Errorf("sql: table %q has no column %q", t.Name, name)
}
