package sql

import "fmt"

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column of a CREATE COLUMN TABLE statement. Only
// INT columns exist in the paper's schemata (Figure 3).
type ColumnDef struct {
	Name       string
	PrimaryKey bool
}

// CreateTable is `CREATE COLUMN TABLE name ( col INT [, ...]
// [, PRIMARY KEY(col)] )`.
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

// Insert is `INSERT INTO name VALUES (v, ...), (v, ...) ...`, for
// small test data; bulk loads use the catalog API.
type Insert struct {
	Table string
	Rows  [][]int64
}

func (*Insert) stmt() {}

// AggFunc identifies an aggregate in the select list.
type AggFunc int

// Supported aggregates.
const (
	AggNone AggFunc = iota // plain column reference (must be grouped)
	AggCountStar
	AggMax
	AggMin
	AggSum
)

// String names the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCountStar:
		return "COUNT(*)"
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggSum:
		return "SUM"
	default:
		return "column"
	}
}

// SelectItem is one output expression.
type SelectItem struct {
	Func   AggFunc
	Column ColRef // empty for COUNT(*)
}

// ColRef names a column, optionally table-qualified (R.P).
type ColRef struct {
	Table  string // may be empty
	Column string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// CompareOp is a comparison operator.
type CompareOp string

// Predicate is one conjunct of the WHERE clause: either a column
// compared to a literal/parameter, or a column equality join.
type Predicate struct {
	Left ColRef
	Op   CompareOp
	// Exactly one of the following is set.
	Right   *ColRef // join predicate
	Literal *int64
	IsParam bool // the "?" of Query 1
}

// IsJoin reports a column-to-column equality.
func (p Predicate) IsJoin() bool { return p.Right != nil }

// Select is the accepted SELECT form: aggregates over one or two
// tables with conjunctive predicates and an optional GROUP BY.
type Select struct {
	Items   []SelectItem
	From    []string
	Where   []Predicate
	GroupBy []ColRef
}

func (*Select) stmt() {}

// errAt builds a position-annotated parse error.
func errAt(t token, format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}
