package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("CREATE"):
		stmt, err = p.parseCreate()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	default:
		return nil, errAt(p.peek(), "expected SELECT, CREATE or INSERT")
	}
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if t := p.peek(); t.kind != tokEOF {
		return nil, errAt(t, "trailing input %q", t.text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errAt(p.peek(), "expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return errAt(p.peek(), "expected %q", s)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", errAt(t, "expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) expectNumber() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, errAt(t, "expected number, got %q", t.text)
	}
	p.advance()
	return parseNumber(t)
}

// parseNumber handles plain integers, underscores and the 1e9 form.
func parseNumber(t token) (int64, error) {
	s := strings.ReplaceAll(t.text, "_", "")
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		mant, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return 0, errAt(t, "bad number %q", t.text)
		}
		exp, err := strconv.ParseInt(s[i+1:], 10, 64)
		if err != nil || exp < 0 || exp > 18 {
			return 0, errAt(t, "bad exponent in %q", t.text)
		}
		for ; exp > 0; exp-- {
			mant *= 10
		}
		return mant, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, errAt(t, "bad number %q", t.text)
	}
	return v, nil
}

// parseCreate parses `CREATE COLUMN TABLE name ( ... )`.
func (p *parser) parseCreate() (*CreateTable, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("COLUMN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	pkOf := func(col string) error {
		for i := range ct.Columns {
			if strings.EqualFold(ct.Columns[i].Name, col) {
				ct.Columns[i].PrimaryKey = true
				return nil
			}
		}
		return fmt.Errorf("sql: PRIMARY KEY names unknown column %q", col)
	}
	for {
		if p.acceptKeyword("PRIMARY") {
			// Table-level `PRIMARY KEY(col)`, as in Figure 3.
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			if err := pkOf(col); err != nil {
				return nil, err
			}
		} else {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("INT") && !p.acceptKeyword("INTEGER") {
				return nil, errAt(p.peek(), "only INT columns are supported")
			}
			def := ColumnDef{Name: col}
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				def.PrimaryKey = true
			}
			if p.acceptKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
			}
			ct.Columns = append(ct.Columns, def)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("sql: table %q has no columns", name)
	}
	return ct, nil
}

// parseInsert parses `INSERT INTO t VALUES (...) [, (...)]`.
func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []int64
		for {
			v, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if len(ins.Rows) > 0 && len(row) != len(ins.Rows[0]) {
			return nil, fmt.Errorf("sql: VALUES rows of differing arity")
		}
		ins.Rows = append(ins.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return ins, nil
}

// parseSelect parses the accepted SELECT form.
func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, name)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if len(sel.From) > 2 {
		return nil, fmt.Errorf("sql: at most two tables in FROM")
	}
	if p.acceptKeyword("WHERE") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, pred)
			if p.acceptKeyword("AND") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokKeyword {
		var fn AggFunc
		switch t.text {
		case "COUNT":
			fn = AggCountStar
		case "MAX":
			fn = AggMax
		case "MIN":
			fn = AggMin
		case "SUM":
			fn = AggSum
		default:
			return SelectItem{}, errAt(t, "unexpected keyword %q in select list", t.text)
		}
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return SelectItem{}, err
		}
		if fn == AggCountStar {
			if err := p.expectSymbol("*"); err != nil {
				return SelectItem{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Func: AggCountStar}, nil
		}
		col, err := p.parseColRef()
		if err != nil {
			return SelectItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Func: fn, Column: col}, nil
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Func: AggNone, Column: col}, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSymbol(".") {
		second, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: second}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseColRef()
	if err != nil {
		return Predicate{}, err
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return Predicate{}, errAt(t, "expected comparison operator")
	}
	switch t.text {
	case "=", ">", "<", ">=", "<=", "<>":
	default:
		return Predicate{}, errAt(t, "unsupported operator %q", t.text)
	}
	p.advance()
	pred := Predicate{Left: left, Op: CompareOp(t.text)}
	rt := p.peek()
	switch {
	case rt.kind == tokParam:
		p.advance()
		pred.IsParam = true
	case rt.kind == tokNumber:
		v, err := p.expectNumber()
		if err != nil {
			return Predicate{}, err
		}
		pred.Literal = &v
	case rt.kind == tokIdent:
		right, err := p.parseColRef()
		if err != nil {
			return Predicate{}, err
		}
		pred.Right = &right
	default:
		return Predicate{}, errAt(rt, "expected literal, ? or column")
	}
	return pred, nil
}
