package sql

import (
	"fmt"
	"math/rand"
	"strings"

	"cachepart/internal/column"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// PlanKind identifies the shape the planner lowered a SELECT to.
type PlanKind int

// Supported plan shapes — the paper's three operator classes.
const (
	// PlanScanCount is Query 1's shape: COUNT(*) with a range
	// predicate, a polluting column scan.
	PlanScanCount PlanKind = iota
	// PlanGroupAgg is Query 2's shape: aggregate GROUP BY column, a
	// cache-sensitive hash aggregation.
	PlanGroupAgg
	// PlanJoinCount is Query 3's shape: COUNT(*) over a key join, the
	// bit-vector foreign-key join whose class depends on the data.
	PlanJoinCount
)

// String names the plan shape.
func (k PlanKind) String() string {
	switch k {
	case PlanScanCount:
		return "scan-count"
	case PlanGroupAgg:
		return "group-aggregate"
	case PlanJoinCount:
		return "join-count"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Plan is an executable query plan. It implements engine.Query, so
// planned statements co-run under the engine's scheduler and cache
// partitioning like any built-in workload, and it supports synchronous
// execution for direct result retrieval.
type Plan struct {
	Kind PlanKind
	stmt *Select

	space *memory.Space

	// scan-count state.
	scanCol   *column.Column
	scanOp    CompareOp
	scanLit   *int64 // nil for "?"
	paramSpan int64  // domain size for "?" redraws

	// group-aggregate state.
	aggGroup *column.Column
	aggValue *column.Column
	aggKind  exec.AggKind
	locals   []*exec.AggTable
	global   *exec.AggTable

	// join-count state.
	pkCol *column.Column
	fkCol *column.Column
	bv    *exec.BitVector

	// results of the last completed synchronous execution.
	count  int64
	groups map[int64]int64
}

// PlanQuery parses and plans a SELECT statement against the catalog.
func PlanQuery(cat *Catalog, src string) (*Plan, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: not a SELECT statement")
	}
	return PlanSelect(cat, sel)
}

// PlanSelect lowers a parsed SELECT.
func PlanSelect(cat *Catalog, sel *Select) (*Plan, error) {
	p := &Plan{stmt: sel, space: cat.space}
	switch {
	case len(sel.From) == 2:
		return p.planJoin(cat, sel)
	case len(sel.GroupBy) > 0:
		return p.planGroupAgg(cat, sel)
	default:
		return p.planScanCount(cat, sel)
	}
}

// planScanCount recognises Query 1's shape.
func (p *Plan) planScanCount(cat *Catalog, sel *Select) (*Plan, error) {
	if len(sel.Items) != 1 || sel.Items[0].Func != AggCountStar {
		return nil, fmt.Errorf("sql: ungrouped single-table SELECT must be COUNT(*)")
	}
	if len(sel.Where) != 1 {
		return nil, fmt.Errorf("sql: scan plan needs exactly one predicate")
	}
	pred := sel.Where[0]
	if pred.IsJoin() {
		return nil, fmt.Errorf("sql: join predicate without a second table")
	}
	_, col, err := cat.resolve(pred.Left, sel.From)
	if err != nil {
		return nil, err
	}
	switch pred.Op {
	case ">", ">=", "<", "<=", "=":
	default:
		return nil, fmt.Errorf("sql: operator %q not supported in scans", pred.Op)
	}
	p.Kind = PlanScanCount
	p.scanCol = col
	p.scanOp = pred.Op
	p.scanLit = pred.Literal
	p.paramSpan = int64(col.Dict.Len())
	return p, nil
}

// planGroupAgg recognises Query 2's shape.
func (p *Plan) planGroupAgg(cat *Catalog, sel *Select) (*Plan, error) {
	if len(sel.GroupBy) != 1 {
		return nil, fmt.Errorf("sql: exactly one GROUP BY column is supported")
	}
	if len(sel.Where) != 0 {
		return nil, fmt.Errorf("sql: WHERE with GROUP BY is not supported")
	}
	_, gcol, err := cat.resolve(sel.GroupBy[0], sel.From)
	if err != nil {
		return nil, err
	}
	var agg *SelectItem
	for i := range sel.Items {
		it := &sel.Items[i]
		switch it.Func {
		case AggNone:
			// A bare column must be the grouping column.
			if !strings.EqualFold(it.Column.Column, sel.GroupBy[0].Column) {
				return nil, fmt.Errorf("sql: column %v not in GROUP BY", it.Column)
			}
		case AggMax, AggMin, AggSum:
			if agg != nil {
				return nil, fmt.Errorf("sql: one aggregate per query is supported")
			}
			agg = it
		default:
			return nil, fmt.Errorf("sql: %v with GROUP BY is not supported", it.Func)
		}
	}
	if agg == nil {
		return nil, fmt.Errorf("sql: grouped query needs an aggregate")
	}
	_, vcol, err := cat.resolve(agg.Column, sel.From)
	if err != nil {
		return nil, err
	}
	p.Kind = PlanGroupAgg
	p.aggGroup = gcol
	p.aggValue = vcol
	switch agg.Func {
	case AggMax:
		p.aggKind = exec.AggMax
	case AggMin:
		p.aggKind = exec.AggMin
	case AggSum:
		p.aggKind = exec.AggSum
	}
	return p, nil
}

// planJoin recognises Query 3's shape.
func (p *Plan) planJoin(cat *Catalog, sel *Select) (*Plan, error) {
	if len(sel.Items) != 1 || sel.Items[0].Func != AggCountStar {
		return nil, fmt.Errorf("sql: two-table SELECT must be COUNT(*)")
	}
	if len(sel.Where) != 1 || !sel.Where[0].IsJoin() || sel.Where[0].Op != "=" {
		return nil, fmt.Errorf("sql: two-table SELECT needs one equi-join predicate")
	}
	pred := sel.Where[0]
	lt, lcol, err := cat.resolve(pred.Left, sel.From)
	if err != nil {
		return nil, err
	}
	rt, rcol, err := cat.resolve(*pred.Right, sel.From)
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(lt, rt) {
		return nil, fmt.Errorf("sql: join predicate must span both tables")
	}
	// The primary-key side builds the bit vector.
	_, lmeta, err := cat.Table(lt)
	if err != nil {
		return nil, err
	}
	_, rmeta, err := cat.Table(rt)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.EqualFold(lmeta.PrimaryKey, lcol.Name):
		p.pkCol, p.fkCol = lcol, rcol
	case strings.EqualFold(rmeta.PrimaryKey, rcol.Name):
		p.pkCol, p.fkCol = rcol, lcol
	default:
		return nil, fmt.Errorf("sql: neither join column is a primary key")
	}
	p.Kind = PlanJoinCount
	bv, err := exec.NewBitVector(p.space, lt+"⋈"+rt+".bv",
		p.pkCol.Dict.Value(0), uint64(p.pkCol.Dict.Len()))
	if err != nil {
		return nil, err
	}
	p.bv = bv
	return p, nil
}

// Name implements engine.Query.
func (p *Plan) Name() string { return p.Kind.String() }

// CUID reports the cache-usage class the planner annotates the plan's
// main operator with, following Section V-C.
func (p *Plan) CUID() core.CUID {
	switch p.Kind {
	case PlanScanCount:
		return core.Polluting
	case PlanJoinCount:
		return core.Depends
	default:
		return core.Sensitive
	}
}

// scanCodes derives the matching code range for the scan predicate.
func (p *Plan) scanCodes(rng *rand.Rand) (lo, hi uint32, ok bool) {
	dict := p.scanCol.Dict
	var bound int64
	if p.scanLit != nil {
		bound = *p.scanLit
	} else {
		// Redraw "?" uniformly from the domain, as Section III-B does
		// after every execution.
		bound = dict.Value(0) + rng.Int63n(int64(dict.Len()))
	}
	n := uint32(dict.Len())
	switch p.scanOp {
	case ">":
		return dict.LowerBound(bound + 1), n, true
	case ">=":
		return dict.LowerBound(bound), n, true
	case "<":
		return 0, dict.LowerBound(bound), true
	case "<=":
		return 0, dict.LowerBound(bound + 1), true
	case "=":
		code, found := dict.CodeOf(bound)
		if !found {
			return 0, 0, false
		}
		return code, code + 1, true
	}
	return 0, 0, false
}

// Plan implements engine.Query: one execution's phases.
func (p *Plan) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	switch p.Kind {
	case PlanScanCount:
		lo, hi, _ := p.scanCodes(rng)
		parts := engine.PartitionRows(p.scanCol.Rows(), cores)
		kernels := make([]exec.Kernel, 0, len(parts))
		for _, pr := range parts {
			k, err := exec.NewColumnScan(p.scanCol, pr[0], pr[1], 0)
			if err != nil {
				return nil, err
			}
			k.LoCode, k.HiCode = lo, hi
			kernels = append(kernels, k)
		}
		return []engine.Phase{{
			Name: "scan", CUID: core.Polluting, Kernels: kernels, CountRows: true,
		}}, nil

	case PlanGroupAgg:
		p.ensureTables(cores)
		p.global.Clear()
		parts := engine.PartitionRows(p.aggGroup.Rows(), cores)
		kernels := make([]exec.Kernel, 0, len(parts))
		merges := make([]exec.Kernel, 0, len(parts))
		for i, pr := range parts {
			p.locals[i].Clear()
			k, err := newAggKernel(p.aggGroup, p.aggValue, pr[0], pr[1], p.locals[i], p.aggKind)
			if err != nil {
				return nil, err
			}
			kernels = append(kernels, k)
			merges = append(merges, exec.NewAggMergeKind([]*exec.AggTable{p.locals[i]}, p.global, p.aggKind))
		}
		return []engine.Phase{
			{Name: "aggregate-local", CUID: core.Sensitive, Kernels: kernels, CountRows: true},
			{Name: "aggregate-merge", CUID: core.Sensitive, Kernels: merges},
		}, nil

	case PlanJoinCount:
		fp := core.Footprint{BitVectorBytes: p.bv.Bytes()}
		buildParts := engine.PartitionRows(p.pkCol.Rows(), cores)
		builds := make([]exec.Kernel, 0, len(buildParts))
		for _, pr := range buildParts {
			k, err := exec.NewJoinBuild(p.pkCol, pr[0], pr[1], p.bv)
			if err != nil {
				return nil, err
			}
			builds = append(builds, k)
		}
		probeParts := engine.PartitionRows(p.fkCol.Rows(), cores)
		probes := make([]exec.Kernel, 0, len(probeParts))
		for _, pr := range probeParts {
			k, err := exec.NewJoinProbe(p.fkCol, pr[0], pr[1], p.bv)
			if err != nil {
				return nil, err
			}
			probes = append(probes, k)
		}
		return []engine.Phase{
			{Name: "join-build", CUID: core.Depends, Footprint: fp, Kernels: builds, CountRows: true},
			{Name: "join-probe", CUID: core.Depends, Footprint: fp, Kernels: probes, CountRows: true},
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown plan kind %v", p.Kind)
}

// ensureTables sizes the aggregation hash tables once per worker
// count and reuses them across executions.
func (p *Plan) ensureTables(cores int) {
	groups := p.aggGroup.Dict.Len()
	if len(p.locals) != cores {
		p.locals = make([]*exec.AggTable, cores)
		for i := range p.locals {
			p.locals[i] = exec.NewAggTable(p.space, fmt.Sprintf("sql.agg.l%d", i), groups)
		}
	}
	if p.global == nil {
		p.global = exec.NewAggTable(p.space, "sql.agg.g", groups)
	}
}

// PrewarmRegions declares the plan's steady-state working set for the
// engine's prewarm hook: the value dictionary and hash tables of an
// aggregation, or a join's bit vector.
func (p *Plan) PrewarmRegions(cores int) []memory.Region {
	switch p.Kind {
	case PlanGroupAgg:
		p.ensureTables(cores)
		regions := []memory.Region{p.aggValue.Dict.Region()}
		for _, lt := range p.locals {
			regions = append(regions, lt.Region())
		}
		return append(regions, p.global.Region())
	case PlanJoinCount:
		return []memory.Region{p.bv.Region()}
	default:
		return nil
	}
}

// newAggKernel builds the local aggregation kernel with the plan's
// fold.
func newAggKernel(g, v *column.Column, from, to int, tab *exec.AggTable, kind exec.AggKind) (exec.Kernel, error) {
	return exec.NewAggLocalKind(g, v, from, to, tab, kind)
}

// Execute runs the plan synchronously to completion on the context's
// core and stores its result.
func (p *Plan) Execute(ctx *exec.Ctx, rng *rand.Rand) error {
	phases, err := p.Plan(1, rng)
	if err != nil {
		return err
	}
	if p.Kind == PlanJoinCount {
		p.bv.Clear()
	}
	for _, ph := range phases {
		for _, k := range ph.Kernels {
			exec.Drive(ctx, k, 4096)
		}
	}
	switch p.Kind {
	case PlanScanCount:
		p.count = 0
		for _, ph := range phases {
			for _, k := range ph.Kernels {
				p.count += k.(*exec.ColumnScan).Count
			}
		}
	case PlanJoinCount:
		p.count = 0
		for _, k := range phases[1].Kernels {
			p.count += k.(*exec.JoinProbe).Matches
		}
	case PlanGroupAgg:
		p.groups = make(map[int64]int64, p.global.Len())
		p.global.Each(func(code uint32, v int64) {
			p.groups[p.aggGroup.Dict.Value(code)] = v
		})
	}
	return nil
}

// Count returns the COUNT(*) result of the last Execute.
func (p *Plan) Count() int64 { return p.count }

// Groups returns the grouped aggregate of the last Execute, keyed by
// the decoded group value.
func (p *Plan) Groups() map[int64]int64 { return p.groups }
