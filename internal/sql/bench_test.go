package sql

import (
	"math/rand"
	"testing"

	"cachepart/internal/memory"
)

func BenchmarkParseSelect(b *testing.B) {
	const q = "SELECT MAX(B.V), B.G FROM B WHERE B.V > 100 GROUP BY B.G;"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanScan(b *testing.B) {
	cat := NewCatalog(memory.NewSpace())
	if err := cat.Exec("CREATE COLUMN TABLE A (X INT)"); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := cat.BulkUniform(rng, "A", 10_000, map[string][2]int64{"X": {1, 1000}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanQuery(cat, "SELECT COUNT(*) FROM A WHERE X > 500"); err != nil {
			b.Fatal(err)
		}
	}
}
