package memory

import "testing"

func TestNumColors(t *testing.T) {
	// 45056 sets (the paper machine's LLC) at 64 lines per page.
	if got := NumColors(45056); got != 704 {
		t.Errorf("NumColors = %d, want 704", got)
	}
	if got := NumColors(64); got != 1 {
		t.Errorf("NumColors(64) = %d, want 1", got)
	}
	if got := NumColors(16); got != 1 {
		t.Errorf("tiny cache colors = %d, want clamp to 1", got)
	}
}

func TestColorOf(t *testing.T) {
	if ColorOf(0, 8) != 0 || ColorOf(PageSize, 8) != 1 || ColorOf(8*PageSize, 8) != 0 {
		t.Error("color arithmetic broken")
	}
}

func TestAllocColoredRestrictsColors(t *testing.T) {
	s := NewSpace()
	colors := []int{2, 3}
	const numColors = 8
	r, err := s.AllocColored("c", 10*PageSize, colors, numColors)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 10*PageSize {
		t.Errorf("size = %d", r.Size())
	}
	for off := uint64(0); off < r.Size(); off += PageSize / 2 {
		c := ColorOf(r.Addr(off), numColors)
		if c != 2 && c != 3 {
			t.Fatalf("offset %d landed on color %d", off, c)
		}
	}
	// Logical contiguity within a page.
	if r.Addr(100)-r.Addr(0) != 100 {
		t.Error("within-page offsets not contiguous")
	}
}

func TestAllocColoredValidation(t *testing.T) {
	s := NewSpace()
	if _, err := s.AllocColored("c", 10, nil, 8); err == nil {
		t.Error("empty colors accepted")
	}
	if _, err := s.AllocColored("c", 10, []int{9}, 8); err == nil {
		t.Error("out-of-range color accepted")
	}
	if _, err := s.AllocColored("c", 10, []int{0}, 0); err == nil {
		t.Error("zero color count accepted")
	}
	r, err := s.AllocColored("c", 0, []int{0}, 4)
	if err != nil || r.Size() != PageSize {
		t.Errorf("zero-size alloc: %v, size %d", err, r.Size())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Addr should panic")
		}
	}()
	_ = r.Addr(PageSize)
}

func TestColorSlice(t *testing.T) {
	if got := ColorSlice(704, 0.10); len(got) != 70 {
		t.Errorf("10%% of 704 colors = %d", len(got))
	}
	if got := ColorSlice(8, 0); len(got) != 1 {
		t.Errorf("zero fraction = %d colors, want 1", len(got))
	}
	if got := ColorSlice(8, 2); len(got) != 8 {
		t.Errorf("clamped fraction = %d colors, want 8", len(got))
	}
}

func TestColoredDoesNotOverlapPlain(t *testing.T) {
	s := NewSpace()
	plain := s.Alloc("p", 4*PageSize)
	colored, err := s.AllocColored("c", 4*PageSize, []int{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < colored.Size(); off += PageSize {
		a := colored.Addr(off)
		if plain.Contains(a) {
			t.Fatalf("colored page at %d overlaps plain region", a)
		}
	}
}
