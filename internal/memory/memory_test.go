package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocPageAligned(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100)
	b := s.Alloc("b", PageSize+1)
	c := s.Alloc("c", 0)
	for _, r := range []Region{a, b, c} {
		if r.Base%PageSize != 0 {
			t.Errorf("region %q base %d not page aligned", r.Name, r.Base)
		}
		if r.Base == 0 {
			t.Errorf("region %q has null base", r.Name)
		}
	}
	if b.Base < a.Base+PageSize {
		t.Error("regions overlap")
	}
	if c.Size != PageSize {
		t.Errorf("zero-size alloc got size %d, want one page", c.Size)
	}
}

func TestRegionAddrAndContains(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("col", 1000)
	if got := r.Addr(0); got != r.Base {
		t.Errorf("Addr(0) = %d, want base %d", got, r.Base)
	}
	if got := r.Addr(999); got != r.Base+999 {
		t.Errorf("Addr(999) = %d", got)
	}
	if !r.Contains(r.Base) || !r.Contains(r.Base+999) {
		t.Error("Contains should accept in-range addresses")
	}
	if r.Contains(r.Base + 1000) {
		t.Error("Contains should reject one-past-end")
	}
	defer func() {
		if recover() == nil {
			t.Error("Addr past end should panic")
		}
	}()
	_ = r.Addr(1000)
}

func TestRegionLines(t *testing.T) {
	s := NewSpace()
	if got := s.Alloc("x", 64).Lines(); got != 1 {
		t.Errorf("64 B = %d lines, want 1", got)
	}
	if got := s.Alloc("y", 65).Lines(); got != 2 {
		t.Errorf("65 B = %d lines, want 2", got)
	}
	if got := s.Alloc("z", 4096).Lines(); got != 64 {
		t.Errorf("4096 B = %d lines, want 64", got)
	}
}

func TestAddrLine(t *testing.T) {
	if Addr(0).Line() != 0 || Addr(63).Line() != 0 || Addr(64).Line() != 1 {
		t.Error("line arithmetic broken")
	}
}

func TestLookupAndFree(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 128)
	b := s.Alloc("b", 128)
	if r, ok := s.Lookup(a.Base + 5); !ok || r.Name != "a" {
		t.Errorf("Lookup in a = %v %v", r, ok)
	}
	s.Free(a)
	if _, ok := s.Lookup(a.Base); ok {
		t.Error("freed region still found")
	}
	if r, ok := s.Lookup(b.Base); !ok || r.Name != "b" {
		t.Error("surviving region lost")
	}
	if got := s.Allocated(); got != 128 {
		t.Errorf("Allocated = %d, want 128", got)
	}
}

func TestRegionsSorted(t *testing.T) {
	s := NewSpace()
	s.Alloc("a", 1)
	s.Alloc("b", 1)
	s.Alloc("c", 1)
	rs := s.Regions()
	if len(rs) != 3 {
		t.Fatalf("got %d regions", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Base <= rs[i-1].Base {
			t.Error("regions not sorted by base")
		}
	}
}

func TestConcurrentAlloc(t *testing.T) {
	s := NewSpace()
	var wg sync.WaitGroup
	const n = 64
	bases := make([]Addr, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bases[i] = s.Alloc("r", 100).Base
		}(i)
	}
	wg.Wait()
	seen := map[Addr]bool{}
	for _, b := range bases {
		if seen[b] {
			t.Fatalf("duplicate base %d", b)
		}
		seen[b] = true
	}
}

func TestAllocDisjointProperty(t *testing.T) {
	s := NewSpace()
	var prev Region
	first := true
	f := func(sz uint32) bool {
		r := s.Alloc("p", uint64(sz%100000)+1)
		ok := r.Base%PageSize == 0
		if !first {
			ok = ok && r.Base >= prev.Base+Addr(prev.Size)
		}
		prev, first = r, false
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
