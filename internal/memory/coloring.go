package memory

import "fmt"

// Page coloring is the software cache-partitioning baseline the paper
// contrasts CAT with (Section V-A, related work [13], [15], [25]):
// because consecutive physical pages map to consecutive groups of
// cache sets, an allocator that hands a workload only pages of certain
// "colors" confines that workload's data to the matching fraction of
// the cache sets. Unlike CAT it needs no hardware support — but
// repartitioning requires copying data to differently-colored pages,
// which is why the paper judges it impractical for an in-memory DBMS.

// NumColors reports how many page colors a cache with the given set
// count has: the number of page-sized set groups.
func NumColors(sets int) int {
	linesPerPage := PageSize / LineSize
	n := sets / linesPerPage
	if n < 1 {
		return 1
	}
	return n
}

// ColorOf reports the color of the page containing the address, for a
// cache with the given color count.
func ColorOf(a Addr, numColors int) int {
	return int(uint64(a) / PageSize % uint64(numColors))
}

// ColoredRegion is a logically contiguous allocation backed by
// non-contiguous pages of restricted colors.
type ColoredRegion struct {
	Name  string
	pages []Addr // base address of each page, in logical order
	size  uint64
}

// Size reports the logical size in bytes.
func (r ColoredRegion) Size() uint64 { return r.size }

// Addr translates a logical byte offset to its physical address.
func (r ColoredRegion) Addr(off uint64) Addr {
	if off >= r.size {
		panic(fmt.Sprintf("memory: offset %d out of colored region %q of size %d", off, r.Name, r.size))
	}
	return r.pages[off/PageSize] + Addr(off%PageSize)
}

// AllocColored reserves size bytes using only pages of the given
// colors (with respect to numColors). Pages of other colors are
// skipped, mirroring a color-aware free list.
func (s *Space) AllocColored(name string, size uint64, colors []int, numColors int) (ColoredRegion, error) {
	if numColors < 1 {
		return ColoredRegion{}, fmt.Errorf("memory: color count %d", numColors)
	}
	if len(colors) == 0 {
		return ColoredRegion{}, fmt.Errorf("memory: empty color set")
	}
	allowed := make(map[int]bool, len(colors))
	for _, c := range colors {
		if c < 0 || c >= numColors {
			return ColoredRegion{}, fmt.Errorf("memory: color %d out of [0,%d)", c, numColors)
		}
		allowed[c] = true
	}
	if size == 0 {
		size = PageSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	need := int((size + PageSize - 1) / PageSize)
	r := ColoredRegion{Name: name, size: size, pages: make([]Addr, 0, need)}
	for len(r.pages) < need {
		page := s.next
		s.next += PageSize
		if allowed[ColorOf(page, numColors)] {
			r.pages = append(r.pages, page)
		}
	}
	s.regions = append(s.regions, Region{Name: name + ".colored", Base: r.pages[0], Size: size})
	return r, nil
}

// ColorSlice returns the first ceil(fraction·numColors) colors, the
// coloring analogue of cat.PortionMask.
func ColorSlice(numColors int, fraction float64) []int {
	n := int(fraction*float64(numColors) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > numColors {
		n = numColors
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
