// Package memory provides the simulated physical address space that the
// query engine's data structures live in. Operators allocate regions
// (columns, dictionaries, hash tables, bit vectors) and translate their
// element indexes into physical addresses; the cache simulator consumes
// those addresses.
//
// Addresses are never dereferenced — real data lives in ordinary Go
// slices — but they decide cache set/tag placement, so allocation is
// page-granular to spread regions across cache sets like a real
// allocator would.
package memory

import (
	"fmt"
	"sort"
	"sync"
)

// Addr is a simulated physical byte address.
type Addr uint64

const (
	// LineSize is the cache line size in bytes, fixed at 64 as on the
	// paper's Xeon E5-2699 v4.
	LineSize = 64
	// PageSize is the allocation granularity.
	PageSize = 4096
)

// Line returns the cache-line number containing the address.
func (a Addr) Line() uint64 { return uint64(a) / LineSize }

// Region is a named allocation in the simulated address space.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// Addr translates a byte offset within the region to a physical
// address. Offsets past the end are a programming error.
func (r Region) Addr(off uint64) Addr {
	if off >= r.Size {
		panic(fmt.Sprintf("memory: offset %d out of region %q of size %d", off, r.Name, r.Size))
	}
	return r.Base + Addr(off)
}

// Lines reports how many cache lines the region spans.
func (r Region) Lines() uint64 { return (r.Size + LineSize - 1) / LineSize }

// Contains reports whether the address falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// Space is a simulated physical address space with a bump allocator.
// The zero value is ready to use. Space is safe for concurrent use.
//
//conc:shared every Space method takes mu; the mutex, not epoch ownership, serializes allocator state
type Space struct {
	mu      sync.Mutex
	next    Addr
	regions []Region
}

// NewSpace returns an empty address space starting at one page, so that
// address zero is never handed out.
func NewSpace() *Space {
	return &Space{next: PageSize}
}

// Alloc reserves size bytes, page aligned, and returns the region.
// A zero size allocates one page so that every region has a distinct,
// valid base address.
func (s *Space) Alloc(name string, size uint64) Region {
	s.mu.Lock()
	if size == 0 {
		size = PageSize
	}
	r := Region{Name: name, Base: s.next, Size: size}
	pages := (size + PageSize - 1) / PageSize
	s.next += Addr(pages * PageSize)
	s.regions = append(s.regions, r)
	s.mu.Unlock()
	return r
}

// Free releases a region for accounting purposes. The bump allocator
// does not recycle addresses — recycling would let two logically
// distinct structures alias in the cache simulator — so Free only
// removes the region from the inventory.
func (s *Space) Free(r Region) {
	s.mu.Lock()
	for i := range s.regions {
		if s.regions[i].Base == r.Base {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// Allocated reports the total bytes currently allocated.
func (s *Space) Allocated() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, r := range s.regions {
		total += r.Size
	}
	return total
}

// Regions returns a snapshot of live regions ordered by base address.
func (s *Space) Regions() []Region {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Lookup finds the region containing the address, if any.
func (s *Space) Lookup(a Addr) (Region, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}
