// Package serve is a deterministic open-loop multi-tenant serving
// tier over the simulation engine: a seeded workload generator
// (Poisson / multi-period diurnal / trace replay), a bounded
// admission/queueing front end with deterministic drop accounting, a
// CLOS-aware dispatcher onto disjoint core groups, and a virtual-time
// metrics layer (throughput, p50/p99/p999 latency in ticks, queue
// depth, drops, per-tenant slowdown and Jain fairness).
//
// The determinism contract matches the rest of the repository: every
// random draw comes from rngs seeded by Config.Seed, time means the
// machine's virtual tick clock, and a run's Report is a bit-identical
// function of (Config, engine state) — including under the
// epoch-parallel engine at any worker count, and under control-plane
// fault injection per (run-seed, fault-seed). DESIGN.md §13 documents
// the architecture.
package serve

import (
	"fmt"

	"cachepart/internal/engine"
	"cachepart/internal/fault"
)

// DefaultAgingSeconds is the DiscCLOS starvation bound when
// Config.AgingSeconds is 0: long enough to batch several queries per
// mask switch, short enough that a passed-over class still meets its
// tail latency at saturation.
const DefaultAgingSeconds = 250e-6

// Config describes one serving run.
type Config struct {
	// Seed drives every random stream: per-tenant arrival rngs and
	// per-query parameter rngs.
	Seed int64
	// Horizon is the arrival window in simulated seconds; queries
	// arriving in [0, Horizon) are all served to completion (the run
	// drains past the horizon), so percentiles cover every admitted
	// query.
	Horizon float64
	Tenants []Tenant
	// Policy is the admission policy; nil means TailDrop.
	Policy AdmitPolicy
	// Discipline selects how free groups pick among tenant queues.
	Discipline Discipline
	// AgingSeconds bounds how long DiscCLOS may defer the globally
	// oldest query for class affinity; 0 uses DefaultAgingSeconds.
	AgingSeconds float64

	// Overload control (DESIGN.md §15). All four knobs default to off:
	// a zero-valued configuration reproduces the PR-7 behaviour bit for
	// bit. Shed is the load-shedding policy (nil means ShedNone); Retry
	// the client retry model; Breaker the per-tenant circuit breakers.
	Shed    ShedPolicy
	Retry   Retry
	Breaker Breaker
	// PolluterBandwidthFraction classifies a (tenant, workload) as an
	// LLC polluter when its per-core DRAM rate sustains this fraction
	// of the machine's aggregate bandwidth; 0 uses
	// DefaultPolluterBandwidthFraction.
	PolluterBandwidthFraction float64
	// Faults enables serving-plane chaos: seeded arrival bursts and
	// dispatcher stalls (see fault.ServeConfig). nil injects nothing.
	Faults *fault.ServeConfig

	// Engine pass-through: see engine.OpenLoopOptions.
	Quantum          int
	TargetSliceTicks int64
	Parallel         bool
	Workers          int
	EpochTicks       int64
}

// Run executes one serving run on the engine's machine: groups are
// disjoint core sets (one dispatch slot each, sharing the LLC), and
// every tenant workload must provide one query instance per group.
func Run(e *engine.Engine, groups [][]int, cfg Config) (*Report, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("serve: horizon %v must be positive", cfg.Horizon)
	}
	if err := validateTenants(cfg.Tenants, len(groups)); err != nil {
		return nil, err
	}
	if err := cfg.Retry.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Breaker.validate(); err != nil {
		return nil, err
	}
	m := e.Machine()
	ticksPerSec := float64(m.Ticks(1))
	var plane *fault.ServePlane
	if cfg.Faults != nil {
		var err error
		plane, err = fault.NewServePlane(*cfg.Faults, cfg.Horizon, len(cfg.Tenants), len(groups), ticksPerSec)
		if err != nil {
			return nil, err
		}
	}
	arrivals, err := genArrivals(m, cfg, plane)
	if err != nil {
		return nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		policy = TailDrop{}
	}
	aging := cfg.AgingSeconds
	if aging <= 0 {
		aging = DefaultAgingSeconds
	}
	groupCores := make([]int, len(groups))
	for gi, cores := range groups {
		groupCores[gi] = len(cores)
	}
	f := newFeed(&cfg, m, arrivals, groupCores, m.Ticks(aging), policy, plane)

	// Prewarm each workload's shared data (dictionaries, tables, space
	// directories) once; instances of one workload alias the same
	// backing data, so the group-0 instance stands in for all.
	var prewarm []engine.Query
	for ti := range cfg.Tenants {
		for wi := range cfg.Tenants[ti].Mix {
			prewarm = append(prewarm, cfg.Tenants[ti].Mix[wi].Instances[0])
		}
	}

	res, err := e.RunOpenLoop(groups, f, engine.OpenLoopOptions{
		Quantum:          cfg.Quantum,
		TargetSliceTicks: cfg.TargetSliceTicks,
		Parallel:         cfg.Parallel,
		Workers:          cfg.Workers,
		EpochTicks:       cfg.EpochTicks,
		Prewarm:          prewarm,
	})
	if err != nil {
		return nil, err
	}
	if err := f.checkDrained(); err != nil {
		return nil, err
	}
	return buildReport(&cfg, m.Ticks(cfg.Horizon), ticksPerSec, f, res), nil
}
