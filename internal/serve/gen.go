package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cachepart/internal/cachesim"
	"cachepart/internal/fault"
)

// gen: the seeded open-loop workload generator.
//
// Every arrival time and kind choice is drawn from per-tenant rngs
// seeded from Config.Seed — never the wall clock, never package-global
// rand — so the arrival trace is a pure function of the configuration
// and two runs with equal seeds are bit-identical (the repository's
// standing determinism constraint; internal/serve is a taintflow sink,
// see internal/lint).

// Process describes one tenant's arrival process.
type Process struct {
	// Kind selects the process: ProcPoisson, ProcDiurnal or ProcTrace.
	Kind ProcessKind
	// Rate is the mean arrival rate in queries per simulated second
	// (Poisson: constant; Diurnal: the base the periods modulate).
	Rate float64
	// Periods shape the diurnal rate: rate(t) = Rate·max(0, 1+Σ aᵢ·
	// sin(2π·t/Tᵢ + φᵢ)). Several periods superimpose, e.g. a daily
	// cycle plus a weekly one scaled into simulated seconds.
	Periods []Period
	// Trace holds explicit arrival offsets in simulated seconds for
	// ProcTrace, replayed in order (offsets beyond the horizon are
	// dropped). The offsets need not be sorted.
	Trace []float64
}

// ProcessKind enumerates arrival processes.
type ProcessKind int

const (
	// ProcPoisson draws i.i.d. exponential inter-arrival gaps.
	ProcPoisson ProcessKind = iota
	// ProcDiurnal modulates a Poisson process with superimposed
	// sinusoidal periods via thinning.
	ProcDiurnal
	// ProcTrace replays explicit arrival offsets.
	ProcTrace
)

// Period is one sinusoidal component of a diurnal rate profile.
type Period struct {
	// Seconds is the period length in simulated seconds.
	Seconds float64
	// Amplitude is the relative swing (0.5 → ±50% around the base).
	Amplitude float64
	// Phase offsets the sinusoid in radians.
	Phase float64
}

// Arrival is one generated query arrival.
type Arrival struct {
	// Seq is the arrival's index in the merged time-ordered trace; it
	// doubles as the submission tag, so completions map back.
	Seq int64
	// Tick is the arrival's virtual time.
	Tick int64
	// Tenant and Kind index Config.Tenants and the tenant's Mix.
	Tenant int
	Kind   int
	// Attempt is the client's try count for this query: 0 for the
	// original arrival, k for its k-th retry. Retries reuse the original
	// Seq (they are the same query), so (Seq, Attempt) is unique.
	Attempt int
}

// maxArrivals caps one run's generated trace; a misconfigured rate at
// a long horizon fails loudly instead of allocating without bound.
const maxArrivals = 1 << 22

// burstRngSalt keys each tenant's burst-arrival rng. Burst arrivals
// come from a stream separate from the tenant's base rng so the base
// trace is bit-identical with and without serving-plane faults.
const burstRngSalt = 3571

// GenArrivals generates the merged arrival trace of all tenants over
// [0, cfg.Horizon) seconds, sorted by (tick, tenant, per-tenant
// order), including any burst arrivals injected by cfg.Faults. The
// machine only supplies the seconds→ticks conversion.
func GenArrivals(m *cachesim.Machine, cfg Config) ([]Arrival, error) {
	var plane *fault.ServePlane
	if cfg.Faults != nil {
		// Burst windows are drawn before stall windows, so a plane built
		// with zero groups yields the identical burst schedule Run's full
		// plane does.
		var err error
		plane, err = fault.NewServePlane(*cfg.Faults, cfg.Horizon, len(cfg.Tenants), 0, float64(m.Ticks(1)))
		if err != nil {
			return nil, err
		}
	}
	return genArrivals(m, cfg, plane)
}

// genArrivals generates the trace against an already-built chaos plane
// (nil for none).
func genArrivals(m *cachesim.Machine, cfg Config, plane *fault.ServePlane) ([]Arrival, error) {
	var all []Arrival
	for ti := range cfg.Tenants {
		t := &cfg.Tenants[ti]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ti)*7919))
		times, err := arrivalSeconds(rng, t.Process, cfg.Horizon)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", t.Name, err)
		}
		weights, total := mixWeights(t.Mix)
		for _, sec := range times {
			kind := pickKind(rng, weights, total)
			all = append(all, Arrival{Tick: m.Ticks(sec), Tenant: ti, Kind: kind})
		}
		// Burst superposition: inside each window the tenant gains an
		// extra Poisson stream at (Factor-1)× its base rate, drawn from a
		// separate seeded rng so the base sequence above is untouched.
		if bursts := plane.Bursts(ti); len(bursts) > 0 && t.Process.Rate > 0 {
			brng := rand.New(rand.NewSource(cfg.Seed ^ int64(ti+1)*burstRngSalt))
			for _, b := range bursts {
				extra := (b.Factor - 1) * t.Process.Rate
				if extra <= 0 {
					continue
				}
				for sec := b.Start + brng.ExpFloat64()/extra; sec < b.End && sec < cfg.Horizon; sec += brng.ExpFloat64() / extra {
					kind := pickKind(brng, weights, total)
					all = append(all, Arrival{Tick: m.Ticks(sec), Tenant: ti, Kind: kind})
				}
			}
		}
		if len(all) > maxArrivals {
			return nil, fmt.Errorf("serve: more than %d arrivals; lower the rate or horizon", maxArrivals)
		}
	}
	// Stable merge: tenants were appended in order, so equal ticks keep
	// (tenant, per-tenant order).
	sort.SliceStable(all, func(i, j int) bool { return all[i].Tick < all[j].Tick })
	for i := range all {
		all[i].Seq = int64(i)
	}
	return all, nil
}

// arrivalSeconds draws one tenant's arrival offsets over [0, horizon).
func arrivalSeconds(rng *rand.Rand, p Process, horizon float64) ([]float64, error) {
	switch p.Kind {
	case ProcPoisson:
		if p.Rate <= 0 {
			return nil, fmt.Errorf("poisson rate %v must be positive", p.Rate)
		}
		var out []float64
		for t := rng.ExpFloat64() / p.Rate; t < horizon; t += rng.ExpFloat64() / p.Rate {
			out = append(out, t)
			if len(out) > maxArrivals {
				return nil, fmt.Errorf("more than %d arrivals", maxArrivals)
			}
		}
		return out, nil
	case ProcDiurnal:
		return diurnalSeconds(rng, p, horizon)
	case ProcTrace:
		out := make([]float64, 0, len(p.Trace))
		for _, t := range p.Trace {
			if t >= 0 && t < horizon {
				out = append(out, t)
			}
		}
		sort.Float64s(out)
		return out, nil
	default:
		return nil, fmt.Errorf("unknown process kind %d", p.Kind)
	}
}

// diurnalSeconds samples the time-varying rate by thinning: candidates
// from a homogeneous process at the profile's peak rate, each kept
// with probability rate(t)/peak. Both draws come from the tenant rng,
// so the trace replays exactly.
func diurnalSeconds(rng *rand.Rand, p Process, horizon float64) ([]float64, error) {
	if p.Rate <= 0 {
		return nil, fmt.Errorf("diurnal base rate %v must be positive", p.Rate)
	}
	if len(p.Periods) == 0 {
		return nil, fmt.Errorf("diurnal process needs at least one period")
	}
	peak := 1.0
	for _, per := range p.Periods {
		if per.Seconds <= 0 {
			return nil, fmt.Errorf("period length %v must be positive", per.Seconds)
		}
		peak += math.Abs(per.Amplitude)
	}
	peakRate := p.Rate * peak
	var out []float64
	for t := rng.ExpFloat64() / peakRate; t < horizon; t += rng.ExpFloat64() / peakRate {
		factor := 1.0
		for _, per := range p.Periods {
			factor += per.Amplitude * math.Sin(2*math.Pi*t/per.Seconds+per.Phase)
		}
		if factor < 0 {
			factor = 0
		}
		if rng.Float64()*peak < factor {
			out = append(out, t)
			if len(out) > maxArrivals {
				return nil, fmt.Errorf("more than %d arrivals", maxArrivals)
			}
		}
	}
	return out, nil
}

// mixWeights folds a tenant mix into cumulative weights.
func mixWeights(mix []Workload) ([]int, int) {
	weights := make([]int, len(mix))
	total := 0
	for i, w := range mix {
		wt := w.Weight
		if wt <= 0 {
			wt = 1
		}
		total += wt
		weights[i] = total
	}
	return weights, total
}

// pickKind draws one mix entry by cumulative weight.
func pickKind(rng *rand.Rand, cum []int, total int) int {
	if len(cum) <= 1 {
		return 0
	}
	n := rng.Intn(total)
	for i, c := range cum {
		if n < c {
			return i
		}
	}
	return len(cum) - 1
}

// queryRng derives the per-execution parameter stream of one arrival.
// Mixing the global sequence number keeps every query's parameters
// independent while remaining a pure function of (seed, trace).
func queryRng(seed int64, a Arrival) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (a.Seq+1)*0x5851F42D4C957F2D))
}
