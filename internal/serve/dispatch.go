package serve

import (
	"fmt"
	"math/rand"

	"cachepart/internal/cachesim"
	"cachepart/internal/engine"
	"cachepart/internal/fault"
)

// dispatch: the engine.Feed gluing generator, admission, overload
// control and queues to RunOpenLoop. The engine calls Next whenever a
// core group is idle at virtual tick now; the feed absorbs every
// arrival up to now — merging the trace with pending client retries —
// through the breaker/shed/admission chain, expires queries whose SLO
// deadline passed in queue, then hands out the next queued query under
// the configured discipline. All state transitions key off virtual
// ticks carried in the arrival trace, so the decision sequence is
// replayed bit-identically for a fixed (seed, fault-seed, config).

// Discipline selects how a free group picks among tenant queues.
type Discipline int

const (
	// DiscCLOS (the default) is CLOS-aware FIFO: a group prefers the
	// oldest queued query whose Workload.Class matches the class it
	// last dispatched, batching same-allocation queries so the
	// engine's mask reprogramming overhead is paid per batch instead
	// of per query. Once the globally oldest query has waited longer
	// than the aging bound the group falls back to strict FIFO, so no
	// class starves. When every workload shares one class this is
	// exactly FIFO.
	DiscCLOS Discipline = iota
	// DiscFIFO serves the globally oldest queued query (ties: lowest
	// tenant index), ignoring CLOS classes.
	DiscFIFO
	// DiscRR round-robins across non-empty tenant queues, isolating a
	// bursty tenant from a steady one.
	DiscRR
)

// String names the discipline for reports and CLI flags.
func (d Discipline) String() string {
	switch d {
	case DiscFIFO:
		return "fifo"
	case DiscRR:
		return "rr"
	default:
		return "clos"
	}
}

// ParseDiscipline maps a CLI flag value to a Discipline.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "clos":
		return DiscCLOS, nil
	case "fifo":
		return DiscFIFO, nil
	case "rr":
		return DiscRR, nil
	default:
		return 0, fmt.Errorf("serve: unknown discipline %q (want clos, fifo or rr)", s)
	}
}

// feed implements engine.Feed (and engine.CompletionObserver) over
// bounded per-tenant FIFOs with SLO-aware overload control.
type feed struct {
	seed     int64
	tenants  []Tenant
	arrivals []Arrival
	cursor   int
	policy   AdmitPolicy
	disc     Discipline
	rr       int
	// lastClass[g] is the Workload.Class group g most recently
	// dispatched (-1 before the first), the affinity key for DiscCLOS.
	lastClass []int
	// agingTicks bounds how long DiscCLOS may pass over the globally
	// oldest query in favour of class affinity.
	agingTicks int64

	// queues[t] is tenant t's FIFO; heads[t] indexes its front. Slots
	// before the head are dead — with bounded caps the waste is small
	// and popping stays allocation-free.
	queues [][]Arrival
	heads  []int

	// Overload control. deadline[t] is tenant t's queueing deadline in
	// ticks (0 = none); breakers is empty when breakers are disabled.
	// pending holds scheduled client retries, merged with the trace in
	// (tick, seq, attempt) order. olRng draws every overload-control
	// jitter (retry backoff, breaker reopen) at deterministic event
	// points inside the virtual-time loop.
	shed        ShedPolicy
	tracker     *polluterTracker
	breakers    []tenantBreaker
	deadline    []int64
	hasDeadline bool
	retry     Retry
	retryBase int64
	pending   retryHeap
	olRng     *rand.Rand
	plane     *fault.ServePlane
	// capSum is Σ queue caps, the denominator of the shed-policy load.
	capSum int

	acct accounting
}

// accounting tallies the deterministic drop/queue statistics the
// report folds in after the run. The identity per tenant is
// attempts == admitted + Σ_reason drops, and admitted == completed
// after the drain (queues empty). arrivals counts first attempts only.
type accounting struct {
	arrivals  []int64
	attempts  []int64
	admitted  []int64
	drops     [numDropReasons][]int64
	retries   []int64
	abandoned []int64
	trips     []int64
	probes    []int64
	peakDepth []int
	// depthSum integrates queue depth over virtual time (Σ depth·dt);
	// lastTick is the previous integration point.
	depthSum []float64
	lastTick int64
	endTick  int64
}

func newFeed(cfg *Config, m *cachesim.Machine, arrivals []Arrival, groupCores []int, agingTicks int64, policy AdmitPolicy, plane *fault.ServePlane) *feed {
	n := len(cfg.Tenants)
	ticksPerSec := float64(m.Ticks(1))
	last := make([]int, len(groupCores))
	for i := range last {
		last[i] = -1
	}
	shed := cfg.Shed
	if shed == nil {
		shed = ShedNone{}
	}
	shed.Init(n, cfg.Seed)
	frac := cfg.PolluterBandwidthFraction
	if frac == 0 {
		frac = DefaultPolluterBandwidthFraction
	}
	backoff := cfg.Retry.BackoffSeconds
	if backoff == 0 {
		backoff = DefaultRetryBackoffSeconds
	}
	f := &feed{
		seed:       cfg.Seed,
		tenants:    cfg.Tenants,
		arrivals:   arrivals,
		policy:     policy,
		disc:       cfg.Discipline,
		lastClass:  last,
		agingTicks: agingTicks,
		queues:     make([][]Arrival, n),
		heads:      make([]int, n),
		shed:       shed,
		tracker:    newPolluterTracker(cfg.Tenants, groupCores, frac*m.Config().DRAMBandwidth, ticksPerSec),
		deadline:   make([]int64, n),
		retry:      cfg.Retry,
		retryBase:  m.Ticks(backoff),
		olRng:      newOverloadRng(cfg.Seed),
		plane:      plane,
		acct: accounting{
			arrivals:  make([]int64, n),
			attempts:  make([]int64, n),
			admitted:  make([]int64, n),
			retries:   make([]int64, n),
			abandoned: make([]int64, n),
			trips:     make([]int64, n),
			probes:    make([]int64, n),
			peakDepth: make([]int, n),
			depthSum:  make([]float64, n),
		},
	}
	if f.retryBase < 1 {
		f.retryBase = 1
	}
	for r := range f.acct.drops {
		f.acct.drops[r] = make([]int64, n)
	}
	for ti := range cfg.Tenants {
		t := &cfg.Tenants[ti]
		f.capSum += t.queueCap()
		if t.SLO.DeadlineSeconds > 0 {
			f.deadline[ti] = m.Ticks(t.SLO.DeadlineSeconds)
			f.hasDeadline = true
		}
	}
	if cfg.Breaker.enabled() {
		f.breakers = make([]tenantBreaker, n)
		for ti := range cfg.Tenants {
			var target int64
			if s := cfg.Tenants[ti].SLO.TargetP99Seconds; s > 0 {
				target = m.Ticks(s)
			}
			f.breakers[ti] = newTenantBreaker(cfg.Breaker, target, ticksPerSec)
		}
	}
	f.policy.Init(n, ticksPerSec)
	return f
}

func (f *feed) depth(tenant int) int { return len(f.queues[tenant]) - f.heads[tenant] }

// load is the aggregate queue fill fraction the shed policies key off.
func (f *feed) load() float64 {
	d := 0
	for t := range f.queues {
		d += f.depth(t)
	}
	return float64(d) / float64(f.capSum)
}

// jitter draws the seeded backoff scale factor in [0.5, 1.5).
func (f *feed) jitter() float64 { return 0.5 + f.olRng.Float64() }

// integrate advances the depth integrals to tick. Next is called with
// non-decreasing now and arrivals are absorbed in trace order, so tick
// never regresses.
func (f *feed) integrate(tick int64) {
	if dt := tick - f.acct.lastTick; dt > 0 {
		for t := range f.queues {
			f.acct.depthSum[t] += float64(f.depth(t)) * float64(dt)
		}
		f.acct.lastTick = tick
	}
	if tick > f.acct.endTick {
		f.acct.endTick = tick
	}
}

// drop records one rejected attempt under its reason, resolves a
// half-open probe that died before completing, and — when the client
// retry model allows — schedules the re-arrival at `at` plus seeded
// exponential backoff. A query whose final attempt drops is abandoned.
func (f *feed) drop(a Arrival, reason DropReason, at int64) {
	t := a.Tenant
	f.acct.drops[reason][t]++
	if len(f.breakers) > 0 {
		f.breakers[t].probeDropped(a.Seq, at, f.jitter)
	}
	if f.retry.enabled() && a.Attempt+1 < f.retry.MaxAttempts && f.withinBudget(t) {
		backoff := float64(f.retryBase<<uint(a.Attempt)) * f.jitter()
		r := a
		r.Attempt++
		r.Tick = at + int64(backoff)
		f.pending.push(r)
		f.acct.retries[t]++
		return
	}
	f.acct.abandoned[t]++
}

// withinBudget checks the tenant's client retry budget: cumulative
// retries stay under BudgetFraction of cumulative first arrivals.
func (f *feed) withinBudget(t int) bool {
	if f.retry.BudgetFraction == 0 {
		return true
	}
	return float64(f.acct.retries[t]+1) <= f.retry.BudgetFraction*float64(f.acct.arrivals[t])
}

// nextArrival peeks the earliest unabsorbed arrival across the trace
// cursor and the retry heap, preferring the (tick, seq, attempt) order.
func (f *feed) nextArrival() (Arrival, bool) {
	haveTrace := f.cursor < len(f.arrivals)
	havePending := len(f.pending) > 0
	switch {
	case haveTrace && havePending:
		if retryLess(f.pending[0], f.arrivals[f.cursor]) {
			return f.pending[0], true
		}
		return f.arrivals[f.cursor], true
	case haveTrace:
		return f.arrivals[f.cursor], true
	case havePending:
		return f.pending[0], true
	default:
		return Arrival{}, false
	}
}

// absorb runs the admission chain for every arrival (trace or retry)
// at or before now, in (tick, seq, attempt) order: breaker → shed →
// policy → bounded queue. A half-open probe bypasses shedding — the
// breaker's contract is that exactly one probe reaches the queue.
func (f *feed) absorb(now int64) {
	for {
		a, ok := f.nextArrival()
		if !ok || a.Tick > now {
			return
		}
		if a.Attempt == 0 {
			f.cursor++
		} else {
			f.pending.pop()
		}
		f.integrate(a.Tick)
		t := a.Tenant
		f.acct.attempts[t]++
		if a.Attempt == 0 {
			f.acct.arrivals[t]++
		}
		probe := false
		if len(f.breakers) > 0 {
			bk := &f.breakers[t]
			trips, probes := bk.trips, bk.probes
			admit, isProbe := bk.admit(a)
			f.acct.trips[t] += bk.trips - trips
			f.acct.probes[t] += bk.probes - probes
			if !admit {
				f.drop(a, DropBreaker, a.Tick)
				continue
			}
			probe = isProbe
		}
		if !probe && f.shed.Shed(a, f.load(), f.tracker.polluter(t, a.Kind)) {
			f.drop(a, DropShed, a.Tick)
			continue
		}
		d := f.depth(t)
		qcap := f.tenants[t].queueCap()
		switch {
		case !f.policy.Admit(a, d, qcap):
			f.drop(a, DropPolicy, a.Tick)
		case d >= qcap:
			f.drop(a, DropQueueFull, a.Tick)
		default:
			f.acct.admitted[t]++
			f.queues[t] = append(f.queues[t], a)
			if d+1 > f.acct.peakDepth[t] {
				f.acct.peakDepth[t] = d + 1
			}
		}
	}
}

// expire drops queued queries whose deadline passed by now. Queues are
// FIFO in arrival-tick order and a tenant's deadline is constant, so
// only heads can be expired; the drop is stamped at the expiry tick,
// which also anchors the client's retry backoff.
func (f *feed) expire(now int64) {
	if !f.hasDeadline {
		return
	}
	f.integrate(now)
	for t := range f.queues {
		dl := f.deadline[t]
		if dl == 0 {
			continue
		}
		for f.depth(t) > 0 {
			a := f.queues[t][f.heads[t]]
			exp := a.Tick + dl
			if exp > now {
				break
			}
			f.popHead(t)
			f.drop(a, DropDeadline, exp)
		}
	}
}

// popHead removes tenant t's queue head.
func (f *feed) popHead(t int) {
	f.heads[t]++
	if f.heads[t] == len(f.queues[t]) {
		f.queues[t] = f.queues[t][:0]
		f.heads[t] = 0
	}
}

// headClass is the CLOS class of tenant t's queue head.
func (f *feed) headClass(t int) int {
	a := f.queues[t][f.heads[t]]
	return f.tenants[a.Tenant].Mix[a.Kind].Class
}

// oldest returns the tenant whose head is globally oldest (ties:
// lowest tenant index), restricted to heads of the given class when
// class >= 0; -1 if no queue qualifies.
func (f *feed) oldest(class int) (int, int64) {
	best, bestTick := -1, int64(0)
	for t := range f.queues {
		if f.depth(t) == 0 {
			continue
		}
		if class >= 0 && f.headClass(t) != class {
			continue
		}
		head := f.queues[t][f.heads[t]]
		if best < 0 || head.Tick < bestTick {
			best, bestTick = t, head.Tick
		}
	}
	return best, bestTick
}

// pick selects the next tenant group should serve, or -1 if every
// queue is empty.
func (f *feed) pick(group int, now int64) int {
	switch f.disc {
	case DiscRR:
		for i := 0; i < len(f.queues); i++ {
			t := (f.rr + i) % len(f.queues)
			if f.depth(t) > 0 {
				f.rr = (t + 1) % len(f.queues)
				return t
			}
		}
		return -1
	case DiscFIFO:
		t, _ := f.oldest(-1)
		return t
	default: // DiscCLOS
		t, tick := f.oldest(-1)
		if t < 0 {
			return -1
		}
		// Affinity: stick with the group's current class while the
		// globally oldest query is within its aging bound.
		if last := f.lastClass[group]; last >= 0 && now-tick < f.agingTicks {
			if m, _ := f.oldest(last); m >= 0 {
				return m
			}
		}
		return t
	}
}

// Next implements engine.Feed.
func (f *feed) Next(group int, now int64) (engine.Submission, bool, int64) {
	// Dispatcher-stall chaos: a stalled group parks until the window
	// ends; arrivals keep queueing (and expiring) against the clock.
	if end := f.plane.StallUntil(group, now); end > now {
		return engine.Submission{}, false, end
	}
	// Expiry can schedule a retry already due at now (a short backoff
	// after an old deadline), so loop until no arrival at or before now
	// remains; attempts are bounded, so the loop terminates.
	for {
		f.absorb(now)
		f.expire(now)
		if a, ok := f.nextArrival(); !ok || a.Tick > now {
			break
		}
	}
	t := f.pick(group, now)
	if t < 0 {
		wake := int64(-1)
		if a, ok := f.nextArrival(); ok {
			wake = a.Tick
		}
		return engine.Submission{}, false, wake
	}
	f.integrate(now)
	a := f.queues[t][f.heads[t]]
	f.popHead(t)
	w := &f.tenants[a.Tenant].Mix[a.Kind]
	f.lastClass[group] = w.Class
	return engine.Submission{
		Query:   w.Instances[group],
		Rng:     queryRng(f.seed, a),
		Release: a.Tick,
		Tag:     a.Seq,
	}, true, 0
}

// Observe implements engine.CompletionObserver: completion telemetry
// feeds the polluter classifier and the tenant's circuit breaker, in
// the engine's deterministic completion order on the coordinator.
func (f *feed) Observe(c engine.Completion) {
	first := f.arrivals[c.Tag]
	f.tracker.observe(first.Tenant, first.Kind, c)
	if len(f.breakers) > 0 {
		bk := &f.breakers[first.Tenant]
		trips := bk.trips
		// Client latency spans from the first arrival, so backoff spent
		// retrying counts against the SLO.
		bk.observe(c.Tag, c.Done-first.Tick, c.Done, f.jitter)
		f.acct.trips[first.Tenant] += bk.trips - trips
	}
}

// leftover reports queries still queued when the run drains — with
// arrivals bounded to the horizon the engine retires every group only
// after the queues empty, so a nonzero value indicates a feed bug.
func (f *feed) leftover() int {
	n := 0
	for t := range f.queues {
		n += f.depth(t)
	}
	return n
}

var (
	_ engine.Feed               = (*feed)(nil)
	_ engine.CompletionObserver = (*feed)(nil)
)

// checkDrained asserts the drain invariant after a run.
func (f *feed) checkDrained() error {
	if n := f.leftover(); n != 0 {
		return fmt.Errorf("serve: %d queries left queued after drain", n)
	}
	if f.cursor != len(f.arrivals) {
		return fmt.Errorf("serve: %d arrivals never absorbed", len(f.arrivals)-f.cursor)
	}
	if len(f.pending) != 0 {
		return fmt.Errorf("serve: %d retries never absorbed", len(f.pending))
	}
	return nil
}
