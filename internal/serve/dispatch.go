package serve

import (
	"fmt"

	"cachepart/internal/engine"
)

// dispatch: the engine.Feed gluing generator, admission and queues to
// RunOpenLoop. The engine calls Next whenever a core group is idle at
// virtual tick now; the feed absorbs every arrival up to now through
// the admission policy, then hands out the next queued query under the
// configured discipline. All state transitions key off virtual ticks
// carried in the arrival trace, so the decision sequence is replayed
// bit-identically for a fixed (seed, config).

// Discipline selects how a free group picks among tenant queues.
type Discipline int

const (
	// DiscCLOS (the default) is CLOS-aware FIFO: a group prefers the
	// oldest queued query whose Workload.Class matches the class it
	// last dispatched, batching same-allocation queries so the
	// engine's mask reprogramming overhead is paid per batch instead
	// of per query. Once the globally oldest query has waited longer
	// than the aging bound the group falls back to strict FIFO, so no
	// class starves. When every workload shares one class this is
	// exactly FIFO.
	DiscCLOS Discipline = iota
	// DiscFIFO serves the globally oldest queued query (ties: lowest
	// tenant index), ignoring CLOS classes.
	DiscFIFO
	// DiscRR round-robins across non-empty tenant queues, isolating a
	// bursty tenant from a steady one.
	DiscRR
)

// String names the discipline for reports and CLI flags.
func (d Discipline) String() string {
	switch d {
	case DiscFIFO:
		return "fifo"
	case DiscRR:
		return "rr"
	default:
		return "clos"
	}
}

// ParseDiscipline maps a CLI flag value to a Discipline.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "clos":
		return DiscCLOS, nil
	case "fifo":
		return DiscFIFO, nil
	case "rr":
		return DiscRR, nil
	default:
		return 0, fmt.Errorf("serve: unknown discipline %q (want clos, fifo or rr)", s)
	}
}

// feed implements engine.Feed over bounded per-tenant FIFOs.
type feed struct {
	seed     int64
	tenants  []Tenant
	arrivals []Arrival
	cursor   int
	policy   AdmitPolicy
	disc     Discipline
	rr       int
	// lastClass[g] is the Workload.Class group g most recently
	// dispatched (-1 before the first), the affinity key for DiscCLOS.
	lastClass []int
	// agingTicks bounds how long DiscCLOS may pass over the globally
	// oldest query in favour of class affinity.
	agingTicks int64

	// queues[t] is tenant t's FIFO; heads[t] indexes its front. Slots
	// before the head are dead — with bounded caps the waste is small
	// and popping stays allocation-free.
	queues [][]Arrival
	heads  []int

	acct accounting
}

// accounting tallies the deterministic drop/queue statistics the
// report folds in after the run.
type accounting struct {
	arrivals   []int64
	admitted   []int64
	dropPolicy []int64
	dropFull   []int64
	peakDepth  []int
	// depthSum integrates queue depth over virtual time (Σ depth·dt);
	// lastTick is the previous integration point.
	depthSum []float64
	lastTick int64
	endTick  int64
}

func newFeed(seed int64, tenants []Tenant, arrivals []Arrival, policy AdmitPolicy, disc Discipline, groups int, agingTicks int64, ticksPerSec float64) *feed {
	n := len(tenants)
	last := make([]int, groups)
	for i := range last {
		last[i] = -1
	}
	f := &feed{
		seed:       seed,
		tenants:    tenants,
		arrivals:   arrivals,
		policy:     policy,
		disc:       disc,
		lastClass:  last,
		agingTicks: agingTicks,
		queues:     make([][]Arrival, n),
		heads:      make([]int, n),
		acct: accounting{
			arrivals:   make([]int64, n),
			admitted:   make([]int64, n),
			dropPolicy: make([]int64, n),
			dropFull:   make([]int64, n),
			peakDepth:  make([]int, n),
			depthSum:   make([]float64, n),
		},
	}
	f.policy.Init(n, ticksPerSec)
	return f
}

func (f *feed) depth(tenant int) int { return len(f.queues[tenant]) - f.heads[tenant] }

// integrate advances the depth integrals to tick. Next is called with
// non-decreasing now and arrivals are absorbed in trace order, so tick
// never regresses.
func (f *feed) integrate(tick int64) {
	if dt := tick - f.acct.lastTick; dt > 0 {
		for t := range f.queues {
			f.acct.depthSum[t] += float64(f.depth(t)) * float64(dt)
		}
		f.acct.lastTick = tick
	}
	if tick > f.acct.endTick {
		f.acct.endTick = tick
	}
}

// absorb runs admission for every arrival at or before now, in trace
// order.
func (f *feed) absorb(now int64) {
	for f.cursor < len(f.arrivals) && f.arrivals[f.cursor].Tick <= now {
		a := f.arrivals[f.cursor]
		f.cursor++
		f.integrate(a.Tick)
		f.acct.arrivals[a.Tenant]++
		d := f.depth(a.Tenant)
		qcap := f.tenants[a.Tenant].queueCap()
		switch {
		case !f.policy.Admit(a, d, qcap):
			f.acct.dropPolicy[a.Tenant]++
		case d >= qcap:
			f.acct.dropFull[a.Tenant]++
		default:
			f.acct.admitted[a.Tenant]++
			f.queues[a.Tenant] = append(f.queues[a.Tenant], a)
			if d+1 > f.acct.peakDepth[a.Tenant] {
				f.acct.peakDepth[a.Tenant] = d + 1
			}
		}
	}
}

// headClass is the CLOS class of tenant t's queue head.
func (f *feed) headClass(t int) int {
	a := f.queues[t][f.heads[t]]
	return f.tenants[a.Tenant].Mix[a.Kind].Class
}

// oldest returns the tenant whose head is globally oldest (ties:
// lowest tenant index), restricted to heads of the given class when
// class >= 0; -1 if no queue qualifies.
func (f *feed) oldest(class int) (int, int64) {
	best, bestTick := -1, int64(0)
	for t := range f.queues {
		if f.depth(t) == 0 {
			continue
		}
		if class >= 0 && f.headClass(t) != class {
			continue
		}
		head := f.queues[t][f.heads[t]]
		if best < 0 || head.Tick < bestTick {
			best, bestTick = t, head.Tick
		}
	}
	return best, bestTick
}

// pick selects the next tenant group should serve, or -1 if every
// queue is empty.
func (f *feed) pick(group int, now int64) int {
	switch f.disc {
	case DiscRR:
		for i := 0; i < len(f.queues); i++ {
			t := (f.rr + i) % len(f.queues)
			if f.depth(t) > 0 {
				f.rr = (t + 1) % len(f.queues)
				return t
			}
		}
		return -1
	case DiscFIFO:
		t, _ := f.oldest(-1)
		return t
	default: // DiscCLOS
		t, tick := f.oldest(-1)
		if t < 0 {
			return -1
		}
		// Affinity: stick with the group's current class while the
		// globally oldest query is within its aging bound.
		if last := f.lastClass[group]; last >= 0 && now-tick < f.agingTicks {
			if m, _ := f.oldest(last); m >= 0 {
				return m
			}
		}
		return t
	}
}

// Next implements engine.Feed.
func (f *feed) Next(group int, now int64) (engine.Submission, bool, int64) {
	f.absorb(now)
	t := f.pick(group, now)
	if t < 0 {
		if f.cursor < len(f.arrivals) {
			return engine.Submission{}, false, f.arrivals[f.cursor].Tick
		}
		return engine.Submission{}, false, -1
	}
	f.integrate(now)
	a := f.queues[t][f.heads[t]]
	f.heads[t]++
	if f.heads[t] == len(f.queues[t]) {
		f.queues[t] = f.queues[t][:0]
		f.heads[t] = 0
	}
	w := &f.tenants[a.Tenant].Mix[a.Kind]
	f.lastClass[group] = w.Class
	return engine.Submission{
		Query:   w.Instances[group],
		Rng:     queryRng(f.seed, a),
		Release: a.Tick,
		Tag:     a.Seq,
	}, true, 0
}

// leftover reports queries still queued when the run drains — with
// arrivals bounded to the horizon the engine retires every group only
// after the queues empty, so a nonzero value indicates a feed bug.
func (f *feed) leftover() int {
	n := 0
	for t := range f.queues {
		n += f.depth(t)
	}
	return n
}

var _ engine.Feed = (*feed)(nil)

// checkDrained asserts the drain invariant after a run.
func (f *feed) checkDrained() error {
	if n := f.leftover(); n != 0 {
		return fmt.Errorf("serve: %d queries left queued after drain", n)
	}
	if f.cursor != len(f.arrivals) {
		return fmt.Errorf("serve: %d arrivals never absorbed", len(f.arrivals)-f.cursor)
	}
	return nil
}
