package serve

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 8
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(m, core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// computeKernel burns a fixed compute cost per row.
type computeKernel struct{ remaining int }

func (k *computeKernel) Step(ctx *exec.Ctx, budget int) (int, bool) {
	n := budget
	if n > k.remaining {
		n = k.remaining
	}
	for i := 0; i < n; i++ {
		ctx.Compute(10, 4)
	}
	k.remaining -= n
	return n, k.remaining == 0
}

// expQuery draws an exponentially distributed row count per execution
// from the submission rng — an M-shaped service time for queueing
// tests. It is stateless between executions, so one instance may alias
// across groups.
type expQuery struct {
	name     string
	meanRows float64
}

func (q *expQuery) Name() string { return q.name }

func (q *expQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	rows := int(rng.ExpFloat64() * q.meanRows)
	if rows < 1 {
		rows = 1
	}
	parts := engine.PartitionRows(rows, cores)
	ks := make([]exec.Kernel, 0, len(parts))
	for _, p := range parts {
		ks = append(ks, &computeKernel{remaining: p[1] - p[0]})
	}
	return []engine.Phase{{Name: "compute", CUID: core.Sensitive, Kernels: ks, CountRows: true}}, nil
}

func alias(q engine.Query, groups int) []engine.Query {
	out := make([]engine.Query, groups)
	for i := range out {
		out[i] = q
	}
	return out
}

// testConfig is a small two-tenant mixed-process configuration.
func testConfig(seed int64, groups int) Config {
	return Config{
		Seed:    seed,
		Horizon: 2e-5,
		Tenants: []Tenant{
			{
				Name:    "oltp",
				Process: Process{Kind: ProcPoisson, Rate: 3e6},
				Mix: []Workload{
					{Name: "small", Weight: 3, Instances: alias(&expQuery{name: "small", meanRows: 40}, groups)},
					{Name: "medium", Weight: 1, Instances: alias(&expQuery{name: "medium", meanRows: 120}, groups)},
				},
			},
			{
				Name: "analytics",
				Process: Process{Kind: ProcDiurnal, Rate: 1e6,
					Periods: []Period{{Seconds: 1e-5, Amplitude: 0.6}, {Seconds: 4e-5, Amplitude: 0.3, Phase: 1.0}}},
				Mix: []Workload{
					{Name: "agg", Weight: 1, Instances: alias(&expQuery{name: "agg", meanRows: 300}, groups)},
				},
			},
		},
	}
}

func TestGenArrivalsBitIdentity(t *testing.T) {
	m := testEngine(t).Machine()
	for _, seed := range []int64{1, 7, 42} {
		a, err := GenArrivals(m, testConfig(seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenArrivals(m, testConfig(seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: identical configs generated different traces", seed)
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		for i := range a {
			if a[i].Seq != int64(i) {
				t.Fatalf("seed %d: arrival %d has seq %d", seed, i, a[i].Seq)
			}
			if i > 0 && a[i].Tick < a[i-1].Tick {
				t.Fatalf("seed %d: trace not time-ordered at %d", seed, i)
			}
		}
	}
	a, _ := GenArrivals(m, testConfig(1, 2))
	b, _ := GenArrivals(m, testConfig(2, 2))
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds generated identical traces")
	}
}

func TestGenArrivalsTrace(t *testing.T) {
	m := testEngine(t).Machine()
	cfg := Config{
		Seed:    5,
		Horizon: 1e-5,
		Tenants: []Tenant{{
			Name:    "replay",
			Process: Process{Kind: ProcTrace, Trace: []float64{9e-6, 2e-6, 4e-6, 5e-5, -1}},
			Mix:     []Workload{{Name: "q", Weight: 1, Instances: alias(&expQuery{name: "q", meanRows: 10}, 1)}},
		}},
	}
	a, err := GenArrivals(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5e-5 is past the horizon and -1 before it; the rest replay sorted.
	if len(a) != 3 {
		t.Fatalf("trace replay produced %d arrivals, want 3", len(a))
	}
	want := []int64{m.Ticks(2e-6), m.Ticks(4e-6), m.Ticks(9e-6)}
	for i, w := range want {
		if a[i].Tick != w {
			t.Errorf("arrival %d at tick %d, want %d", i, a[i].Tick, w)
		}
	}
}

// TestRunBitIdentity pins the subsystem contract: same seed ⇒ identical
// arrival trace, admission decisions and percentile report; different
// seeds differ.
func TestRunBitIdentity(t *testing.T) {
	run := func(seed int64) *Report {
		e := testEngine(t)
		r, err := Run(e, [][]int{{0, 1}, {2, 3}}, testConfig(seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, seed := range []int64{3, 11} {
		a, b := run(seed), run(seed)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: two runs produced different reports", seed)
		}
		if a.Completed == 0 {
			t.Fatalf("seed %d: nothing completed", seed)
		}
		if a.Arrivals != a.Admitted+a.Dropped {
			t.Errorf("seed %d: %d arrivals != %d admitted + %d dropped", seed, a.Arrivals, a.Admitted, a.Dropped)
		}
		if a.Completed != a.Admitted {
			t.Errorf("seed %d: %d admitted but %d completed (drain lost queries)", seed, a.Admitted, a.Completed)
		}
	}
	if reflect.DeepEqual(run(3), run(11)) {
		t.Error("different seeds produced identical reports")
	}
}

// TestRunWorkerInvariance pins Workers=1 ≡ Workers=4 under -parallel.
func TestRunWorkerInvariance(t *testing.T) {
	run := func(workers int) *Report {
		e := testEngine(t)
		cfg := testConfig(9, 2)
		cfg.Parallel = true
		cfg.Workers = workers
		cfg.EpochTicks = 1 << 12
		r, err := Run(e, [][]int{{0, 1}, {2, 3}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Error("serve reports differ between Workers=1 and Workers=4")
	}
	if a.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

// TestMM1MeanWait checks the Poisson generator against queueing
// theory: one tenant, one single-core group, exponential service ⇒
// M/M/1, whose mean queueing delay is ρ/(1−ρ)·E[S]. The empirical
// mean wait must land within tolerance of the prediction computed
// from the measured service time and arrival rate.
func TestMM1MeanWait(t *testing.T) {
	e := testEngine(t)
	m := e.Machine()
	ticksPerSec := float64(m.Ticks(1))
	// One row costs Compute(10 cycles) = 160 ticks, so the exponential
	// 50-row mean gives E[S] ≈ 8000 ticks; offer ρ≈0.5 of that.
	estService := 50.0 * 10.0 * cachesim.TicksPerCycle
	rate := 0.5 / estService * ticksPerSec // arrivals per second for ρ≈0.5
	horizon := 3000.0 * estService * 2.0 / ticksPerSec

	cfg := Config{
		Seed:    17,
		Horizon: horizon,
		Tenants: []Tenant{{
			Name:     "mm1",
			Process:  Process{Kind: ProcPoisson, Rate: rate},
			QueueCap: 1 << 16,
			Mix:      []Workload{{Name: "exp", Weight: 1, Instances: alias(&expQuery{name: "exp", meanRows: 50}, 1)}},
		}},
	}
	r, err := Run(e, [][]int{{0}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Tenants[0]
	if tr.Dropped != 0 {
		t.Fatalf("M/M/1 run dropped %d queries; raise the queue cap", tr.Dropped)
	}
	if tr.Completed < 1000 {
		t.Fatalf("only %d completions; too few for a mean-wait check", tr.Completed)
	}
	lambda := float64(tr.Arrivals) / float64(r.HorizonTicks) // per tick
	rho := lambda * tr.MeanService
	if rho < 0.3 || rho > 0.7 {
		t.Fatalf("utilisation %.2f outside the calibrated band", rho)
	}
	theory := rho / (1 - rho) * tr.MeanService
	if diff := math.Abs(tr.MeanWait-theory) / theory; diff > 0.35 {
		t.Errorf("mean wait %.0f ticks vs M/M/1 prediction %.0f (ρ=%.2f): off by %.0f%%",
			tr.MeanWait, theory, rho, diff*100)
	}
}

func TestAdmissionDrops(t *testing.T) {
	e := testEngine(t)
	cfg := testConfig(21, 1)
	cfg.Tenants[0].QueueCap = 1
	cfg.Tenants[1].QueueCap = 1
	r, err := Run(e, [][]int{{0}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped == 0 {
		t.Error("cap-1 queues under 3e6 qps dropped nothing")
	}
	for _, tr := range r.Tenants {
		if tr.Arrivals != tr.Admitted+tr.Dropped {
			t.Errorf("tenant %s: %d arrivals != %d admitted + %d dropped", tr.Name, tr.Arrivals, tr.Admitted, tr.Dropped)
		}
		if tr.PeakDepth > 1 {
			t.Errorf("tenant %s: peak depth %d exceeds cap 1", tr.Name, tr.PeakDepth)
		}
	}
}

func TestTokenBucketLimitsRate(t *testing.T) {
	e := testEngine(t)
	cfg := testConfig(13, 1)
	// Bucket refills at a tenth of tenant 0's offered load.
	limit := cfg.Tenants[0].Process.Rate / 10
	cfg.Policy = &TokenBucket{RatePerSec: limit, Burst: 4}
	r, err := Run(e, [][]int{{0}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Tenants[0]
	maxAdmit := int64(limit*cfg.Horizon) + 4
	if tr.Admitted > maxAdmit {
		t.Errorf("token bucket admitted %d of %d, cap %d", tr.Admitted, tr.Arrivals, maxAdmit)
	}
	if tr.DropPolicy == 0 {
		t.Error("token bucket at 10% of offered load rejected nothing")
	}
}

func TestDisciplines(t *testing.T) {
	for _, disc := range []Discipline{DiscCLOS, DiscFIFO, DiscRR} {
		e := testEngine(t)
		cfg := testConfig(29, 1)
		cfg.Discipline = disc
		r, err := Run(e, [][]int{{0, 1}}, cfg)
		if err != nil {
			t.Fatalf("%v: %v", disc, err)
		}
		if r.Completed != r.Admitted {
			t.Errorf("%v: %d admitted, %d completed", disc, r.Admitted, r.Completed)
		}
	}
}
