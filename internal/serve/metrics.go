package serve

import (
	"sort"

	"cachepart/internal/engine"
)

// metrics: post-processes engine Completions plus the feed's admission
// accounting into the serving report. Everything is in virtual ticks;
// rates use the machine's tick rate so "QPS" means queries per
// simulated second. Latency is client-visible: completion tick minus
// the query's FIRST arrival tick, so time a client spent backing off
// between retry attempts counts against the SLO.

// TenantReport is one tenant's slice of the serving report.
type TenantReport struct {
	Name string
	// Arrivals counts first attempts (the offered load); Attempts adds
	// client retries. The accounting identity is Attempts == Completed
	// + Dropped.
	Arrivals int64
	Attempts int64
	Admitted int64
	// Dropped sums the per-reason attempt drops below: admission-policy
	// rejections, bounded-FIFO overflows, queueing-deadline expiries,
	// deliberate overload shedding, and circuit-breaker rejections.
	Dropped      int64
	DropPolicy   int64
	DropQueue    int64
	DropDeadline int64
	DropShed     int64
	DropBreaker  int64
	// Retries counts re-arrivals the client retry model scheduled;
	// Abandoned counts queries lost for good (final attempt dropped).
	Retries   int64
	Abandoned int64
	// BreakerTrips counts open transitions of the tenant's circuit
	// breaker; Probes its half-open probe admissions.
	BreakerTrips int64
	Probes       int64
	Completed    int64
	// Good counts completions within the tenant's TargetP99Seconds
	// (all completions when no target is set); GoodQPS is goodput per
	// simulated second and SLOAttainment is Good over Arrivals — a
	// query abandoned by overload control counts against the SLO.
	Good          int64
	GoodQPS       float64
	SLOAttainment float64
	// Polluter is the classifier's final verdict: true when any of the
	// tenant's workload kinds ended the run classified as LLC-polluting.
	Polluter bool
	// QPS is completed queries per simulated second of the arrival
	// horizon.
	QPS float64
	// Latency percentiles and means are client-visible (first arrival
	// to completion) in virtual ticks; Wait is the final attempt's
	// queueing delay, Service its execution time.
	P50         int64
	P99         int64
	P999        int64
	MeanLatency float64
	MeanWait    float64
	MeanService float64
	// Slowdown is MeanLatency over the tenant's calibrated isolated
	// service time (0 when no baseline was configured).
	Slowdown float64
	// PeakDepth and MeanDepth describe the tenant's queue over the run
	// (mean is time-weighted over [0, EndTick]).
	PeakDepth int
	MeanDepth float64
}

// Report is the full result of one serving run.
type Report struct {
	Seed         int64
	HorizonTicks int64
	// EndTick is the virtual time the last query completed (the run
	// drains past the arrival horizon).
	EndTick   int64
	Arrivals  int64
	Attempts  int64
	Admitted  int64
	Dropped   int64
	Retries   int64
	Abandoned int64
	Completed int64
	Good      int64
	QPS       float64
	GoodQPS   float64
	// SLOAttainment is aggregate Good over aggregate Arrivals.
	SLOAttainment float64
	// Aggregate latency percentiles over all completions, in ticks.
	P50         int64
	P99         int64
	P999        int64
	MeanLatency float64
	// Jain is Jain's fairness index over per-tenant slowdowns (or mean
	// latencies when no baselines are configured): 1.0 means every
	// tenant degrades equally, 1/n means one tenant absorbs all of it.
	Jain    float64
	Tenants []TenantReport
	Groups  []engine.GroupResult
}

// percentile returns the q-quantile (0<q≤1) of sorted by the
// nearest-rank method; 0 for an empty slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²) over positive
// entries.
func jain(xs []float64) float64 {
	var sum, sq float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += x
		sq += x * x
		n++
	}
	if n == 0 || sq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sq)
}

// buildReport folds completions and feed accounting into the Report.
func buildReport(cfg *Config, horizonTicks int64, ticksPerSec float64, f *feed, res *engine.OpenLoopResult) *Report {
	r := &Report{
		Seed:         cfg.Seed,
		HorizonTicks: horizonTicks,
		Tenants:      make([]TenantReport, len(cfg.Tenants)),
		Groups:       res.Groups,
	}
	horizonSec := float64(horizonTicks) / ticksPerSec

	targetTicks := make([]int64, len(cfg.Tenants))
	for ti := range cfg.Tenants {
		if s := cfg.Tenants[ti].SLO.TargetP99Seconds; s > 0 {
			targetTicks[ti] = int64(s * ticksPerSec)
		}
	}

	perTenant := make([][]int64, len(cfg.Tenants))
	var all []int64
	sumWait := make([]float64, len(cfg.Tenants))
	sumSvc := make([]float64, len(cfg.Tenants))
	good := make([]int64, len(cfg.Tenants))
	for _, c := range res.Completions {
		first := f.arrivals[c.Tag]
		t := first.Tenant
		lat := c.Done - first.Tick
		perTenant[t] = append(perTenant[t], lat)
		all = append(all, lat)
		sumWait[t] += float64(c.Wait())
		sumSvc[t] += float64(c.Service())
		if targetTicks[t] == 0 || lat <= targetTicks[t] {
			good[t]++
		}
		if c.Done > r.EndTick {
			r.EndTick = c.Done
		}
	}

	fair := make([]float64, 0, len(cfg.Tenants))
	for ti := range cfg.Tenants {
		t := &cfg.Tenants[ti]
		lat := perTenant[ti]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		tr := &r.Tenants[ti]
		tr.Name = t.Name
		tr.Arrivals = f.acct.arrivals[ti]
		tr.Attempts = f.acct.attempts[ti]
		tr.Admitted = f.acct.admitted[ti]
		tr.DropPolicy = f.acct.drops[DropPolicy][ti]
		tr.DropQueue = f.acct.drops[DropQueueFull][ti]
		tr.DropDeadline = f.acct.drops[DropDeadline][ti]
		tr.DropShed = f.acct.drops[DropShed][ti]
		tr.DropBreaker = f.acct.drops[DropBreaker][ti]
		tr.Dropped = tr.DropPolicy + tr.DropQueue + tr.DropDeadline + tr.DropShed + tr.DropBreaker
		tr.Retries = f.acct.retries[ti]
		tr.Abandoned = f.acct.abandoned[ti]
		tr.BreakerTrips = f.acct.trips[ti]
		tr.Probes = f.acct.probes[ti]
		tr.Completed = int64(len(lat))
		tr.Good = good[ti]
		tr.QPS = float64(tr.Completed) / horizonSec
		tr.GoodQPS = float64(tr.Good) / horizonSec
		if tr.Arrivals > 0 {
			tr.SLOAttainment = float64(tr.Good) / float64(tr.Arrivals)
		}
		for ki := range t.Mix {
			if f.tracker.polluter(ti, ki) {
				tr.Polluter = true
			}
		}
		tr.P50 = percentile(lat, 0.50)
		tr.P99 = percentile(lat, 0.99)
		tr.P999 = percentile(lat, 0.999)
		if n := float64(len(lat)); n > 0 {
			var sum float64
			for _, v := range lat {
				sum += float64(v)
			}
			tr.MeanLatency = sum / n
			tr.MeanWait = sumWait[ti] / n
			tr.MeanService = sumSvc[ti] / n
		}
		if t.BaselineTicks > 0 && tr.MeanLatency > 0 {
			tr.Slowdown = tr.MeanLatency / t.BaselineTicks
		}
		tr.PeakDepth = f.acct.peakDepth[ti]
		if end := f.acct.endTick; end > 0 {
			tr.MeanDepth = f.acct.depthSum[ti] / float64(end)
		}
		r.Arrivals += tr.Arrivals
		r.Attempts += tr.Attempts
		r.Admitted += tr.Admitted
		r.Dropped += tr.Dropped
		r.Retries += tr.Retries
		r.Abandoned += tr.Abandoned
		r.Completed += tr.Completed
		r.Good += tr.Good
		if tr.Slowdown > 0 {
			fair = append(fair, tr.Slowdown)
		} else if tr.MeanLatency > 0 {
			fair = append(fair, tr.MeanLatency)
		}
	}

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	r.P50 = percentile(all, 0.50)
	r.P99 = percentile(all, 0.99)
	r.P999 = percentile(all, 0.999)
	if n := float64(len(all)); n > 0 {
		var sum float64
		for _, v := range all {
			sum += float64(v)
		}
		r.MeanLatency = sum / n
	}
	r.QPS = float64(r.Completed) / horizonSec
	r.GoodQPS = float64(r.Good) / horizonSec
	if r.Arrivals > 0 {
		r.SLOAttainment = float64(r.Good) / float64(r.Arrivals)
	}
	r.Jain = jain(fair)
	return r
}
