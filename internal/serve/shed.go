package serve

import (
	"fmt"
	"math/rand"

	"cachepart/internal/engine"
)

// shed: overload-control load shedding. Under queue pressure the feed
// consults a ShedPolicy per arrival, before the admission policy, so a
// deliberate rejection (DropShed) is distinct from a policy refusal or
// a tail-drop. The polluter-first policy targets the cohort whose
// queries stream through the LLC — identified online from completion
// telemetry, the same signal internal/adapt's classifier reads from
// the MBM counters — so victims keep their tail latency while the
// polluting class absorbs the overload.

// ShedPolicy decides, per arrival, whether to deliberately reject a
// query under load. Shed is called once per arrival that survived the
// circuit breaker, in trace order; load is the aggregate queue fill
// fraction (Σ depth / Σ cap, in [0,1]) at the arrival tick, and
// polluter reports whether the arrival's (tenant, workload) is
// currently classified as an LLC polluter. Implementations draw any
// randomness from the rng seeded in Init, never package-global state.
type ShedPolicy interface {
	Name() string
	// Init is called once before each run with the tenant count and the
	// run seed, so a policy value can be reused across runs and still
	// replay bit-identically.
	Init(tenants int, seed int64)
	Shed(a Arrival, load float64, polluter bool) bool
}

// Shed-policy defaults: fair shedding engages at ShedThreshold queue
// fill; polluter-first sheds polluters from ShedThreshold and spreads
// to everyone at ShedFullThreshold.
const (
	DefaultShedThreshold     = 0.6
	DefaultShedFullThreshold = 0.9
)

// ShedNone never sheds (the PR-7 behaviour: the bounded queues and the
// admission policy are the only limiters).
type ShedNone struct{}

// Name implements ShedPolicy.
func (ShedNone) Name() string { return "none" }

// Init implements ShedPolicy.
func (ShedNone) Init(int, int64) {}

// Shed implements ShedPolicy.
func (ShedNone) Shed(Arrival, float64, bool) bool { return false }

// ShedFair sheds uniformly at random once aggregate queue fill crosses
// Threshold, with probability rising linearly to 1 at full queues —
// every tenant degrades alike, the baseline graceful-degradation
// policy.
type ShedFair struct {
	// Threshold is the queue-fill fraction where shedding engages; 0
	// uses DefaultShedThreshold.
	Threshold float64

	rng *rand.Rand
}

// Name implements ShedPolicy.
func (s *ShedFair) Name() string { return "fair" }

// Init implements ShedPolicy.
func (s *ShedFair) Init(tenants int, seed int64) {
	s.rng = rand.New(rand.NewSource(seed ^ shedRngSalt))
}

// Shed implements ShedPolicy.
func (s *ShedFair) Shed(a Arrival, load float64, polluter bool) bool {
	thr := s.Threshold
	if thr == 0 {
		thr = DefaultShedThreshold
	}
	if load < thr {
		return false
	}
	p := (load - thr) / (1 - thr)
	return s.rng.Float64() < p
}

// ShedPolluter sheds the polluting class first: arrivals classified as
// LLC polluters are rejected outright once queue fill crosses
// Threshold, and only past FullThreshold does it fall back to fair
// random shedding of everyone else. Under a 3× overload driven by the
// streaming cohort this keeps the cache-sensitive victims' tails
// intact — degradation by choice rather than by accident.
type ShedPolluter struct {
	// Threshold engages polluter shedding; 0 uses DefaultShedThreshold.
	Threshold float64
	// FullThreshold engages fair shedding of non-polluters; 0 uses
	// DefaultShedFullThreshold.
	FullThreshold float64

	rng *rand.Rand
}

// Name implements ShedPolicy.
func (s *ShedPolluter) Name() string { return "polluter" }

// Init implements ShedPolicy.
func (s *ShedPolluter) Init(tenants int, seed int64) {
	s.rng = rand.New(rand.NewSource(seed ^ shedRngSalt))
}

// Shed implements ShedPolicy.
func (s *ShedPolluter) Shed(a Arrival, load float64, polluter bool) bool {
	thr := s.Threshold
	if thr == 0 {
		thr = DefaultShedThreshold
	}
	full := s.FullThreshold
	if full == 0 {
		full = DefaultShedFullThreshold
	}
	if polluter && load >= thr {
		return true
	}
	if load < full {
		return false
	}
	p := (load - full) / (1 - full)
	return s.rng.Float64() < p
}

// shedRngSalt keys shed-policy rngs off the run seed, independent of
// the arrival, query and overload jitter streams.
const shedRngSalt = 0x73686564 // "shed"

// ParseShedPolicy maps a CLI flag value to a fresh policy with default
// thresholds.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "none":
		return ShedNone{}, nil
	case "fair":
		return &ShedFair{}, nil
	case "polluter":
		return &ShedPolluter{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown shed policy %q (want none, fair or polluter)", s)
	}
}

// DefaultPolluterBandwidthFraction mirrors internal/adapt's
// StreamingBandwidthFraction: a (tenant, workload) whose per-core DRAM
// rate sustains at least this fraction of the machine's aggregate
// bandwidth is classified as a polluter.
const DefaultPolluterBandwidthFraction = 0.035

// polluterEWMAAlpha smooths the per-(tenant, workload) rate estimate;
// high enough to follow a phase change within a few completions, low
// enough that one outlier query does not flip the class.
const polluterEWMAAlpha = 0.3

// polluterTracker classifies each (tenant, workload) as LLC-polluting
// from per-completion DRAM telemetry (Completion.MemBytes): an EWMA of
// the per-core bytes/second each kind sustains while executing,
// compared against a fraction of the machine's DRAM bandwidth — the
// completion-granular analogue of internal/adapt's MBM classifier.
// All updates happen in the engine's deterministic Observe order.
type polluterTracker struct {
	threshold   float64 // per-core bytes/sec bound
	ticksPerSec float64
	groupCores  []int
	// ewma[t][k] is the smoothed per-core rate of tenant t's kind k;
	// seen marks kinds with at least one completion.
	ewma [][]float64
	seen [][]bool
}

func newPolluterTracker(tenants []Tenant, groupCores []int, threshold, ticksPerSec float64) *polluterTracker {
	pt := &polluterTracker{
		threshold:   threshold,
		ticksPerSec: ticksPerSec,
		groupCores:  groupCores,
		ewma:        make([][]float64, len(tenants)),
		seen:        make([][]bool, len(tenants)),
	}
	for ti := range tenants {
		pt.ewma[ti] = make([]float64, len(tenants[ti].Mix))
		pt.seen[ti] = make([]bool, len(tenants[ti].Mix))
	}
	return pt
}

// observe folds one completion's telemetry into its kind's rate.
func (pt *polluterTracker) observe(tenant, kind int, c engine.Completion) {
	svc := c.Service()
	if svc <= 0 {
		return
	}
	cores := pt.groupCores[c.Group]
	rate := float64(c.MemBytes) / (float64(svc) / pt.ticksPerSec) / float64(cores)
	if !pt.seen[tenant][kind] {
		pt.ewma[tenant][kind] = rate
		pt.seen[tenant][kind] = true
		return
	}
	pt.ewma[tenant][kind] = polluterEWMAAlpha*rate + (1-polluterEWMAAlpha)*pt.ewma[tenant][kind]
}

// polluter reports whether the kind's smoothed rate crosses the bound.
func (pt *polluterTracker) polluter(tenant, kind int) bool {
	return pt.seen[tenant][kind] && pt.ewma[tenant][kind] >= pt.threshold
}
