package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/fault"
	"cachepart/internal/memory"
)

// scanKernel streams line-strided reads over a shared region — the
// serving-test stand-in for the paper's polluting scan.
type scanKernel struct {
	region memory.Region
	off    uint64
	rows   int
}

func (k *scanKernel) Step(ctx *exec.Ctx, budget int) (int, bool) {
	n := budget
	if n > k.rows {
		n = k.rows
	}
	for i := 0; i < n; i++ {
		ctx.Read(k.region.Addr(k.off))
		k.off += memory.LineSize
		if k.off >= k.region.Size {
			k.off = 0
		}
	}
	k.rows -= n
	return n, k.rows == 0
}

// streamQuery scans a region larger than the LLC, so its per-core DRAM
// rate classifies it as a polluter.
type streamQuery struct {
	name     string
	region   memory.Region
	meanRows float64
}

func (q *streamQuery) Name() string { return q.name }

func (q *streamQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	rows := int(rng.ExpFloat64() * q.meanRows)
	if rows < 1 {
		rows = 1
	}
	// Each execution scans a random window, so successive queries touch
	// fresh lines and the stream stays DRAM-bound instead of re-reading
	// a cached stretch.
	lines := q.region.Size / memory.LineSize
	start := uint64(rng.Int63n(int64(lines))) * memory.LineSize
	parts := engine.PartitionRows(rows, cores)
	ks := make([]exec.Kernel, 0, len(parts))
	for _, p := range parts {
		off := (start + uint64(p[0])*memory.LineSize) % q.region.Size
		ks = append(ks, &scanKernel{region: q.region, off: off, rows: p[1] - p[0]})
	}
	return []engine.Phase{{Name: "stream", CUID: core.Polluting, Kernels: ks, CountRows: true}}, nil
}

// overloadConfig is a two-tenant victim/polluter setup driven past the
// two-group capacity, with SLOs tight enough that overload control has
// work to do. mult scales both tenants' offered load.
func overloadConfig(e *engine.Engine, seed int64, groups int, mult float64) Config {
	llc := e.Machine().Config().LLC.Size
	sp := memory.NewSpace()
	region := sp.Alloc("stream", uint64(4*llc))
	return Config{
		Seed:    seed,
		Horizon: 2e-5,
		Tenants: []Tenant{
			{
				Name:    "victim",
				Process: Process{Kind: ProcPoisson, Rate: 2e6 * mult},
				Mix: []Workload{{Name: "point", Weight: 1, Class: int(core.Sensitive),
					Instances: alias(&expQuery{name: "point", meanRows: 60}, groups)}},
				QueueCap: 16,
				SLO:      SLO{DeadlineSeconds: 4e-6, TargetP99Seconds: 3e-6},
			},
			{
				Name:    "polluter",
				Process: Process{Kind: ProcPoisson, Rate: 1.5e6 * mult},
				Mix: []Workload{{Name: "stream", Weight: 1, Class: int(core.Polluting),
					Instances: alias(&streamQuery{name: "stream", region: region, meanRows: 300}, groups)}},
				QueueCap: 16,
				SLO:      SLO{DeadlineSeconds: 8e-6, TargetP99Seconds: 6e-6},
			},
		},
	}
}

// checkAccounting asserts the per-tenant attempt identities:
// attempts == arrivals + retries and attempts == completed + Σ drops.
func checkAccounting(t *testing.T, rep *Report) {
	t.Helper()
	for _, tr := range rep.Tenants {
		if tr.Attempts != tr.Arrivals+tr.Retries {
			t.Errorf("tenant %s: attempts %d != arrivals %d + retries %d",
				tr.Name, tr.Attempts, tr.Arrivals, tr.Retries)
		}
		drops := tr.DropPolicy + tr.DropQueue + tr.DropDeadline + tr.DropShed + tr.DropBreaker
		if tr.Dropped != drops {
			t.Errorf("tenant %s: Dropped %d != per-reason sum %d", tr.Name, tr.Dropped, drops)
		}
		if tr.Attempts != tr.Completed+tr.Dropped {
			t.Errorf("tenant %s: attempts %d != completed %d + dropped %d",
				tr.Name, tr.Attempts, tr.Completed, tr.Dropped)
		}
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	bk := newTenantBreaker(Breaker{Window: 4, TripFraction: 0.5, BackoffSeconds: 1e-6}, 100, 1e9)
	jit := func() float64 { return 1.0 }
	arrival := func(seq, tick int64) Arrival { return Arrival{Seq: seq, Tick: tick} }

	// Trip: fill the window with violations.
	for i := int64(0); i < 4; i++ {
		bk.observe(i, 500, 1000+i, jit)
	}
	if bk.state != bkOpen {
		t.Fatalf("breaker not open after sustained violation (state %d)", bk.state)
	}
	if bk.trips != 1 {
		t.Fatalf("trips = %d, want 1", bk.trips)
	}
	// Open: arrivals before openUntil are rejected.
	if ok, _ := bk.admit(arrival(10, bk.openUntil-1)); ok {
		t.Fatal("open breaker admitted an arrival before the backoff elapsed")
	}
	// Half-open: the first arrival past the backoff is the probe —
	// and exactly one is admitted until it resolves.
	ok, probe := bk.admit(arrival(11, bk.openUntil))
	if !ok || !probe {
		t.Fatalf("arrival past backoff: admit=%v probe=%v, want true/true", ok, probe)
	}
	if bk.probes != 1 {
		t.Fatalf("probes = %d, want 1", bk.probes)
	}
	for seq := int64(12); seq < 15; seq++ {
		if ok, _ := bk.admit(arrival(seq, bk.openUntil+seq)); ok {
			t.Fatalf("half-open breaker admitted a second query (seq %d)", seq)
		}
	}
	// Probe violates → reopen with doubled backoff.
	prevBackoff := bk.backoffTicks
	bk.observe(11, 500, 5000, jit)
	if bk.state != bkOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if bk.backoffTicks != 2*prevBackoff {
		t.Fatalf("backoff %d after failed probe, want doubled %d", bk.backoffTicks, 2*prevBackoff)
	}
	// Next probe succeeds → closed, backoff reset.
	ok, probe = bk.admit(arrival(20, bk.openUntil))
	if !ok || !probe {
		t.Fatal("second probe not admitted")
	}
	bk.observe(20, 50, bk.openUntil+60, jit)
	if bk.state != bkClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if bk.backoffTicks != bk.baseTicks {
		t.Fatalf("backoff %d after close, want base %d", bk.backoffTicks, bk.baseTicks)
	}
	// A dropped probe also reopens.
	for i := int64(30); i < 34; i++ {
		bk.observe(i, 500, 6000+i, jit)
	}
	ok, _ = bk.admit(arrival(40, bk.openUntil))
	if !ok {
		t.Fatal("third probe not admitted")
	}
	bk.probeDropped(40, bk.openUntil+10, jit)
	if bk.state != bkOpen {
		t.Fatal("dropped probe did not reopen the breaker")
	}
}

func TestDeadlineExpiryAccounting(t *testing.T) {
	e := testEngine(t)
	cfg := overloadConfig(e, 3, 2, 3.0)
	rep, err := Run(e, [][]int{{0, 1}, {2, 3}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	var deadline int64
	for _, tr := range rep.Tenants {
		deadline += tr.DropDeadline
	}
	if deadline == 0 {
		t.Error("3x overload with tight deadlines produced no deadline drops")
	}
	if rep.Completed == 0 {
		t.Error("no completions")
	}
}

func TestRetryBudget(t *testing.T) {
	e := testEngine(t)
	cfg := overloadConfig(e, 5, 2, 3.0)
	cfg.Retry = Retry{MaxAttempts: 4, BackoffSeconds: 1e-6, BudgetFraction: 0.2}
	rep, err := Run(e, [][]int{{0, 1}, {2, 3}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Retries == 0 {
		t.Fatal("overloaded run with retries enabled scheduled none")
	}
	for _, tr := range rep.Tenants {
		if budget := int64(0.2 * float64(tr.Arrivals)); tr.Retries > budget {
			t.Errorf("tenant %s: %d retries exceed budget %d (arrivals %d)",
				tr.Name, tr.Retries, budget, tr.Arrivals)
		}
	}
	if rep.Abandoned == 0 {
		t.Error("budgeted retries under sustained overload abandoned nothing")
	}
}

func TestShedPolicies(t *testing.T) {
	e := testEngine(t)
	groups := [][]int{{0, 1}, {2, 3}}

	base := overloadConfig(e, 7, 2, 3.0)
	rep, err := Run(e, groups, base)
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Tenants[0].DropShed + rep.Tenants[1].DropShed; n != 0 {
		t.Fatalf("ShedNone shed %d queries", n)
	}
	if !rep.Tenants[1].Polluter {
		t.Fatal("streaming tenant not classified as polluter")
	}
	if rep.Tenants[0].Polluter {
		t.Fatal("compute tenant classified as polluter")
	}

	fair := overloadConfig(e, 7, 2, 3.0)
	fair.Shed = &ShedFair{}
	frep, err := Run(e, groups, fair)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, frep)
	if frep.Tenants[0].DropShed+frep.Tenants[1].DropShed == 0 {
		t.Error("fair shedding under 3x overload shed nothing")
	}

	pol := overloadConfig(e, 7, 2, 3.0)
	pol.Shed = &ShedPolluter{}
	prep, err := Run(e, groups, pol)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, prep)
	if prep.Tenants[1].DropShed == 0 {
		t.Error("polluter-first shedding dropped no polluter queries")
	}
	// The polluting tenant must absorb disproportionally more of the
	// shed than the victim.
	if prep.Tenants[0].DropShed >= prep.Tenants[1].DropShed {
		t.Errorf("victim shed %d >= polluter shed %d under polluter-first",
			prep.Tenants[0].DropShed, prep.Tenants[1].DropShed)
	}
}

// fullOverloadConfig layers every overload-control mechanism plus
// serving-plane chaos on the victim/polluter setup.
func fullOverloadConfig(e *engine.Engine, seed int64, groups int) Config {
	cfg := overloadConfig(e, seed, groups, 3.0)
	cfg.Shed = &ShedPolluter{}
	cfg.Retry = Retry{MaxAttempts: 3, BackoffSeconds: 1e-6, BudgetFraction: 0.3}
	cfg.Breaker = Breaker{Window: 16, TripFraction: 0.5, BackoffSeconds: 2e-6}
	cfg.Faults = &fault.ServeConfig{Seed: seed * 31, Bursts: 1, BurstFactor: 3, Stalls: 1}
	return cfg
}

func TestOverloadBitIdentity(t *testing.T) {
	for _, seed := range []int64{2, 11, 23} {
		e := testEngine(t)
		a, err := Run(e, [][]int{{0, 1}, {2, 3}}, fullOverloadConfig(e, seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(e, [][]int{{0, 1}, {2, 3}}, fullOverloadConfig(e, seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: identical overload configs produced different reports", seed)
		}
		checkAccounting(t, a)
	}
	e := testEngine(t)
	a, _ := Run(e, [][]int{{0, 1}, {2, 3}}, fullOverloadConfig(e, 2, 2))
	b, _ := Run(e, [][]int{{0, 1}, {2, 3}}, fullOverloadConfig(e, 3, 2))
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical overload reports")
	}
}

func TestOverloadWorkerInvariance(t *testing.T) {
	var want *Report
	for _, workers := range []int{1, 4} {
		e := testEngine(t)
		cfg := fullOverloadConfig(e, 13, 2)
		cfg.Parallel = true
		cfg.Workers = workers
		cfg.EpochTicks = 1 << 12
		rep, err := Run(e, [][]int{{0, 1}, {2, 3}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rep
			continue
		}
		if !reflect.DeepEqual(want, rep) {
			t.Errorf("workers=%d: overload report differs from workers=1", workers)
		}
	}
}

func TestBurstFaultSuperposition(t *testing.T) {
	m := testEngine(t).Machine()
	cfg := overloadConfig(testEngine(t), 9, 2, 1.0)
	base, err := GenArrivals(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Stalls alone leave the trace untouched.
	cfg.Faults = &fault.ServeConfig{Seed: 77, Stalls: 2}
	stalled, err := GenArrivals(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, stalled) {
		t.Error("stall-only faults changed the arrival trace")
	}

	// Bursts inject extra arrivals without disturbing the base stream:
	// the base trace is a subsequence of the burst trace.
	cfg.Faults = &fault.ServeConfig{Seed: 77, Bursts: 2, BurstFactor: 4}
	burst, err := GenArrivals(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) <= len(base) {
		t.Fatalf("burst trace has %d arrivals, base %d — no surge injected", len(burst), len(base))
	}
	i := 0
	for _, a := range burst {
		if i < len(base) && a.Tick == base[i].Tick && a.Tenant == base[i].Tenant && a.Kind == base[i].Kind {
			i++
		}
	}
	if i != len(base) {
		t.Errorf("base trace is not a subsequence of the burst trace (%d/%d matched)", i, len(base))
	}
}
