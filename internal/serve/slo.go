package serve

import (
	"fmt"
	"math/rand"
)

// slo: per-tenant service-level objectives and the overload-control
// state machines that enforce them — virtual-time deadline expiry,
// per-tenant circuit breakers, and the deterministic client retry
// model. Every random quantity (backoff jitter) is drawn from the
// feed's seeded overload rng at deterministic event points inside the
// virtual-time loop, so the whole control layer replays bit-
// identically per (seed, fault-seed). DESIGN.md §15 documents the
// model.

// SLO is one tenant's service-level objective, in simulated seconds.
// The zero value disables both mechanisms for the tenant.
type SLO struct {
	// DeadlineSeconds is the client's end-to-end timeout: a query still
	// queued this long after its (first) arrival is dropped with
	// DropDeadline at the moment the expiry is observed, and the
	// client's retry model takes over. 0 means queries never expire.
	DeadlineSeconds float64
	// TargetP99Seconds is the tenant's tail-latency target, the
	// circuit breaker's per-completion violation bound. 0 exempts the
	// tenant from breaker control.
	TargetP99Seconds float64
}

// Retry models the client population's reaction to failure: a dropped
// or timed-out query re-enters the arrival stream after a seeded
// exponential backoff, so retry storms are simulated rather than
// assumed away. The zero value disables retries (PR-7 behaviour).
type Retry struct {
	// MaxAttempts is the total number of tries per query including the
	// first; 0 or 1 disables retries.
	MaxAttempts int
	// BackoffSeconds is the base client backoff before the first
	// retry; it doubles per subsequent attempt, scaled by a seeded
	// jitter factor in [0.5, 1.5). 0 uses DefaultRetryBackoffSeconds.
	BackoffSeconds float64
	// BudgetFraction caps each tenant's cumulative retries at this
	// fraction of its cumulative first arrivals (the classic client
	// retry budget: a failing service sees at most 1+budget times its
	// offered load). 0 leaves the budget unlimited.
	BudgetFraction float64
}

// DefaultRetryBackoffSeconds is the base client backoff when
// Retry.BackoffSeconds is 0: a few mean service times at serving
// scale, long enough that retries land after transient queue spikes.
const DefaultRetryBackoffSeconds = 50e-6

func (r Retry) enabled() bool { return r.MaxAttempts > 1 }

func (r Retry) validate() error {
	if r.MaxAttempts < 0 {
		return fmt.Errorf("serve: retry attempts %d must be >= 0", r.MaxAttempts)
	}
	if r.BackoffSeconds < 0 {
		return fmt.Errorf("serve: retry backoff %v must be >= 0", r.BackoffSeconds)
	}
	if r.BudgetFraction < 0 {
		return fmt.Errorf("serve: retry budget %v must be >= 0", r.BudgetFraction)
	}
	return nil
}

// Breaker configures the per-tenant circuit breakers. A breaker trips
// when, over a sliding window of recent completions, the share
// violating the tenant's TargetP99Seconds reaches TripFraction; it
// then rejects the tenant's arrivals for a backed-off virtual-time
// interval, admits exactly one half-open probe, and closes again only
// if the probe meets the SLO. The zero value disables breakers.
type Breaker struct {
	// Window is the sliding completion window the violation share is
	// computed over; 0 disables breakers entirely.
	Window int
	// TripFraction is the violating share of the window that trips;
	// 0 uses DefaultBreakerTripFraction.
	TripFraction float64
	// BackoffSeconds is the initial open interval; it doubles on each
	// failed half-open probe, scaled by a seeded jitter factor in
	// [0.5, 1.5). 0 uses DefaultBreakerBackoffSeconds.
	BackoffSeconds float64
}

// Breaker defaults: half the window violating trips, and the first
// open interval spans a few control epochs of simulated time.
const (
	DefaultBreakerTripFraction   = 0.5
	DefaultBreakerBackoffSeconds = 200e-6
)

func (b Breaker) enabled() bool { return b.Window > 0 }

func (b Breaker) validate() error {
	if b.Window < 0 {
		return fmt.Errorf("serve: breaker window %d must be >= 0", b.Window)
	}
	if b.TripFraction < 0 || b.TripFraction > 1 {
		return fmt.Errorf("serve: breaker trip fraction %v out of [0,1]", b.TripFraction)
	}
	if b.BackoffSeconds < 0 {
		return fmt.Errorf("serve: breaker backoff %v must be >= 0", b.BackoffSeconds)
	}
	return nil
}

// breakerState enumerates the circuit-breaker state machine.
type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

// tenantBreaker is one tenant's breaker. All transitions happen at
// deterministic virtual-time events (arrival absorption and completion
// observation on the coordinator), so the state sequence is a pure
// function of the trace.
type tenantBreaker struct {
	// targetTicks is the per-completion violation bound; 0 disables
	// this tenant's breaker.
	targetTicks int64
	window      []bool
	idx, filled int
	violations  int
	tripAt      int // violations threshold, ceil(TripFraction·Window)

	state     breakerState
	openUntil int64
	// backoffTicks is the current open interval; baseTicks the initial
	// one it resets to after a successful probe.
	backoffTicks int64
	baseTicks    int64
	// probeSeq is the Seq of the outstanding half-open probe, -1 when
	// none is in flight.
	probeSeq int64

	trips  int64
	probes int64
}

func newTenantBreaker(cfg Breaker, targetTicks int64, ticksPerSec float64) tenantBreaker {
	trip := cfg.TripFraction
	if trip == 0 {
		trip = DefaultBreakerTripFraction
	}
	backoff := cfg.BackoffSeconds
	if backoff == 0 {
		backoff = DefaultBreakerBackoffSeconds
	}
	base := int64(backoff * ticksPerSec)
	if base < 1 {
		base = 1
	}
	tripAt := int(trip*float64(cfg.Window) + 0.9999)
	if tripAt < 1 {
		tripAt = 1
	}
	return tenantBreaker{
		targetTicks:  targetTicks,
		window:       make([]bool, cfg.Window),
		tripAt:       tripAt,
		backoffTicks: base,
		baseTicks:    base,
		probeSeq:     -1,
	}
}

func (b *tenantBreaker) enabled() bool { return b.targetTicks > 0 && len(b.window) > 0 }

// admit decides one arrival's fate: closed admits, open rejects until
// the backoff elapses, and the first arrival at or past openUntil
// becomes the half-open probe — exactly one is in flight at a time.
func (b *tenantBreaker) admit(a Arrival) (ok, probe bool) {
	if !b.enabled() {
		return true, false
	}
	switch b.state {
	case bkOpen:
		if a.Tick < b.openUntil {
			return false, false
		}
		b.state = bkHalfOpen
		b.probeSeq = a.Seq
		b.probes++
		return true, true
	case bkHalfOpen:
		return false, false
	default:
		return true, false
	}
}

// jitterFn scales a backoff by a seeded factor in [0.5, 1.5).
type jitterFn func() float64

// observe feeds one completion's client latency into the window (or
// resolves the half-open probe). now is the completion tick; jitter
// draws the seeded backoff factor when the breaker (re)opens.
func (b *tenantBreaker) observe(seq, latency, now int64, jitter jitterFn) {
	if !b.enabled() {
		return
	}
	violated := latency > b.targetTicks
	if b.state == bkHalfOpen && seq == b.probeSeq {
		b.probeSeq = -1
		if violated {
			b.reopen(now, jitter)
		} else {
			b.close()
		}
		return
	}
	if b.state != bkClosed {
		// Stragglers admitted before the trip resolve while open; the
		// probe alone decides the next transition.
		return
	}
	if b.window[b.idx] {
		b.violations--
	}
	b.window[b.idx] = violated
	if violated {
		b.violations++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	if b.filled == len(b.window) && b.violations >= b.tripAt {
		b.trip(now, jitter)
	}
}

// probeDropped handles a half-open probe that never completed (policy,
// queue or deadline drop): the probe failed, so the breaker reopens
// with a doubled backoff.
func (b *tenantBreaker) probeDropped(seq, now int64, jitter jitterFn) {
	if b.state == bkHalfOpen && seq == b.probeSeq {
		b.probeSeq = -1
		b.reopen(now, jitter)
	}
}

func (b *tenantBreaker) trip(now int64, jitter jitterFn) {
	b.state = bkOpen
	b.openUntil = now + int64(float64(b.backoffTicks)*jitter())
	b.trips++
	b.resetWindow()
}

// reopen doubles the backoff and opens again — the half-open probe
// (or its drop) proved the tenant still cannot meet its SLO.
func (b *tenantBreaker) reopen(now int64, jitter jitterFn) {
	b.backoffTicks *= 2
	b.state = bkOpen
	b.openUntil = now + int64(float64(b.backoffTicks)*jitter())
	b.trips++
}

// close resets the breaker after a successful probe.
func (b *tenantBreaker) close() {
	b.state = bkClosed
	b.backoffTicks = b.baseTicks
	b.resetWindow()
}

func (b *tenantBreaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.violations = 0, 0, 0
}

// retryHeap is a min-heap of pending client re-arrivals ordered by
// (Tick, Seq, Attempt) — a total order, so pops are deterministic.
type retryHeap []Arrival

func retryLess(a, b Arrival) bool {
	if a.Tick != b.Tick {
		return a.Tick < b.Tick
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Attempt < b.Attempt
}

func (h *retryHeap) push(a Arrival) {
	*h = append(*h, a)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !retryLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *retryHeap) pop() Arrival {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && retryLess((*h)[l], (*h)[m]) {
			m = l
		}
		if r < n && retryLess((*h)[r], (*h)[m]) {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
	}
	return top
}

// olRngSalt keys the overload rng off the run seed so the jitter
// stream is independent of the arrival and per-query streams.
const olRngSalt = 0x6f766c64 // "ovld"

func newOverloadRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ olRngSalt))
}
