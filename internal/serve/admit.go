package serve

// admit: the admission front end. Every arrival passes through its
// tenant's admission policy at its arrival tick, in trace order;
// rejected or overflowing queries are counted as drops, never silently
// lost. Policies are deterministic state machines over virtual time —
// no randomised early drop, so admission decisions replay exactly.

// AdmitPolicy decides, per arrival, whether a query may enter its
// tenant's queue. Admit is called exactly once per arrival in global
// trace order; depth and cap describe the tenant queue at that tick
// (a true return with depth == cap still tail-drops, and is counted
// against the queue rather than the policy).
type AdmitPolicy interface {
	Name() string
	// Init is called once before the run with the tenant count and the
	// virtual-tick rate, so stateful policies can size their state.
	Init(tenants int, ticksPerSec float64)
	Admit(a Arrival, depth, cap int) bool
}

// TailDrop admits everything; the bounded queue is the only limiter.
type TailDrop struct{}

// Name implements AdmitPolicy.
func (TailDrop) Name() string { return "taildrop" }

// Init implements AdmitPolicy.
func (TailDrop) Init(int, float64) {}

// Admit implements AdmitPolicy.
func (TailDrop) Admit(Arrival, int, int) bool { return true }

// TokenBucket rate-limits each tenant with a classic token bucket
// replenished in virtual time: RatePerSec tokens per simulated second
// up to Burst, one token per admitted query. Refill is computed from
// tick deltas, so the decision sequence is a pure function of the
// arrival trace.
type TokenBucket struct {
	RatePerSec float64
	Burst      float64

	perTick float64
	state   []bucket
}

type bucket struct {
	tokens float64
	last   int64
}

// Name implements AdmitPolicy.
func (tb *TokenBucket) Name() string { return "tokenbucket" }

// Init implements AdmitPolicy.
func (tb *TokenBucket) Init(tenants int, ticksPerSec float64) {
	tb.perTick = tb.RatePerSec / ticksPerSec
	tb.state = make([]bucket, tenants)
	for i := range tb.state {
		tb.state[i].tokens = tb.Burst
	}
}

// Admit implements AdmitPolicy.
func (tb *TokenBucket) Admit(a Arrival, depth, cap int) bool {
	b := &tb.state[a.Tenant]
	b.tokens += float64(a.Tick-b.last) * tb.perTick
	if b.tokens > tb.Burst {
		b.tokens = tb.Burst
	}
	b.last = a.Tick
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// DropReason classifies a rejected arrival. Every dropped attempt is
// counted under exactly one reason — deadline expiry and breaker
// rejection are distinct reasons, never lumped into tail-drop — so the
// report's accounting identity attempts == completed + Σ drops holds
// per tenant.
type DropReason int

const (
	// DropPolicy: the admission policy refused the query.
	DropPolicy DropReason = iota
	// DropQueueFull: the tenant's bounded FIFO was at capacity.
	DropQueueFull
	// DropDeadline: the query expired in queue past its tenant's SLO
	// deadline before a dispatch group picked it up.
	DropDeadline
	// DropShed: the overload-control shedding policy rejected the
	// arrival under queue pressure.
	DropShed
	// DropBreaker: the tenant's circuit breaker was open (or half-open
	// with its probe outstanding).
	DropBreaker

	numDropReasons
)

// String names the reason for reports and CLI output.
func (r DropReason) String() string {
	switch r {
	case DropPolicy:
		return "policy"
	case DropQueueFull:
		return "queue-full"
	case DropDeadline:
		return "deadline"
	case DropShed:
		return "shed"
	case DropBreaker:
		return "breaker"
	default:
		return "unknown"
	}
}
