package serve

import (
	"fmt"

	"cachepart/internal/engine"
)

// Tenant is one cohort of users sharing an arrival process, a query
// mix, and a bounded admission queue.
type Tenant struct {
	Name    string
	Process Process
	// Mix lists the tenant's query kinds with relative weights; each
	// arrival draws one kind from the mix.
	Mix []Workload
	// QueueCap bounds the tenant's FIFO; 0 uses DefaultQueueCap.
	QueueCap int
	// SLO is the tenant's service-level objective: the queueing deadline
	// and the tail-latency target overload control enforces. The zero
	// value opts the tenant out of deadline expiry and breaker control.
	SLO SLO
	// BaselineTicks is the tenant's isolated mixture-mean service time
	// (from calibration), the denominator of the slowdown metric; 0
	// leaves slowdown unreported.
	BaselineTicks float64
}

// DefaultQueueCap bounds a tenant queue when Tenant.QueueCap is 0.
const DefaultQueueCap = 64

func (t *Tenant) queueCap() int {
	if t.QueueCap > 0 {
		return t.QueueCap
	}
	return DefaultQueueCap
}

// Workload is one query kind in a tenant's mix.
type Workload struct {
	Name   string
	Weight int
	// Instances holds one engine.Query per core group. Queries that
	// carry per-execution scratch state (aggregation tables, join bit
	// vectors) must not run concurrently on two groups, so each group
	// gets its own instance; stateless queries may alias one value
	// across all slots.
	Instances []engine.Query
	// Class is the workload's CLOS affinity key for DiscCLOS: queries
	// with equal Class share a cache allocation, so dispatching them
	// back to back on one group elides the mask reprogramming cost.
	// The value is opaque to the dispatcher; callers typically use the
	// dominant core.CUID of the query's phases.
	Class int
}

// validate checks a configuration's tenants against the group count.
func validateTenants(tenants []Tenant, groups int) error {
	if len(tenants) == 0 {
		return fmt.Errorf("serve: no tenants")
	}
	for ti := range tenants {
		t := &tenants[ti]
		if len(t.Mix) == 0 {
			return fmt.Errorf("serve: tenant %q has no workloads", t.Name)
		}
		for wi := range t.Mix {
			w := &t.Mix[wi]
			if len(w.Instances) != groups {
				return fmt.Errorf("serve: tenant %q workload %q has %d instances for %d groups",
					t.Name, w.Name, len(w.Instances), groups)
			}
			for _, q := range w.Instances {
				if q == nil {
					return fmt.Errorf("serve: tenant %q workload %q has a nil instance", t.Name, w.Name)
				}
			}
		}
	}
	return nil
}
