package cat

import (
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	cases := []struct {
		ways int
		want WayMask
	}{
		{0, 0},
		{1, 0x1},
		{2, 0x3},
		{12, 0xfff},
		{20, 0xfffff},
		{32, 0xffffffff},
		{40, 0xffffffff},
	}
	for _, c := range cases {
		if got := FullMask(c.ways); got != c.want {
			t.Errorf("FullMask(%d) = %v, want %v", c.ways, got, c.want)
		}
	}
}

func TestPortionMask(t *testing.T) {
	// The paper's scheme on a 20-way LLC: 10% -> 0x3 (2 ways),
	// 60% -> 0xfff (12 ways), 100% -> 0xfffff.
	cases := []struct {
		frac float64
		want WayMask
	}{
		{0.10, 0x3},
		{0.60, 0xfff},
		{1.00, 0xfffff},
		{0.0, 0x1},     // clamped to at least one way
		{-1.0, 0x1},    // clamped
		{2.0, 0xfffff}, // clamped to full
	}
	for _, c := range cases {
		if got := PortionMask(20, c.frac); got != c.want {
			t.Errorf("PortionMask(20, %v) = %v, want %v", c.frac, got, c.want)
		}
	}
}

func TestWayMaskContiguous(t *testing.T) {
	for _, m := range []WayMask{0x1, 0x3, 0x6, 0xff0, 0xfffff} {
		if !m.Contiguous() {
			t.Errorf("%v should be contiguous", m)
		}
	}
	for _, m := range []WayMask{0, 0x5, 0x9, 0xf0f} {
		if m.Contiguous() {
			t.Errorf("%v should not be contiguous", m)
		}
	}
}

func TestWayMaskString(t *testing.T) {
	if got := WayMask(0x3).String(); got != "0x3" {
		t.Errorf("String = %q, want 0x3", got)
	}
	if got := WayMask(0xfffff).String(); got != "0xfffff" {
		t.Errorf("String = %q, want 0xfffff", got)
	}
}

func TestNewRegistersValidation(t *testing.T) {
	for _, c := range []struct{ cores, ways, clos int }{
		{0, 20, 16}, {-1, 20, 16}, {22, 0, 16}, {22, 33, 16}, {22, 20, 0},
	} {
		if _, err := NewRegisters(c.cores, c.ways, c.clos); err == nil {
			t.Errorf("NewRegisters(%d,%d,%d) should fail", c.cores, c.ways, c.clos)
		}
	}
}

func TestRegistersResetState(t *testing.T) {
	r, err := NewRegisters(22, 20, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCLOS() != 16 || r.NumWays() != 20 || r.NumCores() != 22 {
		t.Fatalf("geometry mismatch: %d CLOS, %d ways, %d cores",
			r.NumCLOS(), r.NumWays(), r.NumCores())
	}
	for clos := 0; clos < 16; clos++ {
		if r.Mask(clos) != 0xfffff {
			t.Errorf("CLOS %d not initialised to full mask: %v", clos, r.Mask(clos))
		}
	}
	for core := 0; core < 22; core++ {
		if r.CLOSOf(core) != 0 {
			t.Errorf("core %d not in CLOS 0", core)
		}
		if r.MaskOf(core) != 0xfffff {
			t.Errorf("core %d effective mask %v, want full", core, r.MaskOf(core))
		}
	}
}

func TestSetMaskRejectsInvalid(t *testing.T) {
	r, _ := NewRegisters(4, 20, 4)
	cases := []struct {
		clos int
		mask WayMask
	}{
		{-1, 0x3},
		{4, 0x3},
		{1, 0},        // empty
		{1, 0x5},      // not contiguous
		{1, 0x1fffff}, // beyond 20 ways
	}
	for _, c := range cases {
		if err := r.SetMask(c.clos, c.mask); err == nil {
			t.Errorf("SetMask(%d, %v) should fail", c.clos, c.mask)
		}
	}
}

func TestAssociateAndEffectiveMask(t *testing.T) {
	r, _ := NewRegisters(4, 20, 4)
	if err := r.SetMask(1, 0x3); err != nil {
		t.Fatal(err)
	}
	if err := r.Associate(2, 1); err != nil {
		t.Fatal(err)
	}
	if got := r.MaskOf(2); got != 0x3 {
		t.Errorf("core 2 mask = %v, want 0x3", got)
	}
	if got := r.MaskOf(0); got != 0xfffff {
		t.Errorf("core 0 mask = %v, want full", got)
	}
	if err := r.Associate(5, 1); err == nil {
		t.Error("Associate out-of-range core should fail")
	}
	if err := r.Associate(1, 9); err == nil {
		t.Error("Associate out-of-range CLOS should fail")
	}
}

func TestWritesCounter(t *testing.T) {
	r, _ := NewRegisters(4, 20, 4)
	before := r.Writes()
	_ = r.SetMask(1, 0x3)
	_ = r.Associate(0, 1)
	if got := r.Writes() - before; got != 2 {
		t.Errorf("Writes delta = %d, want 2", got)
	}
}

func TestPortionMaskProperties(t *testing.T) {
	// Every portion mask is non-empty, contiguous, and within the way
	// count; more fraction never means fewer ways.
	f := func(ways8 uint8, fracRaw uint16) bool {
		ways := int(ways8%32) + 1
		frac := float64(fracRaw) / 65535
		m := PortionMask(ways, frac)
		if m == 0 || !m.Contiguous() || m&^FullMask(ways) != 0 {
			return false
		}
		m2 := PortionMask(ways, frac/2)
		return m2.Ways() <= m.Ways()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
