// Package cat models Intel Cache Allocation Technology (CAT) as exposed
// by the processor: a small table of classes of service (CLOS), each
// holding a capacity bitmask over the ways of the last-level cache, and
// a per-logical-core association to one CLOS.
//
// The model mirrors the semantics described in the paper (Section V-A):
// setting bit i of a core's mask allows that core to evict (fill into)
// the i-th portion of the LLC; clearing it forbids eviction from that
// portion. Hits are unrestricted. Masks must be non-empty and
// contiguous, as required by the hardware.
package cat

import (
	"fmt"
	"math/bits"
)

// WayMask is a capacity bitmask over LLC ways. Bit i set means the
// associated cores may fill into way i.
type WayMask uint32

// FullMask returns the mask with the lowest ways bits set, i.e. access
// to the entire cache.
func FullMask(ways int) WayMask {
	if ways <= 0 {
		return 0
	}
	if ways >= 32 {
		return ^WayMask(0)
	}
	return WayMask(1)<<uint(ways) - 1
}

// PortionMask returns a contiguous mask covering approximately the
// given fraction of a cache with the given number of ways, anchored at
// way 0. The mask always contains at least one way. fraction values
// outside (0, 1] are clamped.
func PortionMask(ways int, fraction float64) WayMask {
	if fraction >= 1 {
		return FullMask(ways)
	}
	n := int(fraction*float64(ways) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > ways {
		n = ways
	}
	return FullMask(n)
}

// Ways reports the number of ways the mask grants.
func (m WayMask) Ways() int { return bits.OnesCount32(uint32(m)) }

// Contiguous reports whether the set bits of the mask form one run,
// which the hardware requires.
func (m WayMask) Contiguous() bool {
	if m == 0 {
		return false
	}
	v := uint32(m) >> bits.TrailingZeros32(uint32(m))
	return v&(v+1) == 0
}

// String formats the mask in the 0x form used throughout the paper
// (e.g. "0x3", "0xfffff").
func (m WayMask) String() string { return fmt.Sprintf("%#x", uint32(m)) }

// Registers models the CAT register file of one processor socket:
// NumCLOS capacity masks and a per-core CLOS association. The zero
// value is not usable; construct with NewRegisters.
type Registers struct {
	numWays  int
	numCores int
	masks    []WayMask
	coreCLOS []int
	// writes counts mask and association register writes, mirroring
	// the paper's concern about per-write overhead (Section V-C).
	writes int
}

// NewRegisters creates a register file for a socket with the given
// logical core count, LLC way count, and number of classes of service.
// CLOS 0 is initialised to the full mask and every core starts in
// CLOS 0, matching hardware reset state.
func NewRegisters(cores, ways, numCLOS int) (*Registers, error) {
	switch {
	case cores <= 0:
		return nil, fmt.Errorf("cat: core count %d must be positive", cores)
	case ways <= 0 || ways > 32:
		return nil, fmt.Errorf("cat: way count %d out of range [1,32]", ways)
	case numCLOS <= 0:
		return nil, fmt.Errorf("cat: CLOS count %d must be positive", numCLOS)
	}
	r := &Registers{
		numWays:  ways,
		numCores: cores,
		masks:    make([]WayMask, numCLOS),
		coreCLOS: make([]int, cores),
	}
	for i := range r.masks {
		r.masks[i] = FullMask(ways)
	}
	return r, nil
}

// NumWays reports the LLC way count the register file was built for.
func (r *Registers) NumWays() int { return r.numWays }

// NumCLOS reports how many classes of service are available.
func (r *Registers) NumCLOS() int { return len(r.masks) }

// NumCores reports the logical core count.
func (r *Registers) NumCores() int { return r.numCores }

// Writes reports how many register writes have been performed, for
// overhead accounting.
func (r *Registers) Writes() int { return r.writes }

// SetMask programs the capacity mask of a CLOS. It enforces the
// hardware constraints: the mask must be non-empty, contiguous, and
// within the way count.
func (r *Registers) SetMask(clos int, mask WayMask) error {
	if clos < 0 || clos >= len(r.masks) {
		return fmt.Errorf("cat: CLOS %d out of range [0,%d)", clos, len(r.masks))
	}
	if mask == 0 {
		return fmt.Errorf("cat: empty capacity mask")
	}
	if mask&^FullMask(r.numWays) != 0 {
		return fmt.Errorf("cat: mask %v exceeds %d ways", mask, r.numWays)
	}
	if !mask.Contiguous() {
		return fmt.Errorf("cat: mask %v is not contiguous", mask)
	}
	r.masks[clos] = mask
	r.writes++
	return nil
}

// Mask returns the capacity mask programmed for a CLOS.
func (r *Registers) Mask(clos int) WayMask {
	if clos < 0 || clos >= len(r.masks) {
		return 0
	}
	return r.masks[clos]
}

// Associate moves a logical core into a CLOS, as the kernel scheduler
// does on context switch when a task's group changes.
func (r *Registers) Associate(core, clos int) error {
	if core < 0 || core >= r.numCores {
		return fmt.Errorf("cat: core %d out of range [0,%d)", core, r.numCores)
	}
	if clos < 0 || clos >= len(r.masks) {
		return fmt.Errorf("cat: CLOS %d out of range [0,%d)", clos, len(r.masks))
	}
	r.coreCLOS[core] = clos
	r.writes++
	return nil
}

// CLOSOf reports the CLOS a core is associated with.
func (r *Registers) CLOSOf(core int) int {
	if core < 0 || core >= r.numCores {
		return 0
	}
	return r.coreCLOS[core]
}

// MaskOf reports the effective capacity mask of a core: the mask of its
// CLOS. This is what the cache controller consults on a fill.
func (r *Registers) MaskOf(core int) WayMask {
	return r.masks[r.CLOSOf(core)]
}
