package core

import (
	"testing"

	"cachepart/internal/cat"
)

const (
	llc55  = 55 << 20
	ways20 = 20
)

func paperPolicy(enabled bool) Policy {
	p := DefaultPolicy(llc55, ways20)
	p.Enabled = enabled
	return p
}

func TestCUIDString(t *testing.T) {
	for c, want := range map[CUID]string{
		Sensitive: "sensitive", Polluting: "polluting", Depends: "depends",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := CUID(42).String(); got != "CUID(42)" {
		t.Errorf("unknown CUID = %q", got)
	}
}

func TestPolicyDisabledAlwaysFull(t *testing.T) {
	p := paperPolicy(false)
	for _, cuid := range []CUID{Sensitive, Polluting, Depends} {
		if got := p.MaskFor(cuid, Footprint{}); got != 0xfffff {
			t.Errorf("disabled policy MaskFor(%v) = %v, want full", cuid, got)
		}
	}
}

func TestPaperMasks(t *testing.T) {
	p := paperPolicy(true)
	// Section V-C: "0x3" for (i), "0xfffff" for (ii),
	// "0x3" or "0xfff" for (iii).
	if got := p.MaskFor(Polluting, Footprint{}); got != 0x3 {
		t.Errorf("polluting mask = %v, want 0x3", got)
	}
	if got := p.MaskFor(Sensitive, Footprint{}); got != 0xfffff {
		t.Errorf("sensitive mask = %v, want 0xfffff", got)
	}
	// 10^6 keys -> 125 KB bit vector: fits L2, polluting -> 0x3.
	small := Footprint{BitVectorBytes: 125_000}
	if got := p.MaskFor(Depends, small); got != 0x3 {
		t.Errorf("small-vector join mask = %v, want 0x3", got)
	}
	// 10^8 keys -> 12.5 MB: comparable to 55 MiB LLC -> 0xfff.
	comparable := Footprint{BitVectorBytes: 12_500_000}
	if got := p.MaskFor(Depends, comparable); got != 0xfff {
		t.Errorf("comparable-vector join mask = %v, want 0xfff", got)
	}
	// 10^9 keys -> 125 MB: exceeds the LLC -> polluting again.
	huge := Footprint{BitVectorBytes: 125_000_000}
	if got := p.MaskFor(Depends, huge); got != 0x3 {
		t.Errorf("huge-vector join mask = %v, want 0x3", got)
	}
}

func TestDependsSensitiveBand(t *testing.T) {
	p := paperPolicy(true)
	cases := []struct {
		bytes uint64
		want  bool
	}{
		{125_000, false},     // 10^6 keys, fits L2
		{1_250_000, false},   // 10^7 keys, below band
		{12_500_000, true},   // 10^8 keys, comparable
		{llc55, true},        // exactly LLC
		{125_000_000, false}, // 10^9 keys, above band
	}
	for _, c := range cases {
		if got := p.DependsSensitive(Footprint{BitVectorBytes: c.bytes}); got != c.want {
			t.Errorf("DependsSensitive(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestPolicyMasksAreValid(t *testing.T) {
	p := paperPolicy(true)
	for _, cuid := range []CUID{Sensitive, Polluting, Depends} {
		for _, bv := range []uint64{0, 125_000, 12_500_000, 125_000_000} {
			m := p.MaskFor(cuid, Footprint{BitVectorBytes: bv})
			if m == 0 || !m.Contiguous() || m&^cat.FullMask(ways20) != 0 {
				t.Errorf("MaskFor(%v, bv=%d) = %v invalid", cuid, bv, m)
			}
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	good := paperPolicy(true)
	if err := good.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	bads := []func(*Policy){
		func(p *Policy) { p.LLCWays = 0 },
		func(p *Policy) { p.LLCWays = 40 },
		func(p *Policy) { p.LLCBytes = 0 },
		func(p *Policy) { p.PollutingFraction = 0 },
		func(p *Policy) { p.PollutingFraction = 1.5 },
		func(p *Policy) { p.DependsLargeFraction = -1 },
		func(p *Policy) { p.SensitiveLo = 2; p.SensitiveHi = 1 },
	}
	for i, mutate := range bads {
		p := paperPolicy(true)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
	}
}

func flatCurve(ways int, v float64) []CurvePoint {
	pts := make([]CurvePoint, ways)
	for i := range pts {
		pts[i] = CurvePoint{Ways: i + 1, Throughput: v}
	}
	return pts
}

func TestWaysNeeded(t *testing.T) {
	// Flat curve: one way suffices.
	n, err := WaysNeeded(flatCurve(20, 1.0), 0.05)
	if err != nil || n != 1 {
		t.Errorf("flat curve needs %d ways (%v), want 1", n, err)
	}
	// Knee at 12 ways.
	curve := make([]CurvePoint, 20)
	for i := range curve {
		w := i + 1
		th := 1.0
		if w < 12 {
			th = 0.5 + 0.04*float64(w)
		}
		curve[i] = CurvePoint{Ways: w, Throughput: th}
	}
	n, err = WaysNeeded(curve, 0.05)
	if err != nil || n != 12 {
		t.Errorf("kneed curve needs %d ways (%v), want 12", n, err)
	}
	// Unsorted input handled.
	rev := []CurvePoint{{Ways: 20, Throughput: 1}, {Ways: 1, Throughput: 1}}
	if n, _ = WaysNeeded(rev, 0.05); n != 1 {
		t.Errorf("unsorted flat curve needs %d", n)
	}
	if _, err = WaysNeeded(nil, 0.05); err == nil {
		t.Error("empty curve accepted")
	}
	if _, err = WaysNeeded(flatCurve(5, 1), 1.5); err == nil {
		t.Error("bad tolerance accepted")
	}
}

func TestClassifyCurve(t *testing.T) {
	// Scan-like: flat -> polluting.
	if c, err := ClassifyCurve(flatCurve(20, 1.0), 20); err != nil || c != Polluting {
		t.Errorf("flat curve -> %v (%v), want Polluting", c, err)
	}
	// Aggregation-like: monotone up to full cache -> sensitive.
	agg := make([]CurvePoint, 20)
	for i := range agg {
		agg[i] = CurvePoint{Ways: i + 1, Throughput: 0.3 + 0.035*float64(i+1)}
	}
	if c, err := ClassifyCurve(agg, 20); err != nil || c != Sensitive {
		t.Errorf("rising curve -> %v (%v), want Sensitive", c, err)
	}
	// Join-like: knee at 60% -> depends.
	join := make([]CurvePoint, 20)
	for i := range join {
		w := i + 1
		th := 1.0
		if w < 12 {
			th = 0.7
		}
		join[i] = CurvePoint{Ways: w, Throughput: th}
	}
	if c, err := ClassifyCurve(join, 20); err != nil || c != Depends {
		t.Errorf("kneed curve -> %v (%v), want Depends", c, err)
	}
	if _, err := ClassifyCurve(flatCurve(5, 1), 0); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestDeriveScheme(t *testing.T) {
	// A scan flat everywhere derives the paper's 10%-ish slice, but
	// never below two ways.
	p, err := DeriveScheme(llc55, 20, [][]CurvePoint{flatCurve(20, 1.0)})
	if err != nil {
		t.Fatal(err)
	}
	p.Enabled = true
	if got := p.MaskFor(Polluting, Footprint{}); got != 0x3 {
		t.Errorf("derived polluting mask = %v, want 0x3", got)
	}
	// A "polluter" that actually needs 5 ways widens the slice.
	curve := make([]CurvePoint, 20)
	for i := range curve {
		w := i + 1
		th := 1.0
		if w < 5 {
			th = 0.5
		}
		curve[i] = CurvePoint{Ways: w, Throughput: th}
	}
	p, err = DeriveScheme(llc55, 20, [][]CurvePoint{curve})
	if err != nil {
		t.Fatal(err)
	}
	p.Enabled = true
	if got := p.MaskFor(Polluting, Footprint{}); got.Ways() != 5 {
		t.Errorf("derived polluting mask = %v, want 5 ways", got)
	}
	if _, err := DeriveScheme(llc55, 20, [][]CurvePoint{nil}); err == nil {
		t.Error("empty curve accepted")
	}
}
