package core

import (
	"fmt"
	"sort"
)

// CurvePoint is one sample of a micro-benchmark sweep: the normalized
// throughput of an operator when the instance is limited to the given
// number of LLC ways (Section IV's figures).
type CurvePoint struct {
	Ways       int
	Throughput float64 // normalized to the full-cache throughput
}

// WaysNeeded reports the smallest way count at which the operator
// reaches within tolerance of its best throughput — the "how much
// cache does this operator need" question of Section III.
func WaysNeeded(points []CurvePoint, tolerance float64) (int, error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("core: empty curve")
	}
	if tolerance < 0 || tolerance >= 1 {
		return 0, fmt.Errorf("core: tolerance %v out of [0,1)", tolerance)
	}
	pts := make([]CurvePoint, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Ways < pts[j].Ways })
	best := pts[0].Throughput
	for _, p := range pts {
		if p.Throughput > best {
			best = p.Throughput
		}
	}
	for _, p := range pts {
		if p.Throughput >= best*(1-tolerance) {
			return p.Ways, nil
		}
	}
	return pts[len(pts)-1].Ways, nil
}

// DeriveTolerance is the throughput slack used when deriving a scheme:
// an operator "does not need" cache it can give up at a <5% cost.
const DeriveTolerance = 0.05

// ClassifyCurve derives a job's cache usage identifier from its
// micro-benchmark curve, automating Section V-B: an operator content
// with ~10% of the ways is polluting; one needing most of the cache is
// sensitive; anything in between is data-dependent.
func ClassifyCurve(points []CurvePoint, totalWays int) (CUID, error) {
	if totalWays <= 0 {
		return Sensitive, fmt.Errorf("core: total ways %d", totalWays)
	}
	need, err := WaysNeeded(points, DeriveTolerance)
	if err != nil {
		return Sensitive, err
	}
	pollutingWays := int(0.10*float64(totalWays) + 0.5)
	if pollutingWays < 1 {
		pollutingWays = 1
	}
	switch {
	case need <= pollutingWays:
		return Polluting, nil
	case need >= totalWays*3/4:
		return Sensitive, nil
	default:
		return Depends, nil
	}
}

// DeriveScheme builds a policy whose polluting slice is the largest
// fraction every polluting operator tolerates, given their curves.
// It returns the default scheme when no curve demands otherwise.
func DeriveScheme(llcBytes uint64, llcWays int, pollutingCurves [][]CurvePoint) (Policy, error) {
	p := DefaultPolicy(llcBytes, llcWays)
	need := 1
	for _, curve := range pollutingCurves {
		n, err := WaysNeeded(curve, DeriveTolerance)
		if err != nil {
			return p, err
		}
		if n > need {
			need = n
		}
	}
	// Never a single way (Section V-B note: "0x1" causes contention).
	if need < 2 {
		need = 2
	}
	p.PollutingFraction = float64(need) / float64(llcWays)
	return p, nil
}
