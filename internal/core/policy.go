// Package core distils the paper's contribution: classifying database
// operators by cache-usage behaviour (Section V-C's cache usage
// identifiers) and mapping each class to a CAT capacity mask following
// the partitioning scheme derived from the micro-benchmarks
// (Section V-B):
//
//   - polluting operators (column scan) are restricted to 10% of the
//     LLC ("0x3" on a 20-way cache);
//   - cache-sensitive operators (grouped aggregation) keep the entire
//     cache ("0xfffff");
//   - operators that can be either (foreign-key join) are decided by a
//     bit-vector-size heuristic: 10% when the vector is far from the
//     LLC size, 60% ("0xfff") when it is comparable.
package core

import (
	"fmt"

	"cachepart/internal/cat"
)

// CUID is a cache usage identifier annotated on scheduler jobs.
type CUID int

const (
	// Sensitive marks jobs which are cache-sensitive and profit from
	// the entire cache, category (ii). It is the default, so that an
	// unannotated job can never regress.
	Sensitive CUID = iota
	// Polluting marks jobs which are not cache-sensitive and pollute
	// the cache, category (i), such as the column scan.
	Polluting
	// Depends marks jobs which can be either, category (iii), such as
	// the foreign-key join; the decision is data-dependent.
	Depends
)

// String names the identifier.
func (c CUID) String() string {
	switch c {
	case Sensitive:
		return "sensitive"
	case Polluting:
		return "polluting"
	case Depends:
		return "depends"
	default:
		return fmt.Sprintf("CUID(%d)", int(c))
	}
}

// Footprint carries the data-dependent hints the policy consults for
// Depends jobs.
type Footprint struct {
	// BitVectorBytes is the size of the join's bit vector.
	BitVectorBytes uint64
}

// Policy is the partitioning scheme: which fraction of the LLC each
// job class may fill into.
type Policy struct {
	// Enabled turns partitioning on; when false every class gets the
	// full mask (the paper's baseline configuration).
	Enabled bool

	// LLCWays and LLCBytes describe the cache being partitioned.
	LLCWays  int
	LLCBytes uint64

	// PollutingFraction is the slice left to polluting jobs (10% in
	// the paper — never a single way, which the paper found to cause
	// contention, see the note in Section V-B).
	PollutingFraction float64

	// DependsLargeFraction is the slice for Depends jobs whose data
	// structure is comparable to the LLC (60% in the paper).
	DependsLargeFraction float64

	// SensitiveLo/SensitiveHi bound the "comparable to the LLC" band
	// of the bit-vector heuristic as fractions of the LLC size: a
	// vector inside [LLCBytes*SensitiveLo, LLCBytes*SensitiveHi] makes
	// the join cache-sensitive.
	SensitiveLo float64
	SensitiveHi float64
}

// DefaultPolicy returns the paper's scheme for an LLC of the given
// geometry, initially disabled.
func DefaultPolicy(llcBytes uint64, llcWays int) Policy {
	return Policy{
		LLCWays:              llcWays,
		LLCBytes:             llcBytes,
		PollutingFraction:    0.10,
		DependsLargeFraction: 0.60,
		SensitiveLo:          0.125,
		SensitiveHi:          1.5,
	}
}

// Validate checks the policy parameters.
func (p Policy) Validate() error {
	if p.LLCWays <= 0 || p.LLCWays > 32 {
		return fmt.Errorf("core: LLC way count %d out of range", p.LLCWays)
	}
	if p.LLCBytes == 0 {
		return fmt.Errorf("core: zero LLC size")
	}
	if p.PollutingFraction <= 0 || p.PollutingFraction > 1 {
		return fmt.Errorf("core: polluting fraction %v out of (0,1]", p.PollutingFraction)
	}
	if p.DependsLargeFraction <= 0 || p.DependsLargeFraction > 1 {
		return fmt.Errorf("core: depends fraction %v out of (0,1]", p.DependsLargeFraction)
	}
	if p.SensitiveLo < 0 || p.SensitiveHi < p.SensitiveLo {
		return fmt.Errorf("core: sensitive band [%v,%v] invalid", p.SensitiveLo, p.SensitiveHi)
	}
	return nil
}

// DependsSensitive applies the bit-vector-size heuristic: the join is
// cache-sensitive exactly when its vector is comparable to the LLC.
func (p Policy) DependsSensitive(fp Footprint) bool {
	b := float64(fp.BitVectorBytes)
	llc := float64(p.LLCBytes)
	return b >= llc*p.SensitiveLo && b <= llc*p.SensitiveHi
}

// MaskFor maps a job's identifier (and footprint hint) to the CAT
// capacity mask the engine programs for its worker, per Section V-B.
func (p Policy) MaskFor(cuid CUID, fp Footprint) cat.WayMask {
	full := cat.FullMask(p.LLCWays)
	if !p.Enabled {
		return full
	}
	switch cuid {
	case Polluting:
		return cat.PortionMask(p.LLCWays, p.PollutingFraction)
	case Depends:
		if p.DependsSensitive(fp) {
			return cat.PortionMask(p.LLCWays, p.DependsLargeFraction)
		}
		return cat.PortionMask(p.LLCWays, p.PollutingFraction)
	default:
		return full
	}
}
