package exec

import (
	"fmt"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

// IndexLookupProject is the S/4HANA-style OLTP operator of
// Section VI-E: probe the inverted indexes of the primary-key columns
// for the given key values, intersect the resulting row sets, then
// project the qualifying rows to a set of columns — each projection
// reads the row's code and decompresses it through the column's
// dictionary. The dictionaries are the OLTP query's hot working set;
// an OLAP scan evicting them is exactly the pollution Figure 12 shows.
//
//conc:shared kernel instance is bound to one core's slot; only the worker driving that core calls Step between barriers
type IndexLookupProject struct {
	Indexes []*column.InvertedIndex
	Keys    []int64 // one per index
	Project []*column.Column

	phase     int // index being probed; len(Indexes) = projecting
	rows      []uint32
	projRow   int
	projCol   int
	Projected int64

	ops []cachesim.BatchOp // scratch for the batched access fast path
}

// NewIndexLookupProject constructs the operator. keys[i] is probed in
// indexes[i]; rows matching every key are projected to the given
// columns.
func NewIndexLookupProject(indexes []*column.InvertedIndex, keys []int64, project []*column.Column) (*IndexLookupProject, error) {
	if len(indexes) == 0 || len(indexes) != len(keys) {
		return nil, fmt.Errorf("exec: %d indexes for %d keys", len(indexes), len(keys))
	}
	if len(project) == 0 {
		return nil, fmt.Errorf("exec: nothing to project")
	}
	return &IndexLookupProject{Indexes: indexes, Keys: keys, Project: project}, nil
}

// Rows returns the matching rows once the probe phases are complete.
func (p *IndexLookupProject) Rows() []uint32 { return p.rows }

// Step advances the operator. Row-units are index postings scanned or
// column values projected, so budget bounds memory traffic as for the
// other kernels.
//
//perf:hot index-lookup projection kernel inner loop
func (p *IndexLookupProject) Step(ctx *Ctx, budget int) (int, bool) {
	processed := 0
	for processed < budget {
		if p.phase < len(p.Indexes) {
			processed += p.probeOne(ctx)
			continue
		}
		if p.projRow >= len(p.rows) {
			return processed, true
		}
		row := int(p.rows[p.projRow])
		col := p.Project[p.projCol]
		// Point access into the code vector, then the dictionary
		// entry; wide (NVARCHAR-like) entries span several lines. The
		// whole run is one batch, the trailing element carrying the
		// projection's compute cost.
		p.ops = append(p.ops[:0], cachesim.BatchOp{Addr: col.Codes.Addr(row)})
		code := col.Codes.Get(row)
		base := uint64(code) * col.Dict.EntrySize()
		for off := uint64(0); off < col.Dict.EntrySize(); off += memory.LineSize {
			p.ops = append(p.ops, cachesim.BatchOp{Addr: col.Dict.Region().Addr(base + off)})
		}
		p.ops[len(p.ops)-1].Cycles = LookupCyclesPerRow
		p.ops[len(p.ops)-1].Instrs = LookupInstrsPerRow
		ctx.ReadBatch(p.ops)
		_ = col.Dict.Value(code)
		p.Projected++
		processed++
		p.projCol++
		if p.projCol >= len(p.Project) {
			p.projCol = 0
			p.projRow++
		}
	}
	return processed, false
}

// probeOne probes the next index completely and intersects its rows
// into the running result. Index probes are short; doing one whole
// probe per call keeps the kernel simple without exceeding any
// realistic budget.
func (p *IndexLookupProject) probeOne(ctx *Ctx) int {
	ix := p.Indexes[p.phase]
	key := p.Keys[p.phase]
	p.phase++

	code, ok := ix.Column().Dict.CodeOf(key)
	// Dictionary lookup to translate the literal to a code.
	if ix.Column().Dict.Len() > 0 {
		probe := code
		if !ok {
			probe = 0
		}
		ctx.Read(ix.Column().Dict.Addr(probe))
	}
	ctx.Compute(LookupCyclesPerRow, LookupInstrsPerRow)
	if !ok {
		p.rows = nil
		p.phase = len(p.Indexes)
		return 1
	}

	ctx.Read(ix.HeaderAddr(code))
	postings := ix.PostingsOf(code)
	// Read the posting list, one access per touched line (16 row ids
	// per 64-byte line), submitted as one batch.
	p.ops = p.ops[:0]
	for k := 0; k < len(postings); k += 16 {
		p.ops = append(p.ops, cachesim.BatchOp{Addr: ix.PostingAddr(code, k)})
	}
	ctx.ReadBatch(p.ops)
	ctx.Compute(int64(len(postings)/8+1), uint64(len(postings)/4+2))

	if p.phase == 1 {
		p.rows = append(p.rows[:0], postings...)
	} else {
		p.rows = intersectSorted(p.rows, postings)
	}
	if n := len(postings); n > 0 {
		return n
	}
	return 1
}

// intersectSorted intersects two ascending row-id lists in place of a.
func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Reset rewinds the operator with new key values for the next
// execution.
func (p *IndexLookupProject) Reset(keys []int64) {
	copy(p.Keys, keys)
	p.phase = 0
	p.rows = p.rows[:0]
	p.projRow, p.projCol = 0, 0
	p.Projected = 0
}
