package exec

import (
	"math/rand"
	"testing"

	"cachepart/internal/column"
)

func TestWideAggLocalMatchesReference(t *testing.T) {
	ctx, space := testCtx(t)
	n := 10_000
	groups := uniformCol(t, space, "g", n, 0, 49, 11)
	v1 := uniformCol(t, space, "v1", n, 1, 1000, 12)
	v2 := uniformCol(t, space, "v2", n, 1, 1000, 13)
	tab := NewAggTable(space, "t", 50)
	agg, err := NewWideAggLocal(groups, []*column.Column{v1, v2}, 0, n, tab)
	if err != nil {
		t.Fatal(err)
	}
	Drive(ctx, agg, 333)

	want := map[uint32]int64{}
	for i := 0; i < n; i++ {
		want[groups.Codes.Get(i)] += v1.Value(i) + v2.Value(i)
	}
	if tab.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", tab.Len(), len(want))
	}
	for g, wv := range want {
		if v, ok := tab.Get(g); !ok || v != wv {
			t.Errorf("group %d = %d, want %d", g, v, wv)
		}
	}
}

func TestWideAggLocalSampling(t *testing.T) {
	ctx, space := testCtx(t)
	n := 1000
	groups := uniformCol(t, space, "g", n, 0, 4, 14)
	vals := uniformCol(t, space, "v", n, 1, 100, 15)
	tab := NewAggTable(space, "t", 5)
	agg, _ := NewWideAggLocal(groups, []*column.Column{vals}, 0, n, tab)
	agg.SampleEvery = 10
	Drive(ctx, agg, 100)

	want := map[uint32]int64{}
	for i := 0; i < n; i += 10 {
		want[groups.Codes.Get(i)] += vals.Value(i)
	}
	for g, wv := range want {
		if v, ok := tab.Get(g); !ok || v != wv {
			t.Errorf("group %d = %d, want %d", g, v, wv)
		}
	}
	if tab.Len() != len(want) {
		t.Errorf("groups = %d, want %d", tab.Len(), len(want))
	}
}

func TestWideAggLocalSamplingReducesDictionaryTraffic(t *testing.T) {
	ctx, space := testCtx(t)
	n := 50_000
	groups := uniformCol(t, space, "g", n, 0, 9, 16)
	vals := uniformCol(t, space, "v", n, 1, 1_000_000, 17)

	run := func(every int) uint64 {
		tab := NewAggTable(space, "t", 10)
		agg, _ := NewWideAggLocal(groups, []*column.Column{vals}, 0, n, tab)
		agg.SampleEvery = every
		before := ctx.M.Stats(0).Reads
		Drive(ctx, agg, 1000)
		return ctx.M.Stats(0).Reads - before
	}
	full := run(1)
	sampled := run(100)
	if sampled*10 > full {
		t.Errorf("sampling 1%% still issued %d of %d reads", sampled, full)
	}
}

func TestWideAggLocalValidation(t *testing.T) {
	_, space := testCtx(t)
	g := uniformCol(t, space, "g", 10, 0, 3, 1)
	v := uniformCol(t, space, "v", 10, 0, 3, 1)
	short := uniformCol(t, space, "s", 5, 0, 3, 1)
	tab := NewAggTable(space, "t", 4)
	if _, err := NewWideAggLocal(g, nil, 0, 10, tab); err == nil {
		t.Error("no value columns accepted")
	}
	if _, err := NewWideAggLocal(g, []*column.Column{short}, 0, 10, tab); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := NewWideAggLocal(g, []*column.Column{v}, 0, 11, tab); err == nil {
		t.Error("bad range accepted")
	}
}

func TestPKLookupProject(t *testing.T) {
	ctx, space := testCtx(t)
	n := 4000
	rng := rand.New(rand.NewSource(20))
	docs := make([]int64, n)
	attr := make([]int64, n)
	pay := make([]int64, n)
	for i := range docs {
		docs[i] = 1 + rng.Int63n(100)
		attr[i] = docs[i] % 4 // consistent per document
		pay[i] = int64(i)
	}
	docCol, _ := column.EncodeDense(space, "doc", docs, 1, 100, 4)
	attrCol, _ := column.EncodeDense(space, "attr", attr, 0, 3, 4)
	payCol, _ := column.EncodeDense(space, "pay", pay, 0, int64(n-1), 4)
	ix, _ := column.BuildInvertedIndex(space, docCol)

	op, err := NewPKLookupProject(ix, 42, []*column.Column{attrCol}, []int64{42 % 4}, []*column.Column{payCol})
	if err != nil {
		t.Fatal(err)
	}
	Drive(ctx, op, 64)
	var want []uint32
	for i := range docs {
		if docs[i] == 42 {
			want = append(want, uint32(i))
		}
	}
	got := op.Rows()
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
	if op.Projected != int64(len(want)) {
		t.Errorf("Projected = %d, want %d", op.Projected, len(want))
	}

	// Residual mismatch filters everything out.
	op.Reset(42, []int64{(42 % 4) + 1})
	Drive(ctx, op, 64)
	if len(op.Rows()) != 0 {
		t.Errorf("mismatched residual still returned %d rows", len(op.Rows()))
	}

	// Missing index key.
	op.Reset(999, []int64{0})
	Drive(ctx, op, 64)
	if len(op.Rows()) != 0 || op.Projected != 0 {
		t.Error("missing key should produce nothing")
	}
}

func TestPKLookupProjectValidation(t *testing.T) {
	_, space := testCtx(t)
	c := uniformCol(t, space, "c", 10, 0, 3, 1)
	ix, _ := column.BuildInvertedIndex(space, c)
	if _, err := NewPKLookupProject(nil, 1, nil, nil, []*column.Column{c}); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := NewPKLookupProject(ix, 1, []*column.Column{c}, nil, []*column.Column{c}); err == nil {
		t.Error("residual mismatch accepted")
	}
	if _, err := NewPKLookupProject(ix, 1, nil, nil, nil); err == nil {
		t.Error("empty projection accepted")
	}
}
