package exec

import (
	"fmt"
	"sort"

	"cachepart/internal/column"
	"cachepart/internal/memory"
)

// SortAggLocal is a sort-based grouped aggregation, the alternative
// algorithm family of the paper's related work (Müller et al.,
// "Cache-Efficient Aggregation: Hashing Is Sorting"). Instead of
// probing a hash table per row, it radix-scatters (group, value) pairs
// into buckets — a bounded set of sequential write streams — and then
// aggregates each bucket after sorting it. Its cache working set is
// the bucket write tails (one line per bucket) rather than a
// group-count-sized table, so it trades extra materialisation
// bandwidth for insensitivity to LLC capacity: the contrast the
// ablation benchmarks measure.
//
//conc:shared kernel instance is bound to one core's slot; only the worker driving that core calls Step between barriers
type SortAggLocal struct {
	GroupCol *column.Column
	ValueCol *column.Column
	From     int
	To       int
	// Buckets is the radix fan-out (default 256).
	Buckets int

	space  *memory.Space
	region memory.Region // bucket storage, one contiguous area

	// Real data: scattered (group, value) pairs per bucket.
	pairs   [][]aggPair
	offsets []uint64 // simulated write offset per bucket

	stage     int // 0 scatter, 1 sort+aggregate
	cur       int
	lastGLine uint64
	lastVLine uint64
	started   bool
	bucket    int
	// MAX per group, indexed by group code — dense because codes are
	// dictionary positions; resultSet marks groups actually seen.
	resultVal []int64
	resultSet []bool
}

type aggPair struct {
	group uint32
	val   int64
}

const pairBytes = 12

// NewSortAggLocal constructs the kernel over [from, to); the bucket
// area is allocated once per kernel in the given space.
func NewSortAggLocal(space *memory.Space, group, value *column.Column, from, to int, buckets int) (*SortAggLocal, error) {
	if group.Rows() != value.Rows() {
		return nil, fmt.Errorf("exec: group column has %d rows, value column %d", group.Rows(), value.Rows())
	}
	if from < 0 || to > group.Rows() || from > to {
		return nil, fmt.Errorf("exec: aggregation range [%d,%d) out of %d rows", from, to, group.Rows())
	}
	if buckets <= 0 {
		buckets = 256
	}
	rows := to - from
	// Per-bucket capacity with 2x slack for hash skew; the area is
	// simulated only, so slack costs no real memory.
	size := uint64(rows*2+buckets*8) * pairBytes
	a := &SortAggLocal{
		GroupCol:  group,
		ValueCol:  value,
		From:      from,
		To:        to,
		Buckets:   buckets,
		space:     space,
		region:    space.Alloc("sortagg", size),
		pairs:     make([][]aggPair, buckets),
		offsets:   make([]uint64, buckets),
		cur:       from,
		resultVal: make([]int64, group.Dict.Len()),
		resultSet: make([]bool, group.Dict.Len()),
	}
	// Partition the simulated area evenly across buckets.
	per := size / uint64(buckets)
	for b := range a.offsets {
		a.offsets[b] = uint64(b) * per
	}
	return a, nil
}

// Result returns MAX per group after the kernel completes. The map is
// materialised from the dense per-code array on each call; the kernel
// itself never touches a map.
func (a *SortAggLocal) Result() map[uint32]int64 {
	out := make(map[uint32]int64)
	for g, set := range a.resultSet {
		if set {
			out[uint32(g)] = a.resultVal[g]
		}
	}
	return out
}

// bucketOf spreads group codes across buckets.
func (a *SortAggLocal) bucketOf(g uint32) int {
	return int(hash(g) % uint32(a.Buckets))
}

// Step advances the kernel; row-units are scattered rows (stage 0) or
// aggregated pairs (stage 1).
//
//perf:hot sort-aggregation kernel inner loop
func (a *SortAggLocal) Step(ctx *Ctx, budget int) (int, bool) {
	processed := 0
	for processed < budget {
		switch a.stage {
		case 0:
			if a.cur >= a.To {
				a.stage = 1
				a.bucket = 0
				a.cur = 0
				continue
			}
			g, v := a.GroupCol.Codes, a.ValueCol.Codes
			if gl := g.LineOfRow(a.cur); !a.started || gl != a.lastGLine {
				ctx.Read(g.Region().Addr(gl * memory.LineSize))
				a.lastGLine = gl
			}
			if vl := v.LineOfRow(a.cur); !a.started || vl != a.lastVLine {
				ctx.Read(v.Region().Addr(vl * memory.LineSize))
				a.lastVLine = vl
			}
			a.started = true
			gcode := g.Get(a.cur)
			ctx.Read(a.ValueCol.Dict.Addr(v.Get(a.cur)))
			val := a.ValueCol.Dict.Value(v.Get(a.cur))
			b := a.bucketOf(gcode)
			a.pairs[b] = append(a.pairs[b], aggPair{group: gcode, val: val})
			// Sequential append into the bucket's write stream; under
			// extreme skew the simulated stream wraps within its area.
			per := a.region.Size / uint64(a.Buckets)
			if a.offsets[b]-uint64(b)*per >= per-pairBytes {
				a.offsets[b] = uint64(b) * per
			}
			ctx.Write(a.region.Addr(a.offsets[b]))
			a.offsets[b] += pairBytes
			ctx.Compute(AggCyclesPerRow, AggInstrsPerRow)
			a.cur++
			processed++

		case 1:
			if a.bucket >= a.Buckets {
				return processed, true
			}
			pairs := a.pairs[a.bucket]
			if a.cur == 0 && len(pairs) > 1 {
				// Sorting the bucket: O(n log n) compute plus one
				// sequential pass of reads over its pairs.
				sort.Slice(pairs, func(i, j int) bool { return pairs[i].group < pairs[j].group })
				n := int64(len(pairs))
				ctx.Compute(n*4, uint64(n)*6)
			}
			// Aggregate a run of pairs, reading their lines
			// sequentially.
			per := a.region.Size / uint64(a.Buckets)
			base := uint64(a.bucket) * per
			for processed < budget && a.cur < len(pairs) {
				if a.cur%5 == 0 { // ~5 pairs per cache line
					ctx.Read(a.region.Addr(base + uint64(a.cur)*pairBytes%(per-pairBytes)))
				}
				p := pairs[a.cur]
				if !a.resultSet[p.group] || p.val > a.resultVal[p.group] {
					a.resultSet[p.group] = true
					a.resultVal[p.group] = p.val
				}
				ctx.Compute(2, 4)
				a.cur++
				processed++
			}
			if a.cur >= len(pairs) {
				a.bucket++
				a.cur = 0
			}
		}
	}
	return processed, false
}
