package exec

import (
	"fmt"
	"sync/atomic"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

// BitVector is the compact primary-key representation of the paper's
// OLAP-optimised foreign-key join (Section II): bit i set means primary
// key lo+i qualifies. Its simulated footprint n/8 bytes is what decides
// the join's cache sensitivity (Figure 6).
type BitVector struct {
	words  []uint64
	n      uint64
	lo     int64
	region memory.Region
}

// NewBitVector allocates a vector covering the key domain [lo, lo+n).
func NewBitVector(space *memory.Space, name string, lo int64, n uint64) (*BitVector, error) {
	if n == 0 {
		return nil, fmt.Errorf("exec: empty bit vector")
	}
	bv := &BitVector{
		words: make([]uint64, (n+63)/64),
		n:     n,
		lo:    lo,
	}
	bv.region = space.Alloc(name, (n+7)/8)
	return bv, nil
}

// Len reports the key-domain size.
func (b *BitVector) Len() uint64 { return b.n }

// Bytes reports the simulated footprint.
func (b *BitVector) Bytes() uint64 { return b.region.Size }

// Region exposes the simulated allocation.
func (b *BitVector) Region() memory.Region { return b.region }

// Addr is the byte address holding the bit for a key.
func (b *BitVector) Addr(key int64) memory.Addr {
	return b.region.Addr(uint64(key-b.lo) / 8)
}

// Set marks a key present. The OR is atomic so concurrent build
// kernels of a parallel-mode run may share the vector: bit-sets
// commute, so the final contents are independent of interleaving.
func (b *BitVector) Set(key int64) {
	i := uint64(key - b.lo)
	if i >= b.n {
		panic(fmt.Sprintf("exec: key %d outside bit vector domain", key))
	}
	atomic.OrUint64(&b.words[i/64], 1<<(i%64))
}

// Test reports whether a key is present. The load is atomic because
// probe kernels may run while build kernels still OR bits in: a plain
// read of the same word is a data race even though bit-sets commute.
func (b *BitVector) Test(key int64) bool {
	i := uint64(key - b.lo)
	if i >= b.n {
		return false
	}
	return atomic.LoadUint64(&b.words[i/64])&(1<<(i%64)) != 0
}

// Clear empties the vector.
func (b *BitVector) Clear() {
	for i := range b.words {
		atomic.StoreUint64(&b.words[i], 0)
	}
}

// SetAll marks every key in the domain present, used to pre-populate
// the vector when executions rebuild only a sample of it.
func (b *BitVector) SetAll() {
	for i := range b.words {
		atomic.StoreUint64(&b.words[i], ^uint64(0))
	}
	if tail := b.n % 64; tail != 0 {
		atomic.StoreUint64(&b.words[len(b.words)-1], 1<<tail-1)
	}
}

// PopCount reports the number of set bits, for verification.
func (b *BitVector) PopCount() uint64 {
	var n uint64
	for i := range b.words {
		for w := atomic.LoadUint64(&b.words[i]); w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// JoinBuild is the first phase of the foreign-key join: scan the
// primary-key column and set the key's bit. The scan side is
// sequential; the bit writes scatter over the vector when the table is
// not key-ordered.
//
//conc:shared kernel instance is bound to one core's slot; the shared bit vector is written only through atomic OR (see BitVector)
type JoinBuild struct {
	KeyCol *column.Column
	From   int
	To     int
	BV     *BitVector

	cur      int
	lastLine uint64
	started  bool
	ops      []cachesim.BatchOp
}

// NewJoinBuild constructs the build phase over [from, to).
func NewJoinBuild(keys *column.Column, from, to int, bv *BitVector) (*JoinBuild, error) {
	if from < 0 || to > keys.Rows() || from > to {
		return nil, fmt.Errorf("exec: build range [%d,%d) out of %d rows", from, to, keys.Rows())
	}
	return &JoinBuild{KeyCol: keys, From: from, To: to, BV: bv, cur: from}, nil
}

// Step processes up to budget rows. The per-row accesses — an optional
// key-line read and the bit-vector write carrying the row's compute
// cost — are accumulated and submitted as one batch, preserving the
// exact per-row Access/Compute sequence.
//
//perf:hot join build kernel inner loop
func (j *JoinBuild) Step(ctx *Ctx, budget int) (int, bool) {
	codes := j.KeyCol.Codes
	region := codes.Region()
	processed := 0
	j.ops = j.ops[:0]
	for processed < budget && j.cur < j.To {
		if l := codes.LineOfRow(j.cur); !j.started || l != j.lastLine {
			j.ops = append(j.ops, cachesim.BatchOp{Addr: region.Addr(l * memory.LineSize)})
			j.lastLine = l
			j.started = true
		}
		key := j.KeyCol.Dict.Value(codes.Get(j.cur))
		j.ops = append(j.ops, cachesim.BatchOp{
			Addr: j.BV.Addr(key), Write: true,
			Cycles: JoinCyclesPerRow, Instrs: JoinInstrsPerRow,
		})
		j.BV.Set(key)
		j.cur++
		processed++
	}
	ctx.ReadBatch(j.ops)
	return processed, j.cur >= j.To
}

// Reset rewinds the build for a fresh execution. The bit vector is not
// cleared: repeated executions of the paper's Query 3 rebuild the same
// key set.
func (j *JoinBuild) Reset() {
	j.cur = j.From
	j.started = false
}

// JoinProbe is the second phase: scan the foreign-key column, test each
// key's bit (random access over the vector) and count matches.
//
//conc:shared kernel instance is bound to one core's slot; only the worker driving that core calls Step between barriers
type JoinProbe struct {
	FKCol *column.Column
	From  int
	To    int
	BV    *BitVector

	cur      int
	lastLine uint64
	started  bool
	Matches  int64
	ops      []cachesim.BatchOp
}

// NewJoinProbe constructs the probe phase over [from, to).
func NewJoinProbe(fks *column.Column, from, to int, bv *BitVector) (*JoinProbe, error) {
	if from < 0 || to > fks.Rows() || from > to {
		return nil, fmt.Errorf("exec: probe range [%d,%d) out of %d rows", from, to, fks.Rows())
	}
	return &JoinProbe{FKCol: fks, From: from, To: to, BV: bv, cur: from}, nil
}

// Step processes up to budget rows. As in the build phase, the per-row
// accesses are accumulated and submitted as one batch; the match count
// is real data and stays inline.
//
//perf:hot join probe kernel inner loop
func (j *JoinProbe) Step(ctx *Ctx, budget int) (int, bool) {
	codes := j.FKCol.Codes
	region := codes.Region()
	processed := 0
	j.ops = j.ops[:0]
	for processed < budget && j.cur < j.To {
		if l := codes.LineOfRow(j.cur); !j.started || l != j.lastLine {
			j.ops = append(j.ops, cachesim.BatchOp{Addr: region.Addr(l * memory.LineSize)})
			j.lastLine = l
			j.started = true
		}
		key := j.FKCol.Dict.Value(codes.Get(j.cur))
		j.ops = append(j.ops, cachesim.BatchOp{
			Addr:   j.BV.Addr(key),
			Cycles: JoinCyclesPerRow, Instrs: JoinInstrsPerRow,
		})
		if j.BV.Test(key) {
			j.Matches++
		}
		j.cur++
		processed++
	}
	ctx.ReadBatch(j.ops)
	return processed, j.cur >= j.To
}

// Reset rewinds the probe for a fresh execution.
func (j *JoinProbe) Reset() {
	j.cur = j.From
	j.started = false
	j.Matches = 0
}
