package exec

import (
	"sync"
	"testing"

	"cachepart/internal/memory"
)

// TestBitVectorConcurrent pins the atomic access contract on the join
// bit vector: builders Set concurrently while probers Test and
// PopCount, the shape the parallel build phase produces. Every word
// access goes through sync/atomic (enforced by the atomicmix lint),
// so this test must stay clean under -race.
func TestBitVectorConcurrent(t *testing.T) {
	const n = 4096
	space := memory.NewSpace()
	bv, err := NewBitVector(space, "bv", 0, n)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w); i < n; i += workers {
				bv.Set(i)
				if !bv.Test(i) {
					t.Errorf("bit %d not visible to its own setter", i)
					return
				}
				// Concurrent readers must see a consistent snapshot,
				// never a torn word: the count can trail the writers
				// but never exceed the domain.
				if c := bv.PopCount(); c > n {
					t.Errorf("PopCount %d exceeds domain %d", c, n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := bv.PopCount(); got != n {
		t.Errorf("PopCount after full build = %d, want %d", got, n)
	}
	bv.Clear()
	if got := bv.PopCount(); got != 0 {
		t.Errorf("PopCount after Clear = %d, want 0", got)
	}
	bv.SetAll()
	if got := bv.PopCount(); got != n {
		t.Errorf("PopCount after SetAll = %d, want %d", got, n)
	}
	if bv.Test(0) != true || bv.Test(n-1) != true {
		t.Error("SetAll missed a boundary bit")
	}
}
