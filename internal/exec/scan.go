package exec

import (
	"fmt"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

// ColumnScan is the paper's Query 1 operator: a sequential scan over a
// bit-packed, dictionary-encoded column evaluating a range predicate
// directly on the compressed codes (order-preserving encoding makes
// that exact). It touches each cache line of the code vector once and
// never accesses the dictionary, which is why it is cache-insensitive
// but bandwidth-hungry.
//
// The kernel counts codes c with LoCode <= c < HiCode over rows
// [From, To).
//
//conc:shared kernel instance is bound to one core's slot; only the worker driving that core calls Step between barriers
type ColumnScan struct {
	Col    *column.Column
	From   int
	To     int
	LoCode uint32
	HiCode uint32

	cur   int
	Count int64

	ops []cachesim.BatchOp // scratch for the batched access fast path
}

// NewColumnScan builds a scan counting rows with value > bound, the
// paper's `WHERE A.X > ?` predicate, over the row range [from, to).
func NewColumnScan(col *column.Column, from, to int, bound int64) (*ColumnScan, error) {
	if from < 0 || to > col.Rows() || from > to {
		return nil, fmt.Errorf("exec: scan range [%d,%d) out of %d rows", from, to, col.Rows())
	}
	lo := col.Dict.LowerBound(bound + 1)
	return &ColumnScan{
		Col:    col,
		From:   from,
		To:     to,
		LoCode: lo,
		HiCode: uint32(col.Dict.Len()),
		cur:    from,
	}, nil
}

// firstRowOfLine returns the first row whose packed code starts in the
// given cache line of the code vector.
func firstRowOfLine(v *column.PackedVector, line uint64) int {
	startBit := line * memory.LineSize * 8
	bits := uint64(v.Bits())
	return int((startBit + bits - 1) / bits)
}

// Step processes up to budget rows, one cache line of codes at a time.
// The per-line [read, compute] pairs of a slice are submitted as one
// batch, preserving the exact access sequence while amortizing the
// per-reference simulator call overhead.
//
//perf:hot column-scan kernel inner loop
func (s *ColumnScan) Step(ctx *Ctx, budget int) (int, bool) {
	processed := 0
	codes := s.Col.Codes
	region := codes.Region()
	s.ops = s.ops[:0]
	for processed < budget && s.cur < s.To {
		line := codes.LineOfRow(s.cur)
		end := firstRowOfLine(codes, line+1)
		if end > s.To {
			end = s.To
		}
		if end <= s.cur {
			end = s.cur + 1 // codes wider than a line; defensive
		}
		s.ops = append(s.ops, cachesim.BatchOp{
			Addr:   region.Addr(line * memory.LineSize),
			Cycles: ScanCyclesPerLine,
			Instrs: ScanInstrsPerLine,
		})
		s.Count += codes.CountInRange(s.cur, end, s.LoCode, s.HiCode)
		processed += end - s.cur
		s.cur = end
	}
	ctx.ReadBatch(s.ops)
	return processed, s.cur >= s.To
}

// Reset rewinds the kernel for a fresh execution with a new predicate
// code range.
func (s *ColumnScan) Reset(loCode, hiCode uint32) {
	s.cur = s.From
	s.Count = 0
	s.LoCode, s.HiCode = loCode, hiCode
}
