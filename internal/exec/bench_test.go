package exec

import (
	"math/rand"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

func benchCtx(b *testing.B) (*Ctx, *memory.Space) {
	b.Helper()
	cfg := cachesim.DefaultConfig().Scaled(16)
	cfg.Cores = 2
	m, err := cachesim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return &Ctx{M: m, Core: 0}, memory.NewSpace()
}

func benchColumn(b *testing.B, space *memory.Space, name string, n int, distinct int64) *column.Column {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	dict, err := column.NewDenseDictionary(space, name, 1, distinct, column.DefaultEntrySize)
	if err != nil {
		b.Fatal(err)
	}
	codes, err := column.NewPackedVector(space, name, n, dict.CodeBits())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		codes.Set(i, uint32(rng.Int63n(distinct)))
	}
	return &column.Column{Name: name, Dict: dict, Codes: codes}
}

// BenchmarkColumnScanKernel measures simulated scan speed in rows/op.
func BenchmarkColumnScanKernel(b *testing.B) {
	ctx, space := benchCtx(b)
	col := benchColumn(b, space, "scan", 1<<20, 1<<20)
	scan, _ := NewColumnScan(col, 0, col.Rows(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, done := scan.Step(ctx, 4096)
		if done {
			scan.Reset(scan.LoCode, scan.HiCode)
		}
		_ = rows
	}
}

// BenchmarkAggLocalKernel measures the full per-row aggregation path:
// two sequential column reads, one dictionary read, one table probe.
func BenchmarkAggLocalKernel(b *testing.B) {
	ctx, space := benchCtx(b)
	groups := benchColumn(b, space, "g", 1<<18, 1<<12)
	values := benchColumn(b, space, "v", 1<<18, 1<<18)
	tab := NewAggTable(space, "t", 1<<12)
	agg, _ := NewAggLocal(groups, values, 0, groups.Rows(), tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, done := agg.Step(ctx, 1024); done {
			agg.Reset()
		}
	}
}

func BenchmarkAggTableUpdate(b *testing.B) {
	ctx, space := benchCtx(b)
	tab := NewAggTable(space, "t", 1<<14)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint32, 1<<14)
	for i := range keys {
		keys[i] = rng.Uint32() & (1<<14 - 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.UpdateMax(ctx, keys[i&(1<<14-1)], int64(i))
	}
}

func BenchmarkJoinProbeKernel(b *testing.B) {
	ctx, space := benchCtx(b)
	fk := benchColumn(b, space, "fk", 1<<20, 1<<22)
	bv, _ := NewBitVector(space, "bv", 1, 1<<22)
	bv.SetAll()
	probe, _ := NewJoinProbe(fk, 0, fk.Rows(), bv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, done := probe.Step(ctx, 4096); done {
			probe.Reset()
		}
	}
}
