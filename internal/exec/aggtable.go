package exec

import (
	"fmt"

	"cachepart/internal/memory"
)

// aggSlot is one hash-table slot: a group key and its aggregate.
// With padding it occupies 16 simulated bytes, so four slots share a
// cache line.
//
//conc:shared element of an AggTable; shares the owning table's single-kernel ownership
type aggSlot struct {
	key  uint32
	used bool
	val  int64
}

const slotBytes = 16

// AggTable is the open-addressing hash table grouped aggregation uses
// for thread-local pre-aggregation and for the global merge result
// (Section II). Its simulated footprint — capacity × 16 B — is what
// makes aggregation cache-sensitive when it is comparable to the LLC.
//
//conc:shared owned by exactly one kernel: local tables are core-private, the global merge table is stepped by the serial phase
type AggTable struct {
	slots  []aggSlot
	region memory.Region
	space  *memory.Space
	name   string
	count  int
	grows  int
}

// aggLoadFactor keeps probes short; capacity = groups / 0.7, which for
// 10^5 groups across 22 workers lands near the paper's "hash table
// occupies all of the LLC".
const aggLoadFactor = 0.7

// AggCapacityFor reports the slot count allocated for an expected
// group count.
func AggCapacityFor(expectedGroups int) int {
	if expectedGroups < 4 {
		expectedGroups = 4
	}
	c := int(float64(expectedGroups)/aggLoadFactor) + 1
	return (c + 3) &^ 3 // whole cache lines
}

// NewAggTable allocates a table pre-sized for the expected group count.
func NewAggTable(space *memory.Space, name string, expectedGroups int) *AggTable {
	c := AggCapacityFor(expectedGroups)
	return &AggTable{
		slots:  make([]aggSlot, c),
		region: space.Alloc(name, uint64(c)*slotBytes),
		space:  space,
		name:   name,
	}
}

// Len reports the number of groups stored.
func (t *AggTable) Len() int { return t.count }

// Cap reports the slot capacity.
func (t *AggTable) Cap() int { return len(t.slots) }

// Bytes reports the simulated footprint.
func (t *AggTable) Bytes() uint64 { return uint64(len(t.slots)) * slotBytes }

// Region exposes the simulated allocation.
func (t *AggTable) Region() memory.Region { return t.region }

// Grows reports how many times the table resized, a diagnostic for
// mis-sized expectations.
func (t *AggTable) Grows() int { return t.grows }

// slotAddr is the address of slot i.
func (t *AggTable) slotAddr(i int) memory.Addr {
	return t.region.Addr(uint64(i) * slotBytes)
}

// hash spreads group keys with a Fibonacci multiplier.
func hash(key uint32) uint32 {
	return key * 2654435761
}

// AggKind selects the fold applied per group.
type AggKind int

// Supported aggregate folds.
const (
	AggMax AggKind = iota
	AggMin
	AggSum
)

// String names the fold.
func (k AggKind) String() string {
	switch k {
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggSum:
		return "SUM"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// UpdateMax folds val into the MAX aggregate of the group key,
// reporting every cache line the probe sequence touches. A write is
// reported only when the slot changes (insert or new maximum), which
// keeps read-mostly steady state clean.
func (t *AggTable) UpdateMax(ctx *Ctx, key uint32, val int64) {
	t.Update(ctx, AggMax, key, val)
}

// UpdateSum folds val into a SUM aggregate (always dirties the line).
func (t *AggTable) UpdateSum(ctx *Ctx, key uint32, val int64) {
	t.Update(ctx, AggSum, key, val)
}

// UpdateMin folds val into a MIN aggregate.
func (t *AggTable) UpdateMin(ctx *Ctx, key uint32, val int64) {
	t.Update(ctx, AggMin, key, val)
}

// Update folds val into the group's aggregate under the given kind.
func (t *AggTable) Update(ctx *Ctx, kind AggKind, key uint32, val int64) {
	t.update(ctx, key, val, kind)
}

func (t *AggTable) update(ctx *Ctx, key uint32, val int64, kind AggKind) {
	if t.count*10 >= len(t.slots)*9 {
		t.grow(ctx)
	}
	capacity := uint32(len(t.slots))
	i := hash(key) % capacity
	line := uint64(i) / 4
	ctx.Read(t.slotAddr(int(i)))
	for {
		s := &t.slots[i]
		switch {
		case !s.used:
			s.used, s.key, s.val = true, key, val
			t.count++
			ctx.Write(t.slotAddr(int(i)))
			return
		case s.key == key:
			switch {
			case kind == AggSum:
				s.val += val
				ctx.Write(t.slotAddr(int(i)))
			case kind == AggMax && val > s.val:
				s.val = val
				ctx.Write(t.slotAddr(int(i)))
			case kind == AggMin && val < s.val:
				s.val = val
				ctx.Write(t.slotAddr(int(i)))
			}
			return
		}
		i = (i + 1) % capacity
		if nl := uint64(i) / 4; nl != line {
			line = nl
			ctx.Read(t.slotAddr(int(i)))
		}
	}
}

// Get returns the aggregate of a key, for result verification.
func (t *AggTable) Get(key uint32) (int64, bool) {
	capacity := uint32(len(t.slots))
	i := hash(key) % capacity
	for probes := uint32(0); probes < capacity; probes++ {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
		i = (i + 1) % capacity
	}
	return 0, false
}

// Each calls fn for every stored group.
func (t *AggTable) Each(fn func(key uint32, val int64)) {
	for i := range t.slots {
		if t.slots[i].used {
			fn(t.slots[i].key, t.slots[i].val)
		}
	}
}

// grow doubles the table when the load factor is exceeded (the
// expected-group sizing normally prevents this). The rehash reports
// sequential reads of the old table and writes into the new one.
func (t *AggTable) grow(ctx *Ctx) {
	old := t.slots
	oldRegion := t.region
	t.grows++
	newCap := len(old) * 2
	//lint:allow hotalloc amortized doubling rehash, O(log n) occurrences; expected-group sizing normally prevents it
	t.slots = make([]aggSlot, newCap)
	//lint:allow hotalloc region naming happens only on the amortized grow path
	t.region = t.space.Alloc(fmt.Sprintf("%s.g%d", t.name, t.grows), uint64(newCap)*slotBytes)
	t.count = 0
	for i := range old {
		if !old[i].used {
			continue
		}
		if ctx != nil && i%4 == 0 {
			ctx.Read(oldRegion.Addr(uint64(i) * slotBytes))
		}
		t.reinsert(ctx, old[i].key, old[i].val)
	}
	t.space.Free(oldRegion)
}

// reinsert places a key during rehash without growth checks.
func (t *AggTable) reinsert(ctx *Ctx, key uint32, val int64) {
	capacity := uint32(len(t.slots))
	i := hash(key) % capacity
	for {
		s := &t.slots[i]
		if !s.used {
			s.used, s.key, s.val = true, key, val
			t.count++
			if ctx != nil {
				ctx.Write(t.slotAddr(int(i)))
			}
			return
		}
		i = (i + 1) % capacity
	}
}

// Clear empties the table for the next execution without releasing the
// allocation (the engine reuses worker-local tables across runs).
func (t *AggTable) Clear() {
	clear(t.slots)
	t.count = 0
}
