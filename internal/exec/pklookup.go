package exec

import (
	"fmt"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

// PKLookupProject is the S/4HANA OLTP operator of Section VI-E in the
// plan shape a real engine uses for a multi-column primary-key
// predicate: probe the inverted index of the most selective key
// column, verify the remaining key predicates with point reads into
// the other key columns, then project the qualifying rows through the
// projection columns' dictionaries.
//
// Its hot working set — the inverted index's probed lines, the key
// columns' touched code lines and above all the projected columns'
// dictionaries — is what a concurrent scan evicts in Figures 1 and 12.
//
//conc:shared kernel instance is bound to one core's slot; only the worker driving that core calls Step between barriers
type PKLookupProject struct {
	Index        *column.InvertedIndex // most selective key column
	IndexKey     int64
	ResidualCols []*column.Column // remaining key columns
	ResidualKeys []int64
	Project      []*column.Column

	// OverheadCycles is a fixed per-execution cost covering the parts
	// of an end-to-end OLTP statement outside the storage operators:
	// parsing, plan-cache lookup, session handling, result transfer
	// (the paper measures end-to-end response times, Section III-D).
	OverheadCycles int64

	stage     int // 0 probe, 1 verify, 2 project
	cands     []uint32
	rows      []uint32
	verifyIdx int
	projRow   int
	projCol   int
	Projected int64
	ops       []cachesim.BatchOp
}

// NewPKLookupProject constructs the operator.
func NewPKLookupProject(index *column.InvertedIndex, indexKey int64,
	residualCols []*column.Column, residualKeys []int64,
	project []*column.Column) (*PKLookupProject, error) {
	if index == nil {
		return nil, fmt.Errorf("exec: nil index")
	}
	if len(residualCols) != len(residualKeys) {
		return nil, fmt.Errorf("exec: %d residual columns for %d keys",
			len(residualCols), len(residualKeys))
	}
	if len(project) == 0 {
		return nil, fmt.Errorf("exec: nothing to project")
	}
	return &PKLookupProject{
		Index:        index,
		IndexKey:     indexKey,
		ResidualCols: residualCols,
		ResidualKeys: residualKeys,
		Project:      project,
	}, nil
}

// Rows returns the matching rows once probing and verification are
// complete.
func (p *PKLookupProject) Rows() []uint32 { return p.rows }

// Step advances the operator; row-units are candidate verifications
// and column projections.
//
//perf:hot primary-key lookup kernel inner loop
func (p *PKLookupProject) Step(ctx *Ctx, budget int) (int, bool) {
	processed := 0
	for processed < budget {
		switch p.stage {
		case 0:
			processed += p.probe(ctx)
		case 1:
			if p.verifyIdx >= len(p.cands) {
				p.stage = 2
				continue
			}
			p.verifyOne(ctx)
			processed++
		default:
			if p.projRow >= len(p.rows) {
				return processed, true
			}
			p.projectOne(ctx)
			processed++
		}
	}
	return processed, false
}

func (p *PKLookupProject) probe(ctx *Ctx) int {
	p.stage = 1
	if p.OverheadCycles > 0 {
		ctx.Compute(p.OverheadCycles, uint64(p.OverheadCycles)/2)
	}
	dict := p.Index.Column().Dict
	code, ok := dict.CodeOf(p.IndexKey)
	if dict.Len() > 0 {
		lookup := code
		if !ok {
			lookup = 0
		}
		ctx.Read(dict.Addr(lookup))
	}
	ctx.Compute(LookupCyclesPerRow, LookupInstrsPerRow)
	if !ok {
		p.cands = nil
		return 1
	}
	ctx.Read(p.Index.HeaderAddr(code))
	postings := p.Index.PostingsOf(code)
	p.ops = p.ops[:0]
	for k := 0; k < len(postings); k += 16 {
		p.ops = append(p.ops, cachesim.BatchOp{Addr: p.Index.PostingAddr(code, k)})
	}
	ctx.ReadBatch(p.ops)
	ctx.Compute(int64(len(postings)/8+1), uint64(len(postings)/4+2))
	p.cands = append(p.cands[:0], postings...)
	if len(postings) > 0 {
		return len(postings)
	}
	return 1
}

// verifyOne checks the residual key predicates for one candidate row
// with point reads into the key columns.
func (p *PKLookupProject) verifyOne(ctx *Ctx) {
	row := int(p.cands[p.verifyIdx])
	p.verifyIdx++
	match := true
	p.ops = p.ops[:0]
	for i, col := range p.ResidualCols {
		p.ops = append(p.ops, cachesim.BatchOp{Addr: col.Codes.Addr(row)})
		if col.Value(row) != p.ResidualKeys[i] {
			match = false
			break // short-circuit like a real residual filter
		}
	}
	ctx.ReadBatch(p.ops)
	ctx.Compute(LookupCyclesPerRow, LookupInstrsPerRow)
	if match {
		p.rows = append(p.rows, uint32(row))
	}
}

// projectOne materialises one (row, column) value through the
// dictionary; wide NVARCHAR-like entries span several lines.
func (p *PKLookupProject) projectOne(ctx *Ctx) {
	row := int(p.rows[p.projRow])
	col := p.Project[p.projCol]
	p.ops = append(p.ops[:0], cachesim.BatchOp{Addr: col.Codes.Addr(row)})
	code := col.Codes.Get(row)
	base := uint64(code) * col.Dict.EntrySize()
	for off := uint64(0); off < col.Dict.EntrySize(); off += memory.LineSize {
		p.ops = append(p.ops, cachesim.BatchOp{Addr: col.Dict.Region().Addr(base + off)})
	}
	ctx.ReadBatch(p.ops)
	_ = col.Dict.Value(code)
	ctx.Compute(LookupCyclesPerRow, LookupInstrsPerRow)
	p.Projected++
	p.projCol++
	if p.projCol >= len(p.Project) {
		p.projCol = 0
		p.projRow++
	}
}

// Reset rewinds the operator for the next execution with new keys.
func (p *PKLookupProject) Reset(indexKey int64, residualKeys []int64) {
	p.IndexKey = indexKey
	copy(p.ResidualKeys, residualKeys)
	p.stage = 0
	p.cands = p.cands[:0]
	p.rows = p.rows[:0]
	p.verifyIdx, p.projRow, p.projCol = 0, 0, 0
	p.Projected = 0
}
