package exec

import (
	"math/rand"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

func testCtx(t *testing.T) (*Ctx, *memory.Space) {
	t.Helper()
	cfg := cachesim.Config{
		Cores:         2,
		FreqHz:        2e9,
		L1:            cachesim.Geometry{Size: 1 << 10, Ways: 2},
		L2:            cachesim.Geometry{Size: 4 << 10, Ways: 4},
		LLC:           cachesim.Geometry{Size: 64 << 10, Ways: 16},
		L1Latency:     4,
		L2Latency:     12,
		LLCLatency:    40,
		DRAMLatency:   160,
		DRAMBandwidth: 32e9,
		PrefetchDepth: 16,
		InclusiveLLC:  true,
		NumCLOS:       4,
	}
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &Ctx{M: m, Core: 0}, memory.NewSpace()
}

func uniformCol(t *testing.T, space *memory.Space, name string, n int, lo, hi int64, seed int64) *column.Column {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = lo + rng.Int63n(hi-lo+1)
	}
	c, err := column.EncodeDense(space, name, vals, lo, hi, column.DefaultEntrySize)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColumnScanCount(t *testing.T) {
	ctx, space := testCtx(t)
	col := uniformCol(t, space, "x", 10_000, 1, 100, 1)
	bound := int64(60)
	scan, err := NewColumnScan(col, 0, col.Rows(), bound)
	if err != nil {
		t.Fatal(err)
	}
	rows := Drive(ctx, scan, 1000)
	if rows != int64(col.Rows()) {
		t.Errorf("processed %d rows, want %d", rows, col.Rows())
	}
	var want int64
	for i := 0; i < col.Rows(); i++ {
		if col.Value(i) > bound {
			want++
		}
	}
	if scan.Count != want {
		t.Errorf("Count = %d, want %d", scan.Count, want)
	}
}

func TestColumnScanRangeValidation(t *testing.T) {
	_, space := testCtx(t)
	col := uniformCol(t, space, "x", 10, 1, 5, 1)
	for _, r := range [][2]int{{-1, 5}, {0, 11}, {6, 3}} {
		if _, err := NewColumnScan(col, r[0], r[1], 2); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

func TestColumnScanTouchesEachLineOnce(t *testing.T) {
	ctx, space := testCtx(t)
	col := uniformCol(t, space, "x", 100_000, 1, 1_000_000, 2)
	scan, _ := NewColumnScan(col, 0, col.Rows(), 0)
	before := ctx.M.Stats(0).Reads
	Drive(ctx, scan, 4096)
	reads := ctx.M.Stats(0).Reads - before
	wantLines := col.Codes.Region().Lines()
	if reads > wantLines+2 {
		t.Errorf("scan issued %d reads for %d lines", reads, wantLines)
	}
	if reads < wantLines-2 {
		t.Errorf("scan issued only %d reads for %d lines", reads, wantLines)
	}
	// No dictionary access at all: the scan runs on compressed codes.
	dict := col.Dict.Region()
	if got := ctx.M.LLCOccupancy(dict.Base, dict.Base+memory.Addr(dict.Size)); got != 0 {
		t.Errorf("scan pulled %d dictionary lines into the LLC", got)
	}
}

func TestColumnScanReset(t *testing.T) {
	ctx, space := testCtx(t)
	col := uniformCol(t, space, "x", 1000, 1, 10, 3)
	scan, _ := NewColumnScan(col, 0, col.Rows(), 5)
	Drive(ctx, scan, 100)
	first := scan.Count
	scan.Reset(scan.LoCode, scan.HiCode)
	Drive(ctx, scan, 100)
	if scan.Count != first {
		t.Errorf("after Reset count %d != %d", scan.Count, first)
	}
}

func TestFirstRowOfLine(t *testing.T) {
	_, space := testCtx(t)
	v, _ := column.NewPackedVector(space, "p", 1000, 20)
	// Line 0 holds bits [0,512): rows 0..25 start there (row 25 starts
	// at bit 500); row 26 starts at bit 520 in line 1.
	if got := firstRowOfLine(v, 0); got != 0 {
		t.Errorf("firstRowOfLine(0) = %d", got)
	}
	if got := firstRowOfLine(v, 1); got != 26 {
		t.Errorf("firstRowOfLine(1) = %d, want 26", got)
	}
	// Consistency with LineOfRow.
	for line := uint64(0); line < 10; line++ {
		r := firstRowOfLine(v, line)
		if v.LineOfRow(r) != line {
			t.Errorf("row %d not in line %d", r, line)
		}
		if r > 0 && v.LineOfRow(r-1) >= line {
			t.Errorf("row %d already in line %d", r-1, line)
		}
	}
}

func TestAggTableUpdateMaxAndSum(t *testing.T) {
	ctx, space := testCtx(t)
	tab := NewAggTable(space, "t", 100)
	tab.UpdateMax(ctx, 5, 10)
	tab.UpdateMax(ctx, 5, 3)
	tab.UpdateMax(ctx, 5, 42)
	if v, ok := tab.Get(5); !ok || v != 42 {
		t.Errorf("Get(5) = %d, %v; want 42", v, ok)
	}
	tab.UpdateSum(ctx, 7, 10)
	tab.UpdateSum(ctx, 7, 5)
	if v, ok := tab.Get(7); !ok || v != 15 {
		t.Errorf("Get(7) = %d, %v; want 15", v, ok)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	if _, ok := tab.Get(99); ok {
		t.Error("missing key found")
	}
}

func TestAggTableCollisionsAndGrowth(t *testing.T) {
	ctx, space := testCtx(t)
	tab := NewAggTable(space, "t", 4) // deliberately undersized
	const n = 1000
	for k := uint32(0); k < n; k++ {
		tab.UpdateMax(ctx, k, int64(k)*2)
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	if tab.Grows() == 0 {
		t.Error("expected growth")
	}
	for k := uint32(0); k < n; k++ {
		if v, ok := tab.Get(k); !ok || v != int64(k)*2 {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
	}
	seen := 0
	tab.Each(func(k uint32, v int64) { seen++ })
	if seen != n {
		t.Errorf("Each visited %d, want %d", seen, n)
	}
}

func TestAggTableClear(t *testing.T) {
	ctx, space := testCtx(t)
	tab := NewAggTable(space, "t", 10)
	tab.UpdateMax(ctx, 1, 1)
	tab.Clear()
	if tab.Len() != 0 {
		t.Error("Clear left entries")
	}
	if _, ok := tab.Get(1); ok {
		t.Error("Clear left key")
	}
}

func TestAggCapacitySizing(t *testing.T) {
	// The footprint model behind Figure 5: 10^5 groups at 16 B slots
	// and 0.7 load factor is ~2.3 MB per worker.
	c := AggCapacityFor(100_000)
	bytes := uint64(c) * 16
	if bytes < 2_000_000 || bytes > 2_600_000 {
		t.Errorf("capacity for 1e5 groups = %d bytes", bytes)
	}
	if c%4 != 0 {
		t.Error("capacity not line aligned")
	}
	if AggCapacityFor(0) < 4 {
		t.Error("tiny capacity")
	}
}

func TestAggLocalMatchesReference(t *testing.T) {
	ctx, space := testCtx(t)
	groups := uniformCol(t, space, "g", 20_000, 0, 99, 4)
	values := uniformCol(t, space, "v", 20_000, 1, 10_000, 5)
	tab := NewAggTable(space, "local", 100)
	agg, err := NewAggLocal(groups, values, 0, groups.Rows(), tab)
	if err != nil {
		t.Fatal(err)
	}
	Drive(ctx, agg, 777)

	want := map[uint32]int64{}
	for i := 0; i < groups.Rows(); i++ {
		g := groups.Codes.Get(i)
		v := values.Value(i)
		if cur, ok := want[g]; !ok || v > cur {
			want[g] = v
		}
	}
	if tab.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", tab.Len(), len(want))
	}
	for g, wv := range want {
		if v, ok := tab.Get(g); !ok || v != wv {
			t.Errorf("group %d = %d, want %d", g, v, wv)
		}
	}
}

func TestAggLocalValidation(t *testing.T) {
	_, space := testCtx(t)
	g := uniformCol(t, space, "g", 10, 0, 3, 1)
	v := uniformCol(t, space, "v", 20, 0, 3, 1)
	tab := NewAggTable(space, "t", 4)
	if _, err := NewAggLocal(g, v, 0, 10, tab); err == nil {
		t.Error("row mismatch accepted")
	}
	v10 := uniformCol(t, space, "v10", 10, 0, 3, 1)
	if _, err := NewAggLocal(g, v10, 0, 11, tab); err == nil {
		t.Error("bad range accepted")
	}
}

func TestAggMergeCombinesLocals(t *testing.T) {
	ctx, space := testCtx(t)
	l1 := NewAggTable(space, "l1", 10)
	l2 := NewAggTable(space, "l2", 10)
	l1.UpdateMax(ctx, 1, 10)
	l1.UpdateMax(ctx, 2, 20)
	l2.UpdateMax(ctx, 2, 25)
	l2.UpdateMax(ctx, 3, 5)
	global := NewAggTable(space, "g", 10)
	merge := NewAggMerge([]*AggTable{l1, l2}, global)
	Drive(ctx, merge, 7)
	want := map[uint32]int64{1: 10, 2: 25, 3: 5}
	if global.Len() != len(want) {
		t.Fatalf("global has %d groups", global.Len())
	}
	for k, wv := range want {
		if v, ok := global.Get(k); !ok || v != wv {
			t.Errorf("global[%d] = %d, want %d", k, v, wv)
		}
	}
	merge.Reset()
	if global.Len() != 0 {
		t.Error("Reset did not clear global")
	}
}

func TestAggregationEndToEnd(t *testing.T) {
	// Full two-phase aggregation with two workers on two cores matches
	// a single-pass reference.
	ctx0, space := testCtx(t)
	ctx1 := &Ctx{M: ctx0.M, Core: 1}
	groups := uniformCol(t, space, "g", 10_000, 0, 499, 6)
	values := uniformCol(t, space, "v", 10_000, 1, 1_000_000, 7)

	lt0 := NewAggTable(space, "lt0", 500)
	lt1 := NewAggTable(space, "lt1", 500)
	half := groups.Rows() / 2
	a0, _ := NewAggLocal(groups, values, 0, half, lt0)
	a1, _ := NewAggLocal(groups, values, half, groups.Rows(), lt1)
	Drive(ctx0, a0, 512)
	Drive(ctx1, a1, 512)
	global := NewAggTable(space, "global", 500)
	Drive(ctx0, NewAggMerge([]*AggTable{lt0, lt1}, global), 512)

	want := map[uint32]int64{}
	for i := 0; i < groups.Rows(); i++ {
		g := groups.Codes.Get(i)
		v := values.Value(i)
		if cur, ok := want[g]; !ok || v > cur {
			want[g] = v
		}
	}
	for g, wv := range want {
		if v, ok := global.Get(g); !ok || v != wv {
			t.Fatalf("global[%d] = %d,%v want %d", g, v, ok, wv)
		}
	}
	if global.Len() != len(want) {
		t.Errorf("global groups = %d, want %d", global.Len(), len(want))
	}
}

func TestBitVector(t *testing.T) {
	_, space := testCtx(t)
	bv, err := NewBitVector(space, "bv", 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bv.Len() != 1000 || bv.Bytes() != 125 {
		t.Errorf("Len=%d Bytes=%d", bv.Len(), bv.Bytes())
	}
	bv.Set(1)
	bv.Set(1000)
	bv.Set(500)
	if !bv.Test(1) || !bv.Test(1000) || !bv.Test(500) {
		t.Error("set bits not found")
	}
	if bv.Test(2) || bv.Test(0) || bv.Test(1001) {
		t.Error("unset/out-of-domain bits reported set")
	}
	if bv.PopCount() != 3 {
		t.Errorf("PopCount = %d", bv.PopCount())
	}
	bv.Clear()
	if bv.PopCount() != 0 {
		t.Error("Clear left bits")
	}
	if _, err := NewBitVector(space, "z", 0, 0); err == nil {
		t.Error("empty vector accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set out of domain should panic")
			}
		}()
		bv.Set(1001)
	}()
}

func TestBitVectorPaperSizes(t *testing.T) {
	// Figure 6: 10^8 keys -> 100 Mbit = 12.5 MB.
	_, space := testCtx(t)
	bv, _ := NewBitVector(space, "bv", 1, 100_000_000)
	if got := bv.Bytes(); got != 12_500_000 {
		t.Errorf("10^8-key bit vector = %d bytes, want 12.5e6", got)
	}
}

func TestFKJoinEndToEnd(t *testing.T) {
	ctx, space := testCtx(t)
	const nKeys = 2000
	// Primary keys 1..nKeys in shuffled order.
	perm := rand.New(rand.NewSource(8)).Perm(nKeys)
	pk := make([]int64, nKeys)
	for i, p := range perm {
		pk[i] = int64(p) + 1
	}
	pkCol, err := column.EncodeDense(space, "p", pk, 1, nKeys, 4)
	if err != nil {
		t.Fatal(err)
	}
	fkCol := uniformCol(t, space, "f", 10_000, 1, nKeys, 9)

	bv, _ := NewBitVector(space, "bv", 1, nKeys)
	build, err := NewJoinBuild(pkCol, 0, pkCol.Rows(), bv)
	if err != nil {
		t.Fatal(err)
	}
	Drive(ctx, build, 300)
	if bv.PopCount() != nKeys {
		t.Fatalf("built %d bits, want %d", bv.PopCount(), nKeys)
	}
	probe, err := NewJoinProbe(fkCol, 0, fkCol.Rows(), bv)
	if err != nil {
		t.Fatal(err)
	}
	Drive(ctx, probe, 300)
	// Every foreign key references an existing primary key.
	if probe.Matches != int64(fkCol.Rows()) {
		t.Errorf("Matches = %d, want %d", probe.Matches, fkCol.Rows())
	}

	// Partial build: only even keys -> matches drop accordingly.
	bv.Clear()
	probe.Reset()
	for k := int64(2); k <= nKeys; k += 2 {
		bv.Set(k)
	}
	Drive(ctx, probe, 300)
	var want int64
	for i := 0; i < fkCol.Rows(); i++ {
		if fkCol.Value(i)%2 == 0 {
			want++
		}
	}
	if probe.Matches != want {
		t.Errorf("partial Matches = %d, want %d", probe.Matches, want)
	}
}

func TestJoinValidation(t *testing.T) {
	_, space := testCtx(t)
	col := uniformCol(t, space, "c", 10, 1, 5, 1)
	bv, _ := NewBitVector(space, "bv", 1, 5)
	if _, err := NewJoinBuild(col, 0, 11, bv); err == nil {
		t.Error("bad build range accepted")
	}
	if _, err := NewJoinProbe(col, -1, 5, bv); err == nil {
		t.Error("bad probe range accepted")
	}
}

func TestIndexLookupProject(t *testing.T) {
	ctx, space := testCtx(t)
	// Two key columns; rows where k1=3 and k2=7 are the matches.
	n := 5000
	rng := rand.New(rand.NewSource(10))
	k1 := make([]int64, n)
	k2 := make([]int64, n)
	payload := make([]int64, n)
	for i := range k1 {
		k1[i] = rng.Int63n(10)
		k2[i] = rng.Int63n(10)
		payload[i] = int64(i) * 3
	}
	c1, _ := column.EncodeDense(space, "k1", k1, 0, 9, 4)
	c2, _ := column.EncodeDense(space, "k2", k2, 0, 9, 4)
	pc, _ := column.EncodeDense(space, "pay", payload, 0, int64(n-1)*3, 4)
	ix1, _ := column.BuildInvertedIndex(space, c1)
	ix2, _ := column.BuildInvertedIndex(space, c2)

	op, err := NewIndexLookupProject(
		[]*column.InvertedIndex{ix1, ix2}, []int64{3, 7}, []*column.Column{pc})
	if err != nil {
		t.Fatal(err)
	}
	Drive(ctx, op, 64)

	var wantRows []uint32
	for i := 0; i < n; i++ {
		if k1[i] == 3 && k2[i] == 7 {
			wantRows = append(wantRows, uint32(i))
		}
	}
	got := op.Rows()
	if len(got) != len(wantRows) {
		t.Fatalf("rows = %d, want %d", len(got), len(wantRows))
	}
	for i := range got {
		if got[i] != wantRows[i] {
			t.Fatalf("row[%d] = %d, want %d", i, got[i], wantRows[i])
		}
	}
	if op.Projected != int64(len(wantRows)) {
		t.Errorf("Projected = %d, want %d", op.Projected, len(wantRows))
	}

	// Reset with a missing key yields no rows.
	op.Reset([]int64{3, 99})
	Drive(ctx, op, 64)
	if len(op.Rows()) != 0 || op.Projected != 0 {
		t.Errorf("missing key: rows=%d projected=%d", len(op.Rows()), op.Projected)
	}
}

func TestIndexLookupProjectValidation(t *testing.T) {
	_, space := testCtx(t)
	c := uniformCol(t, space, "c", 10, 0, 3, 1)
	ix, _ := column.BuildInvertedIndex(space, c)
	if _, err := NewIndexLookupProject(nil, nil, []*column.Column{c}); err == nil {
		t.Error("no indexes accepted")
	}
	if _, err := NewIndexLookupProject([]*column.InvertedIndex{ix}, []int64{1, 2}, []*column.Column{c}); err == nil {
		t.Error("key/index mismatch accepted")
	}
	if _, err := NewIndexLookupProject([]*column.InvertedIndex{ix}, []int64{1}, nil); err == nil {
		t.Error("no projection accepted")
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, []uint32{2, 3}},
		{[]uint32{1, 5, 9}, []uint32{2, 6, 10}, nil},
		{nil, []uint32{1}, nil},
		{[]uint32{1, 2}, []uint32{1, 2}, []uint32{1, 2}},
	}
	for _, c := range cases {
		got := intersectSorted(append([]uint32(nil), c.a...), c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestDriveDefaultQuantum(t *testing.T) {
	ctx, space := testCtx(t)
	col := uniformCol(t, space, "x", 100, 1, 5, 1)
	scan, _ := NewColumnScan(col, 0, col.Rows(), 0)
	if rows := Drive(ctx, scan, 0); rows != 100 {
		t.Errorf("Drive = %d rows", rows)
	}
}
