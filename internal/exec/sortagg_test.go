package exec

import (
	"testing"
)

func TestSortAggMatchesHashAgg(t *testing.T) {
	ctx, space := testCtx(t)
	n := 20_000
	groups := uniformCol(t, space, "g", n, 0, 499, 30)
	values := uniformCol(t, space, "v", n, 1, 1_000_000, 31)

	sortAgg, err := NewSortAggLocal(space, groups, values, 0, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	Drive(ctx, sortAgg, 777)

	tab := NewAggTable(space, "hash", 500)
	hashAgg, _ := NewAggLocal(groups, values, 0, n, tab)
	Drive(ctx, hashAgg, 777)

	got := sortAgg.Result()
	if len(got) != tab.Len() {
		t.Fatalf("sort agg found %d groups, hash agg %d", len(got), tab.Len())
	}
	for g, v := range got {
		if hv, ok := tab.Get(g); !ok || hv != v {
			t.Errorf("group %d: sort %d, hash %d (%v)", g, v, hv, ok)
		}
	}
}

func TestSortAggValidation(t *testing.T) {
	_, space := testCtx(t)
	g := uniformCol(t, space, "g", 10, 0, 3, 1)
	v := uniformCol(t, space, "v", 20, 0, 3, 1)
	if _, err := NewSortAggLocal(space, g, v, 0, 10, 16); err == nil {
		t.Error("row mismatch accepted")
	}
	v10 := uniformCol(t, space, "v10", 10, 0, 3, 1)
	if _, err := NewSortAggLocal(space, g, v10, -1, 10, 16); err == nil {
		t.Error("bad range accepted")
	}
	a, err := NewSortAggLocal(space, g, v10, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Buckets != 256 {
		t.Errorf("default buckets = %d", a.Buckets)
	}
}

// TestSortAggRangePartition verifies a partial-range kernel only
// aggregates its rows.
func TestSortAggRangePartition(t *testing.T) {
	ctx, space := testCtx(t)
	n := 1000
	groups := uniformCol(t, space, "g", n, 0, 9, 32)
	values := uniformCol(t, space, "v", n, 1, 100, 33)
	a, _ := NewSortAggLocal(space, groups, values, 100, 300, 16)
	Drive(ctx, a, 64)

	want := map[uint32]int64{}
	for i := 100; i < 300; i++ {
		g := groups.Codes.Get(i)
		v := values.Value(i)
		if cur, ok := want[g]; !ok || v > cur {
			want[g] = v
		}
	}
	got := a.Result()
	if len(got) != len(want) {
		t.Fatalf("groups = %d, want %d", len(got), len(want))
	}
	for g, v := range want {
		if got[g] != v {
			t.Errorf("group %d = %d, want %d", g, got[g], v)
		}
	}
}

// TestSortAggCacheInsensitivity is the ablation: with a group count
// whose hash table is LLC-sized, the hash aggregation slows markedly
// under a tiny cache while the sort-based one barely moves.
func TestSortAggCacheInsensitivity(t *testing.T) {
	run := func(useSort bool, mask uint32) float64 {
		ctx, space := testCtx(t)
		// Restrict CLOS 0 (all cores) to emulate a small cache.
		if mask != 0 {
			if err := ctx.M.CAT().SetMask(0, 0x3); err != nil {
				t.Fatal(err)
			}
		}
		n := 60_000
		// Small dictionary so the aggregation structure, not the
		// dictionary, is the cache-resident working set: hash table
		// ~LLC-sized vs ~64 bucket write tails.
		groups := uniformCol(t, space, "g", n, 0, 3000, 40)
		values := uniformCol(t, space, "v", n, 1, 1000, 41)
		var k Kernel
		if useSort {
			k, _ = NewSortAggLocal(space, groups, values, 0, n, 64)
		} else {
			tab := NewAggTable(space, "t", 3000)
			k, _ = NewAggLocal(groups, values, 0, n, tab)
		}
		Drive(ctx, k, 2048)
		return float64(n) / ctx.M.Seconds(ctx.M.Now(0))
	}
	hashFull := run(false, 0)
	hashSmall := run(false, 0x3)
	sortFull := run(true, 0)
	sortSmall := run(true, 0x3)

	hashRatio := hashSmall / hashFull
	sortRatio := sortSmall / sortFull
	if sortRatio <= hashRatio {
		t.Errorf("sort agg should be less cache-sensitive: hash %.3f vs sort %.3f", hashRatio, sortRatio)
	}
}
