package exec

import (
	"fmt"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

// WideAggLocal is the grouped-aggregation kernel for analytical
// pipelines that aggregate several value columns at once (e.g. TPC-H
// Q1 sums extendedprice, quantity, discount and tax). Per row it reads
// the grouping code, then each value column's code (sequential) and
// dictionary entry (random), and folds everything into one hash-table
// update. The per-row dictionary traffic across several columns is
// what makes queries like TPC-H Q1 profit from cache partitioning
// (Section VI-D).
//
//conc:shared kernel instance is bound to one core's slot; only the worker driving that core calls Step between barriers
type WideAggLocal struct {
	GroupCol  *column.Column
	ValueCols []*column.Column
	From      int
	To        int
	Table     *AggTable

	// SampleEvery models predicate selectivity upstream of the
	// aggregation: only every k-th row is decoded and folded; the
	// other rows are streamed past (their input lines are still
	// read). 0 or 1 aggregates every row.
	SampleEvery int

	cur       int
	started   bool
	lastGLine uint64
	lastVLine []uint64
	ops       []cachesim.BatchOp // scratch for the per-row batched reads
}

// NewWideAggLocal constructs the kernel over [from, to).
func NewWideAggLocal(group *column.Column, values []*column.Column, from, to int, table *AggTable) (*WideAggLocal, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("exec: wide aggregation needs value columns")
	}
	for _, v := range values {
		if v.Rows() != group.Rows() {
			return nil, fmt.Errorf("exec: value column %q has %d rows, group column %d",
				v.Name, v.Rows(), group.Rows())
		}
	}
	if from < 0 || to > group.Rows() || from > to {
		return nil, fmt.Errorf("exec: aggregation range [%d,%d) out of %d rows", from, to, group.Rows())
	}
	return &WideAggLocal{
		GroupCol:  group,
		ValueCols: values,
		From:      from,
		To:        to,
		Table:     table,
		cur:       from,
		lastVLine: make([]uint64, len(values)),
	}, nil
}

// Step processes up to budget rows. Each row's reads — group line,
// value-column lines, dictionary entries — are submitted as one small
// batch before the table update, whose probe keeps its own interleaved
// accesses; the simulated sequence is unchanged.
//
//perf:hot wide-aggregation kernel inner loop
func (a *WideAggLocal) Step(ctx *Ctx, budget int) (int, bool) {
	g := a.GroupCol.Codes
	gRegion := g.Region()
	every := a.SampleEvery
	if every < 1 {
		every = 1
	}
	processed := 0
	for processed < budget && a.cur < a.To {
		a.ops = a.ops[:0]
		if gl := g.LineOfRow(a.cur); !a.started || gl != a.lastGLine {
			a.ops = append(a.ops, cachesim.BatchOp{Addr: gRegion.Addr(gl * memory.LineSize)})
			a.lastGLine = gl
		}
		selected := a.cur%every == 0
		var gcode uint32
		if selected {
			gcode = g.Get(a.cur)
		}
		var sum int64
		for i, vc := range a.ValueCols {
			codes := vc.Codes
			if vl := codes.LineOfRow(a.cur); !a.started || vl != a.lastVLine[i] {
				a.ops = append(a.ops, cachesim.BatchOp{Addr: codes.Region().Addr(vl * memory.LineSize)})
				a.lastVLine[i] = vl
			}
			if !selected {
				continue
			}
			vcode := codes.Get(a.cur)
			a.ops = append(a.ops, cachesim.BatchOp{Addr: vc.Dict.Addr(vcode)})
			sum += vc.Dict.Value(vcode)
		}
		a.started = true
		ctx.ReadBatch(a.ops)
		if selected {
			a.Table.UpdateSum(ctx, gcode, sum)
			ctx.Compute(AggCyclesPerRow+int64(len(a.ValueCols)), AggInstrsPerRow+2*uint64(len(a.ValueCols)))
		} else {
			ctx.Compute(1, 2)
		}
		a.cur++
		processed++
	}
	return processed, a.cur >= a.To
}
