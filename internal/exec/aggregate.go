package exec

import (
	"fmt"

	"cachepart/internal/cachesim"
	"cachepart/internal/column"
	"cachepart/internal/memory"
)

// AggLocal is the first phase of grouped aggregation (the paper's
// Query 2): one worker collects MAX(value) per group over its row
// partition into a thread-local hash table. Per row it reads the
// grouping code and the value code (sequential, prefetch-friendly),
// decompresses the value through the dictionary (random access — this
// is the dictionary-size sensitivity of Figure 5), and probes the
// local table (random access — the group-count sensitivity).
//
//conc:shared kernel instance is bound to one core's slot; only the worker driving that core calls Step between barriers
type AggLocal struct {
	GroupCol *column.Column
	ValueCol *column.Column
	From     int
	To       int
	Table    *AggTable
	// Kind is the aggregate fold (MAX for the paper's Query 2).
	Kind AggKind

	cur                  int
	lastGLine, lastVLine uint64
	started              bool
}

// NewAggLocal constructs the MAX local phase over [from, to) — the
// paper's Query 2.
func NewAggLocal(group, value *column.Column, from, to int, table *AggTable) (*AggLocal, error) {
	return NewAggLocalKind(group, value, from, to, table, AggMax)
}

// NewAggLocalKind constructs a local phase with an explicit fold.
func NewAggLocalKind(group, value *column.Column, from, to int, table *AggTable, kind AggKind) (*AggLocal, error) {
	if group.Rows() != value.Rows() {
		return nil, fmt.Errorf("exec: group column has %d rows, value column %d", group.Rows(), value.Rows())
	}
	if from < 0 || to > group.Rows() || from > to {
		return nil, fmt.Errorf("exec: aggregation range [%d,%d) out of %d rows", from, to, group.Rows())
	}
	return &AggLocal{GroupCol: group, ValueCol: value, From: from, To: to, Table: table, Kind: kind, cur: from}, nil
}

// Step processes up to budget rows. The leading per-row reads (group
// line, value line, dictionary entry) are submitted as one small batch;
// the table probe keeps its own interleaved accesses, so the simulated
// sequence is unchanged.
//
//perf:hot per-core aggregation kernel inner loop
func (a *AggLocal) Step(ctx *Ctx, budget int) (int, bool) {
	g, v := a.GroupCol.Codes, a.ValueCol.Codes
	gRegion, vRegion := g.Region(), v.Region()
	processed := 0
	var ops [3]cachesim.BatchOp
	for processed < budget && a.cur < a.To {
		n := 0
		if gl := g.LineOfRow(a.cur); !a.started || gl != a.lastGLine {
			ops[n] = cachesim.BatchOp{Addr: gRegion.Addr(gl * memory.LineSize)}
			n++
			a.lastGLine = gl
		}
		if vl := v.LineOfRow(a.cur); !a.started || vl != a.lastVLine {
			ops[n] = cachesim.BatchOp{Addr: vRegion.Addr(vl * memory.LineSize)}
			n++
			a.lastVLine = vl
		}
		a.started = true
		gcode := g.Get(a.cur)
		vcode := v.Get(a.cur)
		// Decompress the value: random dictionary access.
		ops[n] = cachesim.BatchOp{Addr: a.ValueCol.Dict.Addr(vcode)}
		n++
		ctx.ReadBatch(ops[:n])
		val := a.ValueCol.Dict.Value(vcode)
		a.Table.Update(ctx, a.Kind, gcode, val)
		ctx.Compute(AggCyclesPerRow, AggInstrsPerRow)
		a.cur++
		processed++
	}
	return processed, a.cur >= a.To
}

// Reset rewinds for a fresh execution, clearing the local table.
func (a *AggLocal) Reset() {
	a.cur = a.From
	a.started = false
	a.Table.Clear()
}

// AggMerge is the second phase: it folds the worker-local tables into
// the global result table (Section II: hash tables are used "globally
// to merge thread-local results"). Row-units are scanned local slots.
// Kind must match the fold the local phase applied.
//
//conc:shared kernel instance is bound to one core's slot; the merge kernel additionally runs in the serial phase
type AggMerge struct {
	Locals []*AggTable
	Global *AggTable
	Kind   AggKind

	li, si int
}

// NewAggMerge constructs a MAX merge phase (the paper's Query 2).
func NewAggMerge(locals []*AggTable, global *AggTable) *AggMerge {
	return &AggMerge{Locals: locals, Global: global, Kind: AggMax}
}

// NewAggMergeKind constructs a merge phase with an explicit fold.
func NewAggMergeKind(locals []*AggTable, global *AggTable, kind AggKind) *AggMerge {
	return &AggMerge{Locals: locals, Global: global, Kind: kind}
}

// Step scans up to budget local slots, merging occupied ones.
//
//perf:hot aggregation merge kernel inner loop
func (m *AggMerge) Step(ctx *Ctx, budget int) (int, bool) {
	processed := 0
	for processed < budget {
		if m.li >= len(m.Locals) {
			return processed, true
		}
		t := m.Locals[m.li]
		if m.si >= t.Cap() {
			m.li++
			m.si = 0
			continue
		}
		// Sequential pass over the local table, one read per line.
		if m.si%4 == 0 {
			ctx.Read(t.slotAddr(m.si))
		}
		if s := t.slots[m.si]; s.used {
			m.Global.Update(ctx, m.Kind, s.key, s.val)
			ctx.Compute(AggCyclesPerRow, AggInstrsPerRow)
		} else {
			ctx.Compute(1, 2)
		}
		m.si++
		processed++
	}
	return processed, m.li >= len(m.Locals)
}

// Reset rewinds the merge and clears the global table.
func (m *AggMerge) Reset() {
	m.li, m.si = 0, 0
	m.Global.Clear()
}
