// Package exec implements the database operators of the engine as
// resumable kernels: each kernel performs its real computation on the
// columnar data and reports every memory reference and compute cost to
// the cache simulator through a core-bound context.
//
// The three operators the paper analyses are here: the compressed
// column scan (Query 1), hash-based aggregation with grouping
// (Query 2) backed by thread-local hash tables and a merge phase, and
// the bit-vector foreign-key join (Query 3). The OLTP index-lookup +
// projection operator of Section VI-E is in project.go.
package exec

import (
	"cachepart/internal/cachesim"
	"cachepart/internal/memory"
)

// Ctx binds kernel execution to one simulated core.
type Ctx struct {
	M    *cachesim.Machine
	Core int
	// Par, when non-nil, routes memory accesses through the core's
	// parallel epoch front-end (cachesim.CoreSim) instead of the serial
	// machine — the engine sets it for parallel-mode runs. Compute only
	// touches core-owned state, so it goes to the machine either way.
	Par *cachesim.CoreSim
}

// Read reports a load.
func (c *Ctx) Read(a memory.Addr) {
	if c.Par != nil {
		c.Par.Access(a, false)
		return
	}
	//lint:allow epochshare serial fallback: Par is always non-nil on worker-driven cores, so workers never reach the Machine barrier
	c.M.Access(c.Core, a, false)
}

// Write reports a store (write-allocate).
func (c *Ctx) Write(a memory.Addr) {
	if c.Par != nil {
		c.Par.Access(a, true)
		return
	}
	//lint:allow epochshare serial fallback: Par is always non-nil on worker-driven cores, so workers never reach the Machine barrier
	c.M.Access(c.Core, a, true)
}

// ReadBatch reports a run of accesses (loads, plus stores via the
// Write flag), each optionally followed by a compute step. Semantics
// are exactly the per-element Read/Write + Compute sequence; batching
// amortizes the per-reference call overhead on scan-style kernels.
func (c *Ctx) ReadBatch(ops []cachesim.BatchOp) {
	if c.Par != nil {
		c.Par.AccessBatch(ops)
		return
	}
	//lint:allow epochshare serial fallback: Par is always non-nil on worker-driven cores, so workers never reach the Machine barrier
	c.M.AccessBatch(c.Core, ops)
}

// Compute reports pure computation: cycles of work retiring instrs
// instructions.
func (c *Ctx) Compute(cycles int64, instrs uint64) { c.M.Compute(c.Core, cycles, instrs) }

// Kernel is a resumable unit of operator work bound to one core.
// Step advances by up to budget row-units and reports how many it
// processed and whether the kernel is finished. A kernel must make
// progress (rows > 0) unless it is done.
type Kernel interface {
	Step(ctx *Ctx, budget int) (rows int, done bool)
}

// Drive runs a kernel to completion on one context, for isolated
// operator tests and micro-benchmarks.
func Drive(ctx *Ctx, k Kernel, quantum int) (totalRows int64) {
	if quantum <= 0 {
		quantum = 4096
	}
	for {
		rows, done := k.Step(ctx, quantum)
		totalRows += int64(rows)
		if done {
			return totalRows
		}
	}
}

// Cost model constants: per-row/per-line compute costs and instruction
// counts of the operators. They are calibration parameters of the
// simulation, chosen so that operator balance matches the paper's
// observations (scan bandwidth-bound, aggregation compute+cache-bound).
const (
	// ScanCyclesPerLine is the SIMD predicate-evaluation cost for one
	// 64-byte line of packed codes (~26 codes at 20 bits).
	ScanCyclesPerLine = 4
	// ScanInstrsPerLine approximates retired instructions per line.
	ScanInstrsPerLine = 8

	// AggCyclesPerRow covers hashing, comparison and aggregate update.
	AggCyclesPerRow = 6
	// AggInstrsPerRow approximates retired instructions per row.
	AggInstrsPerRow = 12

	// JoinCyclesPerRow covers bit extraction/insertion and counting.
	JoinCyclesPerRow = 3
	// JoinInstrsPerRow approximates retired instructions per row.
	JoinInstrsPerRow = 6

	// LookupCyclesPerRow covers index probe arithmetic per posting.
	LookupCyclesPerRow = 4
	// LookupInstrsPerRow approximates retired instructions.
	LookupInstrsPerRow = 8
)
