package engine

import (
	"testing"
)

func TestRunSharedPoolValidation(t *testing.T) {
	e := testEngine(t, false)
	if _, err := e.RunSharedPool(nil, RunOptions{Duration: 1e-4}); err == nil {
		t.Error("no queries accepted")
	}
	q := &countQuery{name: "q", rowsPerExec: 100}
	if _, err := e.RunSharedPool([]Query{q}, RunOptions{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := e.RunSharedPool([]Query{emptyPlanQuery{}}, RunOptions{Duration: 1e-4}); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := e.RunSharedPool([]Query{stuckQuery{}}, RunOptions{Duration: 1e-4}); err == nil {
		t.Error("stuck kernel not detected")
	}
}

func TestRunSharedPoolProgressAndFairness(t *testing.T) {
	e := testEngine(t, false)
	qa := &countQuery{name: "a", rowsPerExec: 1000}
	qb := &countQuery{name: "b", rowsPerExec: 1000}
	res, err := e.RunSharedPool([]Query{qa, qb}, RunOptions{Duration: 2e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Rows == 0 {
			t.Errorf("stream %s starved", r.Name)
		}
		if r.Stats.Instructions == 0 {
			t.Errorf("stream %s has no attributed instructions", r.Name)
		}
	}
	// Symmetric queries share the pool evenly (within 15%).
	ratio := float64(res[0].Rows) / float64(res[1].Rows)
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("unfair pool split: %v", ratio)
	}
}

func TestRunSharedPoolDeterministic(t *testing.T) {
	run := func() []StreamResult {
		e := testEngine(t, false)
		qa := &countQuery{name: "a", rowsPerExec: 700}
		qb := &countQuery{name: "b", rowsPerExec: 900}
		res, err := e.RunSharedPool([]Query{qa, qb}, RunOptions{Duration: 1e-4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Rows != b[i].Rows || a[i].Executions != b[i].Executions {
			t.Errorf("stream %d non-deterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRunSharedPoolMaskWritesBounded: with affinity and elision, mask
// writes stay proportional to genuine class switches, not to slices.
func TestRunSharedPoolMaskWritesBounded(t *testing.T) {
	e := testEngine(t, true)
	polluter := &countQuery{name: "scan", rowsPerExec: 5000, cuid: 1 /* Polluting */}
	sensitive := &countQuery{name: "agg", rowsPerExec: 5000}
	res, err := e.RunSharedPool([]Query{polluter, sensitive}, RunOptions{Duration: 2e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	totalRows := res[0].Rows + res[1].Rows
	if totalRows == 0 {
		t.Fatal("no progress")
	}
	writes := e.MaskWrites()
	if writes == 0 {
		t.Error("shared pool with mixed classes performed no mask writes")
	}
	// Far fewer writes than scheduling slices (rows/16 is a loose
	// lower bound on slices taken).
	if int64(writes) > totalRows/4 {
		t.Errorf("mask writes %d not bounded by affinity+elision (rows %d)", writes, totalRows)
	}
}

// TestRunSharedPoolBarrier: phases of one stream complete in order
// while the other stream keeps the pool busy.
func TestRunSharedPoolBarrier(t *testing.T) {
	e := testEngine(t, false)
	tp := &twoPhaseQuery{rowsA: 600, rowsB: 100}
	filler := &countQuery{name: "filler", rowsPerExec: 400}
	res, err := e.RunSharedPool([]Query{tp, filler}, RunOptions{Duration: 3e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Executions == 0 {
		t.Fatal("two-phase query never completed")
	}
	if tp.outOfOrder {
		t.Error("phase B observed unfinished phase A in the shared pool")
	}
}
