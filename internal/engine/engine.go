// Package engine is the execution engine the paper retrofits cache
// partitioning into (Section V-C, Figure 8): a pool of job workers,
// one per simulated core, executes operator jobs. Each job carries a
// cache usage identifier (CUID); before a worker runs a job the engine
// maps the CUID to a CAT bitmask via the policy, moves the worker's
// thread id into the matching resctrl group — eliding the write when
// the mask is unchanged — and lets the (simulated) kernel scheduler
// program the core's CLOS.
package engine

import (
	"errors"
	"fmt"

	"cachepart/internal/cachesim"
	"cachepart/internal/cat"
	"cachepart/internal/core"
	"cachepart/internal/exec"
	"cachepart/internal/resctrl"
)

// DefaultMaskOverheadCycles models the kernel interaction cost of
// re-associating a TID with a bitmask. The paper measured under 100 µs
// on its test system; 44k cycles is 20 µs at 2.2 GHz.
const DefaultMaskOverheadCycles = 44_000

// DefaultRetryLimit is how many times a transient control-plane fault
// is retried before the engine gives up on the operation and degrades.
const DefaultRetryLimit = 3

// retryBackoffCycles is the cycle-domain backoff charged to the
// retrying core before its first retry; it doubles per attempt. 11k
// cycles is 5 µs at 2.2 GHz — the order of one failed kernel write.
// Backoff must be virtual time, never wall clock: sleeping for real
// would both stall the simulation and break bit-identical replays.
const retryBackoffCycles = 11_000

// faultTally counts one stream's control-plane trouble within a run.
type faultTally struct {
	retries  int64
	degraded int64
}

// Engine owns the machine, the resctrl mount and the worker pool.
type Engine struct {
	m *cachesim.Machine
	// fs is the control plane the engine programs. Normally the mount
	// itself; experiments interpose a fault injector (internal/fault)
	// via SetControlPlane.
	fs     resctrl.Plane
	policy core.Policy

	// maskOverheadCycles is charged to a core whenever programming its
	// job's mask required real kernel writes.
	maskOverheadCycles int64

	// groupOfMask lazily maps a capacity mask to a resctrl group.
	groupOfMask map[cat.WayMask]string

	// tids holds one worker thread id per core.
	tids []int

	// limitWays, when non-zero, limits the whole instance to the first
	// n ways — the Section III-D measurement method used by the
	// micro-benchmarks. It overrides per-job masks.
	limitWays int

	maskWrites int

	// retryLimit bounds how often one operation retries a transient
	// control-plane fault before degrading.
	retryLimit int
	// brokenGroups holds groups whose placement writes failed
	// persistently this run; workers bound for them go to the root
	// group instead. Accessed by key only, never iterated.
	brokenGroups map[string]bool
	// streamFaults tallies retries and degraded placements per stream
	// of the current run.
	streamFaults []faultTally

	// ctrl, when non-nil, replaces the static CUID→mask policy with an
	// online controller called back every ctrlEpochSeconds of virtual
	// time (see controller.go).
	ctrl             Controller
	ctrlEpochSeconds float64
}

// New builds an engine over a machine with the given policy.
func New(m *cachesim.Machine, policy core.Policy) (*Engine, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if policy.LLCWays != m.Config().LLC.Ways {
		return nil, fmt.Errorf("engine: policy for %d ways, machine has %d",
			policy.LLCWays, m.Config().LLC.Ways)
	}
	mount := resctrl.Mount(m.CAT())
	// Cache Monitoring Technology: the machine backs the resctrl
	// monitoring files.
	mount.AttachMonitor(m)
	e := &Engine{
		m:                  m,
		fs:                 mount,
		policy:             policy,
		maskOverheadCycles: DefaultMaskOverheadCycles,
		retryLimit:         DefaultRetryLimit,
		groupOfMask:        make(map[cat.WayMask]string),
		brokenGroups:       make(map[string]bool),
		tids:               make([]int, m.Cores()),
	}
	e.groupOfMask[cat.FullMask(policy.LLCWays)] = resctrl.RootGroup
	for c := range e.tids {
		e.tids[c] = 1000 + c // worker TIDs, as the engine would know them
	}
	return e, nil
}

// Machine exposes the simulated machine.
func (e *Engine) Machine() *cachesim.Machine { return e.m }

// ControlPlane exposes the resctrl control plane the engine programs,
// for controllers, tests and diagnostics.
func (e *Engine) ControlPlane() resctrl.Plane { return e.fs }

// SetControlPlane replaces the control plane — the hook fault-injection
// experiments use to interpose a wrapper over the mount. Swap planes
// only between runs.
func (e *Engine) SetControlPlane(p resctrl.Plane) error {
	if p == nil {
		return fmt.Errorf("engine: nil control plane")
	}
	e.fs = p
	return nil
}

// Policy returns the active partitioning policy.
func (e *Engine) Policy() core.Policy { return e.policy }

// SetPolicy replaces the policy (e.g. to toggle partitioning between
// experiment arms).
func (e *Engine) SetPolicy(p core.Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.policy = p
	return nil
}

// SetMaskOverhead overrides the modelled kernel-interaction cost.
func (e *Engine) SetMaskOverhead(cycles int64) { e.maskOverheadCycles = cycles }

// SetRetryLimit overrides how many times a transient control-plane
// fault is retried before the engine degrades the placement.
func (e *Engine) SetRetryLimit(n int) error {
	if n < 0 {
		return fmt.Errorf("engine: retry limit %d must not be negative", n)
	}
	e.retryLimit = n
	return nil
}

// MaskWrites reports how many jobs required real mask programming, the
// quantity the redundant-write elision minimises.
func (e *Engine) MaskWrites() int { return e.maskWrites }

// LimitWays restricts the entire instance to the first n LLC ways
// (0 restores the full cache), reproducing the measurement method of
// Section III-D. While a limit is active per-job policy masks are not
// applied.
func (e *Engine) LimitWays(n int) error {
	if n < 0 || n > e.policy.LLCWays {
		return fmt.Errorf("engine: way limit %d out of [0,%d]", n, e.policy.LLCWays)
	}
	e.limitWays = n
	mask := cat.FullMask(e.policy.LLCWays)
	if n > 0 {
		mask = cat.FullMask(n)
	}
	group, err := e.groupFor(0, -1, mask)
	if err != nil {
		return err
	}
	for c := range e.tids {
		if err := e.fs.MoveTask(e.tids[c], group); err != nil {
			return err
		}
		if err := e.fs.Schedule(e.tids[c], c); err != nil {
			return err
		}
	}
	return nil
}

// injectedFault classifies an error from the control plane: injected
// reports whether it is an injected fault (anything carrying the
// Transient method, i.e. internal/fault errors), transient whether a
// retry may clear it. Errors from the plane itself — unknown groups,
// invalid masks — are programming bugs and classify as not injected,
// so they propagate instead of being absorbed by degradation.
func injectedFault(err error) (transient, injected bool) {
	var f interface{ Transient() bool }
	if errors.As(err, &f) {
		return f.Transient(), true
	}
	return false, false
}

// retry runs op, retrying injected transient faults up to the engine's
// retry limit. Each retry charges an exponentially-growing backoff to
// the core in the cycle domain — virtual time, never the wall clock —
// so a flaky control plane costs simulated time without perturbing
// determinism. Persistent faults and genuine errors return
// immediately.
func (e *Engine) retry(coreID, streamIdx int, op func() error) error {
	backoff := int64(retryBackoffCycles)
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		transient, injected := injectedFault(err)
		if !injected || !transient || attempt >= e.retryLimit {
			return err
		}
		e.countRetry(streamIdx)
		e.m.Compute(coreID, backoff, 0)
		backoff *= 2
	}
}

func (e *Engine) countRetry(streamIdx int) {
	if streamIdx >= 0 && streamIdx < len(e.streamFaults) {
		e.streamFaults[streamIdx].retries++
	}
}

func (e *Engine) countDegraded(streamIdx int) {
	if streamIdx >= 0 && streamIdx < len(e.streamFaults) {
		e.streamFaults[streamIdx].degraded++
	}
}

// resetFaultState starts a run's fault accounting from scratch: the
// per-stream tallies are sized for the run and the group breakers are
// forgiven, so one run's persistent faults never leak into the next
// and same-seed runs stay bit-identical.
func (e *Engine) resetFaultState(streams int) {
	e.brokenGroups = make(map[string]bool)
	e.streamFaults = make([]faultTally, streams)
}

// degrade is the last-resort placement: the stream's worker falls back
// to the root group's full mask — isolation is lost, correctness is
// preserved, and the StreamResult counts the degradation. Should even
// the fallback writes fail persistently, the worker simply keeps its
// previous association: masks only ever shape timing, never results,
// so running with a stale CLOS is always safe.
func (e *Engine) degrade(coreID, streamIdx int) error {
	e.countDegraded(streamIdx)
	tid := e.tids[coreID]
	if err := e.retry(coreID, streamIdx, func() error { return e.fs.MoveTask(tid, resctrl.RootGroup) }); err != nil {
		if _, injected := injectedFault(err); injected {
			return nil
		}
		return err
	}
	if err := e.retry(coreID, streamIdx, func() error { return e.fs.Schedule(tid, coreID) }); err != nil {
		if _, injected := injectedFault(err); injected {
			return nil
		}
		return err
	}
	return nil
}

// groupFor returns (creating on demand) the resctrl group programmed
// with the mask. Creation retries transient faults; the existence
// probe keeps a retried MakeGroup from tripping over its own earlier
// success. The mapping is only cached once the group is fully
// programmed, so a failed creation is re-attempted on the next job.
func (e *Engine) groupFor(coreID, streamIdx int, mask cat.WayMask) (string, error) {
	if g, ok := e.groupOfMask[mask]; ok {
		return g, nil
	}
	name := "mask-" + mask.String()
	if _, err := e.fs.Mask(name); err != nil {
		if err := e.retry(coreID, streamIdx, func() error { return e.fs.MakeGroup(name) }); err != nil {
			return "", err
		}
	}
	if err := e.retry(coreID, streamIdx, func() error {
		return e.fs.WriteSchemata(name, resctrl.FormatSchemata(mask))
	}); err != nil {
		return "", err
	}
	e.groupOfMask[mask] = name
	return name, nil
}

// applyCUID prepares a core's worker for a job with the given
// identifier: choose the mask, move the TID into the mask's group and
// let the scheduler program the core. When the mask's group cannot be
// created or programmed because of injected faults, the job runs
// degraded in the root group instead of failing.
func (e *Engine) applyCUID(coreID, streamIdx int, cuid core.CUID, fp core.Footprint) error {
	if e.limitWays > 0 {
		return nil // instance-wide limit active; jobs keep it
	}
	mask := e.policy.MaskFor(cuid, fp)
	group, err := e.groupFor(coreID, streamIdx, mask)
	if err != nil {
		if _, injected := injectedFault(err); injected {
			return e.degrade(coreID, streamIdx)
		}
		return err
	}
	return e.placeWorker(coreID, streamIdx, group)
}

// placeWorker moves a core's worker thread into a resctrl group and
// lets the scheduler program the core's CLOS. The filesystem elides
// redundant moves and associations, so the engine only charges the
// modelled kernel-interaction overhead when real writes occurred.
// Transient faults are retried with cycle-domain backoff; a
// persistently-failing group trips a breaker and the worker degrades
// to the root group. A failed association after a successful move
// leaves the core's CLOS stale — timing-only — and counts as degraded.
func (e *Engine) placeWorker(coreID, streamIdx int, group string) error {
	if e.brokenGroups[group] {
		return e.degrade(coreID, streamIdx)
	}
	tid := e.tids[coreID]
	before := e.fs.Writes()
	if err := e.retry(coreID, streamIdx, func() error { return e.fs.MoveTask(tid, group) }); err != nil {
		if _, injected := injectedFault(err); injected {
			e.brokenGroups[group] = true
			return e.degrade(coreID, streamIdx)
		}
		return err
	}
	if err := e.retry(coreID, streamIdx, func() error { return e.fs.Schedule(tid, coreID) }); err != nil {
		if _, injected := injectedFault(err); injected {
			e.countDegraded(streamIdx)
			return nil
		}
		return err
	}
	if e.fs.Writes() != before {
		e.maskWrites++
		if e.maskOverheadCycles > 0 {
			e.m.Compute(coreID, e.maskOverheadCycles, 1)
		}
	}
	return nil
}

// Ctx builds an operator context bound to a core.
func (e *Engine) Ctx(coreID int) *exec.Ctx {
	return &exec.Ctx{M: e.m, Core: coreID}
}
