// Package engine is the execution engine the paper retrofits cache
// partitioning into (Section V-C, Figure 8): a pool of job workers,
// one per simulated core, executes operator jobs. Each job carries a
// cache usage identifier (CUID); before a worker runs a job the engine
// maps the CUID to a CAT bitmask via the policy, moves the worker's
// thread id into the matching resctrl group — eliding the write when
// the mask is unchanged — and lets the (simulated) kernel scheduler
// program the core's CLOS.
package engine

import (
	"fmt"

	"cachepart/internal/cachesim"
	"cachepart/internal/cat"
	"cachepart/internal/core"
	"cachepart/internal/exec"
	"cachepart/internal/resctrl"
)

// DefaultMaskOverheadCycles models the kernel interaction cost of
// re-associating a TID with a bitmask. The paper measured under 100 µs
// on its test system; 44k cycles is 20 µs at 2.2 GHz.
const DefaultMaskOverheadCycles = 44_000

// Engine owns the machine, the resctrl mount and the worker pool.
type Engine struct {
	m      *cachesim.Machine
	fs     *resctrl.FS
	policy core.Policy

	// maskOverheadCycles is charged to a core whenever programming its
	// job's mask required real kernel writes.
	maskOverheadCycles int64

	// groupOfMask lazily maps a capacity mask to a resctrl group.
	groupOfMask map[cat.WayMask]string

	// tids holds one worker thread id per core.
	tids []int

	// limitWays, when non-zero, limits the whole instance to the first
	// n ways — the Section III-D measurement method used by the
	// micro-benchmarks. It overrides per-job masks.
	limitWays int

	maskWrites int

	// ctrl, when non-nil, replaces the static CUID→mask policy with an
	// online controller called back every ctrlEpochSeconds of virtual
	// time (see controller.go).
	ctrl             Controller
	ctrlEpochSeconds float64
}

// New builds an engine over a machine with the given policy.
func New(m *cachesim.Machine, policy core.Policy) (*Engine, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if policy.LLCWays != m.Config().LLC.Ways {
		return nil, fmt.Errorf("engine: policy for %d ways, machine has %d",
			policy.LLCWays, m.Config().LLC.Ways)
	}
	e := &Engine{
		m:                  m,
		fs:                 resctrl.Mount(m.CAT()),
		policy:             policy,
		maskOverheadCycles: DefaultMaskOverheadCycles,
		groupOfMask:        make(map[cat.WayMask]string),
		tids:               make([]int, m.Cores()),
	}
	// Cache Monitoring Technology: the machine backs the resctrl
	// monitoring files.
	e.fs.AttachMonitor(m)
	e.groupOfMask[cat.FullMask(policy.LLCWays)] = resctrl.RootGroup
	for c := range e.tids {
		e.tids[c] = 1000 + c // worker TIDs, as the engine would know them
	}
	return e, nil
}

// Machine exposes the simulated machine.
func (e *Engine) Machine() *cachesim.Machine { return e.m }

// FS exposes the resctrl mount, mainly for tests and diagnostics.
func (e *Engine) FS() *resctrl.FS { return e.fs }

// Policy returns the active partitioning policy.
func (e *Engine) Policy() core.Policy { return e.policy }

// SetPolicy replaces the policy (e.g. to toggle partitioning between
// experiment arms).
func (e *Engine) SetPolicy(p core.Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.policy = p
	return nil
}

// SetMaskOverhead overrides the modelled kernel-interaction cost.
func (e *Engine) SetMaskOverhead(cycles int64) { e.maskOverheadCycles = cycles }

// MaskWrites reports how many jobs required real mask programming, the
// quantity the redundant-write elision minimises.
func (e *Engine) MaskWrites() int { return e.maskWrites }

// LimitWays restricts the entire instance to the first n LLC ways
// (0 restores the full cache), reproducing the measurement method of
// Section III-D. While a limit is active per-job policy masks are not
// applied.
func (e *Engine) LimitWays(n int) error {
	if n < 0 || n > e.policy.LLCWays {
		return fmt.Errorf("engine: way limit %d out of [0,%d]", n, e.policy.LLCWays)
	}
	e.limitWays = n
	mask := cat.FullMask(e.policy.LLCWays)
	if n > 0 {
		mask = cat.FullMask(n)
	}
	group, err := e.groupFor(mask)
	if err != nil {
		return err
	}
	for c := range e.tids {
		if err := e.fs.MoveTask(e.tids[c], group); err != nil {
			return err
		}
		if err := e.fs.Schedule(e.tids[c], c); err != nil {
			return err
		}
	}
	return nil
}

// groupFor returns (creating on demand) the resctrl group programmed
// with the mask.
func (e *Engine) groupFor(mask cat.WayMask) (string, error) {
	if g, ok := e.groupOfMask[mask]; ok {
		return g, nil
	}
	name := "mask-" + mask.String()
	if err := e.fs.MakeGroup(name); err != nil {
		return "", err
	}
	if err := e.fs.WriteSchemata(name, resctrl.FormatSchemata(mask)); err != nil {
		return "", err
	}
	e.groupOfMask[mask] = name
	return name, nil
}

// applyCUID prepares a core's worker for a job with the given
// identifier: choose the mask, move the TID into the mask's group and
// let the scheduler program the core.
func (e *Engine) applyCUID(coreID int, cuid core.CUID, fp core.Footprint) error {
	if e.limitWays > 0 {
		return nil // instance-wide limit active; jobs keep it
	}
	mask := e.policy.MaskFor(cuid, fp)
	group, err := e.groupFor(mask)
	if err != nil {
		return err
	}
	return e.placeWorker(coreID, group)
}

// placeWorker moves a core's worker thread into a resctrl group and
// lets the scheduler program the core's CLOS. The filesystem elides
// redundant moves and associations, so the engine only charges the
// modelled kernel-interaction overhead when real writes occurred.
func (e *Engine) placeWorker(coreID int, group string) error {
	tid := e.tids[coreID]
	before := e.fs.Writes()
	if err := e.fs.MoveTask(tid, group); err != nil {
		return err
	}
	if err := e.fs.Schedule(tid, coreID); err != nil {
		return err
	}
	if e.fs.Writes() != before {
		e.maskWrites++
		if e.maskOverheadCycles > 0 {
			e.m.Compute(coreID, e.maskOverheadCycles, 1)
		}
	}
	return nil
}

// Ctx builds an operator context bound to a core.
func (e *Engine) Ctx(coreID int) *exec.Ctx {
	return &exec.Ctx{M: e.m, Core: coreID}
}
