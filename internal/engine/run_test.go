package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/core"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// stuckKernel reports no progress without finishing — a buggy operator
// the scheduler must detect rather than spin on.
type stuckKernel struct{}

func (stuckKernel) Step(ctx *exec.Ctx, budget int) (int, bool) { return 0, false }

type stuckQuery struct{}

func (stuckQuery) Name() string { return "stuck" }
func (stuckQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	return []Phase{{Name: "stuck", Kernels: []exec.Kernel{stuckKernel{}}}}, nil
}

func TestRunDetectsStuckKernel(t *testing.T) {
	e := testEngine(t, false)
	_, err := e.Run([]StreamSpec{{Query: stuckQuery{}, Cores: []int{0}}},
		RunOptions{Duration: 1e-4})
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Errorf("stuck kernel not detected: %v", err)
	}
}

// failingQuery plans successfully n times, then errors — e.g. a data
// set dropped mid-experiment.
type failingQuery struct {
	ok int
}

func (q *failingQuery) Name() string { return "failing" }
func (q *failingQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	if q.ok <= 0 {
		return nil, fmt.Errorf("synthetic planning failure")
	}
	q.ok--
	return []Phase{{
		Name:      "work",
		Kernels:   []exec.Kernel{&countKernel{remaining: 50}},
		CountRows: true,
	}}, nil
}

func TestRunSurfacesReplanFailure(t *testing.T) {
	e := testEngine(t, false)
	_, err := e.Run([]StreamSpec{{Query: &failingQuery{ok: 2}, Cores: []int{0}}},
		RunOptions{Duration: 0.01})
	if err == nil || !strings.Contains(err.Error(), "synthetic planning failure") {
		t.Errorf("replan failure not surfaced: %v", err)
	}
}

// badPhaseQuery plans a phase with more kernels than cores.
type badPhaseQuery struct{}

func (badPhaseQuery) Name() string { return "bad" }
func (badPhaseQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	ks := make([]exec.Kernel, cores+1)
	for i := range ks {
		ks[i] = &countKernel{remaining: 1}
	}
	return []Phase{{Name: "oversubscribed", Kernels: ks}}, nil
}

func TestRunRejectsOversubscribedPhase(t *testing.T) {
	e := testEngine(t, false)
	_, err := e.Run([]StreamSpec{{Query: badPhaseQuery{}, Cores: []int{0, 1}}},
		RunOptions{Duration: 1e-4})
	if err == nil || !strings.Contains(err.Error(), "kernels for") {
		t.Errorf("oversubscribed phase not rejected: %v", err)
	}
}

type emptyPlanQuery struct{}

func (emptyPlanQuery) Name() string { return "empty" }
func (emptyPlanQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	return nil, nil
}

type emptyPhaseQuery struct{}

func (emptyPhaseQuery) Name() string { return "emptyphase" }
func (emptyPhaseQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	return []Phase{{Name: "none"}}, nil
}

func TestRunRejectsDegeneratePlans(t *testing.T) {
	e := testEngine(t, false)
	if _, err := e.Run([]StreamSpec{{Query: emptyPlanQuery{}, Cores: []int{0}}},
		RunOptions{Duration: 1e-4}); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := e.Run([]StreamSpec{{Query: emptyPhaseQuery{}, Cores: []int{0}}},
		RunOptions{Duration: 1e-4}); err == nil {
		t.Error("kernel-less phase accepted")
	}
}

// TestCLOSExhaustion injects a machine with too few classes of
// service: programming a second distinct mask must fail cleanly.
func TestCLOSExhaustion(t *testing.T) {
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 2
	cfg.NumCLOS = 1 // root group only
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol := core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways)
	pol.Enabled = true
	e, err := New(m, pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.applyCUID(0, -1, core.Sensitive, core.Footprint{}); err != nil {
		t.Errorf("full mask should use the root group: %v", err)
	}
	if err := e.applyCUID(0, -1, core.Polluting, core.Footprint{}); err == nil {
		t.Error("expected CLOS exhaustion error")
	}
}

// prewarmQuery declares a region and then reads it; the engine must
// have made it resident before measurement.
type prewarmQuery struct {
	region memory.Region
	kernel *regionReader
}

type regionReader struct {
	region memory.Region
	off    uint64
	misses *uint64
}

func (r *regionReader) Step(ctx *exec.Ctx, budget int) (int, bool) {
	for i := 0; i < budget; i++ {
		if lvl := ctx.M.Access(ctx.Core, r.region.Addr(r.off), false); lvl == cachesim.DRAM {
			*r.misses++
		}
		r.off += memory.LineSize
		if r.off >= r.region.Size {
			return i + 1, true
		}
	}
	return budget, false
}

func (q *prewarmQuery) Name() string { return "prewarm" }
func (q *prewarmQuery) PrewarmRegions(cores int) []memory.Region {
	return []memory.Region{q.region}
}
func (q *prewarmQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	q.kernel = &regionReader{region: q.region, misses: new(uint64)}
	return []Phase{{Name: "read", Kernels: []exec.Kernel{q.kernel}, CountRows: true}}, nil
}

func TestPrewarmMakesRegionResident(t *testing.T) {
	e := testEngine(t, false)
	space := memory.NewSpace()
	// A region fitting comfortably in the scaled LLC.
	q := &prewarmQuery{region: space.Alloc("hot", e.Machine().Config().LLC.Size/4)}
	if _, err := e.Run([]StreamSpec{{Query: q, Cores: []int{0}}},
		RunOptions{Duration: 1e-4}); err != nil {
		t.Fatal(err)
	}
	if miss := *q.kernel.misses; miss > q.region.Lines()/20 {
		t.Errorf("prewarmed region still missed %d of %d lines", miss, q.region.Lines())
	}
}

// TestMaskWritesAcrossPhases verifies the engine programs masks only
// on CUID transitions during a run with alternating classes.
func TestMaskWritesAcrossPhases(t *testing.T) {
	e := testEngine(t, true)
	alternating := &alternatingQuery{}
	if _, err := e.Run([]StreamSpec{{Query: alternating, Cores: []int{0}}},
		RunOptions{Duration: 2e-4}); err != nil {
		t.Fatal(err)
	}
	if alternating.plans < 2 {
		t.Skip("window too short to replan") // defensive; duration should suffice
	}
	// Each execution has two phases with different masks -> roughly two
	// writes per execution, not per scheduling slice.
	writes := e.MaskWrites()
	if writes < 2 {
		t.Errorf("no mask writes recorded")
	}
	if writes > alternating.plans*2+2 {
		t.Errorf("mask writes %d exceed two per execution (%d executions)", writes, alternating.plans)
	}
}

func TestExecTicksAndPercentiles(t *testing.T) {
	e := testEngine(t, false)
	q := &countQuery{name: "q", rowsPerExec: 300}
	res, err := e.Run([]StreamSpec{{Query: q, Cores: []int{0, 1}}},
		RunOptions{Duration: 2e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if int64(len(r.ExecTicks)) != r.Executions {
		t.Errorf("recorded %d latencies for %d executions", len(r.ExecTicks), r.Executions)
	}
	if len(r.ExecTicks) == 0 {
		t.Fatal("no executions completed")
	}
	for _, ticks := range r.ExecTicks {
		if ticks <= 0 {
			t.Fatalf("non-positive latency %d", ticks)
		}
	}
	p50, p99 := r.Percentile(0.5), r.Percentile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("percentiles p50=%d p99=%d", p50, p99)
	}
	var empty StreamResult
	if empty.Percentile(0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

type alternatingQuery struct {
	plans int
}

func (q *alternatingQuery) Name() string { return "alternating" }
func (q *alternatingQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	q.plans++
	return []Phase{
		{Name: "pollute", CUID: core.Polluting,
			Kernels: []exec.Kernel{&countKernel{remaining: 200}}, CountRows: true},
		{Name: "aggregate", CUID: core.Sensitive,
			Kernels: []exec.Kernel{&countKernel{remaining: 200}}},
	}, nil
}
