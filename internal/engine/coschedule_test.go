package engine

import (
	"math/rand"
	"testing"

	"cachepart/internal/core"
	"cachepart/internal/exec"
)

// phaseQuery plans fixed-CUID phases, for profiling tests.
type phaseQuery struct {
	name  string
	cuids []core.CUID
}

func (q *phaseQuery) Name() string { return q.name }

func (q *phaseQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	phases := make([]Phase, 0, len(q.cuids))
	for _, c := range q.cuids {
		phases = append(phases, Phase{
			Name:      "p",
			CUID:      c,
			Kernels:   []exec.Kernel{&countKernel{remaining: 100}},
			CountRows: true,
		})
	}
	return phases, nil
}

func TestProfileOf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		cuids []core.CUID
		want  core.CUID
	}{
		{[]core.CUID{core.Polluting}, core.Polluting},
		{[]core.CUID{core.Polluting, core.Sensitive}, core.Sensitive},
		{[]core.CUID{core.Depends, core.Depends}, core.Depends},
		{[]core.CUID{core.Polluting, core.Depends}, core.Depends},
		{nil, core.Sensitive},
	}
	for i, c := range cases {
		q := &phaseQuery{name: "q", cuids: c.cuids}
		if len(c.cuids) == 0 {
			q.cuids = []core.CUID{core.Sensitive}
		}
		got, err := ProfileOf(q, 2, rng)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: profile = %v, want %v", i, got, c.want)
		}
	}
}

func TestPlanRounds(t *testing.T) {
	qs := []Query{
		&phaseQuery{name: "scan1"},
		&phaseQuery{name: "agg1"},
		&phaseQuery{name: "scan2"},
		&phaseQuery{name: "agg2"},
	}
	profiles := []core.CUID{core.Polluting, core.Sensitive, core.Polluting, core.Sensitive}

	naive := PlanRounds(qs, profiles, 2, false)
	if len(naive) != 2 {
		t.Fatalf("naive rounds = %d", len(naive))
	}
	if naive[0][0].Name() != "scan1" || naive[0][1].Name() != "agg1" {
		t.Errorf("naive round 0 = %s, %s", naive[0][0].Name(), naive[0][1].Name())
	}

	aware := PlanRounds(qs, profiles, 2, true)
	if aware[0][0].Name() != "scan1" || aware[0][1].Name() != "scan2" {
		t.Errorf("aware round 0 = %s, %s — polluters should share", aware[0][0].Name(), aware[0][1].Name())
	}
	if aware[1][0].Name() != "agg1" || aware[1][1].Name() != "agg2" {
		t.Errorf("aware round 1 = %s, %s — sensitive should share", aware[1][0].Name(), aware[1][1].Name())
	}

	// Odd sizes and degenerate slots.
	odd := PlanRounds(qs[:3], profiles[:3], 2, true)
	if len(odd) != 2 || len(odd[1]) != 1 {
		t.Errorf("odd rounds = %v", odd)
	}
	one := PlanRounds(qs, profiles, 0, false)
	if len(one) != 4 {
		t.Errorf("slots<1 rounds = %d, want one query per round", len(one))
	}
}

func TestRunRounds(t *testing.T) {
	e := testEngine(t, false)
	rounds := []Round{
		{&countQuery{name: "a", rowsPerExec: 500}, &countQuery{name: "b", rowsPerExec: 500}},
		{&countQuery{name: "c", rowsPerExec: 500}},
	}
	res, err := e.RunRounds(rounds, RunOptions{Duration: 5e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(res[0]) != 2 || len(res[1]) != 1 {
		t.Fatalf("results shape = %v", res)
	}
	for ri := range res {
		for qi := range res[ri] {
			if res[ri][qi].Rows == 0 {
				t.Errorf("round %d query %d made no progress", ri, qi)
			}
		}
	}
}
