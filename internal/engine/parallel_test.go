package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"cachepart/internal/core"
	"cachepart/internal/exec"
)

// serialMergeQuery models an aggregation pipeline whose second phase
// shares order-sensitive state between kernels (like the agg-merge
// phases in the workload package): it must carry Serial so the
// parallel loop interleaves its kernels in virtual-time order.
type serialMergeQuery struct {
	rowsA, rowsB int
}

func (q *serialMergeQuery) Name() string { return "serial-merge" }

func (q *serialMergeQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	partsA := PartitionRows(q.rowsA, cores)
	ksA := make([]exec.Kernel, 0, len(partsA))
	for _, p := range partsA {
		ksA = append(ksA, &countKernel{remaining: p[1] - p[0]})
	}
	partsB := PartitionRows(q.rowsB, cores)
	ksB := make([]exec.Kernel, 0, len(partsB))
	for _, p := range partsB {
		ksB = append(ksB, &countKernel{remaining: p[1] - p[0]})
	}
	return []Phase{
		{Name: "local", CUID: core.Sensitive, Kernels: ksA, CountRows: true},
		{Name: "merge", CUID: core.Sensitive, Kernels: ksB, Serial: true},
	}, nil
}

func parallelSpecs() []StreamSpec {
	return []StreamSpec{
		{Query: &countQuery{name: "A", rowsPerExec: 600, cuid: core.Polluting}, Cores: []int{0, 1, 2, 3}},
		{Query: &countQuery{name: "B", rowsPerExec: 400, cuid: core.Sensitive}, Cores: []int{4, 5, 6, 7}},
	}
}

// TestRunParallelWorkerInvariant pins the parallel mode's core
// contract (DESIGN.md §11): results are a pure function of the inputs;
// the host worker count and run repetition change only wall-clock
// time, never a single bit of the output.
func TestRunParallelWorkerInvariant(t *testing.T) {
	run := func(seed int64, workers int) []StreamResult {
		t.Helper()
		e := testEngine(t, true)
		res, err := e.Run(parallelSpecs(), RunOptions{
			Duration: 1e-4, Seed: seed, Parallel: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := run(42, 1)
	for _, w := range []int{2, 4, 8} {
		if got := run(42, w); !reflect.DeepEqual(base, got) {
			t.Errorf("Workers=%d diverged from Workers=1:\n base: %+v\n  got: %+v", w, base, got)
		}
	}
	if again := run(42, 4); !reflect.DeepEqual(base, again) {
		t.Errorf("repeated same-seed parallel run diverged:\n first: %+v\nsecond: %+v", base, again)
	}
}

// TestRunParallelEpochTicksInvariant checks that the lookahead horizon
// is a performance knob, not a semantic one: shrinking the epoch just
// adds barriers.
func TestRunParallelEpochTicksInvariant(t *testing.T) {
	run := func(epoch int64) []StreamResult {
		t.Helper()
		e := testEngine(t, true)
		res, err := e.Run(parallelSpecs(), RunOptions{
			Duration: 1e-4, Seed: 7, Parallel: true, Workers: 4, EpochTicks: epoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0) // engine default
	for _, ep := range []int64{1 << 12, 1 << 14, 1 << 18} {
		if got := run(ep); !reflect.DeepEqual(base, got) {
			t.Errorf("EpochTicks=%d diverged from default:\n base: %+v\n  got: %+v", ep, base, got)
		}
	}
}

// TestRunParallelSerialPhase exercises a pipeline with a Serial phase
// under the parallel loop: phase barriers must hold and the output must
// stay worker-invariant when one task interleaves several cores.
func TestRunParallelSerialPhase(t *testing.T) {
	run := func(workers int) ([]StreamResult, *twoPhaseQuery) {
		t.Helper()
		e := testEngine(t, true)
		tp := &twoPhaseQuery{rowsA: 500, rowsB: 300}
		specs := []StreamSpec{
			{Query: tp, Cores: []int{0, 1, 2, 3}},
			{Query: &serialMergeQuery{rowsA: 400, rowsB: 200}, Cores: []int{4, 5, 6, 7}},
		}
		res, err := e.Run(specs, RunOptions{
			Duration: 1e-4, Seed: 11, Parallel: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, tp
	}

	base, tp := run(1)
	if tp.outOfOrder {
		t.Error("phase B row ran before phase A drained (Workers=1)")
	}
	for _, w := range []int{2, 4} {
		got, tp := run(w)
		if tp.outOfOrder {
			t.Errorf("phase B row ran before phase A drained (Workers=%d)", w)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("Workers=%d diverged from Workers=1 with Serial phase:\n base: %+v\n  got: %+v", w, base, got)
		}
	}
}
