package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"cachepart/internal/cachesim"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// Prewarmer is an optional query interface: regions returned are
// touched once before measurement starts (with the phase-0 masks
// already applied), so short measurement windows observe the steady
// state of long-running statements — dictionaries, hash tables and bit
// vectors resident as they would be mid-execution.
type Prewarmer interface {
	PrewarmRegions(cores int) []memory.Region
}

// StreamSpec assigns a query to a set of worker cores. Concurrent
// experiments run several streams on disjoint core sets sharing the
// LLC and memory bandwidth, mirroring the paper's co-run setup.
type StreamSpec struct {
	Query Query
	Cores []int
}

// RunOptions tunes an experiment run.
type RunOptions struct {
	// Duration is the simulated time budget in seconds (the paper runs
	// each workload for 90 wall-clock seconds; simulated runs use
	// shorter budgets at smaller data scales).
	Duration float64
	// WarmupFraction of the duration is excluded from measurement so
	// caches reach steady state. Default 0.25.
	WarmupFraction float64
	// Seed drives per-execution query parameters. Streams derive
	// distinct sub-seeds.
	Seed int64
	// Quantum caps the row budget per scheduling slice. Default 1024.
	Quantum int
	// TargetSliceTicks bounds the virtual time one scheduling slice
	// may advance a core. Keeping slices time-uniform across kernels
	// with very different per-row costs bounds the clock skew between
	// cores, which the shared DRAM queue is sensitive to. Default 1024
	// ticks (64 cycles).
	TargetSliceTicks int64

	// Parallel selects the epoch-parallel simulation mode: each
	// simulated core's private cache levels run in their own host
	// goroutine between epoch barriers, with shared-state mutations
	// buffered and merged in virtual-time order (cachesim parsim,
	// DESIGN.md §11). Results are deterministic and independent of
	// Workers, but follow the epoch semantics rather than the serial
	// reference's per-access interleaving. Parallel runs are untraced.
	Parallel bool
	// Workers caps the host goroutines driving per-core simulation in
	// parallel mode. 0 uses GOMAXPROCS. Changing Workers never changes
	// results, only wall-clock time.
	Workers int
	// EpochTicks is the conservative lookahead horizon of parallel
	// mode: cores simulate independently for this much virtual time
	// between merge barriers. Smaller epochs track cross-core
	// contention more closely; larger epochs amortize the barrier.
	// Default 65536 ticks (4096 cycles).
	EpochTicks int64
}

func (o *RunOptions) setDefaults() {
	if o.WarmupFraction <= 0 || o.WarmupFraction >= 1 {
		o.WarmupFraction = 0.25
	}
	if o.Quantum <= 0 {
		o.Quantum = 1024
	}
	if o.TargetSliceTicks <= 0 {
		o.TargetSliceTicks = 1024
	}
}

// StreamResult reports one stream's measured throughput and counters
// over the post-warmup window.
type StreamResult struct {
	Name          string
	Executions    int64
	Rows          int64
	WindowSeconds float64
	// Throughput is counted rows per simulated second.
	Throughput float64
	// Stats is the delta of the stream's cores over the window.
	Stats cachesim.CoreStats
	// ExecTicks holds the end-to-end duration of every execution
	// completed after warm-up, for response-time percentiles (the
	// paper measures end-to-end response times, Section III-D).
	ExecTicks []int64
	// Queries stamps every execution counted in ExecTicks with its
	// absolute start and completion tick on the run's virtual clock, in
	// completion order. Latency consumers (the serving tier's
	// percentile report) read these directly instead of keeping
	// parallel bookkeeping; Queries[i].Done-Queries[i].Start ==
	// ExecTicks[i] by construction, pinned by TestStreamQueryStamps.
	Queries []QueryStamp
	// Retries counts the stream's retried control-plane operations:
	// transient injected faults the engine cleared by retrying with
	// cycle-domain backoff.
	Retries int64
	// Degraded counts placements that fell back to the root group's
	// full mask after persistent or unretryable faults — isolation
	// lost, results preserved.
	Degraded int64
}

// QueryStamp is the virtual-time interval of one completed query
// execution: the tick the execution began (its cores' synchronised
// clock) and the tick its last phase barrier completed.
type QueryStamp struct {
	Start int64
	Done  int64
}

// Ticks returns the stamped execution's end-to-end duration.
func (q QueryStamp) Ticks() int64 { return q.Done - q.Start }

// Percentile returns the p-quantile (0..1) of the recorded execution
// durations in ticks, or 0 when none completed.
func (r StreamResult) Percentile(p float64) int64 {
	if len(r.ExecTicks) == 0 {
		return 0
	}
	sorted := make([]int64, len(r.ExecTicks))
	copy(sorted, r.ExecTicks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// kernelSlot tracks one worker's kernel within the current phase.
//
//conc:shared slot is bound to one core; only the worker driving that core writes it during an epoch, the coordinator reads after the join
type kernelSlot struct {
	kernel exec.Kernel
	done   bool
	// ticksPerRow is an EWMA of the kernel's cost used to budget
	// time-uniform slices.
	ticksPerRow float64
	// rowsAcc accumulates rows processed since the last barrier; the
	// parallel coordinator folds it into the stream's count there, so
	// worker tasks never write shared stream state.
	rowsAcc int64
}

// budgetFor sizes a slice so it advances about target ticks.
func (s *kernelSlot) budgetFor(target int64, maxRows int) int {
	if s.ticksPerRow <= 0 {
		return 16 // cautious first slice; cost learned from it
	}
	b := int(float64(target) / s.ticksPerRow)
	if b < 1 {
		return 1
	}
	if b > maxRows {
		return maxRows
	}
	return b
}

// observe folds a finished slice into the cost estimate.
func (s *kernelSlot) observe(rows int, ticks int64) {
	if rows <= 0 {
		return
	}
	sample := float64(ticks) / float64(rows)
	if s.ticksPerRow <= 0 {
		s.ticksPerRow = sample
		return
	}
	s.ticksPerRow = 0.75*s.ticksPerRow + 0.25*sample
}

// stream is the runtime state of one StreamSpec.
type stream struct {
	spec StreamSpec
	// idx is the stream's position in the run's spec list, the identity
	// an attached Controller tracks telemetry under.
	idx      int
	rng      *rand.Rand
	phases   []Phase
	phaseIdx int
	slots    []kernelSlot

	execs       int64
	rows        int64
	execsAtWarm int64
	rowsAtWarm  int64

	execStart   int64 // tick the in-flight execution began
	execTicks   []int64
	execDone    []int64 // completion tick of each recorded execution
	ticksAtWarm int     // executions recorded before warm-up
}

// binding ties one worker core to its stream and kernel slot.
type binding struct{ core, si, slot int }

// runState carries the shared prologue products of a run — streams,
// core bindings, warm-up bookkeeping — between the serial and parallel
// execution loops.
type runState struct {
	streams     []*stream
	bindings    []binding
	ctxs        []*exec.Ctx
	ces         *epochState // controller clock, nil without a controller
	durTicks    int64
	warmTicks   int64
	warmed      bool
	statsAtWarm []cachesim.CoreStats
}

// snapshotWarm records the warm-up boundary state.
func (rs *runState) snapshotWarm(e *Engine) {
	rs.warmed = true
	rs.statsAtWarm = e.m.CoreStatsSnapshot()
	for _, st := range rs.streams {
		st.rowsAtWarm = st.rows
		st.execsAtWarm = st.execs
		st.ticksAtWarm = len(st.execTicks)
	}
}

// Run executes the streams concurrently in virtual time until the
// simulated duration elapses, returning per-stream results. The
// machine is reset first so runs are independent and deterministic.
// With opts.Parallel the per-core private cache levels simulate on
// multiple host goroutines under the epoch scheme; otherwise the
// serial reference loop interleaves cores in min-clock order.
func (e *Engine) Run(specs []StreamSpec, opts RunOptions) ([]StreamResult, error) {
	opts.setDefaults()
	rs, err := e.prepareRun(specs, opts)
	if err != nil {
		return nil, err
	}
	if opts.Parallel {
		if err := e.runParallel(rs, opts); err != nil {
			return nil, err
		}
	} else if err := e.runSerial(rs, opts); err != nil {
		return nil, err
	}
	return e.results(rs), nil
}

// prepareRun validates the specs, resets the machine, plans the first
// execution of every stream and prewarms declared working sets.
func (e *Engine) prepareRun(specs []StreamSpec, opts RunOptions) (*runState, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("engine: no streams")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("engine: duration %v must be positive", opts.Duration)
	}
	seen := make(map[int]bool)
	for _, s := range specs {
		if len(s.Cores) == 0 {
			return nil, fmt.Errorf("engine: stream %q has no cores", s.Query.Name())
		}
		for _, c := range s.Cores {
			if c < 0 || c >= e.m.Cores() {
				return nil, fmt.Errorf("engine: core %d out of range", c)
			}
			if seen[c] {
				return nil, fmt.Errorf("engine: core %d assigned twice", c)
			}
			seen[c] = true
		}
	}

	e.m.Reset()
	e.resetFaultState(len(specs))

	infos := make([]StreamInfo, len(specs))
	for i, s := range specs {
		infos[i] = StreamInfo{Name: s.Query.Name(), Cores: len(s.Cores)}
	}
	es, err := e.controllerBegin(infos)
	if err != nil {
		return nil, err
	}

	streams := make([]*stream, len(specs))
	// bindings lists (core, stream, slot) in ascending core order so
	// scheduling ties break deterministically.
	var bindings []binding
	for i, spec := range specs {
		st := &stream{
			spec: spec,
			idx:  i,
			rng:  rand.New(rand.NewSource(opts.Seed + int64(i)*7919)),
		}
		if err := e.planExecution(st); err != nil {
			return nil, err
		}
		streams[i] = st
		for slot, c := range spec.Cores {
			bindings = append(bindings, binding{core: c, si: i, slot: slot})
		}
	}
	sort.Slice(bindings, func(i, j int) bool { return bindings[i].core < bindings[j].core })

	ctxs := make([]*exec.Ctx, e.m.Cores())
	for c := range ctxs {
		ctxs[c] = e.Ctx(c)
	}

	// Prewarm declared working sets, then rewind the clocks so the
	// measured window starts in steady state.
	for _, st := range streams {
		pw, ok := st.spec.Query.(Prewarmer)
		if !ok {
			continue
		}
		for _, region := range pw.PrewarmRegions(len(st.spec.Cores)) {
			for i, off := 0, uint64(0); off < region.Size; i, off = i+1, off+memory.LineSize {
				c := st.spec.Cores[i%len(st.spec.Cores)]
				e.m.Access(c, region.Addr(off), false)
			}
		}
	}
	e.m.ZeroClocksAndStats()

	return &runState{
		streams:   streams,
		bindings:  bindings,
		ctxs:      ctxs,
		ces:       es,
		durTicks:  e.m.Ticks(opts.Duration),
		warmTicks: e.m.Ticks(opts.Duration * opts.WarmupFraction),
	}, nil
}

// minRunnable finds the least-advanced core with runnable work,
// returning its binding index and clock, or -1 when nothing can run.
func (e *Engine) minRunnable(rs *runState) (int, int64) {
	minIdx := -1
	var minNow int64
	for bi, b := range rs.bindings {
		st := rs.streams[b.si]
		if b.slot >= len(st.slots) || st.slots[b.slot].done || st.slots[b.slot].kernel == nil {
			continue
		}
		if now := e.m.Now(b.core); minIdx < 0 || now < minNow {
			minIdx, minNow = bi, now
		}
	}
	return minIdx, minNow
}

// runSerial is the reference execution loop: one slice at a time on
// the globally least-advanced core.
func (e *Engine) runSerial(rs *runState, opts RunOptions) error {
	for {
		minIdx, minNow := e.minRunnable(rs)
		if minIdx < 0 {
			return fmt.Errorf("engine: deadlock — no runnable kernels")
		}
		if !rs.warmed && minNow >= rs.warmTicks {
			rs.snapshotWarm(e)
		}
		if minNow >= rs.durTicks {
			return nil
		}
		if err := e.controllerTick(rs.ces, minNow, rs.bindings[minIdx].core); err != nil {
			return err
		}

		b := rs.bindings[minIdx]
		st := rs.streams[b.si]
		slot := &st.slots[b.slot]
		budget := slot.budgetFor(opts.TargetSliceTicks, opts.Quantum)
		before := e.m.Now(b.core)
		rows, done := slot.kernel.Step(rs.ctxs[b.core], budget)
		slot.observe(rows, e.m.Now(b.core)-before)
		if st.phases[st.phaseIdx].CountRows {
			st.rows += int64(rows)
		}
		if done {
			slot.done = true
			if st.phaseDone() {
				if err := e.advancePhase(st); err != nil {
					return err
				}
			}
		} else if rows == 0 {
			return fmt.Errorf("engine: kernel %q/%s made no progress",
				st.spec.Query.Name(), st.phases[st.phaseIdx].Name)
		}
	}
}

// results builds the per-stream report over the post-warm-up window.
func (e *Engine) results(rs *runState) []StreamResult {
	warmTicks := rs.warmTicks
	if !rs.warmed {
		rs.statsAtWarm = make([]cachesim.CoreStats, e.m.Cores())
		warmTicks = 0
	}
	results := make([]StreamResult, len(rs.streams))
	window := e.m.Seconds(rs.durTicks - warmTicks)
	for i, st := range rs.streams {
		var delta cachesim.CoreStats
		for _, c := range st.spec.Cores {
			delta.Add(e.m.Stats(c).Sub(rs.statsAtWarm[c]))
		}
		rows := st.rows - st.rowsAtWarm
		ticks := st.execTicks[st.ticksAtWarm:]
		stamps := make([]QueryStamp, len(ticks))
		for j, done := range st.execDone[st.ticksAtWarm:] {
			stamps[j] = QueryStamp{Start: done - ticks[j], Done: done}
		}
		results[i] = StreamResult{
			Name:          st.spec.Query.Name(),
			Executions:    st.execs - st.execsAtWarm,
			Rows:          rows,
			WindowSeconds: window,
			Throughput:    float64(rows) / window,
			Stats:         delta,
			ExecTicks:     ticks,
			Queries:       stamps,
			Retries:       e.streamFaults[i].retries,
			Degraded:      e.streamFaults[i].degraded,
		}
	}
	return results
}

// phaseDone reports whether every kernel of the current phase
// finished.
func (st *stream) phaseDone() bool {
	for i := range st.slots {
		if st.slots[i].kernel != nil && !st.slots[i].done {
			return false
		}
	}
	return true
}

// planExecution asks the query for a fresh execution's phases and arms
// phase 0.
func (e *Engine) planExecution(st *stream) error {
	// The new execution starts at the stream's synchronised clock.
	for _, c := range st.spec.Cores {
		if now := e.m.Now(c); now > st.execStart {
			st.execStart = now
		}
	}
	return e.planPhases(st)
}

// planPhases plans one execution's phases, validates them against the
// stream's core count and arms phase 0. Split from planExecution so
// the open-loop path (openloop.go) can stamp execution starts itself.
func (e *Engine) planPhases(st *stream) error {
	phases, err := st.spec.Query.Plan(len(st.spec.Cores), st.rng)
	if err != nil {
		return err
	}
	if len(phases) == 0 {
		return fmt.Errorf("engine: query %q planned no phases", st.spec.Query.Name())
	}
	for _, ph := range phases {
		if len(ph.Kernels) == 0 {
			return fmt.Errorf("engine: phase %q of %q has no kernels", ph.Name, st.spec.Query.Name())
		}
		if len(ph.Kernels) > len(st.spec.Cores) {
			return fmt.Errorf("engine: phase %q of %q has %d kernels for %d cores",
				ph.Name, st.spec.Query.Name(), len(ph.Kernels), len(st.spec.Cores))
		}
	}
	st.phases = phases
	st.phaseIdx = 0
	return e.armPhase(st)
}

// armPhase binds the current phase's kernels to the stream's cores and
// applies the phase's CUID to each participating worker.
func (e *Engine) armPhase(st *stream) error {
	ph := st.phases[st.phaseIdx]
	st.slots = make([]kernelSlot, len(st.spec.Cores))
	for i := range ph.Kernels {
		st.slots[i] = kernelSlot{kernel: ph.Kernels[i]}
		if err := e.applyJob(st.spec.Cores[i], st.idx, ph.CUID, ph.Footprint); err != nil {
			return err
		}
	}
	return nil
}

// advancePhase synchronises the stream's cores at the phase barrier
// and moves to the next phase, or plans the next execution when the
// last phase completed.
func (e *Engine) advancePhase(st *stream) error {
	var t int64
	for _, c := range st.spec.Cores {
		if now := e.m.Now(c); now > t {
			t = now
		}
	}
	for _, c := range st.spec.Cores {
		e.m.AdvanceTo(c, t)
	}
	st.phaseIdx++
	if st.phaseIdx < len(st.phases) {
		return e.armPhase(st)
	}
	st.execs++
	st.execTicks = append(st.execTicks, t-st.execStart)
	st.execDone = append(st.execDone, t)
	st.execStart = t
	return e.planExecution(st)
}
