// The adaptive variant of TestRunBitIdentical lives in an external
// test package: the controller under test comes from internal/adapt,
// which imports engine, so an in-package test would close an import
// cycle.
package engine_test

import (
	"math/rand"
	"reflect"
	"testing"

	"cachepart/internal/adapt"
	"cachepart/internal/cachesim"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/memory"
	"cachepart/internal/workload"
)

// adaptiveFixture builds a small machine with a real feedback
// controller attached and the paper's scan + aggregation queries over
// a fresh address space.
func adaptiveFixture(t *testing.T) (*engine.Engine, *adapt.Controller, []engine.Query) {
	t.Helper()
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 8
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(m, core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := adapt.Attach(e, adapt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	space := memory.NewSpace()
	rng := rand.New(rand.NewSource(7))
	q1, err := workload.NewQ1(space, rng, workload.Q1Spec{Rows: 1 << 20, Distinct: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := workload.NewQ2(space, rng, workload.Q2Spec{
		Rows: 1 << 18, DistinctV: 1 << 12, Groups: 1 << 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, ctrl, []engine.Query{q1, q2}
}

// TestRunBitIdenticalAdaptive extends the reproducibility contract of
// TestRunBitIdentical to controller-enabled runs: with the online
// feedback controller attached, two same-seed runs must produce
// bit-for-bit identical results and an identical mask-transition log,
// on both the disjoint-cores path and the shared worker pool.
func TestRunBitIdenticalAdaptive(t *testing.T) {
	type outcome struct {
		res []engine.StreamResult
		trs []adapt.Transition
	}
	run := func(shared bool) outcome {
		t.Helper()
		e, ctrl, qs := adaptiveFixture(t)
		var (
			res []engine.StreamResult
			err error
		)
		opts := engine.RunOptions{Duration: 3e-4, Seed: 42}
		if shared {
			res, err = e.RunSharedPool(qs, opts)
		} else {
			res, err = e.Run([]engine.StreamSpec{
				{Query: qs[0], Cores: []int{0, 1, 2, 3}},
				{Query: qs[1], Cores: []int{4, 5, 6, 7}},
			}, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		return outcome{res: res, trs: ctrl.Transitions()}
	}

	for _, mode := range []struct {
		name   string
		shared bool
	}{{"disjoint", false}, {"pool", true}} {
		t.Run(mode.name, func(t *testing.T) {
			first := run(mode.shared)
			second := run(mode.shared)
			if !reflect.DeepEqual(first.res, second.res) {
				t.Errorf("same-seed adaptive runs diverged:\n first: %+v\nsecond: %+v",
					first.res, second.res)
			}
			if !reflect.DeepEqual(first.trs, second.trs) {
				t.Errorf("controller transitions diverged:\n first: %+v\nsecond: %+v",
					first.trs, second.trs)
			}
			if len(first.trs) == 0 {
				t.Error("controller recorded no transitions; workload too quiet to pin determinism")
			}
		})
	}
}
