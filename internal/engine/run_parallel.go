package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cachepart/internal/exec"
)

// runParallel is the epoch-parallel execution loop. Between barriers,
// every runnable kernel slot advances on its own core's parallel
// front-end (cachesim.CoreSim) up to a shared virtual-time horizon;
// the slots touch disjoint simulator state, so host goroutines can
// drive them in any order. At each barrier a single merge applies the
// buffered LLC/DRAM events in virtual-time order, and all control-
// plane work — warm-up snapshot, controller epochs, phase advancement,
// resctrl programming, fault handling — runs on the coordinator.
// Results are a pure function of the inputs: the worker count only
// changes wall-clock time.
func (e *Engine) runParallel(rs *runState, opts RunOptions) error {
	es := e.m.NewEpochSim()
	pctxs := make([]*exec.Ctx, e.m.Cores())
	for c := range pctxs {
		pctxs[c] = e.Ctx(c)
		pctxs[c].Par = es.Core(c)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	epochTicks := opts.EpochTicks
	if epochTicks <= 0 {
		epochTicks = 1 << 16
	}

	// Tasks are plain values in a slice reused across epochs: one
	// epoch's worth of closure-and-pointer allocations per barrier adds
	// up over the millions of epochs a long run executes.
	// Each worker claims disjoint tasks via the atomic cursor, so a
	// task is written by at most one goroutine per epoch.
	//
	//conc:shared one slot per task; the claiming worker alone writes it and the coordinator reads after wg.Wait
	type task struct {
		st     *stream
		slot   *kernelSlot
		core   int
		serial bool
		err    error
	}
	var tasks []task

	for {
		minIdx, minNow := e.minRunnable(rs)
		if minIdx < 0 {
			return fmt.Errorf("engine: deadlock — no runnable kernels")
		}
		if !rs.warmed && minNow >= rs.warmTicks {
			rs.snapshotWarm(e)
		}
		if minNow >= rs.durTicks {
			return nil
		}
		if err := e.controllerTick(rs.ces, minNow, rs.bindings[minIdx].core); err != nil {
			return err
		}

		horizon := minNow + epochTicks
		// Land a barrier exactly on the warm-up boundary and the run
		// end, so the snapshot points — hence which executions fall in
		// the measured window — do not depend on the epoch length.
		if !rs.warmed && horizon > rs.warmTicks {
			horizon = rs.warmTicks
		}
		if horizon > rs.durTicks {
			horizon = rs.durTicks
		}
		tasks = tasks[:0]
		for _, st := range rs.streams {
			if st.phases[st.phaseIdx].Serial {
				// Kernels sharing order-sensitive state run as one
				// task, interleaved in virtual-time order.
				tasks = append(tasks, task{st: st, serial: true})
				continue
			}
			for i := range st.slots {
				s := &st.slots[i]
				if s.kernel == nil || s.done {
					continue
				}
				core := st.spec.Cores[i]
				if e.m.Now(core) >= horizon {
					continue
				}
				tasks = append(tasks, task{st: st, slot: s, core: core})
			}
		}
		runTask := func(t *task) {
			if t.serial {
				t.err = e.stepStreamInterleaved(t.st, pctxs, horizon, opts)
			} else {
				t.err = e.stepSlot(t.st, t.slot, pctxs[t.core], t.core, horizon, opts)
			}
		}

		es.BeginEpoch()
		if n := min(workers, len(tasks)); n <= 1 {
			for i := range tasks {
				runTask(&tasks[i])
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(tasks) {
							return
						}
						runTask(&tasks[i])
					}
				}()
			}
			wg.Wait()
		}
		es.Merge()
		for i := range tasks {
			if tasks[i].err != nil {
				return tasks[i].err
			}
		}

		// Barrier bookkeeping: fold worker-local row counts, then
		// advance any stream whose phase completed this epoch.
		for _, st := range rs.streams {
			countRows := st.phases[st.phaseIdx].CountRows
			for i := range st.slots {
				if countRows {
					st.rows += st.slots[i].rowsAcc
				}
				st.slots[i].rowsAcc = 0
			}
			if st.phaseDone() {
				if err := e.advancePhase(st); err != nil {
					return err
				}
			}
		}
	}
}

// stepSlot advances one kernel slot on its core until the slot
// finishes or the core's clock reaches the epoch horizon. It touches
// only slot- and core-owned state.
//
//perf:hot per-epoch worker body in parallel mode
func (e *Engine) stepSlot(st *stream, s *kernelSlot, ctx *exec.Ctx, core int, horizon int64, opts RunOptions) error {
	for !s.done && e.m.Now(core) < horizon {
		budget := s.budgetFor(opts.TargetSliceTicks, opts.Quantum)
		before := e.m.Now(core)
		rows, done := s.kernel.Step(ctx, budget)
		s.observe(rows, e.m.Now(core)-before)
		s.rowsAcc += int64(rows)
		if done {
			s.done = true
			return nil
		}
		if rows == 0 {
			return fmt.Errorf("engine: kernel %q/%s made no progress",
				st.spec.Query.Name(), st.phases[st.phaseIdx].Name)
		}
	}
	return nil
}

// stepStreamInterleaved runs all kernels of one stream's serial phase
// in min-clock order up to the horizon — the serial scheduling rule,
// scoped to the one stream whose kernels share mutable state.
//
//perf:hot per-epoch serial-stream body in parallel mode
func (e *Engine) stepStreamInterleaved(st *stream, ctxs []*exec.Ctx, horizon int64, opts RunOptions) error {
	for {
		minSlot := -1
		var minNow int64
		for i := range st.slots {
			s := &st.slots[i]
			if s.kernel == nil || s.done {
				continue
			}
			if now := e.m.Now(st.spec.Cores[i]); now < horizon && (minSlot < 0 || now < minNow) {
				minSlot, minNow = i, now
			}
		}
		if minSlot < 0 {
			return nil
		}
		s := &st.slots[minSlot]
		core := st.spec.Cores[minSlot]
		budget := s.budgetFor(opts.TargetSliceTicks, opts.Quantum)
		before := e.m.Now(core)
		rows, done := s.kernel.Step(ctxs[core], budget)
		s.observe(rows, e.m.Now(core)-before)
		s.rowsAcc += int64(rows)
		if done {
			s.done = true
			continue
		}
		if rows == 0 {
			return fmt.Errorf("engine: kernel %q/%s made no progress",
				st.spec.Query.Name(), st.phases[st.phaseIdx].Name)
		}
	}
}
