package engine

import (
	"math/rand"
	"sort"

	"cachepart/internal/core"
)

// This file implements the scheduling idea the paper sketches in its
// conclusion (Section VIII): "it might be advisable to co-run
// operators with high cache pollution characteristics, but let
// cache-sensitive queries rather run alone." Queries are profiled by
// the cache-usage identifiers of their planned phases and grouped so
// that polluters share a round while sensitive queries co-run with
// other sensitive queries (or alone).

// ProfileOf classifies a query for scheduling by planning one
// execution and inspecting its phases: a query whose row-counting work
// is dominated by polluting phases is a polluter; one with any
// sensitive phase is sensitive; otherwise it follows its joins.
func ProfileOf(q Query, cores int, rng *rand.Rand) (core.CUID, error) {
	phases, err := q.Plan(cores, rng)
	if err != nil {
		return core.Sensitive, err
	}
	var sawPolluting, sawDepends bool
	for _, ph := range phases {
		switch ph.CUID {
		case core.Sensitive:
			return core.Sensitive, nil
		case core.Polluting:
			sawPolluting = true
		case core.Depends:
			sawDepends = true
		}
	}
	switch {
	case sawDepends:
		return core.Depends, nil
	case sawPolluting:
		return core.Polluting, nil
	default:
		return core.Sensitive, nil
	}
}

// Round is a set of queries scheduled to run concurrently.
type Round []Query

// PlanRounds groups queries into rounds of at most `slots` concurrent
// streams. With cacheAware set, queries are ordered by their profile
// so polluters fill rounds together and cache-sensitive queries share
// rounds only with each other; otherwise the input order is kept
// (a naive mixed schedule).
func PlanRounds(queries []Query, profiles []core.CUID, slots int, cacheAware bool) []Round {
	if slots < 1 {
		slots = 1
	}
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	if cacheAware {
		// Polluting first, then Depends, then Sensitive; stable so
		// equal-profile queries keep their submission order.
		rank := func(c core.CUID) int {
			switch c {
			case core.Polluting:
				return 0
			case core.Depends:
				return 1
			default:
				return 2
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return rank(profiles[idx[a]]) < rank(profiles[idx[b]])
		})
	}
	var rounds []Round
	for start := 0; start < len(idx); start += slots {
		end := start + slots
		if end > len(idx) {
			end = len(idx)
		}
		var r Round
		for _, i := range idx[start:end] {
			r = append(r, queries[i])
		}
		rounds = append(rounds, r)
	}
	return rounds
}

// RunRounds executes each round as a co-run over equal core splits and
// returns the per-query results in query order of the rounds.
func (e *Engine) RunRounds(rounds []Round, opts RunOptions) ([][]StreamResult, error) {
	out := make([][]StreamResult, 0, len(rounds))
	for _, r := range rounds {
		specs := make([]StreamSpec, len(r))
		per := e.m.Cores() / len(r)
		if per < 1 {
			per = 1
		}
		next := 0
		for i, q := range r {
			cores := make([]int, per)
			for j := range cores {
				cores[j] = next
				next++
			}
			specs[i] = StreamSpec{Query: q, Cores: cores}
		}
		res, err := e.Run(specs, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
