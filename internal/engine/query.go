package engine

import (
	"math/rand"

	"cachepart/internal/core"
	"cachepart/internal/exec"
)

// Phase is one stage of a query execution: a set of kernels that run in
// parallel, one per worker core, separated from the next phase by a
// barrier (e.g. local aggregation before the merge). The whole phase
// runs under one cache usage identifier — a job represents at most one
// operator (Section V-C).
type Phase struct {
	Name      string
	CUID      core.CUID
	Footprint core.Footprint
	// Kernels holds one kernel per worker slot; phases with fewer
	// kernels than the query has cores leave the remaining workers
	// idle (e.g. a single-threaded merge).
	Kernels []exec.Kernel
	// CountRows marks phases whose processed rows count toward the
	// query's throughput (payload phases, not auxiliary merges).
	CountRows bool
	// Serial marks phases whose kernels mutate shared, order-sensitive
	// state — e.g. folding thread-local tables into one global hash
	// table, where the probe chains depend on insertion order. A
	// parallel-mode run executes such a phase's kernels as a single
	// task interleaved in virtual-time order, so results stay
	// deterministic; serial-mode runs are unaffected.
	Serial bool
}

// Query plans executions of one statement. Implementations live in the
// workload package; the engine executes them repeatedly for the
// duration of an experiment, like the paper's 90-second runs.
type Query interface {
	Name() string
	// Plan instantiates the phases of one execution across the given
	// number of worker cores. rng drives per-execution parameters
	// (e.g. the scan predicate "?" chosen anew for every execution).
	Plan(cores int, rng *rand.Rand) ([]Phase, error)
}

// PartitionRows splits [0, rows) into n contiguous ranges for parallel
// kernels; the first rows%n ranges get one extra row.
func PartitionRows(rows, n int) [][2]int {
	if n <= 0 {
		n = 1
	}
	if n > rows && rows > 0 {
		n = rows
	}
	out := make([][2]int, 0, n)
	base := rows / n
	extra := rows % n
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}
