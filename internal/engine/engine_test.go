package engine

import (
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/cat"
	"cachepart/internal/core"
)

// testMachine is a 1/64-scale paper machine with 8 cores: LLC ~880 KiB,
// 20 ways, so experiments run in milliseconds.
func testMachine(t *testing.T) *cachesim.Machine {
	t.Helper()
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 8
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testEngine(t *testing.T, enabled bool) *Engine {
	t.Helper()
	m := testMachine(t)
	p := core.DefaultPolicy(m.Config().LLC.Size, m.Config().LLC.Ways)
	p.Enabled = enabled
	e, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidatesPolicy(t *testing.T) {
	m := testMachine(t)
	bad := core.DefaultPolicy(m.Config().LLC.Size, m.Config().LLC.Ways)
	bad.PollutingFraction = 0
	if _, err := New(m, bad); err == nil {
		t.Error("invalid policy accepted")
	}
	mismatch := core.DefaultPolicy(1<<20, 16) // wrong way count
	if _, err := New(m, mismatch); err == nil {
		t.Error("way-count mismatch accepted")
	}
}

func TestApplyCUIDProgramsMask(t *testing.T) {
	e := testEngine(t, true)
	if err := e.applyCUID(3, -1, core.Polluting, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	if got := e.Machine().CAT().MaskOf(3); got != 0x3 {
		t.Errorf("core 3 mask = %v, want 0x3", got)
	}
	if err := e.applyCUID(3, -1, core.Sensitive, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	if got := e.Machine().CAT().MaskOf(3); got != cat.FullMask(20) {
		t.Errorf("core 3 mask = %v, want full", got)
	}
}

func TestApplyCUIDElidesRedundantWrites(t *testing.T) {
	e := testEngine(t, true)
	if err := e.applyCUID(0, -1, core.Polluting, core.Footprint{}); err != nil {
		t.Fatal(err)
	}
	w := e.MaskWrites()
	clock := e.Machine().Now(0)
	for i := 0; i < 5; i++ {
		if err := e.applyCUID(0, -1, core.Polluting, core.Footprint{}); err != nil {
			t.Fatal(err)
		}
	}
	if e.MaskWrites() != w {
		t.Errorf("redundant applies performed %d extra writes", e.MaskWrites()-w)
	}
	if e.Machine().Now(0) != clock {
		t.Error("redundant applies charged overhead")
	}
}

func TestApplyCUIDChargesOverheadOnChange(t *testing.T) {
	e := testEngine(t, true)
	_ = e.applyCUID(0, -1, core.Polluting, core.Footprint{})
	before := e.Machine().Now(0)
	_ = e.applyCUID(0, -1, core.Sensitive, core.Footprint{})
	if got := e.Machine().Now(0) - before; got != DefaultMaskOverheadCycles*cachesim.TicksPerCycle {
		t.Errorf("overhead = %d ticks, want %d", got, DefaultMaskOverheadCycles*cachesim.TicksPerCycle)
	}
	e.SetMaskOverhead(0)
	before = e.Machine().Now(0)
	_ = e.applyCUID(0, -1, core.Polluting, core.Footprint{})
	if e.Machine().Now(0) != before {
		t.Error("zero overhead still charged")
	}
}

func TestPolicyDisabledNeverMasks(t *testing.T) {
	e := testEngine(t, false)
	for _, cuid := range []core.CUID{core.Polluting, core.Sensitive, core.Depends} {
		if err := e.applyCUID(1, -1, cuid, core.Footprint{BitVectorBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		if got := e.Machine().CAT().MaskOf(1); got != cat.FullMask(20) {
			t.Errorf("disabled policy masked core to %v for %v", got, cuid)
		}
	}
	if e.MaskWrites() != 0 {
		t.Errorf("disabled policy performed %d mask writes", e.MaskWrites())
	}
}

func TestLimitWays(t *testing.T) {
	e := testEngine(t, false)
	if err := e.LimitWays(4); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < e.Machine().Cores(); c++ {
		if got := e.Machine().CAT().MaskOf(c); got != 0xf {
			t.Errorf("core %d mask = %v, want 0xf", c, got)
		}
	}
	// Per-job masks are suppressed while a limit is active.
	ep := testEngine(t, true)
	if err := ep.LimitWays(4); err != nil {
		t.Fatal(err)
	}
	_ = ep.applyCUID(0, -1, core.Polluting, core.Footprint{})
	if got := ep.Machine().CAT().MaskOf(0); got != 0xf {
		t.Errorf("limit overridden by job mask: %v", got)
	}
	if err := e.LimitWays(0); err != nil {
		t.Fatal(err)
	}
	if got := e.Machine().CAT().MaskOf(0); got != cat.FullMask(20) {
		t.Errorf("limit not lifted: %v", got)
	}
	if err := e.LimitWays(-1); err == nil {
		t.Error("negative limit accepted")
	}
	if err := e.LimitWays(21); err == nil {
		t.Error("excessive limit accepted")
	}
}

func TestSetPolicy(t *testing.T) {
	e := testEngine(t, false)
	p := e.Policy()
	p.Enabled = true
	if err := e.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	if !e.Policy().Enabled {
		t.Error("policy not replaced")
	}
	p.PollutingFraction = -1
	if err := e.SetPolicy(p); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestPartitionRows(t *testing.T) {
	cases := []struct {
		rows, n int
		want    [][2]int
	}{
		{10, 2, [][2]int{{0, 5}, {5, 10}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{2, 4, [][2]int{{0, 1}, {1, 2}}},
		{5, 0, [][2]int{{0, 5}}},
	}
	for _, c := range cases {
		got := PartitionRows(c.rows, c.n)
		if len(got) != len(c.want) {
			t.Errorf("PartitionRows(%d,%d) = %v", c.rows, c.n, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PartitionRows(%d,%d) = %v, want %v", c.rows, c.n, got, c.want)
				break
			}
		}
	}
	// Partitions tile the range exactly.
	parts := PartitionRows(1000, 7)
	prev := 0
	for _, p := range parts {
		if p[0] != prev {
			t.Fatalf("gap at %v", p)
		}
		prev = p[1]
	}
	if prev != 1000 {
		t.Fatalf("partitions end at %d", prev)
	}
}

func TestRunValidation(t *testing.T) {
	e := testEngine(t, false)
	q := &countQuery{name: "q", rowsPerExec: 100}
	if _, err := e.Run(nil, RunOptions{Duration: 1e-3}); err == nil {
		t.Error("no streams accepted")
	}
	if _, err := e.Run([]StreamSpec{{Query: q, Cores: []int{0}}}, RunOptions{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := e.Run([]StreamSpec{{Query: q, Cores: nil}}, RunOptions{Duration: 1e-3}); err == nil {
		t.Error("empty core set accepted")
	}
	if _, err := e.Run([]StreamSpec{{Query: q, Cores: []int{99}}}, RunOptions{Duration: 1e-3}); err == nil {
		t.Error("out-of-range core accepted")
	}
	specs := []StreamSpec{
		{Query: q, Cores: []int{0, 1}},
		{Query: q, Cores: []int{1, 2}},
	}
	if _, err := e.Run(specs, RunOptions{Duration: 1e-3}); err == nil {
		t.Error("overlapping cores accepted")
	}
}

func TestRunCountsExecutions(t *testing.T) {
	e := testEngine(t, false)
	q := &countQuery{name: "q", rowsPerExec: 1000}
	res, err := e.Run([]StreamSpec{{Query: q, Cores: []int{0, 1}}},
		RunOptions{Duration: 1e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Name != "q" {
		t.Errorf("Name = %q", r.Name)
	}
	if r.Executions == 0 || r.Rows == 0 {
		t.Errorf("no progress: %+v", r)
	}
	if r.Throughput <= 0 || r.WindowSeconds <= 0 {
		t.Errorf("bad throughput: %+v", r)
	}
	if r.Stats.Instructions == 0 {
		t.Error("no instructions retired")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() StreamResult {
		e := testEngine(t, false)
		q := &countQuery{name: "q", rowsPerExec: 777}
		res, err := e.Run([]StreamSpec{{Query: q, Cores: []int{0, 1, 2}}},
			RunOptions{Duration: 1e-4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	a, b := run(), run()
	if a.Rows != b.Rows || a.Executions != b.Executions {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunTwoStreamsShareTime(t *testing.T) {
	e := testEngine(t, false)
	qa := &countQuery{name: "a", rowsPerExec: 500}
	qb := &countQuery{name: "b", rowsPerExec: 500}
	res, err := e.Run([]StreamSpec{
		{Query: qa, Cores: []int{0, 1}},
		{Query: qb, Cores: []int{2, 3}},
	}, RunOptions{Duration: 1e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows == 0 || res[1].Rows == 0 {
		t.Errorf("a stream starved: %+v", res)
	}
	// Symmetric streams make symmetric progress (within 10%).
	ratio := float64(res[0].Rows) / float64(res[1].Rows)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("asymmetric progress: %v", ratio)
	}
}

func TestRunMultiPhaseBarrier(t *testing.T) {
	e := testEngine(t, false)
	q := &twoPhaseQuery{rowsA: 600, rowsB: 100}
	res, err := e.Run([]StreamSpec{{Query: q, Cores: []int{0, 1, 2}}},
		RunOptions{Duration: 1e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Executions == 0 {
		t.Fatal("no executions completed")
	}
	if q.outOfOrder {
		t.Error("phase B kernel observed unfinished phase A")
	}
}
