package engine

import (
	"fmt"

	"cachepart/internal/core"
)

// Controller is an online cache-partitioning controller driven by the
// engine's virtual clock (internal/adapt implements one). While a
// controller is attached the engine routes every job's worker into the
// resctrl group the controller chooses instead of the static policy's
// mask group, and invokes OnEpoch once per control epoch of simulated
// time — the hook an adaptive scheme uses to reprogram group schemata
// from CMT/MBM telemetry. All callbacks run inside the serial
// virtual-time scheduling loop, so a controller needs no locking of
// its own and its decisions are deterministic for a given seed.
type Controller interface {
	// BeginRun is called once per Run/RunSharedPool, directly after the
	// machine reset and before any job placement, describing the
	// streams about to execute — the point where the controller sets up
	// its per-stream control groups and forgets stale telemetry.
	// Machine counters are rewound again after prewarming; a controller
	// sampling through resctrl.MonWindow absorbs that reset.
	BeginRun(streams []StreamInfo) error
	// GroupFor chooses the resctrl group for a job of the given stream.
	// The job's CUID annotation and footprint hint are passed through
	// as priors the controller may consult or ignore. Returning the
	// empty string falls back to the static policy path.
	GroupFor(stream int, cuid core.CUID, fp core.Footprint) (string, error)
	// OnEpoch runs one control step; epoch counts from 0 within the
	// run. Schemata writes the controller performs here are charged to
	// the core whose progress crossed the epoch boundary.
	OnEpoch(epoch int) error
}

// StreamInfo describes one stream of a run to a controller.
type StreamInfo struct {
	Name string
	// Cores is the number of worker cores executing the stream — in
	// shared-pool runs, the stream's fair share of the pool. Telemetry
	// normalized per core stays comparable across machine sizes.
	Cores int
}

// AttachController connects an online controller to the engine; during
// runs it is called back every epochSeconds of simulated time.
// Attaching nil detaches.
func (e *Engine) AttachController(c Controller, epochSeconds float64) error {
	if c != nil && epochSeconds <= 0 {
		return fmt.Errorf("engine: control epoch %v must be positive", epochSeconds)
	}
	e.ctrl = c
	e.ctrlEpochSeconds = epochSeconds
	return nil
}

// DetachController removes the attached controller, restoring the
// static policy path.
func (e *Engine) DetachController() { e.ctrl = nil }

// Controller reports the attached controller, nil when none.
func (e *Engine) Controller() Controller { return e.ctrl }

// epochState tracks the controller's clock within one run.
type epochState struct {
	ticks int64 // epoch length
	next  int64 // next boundary
	idx   int
}

// controllerBegin starts the controller's run, returning nil state
// when no controller is attached.
func (e *Engine) controllerBegin(infos []StreamInfo) (*epochState, error) {
	if e.ctrl == nil {
		return nil, nil
	}
	if err := e.ctrl.BeginRun(infos); err != nil {
		return nil, err
	}
	t := e.m.Ticks(e.ctrlEpochSeconds)
	if t < 1 {
		t = 1
	}
	return &epochState{ticks: t, next: t}, nil
}

// controllerTick fires every control epoch the virtual clock has
// crossed. Real schemata writes performed by the controller count as
// mask writes and charge the modelled kernel-interaction overhead to
// the core whose progress crossed the boundary, so an active
// controller is never free while a quiescent one costs nothing.
func (e *Engine) controllerTick(es *epochState, now int64, coreID int) error {
	if es == nil {
		return nil
	}
	for now >= es.next {
		before := e.fs.Writes()
		if err := e.ctrl.OnEpoch(es.idx); err != nil {
			return err
		}
		if w := e.fs.Writes() - before; w > 0 {
			e.maskWrites += w
			if e.maskOverheadCycles > 0 {
				e.m.Compute(coreID, int64(w)*e.maskOverheadCycles, uint64(w))
			}
		}
		es.idx++
		es.next += es.ticks
	}
	return nil
}

// applyJob routes a job's worker into its resctrl group: through the
// attached controller when one is present, through the static
// CUID→mask policy otherwise. An instance-wide way limit overrides
// both, as in applyCUID.
func (e *Engine) applyJob(coreID, streamIdx int, cuid core.CUID, fp core.Footprint) error {
	if e.ctrl != nil && e.limitWays == 0 {
		group, err := e.ctrl.GroupFor(streamIdx, cuid, fp)
		if err != nil {
			return err
		}
		if group != "" {
			return e.placeWorker(coreID, streamIdx, group)
		}
	}
	return e.applyCUID(coreID, streamIdx, cuid, fp)
}
