package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"cachepart/internal/cachesim"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// RunSharedPool co-runs queries on one shared worker pool, the way the
// engine actually executes concurrent statements (Section V-C,
// Figure 8): every statement plans as many jobs as there are physical
// cores, all jobs queue on the same workers, and a worker picking up a
// job of a different cache-usage class has its thread re-associated
// with the matching resctrl group — the context-switch path where the
// redundant-write elision earns its keep. Jobs migrate between cores;
// the migration cost emerges naturally as private-cache misses.
//
// Workers prefer to continue jobs of the stream they last ran
// (affinity) and steal from other streams otherwise, so mask writes
// stay proportional to genuine class changes.
//
// opts.Parallel is ignored here: the pool re-associates resctrl groups
// on every scheduling slice, a per-slice shared-state interaction the
// epoch scheme cannot buffer, so shared-pool runs always use the
// serial reference loop.
func (e *Engine) RunSharedPool(queries []Query, opts RunOptions) ([]StreamResult, error) {
	opts.setDefaults()
	if len(queries) == 0 {
		return nil, fmt.Errorf("engine: no queries")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("engine: duration %v must be positive", opts.Duration)
	}
	e.m.Reset()
	e.resetFaultState(len(queries))

	// Streams time-share the whole pool; a stream's core share for
	// telemetry normalization is its fair fraction of it.
	share := e.m.Cores() / len(queries)
	if share < 1 {
		share = 1
	}
	infos := make([]StreamInfo, len(queries))
	for i, q := range queries {
		infos[i] = StreamInfo{Name: q.Name(), Cores: share}
	}
	es, err := e.controllerBegin(infos)
	if err != nil {
		return nil, err
	}

	cores := e.m.Cores()
	streams := make([]*stream, len(queries))
	for i, q := range queries {
		st := &stream{
			idx:  i,
			spec: StreamSpec{Query: q, Cores: poolCores(cores)},
			rng:  rand.New(rand.NewSource(opts.Seed + int64(i)*7919)),
		}
		// Plan without applying CUIDs to fixed cores: the pool applies
		// them per slice.
		phases, err := q.Plan(cores, st.rng)
		if err != nil {
			return nil, err
		}
		if err := validatePhases(q, phases, cores); err != nil {
			return nil, err
		}
		st.phases = phases
		st.armPoolPhase()
		streams[i] = st
	}

	ctxs := make([]*exec.Ctx, cores)
	for c := range ctxs {
		ctxs[c] = e.Ctx(c)
	}

	// Prewarm as in Run.
	for _, st := range streams {
		if pw, ok := st.spec.Query.(Prewarmer); ok {
			for _, region := range pw.PrewarmRegions(cores) {
				for i, off := 0, uint64(0); off < region.Size; i, off = i+1, off+memory.LineSize {
					e.m.Access(i%cores, region.Addr(off), false)
				}
			}
		}
	}
	e.m.ZeroClocksAndStats()

	durTicks := e.m.Ticks(opts.Duration)
	warmTicks := e.m.Ticks(opts.Duration * opts.WarmupFraction)
	warmed := false
	var statsAtWarm []cachesim.CoreStats

	// running[si][slot] marks slots currently held by a core this
	// slice; in the serial loop a slot finishes its slice atomically,
	// so the flag only guards the pick below.
	lastStream := make([]int, cores)
	for c := range lastStream {
		lastStream[c] = c % len(streams)
	}
	// Per-core window accounting: each core's work is attributed to
	// the stream it runs, so per-stream stats sum slice deltas.
	streamStats := make([]cachesim.CoreStats, len(streams))
	warmStreamStats := make([]cachesim.CoreStats, len(streams))

	for {
		// Least-advanced core takes the next slice.
		minCore, minNow := -1, int64(0)
		for c := 0; c < cores; c++ {
			if now := e.m.Now(c); minCore < 0 || now < minNow {
				minCore, minNow = c, now
			}
		}
		if !warmed && minNow >= warmTicks {
			warmed = true
			statsAtWarm = e.m.CoreStatsSnapshot()
			copy(warmStreamStats, streamStats)
			for _, st := range streams {
				st.rowsAtWarm = st.rows
				st.execsAtWarm = st.execs
				st.ticksAtWarm = len(st.execTicks)
			}
		}
		if minNow >= durTicks {
			break
		}
		if err := e.controllerTick(es, minNow, minCore); err != nil {
			return nil, err
		}

		si, slotIdx := pickSlot(streams, lastStream[minCore])
		if si < 0 {
			return nil, fmt.Errorf("engine: shared pool has no runnable jobs")
		}
		st := streams[si]
		lastStream[minCore] = si
		ph := st.phases[st.phaseIdx]
		if err := e.applyJob(minCore, si, ph.CUID, ph.Footprint); err != nil {
			return nil, err
		}
		slot := &st.slots[slotIdx]
		budget := slot.budgetFor(opts.TargetSliceTicks, opts.Quantum)
		before := e.m.Stats(minCore)
		rows, done := slot.kernel.Step(ctxs[minCore], budget)
		streamStats[si].Add(e.m.Stats(minCore).Sub(before))
		slot.observe(rows, e.m.Stats(minCore).ComputeTicks+e.m.Stats(minCore).StallTicks-
			(before.ComputeTicks+before.StallTicks))
		if ph.CountRows {
			st.rows += int64(rows)
		}
		if done {
			slot.done = true
			if st.phaseDone() {
				// Barrier: in the shared pool no cores idle — other
				// jobs fill the time — so only the stream advances.
				st.phaseIdx++
				if st.phaseIdx >= len(st.phases) {
					st.execs++
					now := e.m.Now(minCore)
					st.execTicks = append(st.execTicks, now-st.execStart)
					st.execStart = now
					phases, err := st.spec.Query.Plan(cores, st.rng)
					if err != nil {
						return nil, err
					}
					if err := validatePhases(st.spec.Query, phases, cores); err != nil {
						return nil, err
					}
					st.phases = phases
					st.phaseIdx = 0
				}
				st.armPoolPhase()
			}
		} else if rows == 0 {
			return nil, fmt.Errorf("engine: kernel %q/%s made no progress",
				st.spec.Query.Name(), ph.Name)
		}
	}

	if !warmed {
		warmTicks = 0
		copy(warmStreamStats, make([]cachesim.CoreStats, len(streams)))
		statsAtWarm = make([]cachesim.CoreStats, cores)
	}
	_ = statsAtWarm

	results := make([]StreamResult, len(streams))
	window := e.m.Seconds(durTicks - warmTicks)
	for i, st := range streams {
		rows := st.rows - st.rowsAtWarm
		results[i] = StreamResult{
			Name:          st.spec.Query.Name(),
			Executions:    st.execs - st.execsAtWarm,
			Rows:          rows,
			WindowSeconds: window,
			Throughput:    float64(rows) / window,
			Stats:         streamStats[i].Sub(warmStreamStats[i]),
			ExecTicks:     st.execTicks[st.ticksAtWarm:],
			Retries:       e.streamFaults[i].retries,
			Degraded:      e.streamFaults[i].degraded,
		}
	}
	return results, nil
}

// armPoolPhase resets the slot list for the stream's current phase
// without per-core CUID application (done per slice).
func (st *stream) armPoolPhase() {
	ph := st.phases[st.phaseIdx]
	st.slots = make([]kernelSlot, len(ph.Kernels))
	for i := range ph.Kernels {
		st.slots[i] = kernelSlot{kernel: ph.Kernels[i]}
	}
}

// pickSlot chooses the next runnable slot, preferring the given stream
// (worker affinity) and stealing round-robin otherwise. Within a
// stream it picks the least-progressed slot so phase barriers clear
// evenly.
func pickSlot(streams []*stream, prefer int) (si, slot int) {
	order := make([]int, 0, len(streams))
	order = append(order, prefer)
	for i := range streams {
		if i != prefer {
			order = append(order, i)
		}
	}
	for _, i := range order {
		st := streams[i]
		candidates := make([]int, 0, len(st.slots))
		for s := range st.slots {
			if st.slots[s].kernel != nil && !st.slots[s].done {
				candidates = append(candidates, s)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Ints(candidates)
		return i, candidates[0]
	}
	return -1, -1
}

// validatePhases mirrors planExecution's checks.
func validatePhases(q Query, phases []Phase, cores int) error {
	if len(phases) == 0 {
		return fmt.Errorf("engine: query %q planned no phases", q.Name())
	}
	for _, ph := range phases {
		if len(ph.Kernels) == 0 {
			return fmt.Errorf("engine: phase %q of %q has no kernels", ph.Name, q.Name())
		}
		if len(ph.Kernels) > cores {
			return fmt.Errorf("engine: phase %q of %q has %d kernels for %d cores",
				ph.Name, q.Name(), len(ph.Kernels), cores)
		}
	}
	return nil
}

// poolCores lists all cores, the nominal core set of a pool stream.
func poolCores(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
