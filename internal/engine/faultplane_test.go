package engine

import (
	"reflect"
	"strings"
	"testing"

	"cachepart/internal/core"
	"cachepart/internal/fault"
)

// chaosEngine wraps a fresh test engine's control plane in the fault
// injector.
func chaosEngine(t *testing.T, cfg fault.Config) (*Engine, *fault.Plane) {
	t.Helper()
	e := testEngine(t, true)
	pl, err := fault.Wrap(e.ControlPlane(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetControlPlane(pl); err != nil {
		t.Fatal(err)
	}
	return e, pl
}

func chaosSpecs() []StreamSpec {
	return []StreamSpec{
		{Query: &countQuery{name: "A", rowsPerExec: 600, cuid: core.Polluting}, Cores: []int{0, 1, 2, 3}},
		{Query: &countQuery{name: "B", rowsPerExec: 400, cuid: core.Sensitive}, Cores: []int{4, 5, 6, 7}},
	}
}

// TestRunBitIdenticalChaos extends the reproducibility contract of
// TestRunBitIdentical to fault-injected runs: with the same run seed
// AND the same fault seed, two runs — injections, retries, backoff
// cycles, degradations and all — must be bit-for-bit identical.
func TestRunBitIdenticalChaos(t *testing.T) {
	run := func(runSeed, faultSeed int64) []StreamResult {
		t.Helper()
		e, _ := chaosEngine(t, fault.Uniform(0.2, faultSeed))
		res, err := e.Run(chaosSpecs(), RunOptions{Duration: 1e-4, Seed: runSeed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run(42, 7)
	second := run(42, 7)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("same-seed chaos runs diverged:\n first: %+v\nsecond: %+v", first, second)
	}
	// The fault seed must steer the run: injections cost retry cycles
	// and degradations, so a different schedule shows up in the result.
	if other := run(42, 8); reflect.DeepEqual(first, other) {
		t.Logf("fault seeds 7 and 8 produced identical results; schedule may be degenerate")
	}
}

// TestRunSurvivesFullFaultRate is the robustness contract at its
// extreme: with every control-plane write failing, the run still
// completes without error and still executes queries — isolation is
// lost (streams degrade toward the root group), not correctness.
func TestRunSurvivesFullFaultRate(t *testing.T) {
	e, pl := chaosEngine(t, fault.Config{
		Seed:               3,
		WriteSchemata:      1,
		MoveTask:           1,
		MakeGroup:          1,
		Schedule:           1,
		MonUnavailable:     1,
		PersistentFraction: 0.5,
	})
	res, err := e.Run(chaosSpecs(), RunOptions{Duration: 1e-4, Seed: 1})
	if err != nil {
		t.Fatalf("run errored under full fault rate: %v", err)
	}
	var execs, degraded int64
	for _, r := range res {
		execs += r.Executions
		degraded += r.Degraded
	}
	if execs == 0 {
		t.Error("no executions completed under full fault rate")
	}
	if degraded == 0 {
		t.Error("full fault rate reported no degradations")
	}
	if pl.Stats().Injected == 0 {
		t.Error("injector reports zero faults at rate 1")
	}
}

// TestRetryRecoversTransientFaults checks the other end: with purely
// transient faults and a generous retry budget, the engine absorbs
// every failure through cycle-domain backoff — retries counted, no
// stream degraded.
func TestRetryRecoversTransientFaults(t *testing.T) {
	e, _ := chaosEngine(t, fault.Config{
		Seed:          11,
		WriteSchemata: 0.3,
		MoveTask:      0.3,
		MakeGroup:     0.3,
		// PersistentFraction 0: every fault is retryable.
	})
	if err := e.SetRetryLimit(10); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(chaosSpecs(), RunOptions{Duration: 1e-4, Seed: 1})
	if err != nil {
		t.Fatalf("run errored on transient-only faults: %v", err)
	}
	var retries, degraded int64
	for _, r := range res {
		retries += r.Retries
		degraded += r.Degraded
	}
	if retries == 0 {
		t.Error("no retries recorded at fault rate 0.3")
	}
	if degraded != 0 {
		t.Errorf("%d degradations despite transient-only faults and retry limit 10", degraded)
	}
	if err := e.SetRetryLimit(-1); err == nil {
		t.Error("SetRetryLimit accepted a negative limit")
	}
}

// TestRunErrorPathUnwindsCleanly covers the mid-run failure path: a
// stream whose replan fails aborts the run with one error, and the
// engine remains usable — a subsequent clean run on the same engine
// matches a fresh engine bit for bit.
func TestRunErrorPathUnwindsCleanly(t *testing.T) {
	e := testEngine(t, true)
	_, err := e.Run([]StreamSpec{
		{Query: &failingQuery{ok: 2}, Cores: []int{0, 1}},
		{Query: &countQuery{name: "B", rowsPerExec: 400, cuid: core.Sensitive}, Cores: []int{2, 3}},
	}, RunOptions{Duration: 0.01, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "synthetic planning failure") {
		t.Fatalf("mid-run failure not surfaced: %v", err)
	}

	reused, err := e.Run(chaosSpecs(), RunOptions{Duration: 1e-4, Seed: 42})
	if err != nil {
		t.Fatalf("engine unusable after failed run: %v", err)
	}
	fresh, err := testEngine(t, true).Run(chaosSpecs(), RunOptions{Duration: 1e-4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused, fresh) {
		t.Errorf("run after failure diverges from fresh engine:\nreused: %+v\n fresh: %+v", reused, fresh)
	}
}

// TestSharedPoolErrorPathSurfacesOnce asserts RunSharedPool reports a
// mid-run failure as exactly one error mentioning the cause once —
// not once per worker or once per remaining stream.
func TestSharedPoolErrorPathSurfacesOnce(t *testing.T) {
	e := testEngine(t, true)
	_, err := e.RunSharedPool([]Query{
		&failingQuery{ok: 1},
		&countQuery{name: "B", rowsPerExec: 400, cuid: core.Sensitive},
	}, RunOptions{Duration: 0.01, Seed: 1})
	if err == nil {
		t.Fatal("mid-run shared-pool failure not surfaced")
	}
	if n := strings.Count(err.Error(), "synthetic planning failure"); n != 1 {
		t.Errorf("error mentions the cause %d times, want exactly once: %v", n, err)
	}
}
