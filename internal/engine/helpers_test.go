package engine

import (
	"math/rand"
	"sync/atomic"

	"cachepart/internal/core"
	"cachepart/internal/exec"
)

// countKernel is a trivial kernel: it burns a small compute cost per
// row and counts down.
type countKernel struct {
	remaining int
	onRow     func()
}

func (k *countKernel) Step(ctx *exec.Ctx, budget int) (int, bool) {
	n := budget
	if n > k.remaining {
		n = k.remaining
	}
	for i := 0; i < n; i++ {
		ctx.Compute(10, 4)
		if k.onRow != nil {
			k.onRow()
		}
	}
	k.remaining -= n
	return n, k.remaining == 0
}

// countQuery plans a single-phase execution of rowsPerExec rows split
// across the cores.
type countQuery struct {
	name        string
	rowsPerExec int
	cuid        core.CUID
}

func (q *countQuery) Name() string { return q.name }

func (q *countQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	parts := PartitionRows(q.rowsPerExec, cores)
	ks := make([]exec.Kernel, 0, len(parts))
	for _, p := range parts {
		ks = append(ks, &countKernel{remaining: p[1] - p[0]})
	}
	return []Phase{{
		Name:      "count",
		CUID:      q.cuid,
		Kernels:   ks,
		CountRows: true,
	}}, nil
}

// twoPhaseQuery checks barrier semantics: phase B must never start
// while phase A rows remain.
type twoPhaseQuery struct {
	rowsA, rowsB int

	pendingA   atomic.Int64
	outOfOrder bool
}

func (q *twoPhaseQuery) Name() string { return "two-phase" }

func (q *twoPhaseQuery) Plan(cores int, rng *rand.Rand) ([]Phase, error) {
	q.pendingA.Store(int64(q.rowsA))
	partsA := PartitionRows(q.rowsA, cores)
	ksA := make([]exec.Kernel, 0, len(partsA))
	for _, p := range partsA {
		ksA = append(ksA, &countKernel{
			remaining: p[1] - p[0],
			onRow:     func() { q.pendingA.Add(-1) },
		})
	}
	ksB := []exec.Kernel{&countKernel{
		remaining: q.rowsB,
		onRow: func() {
			if q.pendingA.Load() != 0 {
				q.outOfOrder = true
			}
		},
	}}
	return []Phase{
		{Name: "A", CUID: core.Sensitive, Kernels: ksA, CountRows: true},
		{Name: "B", CUID: core.Sensitive, Kernels: ksB},
	}, nil
}
