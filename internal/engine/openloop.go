package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cachepart/internal/cachesim"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// openloop: query-granular execution for open-loop serving workloads.
//
// The closed-loop Run executes a fixed set of streams back-to-back for
// a simulated duration — the paper's co-run setup. A serving tier
// instead sees individual queries arrive over virtual time, each of
// which must be dispatched to a core group, executed once, and stamped
// with its completion tick. RunOpenLoop provides that mode: the caller
// supplies disjoint core groups and a Feed; whenever a group is idle
// the engine asks the feed for the next Submission, executes exactly
// one planned execution of its query on the group's cores, and records
// a Completion. All scheduling happens on the virtual clock in
// min-clock order, so co-running groups contend for the shared LLC and
// DRAM queue exactly as the closed-loop streams do, and results are a
// pure function of the submissions — bit-identical per seed.

// Submission is one unit of open-loop work: a single execution of a
// query, releasable no earlier than its admission tick.
type Submission struct {
	Query Query
	// Rng drives the execution's per-query parameters (the "?" of the
	// scan predicate, the OLTP document id). The feed derives it from
	// seeded streams so replays are bit-identical.
	Rng *rand.Rand
	// Release is the earliest virtual tick the query may start — its
	// arrival (or admission) time. The execution starts at
	// max(Release, group clock).
	Release int64
	// Tag is an opaque caller identifier echoed on the Completion.
	Tag int64
}

// Completion reports one finished submission.
type Completion struct {
	Tag     int64
	Group   int
	Release int64
	// Start is the tick the execution began: max(Release, the group's
	// synchronised clock at dispatch). Start-Release is queue delay
	// spent waiting for a free group after admission.
	Start int64
	// Done is the tick the execution's last phase barrier completed.
	Done int64
	Rows int64
	// MemBytes is the DRAM traffic the execution's cores generated while
	// it ran — demand fills, prefetch fills and dirty writebacks, in
	// bytes. It is the per-completion telemetry the serving tier's
	// overload control classifies LLC polluters from (the completion-
	// granular analogue of the MBM counters internal/adapt reads).
	MemBytes int64
}

// Wait returns the completion's post-admission queueing delay.
func (c Completion) Wait() int64 { return c.Start - c.Release }

// Service returns the completion's execution time on its group.
func (c Completion) Service() int64 { return c.Done - c.Start }

// Latency returns the completion's end-to-end response time from
// admission to completion.
func (c Completion) Latency() int64 { return c.Done - c.Release }

// Feed supplies an open-loop run with work. The engine calls Next with
// a monotone non-decreasing now per group; implementations must be
// deterministic functions of their configuration (seeded streams, never
// the wall clock).
type Feed interface {
	// Next is called whenever a group is idle at virtual tick now.
	// Returning ok dispatches the submission (whose Release must not
	// exceed now). Returning !ok with wake > now parks the group until
	// wake; !ok with wake < 0 retires the group — it is never asked
	// again and the run ends once every group has retired.
	Next(group int, now int64) (sub Submission, ok bool, wake int64)
}

// CompletionObserver is an optional Feed extension: a feed that also
// implements it sees every Completion the moment it is recorded, on
// the coordinator, in completion order. The serving tier's overload
// control uses the callback to drive circuit breakers and polluter
// classification from live completion telemetry. Observe must be
// deterministic — it runs inside the virtual-time loop.
type CompletionObserver interface {
	Observe(c Completion)
}

// OpenLoopOptions tunes an open-loop run. The zero value is usable.
type OpenLoopOptions struct {
	// Quantum and TargetSliceTicks bound a scheduling slice exactly as
	// in RunOptions. Defaults 1024 rows / 1024 ticks.
	Quantum          int
	TargetSliceTicks int64

	// Parallel selects the epoch-parallel simulation of private cache
	// levels (DESIGN.md §11); Workers and EpochTicks as in RunOptions.
	// Dispatch and completion then happen at epoch barriers, so the
	// timing follows the epoch semantics, but results stay bit-identical
	// across worker counts.
	Parallel   bool
	Workers    int
	EpochTicks int64

	// Prewarm lists queries whose declared regions (Prewarmer) are
	// touched once before the clocks zero, so dictionaries and tables
	// start resident as they would be on a long-running server.
	Prewarm []Query
}

func (o *OpenLoopOptions) setDefaults() {
	if o.Quantum <= 0 {
		o.Quantum = 1024
	}
	if o.TargetSliceTicks <= 0 {
		o.TargetSliceTicks = 1024
	}
	if o.EpochTicks <= 0 {
		o.EpochTicks = 1 << 16
	}
}

// GroupResult summarises one core group over an open-loop run.
type GroupResult struct {
	Completed int64
	// BusyTicks sums the group's execution intervals; EndTick is the
	// group's final synchronised clock. BusyTicks/EndTick is the
	// group's utilisation.
	BusyTicks int64
	EndTick   int64
	Stats     cachesim.CoreStats
	Retries   int64
	Degraded  int64
}

// OpenLoopResult is the full report of one open-loop run.
type OpenLoopResult struct {
	// Completions holds every finished submission sorted by (Done,
	// Group), a stable order across serial and parallel modes.
	Completions []Completion
	Groups      []GroupResult
}

// olGroup is the runtime state of one core group.
type olGroup struct {
	id    int
	cores []int
	// st is the in-flight submission's stream state, nil while idle.
	st      *stream
	sub     Submission
	start   int64
	rowsAt  int64
	busy    bool
	retired bool
	// statsAt snapshots the group cores' counters at dispatch, so the
	// completion can report the execution's DRAM traffic delta.
	statsAt cachesim.CoreStats
	// wake is the next tick the feed should be asked for this group.
	wake int64
}

// clock returns the group's synchronised clock: the max of its cores.
func (g *olGroup) clock(m *cachesim.Machine) int64 {
	var t int64
	for _, c := range g.cores {
		if now := m.Now(c); now > t {
			t = now
		}
	}
	return t
}

// stats sums the group cores' counters at the current instant. Called
// only on the coordinator (dispatch and phase barriers), where the
// parallel mode's merged state is settled.
func (g *olGroup) stats(m *cachesim.Machine) cachesim.CoreStats {
	var s cachesim.CoreStats
	for _, c := range g.cores {
		s.Add(m.Stats(c))
	}
	return s
}

// olState carries an open-loop run's shared state.
type olState struct {
	groups []*olGroup
	ctxs   []*exec.Ctx
	ces    *epochState
	done   []Completion
	// obs is the feed's optional completion callback (nil when the feed
	// does not implement CompletionObserver).
	obs CompletionObserver
	// results accumulates per-group counters during the run; the final
	// stats and fault tallies are folded in by openLoopResults.
	results []GroupResult
}

// RunOpenLoop executes submissions from the feed on disjoint core
// groups until every group retires. The machine is reset first; the
// attached controller (if any) sees one stream per group.
func (e *Engine) RunOpenLoop(groups [][]int, feed Feed, opts OpenLoopOptions) (*OpenLoopResult, error) {
	opts.setDefaults()
	st, err := e.prepareOpenLoop(groups, opts)
	if err != nil {
		return nil, err
	}
	if feed == nil {
		return nil, fmt.Errorf("engine: nil feed")
	}
	if obs, ok := feed.(CompletionObserver); ok {
		st.obs = obs
	}
	if opts.Parallel {
		err = e.openLoopParallel(st, feed, opts)
	} else {
		err = e.openLoopSerial(st, feed, opts)
	}
	if err != nil {
		return nil, err
	}
	return e.openLoopResults(st), nil
}

// prepareOpenLoop validates the groups, resets the machine, prewarms
// declared working sets and begins the controller's run.
func (e *Engine) prepareOpenLoop(groups [][]int, opts OpenLoopOptions) (*olState, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("engine: no core groups")
	}
	seen := make(map[int]bool)
	for gi, cores := range groups {
		if len(cores) == 0 {
			return nil, fmt.Errorf("engine: group %d has no cores", gi)
		}
		for _, c := range cores {
			if c < 0 || c >= e.m.Cores() {
				return nil, fmt.Errorf("engine: core %d out of range", c)
			}
			if seen[c] {
				return nil, fmt.Errorf("engine: core %d assigned twice", c)
			}
			seen[c] = true
		}
	}

	e.m.Reset()
	e.resetFaultState(len(groups))

	infos := make([]StreamInfo, len(groups))
	for i, cores := range groups {
		infos[i] = StreamInfo{Name: fmt.Sprintf("serve-g%d", i), Cores: len(cores)}
	}
	ces, err := e.controllerBegin(infos)
	if err != nil {
		return nil, err
	}

	// Prewarm declared working sets across all cores, then rewind the
	// clocks so serving starts from the steady state of a long-running
	// server rather than a cold cache.
	allCores := make([]int, 0, len(seen))
	for _, cores := range groups {
		allCores = append(allCores, cores...)
	}
	sort.Ints(allCores)
	for _, q := range opts.Prewarm {
		pw, ok := q.(Prewarmer)
		if !ok {
			continue
		}
		for _, region := range pw.PrewarmRegions(len(allCores)) {
			for i, off := 0, uint64(0); off < region.Size; i, off = i+1, off+memory.LineSize {
				e.m.Access(allCores[i%len(allCores)], region.Addr(off), false)
			}
		}
	}
	e.m.ZeroClocksAndStats()

	ctxs := make([]*exec.Ctx, e.m.Cores())
	for c := range ctxs {
		ctxs[c] = e.Ctx(c)
	}
	gs := make([]*olGroup, len(groups))
	for i, cores := range groups {
		gs[i] = &olGroup{id: i, cores: cores}
	}
	return &olState{groups: gs, ctxs: ctxs, ces: ces, results: make([]GroupResult, len(groups))}, nil
}

// dispatch asks the feed for the group's next submission at tick now
// and arms it. The group transitions to busy, parked, or retired.
func (e *Engine) dispatch(ol *olState, g *olGroup, feed Feed, now int64) error {
	sub, ok, wake := feed.Next(g.id, now)
	if !ok {
		if wake < 0 {
			g.retired = true
			return nil
		}
		if wake <= now {
			return fmt.Errorf("engine: feed parked group %d at %d without advancing past %d", g.id, wake, now)
		}
		g.wake = wake
		return nil
	}
	if sub.Query == nil {
		return fmt.Errorf("engine: feed returned nil query for group %d", g.id)
	}
	if sub.Release > now {
		return fmt.Errorf("engine: submission released at %d dispatched at %d", sub.Release, now)
	}
	start := sub.Release
	if c := g.clock(e.m); c > start {
		start = c
	}
	for _, c := range g.cores {
		e.m.AdvanceTo(c, start)
	}
	st := &stream{
		spec: StreamSpec{Query: sub.Query, Cores: g.cores},
		idx:  g.id,
		rng:  sub.Rng,
	}
	if err := e.planPhases(st); err != nil {
		return err
	}
	g.st, g.sub, g.start, g.busy = st, sub, start, true
	g.rowsAt = 0
	g.statsAt = g.stats(e.m)
	return nil
}

// completeOrAdvance synchronises the group's cores at the phase
// barrier, then either arms the next phase or records the completion
// and frees the group.
func (e *Engine) completeOrAdvance(ol *olState, g *olGroup) error {
	st := g.st
	t := g.clock(e.m)
	for _, c := range g.cores {
		e.m.AdvanceTo(c, t)
	}
	st.phaseIdx++
	if st.phaseIdx < len(st.phases) {
		return e.armPhase(st)
	}
	d := g.stats(e.m).Sub(g.statsAt)
	c := Completion{
		Tag:      g.sub.Tag,
		Group:    g.id,
		Release:  g.sub.Release,
		Start:    g.start,
		Done:     t,
		Rows:     st.rows,
		MemBytes: int64(d.LLCMisses+d.PrefetchIssued+d.Writebacks) * memory.LineSize,
	}
	ol.done = append(ol.done, c)
	if ol.obs != nil {
		ol.obs.Observe(c)
	}
	ol.results[g.id].BusyTicks += t - g.start
	ol.results[g.id].Completed++
	g.st, g.busy = nil, false
	g.wake = t
	return nil
}

// openLoopSerial is the reference loop: interleave the busy groups'
// cores in min-clock order (as runSerial does for streams), waking
// idle groups whenever their wake tick is the earliest event.
func (e *Engine) openLoopSerial(ol *olState, feed Feed, opts OpenLoopOptions) error {
	for {
		// Earliest idle wake (ties: lowest group id wins via scan order).
		var wakeG *olGroup
		for _, g := range ol.groups {
			if g.busy || g.retired {
				continue
			}
			if wakeG == nil || g.wake < wakeG.wake {
				wakeG = g
			}
		}
		// Least-advanced runnable core among busy groups.
		minG, minSlot, minNow := ol.minRunnable(e.m)
		if wakeG == nil && minG == nil {
			return nil // every group retired and drained
		}
		if wakeG != nil && (minG == nil || wakeG.wake <= minNow) {
			if err := e.dispatch(ol, wakeG, feed, wakeG.wake); err != nil {
				return err
			}
			continue
		}
		if err := e.controllerTick(ol.ces, minNow, minG.cores[minSlot]); err != nil {
			return err
		}
		st := minG.st
		slot := &st.slots[minSlot]
		core := minG.cores[minSlot]
		budget := slot.budgetFor(opts.TargetSliceTicks, opts.Quantum)
		before := e.m.Now(core)
		rows, done := slot.kernel.Step(ol.ctxs[core], budget)
		slot.observe(rows, e.m.Now(core)-before)
		if st.phases[st.phaseIdx].CountRows {
			st.rows += int64(rows)
		}
		if done {
			slot.done = true
			if st.phaseDone() {
				if err := e.completeOrAdvance(ol, minG); err != nil {
					return err
				}
			}
		} else if rows == 0 {
			return fmt.Errorf("engine: kernel %q/%s made no progress",
				st.spec.Query.Name(), st.phases[st.phaseIdx].Name)
		}
	}
}

// minRunnable finds the busy group and slot whose core clock is least
// advanced, mirroring Engine.minRunnable over open-loop groups.
func (ol *olState) minRunnable(m *cachesim.Machine) (*olGroup, int, int64) {
	var best *olGroup
	bestSlot := -1
	var bestNow int64
	for _, g := range ol.groups {
		if !g.busy {
			continue
		}
		for i := range g.st.slots {
			s := &g.st.slots[i]
			if s.kernel == nil || s.done {
				continue
			}
			if now := m.Now(g.cores[i]); best == nil || now < bestNow {
				best, bestSlot, bestNow = g, i, now
			}
		}
	}
	return best, bestSlot, bestNow
}

// openLoopParallel is the epoch-parallel loop: between barriers every
// busy slot advances on its core's parallel front-end up to a shared
// horizon; dispatch, completion, controller epochs and phase barriers
// all run on the coordinator. The horizon never crosses a pending
// wake, so feed calls stay ordered by virtual time and results are
// independent of the worker count.
func (e *Engine) openLoopParallel(ol *olState, feed Feed, opts OpenLoopOptions) error {
	es := e.m.NewEpochSim()
	pctxs := make([]*exec.Ctx, e.m.Cores())
	for c := range pctxs {
		pctxs[c] = e.Ctx(c)
		pctxs[c].Par = es.Core(c)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Each worker claims disjoint tasks via the atomic cursor, so a
	// task is written by at most one goroutine per epoch.
	//
	//conc:shared one slot per task; the claiming worker alone writes it and the coordinator reads after wg.Wait
	type task struct {
		g      *olGroup
		slot   *kernelSlot
		core   int
		serial bool
		err    error
	}
	var tasks []task

	for {
		var wakeG *olGroup
		for _, g := range ol.groups {
			if g.busy || g.retired {
				continue
			}
			if wakeG == nil || g.wake < wakeG.wake {
				wakeG = g
			}
		}
		minG, minSlot, minNow := ol.minRunnable(e.m)
		if wakeG == nil && minG == nil {
			return nil
		}
		if wakeG != nil && (minG == nil || wakeG.wake <= minNow) {
			if err := e.dispatch(ol, wakeG, feed, wakeG.wake); err != nil {
				return err
			}
			continue
		}
		if err := e.controllerTick(ol.ces, minNow, minG.cores[minSlot]); err != nil {
			return err
		}

		// The barrier lands at the earliest pending wake if one falls
		// inside the epoch, so a queued arrival is dispatched before any
		// busy core simulates past it.
		horizon := minNow + opts.EpochTicks
		if wakeG != nil && wakeG.wake < horizon {
			horizon = wakeG.wake
		}
		tasks = tasks[:0]
		for _, g := range ol.groups {
			if !g.busy {
				continue
			}
			if g.st.phases[g.st.phaseIdx].Serial {
				tasks = append(tasks, task{g: g, serial: true})
				continue
			}
			for i := range g.st.slots {
				s := &g.st.slots[i]
				if s.kernel == nil || s.done {
					continue
				}
				core := g.cores[i]
				if e.m.Now(core) >= horizon {
					continue
				}
				tasks = append(tasks, task{g: g, slot: s, core: core})
			}
		}
		runOpts := RunOptions{Quantum: opts.Quantum, TargetSliceTicks: opts.TargetSliceTicks}
		runTask := func(t *task) {
			if t.serial {
				t.err = e.stepStreamInterleaved(t.g.st, pctxs, horizon, runOpts)
			} else {
				t.err = e.stepSlot(t.g.st, t.slot, pctxs[t.core], t.core, horizon, runOpts)
			}
		}

		es.BeginEpoch()
		if n := min(workers, len(tasks)); n <= 1 {
			for i := range tasks {
				runTask(&tasks[i])
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(tasks) {
							return
						}
						runTask(&tasks[i])
					}
				}()
			}
			wg.Wait()
		}
		es.Merge()
		for i := range tasks {
			if tasks[i].err != nil {
				return tasks[i].err
			}
		}

		// Barrier bookkeeping: fold worker-local row counts, then
		// advance or complete groups whose phase finished, in group
		// order for determinism.
		for _, g := range ol.groups {
			if !g.busy {
				continue
			}
			countRows := g.st.phases[g.st.phaseIdx].CountRows
			for i := range g.st.slots {
				if countRows {
					g.st.rows += g.st.slots[i].rowsAcc
				}
				g.st.slots[i].rowsAcc = 0
			}
			if g.st.phaseDone() {
				if err := e.completeOrAdvance(ol, g); err != nil {
					return err
				}
			}
		}
	}
}

// openLoopResults assembles the final report.
func (e *Engine) openLoopResults(ol *olState) *OpenLoopResult {
	sort.Slice(ol.done, func(i, j int) bool {
		a, b := ol.done[i], ol.done[j]
		if a.Done != b.Done {
			return a.Done < b.Done
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Tag < b.Tag
	})
	out := &OpenLoopResult{Completions: ol.done, Groups: ol.results}
	for i, g := range ol.groups {
		gr := &out.Groups[i]
		gr.EndTick = g.clock(e.m)
		for _, c := range g.cores {
			gr.Stats.Add(e.m.Stats(c))
		}
		gr.Retries = e.streamFaults[i].retries
		gr.Degraded = e.streamFaults[i].degraded
	}
	return out
}
