package engine

import (
	"reflect"
	"testing"

	"cachepart/internal/core"
)

// TestRunBitIdentical pins the reproducibility contract the nondet
// lint check guards statically: two runs with the same seed must
// produce bit-for-bit identical results — counters, throughput,
// cache statistics, and every recorded execution duration — even with
// concurrent streams and the partitioning policy enabled. (The older
// TestRunDeterministic covers only the row counters of one stream.)
func TestRunBitIdentical(t *testing.T) {
	run := func(seed int64) []StreamResult {
		t.Helper()
		e := testEngine(t, true)
		specs := []StreamSpec{
			{Query: &countQuery{name: "A", rowsPerExec: 600, cuid: core.Polluting}, Cores: []int{0, 1, 2, 3}},
			{Query: &countQuery{name: "B", rowsPerExec: 400, cuid: core.Sensitive}, Cores: []int{4, 5, 6, 7}},
		}
		res, err := e.Run(specs, RunOptions{Duration: 1e-4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run(42)
	second := run(42)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("same-seed runs diverged:\n first: %+v\nsecond: %+v", first, second)
	}

	// The seed must actually steer the run: a different seed on the
	// same workload should not be an accidental no-op. (Identical
	// aggregates are conceivable but would defeat the point of
	// seeding; the count query derives its row interleaving from the
	// stream RNG.)
	if other := run(43); reflect.DeepEqual(first, other) {
		t.Logf("seed 42 and 43 produced identical results; seed may be unused by this workload")
	}
}
