package engine

import (
	"math/rand"
	"reflect"
	"testing"
)

// sliceFeed replays a fixed submission list in order, parking until
// each release tick — the minimal deterministic Feed.
type sliceFeed struct {
	subs []Submission
	next int
}

func (f *sliceFeed) Next(group int, now int64) (Submission, bool, int64) {
	if f.next >= len(f.subs) {
		return Submission{}, false, -1
	}
	s := f.subs[f.next]
	if s.Release > now {
		return Submission{}, false, s.Release
	}
	f.next++
	return s, true, 0
}

func testSubs(n int, gap int64, rows int) []Submission {
	subs := make([]Submission, n)
	for i := range subs {
		subs[i] = Submission{
			Query:   &countQuery{name: "ol-count", rowsPerExec: rows},
			Rng:     rand.New(rand.NewSource(int64(i + 1))),
			Release: int64(i) * gap,
			Tag:     int64(i),
		}
	}
	return subs
}

// TestStreamQueryStamps pins the satellite contract: every execution
// recorded in ExecTicks carries a (Start, Done) stamp on the run's
// virtual clock, stamp durations equal the recorded ticks entry for
// entry, and back-to-back executions tile the stream's timeline.
func TestStreamQueryStamps(t *testing.T) {
	e := testEngine(t, true)
	res, err := e.Run([]StreamSpec{
		{Query: &countQuery{name: "a", rowsPerExec: 2000}, Cores: []int{0, 1}},
		{Query: &countQuery{name: "b", rowsPerExec: 500}, Cores: []int{2}},
	}, RunOptions{Duration: 0.0005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if len(r.Queries) != len(r.ExecTicks) {
			t.Fatalf("%s: %d stamps for %d exec ticks", r.Name, len(r.Queries), len(r.ExecTicks))
		}
		if len(r.Queries) == 0 {
			t.Fatalf("%s: no executions completed", r.Name)
		}
		var total int64
		for i, q := range r.Queries {
			if q.Ticks() != r.ExecTicks[i] {
				t.Errorf("%s: stamp %d spans %d ticks, ExecTicks %d", r.Name, i, q.Ticks(), r.ExecTicks[i])
			}
			if q.Done <= q.Start {
				t.Errorf("%s: stamp %d not positive: %+v", r.Name, i, q)
			}
			// Closed-loop streams run back to back: each execution
			// starts at the previous one's completion barrier.
			if i > 0 && q.Start != r.Queries[i-1].Done {
				t.Errorf("%s: stamp %d starts at %d, previous done %d", r.Name, i, q.Start, r.Queries[i-1].Done)
			}
			total += q.Ticks()
		}
		if span := r.Queries[len(r.Queries)-1].Done - r.Queries[0].Start; span != total {
			t.Errorf("%s: stream total %d ticks != sum of query stamps %d", r.Name, span, total)
		}
	}
}

func TestRunOpenLoopBasic(t *testing.T) {
	e := testEngine(t, true)
	subs := testSubs(24, 2000, 800)
	res, err := e.RunOpenLoop([][]int{{0, 1}, {2, 3}}, &sliceFeed{subs: subs}, OpenLoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != len(subs) {
		t.Fatalf("completed %d of %d submissions", len(res.Completions), len(subs))
	}
	seen := make(map[int64]bool)
	for i, c := range res.Completions {
		if seen[c.Tag] {
			t.Errorf("tag %d completed twice", c.Tag)
		}
		seen[c.Tag] = true
		if c.Start < c.Release || c.Done <= c.Start {
			t.Errorf("completion %d out of order: %+v", i, c)
		}
		if i > 0 && c.Done < res.Completions[i-1].Done {
			t.Errorf("completions not sorted by Done at %d", i)
		}
		if c.Rows != 800 {
			t.Errorf("completion %d counted %d rows, want 800", i, c.Rows)
		}
	}
	var done int64
	for gi, g := range res.Groups {
		done += g.Completed
		if g.BusyTicks <= 0 || g.BusyTicks > g.EndTick {
			t.Errorf("group %d busy %d of %d ticks", gi, g.BusyTicks, g.EndTick)
		}
	}
	if done != int64(len(subs)) {
		t.Errorf("groups report %d completions, want %d", done, len(subs))
	}
}

func TestRunOpenLoopDeterminism(t *testing.T) {
	run := func() *OpenLoopResult {
		e := testEngine(t, true)
		res, err := e.RunOpenLoop([][]int{{0, 1}, {2, 3}}, &sliceFeed{subs: testSubs(16, 3000, 600)}, OpenLoopOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("open-loop runs with identical feeds differ")
	}
}

// TestRunOpenLoopWorkerInvariance pins that the epoch-parallel open
// loop is independent of the worker count, and that dispatch order
// (hence every completion stamp) matches across Workers=1 and 4.
func TestRunOpenLoopWorkerInvariance(t *testing.T) {
	run := func(workers int) *OpenLoopResult {
		e := testEngine(t, true)
		res, err := e.RunOpenLoop([][]int{{0, 1}, {2, 3}, {4, 5}}, &sliceFeed{subs: testSubs(18, 2500, 700)},
			OpenLoopOptions{Parallel: true, Workers: workers, EpochTicks: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(4); !reflect.DeepEqual(a, b) {
		t.Error("open-loop results differ between Workers=1 and Workers=4")
	}
}

func TestRunOpenLoopValidates(t *testing.T) {
	e := testEngine(t, true)
	if _, err := e.RunOpenLoop(nil, &sliceFeed{}, OpenLoopOptions{}); err == nil {
		t.Error("empty groups accepted")
	}
	if _, err := e.RunOpenLoop([][]int{{0}, {0}}, &sliceFeed{}, OpenLoopOptions{}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := e.RunOpenLoop([][]int{{0}}, nil, OpenLoopOptions{}); err == nil {
		t.Error("nil feed accepted")
	}
}
