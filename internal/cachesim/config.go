// Package cachesim is an execution-driven simulator of the memory
// hierarchy of a multi-core processor: per-core L1d and L2 caches, a
// shared inclusive last-level cache partitionable with CAT way masks,
// a hardware stride prefetcher, and a DRAM model with fixed access
// latency and a shared line-transfer bandwidth budget.
//
// Query operators execute their real computation on ordinary Go data
// and report each memory reference to the simulator via Access; the
// simulator advances a per-core virtual clock. Throughput in all
// experiments is work divided by simulated time, which makes the
// cache-capacity and bandwidth-contention effects studied in the paper
// observable and deterministic, independent of the Go runtime.
package cachesim

import (
	"fmt"

	"cachepart/internal/memory"
)

// TicksPerCycle is the sub-cycle resolution of the simulated clocks.
// DRAM line service time at 64 GB/s is ~2.2 cycles, so clocks are kept
// in 1/16-cycle ticks to represent it without drift.
const TicksPerCycle = 16

// Geometry describes one cache: total size and associativity. The line
// size is fixed at memory.LineSize.
type Geometry struct {
	Size uint64 // bytes
	Ways int
}

// Sets reports the number of sets implied by the geometry.
func (g Geometry) Sets() int {
	if g.Ways <= 0 {
		return 0
	}
	return int(g.Size / uint64(g.Ways) / memory.LineSize)
}

func (g Geometry) validate(name string) error {
	if g.Ways <= 0 {
		return fmt.Errorf("cachesim: %s has %d ways", name, g.Ways)
	}
	if g.Sets() <= 0 {
		return fmt.Errorf("cachesim: %s size %d too small for %d ways", name, g.Size, g.Ways)
	}
	if g.Size%uint64(g.Ways*memory.LineSize) != 0 {
		return fmt.Errorf("cachesim: %s size %d not divisible into %d ways of %d-byte lines",
			name, g.Size, g.Ways, memory.LineSize)
	}
	return nil
}

// Config describes the simulated machine.
type Config struct {
	Cores  int     // logical cores driving the hierarchy
	FreqHz float64 // core clock for converting cycles to seconds

	L1  Geometry // private, per core
	L2  Geometry // private, per core
	LLC Geometry // shared, way-partitionable

	L1Latency   int64 // cycles
	L2Latency   int64 // cycles
	LLCLatency  int64 // cycles
	DRAMLatency int64 // cycles, fixed access latency

	// DRAMBandwidth is the aggregate line-transfer bandwidth in
	// bytes/second shared by all cores; demand misses, prefetches and
	// dirty writebacks all consume it.
	DRAMBandwidth float64

	// PrefetchDepth is how many lines ahead the per-core stream
	// prefetcher runs once armed. Zero disables prefetching.
	PrefetchDepth int

	// MissParallelism models memory-level parallelism for demand
	// misses: an out-of-order core overlaps several independent
	// misses, so the stall charged per miss is DRAMLatency divided by
	// this factor. The line itself still arrives after the full
	// latency and every transfer still consumes bandwidth. 1 disables
	// overlap.
	MissParallelism int

	// PrefetchDropQueue flow-controls the prefetcher: when the DRAM
	// queue is backed up by more than this many line-transfer slots, a
	// prefetch is dropped instead of issued, as real prefetchers are
	// dropped under memory pressure. Demand misses are never dropped —
	// they self-regulate because the core waits. Zero uses the
	// default of Cores × PrefetchDepth outstanding lines, roughly the
	// machine's fill-buffer capacity.
	PrefetchDropQueue int

	// InclusiveLLC selects the paper machine's inclusive LLC: evicting
	// an LLC line back-invalidates it from all private caches.
	InclusiveLLC bool

	// NumCLOS is the number of CAT classes of service.
	NumCLOS int
}

// DefaultConfig returns a machine modelled on the paper's Intel Xeon
// E5-2699 v4: 22 physical cores, 32 KiB/8-way L1d, 256 KiB/8-way L2,
// 55 MiB/20-way inclusive LLC, 80 ns DRAM latency, 64 GB/s read
// bandwidth, and 16 classes of service. The paper sets the concurrency
// limit of a statement to the number of physical cores, so the
// simulated machine exposes the 22 physical cores.
func DefaultConfig() Config {
	return Config{
		Cores:           22,
		FreqHz:          2.2e9,
		L1:              Geometry{Size: 32 << 10, Ways: 8},
		L2:              Geometry{Size: 256 << 10, Ways: 8},
		LLC:             Geometry{Size: 55 << 20, Ways: 20},
		L1Latency:       4,
		L2Latency:       12,
		LLCLatency:      42,
		DRAMLatency:     176, // 80 ns at 2.2 GHz
		DRAMBandwidth:   64e9,
		PrefetchDepth:   16,
		MissParallelism: 4,
		InclusiveLLC:    true,
		NumCLOS:         16,
	}
}

// Scaled returns a copy of the configuration with all cache capacities
// divided by factor. Set-count ratios, way counts and latencies are
// preserved, so normalized-throughput curves keep their shape while
// simulations run proportionally faster. Used by the benchmark harness.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	s := c
	s.L1.Size = align(c.L1.Size/uint64(factor), uint64(c.L1.Ways)*memory.LineSize)
	s.L2.Size = align(c.L2.Size/uint64(factor), uint64(c.L2.Ways)*memory.LineSize)
	s.LLC.Size = align(c.LLC.Size/uint64(factor), uint64(c.LLC.Ways)*memory.LineSize)
	return s
}

func align(v, to uint64) uint64 {
	if v < to {
		return to
	}
	return v - v%to
}

func (c Config) validate() error {
	if c.Cores <= 0 || c.Cores > 32 {
		return fmt.Errorf("cachesim: core count %d out of range [1,32]", c.Cores)
	}
	if c.FreqHz <= 0 {
		return fmt.Errorf("cachesim: frequency %v must be positive", c.FreqHz)
	}
	if err := c.L1.validate("L1"); err != nil {
		return err
	}
	if err := c.L2.validate("L2"); err != nil {
		return err
	}
	if err := c.LLC.validate("LLC"); err != nil {
		return err
	}
	if c.LLC.Ways > 32 {
		return fmt.Errorf("cachesim: LLC way count %d exceeds CAT mask width", c.LLC.Ways)
	}
	if c.DRAMBandwidth <= 0 {
		return fmt.Errorf("cachesim: DRAM bandwidth %v must be positive", c.DRAMBandwidth)
	}
	if c.NumCLOS <= 0 {
		return fmt.Errorf("cachesim: CLOS count %d must be positive", c.NumCLOS)
	}
	if c.NumCLOS > MaxCLOS {
		return fmt.Errorf("cachesim: CLOS count %d exceeds the %d the packed line tag can attribute", c.NumCLOS, MaxCLOS)
	}
	if c.MissParallelism < 0 {
		return fmt.Errorf("cachesim: negative miss parallelism")
	}
	for _, l := range []int64{c.L1Latency, c.L2Latency, c.LLCLatency, c.DRAMLatency} {
		if l < 0 {
			return fmt.Errorf("cachesim: negative latency")
		}
	}
	return nil
}
