package cachesim

import (
	"math/rand"
	"sync"
	"testing"

	"cachepart/internal/memory"
)

func parsimConfig() Config {
	cfg := DefaultConfig().Scaled(64)
	cfg.Cores = 4
	return cfg
}

// batchPattern builds a mixed sequential/random access pattern with
// per-element compute costs, the shape scan-style kernels submit.
func batchPattern(rng *rand.Rand, n int) []BatchOp {
	base := memory.Addr(memory.PageSize)
	ops := make([]BatchOp, n)
	for i := range ops {
		var a memory.Addr
		if i%4 != 3 {
			a = base + memory.Addr(i)*memory.LineSize
		} else {
			a = base + memory.Addr(rng.Intn(1<<14))*memory.LineSize
		}
		ops[i] = BatchOp{
			Addr:   a,
			Write:  rng.Intn(8) == 0,
			Cycles: int64(rng.Intn(3)),
			Instrs: uint64(rng.Intn(4)),
		}
	}
	return ops
}

// TestAccessBatchBitIdentical: AccessBatch must be exactly equivalent
// to the unbatched Access/Compute loop.
func TestAccessBatchBitIdentical(t *testing.T) {
	cfg := parsimConfig()
	ma, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		ops := batchPattern(rand.New(rand.NewSource(seed)), 4096)
		for core := 0; core < cfg.Cores; core++ {
			for i := range ops {
				op := &ops[i]
				ma.Access(core, op.Addr, op.Write)
				if op.Cycles != 0 || op.Instrs != 0 {
					ma.Compute(core, op.Cycles, op.Instrs)
				}
			}
			mb.AccessBatch(core, ops)
		}
		for core := 0; core < cfg.Cores; core++ {
			if ma.Stats(core) != mb.Stats(core) {
				t.Fatalf("seed %d core %d stats diverge:\n loop  %+v\n batch %+v",
					seed, core, ma.Stats(core), mb.Stats(core))
			}
			if ma.Now(core) != mb.Now(core) {
				t.Fatalf("seed %d core %d clocks diverge: %d vs %d",
					seed, core, ma.Now(core), mb.Now(core))
			}
		}
		if ma.dramFree != mb.dramFree {
			t.Fatalf("seed %d DRAM queues diverge: %d vs %d", seed, ma.dramFree, mb.dramFree)
		}
	}
}

// driveEpochs pushes the per-core patterns through an EpochSim in
// epochs of the given number of accesses, visiting cores in the order
// the perm function yields — a stand-in for arbitrary host scheduling.
func driveEpochs(m *Machine, patterns [][]BatchOp, epoch int, perm func(n int) []int) {
	es := m.NewEpochSim()
	pos := make([]int, len(patterns))
	for {
		work := false
		es.BeginEpoch()
		for _, core := range perm(len(patterns)) {
			cs := es.Core(core)
			end := pos[core] + epoch
			if end > len(patterns[core]) {
				end = len(patterns[core])
			}
			for _, op := range patterns[core][pos[core]:end] {
				cs.Access(op.Addr, op.Write)
			}
			if end > pos[core] {
				work = true
			}
			pos[core] = end
		}
		es.Merge()
		if !work {
			return
		}
	}
}

// TestEpochSimOrderInvariant: the order workers execute within an
// epoch must not influence any result — the property that makes the
// parallel mode independent of host scheduling.
func TestEpochSimOrderInvariant(t *testing.T) {
	cfg := parsimConfig()
	patterns := make([][]BatchOp, cfg.Cores)
	for c := range patterns {
		rng := rand.New(rand.NewSource(int64(c + 1)))
		patterns[c] = batchPattern(rng, 6000)
		// Give each core its own hot region plus overlap with core 0's,
		// so fills, touches and back-invalidations cross cores.
		off := memory.Addr(c%2) * (8 << 20)
		for i := range patterns[c] {
			patterns[c][i].Addr += off
		}
	}
	forward, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	backward, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveEpochs(forward, patterns, 512, func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	})
	driveEpochs(backward, patterns, 512, func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = n - 1 - i
		}
		return out
	})
	for core := 0; core < cfg.Cores; core++ {
		if forward.Stats(core) != backward.Stats(core) {
			t.Fatalf("core %d stats depend on worker order:\n fwd %+v\n bwd %+v",
				core, forward.Stats(core), backward.Stats(core))
		}
		if forward.Now(core) != backward.Now(core) {
			t.Fatalf("core %d clock depends on worker order", core)
		}
	}
	if forward.dramFree != backward.dramFree {
		t.Fatalf("DRAM queue depends on worker order: %d vs %d", forward.dramFree, backward.dramFree)
	}
	for clos := 0; clos < cfg.NumCLOS; clos++ {
		if forward.LLCOccupancyOfCLOS(clos) != backward.LLCOccupancyOfCLOS(clos) {
			t.Fatalf("CLOS %d occupancy depends on worker order", clos)
		}
		if forward.MemTrafficOfCLOS(clos) != backward.MemTrafficOfCLOS(clos) {
			t.Fatalf("CLOS %d traffic depends on worker order", clos)
		}
	}
}

// TestEpochSimWorkersRace drives the CoreSims from real goroutines so
// the race detector sees the actual sharing pattern, and checks the
// result matches the single-goroutine run bit for bit.
func TestEpochSimWorkersRace(t *testing.T) {
	cfg := parsimConfig()
	patterns := make([][]BatchOp, cfg.Cores)
	for c := range patterns {
		patterns[c] = batchPattern(rand.New(rand.NewSource(int64(c+17))), 6000)
	}

	run := func(m *Machine, parallel bool) {
		es := m.NewEpochSim()
		pos := make([]int, len(patterns))
		for {
			work := false
			for _, p := range pos {
				if p < len(patterns[0]) {
					work = true
				}
			}
			if !work {
				return
			}
			es.BeginEpoch()
			var wg sync.WaitGroup
			for core := range patterns {
				step := func(core int) {
					cs := es.Core(core)
					end := pos[core] + 512
					if end > len(patterns[core]) {
						end = len(patterns[core])
					}
					cs.AccessBatch(patterns[core][pos[core]:end])
					pos[core] = end
				}
				if parallel {
					wg.Add(1)
					go func(core int) {
						defer wg.Done()
						step(core)
					}(core)
				} else {
					step(core)
				}
			}
			wg.Wait()
			es.Merge()
		}
	}

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(seq, false)
	run(par, true)
	for core := 0; core < cfg.Cores; core++ {
		if seq.Stats(core) != par.Stats(core) {
			t.Fatalf("core %d: goroutine run diverges from sequential:\n seq %+v\n par %+v",
				core, seq.Stats(core), par.Stats(core))
		}
		if seq.Now(core) != par.Now(core) {
			t.Fatalf("core %d clock diverges", core)
		}
	}
	if seq.dramFree != par.dramFree {
		t.Fatalf("DRAM queue diverges: %d vs %d", seq.dramFree, par.dramFree)
	}
}
