package cachesim

import (
	"bufio"
	"fmt"
	"io"

	"cachepart/internal/memory"
)

// TraceEvent is one observed memory access, for debugging operators'
// access patterns and validating cache behaviour offline.
type TraceEvent struct {
	Tick  int64
	Core  int
	Addr  memory.Addr
	Write bool
	Level Level
}

// Tracer receives every access the machine simulates. Tracing is a
// debugging facility: it runs inline and can slow simulation
// considerably.
type Tracer interface {
	Trace(ev TraceEvent)
}

// SetTracer installs (or removes, with nil) the machine's tracer.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// traceAccess reports one access to the installed tracer.
func (m *Machine) traceAccess(core int, addr memory.Addr, write bool, level Level) {
	if m.tracer == nil {
		return
	}
	//lint:allow hotdispatch tracing is an opt-in debug facility behind the nil check; devirtualizing would couple Machine to CSVTracer
	m.tracer.Trace(TraceEvent{
		Tick:  m.now[core],
		Core:  core,
		Addr:  addr,
		Write: write,
		Level: level,
	})
}

// CSVTracer writes one line per access in
// `tick,core,addr,rw,level` form.
type CSVTracer struct {
	w   *bufio.Writer
	n   int
	max int
}

// NewCSVTracer builds a tracer writing to w; maxEvents caps the
// output (0 = unlimited).
func NewCSVTracer(w io.Writer, maxEvents int) *CSVTracer {
	return &CSVTracer{w: bufio.NewWriter(w), max: maxEvents}
}

// Trace implements Tracer.
func (t *CSVTracer) Trace(ev TraceEvent) {
	if t.max > 0 && t.n >= t.max {
		return
	}
	t.n++
	rw := "r"
	if ev.Write {
		rw = "w"
	}
	fmt.Fprintf(t.w, "%d,%d,%d,%s,%s\n", ev.Tick, ev.Core, ev.Addr, rw, ev.Level)
}

// Events reports how many events were recorded.
func (t *CSVTracer) Events() int { return t.n }

// Flush drains buffered output.
func (t *CSVTracer) Flush() error { return t.w.Flush() }
