package cachesim

// fillTable maps cache-line numbers to fill-ready ticks for one core's
// in-epoch fills. It replaces a map[uint64]int64 on the per-access
// parallel path: open addressing over two flat arrays costs one
// multiplicative hash and a short predictable probe instead of a
// bucket walk, and clearing between epochs is a single memclr that
// reuses the backing arrays, so the steady state allocates nothing.
//
// Keys are stored as line+1 so that zero marks an empty slot; line
// numbers themselves start above zero (address zero is never handed
// out) but the bias makes the table correct regardless.
//
//conc:shared core-private: each CoreSim owns its fill table and no other goroutine reads it before the merge
type fillTable struct {
	keys  []uint64 // line+1; 0 marks an empty slot
	vals  []int64
	n     int
	mask  uint64
	shift uint
}

// fillTableMinSlots is the initial capacity. Power of two; sized so
// that typical per-epoch fill counts never trigger growth.
const fillTableMinSlots = 1024

func newFillTable() *fillTable {
	return &fillTable{
		keys:  make([]uint64, fillTableMinSlots),
		vals:  make([]int64, fillTableMinSlots),
		mask:  fillTableMinSlots - 1,
		shift: 64 - 10, // 2^10 == fillTableMinSlots
	}
}

// slot hashes a biased key to its home slot. Fibonacci multiplicative
// hashing keeps the sequential line numbers of scan traffic from
// clustering; taking the high bits makes the low-entropy low product
// bits irrelevant.
func (t *fillTable) slot(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> t.shift
}

// get returns the ready tick recorded for line, if any.
func (t *fillTable) get(line uint64) (int64, bool) {
	key := line + 1
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// put records (or updates) the ready tick for line.
func (t *fillTable) put(line uint64, ready int64) {
	if t.n >= len(t.keys)/2 {
		t.grow()
	}
	key := line + 1
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			t.vals[i] = ready
			return
		case 0:
			t.keys[i] = key
			t.vals[i] = ready
			t.n++
			return
		}
	}
}

// grow doubles the table and reinserts live entries. The load-factor
// cap in put keeps probes short; growth stops once the table matches
// the largest epoch seen, because reset reuses the arrays.
func (t *fillTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	//lint:allow hotalloc amortized doubling; reset reuses the arrays so growth stops once the table matches the largest epoch
	t.keys = make([]uint64, 2*len(oldKeys))
	//lint:allow hotalloc amortized doubling, paired with the key array above
	t.vals = make([]int64, 2*len(oldVals))
	t.mask = uint64(len(t.keys) - 1)
	t.shift--
	for i, key := range oldKeys {
		if key == 0 {
			continue
		}
		for j := t.slot(key); ; j = (j + 1) & t.mask {
			if t.keys[j] == 0 {
				t.keys[j] = key
				t.vals[j] = oldVals[i]
				break
			}
		}
	}
}

// reset empties the table in place for the next epoch.
func (t *fillTable) reset() {
	if t.n == 0 {
		return
	}
	clear(t.keys)
	t.n = 0
}
