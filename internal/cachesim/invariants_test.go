package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cachepart/internal/cat"
	"cachepart/internal/memory"
)

// TestLRUWithinAssociativity: touching at most `ways` distinct lines of
// one set keeps all of them resident — the defining property of LRU.
func TestLRUWithinAssociativity(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	sets := cfg.LLC.Sets()
	// Lines mapping to the same LLC set: stride = sets lines.
	base := memory.Addr(memory.PageSize)
	ways := cfg.LLC.Ways
	lines := make([]memory.Addr, ways)
	for i := range lines {
		lines[i] = base + memory.Addr(i*sets*memory.LineSize)
	}
	// Several rounds over the set's worth of lines.
	for round := 0; round < 3; round++ {
		for _, a := range lines {
			m.Access(0, a, false)
		}
	}
	st := m.Stats(0)
	if st.LLCMisses != uint64(ways) {
		t.Errorf("misses = %d, want exactly %d cold misses", st.LLCMisses, ways)
	}
}

// TestLRUEvictionOccupancy: inserting ways+1 same-set lines keeps
// exactly `ways` of them resident.
func TestLRUEvictionOccupancy(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchDepth = 0
	m := newTestMachine(t, cfg)
	sets := cfg.LLC.Sets()
	base := memory.Addr(memory.PageSize)
	addr := func(i int) memory.Addr { return base + memory.Addr(i*sets*memory.LineSize) }
	ways := cfg.LLC.Ways

	for i := 0; i <= ways; i++ {
		m.Access(0, addr(i), false)
		if i < ways {
			// Keep older lines warmer than line i+1 will be.
			for j := 0; j <= i; j++ {
				m.Access(0, addr(j), false)
			}
		}
	}
	// addr(0..ways) inserted; capacity is `ways`; at least one evicted.
	resident := 0
	for i := 0; i <= ways; i++ {
		if m.LLCOccupancy(addr(i), addr(i)+memory.LineSize) > 0 {
			resident++
		}
	}
	if resident != ways {
		t.Errorf("resident = %d, want exactly %d", resident, ways)
	}
}

// TestMaskedFillsStayInMask (white-box): after a masked core streams,
// no line of its region occupies a disallowed way.
func TestMaskedFillsStayInMask(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	if err := m.CAT().SetMask(1, 0x3); err != nil {
		t.Fatal(err)
	}
	if err := m.CAT().Associate(0, 1); err != nil {
		t.Fatal(err)
	}
	space := memory.NewSpace()
	data := space.Alloc("stream", cfg.LLC.Size*2)
	for off := uint64(0); off < data.Size; off += memory.LineSize {
		m.Access(0, data.Addr(off), false)
	}
	lo, hi := data.Base.Line(), (data.Base + memory.Addr(data.Size)).Line()
	for set := 0; set < m.llc.sets; set++ {
		for way := 0; way < m.llc.ways; way++ {
			e := m.llc.entries[set*m.llc.ways+way]
			if !e.valid() {
				continue
			}
			line := e.line()
			if line >= lo && line < hi && way >= 2 {
				t.Fatalf("masked stream line in way %d of set %d", way, set)
			}
		}
	}
}

// TestAccessLevelMonotone (property): repeating the same access
// immediately always hits L1.
func TestAccessRepeatHitsL1(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	f := func(raw uint32, write bool) bool {
		a := memory.Addr(memory.PageSize + uint64(raw)%(1<<24))
		m.Access(2, a, write)
		return m.Access(2, a, false) == L1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOccupancyConservation (property): under random traffic from
// several cores and random mask changes, total CMT occupancy equals
// the valid-line count and never exceeds capacity.
func TestOccupancyConservation(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	rng := rand.New(rand.NewSource(3))
	space := memory.NewSpace()
	data := space.Alloc("d", cfg.LLC.Size*4)

	masks := []cat.WayMask{0x3, 0xff, cat.FullMask(16)}
	for step := 0; step < 20_000; step++ {
		if step%2048 == 0 {
			clos := rng.Intn(3)
			if err := m.CAT().SetMask(clos, masks[rng.Intn(len(masks))]); err != nil {
				t.Fatal(err)
			}
			if err := m.CAT().Associate(rng.Intn(cfg.Cores), clos); err != nil {
				t.Fatal(err)
			}
		}
		core := rng.Intn(cfg.Cores)
		off := uint64(rng.Int63n(int64(data.Size/memory.LineSize))) * memory.LineSize
		m.Access(core, data.Addr(off), rng.Intn(4) == 0)
	}
	var occTotal uint64
	for clos := 0; clos < cfg.NumCLOS; clos++ {
		occTotal += m.LLCOccupancyOfCLOS(clos)
	}
	valid := uint64(m.llc.occupancy(0, ^uint64(0))) * memory.LineSize
	if occTotal != valid {
		t.Errorf("CMT occupancy %d != valid lines %d", occTotal, valid)
	}
	if occTotal > cfg.LLC.Size {
		t.Errorf("occupancy %d exceeds capacity %d", occTotal, cfg.LLC.Size)
	}
}
