package cachesim

import (
	"math/rand"
	"testing"
)

// These tests pin the perf tier's alloc-budget contract (DESIGN.md
// §12): the per-access paths allocate nothing in steady state. A
// regression fails here loudly instead of surfacing as benchmark
// drift. The first iterations may grow internal structures (event
// buffers, fill tables), so every test warms up before measuring.

func TestAccessZeroAllocs(t *testing.T) {
	m, err := New(parsimConfig())
	if err != nil {
		t.Fatal(err)
	}
	ops := batchPattern(rand.New(rand.NewSource(1)), 512)
	for i := range ops {
		m.Access(0, ops[i].Addr, ops[i].Write)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		op := &ops[i%len(ops)]
		m.Access(0, op.Addr, op.Write)
		i++
	})
	if allocs != 0 {
		t.Errorf("Machine.Access allocates %.1f per op in steady state, want 0", allocs)
	}
}

func TestAccessBatchZeroAllocs(t *testing.T) {
	m, err := New(parsimConfig())
	if err != nil {
		t.Fatal(err)
	}
	ops := batchPattern(rand.New(rand.NewSource(2)), 512)
	m.AccessBatch(0, ops)
	allocs := testing.AllocsPerRun(20, func() {
		m.AccessBatch(0, ops)
	})
	if allocs != 0 {
		t.Errorf("Machine.AccessBatch allocates %.1f per batch in steady state, want 0", allocs)
	}
}

// TestEpochCycleZeroAllocs covers the parallel path end to end: epoch
// begin, per-core accesses through CoreSim (fill table, event buffer),
// and the merge. After the warm-up epochs size the buffers, a full
// cycle must not allocate.
func TestEpochCycleZeroAllocs(t *testing.T) {
	cfg := parsimConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es := m.NewEpochSim()
	ops := batchPattern(rand.New(rand.NewSource(3)), 512)
	cycle := func() {
		es.BeginEpoch()
		for c := 0; c < cfg.Cores; c++ {
			cs := es.Core(c)
			for i := range ops {
				cs.Access(ops[i].Addr, ops[i].Write)
			}
		}
		es.Merge()
	}
	cycle()
	cycle()
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs != 0 {
		t.Errorf("epoch cycle allocates %.1f per epoch in steady state, want 0", allocs)
	}
}
