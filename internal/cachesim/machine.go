package cachesim

import (
	"fmt"

	"cachepart/internal/cat"
	"cachepart/internal/memory"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

// Hierarchy levels, nearest first.
const (
	L1 Level = iota
	L2
	LLC
	DRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// CoreStats are the performance counters of one core, in the spirit of
// the Intel Processor Counter Monitor the paper samples.
//
//conc:shared per-core sharded: stats[core] is written only by the owning worker; cross-core reads happen at the merge barrier
type CoreStats struct {
	Instructions   uint64
	Reads          uint64
	Writes         uint64
	L1Hits         uint64
	L2Hits         uint64
	LLCHits        uint64
	LLCMisses      uint64
	PrefetchIssued uint64
	PrefetchLate   uint64 // demand arrived before the prefetch completed
	Writebacks     uint64 // dirty LLC evictions sent to DRAM
	StallTicks     int64  // ticks spent waiting on memory
	ComputeTicks   int64
}

// Add accumulates other into s.
func (s *CoreStats) Add(o CoreStats) {
	s.Instructions += o.Instructions
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.LLCHits += o.LLCHits
	s.LLCMisses += o.LLCMisses
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchLate += o.PrefetchLate
	s.Writebacks += o.Writebacks
	s.StallTicks += o.StallTicks
	s.ComputeTicks += o.ComputeTicks
}

// Sub returns s minus o, for measuring deltas over a window.
func (s CoreStats) Sub(o CoreStats) CoreStats {
	return CoreStats{
		Instructions:   s.Instructions - o.Instructions,
		Reads:          s.Reads - o.Reads,
		Writes:         s.Writes - o.Writes,
		L1Hits:         s.L1Hits - o.L1Hits,
		L2Hits:         s.L2Hits - o.L2Hits,
		LLCHits:        s.LLCHits - o.LLCHits,
		LLCMisses:      s.LLCMisses - o.LLCMisses,
		PrefetchIssued: s.PrefetchIssued - o.PrefetchIssued,
		PrefetchLate:   s.PrefetchLate - o.PrefetchLate,
		Writebacks:     s.Writebacks - o.Writebacks,
		StallTicks:     s.StallTicks - o.StallTicks,
		ComputeTicks:   s.ComputeTicks - o.ComputeTicks,
	}
}

// LLCAccesses reports the number of accesses that reached the LLC.
func (s CoreStats) LLCAccesses() uint64 { return s.LLCHits + s.LLCMisses }

// LLCHitRatio reports hits/(hits+misses) at the LLC, the metric the
// paper reports; it returns 0 when the LLC was never reached.
func (s CoreStats) LLCHitRatio() float64 {
	t := s.LLCAccesses()
	if t == 0 {
		return 0
	}
	return float64(s.LLCHits) / float64(t)
}

// LLCMissesPerInstruction reports the paper's second metric.
func (s CoreStats) LLCMissesPerInstruction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Instructions)
}

// prefetcher is a per-core ascending stream detector: two consecutive
// +1-line strides arm it, after which it keeps PrefetchDepth lines of
// headroom in front of the demand stream.
//
//conc:shared per-core sharded: pf[core] belongs to the owning worker
type prefetcher struct {
	lastLine uint64
	streak   int
	frontier uint64 // highest line already prefetched + 1
}

// Machine simulates the memory hierarchy for a fixed set of cores.
// It is not safe for concurrent use; the engine serialises access in
// virtual-time order.
type Machine struct {
	cfg  Config
	regs *cat.Registers

	l1  []cache // per core
	l2  []cache // per core
	llc cache
	pf  []prefetcher

	//conc:shared per-core sharded: each worker advances only now[core] of its own core
	now      []int64 // per-core clock, ticks
	dramFree int64   // next tick the DRAM line server is free

	l1Lat, l2Lat, llcLat, dramLat int64 // ticks
	dramStall                     int64 // minimum ticks a core stalls per demand miss (latency / MLP)
	dramService                   int64 // ticks per line transfer
	pfDropQueue                   int64 // queue backlog (ticks) beyond which prefetches drop
	mlp                           int64 // memory-level parallelism factor

	stats []CoreStats

	// Cache Monitoring Technology state: per-CLOS LLC occupancy in
	// lines and cumulative DRAM traffic in lines (fills + writebacks),
	// attributed to the class of service of the core that caused them.
	llcOccupancy []int64
	memTraffic   []uint64

	tracer Tracer
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	regs, err := cat.NewRegisters(cfg.Cores, cfg.LLC.Ways, cfg.NumCLOS)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:     cfg,
		regs:    regs,
		llc:     newCache(cfg.LLC),
		l1:      make([]cache, cfg.Cores),
		l2:      make([]cache, cfg.Cores),
		pf:      make([]prefetcher, cfg.Cores),
		now:     make([]int64, cfg.Cores),
		stats:   make([]CoreStats, cfg.Cores),
		l1Lat:   cfg.L1Latency * TicksPerCycle,
		l2Lat:   cfg.L2Latency * TicksPerCycle,
		llcLat:  cfg.LLCLatency * TicksPerCycle,
		dramLat: cfg.DRAMLatency * TicksPerCycle,
	}
	for i := range m.l1 {
		m.l1[i] = newCache(cfg.L1)
		m.l2[i] = newCache(cfg.L2)
	}
	m.llcOccupancy = make([]int64, cfg.NumCLOS)
	m.memTraffic = make([]uint64, cfg.NumCLOS)
	// Ticks per line transfer: line bytes / (bytes per tick).
	bytesPerTick := cfg.DRAMBandwidth / cfg.FreqHz / TicksPerCycle
	m.dramService = int64(float64(memory.LineSize)/bytesPerTick + 0.5)
	if m.dramService < 1 {
		m.dramService = 1
	}
	mlp := int64(cfg.MissParallelism)
	if mlp < 1 {
		mlp = 1
	}
	m.mlp = mlp
	m.dramStall = m.dramLat / mlp
	if m.dramStall < m.dramService {
		m.dramStall = m.dramService
	}
	dropLines := int64(cfg.PrefetchDropQueue)
	if dropLines <= 0 {
		dropLines = int64(cfg.Cores) * int64(cfg.PrefetchDepth)
		if dropLines < 32 {
			dropLines = 32
		}
	}
	m.pfDropQueue = dropLines * m.dramService
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// CAT exposes the CAT register file so the resctrl layer can program
// masks and core associations.
func (m *Machine) CAT() *cat.Registers { return m.regs }

// Cores reports the simulated core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// Now reports a core's clock in ticks.
func (m *Machine) Now(core int) int64 { return m.now[core] }

// MaxNow reports the most advanced core clock.
func (m *Machine) MaxNow() int64 {
	var max int64
	for _, t := range m.now {
		if t > max {
			max = t
		}
	}
	return max
}

// AdvanceTo moves a core's clock forward to at least t, modelling idle
// time between jobs. Moving backwards is ignored.
func (m *Machine) AdvanceTo(core int, t int64) {
	if t > m.now[core] {
		m.now[core] = t
	}
}

// Seconds converts ticks to simulated seconds.
func (m *Machine) Seconds(ticks int64) float64 {
	return float64(ticks) / TicksPerCycle / m.cfg.FreqHz
}

// Ticks converts simulated seconds to ticks.
func (m *Machine) Ticks(seconds float64) int64 {
	return int64(seconds * m.cfg.FreqHz * TicksPerCycle)
}

// Stats returns a copy of one core's counters.
func (m *Machine) Stats(core int) CoreStats { return m.stats[core] }

// TotalStats aggregates the counters of all cores.
func (m *Machine) TotalStats() CoreStats {
	var t CoreStats
	for i := range m.stats {
		t.Add(m.stats[i])
	}
	return t
}

// CoreStatsSnapshot returns copies of all per-core counters.
func (m *Machine) CoreStatsSnapshot() []CoreStats {
	out := make([]CoreStats, len(m.stats))
	copy(out, m.stats)
	return out
}

// Flush invalidates every cache, e.g. between independent experiments.
// Clocks and counters are preserved; CMT occupancy drops to zero with
// the lines.
func (m *Machine) Flush() {
	m.llc.flush()
	for i := range m.l1 {
		m.l1[i].flush()
		m.l2[i].flush()
		m.pf[i] = prefetcher{}
	}
	clear(m.llcOccupancy)
}

// Reset flushes the caches and zeroes clocks, counters and the DRAM
// queue, returning the machine to its initial state.
func (m *Machine) Reset() {
	m.Flush()
	m.ZeroClocksAndStats()
}

// ZeroClocksAndStats rewinds every core clock, the DRAM queue and all
// counters while keeping cache contents — used after prewarming a
// working set so measurement starts at time zero in steady state.
func (m *Machine) ZeroClocksAndStats() {
	for i := range m.now {
		m.now[i] = 0
		m.stats[i] = CoreStats{}
	}
	m.dramFree = 0
	clear(m.memTraffic)
	// Any in-flight prefetch readiness stamps would lie in the future
	// of the rewound clocks; clamp them to "arrived".
	for i := range m.llc.entries {
		m.llc.entries[i].ready = 0
	}
	for c := range m.l1 {
		for i := range m.l1[c].entries {
			m.l1[c].entries[i].ready = 0
		}
		for i := range m.l2[c].entries {
			m.l2[c].entries[i].ready = 0
		}
		m.pf[c] = prefetcher{}
	}
}

// Compute advances a core's clock by a pure-computation cost and
// retires instructions, without touching memory.
func (m *Machine) Compute(core int, cycles int64, instrs uint64) {
	t := cycles * TicksPerCycle
	m.now[core] += t
	m.stats[core].ComputeTicks += t
	m.stats[core].Instructions += instrs
}

// Access simulates one memory reference by the core and advances its
// clock by the access cost. It returns the level that satisfied the
// access. Each access retires one instruction.
//
//perf:hot executed once per simulated memory reference
//conc:barrier mutates the shared LLC and DRAM queue directly; parallel epochs must go through CoreSim.Access instead
func (m *Machine) Access(core int, addr memory.Addr, write bool) Level {
	line := addr.Line()
	st := &m.stats[core]
	st.Instructions++
	if write {
		st.Writes++
	} else {
		st.Reads++
	}

	start := m.now[core]

	// L1.
	if e := m.l1[core].lookup(line); e != nil {
		if write {
			e.setDirty()
		}
		st.L1Hits++
		m.finish(core, start, m.l1Lat, 0)
		m.observeStream(core, line)
		m.traceAccess(core, addr, write, L1)
		return L1
	}

	// L2.
	if e := m.l2[core].lookup(line); e != nil {
		lat := m.l2Lat
		if e.ready > start {
			// A prefetch for this line is still in flight.
			lat = e.ready - start + m.l2Lat
			st.PrefetchLate++
		}
		m.fillL1(core, line, write)
		st.L2Hits++
		m.finish(core, start, lat, m.l2Lat)
		m.observeStream(core, line)
		m.traceAccess(core, addr, write, L2)
		return L2
	}

	// LLC.
	if e := m.llc.lookup(line); e != nil {
		lat := m.llcLat
		if e.ready > start {
			lat = e.ready - start + m.llcLat
			st.PrefetchLate++
		}
		e.owners |= 1 << uint(core)
		m.fillL2(core, line)
		m.fillL1(core, line, write)
		st.LLCHits++
		m.finish(core, start, lat, m.llcLat)
		m.observeStream(core, line)
		m.traceAccess(core, addr, write, LLC)
		return LLC
	}

	// DRAM. The line server serialises transfers, which is the shared
	// bandwidth model: under contention `begin` is pushed past `start`.
	// The line arrives after the full latency, but the core only
	// stalls for the overlapped share (memory-level parallelism) of
	// the whole penalty — queueing delay included, since an
	// out-of-order core keeps several misses in flight through the
	// memory controller's queue as well.
	begin := max64(start, m.dramFree)
	m.dramFree = begin + m.dramService
	ready := begin + m.dramLat
	st.LLCMisses++

	stall := (begin - start + m.dramLat) / m.mlp
	if stall < m.dramStall {
		stall = m.dramStall
	}
	m.fillLLC(core, line, ready)
	m.fillL2(core, line)
	m.fillL1(core, line, write)
	m.finish(core, start, stall+m.llcLat, m.llcLat)
	m.observeStream(core, line)
	m.traceAccess(core, addr, write, DRAM)
	return DRAM
}

// BatchOp is one element of a batched access run: a memory reference
// optionally followed by a compute step. Batching preserves the exact
// Access/Compute call sequence, so results are bit-identical to the
// unbatched loop; the win is amortized call overhead and an inlined
// L1-hit fast path.
//
//conc:shared scratch element: BatchOps live in slices owned by one kernel instance
type BatchOp struct {
	Addr   memory.Addr
	Write  bool
	Cycles int64  // compute cycles charged after the access (0 = none)
	Instrs uint64 // instructions retired by the compute step
}

// AccessBatch simulates a run of accesses on one core. It is exactly
// equivalent to calling Access (and Compute, for elements with a cost)
// once per element.
//
//perf:hot the batched form of the per-access path
//conc:barrier mutates the shared LLC and DRAM queue directly; parallel epochs must go through CoreSim.AccessBatch instead
func (m *Machine) AccessBatch(core int, ops []BatchOp) {
	if m.tracer != nil {
		for i := range ops {
			op := &ops[i]
			//lint:allow hotbatch this is the batch implementation; per-element Access is its defined semantics
			m.Access(core, op.Addr, op.Write)
			if op.Cycles != 0 || op.Instrs != 0 {
				m.Compute(core, op.Cycles, op.Instrs)
			}
		}
		return
	}
	l1 := &m.l1[core]
	st := &m.stats[core]
	p := &m.pf[core]
	pfOff := m.cfg.PrefetchDepth <= 0
	for i := range ops {
		op := &ops[i]
		line := op.Addr.Line()
		// Fast path: an L1 hit whose stream observation is a no-op
		// (repeated touch within one line, or prefetching disabled)
		// replicates Access inline without the level walk.
		if pfOff || line == p.lastLine {
			if e := l1.lookup(line); e != nil {
				st.Instructions++
				if op.Write {
					st.Writes++
					e.setDirty()
				} else {
					st.Reads++
				}
				st.L1Hits++
				m.now[core] += m.l1Lat
				st.StallTicks += m.l1Lat
				if op.Cycles != 0 || op.Instrs != 0 {
					t := op.Cycles * TicksPerCycle
					m.now[core] += t
					st.ComputeTicks += t
					st.Instructions += op.Instrs
				}
				continue
			}
		}
		//lint:allow hotbatch this is the batch implementation; the slow path falls back to per-element Access
		m.Access(core, op.Addr, op.Write)
		if op.Cycles != 0 || op.Instrs != 0 {
			m.Compute(core, op.Cycles, op.Instrs)
		}
	}
}

// finish advances the core clock by cost ticks, attributing everything
// beyond baseline to memory stall.
func (m *Machine) finish(core int, start, cost, baseline int64) {
	m.now[core] = start + cost
	if stall := cost - baseline; stall > 0 {
		m.stats[core].StallTicks += stall
	}
}

func (m *Machine) fillL1(core int, line uint64, write bool) {
	victim, slot := m.l1[core].fill(line, m.now[core])
	if write {
		slot.setDirty()
	}
	if victim.valid() && victim.dirty() {
		// Dirty L1 victim falls back to L2 (or LLC if L2 lost it).
		if e := m.l2[core].peek(victim.line()); e != nil {
			e.setDirty()
		} else if e := m.llc.peek(victim.line()); e != nil {
			e.setDirty()
		}
	}
}

func (m *Machine) fillL2(core int, line uint64) {
	victim, _ := m.l2[core].fill(line, m.now[core])
	if victim.valid() && victim.dirty() {
		if e := m.llc.peek(victim.line()); e != nil {
			e.setDirty()
		}
	}
}

// fillLLC inserts a line into the LLC respecting the core's CAT mask
// and, for an inclusive LLC, back-invalidates the victim from the
// private caches of every core that holds it. CMT occupancy and
// bandwidth counters are attributed to the filling core's CLOS.
func (m *Machine) fillLLC(core int, line uint64, ready int64) {
	mask := m.regs.MaskOf(core)
	clos := m.regs.CLOSOf(core)
	victim, slot := m.llc.fillMasked(line, ready, mask)
	slot.owners = 1 << uint(core)
	slot.setCLOS(uint8(clos))
	m.llcOccupancy[clos]++
	m.memTraffic[clos]++
	if !victim.valid() {
		return
	}
	m.llcOccupancy[victim.clos()]--
	dirty := victim.dirty()
	if m.cfg.InclusiveLLC && victim.owners != 0 {
		vline := victim.line()
		for c := 0; victim.owners != 0; c++ {
			bit := uint32(1) << uint(c)
			if victim.owners&bit == 0 {
				continue
			}
			victim.owners &^= bit
			if _, d := m.l1[c].invalidate(vline); d {
				dirty = true
			}
			if _, d := m.l2[c].invalidate(vline); d {
				dirty = true
			}
		}
	}
	if dirty {
		// Dirty writeback consumes a DRAM transfer slot but does not
		// stall the core.
		m.dramFree = max64(m.dramFree, m.now[core]) + m.dramService
		m.stats[core].Writebacks++
		m.memTraffic[victim.clos()]++
	}
}

// LLCOccupancyOfCLOS reports the bytes of LLC currently filled by the
// class of service — the llc_occupancy file of a resctrl monitoring
// group (Cache Monitoring Technology).
func (m *Machine) LLCOccupancyOfCLOS(clos int) uint64 {
	if clos < 0 || clos >= len(m.llcOccupancy) {
		return 0
	}
	n := m.llcOccupancy[clos]
	if n < 0 {
		n = 0
	}
	return uint64(n) * memory.LineSize
}

// MemTrafficOfCLOS reports the cumulative DRAM bytes (fills and
// writebacks) attributed to the class of service — the mbm_total file
// of a monitoring group (Memory Bandwidth Monitoring).
func (m *Machine) MemTrafficOfCLOS(clos int) uint64 {
	if clos < 0 || clos >= len(m.memTraffic) {
		return 0
	}
	return m.memTraffic[clos] * memory.LineSize
}

// observeStream feeds the per-core stride detector and issues
// prefetches when a stream is established.
func (m *Machine) observeStream(core int, line uint64) {
	if m.cfg.PrefetchDepth <= 0 {
		return
	}
	p := &m.pf[core]
	switch {
	case line == p.lastLine:
		return // repeated touch within one line
	case line == p.lastLine+1:
		p.streak++
	default:
		p.streak = 0
		p.frontier = 0
	}
	p.lastLine = line
	if p.streak < 2 {
		return
	}
	target := line + uint64(m.cfg.PrefetchDepth)
	from := line + 1
	if p.frontier > from {
		from = p.frontier
	}
	for l := from; l <= target; l++ {
		m.prefetch(core, l)
	}
	p.frontier = target + 1
}

// prefetch asynchronously pulls a line into LLC and L2. It consumes
// DRAM bandwidth but never stalls the core; a demand access that beats
// the fill pays the residual latency. Under queue pressure the
// prefetch is dropped, as in real memory controllers — without this
// back-pressure the open-loop prefetch stream would let the virtual
// queue grow without bound when demand exceeds bandwidth.
func (m *Machine) prefetch(core int, line uint64) {
	if m.dramFree-m.now[core] > m.pfDropQueue {
		return
	}
	if m.llc.peek(line) != nil || m.l2[core].peek(line) != nil {
		return
	}
	begin := max64(m.now[core], m.dramFree)
	m.dramFree = begin + m.dramService
	ready := begin + m.dramLat
	m.fillLLC(core, line, ready)
	victim, _ := m.l2[core].fill(line, ready)
	if victim.valid() && victim.dirty() {
		if e := m.llc.peek(victim.line()); e != nil {
			e.setDirty()
		}
	}
	m.stats[core].PrefetchIssued++
}

// LLCOccupancy counts the valid LLC lines whose addresses fall in
// [lo, hi), a diagnostic used by tests to observe pollution directly.
func (m *Machine) LLCOccupancy(lo, hi memory.Addr) int {
	return m.llc.occupancy(lo.Line(), (hi + memory.LineSize - 1).Line())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
