package cachesim

import "cachepart/internal/memory"

// parsim: deterministic parallel simulation of the private cache levels.
//
// The hierarchy splits naturally at the LLC boundary: L1, L2, the
// stride prefetcher, the per-core clock and the per-core counters are
// all owned by exactly one simulated core, while only the shared LLC
// and the DRAM line server couple cores. parsim exploits that split
// with a conservative epoch scheme:
//
//   - Each simulated core gets a CoreSim, a front-end that may run in
//     its own host goroutine. Within an epoch a CoreSim simulates its
//     private levels exactly like Machine.Access, but treats the shared
//     LLC as frozen (read-only peeks, no replacement-state updates) and
//     mirrors the DRAM queue in a core-local clock seeded from the
//     shared queue at the epoch boundary.
//   - Every action that would have mutated shared state — an LRU touch
//     on an LLC hit, a fill after a miss or prefetch, a dirty bit
//     falling back from an evicted private line — is buffered as a
//     timestamped event instead. A core observes its own in-epoch fills
//     through a private table so its self-consistency is exact.
//   - At the epoch barrier, Merge drains all buffers in (tick, core,
//     seq) order — the sole cross-core ordering point — and applies
//     them to the real LLC, the CMT/MBM counters and the shared DRAM
//     queue with the same code paths the serial engine uses.
//
// Determinism: a CoreSim's behaviour depends only on its private state,
// the frozen LLC image, and the epoch-start DRAM clock — never on host
// scheduling — and the merge order is a pure function of the buffered
// events. Running the workers on 1 or N OS threads therefore produces
// bit-identical results; see DESIGN.md §11 for how the epoch semantics
// relate to the serial reference model.
//
// CoreSims do not call the Tracer; parallel runs are untraced.

// parEvent is one buffered shared-state mutation. Per-core buffers are
// naturally sorted by tick because a core's clock is monotone, so the
// merge is an allocation-free k-way merge.
type parEvent struct {
	tick  int64  // virtual time the serial path would have applied it
	ready int64  // fill completion stamp (evFill only)
	line  uint64 // cache line the event concerns
	kind  uint8
}

const (
	// evTouch: the core hit a line in the frozen LLC — bump its
	// replacement stamp and record the core as an owner.
	evTouch uint8 = iota
	// evFill: the core missed (or prefetched) and fetched the line from
	// DRAM — insert it into the LLC, evicting under the core's CAT mask,
	// and advance the shared DRAM queue by one line transfer.
	evFill
	// evDirty: a dirty private-cache victim fell back to the LLC copy.
	evDirty
)

// CoreSim is the per-core parallel front-end. It is owned by exactly
// one worker goroutine between BeginEpoch and Merge; the EpochSim
// methods themselves must be called from a single coordinating
// goroutine with no worker running.
//
//conc:shared owned by exactly one worker between BeginEpoch and Merge (DESIGN §11); buffered events are drained only at the merge barrier
type CoreSim struct {
	m    *Machine
	core int

	// dramFree mirrors the shared DRAM queue, seeded at each epoch
	// boundary; within the epoch the core only observes its own
	// transfers, a one-epoch-stale view of cross-core contention.
	dramFree int64

	// fills records the lines this core brought in during the current
	// epoch (line → ready tick), so repeated accesses see them even
	// though the shared LLC is frozen. Open-addressed rather than a Go
	// map: this sits on the per-access path.
	fills *fillTable

	events []parEvent
}

// EpochSim coordinates parallel epochs over one machine. The zero
// value is not usable; construct with Machine.NewEpochSim.
type EpochSim struct {
	m      *Machine
	cores  []*CoreSim
	cursor []int
}

// NewEpochSim builds the parallel front-ends, one per simulated core.
func (m *Machine) NewEpochSim() *EpochSim {
	es := &EpochSim{
		m:      m,
		cores:  make([]*CoreSim, m.cfg.Cores),
		cursor: make([]int, m.cfg.Cores),
	}
	for c := range es.cores {
		es.cores[c] = &CoreSim{m: m, core: c, fills: newFillTable()}
	}
	return es
}

// Core returns the front-end of one simulated core.
func (es *EpochSim) Core(core int) *CoreSim { return es.cores[core] }

// BeginEpoch seeds every core's DRAM mirror from the shared queue.
// Call once before handing the CoreSims to workers for an epoch.
//
//conc:barrier epoch setup runs on the coordinator before any worker starts
func (es *EpochSim) BeginEpoch() {
	for _, cs := range es.cores {
		cs.dramFree = es.m.dramFree
	}
}

// Merge applies all buffered events to the shared LLC, DRAM queue and
// CMT/MBM counters in (tick, core, seq) order, then clears the buffers
// for the next epoch. Workers must be quiescent.
//
//perf:hot drains every buffered shared-state event, once per epoch barrier
//conc:barrier the merge mutates the shared LLC and DRAM queue; workers must be quiescent
func (es *EpochSim) Merge() {
	idx := es.cursor
	for i := range idx {
		idx[i] = 0
	}
	for {
		// Per-core buffers are tick-sorted; pick the earliest head,
		// breaking ties by core index (strict < keeps the lowest core).
		best := -1
		var bt int64
		for c, cs := range es.cores {
			i := idx[c]
			if i >= len(cs.events) {
				continue
			}
			if t := cs.events[i].tick; best < 0 || t < bt {
				best, bt = c, t
			}
		}
		if best < 0 {
			break
		}
		ev := &es.cores[best].events[idx[best]]
		idx[best]++
		es.apply(best, ev)
	}
	for _, cs := range es.cores {
		cs.events = cs.events[:0]
		cs.fills.reset()
	}
}

func (es *EpochSim) apply(core int, ev *parEvent) {
	m := es.m
	switch ev.kind {
	case evTouch:
		// The line may have been evicted by an earlier merged fill;
		// then the touch (and the owner bit) is simply lost, exactly as
		// if the access had raced the eviction.
		if e := m.llc.lookup(ev.line); e != nil {
			e.owners |= 1 << uint(core)
		}
	case evDirty:
		if e := m.llc.peek(ev.line); e != nil {
			e.setDirty()
		}
	case evFill:
		if e := m.llc.lookup(ev.line); e != nil {
			// Another core's earlier fill (or a previous epoch) already
			// holds the line. The transfer still happened in this
			// core's timeline, so it still consumes shared bandwidth.
			e.owners |= 1 << uint(core)
			clos := m.regs.CLOSOf(core)
			m.memTraffic[clos]++
			m.dramFree = max64(m.dramFree, ev.tick) + m.dramService
			return
		}
		es.fillLLCAt(core, ev.line, ev.ready, ev.tick)
	}
}

// fillLLCAt is Machine.fillLLC with the access-start tick standing in
// for the live core clock, plus the deferred shared DRAM-queue advance
// for the fill transfer itself.
func (es *EpochSim) fillLLCAt(core int, line uint64, ready, tick int64) {
	m := es.m
	m.dramFree = max64(m.dramFree, tick) + m.dramService
	mask := m.regs.MaskOf(core)
	clos := m.regs.CLOSOf(core)
	victim, slot := m.llc.fillMasked(line, ready, mask)
	slot.owners = 1 << uint(core)
	slot.setCLOS(uint8(clos))
	m.llcOccupancy[clos]++
	m.memTraffic[clos]++
	if !victim.valid() {
		return
	}
	m.llcOccupancy[victim.clos()]--
	dirty := victim.dirty()
	if m.cfg.InclusiveLLC && victim.owners != 0 {
		vline := victim.line()
		for c := 0; victim.owners != 0; c++ {
			bit := uint32(1) << uint(c)
			if victim.owners&bit == 0 {
				continue
			}
			victim.owners &^= bit
			if _, d := m.l1[c].invalidate(vline); d {
				dirty = true
			}
			if _, d := m.l2[c].invalidate(vline); d {
				dirty = true
			}
		}
	}
	if dirty {
		m.dramFree = max64(m.dramFree, tick) + m.dramService
		m.stats[core].Writebacks++
		m.memTraffic[victim.clos()]++
	}
}

func (cs *CoreSim) event(kind uint8, tick int64, line uint64, ready int64) {
	cs.events = append(cs.events, parEvent{tick: tick, ready: ready, line: line, kind: kind})
}

// Now reports the core's clock.
func (cs *CoreSim) Now() int64 { return cs.m.now[cs.core] }

// Compute advances the core's clock by a pure-computation cost; the
// state touched is all core-owned, so this is the serial path.
func (cs *CoreSim) Compute(cycles int64, instrs uint64) {
	cs.m.Compute(cs.core, cycles, instrs)
}

// Access simulates one memory reference within the current epoch. It
// mirrors Machine.Access level by level; only the shared-state touches
// differ, buffered as events.
//
//perf:hot the parallel-mode counterpart of Machine.Access
func (cs *CoreSim) Access(addr memory.Addr, write bool) Level {
	m := cs.m
	core := cs.core
	line := addr.Line()
	st := &m.stats[core]
	st.Instructions++
	if write {
		st.Writes++
	} else {
		st.Reads++
	}

	start := m.now[core]

	// L1 — core-owned.
	if e := m.l1[core].lookup(line); e != nil {
		if write {
			e.setDirty()
		}
		st.L1Hits++
		m.finish(core, start, m.l1Lat, 0)
		cs.observeStream(line)
		return L1
	}

	// L2 — core-owned.
	if e := m.l2[core].lookup(line); e != nil {
		lat := m.l2Lat
		if e.ready > start {
			lat = e.ready - start + m.l2Lat
			st.PrefetchLate++
		}
		cs.fillL1(line, write)
		st.L2Hits++
		m.finish(core, start, lat, m.l2Lat)
		cs.observeStream(line)
		return L2
	}

	// LLC — own in-epoch fills first, then the frozen shared image.
	if ready, ok := cs.fills.get(line); ok {
		cs.hitLLC(line, start, ready, write, st)
		return LLC
	}
	if e := m.llc.peek(line); e != nil {
		cs.hitLLC(line, start, e.ready, write, st)
		return LLC
	}

	// DRAM — via the core-local mirror of the line server.
	begin := max64(start, cs.dramFree)
	cs.dramFree = begin + m.dramService
	ready := begin + m.dramLat
	st.LLCMisses++

	stall := (begin - start + m.dramLat) / m.mlp
	if stall < m.dramStall {
		stall = m.dramStall
	}
	cs.fills.put(line, ready)
	cs.event(evFill, start, line, ready)
	cs.fillL2(line)
	cs.fillL1(line, write)
	m.finish(core, start, stall+m.llcLat, m.llcLat)
	cs.observeStream(line)
	return DRAM
}

func (cs *CoreSim) hitLLC(line uint64, start, ready int64, write bool, st *CoreStats) {
	m := cs.m
	lat := m.llcLat
	if ready > start {
		lat = ready - start + m.llcLat
		st.PrefetchLate++
	}
	cs.event(evTouch, start, line, 0)
	cs.fillL2(line)
	cs.fillL1(line, write)
	st.LLCHits++
	m.finish(cs.core, start, lat, m.llcLat)
	cs.observeStream(line)
}

// fillL1 mirrors Machine.fillL1; a dirty victim that misses the
// core-owned L2 defers its LLC dirty bit to the merge.
func (cs *CoreSim) fillL1(line uint64, write bool) {
	m := cs.m
	core := cs.core
	victim, slot := m.l1[core].fill(line, m.now[core])
	if write {
		slot.setDirty()
	}
	if victim.valid() && victim.dirty() {
		if e := m.l2[core].peek(victim.line()); e != nil {
			e.setDirty()
		} else {
			cs.event(evDirty, m.now[core], victim.line(), 0)
		}
	}
}

func (cs *CoreSim) fillL2(line uint64) {
	m := cs.m
	core := cs.core
	victim, _ := m.l2[core].fill(line, m.now[core])
	if victim.valid() && victim.dirty() {
		cs.event(evDirty, m.now[core], victim.line(), 0)
	}
}

// observeStream mirrors Machine.observeStream on the core-owned
// prefetcher state.
func (cs *CoreSim) observeStream(line uint64) {
	m := cs.m
	if m.cfg.PrefetchDepth <= 0 {
		return
	}
	p := &m.pf[cs.core]
	switch {
	case line == p.lastLine:
		return
	case line == p.lastLine+1:
		p.streak++
	default:
		p.streak = 0
		p.frontier = 0
	}
	p.lastLine = line
	if p.streak < 2 {
		return
	}
	target := line + uint64(m.cfg.PrefetchDepth)
	from := line + 1
	if p.frontier > from {
		from = p.frontier
	}
	for l := from; l <= target; l++ {
		cs.prefetch(l)
	}
	p.frontier = target + 1
}

// prefetch mirrors Machine.prefetch against the core-local DRAM mirror
// and the frozen LLC image.
func (cs *CoreSim) prefetch(line uint64) {
	m := cs.m
	core := cs.core
	if cs.dramFree-m.now[core] > m.pfDropQueue {
		return
	}
	if _, ok := cs.fills.get(line); ok {
		return
	}
	if m.llc.peek(line) != nil || m.l2[core].peek(line) != nil {
		return
	}
	begin := max64(m.now[core], cs.dramFree)
	cs.dramFree = begin + m.dramService
	ready := begin + m.dramLat
	cs.fills.put(line, ready)
	cs.event(evFill, m.now[core], line, ready)
	victim, _ := m.l2[core].fill(line, ready)
	if victim.valid() && victim.dirty() {
		cs.event(evDirty, m.now[core], victim.line(), 0)
	}
	m.stats[core].PrefetchIssued++
}

// AccessBatch simulates a run of accesses, each optionally followed by
// a compute step, preserving the exact Access/Compute sequence of the
// unbatched calls.
//
//perf:hot the batched form of the parallel per-access path
func (cs *CoreSim) AccessBatch(ops []BatchOp) {
	for i := range ops {
		op := &ops[i]
		//lint:allow hotbatch this is the batch implementation; per-element Access is its defined semantics
		cs.Access(op.Addr, op.Write)
		if op.Cycles != 0 || op.Instrs != 0 {
			cs.m.Compute(cs.core, op.Cycles, op.Instrs)
		}
	}
}
