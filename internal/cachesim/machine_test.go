package cachesim

import (
	"testing"

	"cachepart/internal/cat"
	"cachepart/internal/memory"
)

// testConfig is a small machine so tests run fast: 4 cores, 1 KiB/2-way
// L1, 4 KiB/4-way L2, 64 KiB/16-way LLC.
func testConfig() Config {
	return Config{
		Cores:         4,
		FreqHz:        2e9,
		L1:            Geometry{Size: 1 << 10, Ways: 2},
		L2:            Geometry{Size: 4 << 10, Ways: 4},
		LLC:           Geometry{Size: 64 << 10, Ways: 16},
		L1Latency:     4,
		L2Latency:     12,
		LLCLatency:    40,
		DRAMLatency:   160,
		DRAMBandwidth: 32e9,
		PrefetchDepth: 0, // most tests want raw cache behaviour
		InclusiveLLC:  true,
		NumCLOS:       4,
	}
}

func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultConfigValid(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().LLC.Sets(); got != 45056 {
		t.Errorf("LLC sets = %d, want 45056 (55 MiB / 20 ways / 64 B)", got)
	}
	if m.Cores() != 22 {
		t.Errorf("cores = %d, want 22", m.Cores())
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 64 },
		func(c *Config) { c.FreqHz = 0 },
		func(c *Config) { c.L1.Ways = 0 },
		func(c *Config) { c.LLC.Size = 17 },
		func(c *Config) { c.LLC.Ways = 33 },
		func(c *Config) { c.DRAMBandwidth = 0 },
		func(c *Config) { c.NumCLOS = 0 },
		func(c *Config) { c.DRAMLatency = -1 },
	}
	for i, mutate := range bads {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestScaledConfigPreservesShape(t *testing.T) {
	c := DefaultConfig()
	s := c.Scaled(16)
	if s.LLC.Ways != c.LLC.Ways {
		t.Error("scaling must preserve associativity")
	}
	if s.LLC.Size >= c.LLC.Size || s.LLC.Size == 0 {
		t.Error("LLC not scaled down")
	}
	if s.LLC.Size%uint64(s.LLC.Ways*memory.LineSize) != 0 {
		t.Error("scaled LLC size not way aligned")
	}
	if _, err := New(s); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
	if got := c.Scaled(1); got.LLC.Size != c.LLC.Size {
		t.Error("Scaled(1) must be identity")
	}
}

func TestAccessLevelProgression(t *testing.T) {
	m := newTestMachine(t, testConfig())
	a := memory.Addr(memory.PageSize)
	if lvl := m.Access(0, a, false); lvl != DRAM {
		t.Errorf("cold access = %v, want DRAM", lvl)
	}
	if lvl := m.Access(0, a, false); lvl != L1 {
		t.Errorf("second access = %v, want L1", lvl)
	}
	// Another core misses its private caches but hits shared LLC.
	if lvl := m.Access(1, a, false); lvl != LLC {
		t.Errorf("other-core access = %v, want LLC", lvl)
	}
	if lvl := m.Access(1, a, false); lvl != L1 {
		t.Errorf("other-core repeat = %v, want L1", lvl)
	}
}

func TestClockAdvancesWithLatency(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	a := memory.Addr(memory.PageSize)
	m.Access(0, a, false)
	dramTicks := m.Now(0)
	if min := (cfg.DRAMLatency + cfg.LLCLatency) * TicksPerCycle; dramTicks < min {
		t.Errorf("DRAM access took %d ticks, want >= %d", dramTicks, min)
	}
	before := m.Now(0)
	m.Access(0, a, false)
	if got := m.Now(0) - before; got != cfg.L1Latency*TicksPerCycle {
		t.Errorf("L1 hit took %d ticks, want %d", got, cfg.L1Latency*TicksPerCycle)
	}
}

func TestComputeAdvancesClockAndInstructions(t *testing.T) {
	m := newTestMachine(t, testConfig())
	m.Compute(2, 100, 250)
	if got := m.Now(2); got != 100*TicksPerCycle {
		t.Errorf("Now = %d, want %d", got, 100*TicksPerCycle)
	}
	if got := m.Stats(2).Instructions; got != 250 {
		t.Errorf("Instructions = %d, want 250", got)
	}
}

func TestAdvanceToNeverMovesBackwards(t *testing.T) {
	m := newTestMachine(t, testConfig())
	m.AdvanceTo(0, 500)
	m.AdvanceTo(0, 100)
	if got := m.Now(0); got != 500 {
		t.Errorf("Now = %d, want 500", got)
	}
}

func TestSecondsTicksRoundTrip(t *testing.T) {
	m := newTestMachine(t, testConfig())
	ticks := m.Ticks(0.25)
	if got := m.Seconds(ticks); got < 0.2499 || got > 0.2501 {
		t.Errorf("round trip 0.25 s -> %v", got)
	}
}

// TestWorkingSetFitsLLC verifies steady-state behaviour: a working set
// smaller than the LLC stops missing after one pass; one larger keeps
// missing.
func TestWorkingSetFitsLLC(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()

	small := space.Alloc("small", cfg.LLC.Size/4)
	touchAll := func(r memory.Region, rounds int) (misses uint64) {
		before := m.Stats(0).LLCMisses
		for round := 0; round < rounds; round++ {
			for off := uint64(0); off < r.Size; off += memory.LineSize {
				m.Access(0, r.Addr(off), false)
			}
		}
		return m.Stats(0).LLCMisses - before
	}
	touchAll(small, 1) // warm
	if misses := touchAll(small, 2); misses != 0 {
		t.Errorf("LLC-resident working set missed %d times", misses)
	}

	big := space.Alloc("big", cfg.LLC.Size*4)
	touchAll(big, 1)
	if misses := touchAll(big, 1); misses == 0 {
		t.Error("oversized working set should keep missing")
	}
}

// TestCATRestrictsVictimWays verifies the central CAT semantics: a core
// whose mask grants k of n ways can keep at most k/n of the LLC, while
// an unrestricted core can fill all of it.
func TestCATRestrictsVictimWays(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()
	// Streams twice the LLC so every set sees enough fills.
	data := space.Alloc("stream", cfg.LLC.Size*2)

	stream := func(core int) {
		for off := uint64(0); off < data.Size; off += memory.LineSize {
			m.Access(core, data.Addr(off), false)
		}
	}

	stream(0)
	full := m.LLCOccupancy(data.Base, data.Base+memory.Addr(data.Size))
	wantFull := int(cfg.LLC.Size / memory.LineSize)
	if full != wantFull {
		t.Fatalf("unrestricted stream occupies %d lines, want %d", full, wantFull)
	}

	// Restrict core 1 to 2 of 16 ways and flush.
	m.Flush()
	if err := m.CAT().SetMask(1, cat.PortionMask(cfg.LLC.Ways, 0.125)); err != nil {
		t.Fatal(err)
	}
	if err := m.CAT().Associate(1, 1); err != nil {
		t.Fatal(err)
	}
	stream(1)
	limited := m.LLCOccupancy(data.Base, data.Base+memory.Addr(data.Size))
	wantMax := wantFull * 2 / cfg.LLC.Ways
	if limited > wantMax {
		t.Errorf("masked stream occupies %d lines, want <= %d", limited, wantMax)
	}
	if limited < wantMax/2 {
		t.Errorf("masked stream occupies %d lines, suspiciously few (<= %d expected)", limited, wantMax)
	}
}

// TestCATHitsOutsideMask verifies that restricting fills does not
// restrict hits: a masked core still hits lines another core cached
// anywhere in the LLC.
func TestCATHitsOutsideMask(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()
	shared := space.Alloc("shared", 4*memory.LineSize)

	// Core 0 (full mask) caches the lines.
	for off := uint64(0); off < shared.Size; off += memory.LineSize {
		m.Access(0, shared.Addr(off), false)
	}
	// Core 1 restricted to way 0..1 must still hit them in LLC.
	if err := m.CAT().SetMask(1, 0x3); err != nil {
		t.Fatal(err)
	}
	if err := m.CAT().Associate(1, 1); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < shared.Size; off += memory.LineSize {
		if lvl := m.Access(1, shared.Addr(off), false); lvl != LLC {
			t.Errorf("masked core access = %v, want LLC hit", lvl)
		}
	}
}

// TestPollutionAndPartitioning reproduces the paper's core mechanism in
// miniature: a victim with an LLC-resident working set suffers when a
// streaming polluter shares the cache, and partitioning the polluter
// into a small slice restores the victim's hit rate.
func TestPollutionAndPartitioning(t *testing.T) {
	run := func(mask cat.WayMask) (victimMisses uint64) {
		cfg := testConfig()
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		space := memory.NewSpace()
		hot := space.Alloc("hot", cfg.LLC.Size/2)
		streamData := space.Alloc("stream", cfg.LLC.Size*8)

		if mask != 0 {
			if err := m.CAT().SetMask(1, mask); err != nil {
				t.Fatal(err)
			}
			if err := m.CAT().Associate(1, 1); err != nil {
				t.Fatal(err)
			}
		}

		// Warm the victim's working set.
		for off := uint64(0); off < hot.Size; off += memory.LineSize {
			m.Access(0, hot.Addr(off), false)
		}
		// Interleave: victim loops over its set while polluter streams.
		var streamOff uint64
		before := m.Stats(0).LLCMisses
		for round := 0; round < 4; round++ {
			for off := uint64(0); off < hot.Size; off += memory.LineSize {
				m.Access(0, hot.Addr(off), false)
				// Polluter streams four lines per victim line.
				for k := 0; k < 4; k++ {
					m.Access(1, streamData.Addr(streamOff), false)
					streamOff = (streamOff + memory.LineSize) % streamData.Size
				}
			}
		}
		return m.Stats(0).LLCMisses - before
	}

	unpartitioned := run(0)
	partitioned := run(0x3)
	if unpartitioned == 0 {
		t.Fatal("expected pollution-induced misses without partitioning")
	}
	if partitioned*5 > unpartitioned {
		t.Errorf("partitioning should eliminate most pollution: %d -> %d misses",
			unpartitioned, partitioned)
	}
}

// TestInclusiveBackInvalidation verifies that evicting an LLC line
// removes it from private caches: after the victim's line is pushed out
// of the LLC by another core, the victim misses all the way to DRAM
// even though its L1/L2 would still have held the line.
func TestInclusiveBackInvalidation(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()

	line := space.Alloc("one", memory.LineSize)
	m.Access(0, line.Base, false)
	if lvl := m.Access(0, line.Base, false); lvl != L1 {
		t.Fatalf("expected L1 hit, got %v", lvl)
	}

	// Core 1 streams far more than the whole LLC, evicting core 0's line.
	wash := space.Alloc("wash", cfg.LLC.Size*4)
	for off := uint64(0); off < wash.Size; off += memory.LineSize {
		m.Access(1, wash.Addr(off), false)
	}

	if lvl := m.Access(0, line.Base, false); lvl != DRAM {
		t.Errorf("after LLC eviction access = %v, want DRAM (inclusive back-invalidate)", lvl)
	}
}

// TestNonInclusiveKeepsPrivateCopies is the ablation contrast to the
// test above.
func TestNonInclusiveKeepsPrivateCopies(t *testing.T) {
	cfg := testConfig()
	cfg.InclusiveLLC = false
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()

	line := space.Alloc("one", memory.LineSize)
	m.Access(0, line.Base, false)
	wash := space.Alloc("wash", cfg.LLC.Size*4)
	for off := uint64(0); off < wash.Size; off += memory.LineSize {
		m.Access(1, wash.Addr(off), false)
	}
	if lvl := m.Access(0, line.Base, false); lvl != L1 {
		t.Errorf("non-inclusive access = %v, want L1", lvl)
	}
}

// TestPrefetcherHidesStreamLatency verifies that a sequential stream
// mostly avoids DRAM-latency stalls once the stride detector arms,
// while random accesses see no benefit.
func TestPrefetcherHidesStreamLatency(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchDepth = 16
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()
	data := space.Alloc("stream", 1<<20)

	var demandDRAM int
	for off := uint64(0); off < data.Size; off += memory.LineSize {
		if lvl := m.Access(0, data.Addr(off), false); lvl == DRAM {
			demandDRAM++
		}
	}
	lines := int(data.Size / memory.LineSize)
	if demandDRAM > lines/10 {
		t.Errorf("prefetched stream still had %d/%d demand DRAM accesses", demandDRAM, lines)
	}
	if got := m.Stats(0).PrefetchIssued; got == 0 {
		t.Error("no prefetches issued")
	}
}

// TestPrefetchConsumesBandwidth verifies prefetches are not free: the
// DRAM server time advances for each prefetched line, so a stream is
// bandwidth-bound, not latency-bound.
func TestPrefetchConsumesBandwidth(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchDepth = 16
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()
	data := space.Alloc("stream", 4<<20)

	for off := uint64(0); off < data.Size; off += memory.LineSize {
		m.Access(0, data.Addr(off), false)
	}
	elapsed := m.Seconds(m.Now(0))
	gbs := float64(data.Size) / elapsed / 1e9
	// Must not exceed the configured 32 GB/s (allowing rounding), and a
	// healthy stream should reach at least a third of it.
	// A single core is latency-limited to roughly line size / L2 hit
	// latency (~10.6 GB/s here), like a real single-threaded stream.
	if gbs > 33 {
		t.Errorf("stream bandwidth %.1f GB/s exceeds DRAM limit", gbs)
	}
	if gbs < 7 {
		t.Errorf("stream bandwidth %.1f GB/s suspiciously low", gbs)
	}
}

// TestBandwidthContention verifies the shared line server: two
// concurrent streams each get roughly half the bandwidth of one.
func TestBandwidthContention(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchDepth = 16
	// Shrink the DRAM budget below twice the single-stream demand so
	// two streams must contend.
	cfg.DRAMBandwidth = 8e9
	run := func(streams int) float64 {
		m := newTestMachine(t, cfg)
		space := memory.NewSpace()
		regions := make([]memory.Region, streams)
		for i := range regions {
			regions[i] = space.Alloc("s", 2<<20)
		}
		offs := make([]uint64, streams)
		done := 0
		for done < streams {
			done = 0
			// Advance the stream whose core clock is lowest, mimicking
			// the engine's time-ordered interleave.
			minCore, minT := -1, int64(0)
			for c := 0; c < streams; c++ {
				if offs[c] >= regions[c].Size {
					done++
					continue
				}
				if minCore < 0 || m.Now(c) < minT {
					minCore, minT = c, m.Now(c)
				}
			}
			if minCore < 0 {
				break
			}
			m.Access(minCore, regions[minCore].Addr(offs[minCore]), false)
			offs[minCore] += memory.LineSize
		}
		// Per-stream bandwidth.
		var worst float64
		for c := 0; c < streams; c++ {
			bw := float64(regions[c].Size) / m.Seconds(m.Now(c))
			if worst == 0 || bw < worst {
				worst = bw
			}
		}
		return worst
	}
	solo := run(1)
	duo := run(2)
	if duo > 0.75*solo {
		t.Errorf("two streams: per-stream bandwidth %.1f GB/s vs solo %.1f GB/s — no contention modelled",
			duo/1e9, solo/1e9)
	}
	if duo < 0.25*solo {
		t.Errorf("two streams starved: %.1f GB/s vs solo %.1f GB/s", duo/1e9, solo/1e9)
	}
}

func TestDirtyWritebackCounted(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg)
	space := memory.NewSpace()
	data := space.Alloc("w", cfg.LLC.Size*2)
	// Write everything once (allocate + dirty), then stream reads over
	// fresh lines to force dirty evictions.
	for off := uint64(0); off < data.Size; off += memory.LineSize {
		m.Access(0, data.Addr(off), true)
	}
	if got := m.TotalStats().Writebacks; got == 0 {
		t.Error("dirty evictions produced no writebacks")
	}
}

func TestStatsDeltaAndRatios(t *testing.T) {
	m := newTestMachine(t, testConfig())
	a := memory.Addr(memory.PageSize)
	m.Access(0, a, false) // DRAM
	snap := m.Stats(0)
	m.Access(0, a, false) // L1
	m.Access(1, a, false) // LLC hit
	d := m.Stats(0).Sub(snap)
	if d.L1Hits != 1 || d.LLCMisses != 0 {
		t.Errorf("delta = %+v", d)
	}
	tot := m.TotalStats()
	if tot.LLCAccesses() != 2 { // 1 miss (core 0) + 1 hit (core 1)
		t.Errorf("LLC accesses = %d, want 2", tot.LLCAccesses())
	}
	if r := tot.LLCHitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", r)
	}
	if mpi := tot.LLCMissesPerInstruction(); mpi <= 0 {
		t.Errorf("MPI = %v, want > 0", mpi)
	}
	var zero CoreStats
	if zero.LLCHitRatio() != 0 || zero.LLCMissesPerInstruction() != 0 {
		t.Error("zero stats should yield zero ratios")
	}
}

func TestFlushAndReset(t *testing.T) {
	m := newTestMachine(t, testConfig())
	a := memory.Addr(memory.PageSize)
	m.Access(0, a, false)
	m.Flush()
	if lvl := m.Access(0, a, false); lvl != DRAM {
		t.Errorf("after flush access = %v, want DRAM", lvl)
	}
	m.Reset()
	if m.Now(0) != 0 || m.Stats(0).Reads != 0 {
		t.Error("Reset did not clear clocks/stats")
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{L1: "L1", L2: "L2", LLC: "LLC", DRAM: "DRAM"} {
		if got := lvl.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lvl, got, want)
		}
	}
	if got := Level(9).String(); got != "Level(9)" {
		t.Errorf("unknown level = %q", got)
	}
}

func TestMaxNow(t *testing.T) {
	m := newTestMachine(t, testConfig())
	m.AdvanceTo(2, 777)
	if got := m.MaxNow(); got != 777 {
		t.Errorf("MaxNow = %d, want 777", got)
	}
}
