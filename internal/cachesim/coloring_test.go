package cachesim

import (
	"testing"

	"cachepart/internal/memory"
)

// TestPageColoringContainsPollution verifies the software baseline:
// confining the polluter's data to 10% of the page colors protects a
// victim working set in the remaining sets, comparably to a CAT mask —
// the contrast the paper draws in Section V-A.
func TestPageColoringContainsPollution(t *testing.T) {
	cfg := testConfig()
	cfg.LLC = Geometry{Size: 1 << 20, Ways: 16} // 1024 sets -> 16 colors
	numColors := memory.NumColors(cfg.LLC.Sets())
	if numColors != 16 {
		t.Fatalf("colors = %d, want 16", numColors)
	}

	run := func(colored bool) (victimMisses uint64) {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		space := memory.NewSpace()
		// Victim working set on the colors the polluter avoids.
		hot, err := space.AllocColored("hot", cfg.LLC.Size/4,
			[]int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, numColors)
		if err != nil {
			t.Fatal(err)
		}

		// Polluter data: colored into 2 of 16 colors, or plain.
		var polluterAddr func(off uint64) memory.Addr
		streamSize := cfg.LLC.Size * 8
		if colored {
			cr, err := space.AllocColored("stream", streamSize, []int{0, 1}, numColors)
			if err != nil {
				t.Fatal(err)
			}
			polluterAddr = cr.Addr
		} else {
			r := space.Alloc("stream", streamSize)
			polluterAddr = r.Addr
		}

		// Warm the victim.
		for off := uint64(0); off < hot.Size(); off += memory.LineSize {
			m.Access(0, hot.Addr(off), false)
		}
		// Interleave victim loops with the polluter's stream.
		var streamOff uint64
		before := m.Stats(0).LLCMisses
		for round := 0; round < 3; round++ {
			for off := uint64(0); off < hot.Size(); off += memory.LineSize {
				m.Access(0, hot.Addr(off), false)
				for k := 0; k < 4; k++ {
					m.Access(1, polluterAddr(streamOff), false)
					streamOff = (streamOff + memory.LineSize) % streamSize
				}
			}
		}
		return m.Stats(0).LLCMisses - before
	}

	plain := run(false)
	colored := run(true)
	if plain == 0 {
		t.Fatal("expected pollution without coloring")
	}
	if colored*5 > plain {
		t.Errorf("page coloring should contain most pollution: %d -> %d victim misses",
			plain, colored)
	}
}
