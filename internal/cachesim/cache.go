package cachesim

import "cachepart/internal/cat"

// entry is one cache line slot.
type entry struct {
	tag   uint64 // line number + 1; 0 means invalid
	ready int64  // tick at which the fill completes (prefetch in flight)
	lru   uint32 // last-use stamp
	dirty bool
	// clos records, for LLC entries, the class of service of the core
	// that filled the line — the RMID-style tag Cache Monitoring
	// Technology attributes occupancy with.
	clos uint8
	// owners is used only in the shared LLC: a bitmask of cores that
	// pulled the line into their private caches since the fill, so an
	// inclusive back-invalidation only has to visit those cores.
	owners uint32
}

// cache is one set-associative cache. It stores no data, only tags and
// replacement state; the caller interprets hits and misses.
type cache struct {
	sets    int
	ways    int
	entries []entry // sets*ways, way-major within a set
	stamp   uint32
}

func newCache(g Geometry) cache {
	return cache{
		sets:    g.Sets(),
		ways:    g.Ways,
		entries: make([]entry, g.Sets()*g.Ways),
	}
}

func (c *cache) setIndex(line uint64) int {
	return int(line % uint64(c.sets))
}

// lookup finds the line. On a hit it refreshes the LRU stamp and
// returns the entry. The tag convention stores line+1 so a zero entry
// is invalid.
func (c *cache) lookup(line uint64) *entry {
	base := c.setIndex(line) * c.ways
	tag := line + 1
	set := c.entries[base : base+c.ways]
	for i := range set {
		if set[i].tag == tag {
			c.stamp++
			set[i].lru = c.stamp
			return &set[i]
		}
	}
	return nil
}

// peek is lookup without touching replacement state.
func (c *cache) peek(line uint64) *entry {
	base := c.setIndex(line) * c.ways
	tag := line + 1
	set := c.entries[base : base+c.ways]
	for i := range set {
		if set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// fill inserts the line, evicting the LRU way. It returns the evicted
// entry by value (tag 0 if the victim way was invalid) so the caller
// can handle writebacks and inclusive invalidations.
func (c *cache) fill(line uint64, ready int64) (victim entry, slot *entry) {
	base := c.setIndex(line) * c.ways
	set := c.entries[base : base+c.ways]
	vi := 0
	for i := range set {
		if set[i].tag == 0 {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim = set[vi]
	c.stamp++
	set[vi] = entry{tag: line + 1, ready: ready, lru: c.stamp}
	return victim, &set[vi]
}

// fillMasked inserts the line choosing the victim only among the ways
// allowed by the CAT capacity mask, which is how Cache Allocation
// Technology restricts fills. Bit i of the mask corresponds to way i.
func (c *cache) fillMasked(line uint64, ready int64, mask cat.WayMask) (victim entry, slot *entry) {
	base := c.setIndex(line) * c.ways
	set := c.entries[base : base+c.ways]
	vi := -1
	for i := range set {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if set[i].tag == 0 {
			vi = i
			break
		}
		if vi < 0 || set[i].lru < set[vi].lru {
			vi = i
		}
	}
	if vi < 0 {
		// An empty mask cannot be programmed through cat.Registers;
		// fall back to unrestricted replacement defensively.
		return c.fill(line, ready)
	}
	victim = set[vi]
	c.stamp++
	set[vi] = entry{tag: line + 1, ready: ready, lru: c.stamp}
	return victim, &set[vi]
}

// invalidate drops the line if present, returning whether it was dirty.
func (c *cache) invalidate(line uint64) (present, dirty bool) {
	if e := c.peek(line); e != nil {
		dirty = e.dirty
		*e = entry{}
		return true, dirty
	}
	return false, false
}

// flush invalidates every line.
func (c *cache) flush() {
	clear(c.entries)
	c.stamp = 0
}

// occupancy counts valid lines, optionally restricted to lines within
// [loLine, hiLine). Used by tests and diagnostics.
func (c *cache) occupancy(loLine, hiLine uint64) int {
	n := 0
	for i := range c.entries {
		t := c.entries[i].tag
		if t == 0 {
			continue
		}
		line := t - 1
		if line >= loLine && line < hiLine {
			n++
		}
	}
	return n
}
