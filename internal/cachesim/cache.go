package cachesim

import "cachepart/internal/cat"

// entry is one cache line slot, packed to 24 bytes so a set scan stays
// within as few cache lines of the *host* as possible. The tag word
// carries the line number plus the two small per-line attributes:
//
//	bits  0..55  line number + 1; 0 means invalid
//	bits 56..62  CLOS of the filling core (LLC only, CMT attribution)
//	bit  63      dirty
//
// 56 bits of line number cover 2^62 bytes of address space, far beyond
// what the bump allocator can hand out.
//
//conc:shared per-core sharded: workers touch only entries of their own l1[core]/l2[core]; the shared LLC's entries are frozen during an epoch
type entry struct {
	tag   uint64
	ready int64 // tick at which the fill completes (prefetch in flight)
	lru   uint32
	// owners is used only in the shared LLC: a bitmask of cores that
	// pulled the line into their private caches since the fill, so an
	// inclusive back-invalidation only has to visit those cores.
	owners uint32
}

const (
	tagLineBits  = 56
	tagLineMask  = uint64(1)<<tagLineBits - 1
	tagCLOSShift = tagLineBits
	tagCLOSMask  = uint64(0x7f) << tagCLOSShift
	tagDirtyBit  = uint64(1) << 63

	// MaxCLOS is the widest class-of-service id the packed entry tag
	// can attribute occupancy to.
	MaxCLOS = 128
)

func (e entry) valid() bool  { return e.tag&tagLineMask != 0 }
func (e entry) line() uint64 { return e.tag&tagLineMask - 1 }
func (e entry) dirty() bool  { return e.tag&tagDirtyBit != 0 }
func (e entry) clos() uint8  { return uint8(e.tag >> tagCLOSShift & 0x7f) }

func (e *entry) setDirty()       { e.tag |= tagDirtyBit }
func (e *entry) setCLOS(c uint8) { e.tag = e.tag&^tagCLOSMask | uint64(c)<<tagCLOSShift }

// cache is one set-associative cache. It stores no data, only tags and
// replacement state; the caller interprets hits and misses.
//
//conc:shared per-core sharded: l1[core]/l2[core] belong to the owning worker; the shared LLC is only peeked between barriers and mutated at the merge
type cache struct {
	sets    int
	ways    int
	mask    uint64 // sets-1 when sets is a power of two
	pow2    bool
	entries []entry // sets*ways, way-major within a set
	stamp   uint32
}

func newCache(g Geometry) cache {
	sets := g.Sets()
	return cache{
		sets:    sets,
		ways:    g.Ways,
		mask:    uint64(sets - 1),
		pow2:    sets&(sets-1) == 0,
		entries: make([]entry, sets*g.Ways),
	}
}

// setIndex maps a line to its set. Private caches have power-of-two set
// counts, so the common path is a single AND; the shared LLC at some
// scales (e.g. 45056 sets) needs the modulo fallback.
func (c *cache) setIndex(line uint64) int {
	if c.pow2 {
		return int(line & c.mask)
	}
	return int(line % uint64(c.sets))
}

// lookup finds the line. On a hit it refreshes the LRU stamp and
// returns the entry. The tag convention stores line+1 so a zero entry
// is invalid; flag bits are masked off before comparing.
func (c *cache) lookup(line uint64) *entry {
	base := c.setIndex(line) * c.ways
	tag := line + 1
	set := c.entries[base : base+c.ways]
	for i := range set {
		if set[i].tag&tagLineMask == tag {
			c.stamp++
			set[i].lru = c.stamp
			return &set[i]
		}
	}
	return nil
}

// peek is lookup without touching replacement state.
func (c *cache) peek(line uint64) *entry {
	base := c.setIndex(line) * c.ways
	tag := line + 1
	set := c.entries[base : base+c.ways]
	for i := range set {
		if set[i].tag&tagLineMask == tag {
			return &set[i]
		}
	}
	return nil
}

// fill inserts the line, evicting the LRU way. It returns the evicted
// entry by value (invalid if the victim way was empty) so the caller
// can handle writebacks and inclusive invalidations.
func (c *cache) fill(line uint64, ready int64) (victim entry, slot *entry) {
	base := c.setIndex(line) * c.ways
	set := c.entries[base : base+c.ways]
	vi := 0
	for i := range set {
		if set[i].tag == 0 {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim = set[vi]
	c.stamp++
	set[vi] = entry{tag: line + 1, ready: ready, lru: c.stamp}
	return victim, &set[vi]
}

// fillMasked inserts the line choosing the victim only among the ways
// allowed by the CAT capacity mask, which is how Cache Allocation
// Technology restricts fills. Bit i of the mask corresponds to way i.
func (c *cache) fillMasked(line uint64, ready int64, mask cat.WayMask) (victim entry, slot *entry) {
	base := c.setIndex(line) * c.ways
	set := c.entries[base : base+c.ways]
	vi := -1
	for i := range set {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if set[i].tag == 0 {
			vi = i
			break
		}
		if vi < 0 || set[i].lru < set[vi].lru {
			vi = i
		}
	}
	if vi < 0 {
		// An empty mask cannot be programmed through cat.Registers;
		// fall back to unrestricted replacement defensively.
		return c.fill(line, ready)
	}
	victim = set[vi]
	c.stamp++
	set[vi] = entry{tag: line + 1, ready: ready, lru: c.stamp}
	return victim, &set[vi]
}

// invalidate drops the line if present, returning whether it was dirty.
func (c *cache) invalidate(line uint64) (present, dirty bool) {
	if e := c.peek(line); e != nil {
		dirty = e.dirty()
		*e = entry{}
		return true, dirty
	}
	return false, false
}

// flush invalidates every line.
func (c *cache) flush() {
	clear(c.entries)
	c.stamp = 0
}

// occupancy counts valid lines, optionally restricted to lines within
// [loLine, hiLine). Used by tests and diagnostics.
func (c *cache) occupancy(loLine, hiLine uint64) int {
	n := 0
	for i := range c.entries {
		if !c.entries[i].valid() {
			continue
		}
		line := c.entries[i].line()
		if line >= loLine && line < hiLine {
			n++
		}
	}
	return n
}
