package cachesim

import (
	"strings"
	"testing"

	"cachepart/internal/memory"
)

func TestCSVTracerRecordsAccesses(t *testing.T) {
	m := newTestMachine(t, testConfig())
	var sb strings.Builder
	tr := NewCSVTracer(&sb, 0)
	m.SetTracer(tr)

	a := memory.Addr(memory.PageSize)
	m.Access(0, a, false) // DRAM
	m.Access(0, a, true)  // L1
	m.Access(1, a, false) // LLC
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 3 {
		t.Fatalf("events = %d", tr.Events())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	for _, want := range []string{"r,DRAM", "w,L1", "r,LLC"} {
		found := false
		for _, l := range lines {
			if strings.HasSuffix(l, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no trace line ending %q in %v", want, lines)
		}
	}

	// Removing the tracer stops recording.
	m.SetTracer(nil)
	m.Access(0, a, false)
	if tr.Events() != 3 {
		t.Error("tracer still recording after removal")
	}
}

func TestCSVTracerCap(t *testing.T) {
	m := newTestMachine(t, testConfig())
	var sb strings.Builder
	tr := NewCSVTracer(&sb, 2)
	m.SetTracer(tr)
	for i := 0; i < 10; i++ {
		m.Access(0, memory.Addr(memory.PageSize+i*memory.LineSize), false)
	}
	if tr.Events() != 2 {
		t.Errorf("capped events = %d, want 2", tr.Events())
	}
}
