package cachesim

import (
	"testing"

	"cachepart/internal/memory"
)

// TestCMTOccupancyTracksFills verifies the Cache Monitoring Technology
// model: per-CLOS occupancy follows fills and evictions, and a
// way-masked CLOS can never occupy more than its share.
func TestCMTOccupancyTracksFills(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	space := memory.NewSpace()

	// Everything starts in CLOS 0.
	small := space.Alloc("small", 8<<10)
	for off := uint64(0); off < small.Size; off += memory.LineSize {
		m.Access(0, small.Addr(off), false)
	}
	if got := m.LLCOccupancyOfCLOS(0); got != small.Size {
		t.Errorf("CLOS 0 occupancy = %d, want %d", got, small.Size)
	}
	if got := m.LLCOccupancyOfCLOS(1); got != 0 {
		t.Errorf("CLOS 1 occupancy = %d, want 0", got)
	}

	// Move core 1 into CLOS 1 with a 2-of-16-way mask and stream far
	// more than the LLC: its occupancy saturates at its share.
	if err := m.CAT().SetMask(1, 0x3); err != nil {
		t.Fatal(err)
	}
	if err := m.CAT().Associate(1, 1); err != nil {
		t.Fatal(err)
	}
	big := space.Alloc("big", cfg.LLC.Size*4)
	for off := uint64(0); off < big.Size; off += memory.LineSize {
		m.Access(1, big.Addr(off), false)
	}
	share := cfg.LLC.Size * 2 / uint64(cfg.LLC.Ways)
	if got := m.LLCOccupancyOfCLOS(1); got > share {
		t.Errorf("masked CLOS occupies %d bytes, share is %d", got, share)
	}
	if got := m.LLCOccupancyOfCLOS(1); got < share/2 {
		t.Errorf("masked CLOS occupies %d bytes, suspiciously few", got)
	}

	// Total occupancy never exceeds the LLC.
	var total uint64
	for clos := 0; clos < cfg.NumCLOS; clos++ {
		total += m.LLCOccupancyOfCLOS(clos)
	}
	if total > cfg.LLC.Size {
		t.Errorf("total occupancy %d exceeds LLC %d", total, cfg.LLC.Size)
	}

	// Memory traffic accumulated for both classes.
	if m.MemTrafficOfCLOS(0) == 0 || m.MemTrafficOfCLOS(1) == 0 {
		t.Error("memory traffic not attributed")
	}

	// Flush zeroes occupancy but keeps cumulative traffic.
	traffic := m.MemTrafficOfCLOS(1)
	m.Flush()
	if m.LLCOccupancyOfCLOS(0) != 0 || m.LLCOccupancyOfCLOS(1) != 0 {
		t.Error("Flush left occupancy")
	}
	if m.MemTrafficOfCLOS(1) != traffic {
		t.Error("Flush cleared cumulative traffic")
	}
	// Reset clears traffic too.
	m.Reset()
	if m.MemTrafficOfCLOS(1) != 0 {
		t.Error("Reset left traffic")
	}

	// Out-of-range CLOS reads are zero, not panics.
	if m.LLCOccupancyOfCLOS(-1) != 0 || m.LLCOccupancyOfCLOS(99) != 0 {
		t.Error("out-of-range CLOS not zero")
	}
	if m.MemTrafficOfCLOS(-1) != 0 || m.MemTrafficOfCLOS(99) != 0 {
		t.Error("out-of-range CLOS traffic not zero")
	}
}
