package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotalloc rejects heap allocation on the hot path. The simulator's
// per-access cost budget (DESIGN.md §12) is "0 allocs/op in steady
// state": one escaping value per Access turns into millions of
// garbage objects per simulated second and dominates the very path
// ROADMAP #3 wants 10× faster. The analyzer flags allocation sites
// that execute unconditionally in hot functions — guarded branches
// (error paths, amortized growth) are deliberately exempt, because the
// budget is about the steady state, not the rare slow path.
//
// Detected allocation shapes: make/new, slice and map literals,
// address-of composite literals, non-constant string concatenation,
// fmt-style boxing of non-pointer values into interface parameters,
// per-iteration append growth on locals, and closures created inside
// loops. Each function also gets an interprocedural summary ("calling
// this allocates, because ...") propagated bottom-up over the SCC
// order, so a hot function calling an allocating helper in another
// package is reported at the call site even when the helper itself is
// outside the analyzed set.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Tier:      TierPerf,
	Doc:       "no unconditional heap allocation in //perf:hot code: make/new, composite literals, string building, interface boxing, per-iteration append growth, closures in loops",
	RunModule: runHotAlloc,
}

// allocFinding is one allocation site in a function body.
type allocFinding struct {
	pos    token.Pos
	reason string
	// loopOnly marks shapes (append growth, closures) reported only
	// when the site sits inside a loop; they are amortized or one-shot
	// otherwise.
	loopOnly bool
	inLoop   bool
}

// allocCall is one unconditional resolved call site, the edge alloc
// summaries propagate over.
type allocCall struct {
	pos    token.Pos
	callee *FuncNode
}

// allocFacts is the per-function walk result shared by the summary
// fixpoint and the reporting pass.
type allocFacts struct {
	allocs []allocFinding
	calls  []allocCall
}

func runHotAlloc(p *ModulePass) {
	// Walk every program function once — dependencies included, their
	// summaries are what makes cross-package reporting work.
	facts := make(map[*FuncNode]*allocFacts, len(p.Prog.Funcs))
	for _, fn := range p.Prog.Funcs {
		facts[fn] = collectAllocFacts(p.Prog, fn)
	}

	// Summary fixpoint: a function "allocates per call" when its body
	// holds an unconditional non-loopOnly allocation, or it
	// unconditionally calls a function that does. Monotone: the reason
	// is set once and never changes.
	sums := make(map[*FuncNode]string)
	p.Prog.fixpoint(func(fn *FuncNode) bool {
		if sums[fn] != "" {
			return false
		}
		f := facts[fn]
		for _, a := range f.allocs {
			if !a.loopOnly {
				sums[fn] = a.reason
				return true
			}
		}
		for _, c := range f.calls {
			if s := sums[c.callee]; s != "" {
				sums[fn] = viaChain(s, hotFuncName(c.callee))
				return true
			}
		}
		return false
	})

	forEachHotFunc(p, func(fn *FuncNode, info hotInfo) {
		f := facts[fn]
		for _, a := range f.allocs {
			if a.loopOnly && !a.inLoop {
				continue
			}
			reportHot(p, fn, info, a.pos, "%s", a.reason)
		}
		// Cross-package edge: the callee's own allocation site is
		// outside the reporting set, so the call here is the only place
		// to surface it. Analyzed callees report at their alloc site
		// directly (they are hot by propagation).
		for _, c := range f.calls {
			if s := sums[c.callee]; s != "" && !p.analyzed(c.callee) {
				reportHot(p, fn, info, c.pos, "call to %s allocates: %s", hotFuncName(c.callee), s)
			}
		}
	})
}

// collectAllocFacts walks one body recording unconditional allocation
// sites and unconditional resolved calls. Conditional code is skipped
// wholesale: the steady-state budget does not cover guarded paths.
func collectAllocFacts(prog *Program, fn *FuncNode) *allocFacts {
	f := &allocFacts{}
	info := fn.Pkg.Info
	w := &hotWalker{visit: func(n ast.Node, inLoop, cond bool) {
		if cond {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := isConversion(info, n); ok {
				return
			}
			switch obj := calleeObj(info, n).(type) {
			case *types.Builtin:
				switch obj.Name() {
				case "make":
					f.allocs = append(f.allocs, allocFinding{pos: n.Pos(), reason: "make allocates on every execution; hoist to construction and reuse", inLoop: inLoop})
				case "new":
					f.allocs = append(f.allocs, allocFinding{pos: n.Pos(), reason: "new allocates on every execution; hoist to construction and reuse", inLoop: inLoop})
				}
				return
			case *types.Func:
				if callee := prog.NodeOf(obj); callee != nil {
					f.calls = append(f.calls, allocCall{pos: n.Pos(), callee: callee})
				}
			}
			f.allocs = append(f.allocs, boxedArgs(info, n, inLoop)...)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				f.allocs = append(f.allocs, allocFinding{pos: n.Pos(), reason: "slice literal allocates; hoist to construction or use a fixed array", inLoop: inLoop})
			case *types.Map:
				f.allocs = append(f.allocs, allocFinding{pos: n.Pos(), reason: "map literal allocates; hoist to construction", inLoop: inLoop})
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					f.allocs = append(f.allocs, allocFinding{pos: n.Pos(), reason: "address of composite literal escapes to the heap; reuse a preallocated value", inLoop: inLoop})
				}
			}
		case *ast.BinaryExpr:
			if stringConcat(info, n) {
				f.allocs = append(f.allocs, allocFinding{pos: n.Pos(), reason: "string concatenation allocates; precompute or use a reused buffer", inLoop: inLoop})
			}
		case *ast.AssignStmt:
			for _, pos := range appendGrowth(info, n) {
				f.allocs = append(f.allocs, allocFinding{pos: pos, reason: "append to a local without preallocation grows per iteration; size the slice up front or reuse capacity", loopOnly: true, inLoop: inLoop})
			}
		case *ast.FuncLit:
			f.allocs = append(f.allocs, allocFinding{pos: n.Pos(), reason: "closure allocated per iteration; hoist the function value out of the loop", loopOnly: true, inLoop: inLoop})
		}
	}}
	w.walkBody(fn.Decl.Body)
	return f
}

// stringConcat reports a non-constant string + at the innermost link of
// a concatenation chain (flagging only the innermost keeps one report
// per chain).
func stringConcat(info *types.Info, n *ast.BinaryExpr) bool {
	if n.Op != token.ADD {
		return false
	}
	tv, ok := info.Types[n]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	for _, operand := range []ast.Expr{n.X, n.Y} {
		if inner, ok := ast.Unparen(operand).(*ast.BinaryExpr); ok && stringConcat(info, inner) {
			return false
		}
	}
	return true
}

// boxedArgs flags concrete non-pointer-shaped arguments passed to
// interface parameters: the value is copied to the heap to fit behind
// the interface word. Pointer-shaped values (pointers, maps, channels,
// functions) box without allocating and pass clean.
func boxedArgs(info *types.Info, call *ast.CallExpr, inLoop bool) []allocFinding {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	var out []allocFinding
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if basic, ok := at.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
			continue
		}
		out = append(out, allocFinding{pos: arg.Pos(), reason: "argument boxed into interface parameter allocates; keep the hot signature concrete", inLoop: inLoop})
	}
	return out
}

// appendGrowth returns the positions of `x = append(x, ...)` growth on
// plain local identifiers. Appends through fields (reused event
// buffers) and self-resetting `append(x[:0], ...)` idioms are
// amortized-zero and pass clean.
func appendGrowth(info *types.Info, assign *ast.AssignStmt) []token.Pos {
	var out []token.Pos
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		builtin, ok := calleeObj(info, call).(*types.Builtin)
		if !ok || builtin.Name() != "append" {
			continue
		}
		if i >= len(assign.Lhs) && len(assign.Lhs) != 1 {
			continue
		}
		lhs := assign.Lhs[0]
		if len(assign.Lhs) > i {
			lhs = assign.Lhs[i]
		}
		ident, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if _, ok := info.ObjectOf(ident).(*types.Var); !ok {
			continue
		}
		if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
			continue
		}
		out = append(out, call.Pos())
	}
	return out
}
