package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file builds the shared interprocedural infrastructure the
// module-level analyzers (taintflow, timeunits, lockorder) run on: a
// static call graph over the analyzed packages plus every
// module-internal package they transitively import, and its strongly
// connected components in bottom-up (callee-before-caller) order, so
// per-function summaries can be computed to fixpoint one SCC at a
// time, as in compositional analyzers like Infer.
//
// Resolution is purely static: an edge exists when a call expression's
// callee resolves (through go/types) to a function or method declared
// with a body somewhere in the program. Interface dispatch, function
// values, and method values therefore have no out-edges — a documented
// soundness caveat (DESIGN.md §9). Calls inside function literals are
// attributed to the enclosing declaration.

// FuncNode is one declared function or method of the program.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the statically resolved calls of the body (function
	// literals included), in source order.
	Calls []Call

	// Tarjan scratch state.
	index, lowlink int
	onStack        bool
}

// Call is one resolved call site.
type Call struct {
	Site   *ast.CallExpr
	Callee *FuncNode
}

// QualifiedName renders the node as "pkgpath.Name" or
// "pkgpath.Recv.Name" for methods.
func (n *FuncNode) QualifiedName() string { return funcQualified(n.Obj) }

// funcQualified renders a function object as "pkgpath.Name", with the
// receiver's base type name spliced in for methods.
func funcQualified(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() == nil {
		return name
	}
	return fn.Pkg().Path() + "." + name
}

// Program is the interprocedural view shared by the module analyzers.
type Program struct {
	// Pkgs is the closure of the analyzed packages over module-internal
	// imports, sorted by import path.
	Pkgs []*Package
	// Funcs lists every declared function with a body, in (package
	// path, file, position) order — the deterministic iteration order
	// every analyzer uses.
	Funcs []*FuncNode
	// SCCs partitions Funcs into strongly connected components of the
	// call graph, bottom-up: each component appears after every
	// component it calls into.
	SCCs [][]*FuncNode

	byObj map[*types.Func]*FuncNode
	// hot memoizes the //perf:hot reachability set shared by the
	// performance-tier analyzers (hotness.go); module analyzers run
	// serially, so the lazy fill is race-free.
	hot map[*FuncNode]hotInfo
	// conc memoizes the //conc:shared///conc:barrier directive view
	// shared by the concurrency-tier analyzers (conc.go).
	conc *concInfo
	// impls memoizes class-hierarchy resolution of interface methods to
	// their declared implementations (conc.go), the conc tier's closure
	// of the interface-dispatch call-graph gap.
	impls map[*types.Func][]*FuncNode
}

// NodeOf returns the program node of a function object, nil when the
// object is not a declared module function with a body.
func (prog *Program) NodeOf(obj types.Object) *FuncNode {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return prog.byObj[fn]
}

// buildProgram assembles the call graph over pkgs and every
// module-internal package they transitively import. Dependencies are
// already memoized in the loader from type-checking, so no new parsing
// happens here.
func buildProgram(loader *Loader, pkgs []*Package) *Program {
	closure := make(map[string]*Package)
	var queue []*Package
	add := func(p *Package) {
		if p != nil && closure[p.Path] == nil {
			closure[p.Path] = p
			queue = append(queue, p)
		}
	}
	for _, p := range pkgs {
		add(p)
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == loader.Module || strings.HasPrefix(path, loader.Module+"/") {
					add(loader.pkgs[path])
				}
			}
		}
	}

	prog := &Program{byObj: make(map[*types.Func]*FuncNode)}
	paths := make([]string, 0, len(closure))
	for path := range closure {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		prog.Pkgs = append(prog.Pkgs, closure[path])
	}

	// Pass 1: nodes. Files come from parseDir in directory order, and
	// declarations are visited in source order, so Funcs is
	// deterministic without further sorting.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				prog.byObj[obj] = node
				prog.Funcs = append(prog.Funcs, node)
			}
		}
	}

	// Pass 2: edges.
	for _, node := range prog.Funcs {
		info := node.Pkg.Info
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := prog.NodeOf(calleeObj(info, call)); callee != nil {
				node.Calls = append(node.Calls, Call{Site: call, Callee: callee})
			}
			return true
		})
	}

	prog.computeSCCs()
	return prog
}

// computeSCCs runs Tarjan's algorithm over the call graph. Tarjan
// emits components in reverse topological order of the condensation —
// sinks (pure callees) first — which is exactly the bottom-up order
// the summary fixpoint wants.
func (prog *Program) computeSCCs() {
	for _, n := range prog.Funcs {
		n.index = 0
	}
	var (
		counter int
		stack   []*FuncNode
		visit   func(n *FuncNode)
	)
	visit = func(n *FuncNode) {
		counter++
		n.index, n.lowlink = counter, counter
		stack = append(stack, n)
		n.onStack = true
		for _, c := range n.Calls {
			m := c.Callee
			if m.index == 0 {
				visit(m)
				n.lowlink = min(n.lowlink, m.lowlink)
			} else if m.onStack {
				n.lowlink = min(n.lowlink, m.index)
			}
		}
		if n.lowlink == n.index {
			var scc []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			// Members in discovery order reversed; restore source order
			// within the component for deterministic iteration.
			sort.Slice(scc, func(i, j int) bool { return scc[i].index < scc[j].index })
			prog.SCCs = append(prog.SCCs, scc)
		}
	}
	for _, n := range prog.Funcs {
		if n.index == 0 {
			visit(n)
		}
	}
}
