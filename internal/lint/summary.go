package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The module analyzers are summary-based: each computes one small fact
// record per function (what taint a result carries, which domain a
// parameter is demanded in, which locks a call may acquire) and
// reaches a module-wide fixpoint by iterating each call-graph SCC
// until its members' summaries stop changing. Summaries must be
// monotone — facts only accumulate — so the iteration terminates; the
// cap below is a safety net, never the expected exit.

// fixpointCap bounds the iterations spent on one SCC. Lattices here
// are tiny (bitmasks, three-valued domains, lock-name sets), so real
// convergence takes a handful of rounds; hitting the cap would mean a
// non-monotone transfer function, and stopping early is still sound
// for reporting (facts computed so far remain true).
const fixpointCap = 64

// fixpoint drives transfer over every function bottom-up. transfer
// returns whether the function's summary changed; each SCC is
// re-iterated until a full round reports no change.
func (prog *Program) fixpoint(transfer func(*FuncNode) bool) {
	for _, scc := range prog.SCCs {
		for round := 0; round < fixpointCap; round++ {
			changed := false
			for _, fn := range scc {
				if transfer(fn) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// rootObj resolves the base identifier an lvalue-ish expression reads
// or writes through: selectors, indexing, dereferences, and slicing
// all track back to their root (x.f.g[i] -> x). Returns nil for
// expressions with no identifier root (calls, literals).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Name) roots at the named
			// object, not the package.
			if _, ok := info.ObjectOf(x.Sel).(*types.Var); !ok {
				return info.ObjectOf(x.Sel)
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// typeDefinedUnder reports whether the (possibly pointered) named type
// is declared in a package under any of the prefixes.
func typeDefinedUnder(t types.Type, prefixes []string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return underAny(pkgPathOf(named.Obj()), prefixes)
}

// isConversion reports whether the call expression is a type
// conversion, returning the target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.TypeName); ok {
			return info.TypeOf(call), true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return info.TypeOf(call), true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.InterfaceType, *ast.StructType, *ast.StarExpr:
		return info.TypeOf(call), true
	}
	return nil, false
}

// paramIndexOf returns the position of obj in the function's parameter
// list, or -1. Parameters beyond 64 are untracked (the taint bitmask
// width); no function in this module comes close.
func paramIndexOf(sig *types.Signature, obj types.Object) int {
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// receiverOf returns the method receiver variable of the node, nil for
// plain functions.
func receiverOf(fn *FuncNode) *types.Var {
	return fn.Obj.Type().(*types.Signature).Recv()
}

// viaChain annotates a taint-source description with the helper it was
// laundered through, keeping only the first hop so messages stay
// short: "time.Now (via stamp)".
func viaChain(src, helper string) string {
	if i := strings.Index(src, " (via "); i >= 0 {
		return src
	}
	return src + " (via " + helper + ")"
}
