package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WGBalance checks sync.WaitGroup discipline on all paths, including
// early error returns — the unwind paths the happy-path tests never
// exercise, where an Add without its Wait leaks the spawned
// goroutines, or a skipped Done deadlocks the Wait forever. A summary
// fixpoint tracks Add/Done/Wait effects on *sync.WaitGroup parameters,
// so the rules see through helpers.
//
// Three rules:
//
//   - a return statement between an Add and the Wait that would join
//     it (and no deferred Wait) leaks the goroutines on that path;
//   - a Done inside a spawned goroutine that a return statement can
//     bypass (Done not deferred) deadlocks the Wait;
//   - an Add inside the spawned goroutine itself races the Wait — the
//     Wait can pass before the goroutine has registered.
var WGBalance = &Analyzer{
	Name:      "wgbalance",
	Doc:       "sync.WaitGroup Add/Done/Wait balance on all paths including error returns",
	Tier:      TierConc,
	RunModule: runWGBalance,
}

// wgSum records which *sync.WaitGroup parameters a function
// adds/dones/waits on, as parameter-index bitmasks.
type wgSum struct{ adds, dones, waits uint64 }

func runWGBalance(p *ModulePass) {
	sums := wgSummaries(p.Prog)
	for _, fn := range p.Prog.Funcs {
		if !p.analyzed(fn) || !underAny(fn.Pkg.Path, p.Config.SimPrefixes) {
			continue
		}
		checkWGFunc(p, fn, sums)
	}
}

func wgSummaries(prog *Program) map[*FuncNode]*wgSum {
	sums := make(map[*FuncNode]*wgSum, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		sums[fn] = &wgSum{}
	}
	prog.fixpoint(func(fn *FuncNode) bool {
		info := fn.Pkg.Info
		sig := fn.Obj.Type().(*types.Signature)
		sum := sums[fn]
		before := *sum
		paramBit := func(obj types.Object) (uint64, bool) {
			if obj == nil {
				return 0, false
			}
			if i := paramIndexOf(sig, obj); i >= 0 {
				return 1 << uint(i), true
			}
			return 0, false
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if root, name, ok := waitGroupCall(info, call); ok {
				if bit, ok := paramBit(root); ok {
					switch name {
					case "Add":
						sum.adds |= bit
					case "Done":
						sum.dones |= bit
					case "Wait":
						sum.waits |= bit
					}
				}
				return true
			}
			callee := prog.NodeOf(calleeObj(info, call))
			if callee == nil {
				return true
			}
			csum := sums[callee]
			for ai, arg := range call.Args {
				if ai >= 64 {
					break
				}
				if !isWaitGroupType(info.TypeOf(arg)) {
					continue
				}
				bit, ok := paramBit(rootObj(info, arg))
				if !ok {
					continue
				}
				if csum.adds&(1<<uint(ai)) != 0 {
					sum.adds |= bit
				}
				if csum.dones&(1<<uint(ai)) != 0 {
					sum.dones |= bit
				}
				if csum.waits&(1<<uint(ai)) != 0 {
					sum.waits |= bit
				}
			}
			return true
		})
		return *sum != before
	})
	return sums
}

// wgEvents are the per-root operation positions of one scope.
type wgEvents struct {
	adds, dones, waits, returns []token.Pos
	deferredDones               []token.Pos
	deferredWait                bool
}

func checkWGFunc(p *ModulePass, fn *FuncNode, sums map[*FuncNode]*wgSum) {
	info := fn.Pkg.Info
	body := fn.Decl.Body

	// Scope partition and defer spans, as in chanproto: scope 0 is the
	// coordinator body, scopes 1..n are goroutine-spawned literals.
	var goSpans, deferSpans []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				goSpans = append(goSpans, span{lit.Body.Pos(), lit.Body.End()})
			}
		case *ast.DeferStmt:
			deferSpans = append(deferSpans, span{n.Pos(), n.End()})
		}
		return true
	})
	scopeOf := func(pos token.Pos) int {
		for i, sp := range goSpans {
			if sp.contains(pos) {
				return i + 1
			}
		}
		return 0
	}
	deferred := func(pos token.Pos) bool {
		for _, sp := range deferSpans {
			if sp.contains(pos) {
				return true
			}
		}
		return false
	}

	// Events per (wait group root, scope), roots in first-seen order.
	type scoped map[types.Object]*wgEvents
	scopes := make([]scoped, len(goSpans)+1)
	for i := range scopes {
		scopes[i] = make(scoped)
	}
	var roots []types.Object
	eventsFor := func(root types.Object, pos token.Pos) *wgEvents {
		s := scopes[scopeOf(pos)]
		ev := s[root]
		if ev == nil {
			ev = &wgEvents{}
			s[root] = ev
			seen := false
			for _, r := range roots {
				if r == root {
					seen = true
					break
				}
			}
			if !seen {
				roots = append(roots, root)
			}
		}
		return ev
	}
	record := func(root types.Object, name string, pos token.Pos) {
		ev := eventsFor(root, pos)
		switch name {
		case "Add":
			ev.adds = append(ev.adds, pos)
		case "Done":
			if deferred(pos) {
				ev.deferredDones = append(ev.deferredDones, pos)
			} else {
				ev.dones = append(ev.dones, pos)
			}
		case "Wait":
			if deferred(pos) {
				ev.deferredWait = true
			} else {
				ev.waits = append(ev.waits, pos)
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// Attributed to every root lazily below; store per scope
			// under a nil root sentinel.
			ev := eventsFor(nil, n.Pos())
			ev.returns = append(ev.returns, n.Pos())
		case *ast.CallExpr:
			if root, name, ok := waitGroupCall(info, n); ok {
				if root != nil {
					record(root, name, n.Pos())
				}
				return true
			}
			callee := p.Prog.NodeOf(calleeObj(info, n))
			if callee == nil {
				return true
			}
			csum := sums[callee]
			for ai, arg := range n.Args {
				if ai >= 64 {
					break
				}
				if !isWaitGroupType(info.TypeOf(arg)) {
					continue
				}
				root := rootObj(info, arg)
				if root == nil {
					continue
				}
				if csum.adds&(1<<uint(ai)) != 0 {
					record(root, "Add", n.Pos())
				}
				if csum.dones&(1<<uint(ai)) != 0 {
					record(root, "Done", n.Pos())
				}
				if csum.waits&(1<<uint(ai)) != 0 {
					record(root, "Wait", n.Pos())
				}
			}
		}
		return true
	})

	for _, root := range roots {
		if root == nil {
			continue
		}
		name := root.Name()

		// Rule 1: an early return that bypasses the Wait joining an
		// earlier Add leaks the goroutines on that path.
		coord := scopes[0][root]
		if coord != nil && !coord.deferredWait {
			returns := scopes[0][nil]
			if returns != nil {
				for _, r := range returns.returns {
					leaked := false
					for _, a := range coord.adds {
						if a >= r {
							continue
						}
						// The first Wait after the Add must come after
						// the return for the path to leak.
						covered := false
						for _, w := range coord.waits {
							if w > a && w <= r {
								covered = true
								break
							}
						}
						later := false
						for _, w := range coord.waits {
							if w > r {
								later = true
								break
							}
						}
						if !covered && later {
							leaked = true
							break
						}
					}
					if leaked {
						p.Reportf(r, "return between %s.Add and %s.Wait leaks the spawned goroutines on this path; defer the Wait or join before returning", name, name)
					}
				}
			}
		}

		// Rules 2 and 3: inside each spawned goroutine.
		for si := 1; si < len(scopes); si++ {
			ev := scopes[si][root]
			if ev == nil {
				continue
			}
			for _, a := range ev.adds {
				p.Reportf(a, "%s.Add inside the spawned goroutine races %s.Wait; call Add before the go statement", name, name)
			}
			returns := scopes[si][nil]
			for _, d := range ev.dones {
				if returns == nil {
					break
				}
				for _, r := range returns.returns {
					if r < d {
						p.Reportf(d, "%s.Done is skipped when the goroutine returns at line %d; defer %s.Done() at the top of the goroutine", name, p.Fset.Position(r).Line, name)
						break
					}
				}
			}
		}
	}
}
