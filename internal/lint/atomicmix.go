package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags state that is updated through sync/atomic somewhere
// in the package but read or written plainly elsewhere. Mixing the two
// is a data race even when every writer is atomic — the plain reader
// can observe a torn or stale value — and the race detector only
// catches it when a test happens to interleave the accesses. The
// canonical case here is the join build's bit vector, whose OR is
// atomic so concurrent build kernels can share it: every other access
// to the words must be atomic too.
//
// Initialization is exempt where it is unambiguous: composite-literal
// keys and len/cap, which never touch element memory.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "state updated via sync/atomic must never be accessed plainly",
	Tier: TierConc,
	Run:  runAtomicMix,
}

// atomicFuncs are the sync/atomic package functions whose first
// argument addresses the synchronized word. The typed atomic wrappers
// (atomic.Int64 etc.) make plain access impossible and need no check.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: find the atomically accessed words. The target of
	// &x.f or &x.f[i] passed to a sync/atomic function is keyed by the
	// field (or variable) object; every node inside a sanctioned
	// context — an atomic call's address argument, a composite-literal
	// key, a len/cap argument — is exempt from pass 2.
	// tracked maps each word to the first sync/atomic function seen
	// accessing it, for the message.
	tracked := make(map[*types.Var]string)
	sanctioned := make(map[ast.Node]bool)
	sanction := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			sanctioned[n] = true
			return true
		})
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[id] = true
						}
					}
				}
			case *ast.RangeStmt:
				// An index-only range reads just the slice header, like
				// len; a range with a value variable reads the elements
				// and stays checked.
				if n.Value == nil {
					sanction(n.X)
				}
			case *ast.CallExpr:
				obj := calleeObj(info, n)
				if b, ok := obj.(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					for _, a := range n.Args {
						sanction(a)
					}
					return true
				}
				name, ok := isPackageFunc(obj, "sync/atomic")
				if !ok || !atomicFuncs[name] || len(n.Args) == 0 {
					return true
				}
				u, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr)
				if !ok {
					return true
				}
				target := ast.Unparen(u.X)
				if ix, ok := target.(*ast.IndexExpr); ok {
					target = ast.Unparen(ix.X)
				}
				var v *types.Var
				switch t := target.(type) {
				case *ast.SelectorExpr:
					v, _ = info.ObjectOf(t.Sel).(*types.Var)
				case *ast.Ident:
					v, _ = info.ObjectOf(t).(*types.Var)
				}
				if v == nil {
					return true
				}
				sanction(n.Args[0])
				if _, seen := tracked[v]; !seen {
					tracked[v] = name
				}
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 2: every remaining reference to a tracked word is a plain
	// access — a read, write, range, clear, or alias of memory that
	// other goroutines update atomically.
	flag := func(id *ast.Ident, v *types.Var) {
		desc := v.Name()
		if v.IsField() {
			if owner, ok := fieldOwnerName(p.Pkg, v); ok {
				desc = owner + "." + v.Name()
			}
		}
		p.Reportf(id.Pos(), "plain access to %s, which is accessed via sync/atomic.%s; every access must use sync/atomic", desc, tracked[v])
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if _, isTracked := tracked[v]; isTracked {
				flag(id, v)
			}
			return true
		})
	}
}

// fieldOwnerName finds the struct type a field belongs to by scanning
// the package's type declarations, for readable diagnostics.
func fieldOwnerName(pkg *Package, field *types.Var) (string, bool) {
	for _, f := range pkg.Files {
		var owner string
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					if pkg.Info.Defs[name] == field {
						owner = ts.Name.Name
						found = true
						return false
					}
				}
			}
			return true
		})
		if found {
			return owner, true
		}
	}
	return "", false
}
