package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Name  string
	Files []*ast.File

	Types *types.Package
	Info  *types.Info

	// TypeErrors holds soft type-check errors; a package with errors
	// is still analysed best-effort, but the runner surfaces them.
	TypeErrors []types.Error

	// directives maps filename -> line -> allow directives on that
	// line; allDirectives keeps them in source order for validation.
	directives    map[string]map[int][]directive
	allDirectives []directive
}

// Loader parses and type-checks packages of one module. Imports inside
// the module resolve recursively through the loader itself; standard
// library imports resolve through go/importer's source importer, so
// the whole pipeline works offline with no compiled export data.
type Loader struct {
	Fset   *token.FileSet
	Module string
	Root   string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at dir (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		Module:  module,
		Root:    abs,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %v (run from inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadDir loads the package in the given directory (absolute or
// relative to the module root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.Root, dir)
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.Module)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// load type-checks the package with the given module-internal import
// path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.Root
	if rel, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		dir = filepath.Join(l.Root, filepath.FromSlash(rel))
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if terr, ok := err.(types.Error); ok && !terr.Soft {
				pkg.TypeErrors = append(pkg.TypeErrors, terr)
			}
		},
	}
	// Type-check best-effort: Check returns an error on the first hard
	// failure, but Info is still populated for what did resolve.
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	pkg.collectDirectives(l.Fset)
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if ignoredByBuildTag(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// ignoredByBuildTag reports whether a file opts out of the build with
// a //go:build ignore constraint.
func ignoredByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == "//go:build ignore" {
				return true
			}
		}
	}
	return false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the loader, everything else through the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: package %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Expand resolves package patterns ("./...", "dir/...", plain
// directories) into the list of module directories holding Go files,
// sorted. Directories named testdata, vendor, or starting with "." or
// "_" are skipped, matching the go tool.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = l.Root
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.Root, base)
		}
		if !recursive {
			seen[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
				seen[filepath.Dir(p)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
