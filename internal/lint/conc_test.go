package lint

import (
	"slices"
	"testing"
)

func TestConcFixGolden(t *testing.T) {
	runGolden(t, "concfix", AnalyzersForTier(TierConc))
}

// TestCallGraphEdges pins the edge conventions the conc tier's
// spawn-rooted walk depends on: direct and deferred calls resolve,
// bound-method spawns resolve, and calls through function or method
// values do not (the documented soundness gap the class-hierarchy
// closure in conc.go exists to narrow).
func TestCallGraphEdges(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadDir("internal/lint/testdata/src/cgfix")
	if err != nil {
		t.Fatalf("loading fixture cgfix: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	prog := buildProgram(loader, []*Package{pkg})
	calls := map[string][]string{}
	for _, fn := range prog.Funcs {
		if fn.Pkg != pkg {
			continue
		}
		var out []string
		for _, c := range fn.Calls {
			out = append(out, c.Callee.Obj.Name())
		}
		calls[fn.Obj.Name()] = out
	}
	cases := []struct {
		fn   string
		want []string
	}{
		{"DirectCall", []string{"target"}},
		{"MethodValue", nil}, // method value: no edge
		{"DeferredClosure", []string{"target"}},
		{"DeferredDirect", []string{"target"}},
		{"GoBoundMethod", []string{"run"}},
		{"GoFuncValue", nil}, // function value: no edge
	}
	for _, tc := range cases {
		got, ok := calls[tc.fn]
		if !ok {
			t.Errorf("%s: not in program", tc.fn)
			continue
		}
		if !slices.Equal(got, tc.want) {
			t.Errorf("%s: edges %v, want %v", tc.fn, got, tc.want)
		}
	}
}
