package lint

import (
	"go/ast"
)

// hotdefer flags defer statements in hot functions. A defer costs a
// deferred-call record per invocation and (when the function's defer
// set is not open-coded) a runtime dispatch on return; on a function
// executed once per simulated memory access that overhead is pure
// hot-path tax. The fix is to call the cleanup explicitly on each
// return path — hot functions here are short enough that the loss of
// panic-safety is acceptable and documented.
var HotDefer = &Analyzer{
	Name:      "hotdefer",
	Tier:      TierPerf,
	Doc:       "no defer in //perf:hot functions; call cleanups explicitly on each return path",
	RunModule: runHotDefer,
}

func runHotDefer(p *ModulePass) {
	forEachHotFunc(p, func(fn *FuncNode, info hotInfo) {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				reportHot(p, fn, info, d.Pos(),
					"defer costs a deferred-call record per invocation; call the cleanup explicitly on each return path")
			}
			return true
		})
	})
}
