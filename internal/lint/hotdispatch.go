package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotdispatch flags interface method calls in hot code that have
// exactly one concrete implementation in the module. Dynamic dispatch
// on the per-access path costs an indirect call the compiler cannot
// inline and blocks escape analysis of the arguments; when the whole
// module contains a single type satisfying the interface, the
// abstraction is paying that cost for no polymorphism. The fix is to
// devirtualize: store the concrete type, or gate the interface behind
// a nil check off the hot path.
//
// Interfaces with zero or multiple module implementations pass clean —
// the former is satisfied outside the analyzed set, the latter is real
// polymorphism.
var HotDispatch = &Analyzer{
	Name:      "hotdispatch",
	Tier:      TierPerf,
	Doc:       "no interface method calls in //perf:hot code whose callee set resolves to a single module type",
	RunModule: runHotDispatch,
}

func runHotDispatch(p *ModulePass) {
	impls := make(map[*types.Interface][]string)
	forEachHotFunc(p, func(fn *FuncNode, info hotInfo) {
		typesInfo := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := typesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			recv := selection.Recv()
			if _, isTypeParam := recv.(*types.TypeParam); isTypeParam {
				return true
			}
			iface, ok := recv.Underlying().(*types.Interface)
			if !ok || iface.NumMethods() == 0 {
				return true
			}
			names, cached := impls[iface]
			if !cached {
				names = moduleImplementations(p.Prog, iface)
				impls[iface] = names
			}
			if len(names) == 1 {
				reportHot(p, fn, info, call.Pos(),
					"interface call %s.%s dispatches dynamically but %s is its only module implementation; devirtualize",
					ifaceName(recv), sel.Sel.Name, names[0])
			}
			return true
		})
	})
}

// moduleImplementations lists the named module types satisfying the
// interface (by value or pointer receiver), in deterministic package
// and scope order.
func moduleImplementations(prog *Program, iface *types.Interface) []string {
	var names []string
	for _, pkg := range prog.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				names = append(names, tn.Name())
			}
		}
	}
	return names
}

// ifaceName renders the receiver interface type for messages, without
// the package path qualifier.
func ifaceName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	s := t.String()
	if i := strings.LastIndex(s, "."); i >= 0 && !strings.Contains(s, "{") {
		return s[i+1:]
	}
	return s
}
