package lint

import (
	"go/ast"
	"go/types"
)

// hotmap flags integer-keyed map operations in hot functions. A Go map
// access on the per-simulated-access path costs a hash, a bucket walk,
// and unpredictable cache misses — the exact overhead this simulator
// exists to model, paid for real on every modeled access. With integer
// keys the map is usually standing in for a dense index (line numbers,
// core ids, group codes), where a preallocated slice or open-addressed
// table indexed directly is several times cheaper and allocation-free.
//
// String- and struct-keyed maps pass clean: no dense substitute
// exists, and none appear on this repository's hot paths.
var HotMap = &Analyzer{
	Name:      "hotmap",
	Tier:      TierPerf,
	Doc:       "no integer-keyed map access or iteration in //perf:hot code; use a dense slice or open-addressed table",
	RunModule: runHotMap,
}

func runHotMap(p *ModulePass) {
	forEachHotFunc(p, func(fn *FuncNode, info hotInfo) {
		typesInfo := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if key, ok := intKeyedMap(typesInfo.TypeOf(n.X)); ok {
					reportHot(p, fn, info, n.Pos(),
						"map access keyed by %s hashes on every lookup; a dense slice or open-addressed table indexes directly", key)
				}
			case *ast.RangeStmt:
				if key, ok := intKeyedMap(typesInfo.TypeOf(n.X)); ok {
					reportHot(p, fn, info, n.Pos(),
						"map iteration keyed by %s walks hash buckets; a dense slice or open-addressed table scans linearly", key)
				}
			case *ast.CallExpr:
				builtin, ok := calleeObj(typesInfo, n).(*types.Builtin)
				if !ok || builtin.Name() != "delete" || len(n.Args) == 0 {
					return true
				}
				if key, ok := intKeyedMap(typesInfo.TypeOf(n.Args[0])); ok {
					reportHot(p, fn, info, n.Pos(),
						"map delete keyed by %s hashes on every call; a dense slice or open-addressed table clears in place", key)
				}
			}
			return true
		})
	})
}

// intKeyedMap reports whether t is a map with an integer key type,
// returning the key's name for the message.
func intKeyedMap(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return "", false
	}
	basic, ok := m.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return "", false
	}
	return m.Key().String(), true
}
