package lint

import (
	"runtime"
	"sort"
	"sync"
)

// The analyzer tiers, in the order they were added to the suite. The
// intra tier checks single-package correctness invariants, the inter
// tier checks interprocedural correctness over the call graph, the
// perf tier (cacheperf) checks hot-path performance hazards over the
// //perf:hot reachability set, and the conc tier (cacheconc) checks
// the epoch-ownership concurrency contract over goroutine spawn sites.
const (
	TierIntra = "intra"
	TierInter = "inter"
	TierPerf  = "perf"
	TierConc  = "conc"
)

// Tiers lists the tier names in suite order.
func Tiers() []string { return []string{TierIntra, TierInter, TierPerf, TierConc} }

// Analyzers returns every domain analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		MaskCheck,
		CUIDCheck,
		ErrCheck,
		LockSafety,
		TaintFlow,
		TimeUnits,
		LockOrder,
		HotAlloc,
		HotDispatch,
		HotDefer,
		HotMap,
		HotBatch,
		EpochShare,
		AtomicMix,
		ChanProto,
		WGBalance,
		GoroutineCapture,
	}
}

// AnalyzersForTier returns the analyzers of one tier, in the Analyzers
// order, or every analyzer for tier "all" or "".
func AnalyzersForTier(tier string) []*Analyzer {
	all := Analyzers()
	if tier == "" || tier == "all" {
		return all
	}
	var out []*Analyzer
	for _, a := range all {
		if a.Tier == tier {
			out = append(out, a)
		}
	}
	return out
}

// Run executes the analyzers over the packages and returns the
// surviving diagnostics sorted by position. Type-check failures and
// malformed //lint:allow directives are reported as diagnostics of the
// pseudo-checks "typecheck" and "directive". Per-package analyzers run
// concurrently across packages; the output is identical to a serial
// run (TestRunParallelMatchesSerial pins this down).
func Run(loader *Loader, pkgs []*Package, analyzers []*Analyzer, cfg Config) []Diagnostic {
	return run(loader, pkgs, analyzers, cfg, runtime.GOMAXPROCS(0))
}

// run is Run with an explicit worker count, so tests can compare
// serial and parallel executions directly.
func run(loader *Loader, pkgs []*Package, analyzers []*Analyzer, cfg Config, workers int) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var perPkg, module []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			module = append(module, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	// Fan packages out over a bounded worker pool. Each package's
	// diagnostics land in its own slot and are merged in input order,
	// so scheduling cannot reorder output; loaded packages are
	// read-only during analysis, so sharing them across goroutines is
	// safe.
	if workers < 1 {
		workers = 1
	}
	results := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			//lint:allow epochshare each goroutine writes only its own slot results[i]; wg.Wait precedes every read
			results[i] = analyzePackage(loader, pkg, perPkg, cfg, known)
		}(i, pkg)
	}
	wg.Wait()

	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}

	// Module analyzers need the whole program at once; they run after
	// the fan-out, serially, over the shared call graph.
	if len(module) > 0 {
		prog := buildProgram(loader, pkgs)
		byFile := make(map[string]*Package)
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				byFile[loader.Fset.Position(f.Pos()).Filename] = pkg
			}
		}
		for _, a := range module {
			pass := &ModulePass{
				Analyzer: a,
				Config:   cfg,
				Fset:     loader.Fset,
				Prog:     prog,
				byFile:   byFile,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.RunModule(pass)
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].less(diags[j]) })
	return dedup(diags)
}

// analyzePackage runs the per-package analyzers and pseudo-checks over
// one package, returning its diagnostics unsorted (the caller sorts
// the merged set).
func analyzePackage(loader *Loader, pkg *Package, analyzers []*Analyzer, cfg Config, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, terr := range pkg.TypeErrors {
		diags = append(diags, Diagnostic{
			Pos:     terr.Fset.Position(terr.Pos),
			Check:   "typecheck",
			Message: terr.Msg,
		})
	}
	diags = append(diags, pkg.directiveProblems(known)...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Config:   cfg,
			Fset:     loader.Fset,
			Pkg:      pkg,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	return diags
}

// dedup drops exact duplicate diagnostics (a file shared between
// passes, or the same node reported through two paths).
func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}
