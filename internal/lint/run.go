package lint

import "sort"

// Analyzers returns every domain analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		MaskCheck,
		CUIDCheck,
		ErrCheck,
		LockSafety,
	}
}

// Run executes the analyzers over the packages and returns the
// surviving diagnostics sorted by position. Type-check failures and
// malformed //lint:allow directives are reported as diagnostics of the
// pseudo-checks "typecheck" and "directive".
func Run(loader *Loader, pkgs []*Package, analyzers []*Analyzer, cfg Config) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			diags = append(diags, Diagnostic{
				Pos:     terr.Fset.Position(terr.Pos),
				Check:   "typecheck",
				Message: terr.Msg,
			})
		}
		diags = append(diags, pkg.directiveProblems(known)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Config:   cfg,
				Fset:     loader.Fset,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].less(diags[j]) })
	return dedup(diags)
}

// dedup drops exact duplicate diagnostics (a file shared between
// passes, or the same node reported through two paths).
func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}
