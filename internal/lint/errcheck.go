package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is a focused errcheck: error returns from the resctrl
// layer and from os file operations must not be discarded implicitly.
// A failed schemata write or task move means the partitioning scheme
// the experiment believes it is running is not the one programmed into
// the (simulated) hardware — silently ignoring it invalidates every
// number downstream. Explicit discards (`_ = f()`) remain visible in
// review and are allowed; bare call statements, go, and defer are not.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Tier: TierIntra,
	Doc:  "error returns from resctrl writes and os file ops must not be discarded",
	Run:  runErrCheck,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call, kind = s.Call, "go statement "
			case *ast.DeferStmt:
				call, kind = s.Call, "deferred "
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn, ok := calleeObj(p.Pkg.Info, call).(*types.Func)
			if !ok || !underAny(pkgPathOf(fn), p.Config.ErrPackages) {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			p.Reportf(call.Pos(), "%scall discards the error from %s.%s; handle it or assign it explicitly",
				kind, fn.Pkg().Name(), fn.Name())
			return true
		})
	}
}

// returnsError reports whether any of the function's results is the
// built-in error type.
func returnsError(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}
