package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"slices"
)

// LockSafety complements go vet's copylocks with two domain rules for
// the concurrent layers (resctrl is shared by every worker; the
// harness fans experiments out across goroutines):
//
//   - no sync.Mutex, RWMutex, WaitGroup, Once, Cond, Pool, or Map may
//     be received, passed, returned, or range-copied by value — a
//     copied lock guards nothing;
//   - no lock may be held across a blocking channel operation (send,
//     receive, select, range over a channel): a worker parked on a
//     channel while holding the resctrl mutex stalls every mask write
//     in the system.
//
// The channel rule is a straight-line approximation over each
// function body: Lock() adds the receiver to the held set, Unlock()
// removes it, defer Unlock() keeps it held to the end, and any
// channel operation while the set is non-empty is reported. Function
// literals are scanned as separate bodies.
var LockSafety = &Analyzer{
	Name: "locks",
	Tier: TierIntra,
	Doc:  "no locks copied by value; no lock held across a blocking channel op",
	Run:  runLockSafety,
}

// syncNoCopyTypes are the sync types whose values must not be copied.
var syncNoCopyTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func runLockSafety(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if obj, ok := info.Defs[n.Name].(*types.Func); ok {
					checkSignatureCopies(p, n, obj.Type().(*types.Signature))
				}
				if n.Body != nil {
					scanHeldLocks(p, n.Body.List, make(map[string]bool))
				}
			case *ast.FuncLit:
				if sig, ok := info.TypeOf(n).(*types.Signature); ok {
					checkSignatureCopies(p, n, sig)
				}
				scanHeldLocks(p, n.Body.List, make(map[string]bool))
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := info.TypeOf(n.Value); t != nil {
					if name := containsLock(t); name != "" {
						p.Reportf(n.Value.Pos(), "range copies a value containing %s; iterate by index or use pointers", name)
					}
				}
			}
			return true
		})
	}
}

// checkSignatureCopies reports receiver, parameter, and result types
// that copy a lock by value.
func checkSignatureCopies(p *Pass, fn ast.Node, sig *types.Signature) {
	pos := fn.Pos()
	if recv := sig.Recv(); recv != nil {
		if name := containsLock(recv.Type()); name != "" {
			p.Reportf(pos, "method receiver copies a value containing %s; use a pointer receiver", name)
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		v := sig.Params().At(i)
		if name := containsLock(v.Type()); name != "" {
			p.Reportf(v.Pos(), "parameter %q copies a value containing %s; pass a pointer", v.Name(), name)
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		v := sig.Results().At(i)
		if name := containsLock(v.Type()); name != "" {
			rpos := v.Pos()
			if !rpos.IsValid() {
				rpos = pos
			}
			p.Reportf(rpos, "result copies a value containing %s; return a pointer", name)
		}
	}
}

// containsLock reports the sync type a value of type t would copy, or
// "". Pointers, slices, maps, and channels share their referent and
// are fine; structs and arrays are searched recursively.
func containsLock(t types.Type) string {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkgPathOf(obj) == "sync" && syncNoCopyTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := containsLockSeen(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return ""
}

// scanHeldLocks walks statements in source order tracking which locks
// are held, reporting channel operations that occur under a lock.
// Nested blocks share the held set (a flow-insensitive
// approximation); function literals are skipped here because they are
// scanned as independent bodies.
func scanHeldLocks(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		scanHeldStmt(p, s, held)
	}
}

func scanHeldStmt(p *Pass, s ast.Stmt, held map[string]bool) {
	info := p.Pkg.Info
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := lockCall(info, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return
		}
		reportChanOps(p, s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// body; any other defer is inspected for channel operands.
		if _, op, ok := lockCall(info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		reportChanOps(p, s.Call, held)
	case *ast.GoStmt:
		// A spawned goroutine blocks itself, not the lock holder;
		// its body is scanned separately. Argument expressions are
		// evaluated here, though.
		for _, arg := range s.Call.Args {
			reportChanOps(p, arg, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			p.Reportf(s.Arrow, "channel send while holding %s; a blocked send would hold the lock indefinitely", heldNames(held))
		}
	case *ast.SelectStmt:
		if len(held) > 0 {
			p.Reportf(s.Pos(), "select while holding %s; a blocked select would hold the lock indefinitely", heldNames(held))
			return
		}
		for _, clause := range s.Body.List {
			if comm, ok := clause.(*ast.CommClause); ok {
				scanHeldLocks(p, comm.Body, held)
			}
		}
	case *ast.RangeStmt:
		if t := info.TypeOf(s.X); t != nil && len(held) > 0 {
			if _, ok := t.Underlying().(*types.Chan); ok {
				p.Reportf(s.Pos(), "range over a channel while holding %s; a quiet channel would hold the lock indefinitely", heldNames(held))
				return
			}
		}
		scanHeldLocks(p, s.Body.List, held)
	case *ast.BlockStmt:
		scanHeldLocks(p, s.List, held)
	case *ast.IfStmt:
		if s.Cond != nil {
			reportChanOps(p, s.Cond, held)
		}
		scanHeldStmt(p, s.Body, held)
		if s.Else != nil {
			scanHeldStmt(p, s.Else, held)
		}
	case *ast.ForStmt:
		if s.Cond != nil {
			reportChanOps(p, s.Cond, held)
		}
		scanHeldLocks(p, s.Body.List, held)
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				scanHeldLocks(p, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				scanHeldLocks(p, cc.Body, held)
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			reportChanOps(p, rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			reportChanOps(p, r, held)
		}
	case *ast.DeclStmt:
		if len(held) > 0 {
			reportChanOps(p, s, held)
		}
	case *ast.LabeledStmt:
		scanHeldStmt(p, s.Stmt, held)
	}
}

// lockCall matches expressions of the form recv.Lock / recv.Unlock /
// recv.RLock / recv.RUnlock where the method is defined in package
// sync (including promoted methods of embedded locks), returning a
// stable key for the receiver.
func lockCall(info *types.Info, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || pkgPathOf(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// reportChanOps reports channel sends and receives inside an
// expression or statement subtree when locks are held, skipping
// function literals.
func reportChanOps(p *Pass, root ast.Node, held map[string]bool) {
	if len(held) == 0 || root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				p.Reportf(n.Pos(), "channel receive while holding %s; a quiet channel would hold the lock indefinitely", heldNames(held))
			}
		case *ast.SendStmt:
			p.Reportf(n.Arrow, "channel send while holding %s; a blocked send would hold the lock indefinitely", heldNames(held))
		}
		return true
	})
}

// heldNames renders the held-lock set for messages, smallest key
// first so output is deterministic.
func heldNames(held map[string]bool) string {
	names := slices.Sorted(maps.Keys(held))
	if len(names) > 1 {
		return names[0] + " (and others)"
	}
	return names[0]
}
