package lint

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The loader type-checks through the source importer, which parses the
// standard library from source; one loader is shared across tests so
// that work happens once.
var (
	loaderOnce sync.Once
	testloader *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testloader, loaderErr = NewLoader("../..")
	})
	if loaderErr != nil {
		t.Fatalf("loading module: %v", loaderErr)
	}
	return testloader
}

// wantEntry is one "// want" expectation parsed from a fixture.
type wantEntry struct {
	file    string
	line    int
	substr  string
	matched bool
}

// parseWants extracts `// want "substring"` expectations from the
// fixture sources. A want comment trailing a statement anchors to its
// own line; a want comment alone on a line anchors to the line above
// (for multi-line constructs and lines that already carry a comment).
func parseWants(t *testing.T, loader *Loader, pkg *Package) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	for _, f := range pkg.Files {
		name := loader.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			lineNo := i + 1
			if strings.HasPrefix(strings.TrimSpace(line), "// want ") {
				lineNo = i
			}
			for {
				rest = strings.TrimSpace(rest)
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					break
				}
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s", name, i+1, q)
				}
				wants = append(wants, &wantEntry{file: name, line: lineNo, substr: s})
				rest = rest[len(q):]
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want expectations", pkg.Path)
	}
	return wants
}

// runGolden lints one testdata fixture with the given analyzers and
// compares the diagnostics against the fixture's want comments.
func runGolden(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	loader := testLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("internal/lint/testdata/src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	wants := parseWants(t, loader, pkg)
	diags := Run(loader, []*Package{pkg}, analyzers, DefaultConfig(loader.Module))
	for _, d := range diags {
		rendered := "[" + d.Check + "] " + d.Message
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(rendered, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic containing %q", w.file, w.line, w.substr)
		}
	}
}

func TestNondeterminismGolden(t *testing.T) {
	runGolden(t, "nondetfix", []*Analyzer{Nondeterminism})
}

// TestParfixGolden pins the channel-drain rule on the fan-in merge
// shape the parallel simulator uses: an unsorted drain that applies
// events in arrival order is flagged; collect-then-sort and
// commutative folds are clean.
func TestParfixGolden(t *testing.T) {
	runGolden(t, "parfix", []*Analyzer{Nondeterminism})
}

func TestMaskCheckGolden(t *testing.T) {
	runGolden(t, "maskfix", []*Analyzer{MaskCheck})
}

func TestCUIDGolden(t *testing.T) {
	runGolden(t, "cuidfix", []*Analyzer{CUIDCheck})
}

func TestErrCheckGolden(t *testing.T) {
	runGolden(t, "errfix", []*Analyzer{ErrCheck})
}

func TestLockSafetyGolden(t *testing.T) {
	runGolden(t, "lockfix", []*Analyzer{LockSafety})
}

func TestTaintFlowGolden(t *testing.T) {
	// Nondeterminism runs alongside to prove the handoff: the fixture's
	// one //lint:allow nondet on the laundering helper silences the old
	// check entirely, while taintflow still reports at the sinks.
	runGolden(t, "taintfix", []*Analyzer{Nondeterminism, TaintFlow})
}

// TestNondetMissesLaundering pins down why taintflow exists: on the
// laundering fixture the intraprocedural nondet check reports nothing
// at all — the single annotated helper hides the wall-clock read from
// every caller feeding it into simulator state.
func TestNondetMissesLaundering(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadDir("internal/lint/testdata/src/taintfix")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(loader, []*Package{pkg}, []*Analyzer{Nondeterminism}, DefaultConfig(loader.Module)) {
		t.Errorf("nondet unexpectedly caught the laundered flow: %s", d)
	}
}

// TestFaultFixGolden proves the fault injector sits inside the
// determinism net: internal/fault is a taintflow sink, so seeding a
// fault schedule from the wall clock or global rand is flagged even
// through a laundering helper.
func TestFaultFixGolden(t *testing.T) {
	runGolden(t, "faultfix", []*Analyzer{Nondeterminism, TaintFlow})
}

// TestServeFixGolden proves the serving tier sits inside the same
// net: internal/serve is a taintflow sink, so wall-clock or
// global-rand arrival generation is flagged through a laundering
// helper while the seeded generator stays clean.
func TestServeFixGolden(t *testing.T) {
	runGolden(t, "servefix", []*Analyzer{Nondeterminism, TaintFlow})
}

// TestOverloadFixGolden proves the overload control layer sits inside
// the determinism net: SLO deadlines, retry backoff and serving-plane
// burst faults are simulator state, so a wall-clock deadline or a
// global-rand backoff is flagged through a laundering helper while
// the seeded configuration stays clean.
func TestOverloadFixGolden(t *testing.T) {
	runGolden(t, "overloadfix", []*Analyzer{Nondeterminism, TaintFlow})
}

func TestTimeUnitsGolden(t *testing.T) {
	runGolden(t, "timefix", []*Analyzer{TimeUnits})
}

// TestPerfFixGolden pins the whole performance tier on one fixture:
// hotness roots and propagation, every hotalloc shape (including the
// cross-package summary surfaced at the call site), single-
// implementation dispatch, defer, integer-keyed maps and per-element
// access loops — alongside the //lint:allow-suppressed and fixed
// variants, which must stay silent.
func TestPerfFixGolden(t *testing.T) {
	runGolden(t, "perffix", AnalyzersForTier(TierPerf))
}

// TestAnalyzersForTier pins the tier partition: every analyzer is in
// exactly one tier, tier selection preserves suite order, and ""/"all"
// mean the full suite.
func TestAnalyzersForTier(t *testing.T) {
	all := Analyzers()
	total := 0
	for _, tier := range Tiers() {
		sel := AnalyzersForTier(tier)
		if len(sel) == 0 {
			t.Errorf("tier %q selects no analyzers", tier)
		}
		total += len(sel)
		for _, a := range sel {
			if a.Tier != tier {
				t.Errorf("tier %q selected %s (tier %q)", tier, a.Name, a.Tier)
			}
		}
	}
	if total != len(all) {
		t.Errorf("tiers cover %d analyzers, suite has %d", total, len(all))
	}
	for _, tier := range []string{"", "all"} {
		if got := len(AnalyzersForTier(tier)); got != len(all) {
			t.Errorf("AnalyzersForTier(%q) = %d analyzers, want %d", tier, got, len(all))
		}
	}
}

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, "lockorderfix", []*Analyzer{LockOrder})
}

// TestRunParallelMatchesSerial renders the full-module diagnostics from
// a single-worker run and a many-worker run (with allowed findings
// included, the widest output) and requires byte identity.
func TestRunParallelMatchesSerial(t *testing.T) {
	loader := testLoader(t)
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	cfg := DefaultConfig(loader.Module)
	cfg.ReportAllowed = true
	render := func(diags []Diagnostic) string {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	serial := render(run(loader, pkgs, Analyzers(), cfg, 1))
	parallel := render(run(loader, pkgs, Analyzers(), cfg, 8))
	if serial != parallel {
		t.Errorf("parallel run output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	if serial == "" {
		t.Log("no diagnostics at all, comparison is vacuous for allowed findings")
	}
}

func TestDirectiveValidationGolden(t *testing.T) {
	// Directive problems are emitted by Run itself, before any
	// analyzer; an empty analyzer list isolates them.
	runGolden(t, "directivefix", nil)
}

// TestRepoIsClean runs every analyzer over the whole module and
// requires zero diagnostics — the same gate cmd/cachelint enforces in
// scripts/check.sh.
func TestRepoIsClean(t *testing.T) {
	loader := testLoader(t)
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range Run(loader, pkgs, Analyzers(), DefaultConfig(loader.Module)) {
		t.Errorf("%s", d)
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	loader := testLoader(t)
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no packages found")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand returned testdata directory %s", d)
		}
	}
}

func TestMaskBitsProblem(t *testing.T) {
	cases := []struct {
		mask uint64
		want string // substring of the message, "" for clean
	}{
		{0x1, ""},
		{0x3, ""},
		{0xff, ""},
		{0xffffffff, ""},
		{0xc, ""},                     // contiguous run away from bit 0
		{0x0, "empty capacity mask"},  // no ways
		{0x5, "non-contiguous"},       // hole in the run
		{0x9, "non-contiguous"},       //
		{0x1_0000_0001, "32-way"},     // exceeds the register width
		{0xffffffff00, "32-way"},      //
		{0xa0, "non-contiguous"},      //
		{1<<31 | 1, "non-contiguous"}, // ends touching both edges
	}
	for _, c := range cases {
		got := maskBitsProblem(c.mask)
		if c.want == "" && got != "" {
			t.Errorf("maskBitsProblem(%#x) = %q, want clean", c.mask, got)
		}
		if c.want != "" && !strings.Contains(got, c.want) {
			t.Errorf("maskBitsProblem(%#x) = %q, want substring %q", c.mask, got, c.want)
		}
	}
}

func TestSchemataProblem(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"L3:0=fffff", ""},
		{"L3:0=3", ""},
		{" L3:0=ff ", ""},
		{"L3:0=0", "empty capacity mask"},
		{"L3:0=5", "non-contiguous"},
		{"L3:0=zz", "malformed hex mask"},
		{"MB:0=50", "must start with"},
		{"L3:1=ff", "no clause for cache id 0"},
	}
	for _, c := range cases {
		got := schemataProblem(c.in)
		if c.want == "" && got != "" {
			t.Errorf("schemataProblem(%q) = %q, want clean", c.in, got)
		}
		if c.want != "" && !strings.Contains(got, c.want) {
			t.Errorf("schemataProblem(%q) = %q, want substring %q", c.in, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: "nondet", Message: "msg"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "a/b.go:3:7: [nondet] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
