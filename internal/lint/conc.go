package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared base of the concurrency-isolation tier
// (cacheconc, DESIGN.md §14). The epoch-parallel simulator's contract
// — "a per-core goroutine touches only core-local state between merge
// barriers" (DESIGN.md §11) — lived in prose and equivalence tests
// until this tier; here it becomes declared ownership plus inference,
// the same shape hotness.go gave the performance tier:
//
//	//conc:shared <why>   on a struct type or field: state worker
//	                      goroutines may legitimately touch — per-core
//	                      indexed (disjoint elements), owned by exactly
//	                      one worker between barriers, or serialized by
//	                      an engine-level discipline such as
//	                      Phase.Serial. The reason is mandatory and is
//	                      the written ownership audit.
//	//conc:barrier <why>  on a function: runs only on the coordinator
//	                      with workers quiescent (a merge barrier or
//	                      the serial reference path). Reaching it from
//	                      a spawned goroutine is itself a finding.
//
// The epochshare analyzer roots at goroutine spawn sites and walks the
// call graph from each spawned closure; a write to state that is
// neither goroutine-local nor annotated is a finding. The remaining
// analyzers of the tier (atomicmix, chanproto, wgbalance,
// goroutinecapture) share the spawn-site discovery and the sync-object
// recognition helpers below.

// Conc-tier directive markers. Text after the marker is the mandatory
// rationale; a bare marker is reported as a malformed directive.
const (
	sharedDirective  = "//conc:shared"
	barrierDirective = "//conc:barrier"
)

// concInfo is the module-wide view of the conc directives, memoized on
// the Program (module analyzers run serially, so the lazy fill is
// race-free, as with the hotness set).
type concInfo struct {
	// sharedTypes and sharedFields map "pkgpath.Type" and
	// "pkgpath.Type.field" (or "pkgpath.var" for package variables) to
	// the annotation rationale.
	sharedTypes  map[string]string
	sharedFields map[string]string
	// barriers maps barrier-annotated functions to their rationale.
	barriers map[*FuncNode]string
	// problems lists malformed directives (missing rationale), reported
	// by the epochshare analyzer.
	problems []concProblem
}

// concProblem is a malformed conc directive.
type concProblem struct {
	pos    token.Pos
	marker string
}

// concDirectives collects the //conc: annotations of every loaded
// module package once per Program.
func (prog *Program) concDirectives() *concInfo {
	if prog.conc != nil {
		return prog.conc
	}
	ci := &concInfo{
		sharedTypes:  make(map[string]string),
		sharedFields: make(map[string]string),
		barriers:     make(map[*FuncNode]string),
	}
	malformed := func(cg *ast.CommentGroup, marker string) (string, bool) {
		if cg == nil {
			return "", false
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, marker)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			reason := strings.TrimSpace(rest)
			if reason == "" {
				ci.problems = append(ci.problems, concProblem{pos: c.Pos(), marker: marker})
				continue
			}
			return reason, true
		}
		return "", false
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						key := pkg.Path + "." + spec.Name.Name
						for _, cg := range []*ast.CommentGroup{gd.Doc, spec.Doc, spec.Comment} {
							if why, ok := malformed(cg, sharedDirective); ok {
								ci.sharedTypes[key] = why
							}
						}
						st, ok := spec.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, field := range st.Fields.List {
							var why string
							found := false
							for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
								if w, ok := malformed(cg, sharedDirective); ok {
									why, found = w, true
								}
							}
							if !found {
								continue
							}
							for _, name := range field.Names {
								ci.sharedFields[key+"."+name.Name] = why
							}
						}
					case *ast.ValueSpec:
						for _, cg := range []*ast.CommentGroup{gd.Doc, spec.Doc, spec.Comment} {
							if why, ok := malformed(cg, sharedDirective); ok {
								for _, name := range spec.Names {
									ci.sharedFields[pkg.Path+"."+name.Name] = why
								}
							}
						}
					}
				}
			}
		}
	}
	// Local types (declared inside function bodies) can carry the same
	// field annotations; walk declarations for nested GenDecls. The doc
	// comment of a single-spec declaration attaches to the GenDecl, so
	// track the enclosing one.
	for _, fn := range prog.Funcs {
		info := fn.Pkg.Info
		var gdDoc *ast.CommentGroup
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if gd, ok := n.(*ast.GenDecl); ok {
				gdDoc = gd.Doc
				return true
			}
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			key := qualifiedObj(obj)
			for _, cg := range []*ast.CommentGroup{gdDoc, ts.Doc, ts.Comment} {
				if why, ok := malformed(cg, sharedDirective); ok {
					ci.sharedTypes[key] = why
				}
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				for _, field := range st.Fields.List {
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if why, ok := malformed(cg, sharedDirective); ok {
							for _, name := range field.Names {
								ci.sharedFields[key+"."+name.Name] = why
							}
						}
					}
				}
			}
			return true
		})
		if fn.Decl.Doc != nil {
			if why, ok := malformed(fn.Decl.Doc, barrierDirective); ok {
				ci.barriers[fn] = why
			}
		}
	}
	prog.conc = ci
	return ci
}

// qualifiedObj renders any package-scoped object as "pkgpath.Name".
func qualifiedObj(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// spawnSite is one go statement in an analyzed function.
type spawnSite struct {
	fn   *FuncNode
	stmt *ast.GoStmt
}

// spawnSites returns every go statement of the analyzed packages under
// the simulation prefixes, in deterministic program order. Go
// statements inside function literals are attributed to the enclosing
// declaration, matching the call graph's convention.
func spawnSites(p *ModulePass) []spawnSite {
	var sites []spawnSite
	for _, fn := range p.Prog.Funcs {
		if !p.analyzed(fn) || !underAny(fn.Pkg.Path, p.Config.SimPrefixes) {
			continue
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				sites = append(sites, spawnSite{fn: fn, stmt: g})
			}
			return true
		})
	}
	return sites
}

// localFuncLits maps function-value locals to their literal when the
// enclosing function assigns exactly one literal to the variable —
// the `runTask := func(...) {...}` idiom the engine's worker pools
// use. A variable bound to two different literals is dropped (its
// target is ambiguous).
func localFuncLits(fn *FuncNode) map[types.Object]*ast.FuncLit {
	info := fn.Pkg.Info
	out := make(map[types.Object]*ast.FuncLit)
	ambiguous := make(map[types.Object]bool)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || ambiguous[obj] {
			return
		}
		if _, dup := out[obj]; dup {
			delete(out, obj)
			ambiguous[obj] = true
			return
		}
		out[obj] = lit
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// implementersOf returns the declared module methods that implement an
// interface method — the class-hierarchy edge closing the call graph's
// interface-dispatch gap for the conc tier (a spawned worker calling
// exec.Kernel.Step reaches every kernel implementation). Results come
// in deterministic Funcs order and are memoized per interface method.
func (prog *Program) implementersOf(m *types.Func) []*FuncNode {
	if prog.impls == nil {
		prog.impls = make(map[*types.Func][]*FuncNode)
	}
	if impls, ok := prog.impls[m]; ok {
		return impls
	}
	var iface *types.Interface
	if recv := m.Type().(*types.Signature).Recv(); recv != nil {
		iface, _ = recv.Type().Underlying().(*types.Interface)
	}
	var impls []*FuncNode
	if iface != nil {
		for _, fn := range prog.Funcs {
			if fn.Obj.Name() != m.Name() {
				continue
			}
			recv := receiverOf(fn)
			if recv == nil {
				continue
			}
			if _, ok := recv.Type().Underlying().(*types.Interface); ok {
				continue
			}
			if types.Implements(recv.Type(), iface) ||
				types.Implements(types.NewPointer(derefNamed(recv.Type())), iface) {
				impls = append(impls, fn)
			}
		}
	}
	prog.impls[m] = impls
	return impls
}

// interfaceMethod reports whether obj is an interface method, i.e. a
// call through it is dynamic dispatch.
func interfaceMethod(obj types.Object) (*types.Func, bool) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false
	}
	_, ok = recv.Type().Underlying().(*types.Interface)
	return fn, ok
}

// isWaitGroupType reports whether t is sync.WaitGroup (possibly
// pointered).
func isWaitGroupType(t types.Type) bool {
	return qualifiedName(derefNamed(t)) == "sync.WaitGroup"
}

// waitGroupCall matches a wg.Add/Done/Wait call, returning the
// receiver's root object and the method name.
func waitGroupCall(info *types.Info, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return nil, "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !isWaitGroupType(t) {
		return nil, "", false
	}
	return rootObj(info, sel.X), sel.Sel.Name, true
}

// chanRoot returns the root object of a channel-typed expression, nil
// when the expression is not rooted at a named channel variable.
func chanRoot(info *types.Info, e ast.Expr) types.Object {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return nil
	}
	return rootObj(info, e)
}
