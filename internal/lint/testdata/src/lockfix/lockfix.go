// Package lockfix is a golden-test fixture for the locks analyzer.
package lockfix

import "sync"

type guarded struct {
	mu    sync.Mutex
	count int
}

func byValue(g guarded) int { // want "parameter \"g\" copies a value containing sync.Mutex"
	return g.count
}

func byPointer(g *guarded) int { // pointers share the lock: clean
	return g.count
}

func (g guarded) valueReceiver() int { // want "method receiver copies a value containing sync.Mutex"
	return g.count
}

func rangeCopy(gs []guarded) int {
	n := 0
	for _, g := range gs { // want "range copies a value containing sync.Mutex"
		n += g.count
	}
	return n
}

func rangeByIndex(gs []guarded) int {
	n := 0
	for i := range gs { // indexing shares the lock: clean
		n += gs[i].count
	}
	return n
}

func heldAcrossSend(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.count // want "channel send while holding g.mu"
	g.mu.Unlock()
}

func releasedBeforeSend(g *guarded, ch chan int) {
	g.mu.Lock()
	n := g.count
	g.mu.Unlock()
	ch <- n // lock released first: clean
}

func deferredUnlock(g *guarded, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count + <-ch // want "channel receive while holding g.mu"
}

func allowedSend(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.count //lint:allow locks fixture exercises the escape hatch
	g.mu.Unlock()
}
