// Package directivefix is a golden-test fixture for //lint:allow
// validation (the "directive" pseudo-check).
package directivefix

func wellFormed() int {
	x := 1 //lint:allow nondet a well-formed directive is never reported
	return x
}

func bareDirective() int {
	y := 2 //lint:allow
	// want "malformed directive"
	return y
}

func missingReason() int {
	z := 3 //lint:allow nondet
	// want "malformed directive"
	return z
}

func unknownCheck() int {
	w := 4 //lint:allow maskchek typo in the check name
	// want "unknown check"
	return w
}
