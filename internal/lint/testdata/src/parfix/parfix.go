// Package parfix is a golden-test fixture for the nondet analyzer's
// channel-drain rule. It stages the fan-in merge of a parallel
// simulation: workers send buffered events over a channel and a
// collector folds them into shared state. Applying events in arrival
// order is the bug the epoch scheme exists to avoid — goroutine
// scheduling decides the order, so two runs diverge. Collecting the
// events and sorting on a deterministic key before applying (the shape
// of cachesim.EpochSim.Merge) is clean, as are purely commutative
// folds.
package parfix

import "sort"

type event struct {
	tick int64
	core int
	line uint64
}

type llcState struct {
	fills  []uint64
	misses int64
}

func (s *llcState) apply(ev event) { s.fills = append(s.fills, ev.line) }

// drainUnsorted is the bug: events arrive in goroutine-completion
// order, and apply mutates LRU-like state, so the merged result
// depends on host scheduling.
func drainUnsorted(s *llcState, ch chan event) {
	for ev := range ch { // want "channel drain order"
		s.apply(ev)
	}
}

// drainSorted is the sanctioned shape: collect everything, order by
// the deterministic (tick, core) key, then apply.
func drainSorted(s *llcState, ch chan event) {
	var evs []event
	for ev := range ch { // collected then sorted below: clean
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].tick != evs[j].tick {
			return evs[i].tick < evs[j].tick
		}
		return evs[i].core < evs[j].core
	})
	for _, ev := range evs {
		s.apply(ev)
	}
}

// drainCount only accumulates commutatively; arrival order cannot
// change the sum.
func drainCount(s *llcState, ch chan event) {
	for range ch { // commutative accumulation: clean
		s.misses++
	}
}

// drainFirst keeps only the first arrival — a race on which worker
// finishes first.
func drainFirst(ch chan event) event {
	for ev := range ch { // want "channel drain order"
		return ev
	}
	return event{}
}
