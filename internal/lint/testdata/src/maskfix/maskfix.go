// Package maskfix is a golden-test fixture for the maskcheck analyzer.
package maskfix

import (
	"cachepart/internal/cat"
	"cachepart/internal/resctrl"
)

var bad = cat.WayMask(0x5)  // want "non-contiguous capacity mask 0x5"
var empty cat.WayMask       // zero value never spelled out: clean
var zeroed cat.WayMask = 0  // want "empty capacity mask"
var good = cat.WayMask(0x3) // two contiguous ways: clean
var full = ^cat.WayMask(0)  // all 32 ways: contiguous, clean

func program(r *cat.Registers) {
	_ = r.SetMask(0, 0)   // want "empty capacity mask"
	_ = r.SetMask(1, 0x9) // want "non-contiguous capacity mask 0x9"
	_ = r.SetMask(2, 0x7) // three contiguous ways: clean
	_ = r.SetMask(3, cat.FullMask(20))
	allowed := cat.WayMask(0x15) //lint:allow maskcheck fixture exercises the escape hatch
	_ = allowed
}

func isEmpty(m cat.WayMask) bool {
	return m == 0 // comparisons tolerate the zero sentinel: clean
}

func sentinel() cat.WayMask {
	return 0 // zero returns are error-path sentinels: clean
}

func schemata(fs *resctrl.FS) {
	_, _ = resctrl.ParseSchemata("L3:0=5", 20)  // want "non-contiguous capacity mask 0x5"
	_, _ = resctrl.ParseSchemata("L3:0=ff", 20) // eight contiguous ways: clean
	_ = fs.WriteSchemata("g", "L3:0=0")         // want "empty capacity mask"
}
