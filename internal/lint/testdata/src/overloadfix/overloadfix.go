// Package overloadfix is a golden-test fixture pinning the overload
// control layer into the determinism net: retry backoff, SLO
// deadlines and serving-plane burst faults are all simulator state
// inside the internal/serve and internal/fault sinks, so a wall-clock
// deadline or a global-rand backoff is flagged even when the
// nondeterministic read hides behind a laundering helper. Replaying a
// retry storm requires every backoff draw to derive from the run
// seed and the virtual clock.
package overloadfix

import (
	"math/rand"
	"time"

	"cachepart/internal/fault"
	"cachepart/internal/serve"
)

// wallDeadline launders a wall-clock read past the intraprocedural
// nondet check; only taintflow can follow it into the SLO spec.
func wallDeadline() float64 {
	return float64(time.Now().UnixNano()) * 1e-9 //lint:allow nondet fixture laundering helper for operator-facing timing
}

func launderedSLO() serve.SLO {
	// A deadline measured off the host clock makes drop accounting
	// differ between two replays of the same trace.
	return serve.SLO{DeadlineSeconds: wallDeadline()} // want "derived from time.Now (via wallDeadline) reaches simulator state"
}

func globalRandBackoff() serve.Retry {
	// Both checks fire: nondet at the draw, taintflow at the sink — a
	// retry storm jittered by global rand never replays bit-identically.
	return serve.Retry{MaxAttempts: 3, BackoffSeconds: rand.Float64() * 1e-4} // want "global math/rand.Float64 draws from a runtime-seeded source" "derived from math/rand.Float64 reaches simulator state"
}

// clockBurstSeed launders the wall clock toward the serving-plane
// chaos schedule.
func clockBurstSeed() int64 {
	return time.Now().UnixNano() //lint:allow nondet fixture laundering helper for operator-facing timing
}

func launderedBursts() fault.ServeConfig {
	return fault.ServeConfig{Seed: clockBurstSeed(), Bursts: 1} // want "derived from time.Now (via clockBurstSeed) reaches simulator state"
}

// seededOverload is the sanctioned shape: deadlines are plain
// configuration, and the retry backoff and burst schedule derive from
// the config seeds, so two runs with equal configs shed, trip and
// retry identically.
func seededOverload(seed int64, tenants []serve.Tenant) serve.Config {
	return serve.Config{
		Seed:    seed,
		Tenants: tenants,
		Retry:   serve.Retry{MaxAttempts: 3, BackoffSeconds: 50e-6},
		Breaker: serve.Breaker{Window: 32},
		Faults:  &fault.ServeConfig{Seed: seed * 31, Bursts: 1}, // clean: seed-derived
	}
}
