// Package errfix is a golden-test fixture for the errcheck analyzer.
package errfix

import (
	"fmt"
	"os"

	"cachepart/internal/resctrl"
)

func discarded(fs *resctrl.FS) {
	fs.MoveTask(1, "g") // want "call discards the error from resctrl.MoveTask"
	os.Remove("/tmp/x") // want "call discards the error from os.Remove"
}

func handled(fs *resctrl.FS) error {
	if err := fs.MoveTask(1, "g"); err != nil {
		return fmt.Errorf("move: %w", err)
	}
	_ = os.Remove("/tmp/x") // explicit discard stays visible in review: clean
	return nil
}

func deferred(f *os.File) {
	defer f.Close() // want "deferred call discards the error from os.Close"
	fmt.Println("working")
}

func spawned(fs *resctrl.FS) {
	go fs.MoveTask(1, "g") // want "go statement call discards the error from resctrl.MoveTask"
}

func allowedDiscard(fs *resctrl.FS) {
	fs.MoveTask(1, "g") //lint:allow errcheck fixture exercises the escape hatch
}
