// Package timefix is a golden-test fixture for the timeunits
// analyzer: virtual-time tick counters and wall-clock durations share
// integer representations, and only the unit inference keeps them
// apart.
package timefix

import (
	"time"

	"cachepart/internal/cachesim"
)

// budget adds a wall-clock duration into a tick counter — the silent
// corruption the analyzer exists for.
func budget(d time.Duration) int64 {
	var epochTicks int64
	epochTicks += int64(d) // want "cycle-domain epochTicks assigned a wall-clock-domain value"
	return epochTicks
}

// deadline compares the machine's cycle clock against a duration.
func deadline(m *cachesim.Machine, d time.Duration) bool {
	return m.Now(0) < int64(d) // want "cross-domain \"<\" mixes"
}

// millis crosses the boundary the sanctioned way: dividing two
// wall-clock values yields a dimensionless count.
func millis(d time.Duration) int64 {
	return int64(d / time.Millisecond) // clean: same-domain division
}

// charge's first parameter is cycle-domain by name.
func charge(budgetTicks, n int64) int64 {
	return budgetTicks + n
}

func misuse(d time.Duration) int64 {
	return charge(int64(d), 4) // want "wall-clock-domain argument passed to cycle-domain parameter \"budgetTicks\""
}

// spend's limit parameter has no cycle-ish name or type; the demand is
// inferred interprocedurally from its comparison against the machine
// clock in the body.
func spend(m *cachesim.Machine, limit int64) bool {
	return m.Now(0) > limit
}

func misuseSpend(m *cachesim.Machine, d time.Duration) bool {
	return spend(m, int64(d)) // want "wall-clock-domain argument passed to cycle-domain parameter \"limit\""
}
