// Package faultfix is a golden-test fixture pinning the fault
// injector into the determinism net: internal/fault is a taintflow
// sink, so a wall-clock- or global-rand-seeded fault schedule is
// flagged even when the nondeterministic read hides behind a helper.
// Replaying a chaos run requires the fault seed to come from the run
// configuration, exactly like engine.RunOptions.Seed.
package faultfix

import (
	"math/rand"
	"time"

	"cachepart/internal/engine"
	"cachepart/internal/fault"
)

// clockSeed launders a wall-clock read past the intraprocedural
// nondet check; only taintflow can follow it into the fault config.
func clockSeed() int64 {
	return time.Now().UnixNano() //lint:allow nondet fixture laundering helper for operator-facing timing
}

func launderedChaos() fault.Config {
	return fault.Config{Seed: clockSeed()} // want "derived from time.Now (via clockSeed) reaches simulator state"
}

func globalRandChaos() fault.Config {
	// Both checks fire here: nondet at the draw, taintflow at the sink.
	return fault.Config{Seed: rand.Int63()} // want "global math/rand.Int63 draws from a runtime-seeded source" "derived from math/rand.Int63 reaches simulator state"
}

// seededChaos is the sanctioned shape: the fault schedule derives from
// the run seed, so two runs with equal options inject identically.
func seededChaos(opts engine.RunOptions) fault.Config {
	return fault.Uniform(0.01, opts.Seed) // clean: seed-derived
}
