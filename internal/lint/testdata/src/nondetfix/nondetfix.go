// Package nondetfix is a golden-test fixture for the nondet analyzer.
// The "// want" comments name a substring of the diagnostic expected
// on that line; lines without one must stay clean.
package nondetfix

import (
	"maps"
	"math/rand"
	"sort"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

func seeded(rng *rand.Rand) int {
	r := rand.New(rand.NewSource(1)) // constructors build explicit generators: clean
	return r.Intn(10) + rng.Intn(5)  // methods on a seeded *rand.Rand: clean
}

func wallClock() time.Time {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Now()            // want "time.Now reads the wall clock"
}

func allowedClock() time.Duration {
	return time.Since(time.Time{}) //lint:allow nondet fixture exercises the escape hatch
}

func orderSensitiveAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order"
		out = append(out, v*2)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collected then sorted below: clean
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func total(m map[string]int) (sum int) {
	for _, v := range m { // commutative accumulation: clean
		sum += v
	}
	return sum
}

func concat(m map[string]int) string {
	s := ""
	for k := range maps.Keys(m) { // want "map iteration order"
		s += k
	}
	return s
}

func arbitraryKey(m map[string]int) string {
	for key := range m { // want "map iteration order"
		return key
	}
	return ""
}

func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m { // writes to distinct keys: clean
		inv[v] = k
	}
	return inv
}
