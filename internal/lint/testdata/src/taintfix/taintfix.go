// Package taintfix is a golden-test fixture for the taintflow
// analyzer. The stamp helper launders a wall-clock read past the
// intraprocedural nondet check (its one annotation suppresses the
// source site); taintflow follows the value through the call and
// reports where it reaches simulator state.
package taintfix

import (
	"math/rand"
	"time"

	"cachepart/internal/cachesim"
	"cachepart/internal/engine"
)

// stamp is the laundering helper: the directive below silences the
// nondet check at the source, so nothing intraprocedural sees callers
// feeding the result into the simulator.
func stamp() int64 {
	return time.Now().UnixNano() //lint:allow nondet fixture laundering helper for operator-facing timing
}

func launderedSeed() engine.RunOptions {
	return engine.RunOptions{Seed: stamp()} // want "derived from time.Now (via stamp) reaches simulator state"
}

// gauge shows struct-field propagation: the taint enters a field and
// is reported when the struct's value reaches the machine.
type gauge struct {
	deadline int64
}

func viaField(m *cachesim.Machine) {
	var g gauge
	g.deadline = stamp()
	m.AdvanceTo(0, g.deadline) // want "derived from time.Now (via stamp) reaches simulator state"
}

// sanitized derives its randomness from the run seed — the sanctioned
// source — so nothing is tainted.
func sanitized(opts engine.RunOptions) *rand.Rand {
	return rand.New(rand.NewSource(opts.Seed)) // clean: seed-derived
}

// discarded returns a tainted value that never reaches simulator
// state; taintflow stays silent where nondet would have needed an
// annotation.
func discarded() int64 {
	return stamp() // clean: operator-facing only
}
