// Package servefix is a golden-test fixture pinning the serving tier
// into the determinism net: internal/serve is a taintflow sink, so an
// arrival schedule seeded from the wall clock or drawn from the
// runtime-seeded global rand is flagged even when the read hides
// behind a helper. Replaying a capacity sweep requires every arrival
// to derive from serve.Config.Seed and the virtual clock.
package servefix

import (
	"math/rand"
	"time"

	"cachepart/internal/serve"
)

// wallSeed launders a wall-clock read past the intraprocedural nondet
// check; only taintflow can follow it into the serving config.
func wallSeed() int64 {
	return time.Now().UnixNano() //lint:allow nondet fixture laundering helper for operator-facing timing
}

func launderedArrivals() serve.Config {
	return serve.Config{Seed: wallSeed()} // want "derived from time.Now (via wallSeed) reaches simulator state"
}

func jitteredTrace() serve.Process {
	// Both checks fire: nondet at the draw, taintflow at the sink — a
	// replayed trace with global-rand jitter never replays.
	return serve.Process{Kind: serve.ProcTrace, Trace: []float64{rand.Float64()}} // want "global math/rand.Float64 draws from a runtime-seeded source" "derived from math/rand.Float64 reaches simulator state"
}

// seededArrivals is the sanctioned shape: the whole trace — process
// draws, mix picks, per-query plans — derives from the config seed,
// so two runs with equal configs serve identical workloads.
func seededArrivals(seed int64, tenants []serve.Tenant) serve.Config {
	return serve.Config{Seed: seed, Horizon: 1e-3, Tenants: tenants} // clean: seed-derived
}
