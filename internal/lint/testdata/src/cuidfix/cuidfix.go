// Package cuidfix is a golden-test fixture for the cuid analyzer.
package cuidfix

import (
	"cachepart/internal/core"
	"cachepart/internal/engine"
)

func explicit() engine.Phase {
	return engine.Phase{Name: "scan", CUID: core.Polluting} // clean
}

func explicitDefault() engine.Phase {
	return engine.Phase{Name: "merge", CUID: core.Sensitive} // spelling out the default class: clean
}

func missing() engine.Phase {
	return engine.Phase{Name: "scan"} // want "job phase \"scan\" lacks an explicit CUID"
}

func missingNested() []engine.Phase {
	return []engine.Phase{
		{Name: "build", CUID: core.Depends},
		{Name: "probe"}, // want "job phase \"probe\" lacks an explicit CUID"
	}
}

func anonymous() engine.Phase {
	return engine.Phase{} // want "job-phase literal lacks an explicit CUID"
}

func allowed() engine.Phase {
	return engine.Phase{Name: "merge"} //lint:allow cuid fixture exercises the escape hatch
}
