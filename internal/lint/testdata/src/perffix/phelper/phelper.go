// Package phelper is the dependency-only helper for the perffix
// fixture. It is loaded for its interprocedural allocation summaries
// but never analyzed directly, so hotalloc must surface its
// allocations at the hot call sites in perffix — the cross-package
// reporting rule under test.
package phelper

// Wrap allocates directly: its summary carries the slice literal.
func Wrap(a, b int) []int {
	return []int{a, b}
}

// Chain allocates only through Wrap: its summary is Wrap's, extended
// with the via chain.
func Chain(a, b int) []int {
	return Wrap(a, b)
}
