// Package perffix exercises the performance tier: hotness roots and
// propagation, the hotalloc allocation shapes, single-implementation
// dispatch, defer, integer-keyed maps and per-element access loops,
// each with flagged, //lint:allow-suppressed and fixed variants.
package perffix

import (
	"cachepart/internal/lint/testdata/src/perffix/phelper"
)

type point struct{ x int }

// sink is the interface parameter the boxing case passes through.
func sink(v any) {}

// HotAllocShapes holds every unconditional allocation shape once.
//
//perf:hot fixture root: per-access entry point
func HotAllocShapes(n int, name string) []int {
	buf := make([]int, n)       // want "make allocates on every execution"
	lits := []int{1, 2, n}      // want "slice literal allocates"
	counts := map[int]int{n: n} // want "map literal allocates"
	pt := &point{x: n}          // want "address of composite literal escapes to the heap"
	label := name + "!"         // want "string concatenation allocates"
	sink(n)                     // want "argument boxed into interface parameter allocates"
	ext := phelper.Chain(n, n)  // want "call to Chain allocates: slice literal allocates; hoist to construction or use a fixed array (via Wrap)"
	buf[0] = lits[0] + len(counts) + pt.x + len(label) + ext[0]
	return buf
}

// HotAllocLoops holds the shapes reported only inside loops.
//
//perf:hot fixture root: per-access entry point
func HotAllocLoops(rows []int) int {
	total := 0
	var out []int
	for _, r := range rows {
		out = append(out, r)         // want "append to a local without preallocation grows per iteration"
		f := func() int { return r } // want "closure allocated per iteration"
		total += f()
	}
	return total + len(out)
}

// HotAllocGuarded passes clean: the growth is behind a capacity check
// (amortized, off the steady state) and the append reuses capacity via
// the self-resetting slice idiom.
//
//perf:hot fixture root: per-access entry point
func HotAllocGuarded(n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, 0, n)
	}
	buf = append(buf[:0], n)
	return buf
}

// HotAllocAllowed documents an accepted allocation.
//
//perf:hot fixture root: per-access entry point
func HotAllocAllowed(n int) []int {
	//lint:allow hotalloc fixture: construction-time sizing, amortized by the caller
	return make([]int, n)
}

// HotAllocRoot only calls a helper; the helper's allocation is
// reported at its own site with propagated provenance, not at this
// call (same-package callees report directly).
//
//perf:hot fixture root: per-access entry point
func HotAllocRoot(n int) []int {
	return helperAlloc(n)
}

// helperAlloc is hot by propagation from HotAllocRoot.
func helperAlloc(n int) []int {
	return make([]int, n) // want "helperAlloc is hot (reached from HotAllocRoot)"
}

// ColdAllocs is not annotated and unreachable from any hot root;
// nothing is reported regardless of shape.
func ColdAllocs(n int) []int {
	return make([]int, n)
}
