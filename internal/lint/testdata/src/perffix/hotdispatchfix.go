package perffix

// Stepper has exactly one module implementation, so hot calls through
// it pay dynamic dispatch for no polymorphism.
type Stepper interface{ StepFix(n int) int }

// FixKernel is Stepper's only implementation.
type FixKernel struct{ acc int }

func (k *FixKernel) StepFix(n int) int { k.acc += n; return k.acc }

// Multi has two implementations: real polymorphism, passes clean.
type Multi interface{ MultiFix() int }

type multiA struct{}

func (multiA) MultiFix() int { return 1 }

type multiB struct{}

func (multiB) MultiFix() int { return 2 }

// HotDispatchSingle calls through the single-implementation interface.
//
//perf:hot fixture root: per-access entry point
func HotDispatchSingle(s Stepper, n int) int {
	return s.StepFix(n) // want "interface call Stepper.StepFix dispatches dynamically but FixKernel is its only module implementation"
}

// HotDispatchMulti passes clean: two implementations.
//
//perf:hot fixture root: per-access entry point
func HotDispatchMulti(m Multi) int {
	return m.MultiFix()
}

// HotDispatchFixed passes clean: the concrete type is stored, no
// interface on the hot path.
//
//perf:hot fixture root: per-access entry point
func HotDispatchFixed(k *FixKernel, n int) int {
	return k.StepFix(n)
}

// HotDispatchAllowed documents an accepted dispatch.
//
//perf:hot fixture root: per-access entry point
func HotDispatchAllowed(s Stepper, n int) int {
	//lint:allow hotdispatch fixture: opt-in debug facility
	return s.StepFix(n)
}
