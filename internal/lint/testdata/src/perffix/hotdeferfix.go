package perffix

import "sync"

// HotDeferFlagged pays a deferred-call record per invocation.
//
//perf:hot fixture root: per-access entry point
func HotDeferFlagged(mu *sync.Mutex, n int) int {
	mu.Lock()
	defer mu.Unlock() // want "defer costs a deferred-call record per invocation"
	return n + 1
}

// HotDeferFixed unlocks explicitly on its single return path.
//
//perf:hot fixture root: per-access entry point
func HotDeferFixed(mu *sync.Mutex, n int) int {
	mu.Lock()
	v := n + 1
	mu.Unlock()
	return v
}

// HotDeferAllowed documents an accepted defer.
//
//perf:hot fixture root: per-access entry point
func HotDeferAllowed(mu *sync.Mutex, n int) int {
	mu.Lock()
	//lint:allow hotdefer fixture: panic safety matters more here
	defer mu.Unlock()
	return n + 1
}
