package perffix

import (
	"cachepart/internal/cachesim"
	"cachepart/internal/memory"
)

// HotBatchPerElement pays the per-call overhead once per element.
//
//perf:hot fixture root: per-access entry point
func HotBatchPerElement(m *cachesim.Machine, addrs []memory.Addr) {
	for _, a := range addrs {
		m.Access(0, a, false) // want "per-element Access call on every loop iteration"
	}
}

// HotBatchGuarded passes clean: membership is data-dependent, a
// precomputed batch cannot express it.
//
//perf:hot fixture root: per-access entry point
func HotBatchGuarded(m *cachesim.Machine, addrs []memory.Addr, pick func(memory.Addr) bool) {
	for _, a := range addrs {
		if pick(a) {
			m.Access(0, a, false)
		}
	}
}

// batchKernel carries the reusable scratch slice of the fixed
// variant, the idiom the real kernels use.
type batchKernel struct {
	ops []cachesim.BatchOp
}

// HotBatchFixed accumulates BatchOps and flushes once.
//
//perf:hot fixture root: per-access entry point
func (k *batchKernel) HotBatchFixed(m *cachesim.Machine, addrs []memory.Addr) {
	k.ops = k.ops[:0]
	for _, a := range addrs {
		k.ops = append(k.ops, cachesim.BatchOp{Addr: a})
	}
	m.AccessBatch(0, k.ops)
}

// HotBatchAllowed documents an accepted per-element loop.
//
//perf:hot fixture root: per-access entry point
func HotBatchAllowed(m *cachesim.Machine, addrs []memory.Addr) {
	for _, a := range addrs {
		//lint:allow hotbatch fixture: this is the batch implementation itself
		m.Access(0, a, false)
	}
}
