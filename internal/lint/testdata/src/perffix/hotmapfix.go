package perffix

// HotMapOps holds the three flagged integer-keyed map operations.
//
//perf:hot fixture root: per-access entry point
func HotMapOps(m map[uint64]int64, lines []uint64) int64 {
	var total int64
	for _, l := range lines {
		total += m[l] // want "map access keyed by uint64"
	}
	for l, v := range m { // want "map iteration keyed by uint64"
		total += v + int64(l)
	}
	delete(m, 0) // want "map delete keyed by uint64"
	return total
}

// HotMapStringKeys passes clean: no dense substitute exists for
// string keys.
//
//perf:hot fixture root: per-access entry point
func HotMapStringKeys(m map[string]int) int {
	return m["k"]
}

// HotMapFixed is the dense-slice replacement; indexing a slice is not
// a map operation.
//
//perf:hot fixture root: per-access entry point
func HotMapFixed(vals []int64, lines []uint64) int64 {
	var total int64
	for _, l := range lines {
		total += vals[l]
	}
	return total
}

// HotMapAllowed documents an accepted map.
//
//perf:hot fixture root: per-access entry point
func HotMapAllowed(m map[int]int) int {
	//lint:allow hotmap fixture: key space is sparse, a dense table would not fit
	return m[3]
}
