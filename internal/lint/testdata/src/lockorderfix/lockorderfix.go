// Package lockorderfix is a golden-test fixture for the lockorder
// analyzer. No single function here takes both locks in both orders —
// the inversion only exists across the appendEntry call — so the cycle
// is invisible to any per-body check.
package lockorderfix

import "sync"

type registry struct {
	mu sync.Mutex
}

type journal struct {
	mu sync.Mutex
}

// abFirst holds the registry lock across a call that takes the journal
// lock: the registry.mu -> journal.mu edge.
func abFirst(r *registry, j *journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	appendEntry(j) // want "lock-order cycle lockorderfix.registry.mu -> lockorderfix.journal.mu"
}

func appendEntry(j *journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
}

// baFirst takes the same locks in the opposite order directly.
func baFirst(r *registry, j *journal) {
	j.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	j.mu.Unlock()
}

type counter struct {
	mu sync.Mutex
}

func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// bumpTwice calls bump with the lock already held — a guaranteed
// self-deadlock on a non-reentrant mutex.
func (c *counter) bumpTwice() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want "call to bump may reacquire lockorderfix.counter.mu"
}

func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "reacquires lockorderfix.counter.mu, already held"
	c.mu.Unlock()
	c.mu.Unlock()
}

type qa struct {
	mu sync.Mutex
}

type qb struct {
	mu sync.Mutex
}

// The qa/qb pair inverts the same way but is allowlisted at the
// reporting site, so the run stays clean.
func qaFirst(x *qa, y *qb) {
	x.mu.Lock()
	y.mu.Lock() //lint:allow lockorder fixture exercises the escape hatch
	y.mu.Unlock()
	x.mu.Unlock()
}

func qbFirst(x *qa, y *qb) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}
