// Package cgfix pins the call-graph edge conventions the concurrency
// tier leans on: which call shapes resolve to edges and which fall
// into the documented soundness gap (DESIGN.md §9). The fixture has no
// want comments — conc_test.go asserts directly on the edges that
// buildProgram resolves for each function below.
package cgfix

type svc struct{ n int }

func (s *svc) run() { s.n++ }

func target() {}

// DirectCall resolves the plain call edge.
func DirectCall() { target() }

// MethodValue calls through a bound method value; the callee at the
// call site is a variable, so no edge resolves — the documented
// soundness gap.
func MethodValue(s *svc) {
	f := s.run
	f()
}

// DeferredClosure calls target inside a deferred function literal;
// the call is attributed to DeferredClosure itself, not to the
// literal.
func DeferredClosure() {
	defer func() { target() }()
}

// DeferredDirect defers a direct call; deferral does not hide the
// callee.
func DeferredDirect() {
	defer target()
}

// GoBoundMethod spawns a bound method: the go statement's call
// expression names the method directly, so the edge resolves even
// though the call is asynchronous.
func GoBoundMethod(s *svc) {
	go s.run()
}

// GoFuncValue spawns through a function-typed parameter: no edge.
func GoFuncValue(f func()) {
	go f()
}
