// Package chelper is the dependency package of the concfix fixtures:
// its functions are loaded for the call graph but not analyzed, so
// findings inside them must surface at the caller's frontier with an
// "(in Func)" attribution.
package chelper

// Counter is external state a worker-reachable helper mutates.
type Counter struct{ N int }

// Bump writes through its pointer parameter. A goroutine calling it
// gets the finding at the call site, attributed to Bump.
func Bump(c *Counter) { c.N++ }
