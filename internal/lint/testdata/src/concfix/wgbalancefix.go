package concfix

import (
	"errors"
	"sync"
)

var errBoom = errors.New("boom")

// WGLeakOnError returns early between the Add and the Wait that would
// join it — the error path the happy-path tests never exercise.
func WGLeakOnError(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	if fail {
		return errBoom // want "return between wg.Add and wg.Wait leaks"
	}
	wg.Wait()
	return nil
}

// WGAddInGoroutine registers itself only after it is running: the
// coordinator's Wait can pass before the Add.
func WGAddInGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "wg.Add inside the spawned goroutine races wg.Wait"
		defer wg.Done()
	}()
	wg.Wait()
}

// WGSkippedDone can return before reaching its Done, deadlocking the
// Wait forever.
func WGSkippedDone(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if fail {
			return
		}
		wg.Done() // want "wg.Done is skipped when the goroutine returns at line"
	}()
	wg.Wait()
}

// WGAllowed documents an audited leak on a shutdown path.
func WGAllowed(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	if fail {
		//lint:allow wgbalance fixture: audited abandon-on-shutdown path
		return errBoom
	}
	wg.Wait()
	return nil
}

// WGFixed defers the Wait so every path joins, and defers the Done so
// every goroutine exit signals.
func WGFixed(fail bool) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if fail {
			return
		}
	}()
	if fail {
		return errBoom
	}
	return nil
}
