package concfix

import "sync/atomic"

// flags is a bit vector whose set side is atomic so concurrent
// builders can share it; every other access must be atomic too.
type flags struct {
	words []uint64
	n     int
}

func newFlags(n int) *flags {
	return &flags{words: make([]uint64, (n+63)/64), n: n}
}

func (f *flags) set(i int) {
	atomic.OrUint64(&f.words[i/64], 1<<(uint(i)%64))
}

// testPlain races the atomic OR: the plain load can observe a torn or
// stale word.
func (f *flags) testPlain(i int) bool {
	return f.words[i/64]&(1<<(uint(i)%64)) != 0 // want "plain access to flags.words"
}

// testFixed is the atomic variant.
func (f *flags) testFixed(i int) bool {
	return atomic.LoadUint64(&f.words[i/64])&(1<<(uint(i)%64)) != 0
}

// count stays clean: the index-only range reads just the slice
// header, and the element loads are atomic.
func (f *flags) count() int {
	n := 0
	for i := range f.words {
		for w := atomic.LoadUint64(&f.words[i]); w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// size stays clean: len never touches element memory.
func (f *flags) size() int { return 64 * len(f.words) }

// snapshot documents an audited plain read.
func (f *flags) snapshot() []uint64 {
	//lint:allow atomicmix fixture: snapshot taken while writers are quiescent
	return f.words
}
