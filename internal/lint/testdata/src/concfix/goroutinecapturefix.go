package concfix

import "sync"

// CaptureLoopVar rebuilds the pre-1.22 capture bug by hand: cur is
// declared outside the loop and reassigned each iteration, so every
// spawned goroutine races the next iteration's write. The reassignment
// itself is also a slice reuse the goroutines may still be reading.
func CaptureLoopVar(rows [][]int) []int {
	res := make(chan int, len(rows))
	cur := []int{}
	for i := range rows {
		cur = rows[i] // want "slice cur is reassigned while the goroutine spawned at line"
		go func() {   // want "goroutine captures cur, which the enclosing loop reassigns"
			res <- cur[0]
		}()
	}
	out := make([]int, 0, len(rows))
	for range rows {
		out = append(out, <-res)
	}
	return out
}

// SliceReuseNoWait reassigns the captured slice while the goroutine
// may still be reading the old backing array.
func SliceReuseNoWait(a, b []int) int {
	res := make(chan int, 2)
	buf := a
	go func() {
		res <- buf[0]
	}()
	buf = b // want "slice buf is reassigned while the goroutine spawned at line"
	go func() {
		res <- buf[0]
	}()
	return <-res + <-res
}

// SliceReuseAllowed documents an audited reuse.
func SliceReuseAllowed(a, b []int) int {
	res := make(chan int, 1)
	buf := a
	go func() {
		res <- buf[0]
	}()
	//lint:allow goroutinecapture fixture: audited, reader drains res first
	buf = b
	return <-res + buf[0]
}

// CaptureFixed passes the row as an argument instead of capturing it.
func CaptureFixed(rows [][]int) []int {
	res := make(chan int, len(rows))
	for i := range rows {
		go func(row []int) {
			res <- row[0]
		}(rows[i])
	}
	out := make([]int, 0, len(rows))
	for range rows {
		out = append(out, <-res)
	}
	return out
}

// SliceReuseFixed joins before the reuse — the engine's task-slice
// pattern, safe only because the Wait sits between spawn and reset.
func SliceReuseFixed(a, b []int) int {
	var wg sync.WaitGroup
	res := make(chan int, 2)
	buf := a
	wg.Add(1)
	go func() {
		defer wg.Done()
		res <- buf[0]
	}()
	wg.Wait()
	buf = b
	wg.Add(1)
	go func() {
		defer wg.Done()
		res <- buf[0]
	}()
	wg.Wait()
	return <-res + <-res
}
