// Package concfix exercises the concurrency-isolation tier: the
// epochshare ownership walk with its //conc:shared///conc:barrier
// directives, atomic/plain mixing, channel protocols, WaitGroup
// balance and goroutine capture hazards — each with flagged,
// //lint:allow-suppressed and fixed variants.
package concfix

import "cachepart/internal/lint/testdata/src/concfix/chelper"

// hits is coordinator-owned state the workers must not touch.
var hits int

// SharedCounters is legitimately worker-visible.
//
//conc:shared per-worker slots indexed by the worker's own id
type SharedCounters struct{ slots [4]int }

// mergeResults folds worker results into coordinator state.
//
//conc:barrier merge runs on the coordinator with workers quiescent
func mergeResults() { hits++ }

// badDirective carries a bare marker with no rationale; the trailing
// position keeps gofmt from reordering the malformed form away.
type badDirective struct{ n int } //conc:shared
// want "malformed directive"

// stepper is the dispatch seam the class-hierarchy edge closes.
type stepper interface{ step() }

// tally implements stepper by writing package state.
type tally struct{}

func (tally) step() {
	hits++ // want "rebinds non-local variable hits"
}

// EpochShareFlagged spawns a worker that breaks the ownership
// contract four ways: a package-variable write, a barrier call, a
// dependency-package write surfaced at the frontier, and an
// interface-dispatched write inside tally.step.
func EpochShareFlagged(sc *SharedCounters, c *chelper.Counter, s stepper) {
	done := make(chan struct{})
	go func() {
		hits++          // want "rebinds non-local variable hits"
		sc.slots[0]++   // clean: SharedCounters is //conc:shared
		mergeResults()  // want "calls //conc:barrier function mergeResults"
		chelper.Bump(c) // want "(in Bump)"
		s.step()
		close(done)
	}()
	<-done
	_ = badDirective{n: 1}
}

// EpochShareAllowed documents an audited exception to the contract.
func EpochShareAllowed() {
	done := make(chan struct{})
	go func() {
		//lint:allow epochshare fixture: single worker, joined on done below
		hits++
		close(done)
	}()
	<-done
}

// EpochShareFixed keeps every write goroutine-local and hands the
// result back over a channel.
func EpochShareFixed() int {
	res := make(chan int, 1)
	go func() {
		local := 0
		local++
		res <- local
	}()
	return <-res
}
