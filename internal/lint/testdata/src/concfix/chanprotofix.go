package concfix

import "sync"

// produce sends into its channel parameter; the summary fixpoint
// carries the effect to callers.
func produce(ch chan<- int, v int) { ch <- v }

// closeIt closes its channel parameter.
func closeIt(ch chan int) { close(ch) }

// ChanDoubleClose closes the same channel twice.
func ChanDoubleClose() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	close(ch) // want "channel ch closed twice"
}

// ChanHelperClose re-closes through a helper, across the call
// boundary.
func ChanHelperClose() {
	ch := make(chan int)
	close(ch)
	closeIt(ch) // want "call to closeIt may close channel ch twice"
}

// ChanCloseInLoop closes once per iteration.
func ChanCloseInLoop(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		close(ch) // want "close of channel ch inside a loop executes more than once"
	}
}

// ChanSendAfterClose sends directly and through the helper after the
// close.
func ChanSendAfterClose() {
	ch := make(chan int, 4)
	close(ch)
	ch <- 1        // want "send on channel ch after close"
	produce(ch, 2) // want "call to produce may send on channel ch after close"
}

// ChanCapacityDeadlock spawns unbounded producers into a two-slot
// buffer and Waits before the first receive: the producers block on
// the full channel and the Wait never returns.
func ChanCapacityDeadlock(n int) []int {
	ch := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- 1
		}()
	}
	wg.Wait() // want "Wait can deadlock"
	close(ch)
	var out []int
	for v := range ch {
		out = append(out, v)
	}
	return out
}

// ChanCloseAllowed documents an audited double close.
func ChanCloseAllowed() {
	ch := make(chan int)
	close(ch)
	//lint:allow chanproto fixture: audited idempotent shutdown
	close(ch)
}

// ChanFixed drains the channel before the Wait, so producers can
// never block on a full buffer.
func ChanFixed() int {
	ch := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer wg.Done()
			ch <- 1
		}()
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += <-ch
	}
	wg.Wait()
	return total
}
