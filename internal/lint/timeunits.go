package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TimeUnits is a unit-inference pass over the module's two time
// domains. The simulator advances a virtual clock counted in ticks and
// cycles (cachesim.Machine.Now/Ticks, *Ticks fields and variables);
// the host's wall clock appears as time.Time/time.Duration values.
// The two use the same underlying integer types, so the compiler
// happily adds a time.Duration into a virtual-time epoch counter —
// silently corrupting every derived curve. This analyzer assigns each
// expression a domain and flags cross-domain arithmetic, comparisons,
// assignments, conversions, and argument passing.
//
// Domains are inferred from types (time.Duration/time.Time are
// wall-clock), from names (integer-typed identifiers containing
// "tick"/"cycle", or named like now/minNow, are cycle-domain; the same
// applies to function results), from Config.CycleFuncs, and
// interprocedurally from per-function summaries: a parameter added
// into a cycle-domain expression inside the callee demands
// cycle-domain arguments from every caller. Dividing two values of the
// same domain yields a dimensionless ratio — the sanctioned conversion
// boundary (d / time.Millisecond is a count, not a duration).
var TimeUnits = &Analyzer{
	Name:      "timeunits",
	Tier:      TierInter,
	Doc:       "no arithmetic, assignment, or argument passing mixing the virtual cycle domain with the wall-clock domain",
	RunModule: runTimeUnits,
}

// unitDom is a small domain lattice encoded as a bitset so summary
// merges are monotone ORs. A value carrying both domCycle and domWall
// is the reported conflict.
type unitDom uint8

const (
	domCycle unitDom = 1 << iota // virtual-time ticks/cycles
	domWall                      // time.Duration / time.Time
	domNone                      // dimensionless ratio of two domained values
)

func (d unitDom) hasCycle() bool { return d&domCycle != 0 }
func (d unitDom) hasWall() bool  { return d&domWall != 0 }

// conflicting reports whether combining the two domains mixes cycle
// and wall-clock values.
func conflicting(a, b unitDom) bool {
	return (a.hasCycle() && b.hasWall()) || (a.hasWall() && b.hasCycle())
}

func (d unitDom) String() string {
	switch {
	case d.hasCycle() && !d.hasWall():
		return "cycle-domain"
	case d.hasWall() && !d.hasCycle():
		return "wall-clock-domain"
	default:
		return "mixed-domain"
	}
}

// unitSummary is one function's interprocedural unit record.
type unitSummary struct {
	// params holds the domain demanded of each parameter by the
	// function body (ORed across uses).
	params []unitDom
	// results holds the domain of each result.
	results []unitDom
}

func runTimeUnits(p *ModulePass) {
	summaries := make(map[*FuncNode]*unitSummary, len(p.Prog.Funcs))
	for _, fn := range p.Prog.Funcs {
		sig := fn.Obj.Type().(*types.Signature)
		s := &unitSummary{
			params:  make([]unitDom, sig.Params().Len()),
			results: make([]unitDom, sig.Results().Len()),
		}
		// Seed result domains from declared hints so even bodies the
		// inference cannot see through export their contract.
		for i := range s.results {
			s.results[i] = declaredDomain(sig.Results().At(i).Type(), fn.Obj.Name()) |
				declaredDomain(sig.Results().At(i).Type(), sig.Results().At(i).Name())
		}
		if underAny2(funcQualified(fn.Obj), p.Config.CycleFuncs) && len(s.results) > 0 {
			s.results[0] |= domCycle
		}
		summaries[fn] = s
	}
	p.Prog.fixpoint(func(fn *FuncNode) bool {
		w := &unitWalker{pass: p, summaries: summaries, fn: fn, sum: summaries[fn]}
		return w.walk()
	})
	for _, fn := range p.Prog.Funcs {
		if !p.analyzed(fn) || !underAny(fn.Pkg.Path, p.Config.SimPrefixes) {
			continue
		}
		w := &unitWalker{pass: p, summaries: summaries, fn: fn, sum: summaries[fn], reporting: true}
		w.walk()
		// A parameter demanded in both domains is itself a finding.
		sig := fn.Obj.Type().(*types.Signature)
		for i, d := range w.sum.params {
			if d.hasCycle() && d.hasWall() {
				w.pass.Reportf(sig.Params().At(i).Pos(), "parameter %q of %s is used in both the cycle and wall-clock domains", sig.Params().At(i).Name(), fn.Obj.Name())
			}
		}
	}
}

// underAny2 reports exact membership of name in list (no prefix
// semantics — qualified function names are compared whole).
func underAny2(name string, list []string) bool {
	for _, s := range list {
		if name == s {
			return true
		}
	}
	return false
}

// cycleName reports whether an identifier names a virtual-time
// quantity: it contains "tick" or "cycle", or is now/…Now (the
// machine's per-core clock accessors and their locals).
func cycleName(name string) bool {
	lower := strings.ToLower(name)
	if strings.Contains(lower, "tick") || strings.Contains(lower, "cycle") {
		return true
	}
	return name == "now" || strings.HasSuffix(name, "Now")
}

// typeDomain classifies a type: time.Duration and time.Time are
// wall-clock; a named type whose name is cycle-ish is cycle-domain.
func typeDomain(t types.Type) unitDom {
	if t == nil {
		return 0
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	obj := named.Obj()
	if pkgPathOf(obj) == "time" && (obj.Name() == "Duration" || obj.Name() == "Time") {
		return domWall
	}
	if cycleName(obj.Name()) && isNumeric(named.Underlying()) {
		return domCycle
	}
	return 0
}

// declaredDomain classifies a declaration site from its type and name;
// name hints apply only to numeric types, so a string called
// "tickLabel" stays unclassified.
func declaredDomain(t types.Type, name string) unitDom {
	if d := typeDomain(t); d != 0 {
		return d
	}
	if t != nil && isNumeric(t.Underlying()) && cycleName(name) {
		return domCycle
	}
	return 0
}

func isNumeric(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// unitWalker carries one function's walk state.
type unitWalker struct {
	pass      *ModulePass
	summaries map[*FuncNode]*unitSummary
	fn        *FuncNode
	sum       *unitSummary
	reporting bool

	state      map[types.Object]unitDom // domains learned at := sites
	sumChanged bool
	iterating  bool
}

func (w *unitWalker) walk() bool {
	w.state = make(map[types.Object]unitDom)
	for pass := 0; pass < fixpointCap; pass++ {
		w.iterating = false
		w.stmts(w.fn.Decl.Body.List)
		if !w.iterating {
			break
		}
	}
	return w.sumChanged
}

func (w *unitWalker) info() *types.Info { return w.fn.Pkg.Info }

func (w *unitWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.reporting {
		w.pass.Reportf(pos, format, args...)
	}
}

// demand records that the expression — when it roots at one of this
// function's parameters through conversions and parentheses — is used
// in the given domain, feeding the interprocedural summary.
func (w *unitWalker) demand(e ast.Expr, d unitDom) {
	if d == 0 || d == domNone {
		return
	}
	i := w.paramRoot(e)
	if i < 0 || i >= len(w.sum.params) {
		return
	}
	if w.sum.params[i]|d != w.sum.params[i] {
		w.sum.params[i] |= d
		w.sumChanged = true
		w.iterating = true
	}
}

// paramRoot strips conversions, parens, and unary ops down to an
// identifier and returns its parameter index, or -1.
func (w *unitWalker) paramRoot(e ast.Expr) int {
	info := w.info()
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return -1
			}
			return paramIndexOf(w.fn.Obj.Type().(*types.Signature), obj)
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if _, ok := isConversion(info, x); ok && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return -1
		default:
			return -1
		}
	}
}

// domainOf computes an expression's domain.
func (w *unitWalker) domainOf(e ast.Expr) unitDom {
	if e == nil {
		return 0
	}
	info := w.info()
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.domainOf(e.X)
	case *ast.UnaryExpr:
		return w.domainOf(e.X)
	case *ast.StarExpr:
		return w.domainOf(e.X)
	case *ast.Ident:
		return w.identDomain(info.ObjectOf(e))
	case *ast.SelectorExpr:
		return w.identDomain(info.ObjectOf(e.Sel))
	case *ast.IndexExpr:
		return w.domainOf(e.X)
	case *ast.SliceExpr:
		return w.domainOf(e.X)
	case *ast.CallExpr:
		return w.callDomain(e)
	case *ast.BinaryExpr:
		return w.binaryDomain(e)
	}
	return typeDomain(info.TypeOf(e))
}

// identDomain classifies a declared object: learned state, then type,
// then name hint, then (for parameters) the interprocedural demand.
func (w *unitWalker) identDomain(obj types.Object) unitDom {
	if obj == nil {
		return 0
	}
	d := w.state[obj] | declaredDomain(obj.Type(), obj.Name())
	if i := paramIndexOf(w.fn.Obj.Type().(*types.Signature), obj); i >= 0 && i < len(w.sum.params) {
		d |= w.sum.params[i]
	}
	return d
}

// callDomain classifies a call's value and checks argument domains
// against the callee's demands.
func (w *unitWalker) callDomain(call *ast.CallExpr) unitDom {
	info := w.info()
	if target, ok := isConversion(info, call); ok && len(call.Args) == 1 {
		operand := w.domainOf(call.Args[0])
		td := typeDomain(target)
		switch {
		case td.hasWall() && operand.hasCycle():
			w.reportf(call.Pos(), "conversion of a cycle-domain value to %s crosses into the wall-clock domain; divide by a tick unit at the boundary instead", types.TypeString(target, nil))
			return domWall
		case td.hasCycle() && operand.hasWall():
			w.reportf(call.Pos(), "conversion of a wall-clock-domain value to cycle-domain %s; virtual time must come from the machine's clock", types.TypeString(target, nil))
			return domCycle
		case td != 0:
			return td
		default:
			// A plain numeric conversion preserves the operand's domain:
			// int64(d) is still wall-clock time.
			return operand
		}
	}

	obj := calleeObj(info, call)
	var out unitDom
	var calleeSum *unitSummary
	if fn, ok := obj.(*types.Func); ok {
		if underAny2(funcQualified(fn), w.pass.Config.CycleFuncs) {
			out |= domCycle
		}
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 1 {
			out |= declaredDomain(sig.Results().At(0).Type(), fn.Name())
		}
		if node := w.pass.Prog.NodeOf(obj); node != nil {
			calleeSum = w.summaries[node]
			if len(calleeSum.results) == 1 {
				out |= calleeSum.results[0]
			}
		}
		// Check arguments against the callee's parameter domains.
		for i, arg := range call.Args {
			if i >= sig.Params().Len() {
				break
			}
			want := declaredDomain(sig.Params().At(i).Type(), sig.Params().At(i).Name())
			if calleeSum != nil && i < len(calleeSum.params) {
				want |= calleeSum.params[i]
			}
			got := w.domainOf(arg)
			if conflicting(want, got) {
				w.reportf(arg.Pos(), "%s argument passed to %s parameter %q of %s", got, want, sig.Params().At(i).Name(), funcQualified(fn))
			} else {
				w.demand(arg, want)
			}
		}
	} else {
		for _, arg := range call.Args {
			w.domainOf(arg)
		}
	}
	if out == 0 {
		out = typeDomain(info.TypeOf(call))
	}
	return out
}

// binaryDomain combines operand domains, reporting cross-domain mixes
// and cancelling same-domain divisions into dimensionless ratios.
func (w *unitWalker) binaryDomain(e *ast.BinaryExpr) unitDom {
	l, r := w.domainOf(e.X), w.domainOf(e.Y)
	switch e.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		if conflicting(l, r) {
			w.reportf(e.OpPos, "cross-domain %q mixes a %s value with a %s value; convert explicitly at a domain boundary", e.Op.String(), l, r)
			return 0
		}
		// One side with a known domain demands it of the other.
		w.demand(e.Y, l)
		w.demand(e.X, r)
	default:
		return 0
	}
	if e.Op == token.QUO && l == r && (l == domCycle || l == domWall) {
		// ticks/ticks or d/time.Millisecond: a dimensionless count —
		// the sanctioned boundary between the domains.
		return domNone
	}
	switch e.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return 0
	}
	d := l | r
	d &^= domNone
	return d
}

func (w *unitWalker) setState(obj types.Object, d unitDom) {
	if obj == nil || d == 0 {
		return
	}
	if w.state[obj]|d != w.state[obj] {
		w.state[obj] |= d
		w.iterating = true
	}
}

// checkAssign reports a cross-domain store and learns local domains.
func (w *unitWalker) checkAssign(lhs, rhs ast.Expr, define bool) {
	ld, rd := w.domainOf(lhs), w.domainOf(rhs)
	if conflicting(ld, rd) {
		w.reportf(lhs.Pos(), "%s %s assigned a %s value; convert explicitly at a domain boundary", ld, types.ExprString(lhs), rd)
		return
	}
	w.demand(rhs, ld)
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && define {
		w.setState(w.info().ObjectOf(id), rd)
	}
}

func (w *unitWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *unitWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			for _, r := range s.Rhs {
				w.domainOf(r)
			}
			return
		}
		for i := range s.Lhs {
			w.checkAssign(s.Lhs[i], s.Rhs[i], s.Tok == token.DEFINE)
		}
	case *ast.ReturnStmt:
		for i, r := range s.Results {
			rd := w.domainOf(r)
			if i >= len(w.sum.results) {
				break
			}
			if conflicting(w.sum.results[i], rd) {
				w.reportf(r.Pos(), "%s return value from a function whose result is %s", rd, w.sum.results[i])
				continue
			}
			if rd != 0 && rd != domNone && w.sum.results[i]|rd != w.sum.results[i] {
				w.sum.results[i] |= rd
				w.sumChanged = true
			}
		}
	case *ast.ExprStmt:
		w.domainOf(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.domainOf(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.domainOf(s.Cond)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.domainOf(s.X)
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.domainOf(s.Tag)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		w.domainOf(s.Value)
	case *ast.GoStmt:
		w.domainOf(s.Call)
	case *ast.DeferStmt:
		w.domainOf(s.Call)
	case *ast.IncDecStmt:
		w.domainOf(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.checkAssign(name, vs.Values[i], true)
						}
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}
