package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nondeterminism enforces the simulator's reproducibility contract:
// under a fixed seed, two runs must produce bit-for-bit identical
// results (the property the determinism smoke tests assert). Three
// sources of run-to-run variation are rejected:
//
//   - the global math/rand functions, which draw from a runtime-seeded
//     source — queries and loaders must thread a seeded *rand.Rand;
//   - wall-clock reads (time.Now, time.Since, time.Sleep, ...), which
//     couple results to host timing instead of the machine's virtual
//     clock;
//   - order-sensitive iteration over maps (including the maps.Keys /
//     maps.Values iterators), whose order changes between runs;
//   - order-sensitive channel drains (range over a channel), whose
//     arrival order depends on host goroutine scheduling — the classic
//     bug in a fan-in merge of parallel simulation results.
//
// Map loops and channel drains are accepted when they are provably
// order-insensitive (pure accumulation such as x += v, counters,
// writes to distinct map keys, delete) or when they only collect
// values into a slice that the same file passes to a sort or slices
// routine before applying.
var Nondeterminism = &Analyzer{
	Name: "nondet",
	Tier: TierIntra,
	Doc:  "reject wall-clock reads, global math/rand, order-sensitive map iteration, and unsorted channel drains in simulation code",
	Run:  runNondeterminism,
}

// randConstructors are the math/rand entry points that build explicit,
// seedable generators; everything else draws from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// wallClockFuncs are the time functions that observe or depend on the
// host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

func runNondeterminism(p *Pass) {
	if !p.inSimPackages() {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		sorted := sortedCollectors(info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				if name, ok := isPackageFunc(obj, "math/rand"); ok && !randConstructors[name] {
					p.Reportf(n.Pos(), "global math/rand.%s draws from a runtime-seeded source; thread a seeded *rand.Rand instead (cf. engine.RunOptions.Seed)", name)
				}
				if name, ok := isPackageFunc(obj, "math/rand/v2"); ok && !randConstructors[name] {
					p.Reportf(n.Pos(), "global math/rand/v2.%s draws from a runtime-seeded source; thread a seeded *rand.Rand instead", name)
				}
				if name, ok := isPackageFunc(obj, "time"); ok && wallClockFuncs[name] {
					p.Reportf(n.Pos(), "time.%s reads the wall clock; simulation state and reports must derive timing from the machine's virtual clock", name)
				}
			case *ast.RangeStmt:
				overChan := rangesOverChan(info, n)
				if !overChan && !rangesOverMap(info, n) {
					return true
				}
				if obj := appendCollector(info, n.Body); obj != nil && sorted[obj] {
					return true // values collected, then sorted in this file
				}
				if orderInsensitiveStmts(info, n.Body.List) {
					return true
				}
				if overChan {
					p.Reportf(n.Pos(), "channel drain order depends on host goroutine scheduling and this loop is order-sensitive; collect the values and sort on a deterministic key before applying, or restrict the body to order-insensitive updates")
				} else {
					p.Reportf(n.Pos(), "map iteration order varies between runs and this loop is order-sensitive; iterate sorted keys or restrict the body to order-insensitive updates")
				}
			}
			return true
		})
	}
}

// rangesOverChan reports whether the range statement drains a channel.
func rangesOverChan(info *types.Info, rng *ast.RangeStmt) bool {
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// rangesOverMap reports whether the range statement iterates a map,
// either directly or through the maps.Keys/Values/All iterators.
func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	if t := info.TypeOf(rng.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	if call, ok := ast.Unparen(rng.X).(*ast.CallExpr); ok {
		if name, ok := isPackageFunc(calleeObj(info, call), "maps"); ok {
			return name == "Keys" || name == "Values" || name == "All"
		}
	}
	return false
}

// sortedCollectors returns the objects that appear as arguments to a
// sort or slices call anywhere in the file — slices whose final order
// does not depend on how they were filled.
func sortedCollectors(info *types.Info, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(info, call)
		if pkg := pkgPathOf(obj); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if o := info.ObjectOf(id); o != nil {
					out[o] = true
				}
			}
		}
		return true
	})
	return out
}

// appendCollector returns the object of x when every statement of the
// body (possibly behind if guards) is `x = append(x, ...)`; nil
// otherwise.
func appendCollector(info *types.Info, body *ast.BlockStmt) types.Object {
	var target types.Object
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.IfStmt:
				if !walk(s.Body.List) {
					return false
				}
				if block, ok := s.Else.(*ast.BlockStmt); ok && !walk(block.List) {
					return false
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
					return false
				}
				id, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return false
				}
				if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
					return false
				}
				first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok || first.Name != id.Name {
					return false
				}
				obj := info.ObjectOf(id)
				if obj == nil || (target != nil && target != obj) {
					return false
				}
				target = obj
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(body.List) {
		return nil
	}
	return target
}

// orderInsensitiveStmts reports whether executing the statements for
// the map's entries in any order yields the same final state:
// commutative accumulation, counters, writes to per-key map slots,
// and deletes qualify; anything else (appends, breaks, returns,
// channel ops, function calls) does not.
func orderInsensitiveStmts(info *types.Info, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(info, s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if !callFree(info, rhs) {
				return false
			}
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// String concatenation is the one op-assign that does not
			// commute: s += k builds a different string per visit order.
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isStringExpr(info, s.Lhs[0]) {
				return false
			}
			return true
		case token.ASSIGN:
			// Plain assignment commutes only when each target is a
			// distinct element (an index expression) or discarded.
			for _, lhs := range s.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
				case *ast.Ident:
					if l.Name != "_" {
						return false
					}
				default:
					return false
				}
			}
			return true
		}
		return false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && fn.Name == "delete"
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if s.Init != nil || !callFree(info, s.Cond) {
			return false
		}
		if !orderInsensitiveStmts(info, s.Body.List) {
			return false
		}
		if block, ok := s.Else.(*ast.BlockStmt); ok {
			return orderInsensitiveStmts(info, block.List)
		}
		return s.Else == nil
	case *ast.BlockStmt:
		return orderInsensitiveStmts(info, s.List)
	}
	return false
}

// isStringExpr reports whether the expression has a string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pureBuiltins never observe iteration order or mutate state.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true, "abs": true,
}

// callFree reports whether the expression contains no function calls
// other than pure builtins.
func callFree(info *types.Info, e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, ok := calleeObj(info, call).(*types.Builtin); ok && pureBuiltins[b.Name()] {
			return true
		}
		free = false
		return false
	})
	return free
}
