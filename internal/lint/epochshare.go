package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochShare enforces the epoch-ownership contract of the parallel
// simulator (DESIGN.md §11, §14): code running in a goroutine spawned
// between merge barriers may write only goroutine-local state or state
// whose sharing discipline is declared with //conc:shared, and may
// never reach a //conc:barrier function. The analysis roots at go
// statements and walks the call graph — function literals, local
// function values, named callees, and every declared implementation of
// a dynamically dispatched interface method (the class-hierarchy
// closure of the PR 3 soundness caveat).
var EpochShare = &Analyzer{
	Name:      "epochshare",
	Doc:       "goroutine-spawned code writes only goroutine-local or //conc:shared state",
	Tier:      TierConc,
	RunModule: runEpochShare,
}

func runEpochShare(p *ModulePass) {
	ci := p.Prog.concDirectives()
	for _, pr := range ci.problems {
		p.Reportf(pr.pos, "malformed directive: want %s <reason>", pr.marker)
	}
	es := &epochShare{
		p:          p,
		ci:         ci,
		visitedFn:  make(map[*FuncNode]bool),
		visitedLit: make(map[*ast.FuncLit]bool),
	}
	for _, site := range spawnSites(p) {
		es.spawn(site)
	}
}

// epochShare is the per-run state of the spawn-rooted walk. Functions
// and literals are visited once, under the provenance of the first
// spawn that reached them; visit order follows Funcs order and source
// order, so provenance is deterministic.
type epochShare struct {
	p          *ModulePass
	ci         *concInfo
	visitedFn  map[*FuncNode]bool
	visitedLit map[*ast.FuncLit]bool
}

// esCtx is one body being checked in spawned context.
type esCtx struct {
	pkg  *Package
	root string // the function whose go statement we descended from
	// declLo/declHi span the whole declaration (parameters included):
	// an object declared inside is at worst a parameter, outside is
	// captured or global. bodyLo/bodyHi span the body alone: objects
	// inside are context-local variables.
	declLo, declHi token.Pos
	bodyLo, bodyHi token.Pos
	// aliasExt marks context-local variables that alias external memory
	// (initialized from a pointer, slice or map reaching outside).
	aliasExt map[types.Object]bool
	// reportAt maps a finding position into the analyzed set: inside an
	// analyzed function it is the identity; inside a dependency-only
	// function every finding lands on the frontier call site instead.
	reportAt func(token.Pos) token.Pos
	// suffix names the dependency function when reportAt redirects.
	suffix string
	// lits resolves single-assignment local function values of the
	// enclosing declaration.
	lits map[types.Object]*ast.FuncLit
}

// spawn analyzes one go statement: the spawned callee and everything
// reachable from it run in worker context.
func (es *epochShare) spawn(site spawnSite) {
	root := hotFuncName(site.fn)
	lits := localFuncLits(site.fn)
	es.resolveCall(site.fn.Pkg, site.stmt.Call, root, site.stmt.Pos(), lits, nil)
}

// resolveCall routes one call made in spawned context to its targets.
// host is non-nil when the call was found while walking a context (its
// reportAt/suffix carry the frontier); for the go statement itself the
// site is always analyzed.
func (es *epochShare) resolveCall(pkg *Package, call *ast.CallExpr, root string, pos token.Pos, lits map[types.Object]*ast.FuncLit, host *esCtx) {
	reportPos := pos
	suffix := ""
	if host != nil {
		reportPos = host.reportAt(pos)
		suffix = host.suffix
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		es.walkLit(pkg, lit, root, reportPos, suffix, lits)
		return
	}
	obj := calleeObj(pkg.Info, call)
	if obj == nil {
		return
	}
	if lit, ok := lits[obj]; ok {
		es.walkLit(pkg, lit, root, reportPos, suffix, lits)
		return
	}
	if callee := es.p.Prog.NodeOf(obj); callee != nil {
		es.enter(callee, root, reportPos, suffix)
		return
	}
	if m, ok := interfaceMethod(obj); ok {
		for _, impl := range es.p.Prog.implementersOf(m) {
			es.enter(impl, root, reportPos, suffix)
		}
	}
}

// enter checks the barrier rule and then walks a named callee in
// spawned context.
func (es *epochShare) enter(fn *FuncNode, root string, via token.Pos, suffix string) {
	if why, ok := es.ci.barriers[fn]; ok {
		es.p.Reportf(via, "goroutine-spawned code calls //conc:barrier function %s%s (spawned in %s; barrier rationale: %s)",
			hotFuncName(fn), suffix, root, why)
		return
	}
	if es.visitedFn[fn] {
		return
	}
	es.visitedFn[fn] = true
	ctx := &esCtx{
		pkg:    fn.Pkg,
		root:   root,
		declLo: fn.Decl.Pos(),
		declHi: fn.Decl.End(),
		bodyLo: fn.Decl.Body.Pos(),
		bodyHi: fn.Decl.Body.End(),
		lits:   localFuncLits(fn),
	}
	if es.p.analyzed(fn) {
		ctx.reportAt = func(pos token.Pos) token.Pos { return pos }
	} else {
		// Findings inside a dependency-only package would be dropped by
		// Reportf; attribute them to the frontier call site instead.
		ctx.reportAt = func(token.Pos) token.Pos { return via }
		ctx.suffix = " (in " + hotFuncName(fn) + ")"
	}
	es.walkCtx(ctx, fn.Decl.Body)
}

// walkLit walks a function literal spawned (or called from spawned
// context) inside the declaration whose lits map resolved it.
func (es *epochShare) walkLit(pkg *Package, lit *ast.FuncLit, root string, via token.Pos, suffix string, lits map[types.Object]*ast.FuncLit) {
	if es.visitedLit[lit] {
		return
	}
	es.visitedLit[lit] = true
	ctx := &esCtx{
		pkg:    pkg,
		root:   root,
		declLo: lit.Pos(),
		declHi: lit.End(),
		bodyLo: lit.Body.Pos(),
		bodyHi: lit.Body.End(),
		suffix: suffix,
		lits:   lits,
	}
	if suffix == "" {
		ctx.reportAt = func(pos token.Pos) token.Pos { return pos }
	} else {
		ctx.reportAt = func(token.Pos) token.Pos { return via }
	}
	es.walkCtx(ctx, lit.Body)
}

// walkCtx checks every write and resolves every call of one context
// body.
func (es *epochShare) walkCtx(ctx *esCtx, body *ast.BlockStmt) {
	ctx.aliasExt = es.aliasScan(ctx, body)
	info := ctx.pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				es.checkWrite(ctx, lhs)
			}
		case *ast.IncDecStmt:
			es.checkWrite(ctx, n.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "copy" || b.Name() == "clear") {
					es.checkWrite(ctx, n.Args[0])
					return true
				}
			}
			es.resolveCall(ctx.pkg, n, ctx.root, n.Pos(), ctx.lits, ctx)
		}
		return true
	})
}

// aliasScan marks the context-local variables that alias external
// memory: a pointer, slice or map initialized (directly or through a
// chain of locals) from a parameter, captured variable, global, or
// range/receive over one. Locals bound to fresh allocations (composite
// literals, calls, new) stay local.
func (es *epochShare) aliasScan(ctx *esCtx, body *ast.BlockStmt) map[types.Object]bool {
	info := ctx.pkg.Info
	ext := make(map[types.Object]bool)
	extRoot := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		root := rootObj(info, e)
		if root == nil {
			return false
		}
		if root.Pos() >= ctx.bodyLo && root.Pos() < ctx.bodyHi {
			return ext[root]
		}
		return true
	}
	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || ext[obj] {
			return
		}
		if !pointerish(info.TypeOf(id)) {
			return
		}
		if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if extRoot(u.X) {
				ext[obj] = true
			}
			return
		}
		if extRoot(rhs) {
			ext[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					mark(lhs, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, n.Values[i])
				}
			}
		case *ast.RangeStmt:
			// The value variable of a range over external memory (or any
			// channel receive) aliases it when the element is a pointer,
			// slice or map; a plain struct element arrives as a copy.
			if n.Tok == token.DEFINE && n.Value != nil {
				if id, ok := n.Value.(*ast.Ident); ok && pointerish(info.TypeOf(id)) && extRoot(n.X) {
					if obj := info.ObjectOf(id); obj != nil {
						ext[obj] = true
					}
				}
			}
		}
		return true
	})
	return ext
}

// checkWrite classifies one lvalue written in spawned context.
func (es *epochShare) checkWrite(ctx *esCtx, lhs ast.Expr) {
	info := ctx.pkg.Info
	e := ast.Unparen(lhs)
	if id, ok := e.(*ast.Ident); ok {
		// Rebinding a variable: local for anything declared in the
		// context (body variables and parameter copies alike).
		if id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		v, isVar := obj.(*types.Var)
		if !isVar || (v.Pos() >= ctx.declLo && v.Pos() < ctx.declHi) {
			return
		}
		if _, ok := es.ci.sharedFields[qualifiedObj(v)]; ok {
			return
		}
		es.p.Reportf(ctx.reportAt(lhs.Pos()),
			"goroutine-spawned code rebinds non-local variable %s%s (spawned in %s); make it goroutine-local or annotate //conc:shared",
			v.Name(), ctx.suffix, ctx.root)
		return
	}

	root := rootObj(info, e)
	rv, ok := root.(*types.Var)
	if !ok {
		return
	}
	external := true
	if rv.Pos() >= ctx.bodyLo && rv.Pos() < ctx.bodyHi {
		external = ctx.aliasExt[rv]
	}
	if !external {
		return
	}
	desc, shared := es.sharedDesc(info, e, rv)
	if shared {
		return
	}
	es.p.Reportf(ctx.reportAt(lhs.Pos()),
		"goroutine-spawned code writes shared state %s%s (spawned in %s); make it core-local, defer it to the merge barrier, or annotate //conc:shared",
		desc, ctx.suffix, ctx.root)
}

// sharedDesc names the written location and reports whether a
// //conc:shared annotation covers it: the written field ("Type.field"
// keys), the field's owner type, the root variable (package variables),
// or the named type of the written location itself (writes through a
// plain pointer).
func (es *epochShare) sharedDesc(info *types.Info, lhs ast.Expr, root *types.Var) (string, bool) {
	for e := ast.Unparen(lhs); ; {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			f, ok := info.ObjectOf(x.Sel).(*types.Var)
			if !ok || !f.IsField() {
				e = ast.Unparen(x.X)
				continue
			}
			owner, ok := derefNamed(info.TypeOf(x.X)).(*types.Named)
			if !ok {
				return f.Name(), false
			}
			key := qualifiedObj(owner.Obj())
			if _, ok := es.ci.sharedFields[key+"."+f.Name()]; ok {
				return "", true
			}
			if _, ok := es.ci.sharedTypes[key]; ok {
				return "", true
			}
			return owner.Obj().Name() + "." + f.Name(), false
		default:
			// No field selector on the path: a write through a bare
			// pointer/slice/map root. Accept an annotation on the root
			// variable (package state) or on the written location's
			// named type.
			if _, ok := es.ci.sharedFields[qualifiedObj(root)]; ok {
				return "", true
			}
			if t, ok := derefNamed(info.TypeOf(lhs)).(*types.Named); ok {
				if _, ok := es.ci.sharedTypes[qualifiedObj(t.Obj())]; ok {
					return "", true
				}
			}
			return root.Name(), false
		}
	}
}

// pointerish reports whether values of t can alias memory owned
// elsewhere when copied.
func pointerish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}
