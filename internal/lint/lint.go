// Package lint is a self-contained static-analysis framework for this
// repository, built only on the standard library (go/parser, go/ast,
// go/types with the source importer) so it runs offline with zero
// module dependencies.
//
// The simulator's correctness rests on invariants the compiler cannot
// see: runs must be bit-for-bit deterministic under a fixed seed, CAT
// capacity masks must be non-empty and contiguous as the hardware
// requires (PAPER.md Section V), every scheduler job must carry an
// explicit cache-usage identifier, errors from resctrl writes must not
// be dropped, and locks must neither be copied nor held across
// blocking channel operations. Each invariant is enforced by one
// Analyzer; cmd/cachelint runs them all over the module.
//
// Intentional exceptions are annotated in the source with
//
//	//lint:allow <check> <reason>
//
// on the flagged line or the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Config parameterises the analyzers so the same framework lints both
// the real module and the golden-test fixtures.
type Config struct {
	// ModulePath is the module being linted (from go.mod).
	ModulePath string

	// SimPrefixes lists import-path prefixes inside which the
	// nondeterminism analyzer applies. Simulation results and reports
	// must be reproducible, so by default this is the whole module.
	SimPrefixes []string

	// MaskType is the fully qualified CAT capacity-mask type; constant
	// expressions of this type must be non-empty and contiguous.
	MaskType string

	// MaskPackages lists packages whose call sites take schemata
	// strings; constant string arguments to parameters named
	// "schemata" are validated like masks.
	MaskPackages []string

	// PhaseType is the fully qualified job-phase struct type whose
	// composite literals must set CUIDField explicitly.
	PhaseType string
	CUIDField string

	// ErrPackages lists packages whose error returns must not be
	// discarded implicitly.
	ErrPackages []string

	// SinkPackages lists the packages holding simulator state: the
	// taintflow analyzer reports only when a nondeterministic value
	// reaches a call, composite literal, or field write of one of
	// these packages.
	SinkPackages []string

	// CycleFuncs lists qualified functions ("pkgpath.Name" or
	// "pkgpath.Recv.Name") whose integer results live in the
	// simulator's cycle/tick domain regardless of their names.
	CycleFuncs []string

	// ReportAllowed includes diagnostics suppressed by //lint:allow in
	// the results, marked Allowed — the machine-readable mode surfaces
	// them so reviewers can audit the escape hatch.
	ReportAllowed bool

	// BatchFuncs maps qualified per-element access functions
	// ("pkgpath.Recv.Name") to the name of their batch counterpart. The
	// hotbatch analyzer flags unconditional per-iteration calls to a key
	// inside hot loops and suggests the value.
	BatchFuncs map[string]string
}

// DefaultConfig returns the repository's production configuration.
func DefaultConfig(module string) Config {
	return Config{
		ModulePath:   module,
		SimPrefixes:  []string{module},
		MaskType:     module + "/internal/cat.WayMask",
		MaskPackages: []string{module + "/internal/cat", module + "/internal/resctrl"},
		PhaseType:    module + "/internal/engine.Phase",
		CUIDField:    "CUID",
		ErrPackages:  []string{"os", module + "/internal/resctrl", module + "/internal/fault"},
		SinkPackages: []string{
			module + "/internal/cachesim",
			module + "/internal/engine",
			module + "/internal/adapt",
			module + "/internal/fault",
			module + "/internal/serve",
		},
		CycleFuncs: []string{
			module + "/internal/cachesim.Machine.Now",
			module + "/internal/cachesim.Machine.MaxNow",
			module + "/internal/cachesim.Machine.Ticks",
			module + "/internal/engine.StreamResult.Percentile",
		},
		BatchFuncs: map[string]string{
			module + "/internal/cachesim.Machine.Access": "Machine.AccessBatch",
			module + "/internal/cachesim.CoreSim.Access": "CoreSim.AccessBatch",
			module + "/internal/exec.Ctx.Read":           "Ctx.ReadBatch",
			module + "/internal/exec.Ctx.Write":          "Ctx.ReadBatch",
		},
	}
}

// Analyzer is one named check. Exactly one of Run and RunModule is
// set: Run analyzers inspect one package at a time and may execute in
// parallel across packages; RunModule analyzers see the whole
// analyzed module at once through the shared interprocedural Program
// (call graph plus per-function summaries).
type Analyzer struct {
	// Name is the check identifier used in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-line description of the invariant the check guards.
	Doc string
	// Tier groups analyzers for selection by cmd/cachelint -tier:
	// "intra" (single-package correctness), "inter" (interprocedural
	// correctness), "perf" (hot-path performance), or "conc"
	// (concurrency isolation: the epoch-ownership contract).
	Tier string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunModule inspects the whole analyzed package set at once.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Config   Config
	Fset     *token.FileSet
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless an allow directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	emit(p.report, p.Pkg, p.Config, p.Analyzer.Name, p.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// emit applies the allow-directive policy shared by package and module
// passes: a suppressed diagnostic is dropped, or kept with Allowed set
// when the configuration asks for the full audit trail.
func emit(report func(Diagnostic), pkg *Package, cfg Config, check string, position token.Position, msg string) {
	d := Diagnostic{Pos: position, Check: check, Message: msg}
	if pkg.allowed(position, check) {
		if !cfg.ReportAllowed {
			return
		}
		d.Allowed = true
	}
	report(d)
}

// ModulePass carries one module-level analyzer's view of the whole
// analyzed package set, including the shared interprocedural program.
type ModulePass struct {
	Analyzer *Analyzer
	Config   Config
	Fset     *token.FileSet
	Prog     *Program

	// byFile maps source filenames to their analyzed package, the
	// reporting set — positions in packages loaded only as
	// dependencies of the analysis are dropped.
	byFile map[string]*Package
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos when it falls inside an analyzed
// package and no allow directive suppresses it.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	pkg := p.byFile[position.Filename]
	if pkg == nil {
		return
	}
	emit(p.report, pkg, p.Config, p.Analyzer.Name, position, fmt.Sprintf(format, args...))
}

// analyzed reports whether the function is part of the reporting set
// (as opposed to a dependency loaded only for its summaries).
func (p *ModulePass) analyzed(fn *FuncNode) bool {
	return p.byFile[p.Fset.Position(fn.Decl.Pos()).Filename] != nil
}

// Diagnostic is one finding, rendered as "file:line:col: [check] msg".
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Allowed marks a finding suppressed by a //lint:allow directive,
	// reported only under Config.ReportAllowed.
	Allowed bool
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	if d.Allowed {
		s += " (allowed)"
	}
	return s
}

// less orders diagnostics for stable output.
func (d Diagnostic) less(o Diagnostic) bool {
	if d.Pos.Filename != o.Pos.Filename {
		return d.Pos.Filename < o.Pos.Filename
	}
	if d.Pos.Line != o.Pos.Line {
		return d.Pos.Line < o.Pos.Line
	}
	if d.Pos.Column != o.Pos.Column {
		return d.Pos.Column < o.Pos.Column
	}
	if d.Check != o.Check {
		return d.Check < o.Check
	}
	if d.Message != o.Message {
		return d.Message < o.Message
	}
	return !d.Allowed && o.Allowed
}

// inSimPackages reports whether the pass's package falls under one of
// the configured simulation prefixes.
func (p *Pass) inSimPackages() bool {
	return underAny(p.Pkg.Path, p.Config.SimPrefixes)
}

// underAny reports whether path equals or is nested below any prefix.
func underAny(path string, prefixes []string) bool {
	for _, pre := range prefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

// calleeObj resolves the object a call expression invokes: a function,
// method, builtin, or type (for conversions). Returns nil when the
// callee is not a simple identifier or selector.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// qualifiedName renders a named type as "pkgpath.Name", or "" for
// unnamed types.
func qualifiedName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// pkgPathOf returns the import path of the package defining obj, or ""
// for universe-scope objects (builtins, error).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isPackageFunc reports whether obj is the package-level function
// pkg.name (methods do not match).
func isPackageFunc(obj types.Object, pkg string) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || pkgPathOf(fn) != pkg {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}
