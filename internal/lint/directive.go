package lint

import (
	"go/token"
	"strings"
)

// directivePrefix introduces an allow directive:
//
//	//lint:allow <check> <reason>
//
// It suppresses diagnostics of the named check (or of every check,
// with "all") on its own line and on the line directly below, so it
// can trail the flagged statement or sit on its own line above it.
const directivePrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	check  string
	reason string
	pos    token.Position
}

// collectDirectives scans every comment of the package once, indexing
// directives by file and line and keeping a flat in-source-order list
// for validation.
func (p *Package) collectDirectives(fset *token.FileSet) {
	p.directives = make(map[string]map[int][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := directive{pos: pos}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
				p.allDirectives = append(p.allDirectives, d)
			}
		}
	}
}

// allowed reports whether a diagnostic of the given check at pos is
// suppressed by a well-formed directive on the same line or the line
// above.
func (p *Package) allowed(pos token.Position, check string) bool {
	byLine := p.directives[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.reason == "" {
				continue // malformed; runner reports it, never suppresses
			}
			if d.check == check || d.check == "all" {
				return true
			}
		}
	}
	return false
}

// directiveProblems validates every directive of the package against
// the known check names and returns diagnostics for malformed or
// unknown ones.
func (p *Package) directiveProblems(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range p.allDirectives {
		switch {
		case d.check == "" || d.reason == "":
			out = append(out, Diagnostic{
				Pos:     d.pos,
				Check:   "directive",
				Message: "malformed directive: want //lint:allow <check> <reason>",
			})
		case d.check != "all" && !known[d.check]:
			out = append(out, Diagnostic{
				Pos:     d.pos,
				Check:   "directive",
				Message: "directive allows unknown check \"" + d.check + "\"",
			})
		}
	}
	return out
}
