package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// ChanProto checks channel lifecycle protocols, extending the
// intraprocedural channel-drain rule of the nondet analyzer to an
// interprocedural one: a summary fixpoint records which parameters a
// function may send on or close, so a close followed by a call that
// sends into the same channel is caught across helper boundaries.
//
// Three rules, each scoped to one straight-line protocol scope (a
// function body outside its go statements, or one spawned literal):
//
//   - close protocol: a second close, a close inside a loop, or a send
//     (direct or through a callee summary) after a close.
//   - producer/capacity deadlock: a constant-capacity channel whose
//     spawned producers can buffer more sends than the capacity while
//     the coordinator reaches a WaitGroup.Wait before any receive —
//     the producers block on the full channel and the Wait never
//     returns.
var ChanProto = &Analyzer{
	Name:      "chanproto",
	Doc:       "channel close/send protocol and producer-capacity deadlocks",
	Tier:      TierConc,
	RunModule: runChanProto,
}

// chanSum records, per parameter index (bitmask), whether the function
// may send on or close that channel parameter.
type chanSum struct{ sends, closes uint64 }

const (
	cpSend = iota
	cpClose
	cpRecv
	cpCallSend
	cpCallClose
)

// chanEvent is one channel operation in source order.
type chanEvent struct {
	pos    token.Pos
	kind   int
	callee string // for cpCallSend/cpCallClose
	inLoop bool
}

func runChanProto(p *ModulePass) {
	sums := chanSummaries(p.Prog)
	for _, fn := range p.Prog.Funcs {
		if !p.analyzed(fn) || !underAny(fn.Pkg.Path, p.Config.SimPrefixes) {
			continue
		}
		checkChanFunc(p, fn, sums)
	}
}

// chanSummaries computes the send/close-on-parameter facts bottom-up.
func chanSummaries(prog *Program) map[*FuncNode]*chanSum {
	sums := make(map[*FuncNode]*chanSum, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		sums[fn] = &chanSum{}
	}
	prog.fixpoint(func(fn *FuncNode) bool {
		info := fn.Pkg.Info
		sig := fn.Obj.Type().(*types.Signature)
		sum := sums[fn]
		before := *sum
		paramBit := func(e ast.Expr) (uint64, bool) {
			obj := chanRoot(info, e)
			if obj == nil {
				return 0, false
			}
			if i := paramIndexOf(sig, obj); i >= 0 {
				return 1 << uint(i), true
			}
			return 0, false
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if bit, ok := paramBit(n.Chan); ok {
					sum.sends |= bit
				}
			case *ast.CallExpr:
				if obj := calleeObj(info, n); obj != nil {
					if b, ok := obj.(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
						if bit, ok := paramBit(n.Args[0]); ok {
							sum.closes |= bit
						}
						return true
					}
					if callee := prog.NodeOf(obj); callee != nil {
						csum := sums[callee]
						for ai, arg := range n.Args {
							if ai >= 64 {
								break
							}
							bit, ok := paramBit(arg)
							if !ok {
								continue
							}
							if csum.sends&(1<<uint(ai)) != 0 {
								sum.sends |= bit
							}
							if csum.closes&(1<<uint(ai)) != 0 {
								sum.closes |= bit
							}
						}
					}
				}
			}
			return true
		})
		return *sum != before
	})
	return sums
}

// chanScope is one straight-line protocol scope with its per-channel
// events.
type chanScope struct {
	roots  []types.Object
	events map[types.Object][]chanEvent
}

func (s *chanScope) add(root types.Object, ev chanEvent) {
	if _, seen := s.events[root]; !seen {
		s.roots = append(s.roots, root)
	}
	s.events[root] = append(s.events[root], ev)
}

type span struct{ lo, hi token.Pos }

func (sp span) contains(pos token.Pos) bool { return pos >= sp.lo && pos < sp.hi }

func checkChanFunc(p *ModulePass, fn *FuncNode, sums map[*FuncNode]*chanSum) {
	info := fn.Pkg.Info
	body := fn.Decl.Body

	// Scope partition: the coordinator body, plus one scope per
	// goroutine-spawned literal. Loop spans drive the in-loop flag.
	var goSpans []span
	var loops []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				goSpans = append(goSpans, span{lit.Body.Pos(), lit.Body.End()})
			}
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, sp := range loops {
			if sp.contains(pos) {
				return true
			}
		}
		return false
	}
	scopeOf := func(pos token.Pos) int {
		for i, sp := range goSpans {
			if sp.contains(pos) {
				return i + 1
			}
		}
		return 0
	}
	scopes := make([]*chanScope, len(goSpans)+1)
	for i := range scopes {
		scopes[i] = &chanScope{events: make(map[types.Object][]chanEvent)}
	}
	record := func(pos token.Pos, root types.Object, ev chanEvent) {
		ev.pos = pos
		ev.inLoop = inLoop(pos)
		scopes[scopeOf(pos)].add(root, ev)
	}

	// makes maps local channels built with a constant capacity to it.
	makes := make(map[types.Object]int64)
	var makeOrder []types.Object
	var waits []token.Pos

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if b, ok := calleeObj(info, call).(*types.Builtin); !ok || b.Name() != "make" {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if chanRoot(info, id) == nil || obj == nil {
					continue
				}
				capacity := int64(0)
				if len(call.Args) >= 2 {
					tv, ok := info.Types[call.Args[1]]
					if !ok || tv.Value == nil {
						continue // dynamic capacity: out of scope
					}
					c, exact := constant.Int64Val(constant.ToInt(tv.Value))
					if !exact {
						continue
					}
					capacity = c
				}
				if _, seen := makes[obj]; !seen {
					makes[obj] = capacity
					makeOrder = append(makeOrder, obj)
				}
			}
		case *ast.SendStmt:
			if root := chanRoot(info, n.Chan); root != nil {
				record(n.Pos(), root, chanEvent{kind: cpSend})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if root := chanRoot(info, n.X); root != nil {
					record(n.Pos(), root, chanEvent{kind: cpRecv})
				}
			}
		case *ast.RangeStmt:
			if root := chanRoot(info, n.X); root != nil {
				record(n.Pos(), root, chanEvent{kind: cpRecv})
			}
		case *ast.CallExpr:
			obj := calleeObj(info, n)
			if obj == nil {
				return true
			}
			if b, ok := obj.(*types.Builtin); ok {
				if b.Name() == "close" && len(n.Args) == 1 {
					if root := chanRoot(info, n.Args[0]); root != nil {
						record(n.Pos(), root, chanEvent{kind: cpClose})
					}
				}
				return true
			}
			if root, name, ok := waitGroupCall(info, n); ok && root != nil && name == "Wait" {
				waits = append(waits, n.Pos())
				return true
			}
			callee := p.Prog.NodeOf(obj)
			if callee == nil {
				return true
			}
			csum := sums[callee]
			for ai, arg := range n.Args {
				if ai >= 64 {
					break
				}
				root := chanRoot(info, arg)
				if root == nil {
					continue
				}
				if csum.sends&(1<<uint(ai)) != 0 {
					record(n.Pos(), root, chanEvent{kind: cpCallSend, callee: hotFuncName(callee)})
				}
				if csum.closes&(1<<uint(ai)) != 0 {
					record(n.Pos(), root, chanEvent{kind: cpCallClose, callee: hotFuncName(callee)})
				}
			}
		}
		return true
	})

	// Rule 1: close protocol, per scope and channel, in source order.
	for _, scope := range scopes {
		for _, root := range scope.roots {
			events := scope.events[root]
			sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
			closed := false
			loopReported := false
			for _, ev := range events {
				switch ev.kind {
				case cpClose, cpCallClose:
					if closed {
						if ev.kind == cpCallClose {
							p.Reportf(ev.pos, "call to %s may close channel %s twice", ev.callee, root.Name())
						} else {
							p.Reportf(ev.pos, "channel %s closed twice", root.Name())
						}
						continue
					}
					closed = true
					if ev.kind == cpClose && ev.inLoop && !loopReported {
						p.Reportf(ev.pos, "close of channel %s inside a loop executes more than once", root.Name())
						loopReported = true
					}
				case cpSend:
					if closed {
						p.Reportf(ev.pos, "send on channel %s after close", root.Name())
					}
				case cpCallSend:
					if closed {
						p.Reportf(ev.pos, "call to %s may send on channel %s after close", ev.callee, root.Name())
					}
				}
			}
		}
	}

	// Rule 2: producer/capacity deadlock for constant-capacity local
	// channels.
	for _, obj := range makeOrder {
		capacity := makes[obj]
		sends := int64(0)
		unbounded := false
		producerRecv := false
		for _, scope := range scopes[1:] {
			for _, ev := range scope.events[obj] {
				switch ev.kind {
				case cpSend, cpCallSend:
					sends++
					if ev.inLoop {
						unbounded = true
					}
				case cpRecv:
					producerRecv = true
				}
			}
		}
		if producerRecv || (sends <= capacity && !unbounded) || sends == 0 {
			continue
		}
		// First coordinator receive; a Wait before it (or with no
		// receive at all) blocks on producers stuck at the full buffer.
		firstRecv := token.Pos(0)
		for _, ev := range scopes[0].events[obj] {
			if ev.kind == cpRecv && (firstRecv == 0 || ev.pos < firstRecv) {
				firstRecv = ev.pos
			}
		}
		for _, w := range waits {
			if firstRecv == 0 || w < firstRecv {
				amount := "more sends than fit"
				if !unbounded {
					amount = "up to " + strconv.FormatInt(sends, 10) + " goroutine sends"
				}
				p.Reportf(w, "Wait can deadlock: %s on channel %s (capacity %d) with no receive before the Wait", amount, obj.Name(), capacity)
				break
			}
		}
	}
}
