package lint

import (
	"go/ast"
	"go/types"
)

// hotbatch flags per-element simulated-access calls inside hot loops
// when a batch counterpart exists. The batched entry points
// (Machine.AccessBatch, Ctx.ReadBatch) amortize the per-call overhead
// — bounds checks, epoch bookkeeping, the L1 fast-path dispatch — over
// a whole run of operations while staying bit-identical to the
// per-call sequence (a BatchOp is exactly Access-then-Compute, and
// consecutive Computes fold linearly), so converting a loop is a pure
// mechanical win. The per-element/batch pairing comes from
// Config.BatchFuncs.
//
// Only unconditional per-iteration calls are flagged: a guarded access
// (probe hit, residual filter) has data-dependent membership that a
// precomputed batch cannot express without changing the simulated
// sequence.
var HotBatch = &Analyzer{
	Name:      "hotbatch",
	Tier:      TierPerf,
	Doc:       "no unconditional per-element access calls in //perf:hot loops when a batch counterpart applies",
	RunModule: runHotBatch,
}

func runHotBatch(p *ModulePass) {
	if len(p.Config.BatchFuncs) == 0 {
		return
	}
	forEachHotFunc(p, func(fn *FuncNode, info hotInfo) {
		typesInfo := fn.Pkg.Info
		w := &hotWalker{visit: func(n ast.Node, inLoop, cond bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !inLoop || cond {
				return
			}
			callee, ok := calleeObj(typesInfo, call).(*types.Func)
			if !ok {
				return
			}
			if batch, ok := p.Config.BatchFuncs[funcQualified(callee)]; ok {
				reportHot(p, fn, info, call.Pos(),
					"per-element %s call on every loop iteration; accumulate BatchOps and flush once with %s", callee.Name(), batch)
			}
		}}
		w.walkBody(fn.Decl.Body)
	})
}
