package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TaintFlow is the interprocedural successor to the nondet check's
// source-site reports: it tracks values *derived from* nondeterministic
// sources — wall-clock reads, the global math/rand functions,
// map-iteration order, select arrival order — through call chains,
// field assignments, and returns, and reports only where such a value
// reaches simulator state (a call, composite literal, or field write
// of a Config.SinkPackages package). That placement eliminates both
// failure modes of the intra-procedural check: a helper that wraps
// time.Now() no longer launders the value past the analysis (the
// helper's summary says its result is tainted), and timing that only
// feeds operator-facing output no longer needs an annotation at all.
//
// Per-function summaries record (a) whether the results carry taint
// from a concrete source, (b) which parameters flow to the results,
// and (c) which parameters reach a sink inside the function; they are
// computed to fixpoint bottom-up over call-graph SCCs and then a
// report-only pass walks each analyzed function with the final
// summaries. The analysis is object-granular (a tainted field taints
// its whole struct variable), flow-insensitive within a function, and
// ignores implicit flows and interface dispatch — see DESIGN.md §9
// for the soundness caveats.
var TaintFlow = &Analyzer{
	Name:      "taintflow",
	Tier:      TierInter,
	Doc:       "no value derived from wall clock, global math/rand, map or select ordering may reach simulator state, across call chains",
	RunModule: runTaintFlow,
}

// taintVal is the dataflow fact attached to one object or expression.
type taintVal struct {
	// src describes the concrete nondeterministic origin ("time.Now",
	// "math/rand.Int (via helper)"), empty when none.
	src string
	// params is a bitmask of the enclosing function's parameters this
	// value derives from, for summary computation.
	params uint64
}

func (t taintVal) zero() bool { return t.src == "" && t.params == 0 }

// merge folds o into t, keeping the first concrete source seen (the
// walk order is deterministic, so so is the choice).
func (t taintVal) merge(o taintVal) taintVal {
	if t.src == "" {
		t.src = o.src
	}
	t.params |= o.params
	return t
}

// taintSummary is one function's interprocedural fact record.
type taintSummary struct {
	// ret is the taint of the function's results: a concrete source
	// description and/or the parameters that flow to a return value.
	ret taintVal
	// paramSink is a bitmask of parameters that reach a simulator-state
	// sink inside this function (transitively).
	paramSink uint64
}

func runTaintFlow(p *ModulePass) {
	summaries := make(map[*FuncNode]*taintSummary, len(p.Prog.Funcs))
	for _, fn := range p.Prog.Funcs {
		summaries[fn] = &taintSummary{}
	}
	// Phase 1: summaries to fixpoint, no reporting.
	p.Prog.fixpoint(func(fn *FuncNode) bool {
		w := &taintWalker{pass: p, summaries: summaries, fn: fn, sum: summaries[fn]}
		return w.walk()
	})
	// Phase 2: report-only walk of the analyzed functions with the
	// final summaries.
	for _, fn := range p.Prog.Funcs {
		if !p.analyzed(fn) || !underAny(fn.Pkg.Path, p.Config.SimPrefixes) {
			continue
		}
		w := &taintWalker{pass: p, summaries: summaries, fn: fn, sum: summaries[fn], reporting: true}
		w.walk()
	}
}

// taintWalker carries one function's walk state.
type taintWalker struct {
	pass      *ModulePass
	summaries map[*FuncNode]*taintSummary
	fn        *FuncNode
	sum       *taintSummary
	reporting bool

	state      map[types.Object]taintVal
	sumChanged bool
	iterating  bool // a state change this pass requests another pass
}

// walk analyses the function body to a local fixpoint (loop-carried
// taint needs repeated passes) and reports whether the function's
// summary changed.
func (w *taintWalker) walk() bool {
	sig := w.fn.Obj.Type().(*types.Signature)
	w.state = make(map[types.Object]taintVal)
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		w.state[sig.Params().At(i)] = taintVal{params: 1 << i}
	}
	for pass := 0; pass < fixpointCap; pass++ {
		w.iterating = false
		w.stmts(w.fn.Decl.Body.List)
		if !w.iterating {
			break
		}
	}
	return w.sumChanged
}

func (w *taintWalker) info() *types.Info { return w.fn.Pkg.Info }

// setState weak-updates an object's taint (facts only accumulate, so
// re-walking is monotone).
func (w *taintWalker) setState(obj types.Object, t taintVal) {
	if obj == nil || t.zero() {
		return
	}
	merged := w.state[obj].merge(t)
	if merged != w.state[obj] {
		w.state[obj] = merged
		w.iterating = true
	}
}

// recordReturn folds taint into the function's result summary.
func (w *taintWalker) recordReturn(t taintVal) {
	merged := w.sum.ret.merge(t)
	if merged != w.sum.ret {
		w.sum.ret = merged
		w.sumChanged = true
	}
}

// sinkReach handles taint arriving at a simulator-state sink: concrete
// taint is reported (in the reporting phase), parameter taint is
// recorded in the summary so callers report at their own sites.
func (w *taintWalker) sinkReach(t taintVal, sink string, pos token.Pos) {
	if t.src != "" && w.reporting {
		w.pass.Reportf(pos, "nondeterministic value derived from %s reaches simulator state (%s); derive it from the run seed or the virtual clock instead", t.src, sink)
	}
	if t.params != 0 && w.sum.paramSink|t.params != w.sum.paramSink {
		w.sum.paramSink |= t.params
		w.sumChanged = true
	}
}

// expr computes the taint of an expression, reporting sinks inside it.
func (w *taintWalker) expr(e ast.Expr) taintVal {
	if e == nil {
		return taintVal{}
	}
	info := w.info()
	switch e := e.(type) {
	case *ast.Ident:
		return w.state[info.ObjectOf(e)]
	case *ast.SelectorExpr:
		if root := rootObj(info, e); root != nil {
			return w.state[root]
		}
		return taintVal{}
	case *ast.CallExpr:
		return w.call(e)
	case *ast.BinaryExpr:
		return w.expr(e.X).merge(w.expr(e.Y))
	case *ast.UnaryExpr:
		return w.expr(e.X)
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.IndexExpr:
		return w.expr(e.X).merge(w.expr(e.Index))
	case *ast.SliceExpr:
		return w.expr(e.X)
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.CompositeLit:
		var t taintVal
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			t = t.merge(w.expr(v))
		}
		if typ := info.TypeOf(e); typ != nil && typeDefinedUnder(typ, w.pass.Config.SinkPackages) && !t.zero() {
			w.sinkReach(t, qualifiedName(derefNamed(typ))+" literal", e.Pos())
		}
		return t
	case *ast.FuncLit:
		// The closure's body is analysed as part of this function
		// (shared state, coarse but sound for accumulation); the
		// closure value itself carries no taint.
		w.stmts(e.Body.List)
		return taintVal{}
	}
	return taintVal{}
}

// derefNamed strips one pointer level for message rendering.
func derefNamed(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// call computes the taint of a call's results and checks its arguments
// against sinks.
func (w *taintWalker) call(call *ast.CallExpr) taintVal {
	info := w.info()
	if _, ok := isConversion(info, call); ok {
		var t taintVal
		for _, a := range call.Args {
			t = t.merge(w.expr(a))
		}
		return t
	}
	obj := calleeObj(info, call)

	// Concrete nondeterminism sources.
	if name, ok := isPackageFunc(obj, "time"); ok && wallClockFuncs[name] {
		return taintVal{src: "time." + name}
	}
	if name, ok := isPackageFunc(obj, "math/rand"); ok && !randConstructors[name] {
		return taintVal{src: "math/rand." + name}
	}
	if name, ok := isPackageFunc(obj, "math/rand/v2"); ok && !randConstructors[name] {
		return taintVal{src: "math/rand/v2." + name}
	}

	sinkCallee := obj != nil && underAny(pkgPathOf(obj), w.pass.Config.SinkPackages)
	callee := w.pass.Prog.NodeOf(obj)
	calleeDesc := ""
	if obj != nil {
		calleeDesc = obj.Name()
		if fn, ok := obj.(*types.Func); ok {
			calleeDesc = funcQualified(fn)
		}
	}

	var out taintVal
	var calleeSum *taintSummary
	if callee != nil {
		calleeSum = w.summaries[callee]
		if calleeSum.ret.src != "" {
			out.src = viaChain(calleeSum.ret.src, callee.Obj.Name())
		}
	}
	for i, arg := range call.Args {
		at := w.expr(arg)
		if at.zero() {
			continue
		}
		bit := uint64(0)
		if i < 64 {
			bit = 1 << i
		}
		if calleeSum != nil {
			if calleeSum.ret.params&bit != 0 {
				out = out.merge(at)
			}
			if calleeSum.paramSink&bit != 0 {
				w.sinkReach(at, "argument to "+calleeDesc+", which forwards it", arg.Pos())
				continue
			}
		}
		if sinkCallee {
			w.sinkReach(at, "argument to "+calleeDesc, arg.Pos())
			continue
		}
		if callee == nil {
			// Unknown (stdlib) callee: results conservatively derive
			// from every argument — fmt.Sprintf(t) stays tainted.
			out = out.merge(at)
		}
	}
	// A method's result may derive from its receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isFunc := info.Uses[sel.Sel].(*types.Func); isFunc {
			out = out.merge(w.expr(sel.X))
		}
	}
	return out
}

// assign applies taint t to an assignment target, checking writes into
// simulator-state structs.
func (w *taintWalker) assign(lhs ast.Expr, t taintVal) {
	info := w.info()
	if !t.zero() {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if bt := info.TypeOf(l.X); bt != nil && typeDefinedUnder(bt, w.pass.Config.SinkPackages) {
				w.sinkReach(t, "field "+l.Sel.Name+" of "+qualifiedName(derefNamed(bt)), lhs.Pos())
			}
		case *ast.IndexExpr:
			if bt := info.TypeOf(l); bt != nil && typeDefinedUnder(bt, w.pass.Config.SinkPackages) {
				w.sinkReach(t, "element of "+qualifiedName(derefNamed(bt)), lhs.Pos())
			}
		}
	}
	w.setState(rootObj(info, lhs), t)
}

func (w *taintWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *taintWalker) stmt(s ast.Stmt) {
	info := w.info()
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				t := w.expr(s.Rhs[i])
				if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
					t = t.merge(w.expr(s.Lhs[i])) // op-assign reads the target too
				}
				w.assign(s.Lhs[i], t)
			}
			return
		}
		// Tuple assignment: every target derives from the one RHS.
		t := w.expr(s.Rhs[0])
		for _, lhs := range s.Lhs {
			w.assign(lhs, t)
		}
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			// Bare return with named results.
			if res := w.fn.Decl.Type.Results; res != nil {
				for _, field := range res.List {
					for _, name := range field.Names {
						w.recordReturn(w.state[info.ObjectOf(name)])
					}
				}
			}
			return
		}
		for _, r := range s.Results {
			w.recordReturn(w.expr(r))
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		if rangesOverMap(info, s) && rangeEscapes(s.Body) {
			src := taintVal{src: "map iteration order"}
			if id, ok := s.Key.(*ast.Ident); ok {
				w.setState(info.ObjectOf(id), src)
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				w.setState(info.ObjectOf(id), src)
			}
		} else {
			// Order-insensitive loops still propagate value taint.
			t := w.expr(s.X)
			if id, ok := s.Value.(*ast.Ident); ok {
				w.setState(info.ObjectOf(id), t)
			}
			if id, ok := s.Key.(*ast.Ident); ok {
				w.setState(info.ObjectOf(id), t)
			}
		}
		w.stmts(s.Body.List)
	case *ast.SelectStmt:
		// Which ready case a select takes is scheduler-dependent; with
		// more than one case (default included) the values received
		// and the branch taken vary between runs.
		racy := len(s.Body.List) >= 2
		for _, clause := range s.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if comm.Comm != nil {
				w.stmt(comm.Comm)
				if racy {
					if a, ok := comm.Comm.(*ast.AssignStmt); ok {
						for _, lhs := range a.Lhs {
							w.assign(lhs, taintVal{src: "select arrival order"})
						}
					}
				}
			}
			w.stmts(comm.Body)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Tag)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.assign(name, w.expr(vs.Values[i]))
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// rangeEscapes reports whether the loop body can exit early (break or
// return), making *which* entries were visited — not just the set —
// observable, so the iteration order leaks into values bound by the
// range clause.
func rangeEscapes(body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}
