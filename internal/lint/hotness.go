package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared base of the performance tier (cacheperf,
// DESIGN.md §12): hotness inference over the interprocedural call
// graph, and the body-walking scaffolding the five hot-path analyzers
// (hotalloc, hotdispatch, hotdefer, hotmap, hotbatch) share.
//
// The simulator's scaling ceiling is the Access/epoch-merge path
// itself (ROADMAP #3): a heap escape or dynamic dispatch that is
// harmless in setup code costs a benchmark point when it sits on a
// path executed once per simulated memory reference. Which code that
// is cannot be derived from profiles here — the lint suite runs
// offline — so hotness is declared and then inferred: a function
// annotated
//
//	//perf:hot <why>
//
// in its doc comment is a hot root, and every function statically
// reachable from a root through the call graph is hot too, because a
// per-access caller makes every callee per-access. Interface dispatch
// and function values have no call-graph edges (the PR 3 soundness
// caveat), so kernels invoked through exec.Kernel carry their own
// //perf:hot annotations.

// hotDirective marks a hot root in a function's doc comment. Text
// after the marker is the reason, for humans; the analyzers only need
// the marker.
const hotDirective = "//perf:hot"

// hotInfo records how a function became hot.
type hotInfo struct {
	// root is the annotated function this one was reached from (itself,
	// for annotated functions).
	root *FuncNode
	// depth is the call-chain distance from the root, 0 for roots.
	depth int
}

// describe renders the provenance for diagnostics: "hot" for roots,
// "hot (reached from Machine.Access)" for propagated functions.
func (h hotInfo) describe() string {
	if h.depth == 0 {
		return "hot"
	}
	return "hot (reached from " + hotFuncName(h.root) + ")"
}

// isHotRoot reports whether the declaration carries a //perf:hot
// marker in its doc comment.
func isHotRoot(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := c.Text
		if text == hotDirective || strings.HasPrefix(text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// hotness computes the hot set once per Program and memoizes it; the
// module analyzers run serially, so no locking is needed. Propagation
// is a breadth-first sweep from the annotated roots in deterministic
// Funcs order, so provenance (which root, at what depth) is stable
// run to run.
func (prog *Program) hotness() map[*FuncNode]hotInfo {
	if prog.hot != nil {
		return prog.hot
	}
	hot := make(map[*FuncNode]hotInfo)
	var frontier []*FuncNode
	for _, fn := range prog.Funcs {
		if isHotRoot(fn.Decl) {
			hot[fn] = hotInfo{root: fn, depth: 0}
			frontier = append(frontier, fn)
		}
	}
	for len(frontier) > 0 {
		var next []*FuncNode
		for _, fn := range frontier {
			info := hot[fn]
			for _, call := range fn.Calls {
				if _, seen := hot[call.Callee]; seen {
					continue
				}
				hot[call.Callee] = hotInfo{root: info.root, depth: info.depth + 1}
				next = append(next, call.Callee)
			}
		}
		frontier = next
	}
	prog.hot = hot
	return hot
}

// forEachHotFunc visits every hot function that belongs to the
// analyzed package set and the configured simulation prefixes, in
// deterministic program order — the reporting loop every perf analyzer
// uses.
func forEachHotFunc(p *ModulePass, visit func(fn *FuncNode, info hotInfo)) {
	hot := p.Prog.hotness()
	for _, fn := range p.Prog.Funcs {
		info, ok := hot[fn]
		if !ok {
			continue
		}
		if !p.analyzed(fn) || !underAny(fn.Pkg.Path, p.Config.SimPrefixes) {
			continue
		}
		visit(fn, info)
	}
}

// hotWalker drives a structural walk of one hot function's body,
// tracking, for every visited node, whether it sits inside a loop and
// whether the path from the function (or enclosing loop) entry crosses
// a conditional. The analyzers use the two flags to separate
// "executes once per call" from "executes once per iteration" and to
// skip guarded cold branches (error paths, rare fallbacks) that live
// inside hot code.
type hotWalker struct {
	// visit receives each expression-bearing node with its context.
	visit func(n ast.Node, inLoop, conditional bool)
}

// walkBody traverses the statements of a function body.
func (w *hotWalker) walkBody(body *ast.BlockStmt) {
	w.stmts(body.List, false, false)
}

func (w *hotWalker) stmts(list []ast.Stmt, inLoop, cond bool) {
	for _, s := range list {
		w.stmt(s, inLoop, cond)
	}
}

// stmt dispatches one statement. Entering a loop sets inLoop and
// clears the conditional flag (the loop body is the new straight-line
// context: it runs on every iteration); entering an if/switch/select
// arm sets conditional.
func (w *hotWalker) stmt(s ast.Stmt, inLoop, cond bool) {
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, inLoop, cond)
		}
		if s.Cond != nil {
			w.expr(s.Cond, true, false)
		}
		if s.Post != nil {
			w.stmt(s.Post, true, false)
		}
		w.stmts(s.Body.List, true, false)
	case *ast.RangeStmt:
		w.visit(s, inLoop, cond)
		w.expr(s.X, inLoop, cond)
		w.stmts(s.Body.List, true, false)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, inLoop, cond)
		}
		w.expr(s.Cond, inLoop, cond)
		w.stmts(s.Body.List, inLoop, true)
		if s.Else != nil {
			w.stmt(s.Else, inLoop, true)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, inLoop, cond)
		}
		if s.Tag != nil {
			w.expr(s.Tag, inLoop, cond)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, inLoop, cond)
				}
				w.stmts(cc.Body, inLoop, true)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, inLoop, cond)
		}
		w.stmt(s.Assign, inLoop, cond)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body, inLoop, true)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, inLoop, true)
				}
				w.stmts(cc.Body, inLoop, true)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, inLoop, cond)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, inLoop, cond)
	case *ast.DeferStmt:
		w.visit(s, inLoop, cond)
		w.expr(s.Call, inLoop, cond)
	case *ast.GoStmt:
		w.visit(s, inLoop, cond)
		w.expr(s.Call, inLoop, cond)
	case *ast.AssignStmt:
		w.visit(s, inLoop, cond)
		for _, e := range s.Lhs {
			w.expr(e, inLoop, cond)
		}
		for _, e := range s.Rhs {
			w.expr(e, inLoop, cond)
		}
	case *ast.ExprStmt:
		w.expr(s.X, inLoop, cond)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, inLoop, cond)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, inLoop, cond)
	case *ast.SendStmt:
		w.expr(s.Chan, inLoop, cond)
		w.expr(s.Value, inLoop, cond)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.visit(vs, inLoop, cond)
					for _, v := range vs.Values {
						w.expr(v, inLoop, cond)
					}
				}
			}
		}
	}
}

// expr walks one expression tree. A function literal is a new
// deferred context: code inside it does not run where it appears, so
// its body is walked as conditional (it may never run here) and out of
// the enclosing loop context.
func (w *hotWalker) expr(e ast.Expr, inLoop, cond bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.visit(n, inLoop, cond)
			w.stmts(n.Body.List, false, true)
			return false
		case *ast.CallExpr, *ast.CompositeLit, *ast.BinaryExpr,
			*ast.IndexExpr, *ast.UnaryExpr:
			w.visit(n, inLoop, cond)
		}
		return true
	})
}

// hotFuncName formats a function for messages: "Machine.Access" or
// "helper".
func hotFuncName(fn *FuncNode) string {
	name := fn.Obj.Name()
	if recv := receiverOf(fn); recv != nil {
		if named, ok := derefNamed(recv.Type()).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return name
}

// reportHot is the shared reporting shim: every perf diagnostic names
// the function and its hotness provenance the same way.
func reportHot(p *ModulePass, fn *FuncNode, info hotInfo, pos token.Pos, format string, args ...any) {
	prefix := hotFuncName(fn) + " is " + info.describe() + ": "
	p.Reportf(pos, prefix+format, args...)
}
