package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"
	"strconv"
	"strings"
)

// MaskCheck validates CAT capacity masks that are decidable at compile
// time. Real hardware rejects empty and non-contiguous masks
// (PAPER.md Section V-A); the runtime model returns errors for them,
// but a constant bad mask is a bug that should never survive review.
// Two shapes are checked module-wide:
//
//   - every constant expression of the configured WayMask type
//     (conversions, call arguments, composite-literal fields);
//   - constant schemata strings ("L3:0=<hexmask>") passed to
//     parameters named "schemata" of the cat/resctrl packages.
var MaskCheck = &Analyzer{
	Name: "maskcheck",
	Tier: TierIntra,
	Doc:  "constant CAT capacity masks must be non-empty and contiguous",
	Run:  runMaskCheck,
}

func runMaskCheck(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		tolerant := zeroTolerantExprs(f)
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkSchemataArgs(p, call)
			}
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := info.Types[e]
			if !ok || tv.Value == nil || qualifiedName(tv.Type) != p.Config.MaskType {
				return true
			}
			if msg := maskProblem(tv.Value, tolerant[e]); msg != "" {
				p.Reportf(e.Pos(), "%s", msg)
			}
			// The operand of a flagged conversion carries the same
			// constant; do not report it twice.
			return false
		})
	}
}

// zeroTolerantExprs marks the expressions where a zero mask is a
// legitimate sentinel rather than a mask being programmed: operands
// of comparisons and returned values. Non-contiguous constants stay
// illegal even there.
func zeroTolerantExprs(f *ast.File) map[ast.Expr]bool {
	out := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				out[ast.Unparen(n.X)] = true
				out[ast.Unparen(n.Y)] = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				out[ast.Unparen(r)] = true
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				out[ast.Unparen(e)] = true
			}
		}
		return true
	})
	return out
}

// maskProblem validates a constant capacity mask, returning a
// diagnostic message or "". zeroOK marks sentinel positions where an
// empty mask is tolerated.
func maskProblem(v constant.Value, zeroOK bool) string {
	u, exact := constant.Uint64Val(constant.ToInt(v))
	if !exact {
		return fmt.Sprintf("capacity mask %v is not an unsigned integer", v)
	}
	if u == 0 && zeroOK {
		return ""
	}
	return maskBitsProblem(u)
}

// maskBitsProblem validates a mask's bit pattern.
func maskBitsProblem(u uint64) string {
	if u == 0 {
		return "empty capacity mask 0x0: CAT requires at least one way"
	}
	if u > 1<<32-1 {
		return fmt.Sprintf("capacity mask %#x exceeds the 32-way register width", u)
	}
	run := u >> bits.TrailingZeros64(u)
	if run&(run+1) != 0 {
		return fmt.Sprintf("non-contiguous capacity mask %#x: CAT requires one contiguous run of ways", u)
	}
	return ""
}

// checkSchemataArgs validates constant strings passed to "schemata"
// parameters of the configured mask packages.
func checkSchemataArgs(p *Pass, call *ast.CallExpr) {
	obj := calleeObj(p.Pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || !underAny(pkgPathOf(fn), p.Config.MaskPackages) {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if !strings.Contains(strings.ToLower(sig.Params().At(i).Name()), "schemata") {
			continue
		}
		arg := call.Args[i]
		tv, ok := p.Pkg.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if msg := schemataProblem(constant.StringVal(tv.Value)); msg != "" {
			p.Reportf(arg.Pos(), "%s", msg)
		}
	}
}

// schemataProblem statically validates a kernel-format schemata line,
// mirroring resctrl.ParseSchemata for cache id 0.
func schemataProblem(s string) string {
	rest, ok := strings.CutPrefix(strings.TrimSpace(s), "L3:")
	if !ok {
		return fmt.Sprintf("schemata %q must start with \"L3:\"", s)
	}
	for _, clause := range strings.FieldsFunc(rest, func(r rune) bool { return r == ';' || r == ' ' }) {
		id, val, ok := strings.Cut(clause, "=")
		if !ok || strings.TrimSpace(id) != "0" {
			continue
		}
		u, err := strconv.ParseUint(strings.TrimSpace(val), 16, 64)
		if err != nil {
			return fmt.Sprintf("schemata %q has a malformed hex mask", s)
		}
		return maskBitsProblem(u)
	}
	return fmt.Sprintf("schemata %q has no clause for cache id 0", s)
}
