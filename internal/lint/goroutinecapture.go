package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture flags variable-capture hazards at goroutine spawn
// sites. Since Go 1.22 loop variables are per-iteration, so the
// classic range-variable capture is safe; what still bites is state
// the loop reuses across iterations while spawned goroutines read it:
//
//   - a goroutine capturing a variable declared outside its enclosing
//     loop that the loop body reassigns — every iteration's goroutine
//     races the next iteration's write (the pre-1.22 bug, rebuilt by
//     hand);
//   - a captured slice reassigned (reset, reused, appended) after the
//     spawn with no WaitGroup.Wait in between — exactly the task-slice
//     reuse pattern of the engine's epoch loops, which is only safe
//     because the barrier Wait sits between the spawn and the reset.
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc:  "loop-variable and slice aliasing captured by spawned goroutines",
	Tier: TierConc,
	Run:  runGoroutineCapture,
}

func runGoroutineCapture(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCaptures(p, fd)
		}
	}
}

func checkCaptures(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info

	// Loop body spans, innermost resolvable by smallest span; plain
	// rebindings of each variable; Wait call positions.
	var loops []span
	rebinds := make(map[types.Object][]token.Pos)
	var waits []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					if obj := info.ObjectOf(id); obj != nil {
						rebinds[obj] = append(rebinds[obj], id.Pos())
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					rebinds[obj] = append(rebinds[obj], id.Pos())
				}
			}
		case *ast.CallExpr:
			if _, name, ok := waitGroupCall(info, n); ok && name == "Wait" {
				waits = append(waits, n.Pos())
			}
		}
		return true
	})
	innermost := func(pos token.Pos) (span, bool) {
		best := span{}
		found := false
		for _, l := range loops {
			if !l.contains(pos) {
				continue
			}
			if !found || (l.hi-l.lo) < (best.hi-best.lo) {
				best, found = l, true
			}
		}
		return best, found
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		litSpan := span{lit.Pos(), lit.End()}

		// Captured variables: objects used inside the literal, declared
		// in this function but outside the literal. First use position
		// kept for deterministic reporting.
		captured := make(map[types.Object]token.Pos)
		var order []types.Object
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if v.Pos() < fd.Pos() || v.Pos() >= fd.End() || litSpan.contains(v.Pos()) {
				return true
			}
			if _, seen := captured[v]; !seen {
				captured[v] = id.Pos()
				order = append(order, v)
			}
			return true
		})

		loop, inLoop := innermost(g.Pos())
		for _, v := range order {
			// Rule 1: captured variable declared outside the innermost
			// loop around the spawn, reassigned inside it — the next
			// iteration overwrites what this goroutine reads.
			if inLoop && !loop.contains(v.Pos()) {
				for _, rb := range rebinds[v] {
					if loop.contains(rb) && !litSpan.contains(rb) {
						p.Reportf(g.Pos(), "goroutine captures %s, which the enclosing loop reassigns at line %d; pass it as an argument or declare it inside the loop",
							v.Name(), p.Fset.Position(rb).Line)
						break
					}
				}
			}

			// Rule 2: captured slice reassigned after the spawn with no
			// Wait between — the goroutine may still be reading the old
			// backing array while it is reused. In a loop the reset can
			// also precede the spawn textually and strike on the next
			// iteration (wrap-around), unless a Wait sits on that path.
			if _, ok := v.Type().Underlying().(*types.Slice); !ok {
				continue
			}
			for _, rb := range rebinds[v] {
				if litSpan.contains(rb) {
					continue
				}
				ordered := false   // rb can execute after the spawn
				intervene := false // a Wait sits between spawn and rb
				switch {
				case rb > g.End():
					ordered = true
					for _, w := range waits {
						if w > g.End() && w < rb {
							intervene = true
							break
						}
					}
				case inLoop && loop.contains(rb) && rb < g.Pos():
					ordered = true
					for _, w := range waits {
						if (w > g.End() && w < loop.hi) || (loop.contains(w) && w < rb) {
							intervene = true
							break
						}
					}
				}
				if ordered && !intervene {
					p.Reportf(rb, "slice %s is reassigned while the goroutine spawned at line %d may still read it; Wait before reusing the backing array",
						v.Name(), p.Fset.Position(g.Pos()).Line)
				}
			}
		}
		return true
	})
}
