package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder lifts the locks analyzer's per-body view to a module-wide
// lock-acquisition graph. Every sync Lock/RLock acquired while other
// locks are held adds an ordering edge; calls propagate — a function
// invoked under a held lock contributes every lock it may acquire
// transitively (computed to fixpoint over call-graph SCCs). A cycle in
// the resulting graph is a potential deadlock even though no single
// function ever sees both orders, which is exactly the case the
// intra-procedural check cannot see. The analyzer also reports calls
// that may reacquire a lock already held (sync.Mutex does not
// re-enter).
//
// Locks are identified statically: a field lock keys by its owner's
// type ("pkg.FS.mu" — two instances of one type share a key, so
// hand-over-hand locking of siblings would be a false positive;
// none exists here), a package-level lock by its variable. Function
// literals are scanned as independent bodies with no held locks, and
// interface dispatch contributes no edges (DESIGN.md §9).
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Tier:      TierInter,
	Doc:       "no cycles in the interprocedural lock-acquisition order; no call that reacquires a held lock",
	RunModule: runLockOrder,
}

// heldLock is one acquisition on the scan's stack.
type heldLock struct {
	key string
	pos token.Pos
}

// lockWitness records where an ordering edge was observed.
type lockWitness struct {
	pos token.Pos
	via string // callee name when the edge crosses a call, "" when direct
}

// heldCall is a call made while locks were held, expanded against the
// callee's transitive acquisition set after the fixpoint.
type heldCall struct {
	held   []heldLock
	callee *FuncNode
	pos    token.Pos
}

type lockWorld struct {
	pass      *ModulePass
	direct    map[*FuncNode]map[string]token.Pos
	heldCalls map[*FuncNode][]heldCall
	edges     map[[2]string]lockWitness
}

func runLockOrder(p *ModulePass) {
	w := &lockWorld{
		pass:      p,
		direct:    make(map[*FuncNode]map[string]token.Pos),
		heldCalls: make(map[*FuncNode][]heldCall),
		edges:     make(map[[2]string]lockWitness),
	}
	// Phase 1: intraprocedural scan of every function, collecting
	// direct acquisitions, direct ordering edges, and held calls.
	for _, fn := range p.Prog.Funcs {
		w.scanFunc(fn)
	}
	// Phase 2: transitive may-acquire sets to fixpoint, bottom-up.
	acq := make(map[*FuncNode]map[string]bool, len(p.Prog.Funcs))
	for _, fn := range p.Prog.Funcs {
		set := make(map[string]bool)
		for k := range w.direct[fn] {
			set[k] = true
		}
		acq[fn] = set
	}
	p.Prog.fixpoint(func(fn *FuncNode) bool {
		set := acq[fn]
		before := len(set)
		for _, c := range fn.Calls {
			for k := range acq[c.Callee] {
				set[k] = true
			}
		}
		return len(set) != before
	})
	// Phase 3: expand held calls into edges and reacquire reports.
	for _, fn := range p.Prog.Funcs {
		for _, hc := range w.heldCalls[fn] {
			keys := make([]string, 0, len(acq[hc.callee]))
			for k := range acq[hc.callee] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, h := range hc.held {
				for _, a := range keys {
					if a == h.key {
						p.Reportf(hc.pos, "call to %s may reacquire %s, already held here; sync locks do not re-enter", hc.callee.Obj.Name(), shortLock(h.key))
						continue
					}
					w.addEdge(h.key, a, lockWitness{pos: hc.pos, via: hc.callee.Obj.Name()})
				}
			}
		}
	}
	w.reportCycles()
}

// addEdge records from→to, keeping the earliest witness so reporting
// is deterministic.
func (w *lockWorld) addEdge(from, to string, wit lockWitness) {
	key := [2]string{from, to}
	if old, ok := w.edges[key]; !ok || w.posLess(wit.pos, old.pos) {
		w.edges[key] = wit
	}
}

func (w *lockWorld) posLess(a, b token.Pos) bool {
	pa, pb := w.pass.Fset.Position(a), w.pass.Fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// edgeList returns the ordering edges sorted by (from, to) — the
// deterministic iteration order for everything downstream of the edge
// map.
func (w *lockWorld) edgeList() [][2]string {
	var list [][2]string
	for e := range w.edges {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i][0] != list[j][0] {
			return list[i][0] < list[j][0]
		}
		return list[i][1] < list[j][1]
	})
	return list
}

func dedupStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// shortLock trims the module path off a lock key for messages:
// "cachepart/internal/resctrl.FS.mu" -> "resctrl.FS.mu".
func shortLock(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// scanFunc walks one function body in source order, tracking the held
// stack. Function literals are queued and scanned as independent
// bodies with nothing held.
func (w *lockWorld) scanFunc(fn *FuncNode) {
	w.direct[fn] = make(map[string]token.Pos)
	var lits []*ast.FuncLit
	s := &lockScan{w: w, fn: fn, lits: &lits}
	s.stmts(fn.Decl.Body.List)
	for i := 0; i < len(lits); i++ {
		inner := &lockScan{w: w, fn: fn, lits: &lits}
		inner.stmts(lits[i].Body.List)
	}
}

type lockScan struct {
	w    *lockWorld
	fn   *FuncNode
	held []heldLock
	lits *[]*ast.FuncLit
}

// acquire pushes a lock, recording ordering edges against everything
// already held and an immediate reacquire finding when the same key is
// on the stack.
func (s *lockScan) acquire(key string, pos token.Pos) {
	for _, h := range s.held {
		if h.key == key {
			s.w.pass.Reportf(pos, "reacquires %s, already held; sync locks do not re-enter", shortLock(key))
		} else {
			s.w.addEdge(h.key, key, lockWitness{pos: pos})
		}
	}
	if _, ok := s.w.direct[s.fn][key]; !ok {
		s.w.direct[s.fn][key] = pos
	}
	s.held = append(s.held, heldLock{key: key, pos: pos})
}

func (s *lockScan) release(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// collectCalls records module calls inside an expression made with the
// current held set, skipping function literals (they are scanned
// separately and may run on another goroutine).
func (s *lockScan) collectCalls(root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			*s.lits = append(*s.lits, n)
			return false
		case *ast.CallExpr:
			if len(s.held) == 0 {
				return true
			}
			if callee := s.w.pass.Prog.NodeOf(calleeObj(s.fn.Pkg.Info, n)); callee != nil {
				snap := make([]heldLock, len(s.held))
				copy(snap, s.held)
				s.w.heldCalls[s.fn] = append(s.w.heldCalls[s.fn], heldCall{held: snap, callee: callee, pos: n.Pos()})
			}
		}
		return true
	})
}

func (s *lockScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *lockScan) stmt(st ast.Stmt) {
	info := s.fn.Pkg.Info
	switch st := st.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := lockCall(info, st.X); ok {
			switch op {
			case "Lock", "RLock":
				s.acquire(s.lockKey(st.X), st.Pos())
			case "Unlock", "RUnlock":
				s.release(s.lockKey(st.X))
				_ = recv
			}
			return
		}
		s.collectCalls(st.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the
		// body, which is what the held stack already models; any other
		// deferred call runs with whatever is held at return.
		if _, op, ok := lockCall(info, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		s.collectCalls(st.Call)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the holder's lock
		// order; only argument expressions evaluate here.
		for _, arg := range st.Call.Args {
			s.collectCalls(arg)
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.collectCalls(r)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.collectCalls(r)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.collectCalls(st.Cond)
		s.stmts(st.Body.List)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.collectCalls(st.Cond)
		s.stmts(st.Body.List)
		if st.Post != nil {
			s.stmt(st.Post)
		}
	case *ast.RangeStmt:
		s.collectCalls(st.X)
		s.stmts(st.Body.List)
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.collectCalls(st.Tag)
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					s.stmt(cc.Comm)
				}
				s.stmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		s.collectCalls(st.Value)
	case *ast.DeclStmt:
		s.collectCalls(st)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	}
}

// lockKey derives a stable identity for the lock a Lock/Unlock call
// operates on. e is the full call expression.
func (s *lockScan) lockKey(e ast.Expr) string {
	call := ast.Unparen(e).(*ast.CallExpr)
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	lock := ast.Unparen(sel.X) // the lock value: fs.mu, mu, ...
	info := s.fn.Pkg.Info
	switch l := lock.(type) {
	case *ast.SelectorExpr:
		// x.mu keys by the owner's type: every instance of the type
		// follows one ordering discipline.
		if bt := info.TypeOf(l.X); bt != nil {
			if named, ok := derefNamed(bt).(*types.Named); ok {
				return qualifiedName(named) + "." + l.Sel.Name
			}
		}
	case *ast.Ident:
		if obj := info.ObjectOf(l); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			// A function-local lock cannot participate in a
			// cross-function cycle but still orders within the body.
			return funcQualified(s.fn.Obj) + ":" + obj.Name()
		}
	}
	return funcQualified(s.fn.Obj) + ":" + types.ExprString(lock)
}

// reportCycles finds strongly connected components of the lock graph
// and reports one diagnostic per cyclic component, anchored at its
// earliest witness.
func (w *lockWorld) reportCycles() {
	edges := w.edgeList()
	adj := make(map[string][]string)
	var names []string
	for _, e := range edges {
		// edges arrive sorted by (from, to), so each adjacency list is
		// born sorted.
		adj[e[0]] = append(adj[e[0]], e[1])
		names = append(names, e[0], e[1])
	}
	sort.Strings(names)
	names = dedupStrings(names)

	// Tarjan over lock nodes.
	index := make(map[string]int)
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	counter := 0
	var sccs [][]string
	var visit func(n string)
	visit = func(n string) {
		counter++
		index[n], lowlink[n] = counter, counter
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range adj[n] {
			if index[m] == 0 {
				visit(m)
				lowlink[n] = min(lowlink[n], lowlink[m])
			} else if onStack[m] {
				lowlink[n] = min(lowlink[n], index[m])
			}
		}
		if lowlink[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range names {
		if index[n] == 0 {
			visit(n)
		}
	}

	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	for _, scc := range sccs {
		w.reportCycle(scc)
	}
}

// reportCycle renders one cyclic component: the diagnostic anchors at
// the earliest acquisition witness among the component's edges and
// spells out a concrete cycle path with every hop's location.
func (w *lockWorld) reportCycle(scc []string) {
	inSCC := make(map[string]bool, len(scc))
	for _, n := range scc {
		inSCC[n] = true
	}
	// Earliest internal edge.
	var minEdge [2]string
	var minWit lockWitness
	found := false
	for _, from := range scc {
		for _, to := range scc {
			if wit, ok := w.edges[[2]string{from, to}]; ok && from != to {
				if !found || w.posLess(wit.pos, minWit.pos) {
					minEdge, minWit, found = [2]string{from, to}, wit, true
				}
			}
		}
	}
	if !found {
		return
	}
	// Close the cycle: shortest path back from the edge's head to its
	// tail, BFS over sorted adjacency restricted to the component.
	path := w.pathWithin(minEdge[1], minEdge[0], inSCC)
	if path == nil {
		return
	}
	cycle := append([]string{minEdge[0]}, path...)

	var hops []string
	for i := 0; i+1 < len(cycle); i++ {
		wit, ok := w.edges[[2]string{cycle[i], cycle[i+1]}]
		if !ok {
			continue
		}
		pos := w.pass.Fset.Position(wit.pos)
		hop := fmt.Sprintf("%s before %s at %s:%d", shortLock(cycle[i]), shortLock(cycle[i+1]), filepath.Base(pos.Filename), pos.Line)
		if wit.via != "" {
			hop += " (via " + wit.via + ")"
		}
		hops = append(hops, hop)
	}
	short := make([]string, len(cycle))
	for i, n := range cycle {
		short[i] = shortLock(n)
	}
	w.pass.Reportf(minWit.pos, "lock-order cycle %s may deadlock; acquisition order: %s",
		strings.Join(short, " -> "), strings.Join(hops, "; "))
}

// pathWithin returns the node sequence from start to target (inclusive
// of both) through component edges, or nil.
func (w *lockWorld) pathWithin(start, target string, in map[string]bool) []string {
	adj := make(map[string][]string)
	for _, e := range w.edgeList() {
		if in[e[0]] && in[e[1]] && e[0] != e[1] {
			adj[e[0]] = append(adj[e[0]], e[1]) // sorted: edgeList is
		}
	}
	prev := map[string]string{start: start}
	queue := []string{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == target {
			var path []string
			for at := target; ; at = prev[at] {
				path = append([]string{at}, path...)
				if at == start {
					break
				}
			}
			return path
		}
		for _, m := range adj[n] {
			if _, seen := prev[m]; !seen {
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}
