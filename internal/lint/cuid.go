package lint

import (
	"go/ast"
	"go/constant"
)

// CUIDCheck enforces the scheduler's cache-usage contract: every job
// phase handed to the engine must carry an explicit cache-usage
// identifier. The CUID zero value (Sensitive, the full mask) is a safe
// runtime default, but a literal that omits the field is
// indistinguishable from a phase whose author never classified the
// operator — exactly the silent default that breaks the Section V-C
// apportioning logic. Keyed Phase literals must therefore name the
// CUID field, even when setting it to the default class.
var CUIDCheck = &Analyzer{
	Name: "cuid",
	Tier: TierIntra,
	Doc:  "job-phase literals must set the cache-usage identifier explicitly",
	Run:  runCUIDCheck,
}

func runCUIDCheck(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := info.Types[lit]
			if !ok || qualifiedName(tv.Type) != p.Config.PhaseType {
				return true
			}
			var name string
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					// Positional literals must populate every field,
					// including the CUID, to compile.
					return true
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if key.Name == p.Config.CUIDField {
					return true
				}
				if key.Name == "Name" {
					if v, ok := info.Types[kv.Value]; ok && v.Value != nil && v.Value.Kind() == constant.String {
						name = constant.StringVal(v.Value)
					}
				}
			}
			if name != "" {
				p.Reportf(lit.Pos(), "job phase %q lacks an explicit %s; annotate the cache-usage class instead of defaulting silently (PAPER.md §V-C)", name, p.Config.CUIDField)
			} else {
				p.Reportf(lit.Pos(), "job-phase literal lacks an explicit %s; annotate the cache-usage class instead of defaulting silently (PAPER.md §V-C)", p.Config.CUIDField)
			}
			return true
		})
	}
}
