package tpch

import (
	"math/rand"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/memory"
)

func testDB(t *testing.T) (*DB, *memory.Space) {
	t.Helper()
	space := memory.NewSpace()
	db, err := Load(space, rand.New(rand.NewSource(1)), Spec{Scale: 64, LineitemRows: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	return db, space
}

func TestLoadGeometry(t *testing.T) {
	db, _ := testDB(t)
	if db.Lineitem.Rows() != 40_000 {
		t.Errorf("lineitem rows = %d", db.Lineitem.Rows())
	}
	if db.Orders.Rows() != 10_000 {
		t.Errorf("orders rows = %d, want lineitem/4", db.Orders.Rows())
	}
	// The paper's ~29 MiB extendedprice dictionary, scaled by 64.
	ep := db.Lineitem.MustColumn("l_extendedprice")
	want := uint64(nomExtendedPrice / 64 * 4)
	if got := ep.Dict.Bytes(); got != want {
		t.Errorf("extendedprice dictionary = %d bytes, want %d", got, want)
	}
	// Small enumerated domains are not scaled.
	if got := db.Lineitem.MustColumn("l_rfls").Dict.Len(); got != 6 {
		t.Errorf("l_rfls distinct = %d, want 6", got)
	}
	if got := db.Customer.MustColumn("c_nationkey").Dict.Len(); got != 25 {
		t.Errorf("c_nationkey distinct = %d, want 25", got)
	}
}

func TestLoadValidation(t *testing.T) {
	space := memory.NewSpace()
	if _, err := Load(space, rand.New(rand.NewSource(1)), Spec{Scale: 1}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestClusteredKeysAscend(t *testing.T) {
	db, _ := testDB(t)
	ok := db.Lineitem.MustColumn("l_orderkey")
	prev := int64(-1)
	for i := 0; i < ok.Rows(); i += 97 {
		v := ok.Value(i)
		if v < prev {
			t.Fatalf("l_orderkey not ascending at row %d: %d < %d", i, v, prev)
		}
		prev = v
	}
	// Covers the domain roughly.
	if ok.Value(ok.Rows()-1) < int64(ok.Dict.Len())/2 {
		t.Error("clustered keys do not span the domain")
	}
}

func TestTableLookup(t *testing.T) {
	db, _ := testDB(t)
	for _, name := range []string{"lineitem", "orders", "customer", "part", "supplier"} {
		if _, err := db.Table(name); err != nil {
			t.Errorf("Table(%q): %v", name, err)
		}
	}
	if _, err := db.Table("nation"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestSpecsCount(t *testing.T) {
	if len(Specs) != 22 {
		t.Fatalf("%d query specs, want 22", len(Specs))
	}
	for i, s := range Specs {
		if s.Name == "" || len(s.Ops) == 0 || s.Comment == "" {
			t.Errorf("spec %d (%s) incomplete", i+1, s.Name)
		}
	}
}

func TestNewQueryBounds(t *testing.T) {
	db, space := testDB(t)
	if _, err := NewQuery(db, space, 0); err == nil {
		t.Error("query 0 accepted")
	}
	if _, err := NewQuery(db, space, 23); err == nil {
		t.Error("query 23 accepted")
	}
}

// TestAllQueriesPlan verifies every pipeline resolves its tables and
// columns and produces well-formed phases.
func TestAllQueriesPlan(t *testing.T) {
	db, space := testDB(t)
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 22; n++ {
		q, err := NewQuery(db, space, n)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		phases, err := q.Plan(4, rng)
		if err != nil {
			t.Fatalf("Q%d plan: %v", n, err)
		}
		if len(phases) == 0 {
			t.Fatalf("Q%d: no phases", n)
		}
		for _, ph := range phases {
			if len(ph.Kernels) == 0 || len(ph.Kernels) > 4 {
				t.Errorf("Q%d phase %q has %d kernels", n, ph.Name, len(ph.Kernels))
			}
			// Figure 11 setup: TPC-H jobs keep the full cache.
			if ph.CUID != core.Sensitive {
				t.Errorf("Q%d phase %q CUID = %v, want Sensitive (ForceSensitive)", n, ph.Name, ph.CUID)
			}
		}
	}
}

func TestForceSensitiveOff(t *testing.T) {
	db, space := testDB(t)
	q, err := NewQuery(db, space, 3) // has scan + joins + agg
	if err != nil {
		t.Fatal(err)
	}
	q.ForceSensitive = false
	phases, err := q.Plan(2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var sawPolluting, sawDepends, sawSensitive bool
	for _, ph := range phases {
		switch ph.CUID {
		case core.Polluting:
			sawPolluting = true
		case core.Depends:
			sawDepends = true
			if ph.Footprint.BitVectorBytes == 0 {
				t.Errorf("Depends phase %q without footprint", ph.Name)
			}
		case core.Sensitive:
			sawSensitive = true
		}
	}
	if !sawPolluting || !sawDepends || !sawSensitive {
		t.Errorf("Q3 classes: polluting=%v depends=%v sensitive=%v",
			sawPolluting, sawDepends, sawSensitive)
	}
}

func TestPlanReusesState(t *testing.T) {
	db, space := testDB(t)
	q, err := NewQuery(db, space, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := q.Plan(4, rng); err != nil {
		t.Fatal(err)
	}
	regions := len(space.Regions())
	if _, err := q.Plan(4, rng); err != nil {
		t.Fatal(err)
	}
	if got := len(space.Regions()); got != regions {
		t.Errorf("replanning allocated %d new regions", got-regions)
	}
}

// TestQueryRunsOnEngine executes a multi-op query end to end.
func TestQueryRunsOnEngine(t *testing.T) {
	db, space := testDB(t)
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 4
	m, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(m, core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways))
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(db, space, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]engine.StreamSpec{{Query: q, Cores: []int{0, 1, 2, 3}}},
		engine.RunOptions{Duration: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows == 0 {
		t.Error("Q7 made no progress")
	}
}
