package tpch

// QuerySpec is one TPC-H query's pipeline.
type QuerySpec struct {
	Name string
	// Comment summarises what the pipeline keeps from the SQL query.
	Comment string
	Ops     []Op
}

// Specs expresses the 22 TPC-H queries as footprint-faithful operator
// pipelines. The parameters that matter for Figure 11 are preserved:
// which tables are scanned, the key cardinalities of the joins (bit
// vector sizes), the group counts of the aggregations (hash table
// sizes), the dictionary-heavy value columns (above all
// l_extendedprice, whose dictionary is ~29 MiB at SF 100), and the
// predicate selectivities that gate dictionary traffic.
var Specs = []QuerySpec{
	{
		Name:    "Q1",
		Comment: "pricing summary: full-lineitem aggregation into 6 groups decoding 4 value columns incl. extendedprice",
		Ops: []Op{
			AggOp{Table: "lineitem", GroupCol: "l_rfls",
				ValueCols:   []string{"l_extendedprice", "l_quantity", "l_discount", "l_tax"},
				Selectivity: 0.98},
		},
	},
	{
		Name:    "Q2",
		Comment: "minimum-cost supplier: part scan, part->lineitem join, per-supplier aggregation",
		Ops: []Op{
			ScanOp{Table: "part", Column: "p_type"},
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			AggOp{Table: "lineitem", GroupCol: "l_suppkey", ValueCols: []string{"l_tax"}, Selectivity: 0.05},
		},
	},
	{
		Name:    "Q3",
		Comment: "shipping priority: segment scan, customer->orders->lineitem joins, per-order aggregation",
		Ops: []Op{
			ScanOp{Table: "customer", Column: "c_mktsegment"},
			JoinOp{BuildTable: "customer", BuildCol: "c_custkey", ProbeTable: "orders", ProbeCol: "o_custkey"},
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "lineitem", GroupCol: "l_orderkey",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.3},
		},
	},
	{
		Name:    "Q4",
		Comment: "order priority check: lineitem semi-join into orders, 5-group count",
		Ops: []Op{
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "orders", GroupCol: "o_orderpriority", Selectivity: 0.25},
		},
	},
	{
		Name:    "Q5",
		Comment: "local supplier volume: three joins, 25-group aggregation over revenue",
		Ops: []Op{
			JoinOp{BuildTable: "customer", BuildCol: "c_custkey", ProbeTable: "orders", ProbeCol: "o_custkey"},
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			JoinOp{BuildTable: "supplier", BuildCol: "s_suppkey", ProbeTable: "lineitem", ProbeCol: "l_suppkey"},
			AggOp{Table: "lineitem", GroupCol: "l_natpair",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.04},
		},
	},
	{
		Name:    "Q6",
		Comment: "forecasting revenue: pure scan with a ~2% filter, single-group sum",
		Ops: []Op{
			ScanOp{Table: "lineitem", Column: "l_shipdate"},
			AggOp{Table: "lineitem", GroupCol: "l_returnflag",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.02},
		},
	},
	{
		Name:    "Q7",
		Comment: "volume shipping: supplier/customer/orders joins, 50 nation-pair groups decoding extendedprice",
		Ops: []Op{
			JoinOp{BuildTable: "supplier", BuildCol: "s_suppkey", ProbeTable: "lineitem", ProbeCol: "l_suppkey"},
			JoinOp{BuildTable: "customer", BuildCol: "c_custkey", ProbeTable: "orders", ProbeCol: "o_custkey"},
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "lineitem", GroupCol: "l_natpair",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.35},
		},
	},
	{
		Name:    "Q8",
		Comment: "national market share: part-filtered joins, per-year aggregation over extendedprice",
		Ops: []Op{
			ScanOp{Table: "part", Column: "p_type"},
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "lineitem", GroupCol: "l_natpair",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.30},
		},
	},
	{
		Name:    "Q9",
		Comment: "product type profit: part/supplier joins, nation-year groups decoding extendedprice and cost",
		Ops: []Op{
			ScanOp{Table: "part", Column: "p_type"},
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			JoinOp{BuildTable: "supplier", BuildCol: "s_suppkey", ProbeTable: "lineitem", ProbeCol: "l_suppkey"},
			AggOp{Table: "lineitem", GroupCol: "l_natpair",
				ValueCols: []string{"l_extendedprice", "l_discount", "l_tax"}, Selectivity: 0.40},
		},
	},
	{
		Name:    "Q10",
		Comment: "returned items: returnflag filter, joins, per-customer (large) grouping",
		Ops: []Op{
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "orders", GroupCol: "o_custkey",
				ValueCols: []string{"o_totalprice"}, Selectivity: 0.25},
		},
	},
	{
		Name:    "Q11",
		Comment: "important stock: supplier join, per-part (very large) grouping",
		Ops: []Op{
			JoinOp{BuildTable: "supplier", BuildCol: "s_suppkey", ProbeTable: "lineitem", ProbeCol: "l_suppkey"},
			AggOp{Table: "lineitem", GroupCol: "l_partkey", ValueCols: []string{"l_tax"}, Selectivity: 0.04},
		},
	},
	{
		Name:    "Q12",
		Comment: "shipping modes: orders join, 7-group count",
		Ops: []Op{
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "lineitem", GroupCol: "l_shipmode", Selectivity: 0.01},
		},
	},
	{
		Name:    "Q13",
		Comment: "customer distribution: customer->orders join, per-customer grouping",
		Ops: []Op{
			JoinOp{BuildTable: "customer", BuildCol: "c_custkey", ProbeTable: "orders", ProbeCol: "o_custkey"},
			AggOp{Table: "orders", GroupCol: "o_custkey"},
		},
	},
	{
		Name:    "Q14",
		Comment: "promotion effect: part join, single-group revenue sum with ~1% filter",
		Ops: []Op{
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			AggOp{Table: "lineitem", GroupCol: "l_returnflag",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.01},
		},
	},
	{
		Name:    "Q15",
		Comment: "top supplier: per-supplier revenue aggregation, supplier join",
		Ops: []Op{
			AggOp{Table: "lineitem", GroupCol: "l_suppkey",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.04},
			JoinOp{BuildTable: "supplier", BuildCol: "s_suppkey", ProbeTable: "lineitem", ProbeCol: "l_suppkey"},
		},
	},
	{
		Name:    "Q16",
		Comment: "parts/supplier relationship: part scan, join, brand/type grouping",
		Ops: []Op{
			ScanOp{Table: "part", Column: "p_brand"},
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			AggOp{Table: "part", GroupCol: "p_type"},
		},
	},
	{
		Name:    "Q17",
		Comment: "small-quantity revenue: part join with tight filter, per-part grouping",
		Ops: []Op{
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			AggOp{Table: "lineitem", GroupCol: "l_partkey",
				ValueCols: []string{"l_quantity"}, Selectivity: 0.001},
		},
	},
	{
		Name:    "Q18",
		Comment: "large volume customers: per-order (very large) grouping over quantity, orders join",
		Ops: []Op{
			AggOp{Table: "lineitem", GroupCol: "l_orderkey", ValueCols: []string{"l_quantity"}},
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "orders", GroupCol: "o_custkey", ValueCols: []string{"o_totalprice"}, Selectivity: 0.01},
		},
	},
	{
		Name:    "Q19",
		Comment: "discounted revenue: part join, single-group sum with ~0.2% filter",
		Ops: []Op{
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			AggOp{Table: "lineitem", GroupCol: "l_returnflag",
				ValueCols: []string{"l_extendedprice", "l_discount"}, Selectivity: 0.002},
		},
	},
	{
		Name:    "Q20",
		Comment: "promotion parts for nation: part scan, joins, per-supplier quantity aggregation",
		Ops: []Op{
			ScanOp{Table: "part", Column: "p_brand"},
			JoinOp{BuildTable: "part", BuildCol: "p_partkey", ProbeTable: "lineitem", ProbeCol: "l_partkey"},
			AggOp{Table: "lineitem", GroupCol: "l_suppkey",
				ValueCols: []string{"l_quantity"}, Selectivity: 0.01},
			JoinOp{BuildTable: "supplier", BuildCol: "s_suppkey", ProbeTable: "lineitem", ProbeCol: "l_suppkey"},
		},
	},
	{
		Name:    "Q21",
		Comment: "waiting suppliers: supplier and orders joins, per-supplier count",
		Ops: []Op{
			JoinOp{BuildTable: "supplier", BuildCol: "s_suppkey", ProbeTable: "lineitem", ProbeCol: "l_suppkey"},
			JoinOp{BuildTable: "orders", BuildCol: "o_orderkey", ProbeTable: "lineitem", ProbeCol: "l_orderkey"},
			AggOp{Table: "lineitem", GroupCol: "l_suppkey", Selectivity: 0.04},
		},
	},
	{
		Name:    "Q22",
		Comment: "global sales opportunity: customer scan, per-nation aggregation over account balances",
		Ops: []Op{
			ScanOp{Table: "customer", Column: "c_acctbal"},
			AggOp{Table: "customer", GroupCol: "c_nationkey",
				ValueCols: []string{"c_acctbal"}, Selectivity: 0.2},
		},
	},
}
