// Package tpch builds a scaled TPC-H SF 100 profile — the eight-table
// schema with the spec's column cardinalities — and expresses the 22
// queries as operator pipelines over the engine (scans, bit-vector
// foreign-key joins, grouped aggregations). Figure 11 co-runs each
// query with the paper's polluting column scan.
//
// The pipelines are cache-footprint-faithful approximations, not full
// SQL implementations: each query touches the tables, key domains,
// dictionary-heavy value columns, group counts and selectivities of
// its TPC-H counterpart, which is what decides its sensitivity to
// cache pollution (Section VI-D: queries 1, 7, 8 and 9 improve because
// they aggregate through large dictionaries such as L_EXTENDEDPRICE's
// ~29 MiB one).
package tpch

import (
	"fmt"
	"math/rand"

	"cachepart/internal/column"
	"cachepart/internal/memory"
	"cachepart/internal/workload"
)

// Spec configures generation.
type Spec struct {
	// Scale divides the nominal SF 100 cardinalities, matching the
	// machine scale.
	Scale int
	// LineitemRows is the sampled lineitem row count; the other
	// tables keep the spec's relative sizes.
	LineitemRows int
}

// Nominal SF 100 cardinalities.
const (
	nomOrders    = 150_000_000
	nomCustomers = 15_000_000
	nomParts     = 20_000_000
	nomSuppliers = 1_000_000
	// nomExtendedPrice matches the paper's ~29 MiB dictionary at 4 B
	// per entry.
	nomExtendedPrice = 7_600_000
	nomShipdate      = 2_526
	nomOrderdate     = 2_406
	nomTotalPrice    = 10_000_000
	nomAcctbal       = 1_000_000
)

// DB holds the generated tables.
type DB struct {
	Spec     Spec
	Lineitem *column.Table
	Orders   *column.Table
	Customer *column.Table
	Part     *column.Table
	Supplier *column.Table
}

// scaleN divides a nominal cardinality, never below 1.
func (s Spec) scaleN(n int64) int64 {
	v := n / int64(s.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// Load generates the profile database.
func Load(space *memory.Space, rng *rand.Rand, spec Spec) (*DB, error) {
	if spec.Scale <= 0 {
		spec.Scale = 1
	}
	if spec.LineitemRows <= 0 {
		return nil, fmt.Errorf("tpch: lineitem rows %d", spec.LineitemRows)
	}
	db := &DB{Spec: spec}

	liRows := spec.LineitemRows
	ordRows := liRows / 4
	custRows := maxInt(liRows/40, 1024)
	partRows := maxInt(liRows/30, 1024)
	suppRows := maxInt(liRows/600, 256)

	var err error
	db.Lineitem, err = buildTable(space, rng, "lineitem", liRows, []colSpec{
		{name: "l_orderkey", distinct: spec.scaleN(nomOrders), clustered: true},
		{name: "l_partkey", distinct: spec.scaleN(nomParts)},
		{name: "l_suppkey", distinct: spec.scaleN(nomSuppliers)},
		{name: "l_extendedprice", distinct: spec.scaleN(nomExtendedPrice)},
		{name: "l_quantity", distinct: 50},
		{name: "l_discount", distinct: 11},
		{name: "l_tax", distinct: 9},
		{name: "l_shipdate", distinct: nomShipdate},
		{name: "l_shipmode", distinct: 7},
		{name: "l_returnflag", distinct: 3},
		// Derived grouping columns for the pipelines.
		{name: "l_rfls", distinct: 6},     // returnflag × linestatus (Q1)
		{name: "l_natpair", distinct: 50}, // supplier/customer nation pairs (Q7, Q9)
	})
	if err != nil {
		return nil, err
	}
	db.Orders, err = buildTable(space, rng, "orders", ordRows, []colSpec{
		{name: "o_orderkey", distinct: spec.scaleN(nomOrders), clustered: true},
		{name: "o_custkey", distinct: spec.scaleN(nomCustomers)},
		{name: "o_orderdate", distinct: nomOrderdate},
		{name: "o_orderpriority", distinct: 5},
		{name: "o_totalprice", distinct: spec.scaleN(nomTotalPrice)},
		{name: "o_year", distinct: 7},
	})
	if err != nil {
		return nil, err
	}
	db.Customer, err = buildTable(space, rng, "customer", custRows, []colSpec{
		{name: "c_custkey", distinct: spec.scaleN(nomCustomers), clustered: true},
		{name: "c_mktsegment", distinct: 5},
		{name: "c_nationkey", distinct: 25},
		{name: "c_acctbal", distinct: spec.scaleN(nomAcctbal)},
	})
	if err != nil {
		return nil, err
	}
	db.Part, err = buildTable(space, rng, "part", partRows, []colSpec{
		{name: "p_partkey", distinct: spec.scaleN(nomParts), clustered: true},
		{name: "p_brand", distinct: 25},
		{name: "p_type", distinct: 150},
		{name: "p_size", distinct: 50},
	})
	if err != nil {
		return nil, err
	}
	db.Supplier, err = buildTable(space, rng, "supplier", suppRows, []colSpec{
		{name: "s_suppkey", distinct: spec.scaleN(nomSuppliers), clustered: true},
		{name: "s_nationkey", distinct: 25},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

type colSpec struct {
	name     string
	distinct int64
	// clustered generates ascending values covering the domain, the
	// physical order of primary keys and of l_orderkey in dbgen data.
	// Clustered keys make bit-vector join traffic sequential, which is
	// why order-key joins tolerate cache pollution while random
	// dictionary traffic does not.
	clustered bool
}

func buildTable(space *memory.Space, rng *rand.Rand, name string, rows int, cols []colSpec) (*column.Table, error) {
	t := column.NewTable(name)
	for _, cs := range cols {
		var c *column.Column
		var err error
		if cs.clustered {
			c, err = encodeClustered(space, name+"."+cs.name, rows, cs.distinct)
		} else {
			c, err = workload.EncodeUniformDense(space, name+"."+cs.name, rng, rows, 1, cs.distinct)
		}
		if err != nil {
			return nil, fmt.Errorf("tpch: column %s.%s: %w", name, cs.name, err)
		}
		c.Name = cs.name // region names keep the table prefix; lookups use the bare name
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// encodeClustered builds a dense-dictionary column whose values ascend
// across the domain [1, distinct] in row order.
func encodeClustered(space *memory.Space, name string, rows int, distinct int64) (*column.Column, error) {
	dict, err := column.NewDenseDictionary(space, name, 1, distinct, column.DefaultEntrySize)
	if err != nil {
		return nil, err
	}
	codes, err := column.NewPackedVector(space, name, rows, dict.CodeBits())
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		codes.Set(i, uint32(int64(i)*distinct/int64(rows)))
	}
	return &column.Column{Name: name, Dict: dict, Codes: codes}, nil
}

// Table resolves a table by short name.
func (db *DB) Table(name string) (*column.Table, error) {
	switch name {
	case "lineitem":
		return db.Lineitem, nil
	case "orders":
		return db.Orders, nil
	case "customer":
		return db.Customer, nil
	case "part":
		return db.Part, nil
	case "supplier":
		return db.Supplier, nil
	default:
		return nil, fmt.Errorf("tpch: no table %q", name)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
