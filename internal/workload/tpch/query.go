package tpch

import (
	"fmt"
	"math/rand"

	"cachepart/internal/column"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// Op is one stage of a query pipeline. idx identifies the op within
// its query so reusable state (hash tables, bit vectors) can be cached
// across executions.
type Op interface {
	phasesIndexed(q *Query, idx, cores int, rng *rand.Rand) ([]engine.Phase, error)
}

// ScanOp is a predicate scan over one column — a polluting job.
type ScanOp struct {
	Table  string
	Column string
}

// JoinOp is a bit-vector foreign-key join: build over the build
// table's key column, probe the probe table's key column. Its CUID is
// Depends, decided by the bit-vector footprint.
type JoinOp struct {
	BuildTable string
	BuildCol   string
	ProbeTable string
	ProbeCol   string
}

// AggOp is a grouped aggregation over the group column, decoding the
// value columns through their dictionaries; Selectivity models an
// upstream filter.
type AggOp struct {
	Table       string
	GroupCol    string
	ValueCols   []string
	Selectivity float64
}

// Query executes one TPC-H pipeline.
type Query struct {
	label string
	db    *DB
	ops   []Op
	space *memory.Space

	// ForceSensitive reproduces the paper's Figure 11 setup where
	// every TPC-H job keeps the full cache, regardless of operator
	// class.
	ForceSensitive bool

	// Per-AggOp state reused across executions.
	aggTables map[int][]*exec.AggTable
	aggGlobal map[int]*exec.AggTable
	// Per-JoinOp bit vectors reused across executions.
	bitvecs map[int]*exec.BitVector
}

// NewQuery builds query q (1..22) over the database.
func NewQuery(db *DB, space *memory.Space, number int) (*Query, error) {
	if number < 1 || number > len(Specs) {
		return nil, fmt.Errorf("tpch: query %d out of 1..%d", number, len(Specs))
	}
	spec := Specs[number-1]
	return &Query{
		label:          fmt.Sprintf("TPCH-Q%d", number),
		db:             db,
		ops:            spec.Ops,
		space:          space,
		ForceSensitive: true,
		aggTables:      make(map[int][]*exec.AggTable),
		aggGlobal:      make(map[int]*exec.AggTable),
		bitvecs:        make(map[int]*exec.BitVector),
	}, nil
}

// Name identifies the query in results.
func (q *Query) Name() string { return q.label }

// Plan instantiates all pipeline phases for one execution.
func (q *Query) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	var phases []engine.Phase
	for i, op := range q.ops {
		ph, err := op.phasesIndexed(q, i, cores, rng)
		if err != nil {
			return nil, fmt.Errorf("%s op %d: %w", q.label, i, err)
		}
		phases = append(phases, ph...)
	}
	if q.ForceSensitive {
		for i := range phases {
			phases[i].CUID = core.Sensitive
			phases[i].Footprint = core.Footprint{}
		}
	}
	return phases, nil
}

func (o ScanOp) phasesIndexed(q *Query, _, cores int, rng *rand.Rand) ([]engine.Phase, error) {
	t, err := q.db.Table(o.Table)
	if err != nil {
		return nil, err
	}
	col, err := t.Column(o.Column)
	if err != nil {
		return nil, err
	}
	bound := int64(1)
	if n := int64(col.Dict.Len()); n > 1 {
		bound = 1 + rng.Int63n(n)
	}
	parts := engine.PartitionRows(col.Rows(), cores)
	kernels := make([]exec.Kernel, 0, len(parts))
	for _, p := range parts {
		k, err := exec.NewColumnScan(col, p[0], p[1], bound)
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	return []engine.Phase{{
		Name:      "scan-" + o.Column,
		CUID:      core.Polluting,
		Kernels:   kernels,
		CountRows: true,
	}}, nil
}

func (o JoinOp) phasesIndexed(q *Query, idx, cores int, _ *rand.Rand) ([]engine.Phase, error) {
	bt, err := q.db.Table(o.BuildTable)
	if err != nil {
		return nil, err
	}
	bcol, err := bt.Column(o.BuildCol)
	if err != nil {
		return nil, err
	}
	pt, err := q.db.Table(o.ProbeTable)
	if err != nil {
		return nil, err
	}
	pcol, err := pt.Column(o.ProbeCol)
	if err != nil {
		return nil, err
	}
	bv := q.bitvecs[idx]
	if bv == nil {
		bv, err = exec.NewBitVector(q.space, fmt.Sprintf("%s.bv%d", q.label, idx),
			1, uint64(bcol.Dict.Len()))
		if err != nil {
			return nil, err
		}
		q.bitvecs[idx] = bv
	}
	fp := core.Footprint{BitVectorBytes: bv.Bytes()}
	buildParts := engine.PartitionRows(bcol.Rows(), cores)
	builds := make([]exec.Kernel, 0, len(buildParts))
	for _, p := range buildParts {
		k, err := exec.NewJoinBuild(bcol, p[0], p[1], bv)
		if err != nil {
			return nil, err
		}
		builds = append(builds, k)
	}
	probeParts := engine.PartitionRows(pcol.Rows(), cores)
	probes := make([]exec.Kernel, 0, len(probeParts))
	for _, p := range probeParts {
		k, err := exec.NewJoinProbe(pcol, p[0], p[1], bv)
		if err != nil {
			return nil, err
		}
		probes = append(probes, k)
	}
	return []engine.Phase{
		{Name: "join-build-" + o.BuildCol, CUID: core.Depends, Footprint: fp, Kernels: builds, CountRows: true},
		{Name: "join-probe-" + o.ProbeCol, CUID: core.Depends, Footprint: fp, Kernels: probes, CountRows: true},
	}, nil
}

func (o AggOp) phasesIndexed(q *Query, idx, cores int, _ *rand.Rand) ([]engine.Phase, error) {
	t, err := q.db.Table(o.Table)
	if err != nil {
		return nil, err
	}
	gcol, err := t.Column(o.GroupCol)
	if err != nil {
		return nil, err
	}
	vals := make([]*column.Column, 0, len(o.ValueCols))
	for _, name := range o.ValueCols {
		vc, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		vals = append(vals, vc)
	}
	if len(vals) == 0 {
		// COUNT-style aggregations still group; fold the group column
		// itself so the kernel has a value stream.
		vals = append(vals, gcol)
	}
	groups := gcol.Dict.Len()
	if groups > gcol.Rows() {
		groups = gcol.Rows()
	}
	locals := q.aggTables[idx]
	if len(locals) != cores {
		locals = make([]*exec.AggTable, cores)
		for i := range locals {
			locals[i] = exec.NewAggTable(q.space, fmt.Sprintf("%s.agg%d.l%d", q.label, idx, i), groups)
		}
		q.aggTables[idx] = locals
	}
	global := q.aggGlobal[idx]
	if global == nil {
		global = exec.NewAggTable(q.space, fmt.Sprintf("%s.agg%d.g", q.label, idx), groups)
		q.aggGlobal[idx] = global
	}
	every := 1
	if o.Selectivity > 0 && o.Selectivity < 1 {
		every = int(1/o.Selectivity + 0.5)
	}
	parts := engine.PartitionRows(gcol.Rows(), cores)
	kernels := make([]exec.Kernel, 0, len(parts))
	for i, p := range parts {
		locals[i].Clear()
		k, err := exec.NewWideAggLocal(gcol, vals, p[0], p[1], locals[i])
		if err != nil {
			return nil, err
		}
		k.SampleEvery = every
		kernels = append(kernels, k)
	}
	global.Clear()
	merges := make([]exec.Kernel, 0, len(parts))
	for i := range parts {
		// The wide aggregation folds SUMs, so the merge must too.
		merges = append(merges, exec.NewAggMergeKind([]*exec.AggTable{locals[i]}, global, exec.AggSum))
	}
	return []engine.Phase{
		{Name: "agg-" + o.GroupCol, CUID: core.Sensitive, Kernels: kernels, CountRows: true},
		// Serial: the merges share the insertion-order-sensitive global
		// table, so parallel runs interleave them in virtual-time order.
		{Name: "agg-merge-" + o.GroupCol, CUID: core.Sensitive, Kernels: merges, Serial: true},
	}, nil
}
