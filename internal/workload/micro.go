// Package workload builds the data sets and query implementations of
// the paper's experiments: the three micro-benchmark queries of
// Figure 2 over the schemata of Figure 3, plus (in subpackages) the
// TPC-H-profile workload of Figure 11 and the S/4HANA-style OLTP
// workload of Figures 1 and 12.
package workload

import (
	"fmt"
	"math/rand"

	"cachepart/internal/column"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// UniformInts generates n integers uniformly in [lo, hi].
func UniformInts(rng *rand.Rand, n int, lo, hi int64) []int64 {
	out := make([]int64, n)
	span := hi - lo + 1
	for i := range out {
		out[i] = lo + rng.Int63n(span)
	}
	return out
}

// ZipfInts generates n integers from [lo, hi] under a Zipf
// distribution with exponent s > 1 — skewed domains for workloads
// beyond the paper's uniform data (hot dictionary entries, skewed
// group sizes).
func ZipfInts(rng *rand.Rand, n int, lo, hi int64, s float64) ([]int64, error) {
	if hi < lo {
		return nil, fmt.Errorf("workload: empty domain [%d,%d]", lo, hi)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: Zipf exponent %v must exceed 1", s)
	}
	z := rand.NewZipf(rng, s, 1, uint64(hi-lo))
	if z == nil {
		return nil, fmt.Errorf("workload: invalid Zipf parameters")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = lo + int64(z.Uint64())
	}
	return out, nil
}

// EncodeZipfDense builds a dense-dictionary column of Zipf-distributed
// values over [lo, hi].
func EncodeZipfDense(space *memory.Space, name string, rng *rand.Rand, n int, lo, hi int64, s float64) (*column.Column, error) {
	vals, err := ZipfInts(rng, n, lo, hi, s)
	if err != nil {
		return nil, err
	}
	return column.EncodeDense(space, name, vals, lo, hi, column.DefaultEntrySize)
}

// EncodeUniformDense builds a dense-dictionary column of n values
// drawn uniformly from [lo, hi] without materialising an intermediate
// value slice, so multi-million-row samples stay cheap to load.
func EncodeUniformDense(space *memory.Space, name string, rng *rand.Rand, n int, lo, hi int64) (*column.Column, error) {
	dict, err := column.NewDenseDictionary(space, name, lo, hi, column.DefaultEntrySize)
	if err != nil {
		return nil, err
	}
	codes, err := column.NewPackedVector(space, name, n, dict.CodeBits())
	if err != nil {
		return nil, err
	}
	span := hi - lo + 1
	for i := 0; i < n; i++ {
		codes.Set(i, uint32(rng.Int63n(span)))
	}
	return &column.Column{Name: name, Dict: dict, Codes: codes}, nil
}

// DistinctInts samples n distinct integers from [lo, hi] in random
// order; n must not exceed the domain size. For small domains it
// shuffles; for large ones it uses rejection sampling.
func DistinctInts(rng *rand.Rand, n int, lo, hi int64) ([]int64, error) {
	span := hi - lo + 1
	if int64(n) > span {
		return nil, fmt.Errorf("workload: %d distinct values from domain of %d", n, span)
	}
	if int64(n)*2 >= span {
		all := make([]int64, span)
		for i := range all {
			all[i] = lo + int64(i)
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all[:n], nil
	}
	seen := make(map[int64]struct{}, n)
	out := make([]int64, 0, n)
	for len(out) < n {
		v := lo + rng.Int63n(span)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out, nil
}

// Q1Spec describes the column-scan data set: a single INT column of
// Rows values drawn uniformly from 1..Distinct (the paper: 10^9 rows,
// 10^6 distinct, 20-bit codes).
type Q1Spec struct {
	Rows     int
	Distinct int64
}

// ScanQuery is Query 1: SELECT COUNT(*) FROM A WHERE A.X > ?, with "?"
// redrawn uniformly from the domain for every execution.
type ScanQuery struct {
	Label string
	Col   *column.Column
	spec  Q1Spec
}

// NewQ1 generates the data set and returns the query.
func NewQ1(space *memory.Space, rng *rand.Rand, spec Q1Spec) (*ScanQuery, error) {
	if spec.Rows <= 0 || spec.Distinct <= 0 {
		return nil, fmt.Errorf("workload: bad Q1 spec %+v", spec)
	}
	col, err := EncodeUniformDense(space, "A.X", rng, spec.Rows, 1, spec.Distinct)
	if err != nil {
		return nil, err
	}
	return &ScanQuery{Label: "Q1(scan)", Col: col, spec: spec}, nil
}

// Name identifies the query in results.
func (q *ScanQuery) Name() string { return q.Label }

// Spec returns the data-set parameters.
func (q *ScanQuery) Spec() Q1Spec { return q.spec }

// Plan builds one execution: a single polluting scan phase
// partitioned across the cores.
func (q *ScanQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	bound := 1 + rng.Int63n(q.spec.Distinct)
	parts := engine.PartitionRows(q.Col.Rows(), cores)
	kernels := make([]exec.Kernel, 0, len(parts))
	for _, p := range parts {
		k, err := exec.NewColumnScan(q.Col, p[0], p[1], bound)
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	return []engine.Phase{{
		Name:      "scan",
		CUID:      core.Polluting,
		Kernels:   kernels,
		CountRows: true,
	}}, nil
}

// Q2Spec describes the aggregation data set: Rows rows with a value
// column of DistinctV distinct values (dictionary size = 4·DistinctV
// bytes) and a grouping column of Groups distinct values (hash table
// size tracks Groups).
type Q2Spec struct {
	Rows      int
	DistinctV int64
	Groups    int64
}

// AggQuery is Query 2: SELECT MAX(B.V), B.G FROM B GROUP BY B.G,
// executed as parallel thread-local aggregation followed by a merge.
type AggQuery struct {
	Label    string
	GroupCol *column.Column
	ValueCol *column.Column
	spec     Q2Spec

	space      *memory.Space
	locals     []*exec.AggTable
	global     *exec.AggTable
	lastResult map[uint32]int64
}

// NewQ2 generates the data set and returns the query.
func NewQ2(space *memory.Space, rng *rand.Rand, spec Q2Spec) (*AggQuery, error) {
	if spec.Rows <= 0 || spec.DistinctV <= 0 || spec.Groups <= 0 {
		return nil, fmt.Errorf("workload: bad Q2 spec %+v", spec)
	}
	gcol, err := EncodeUniformDense(space, "B.G", rng, spec.Rows, 1, spec.Groups)
	if err != nil {
		return nil, err
	}
	vcol, err := EncodeUniformDense(space, "B.V", rng, spec.Rows, 1, spec.DistinctV)
	if err != nil {
		return nil, err
	}
	return &AggQuery{
		Label:    "Q2(agg)",
		GroupCol: gcol,
		ValueCol: vcol,
		spec:     spec,
		space:    space,
	}, nil
}

// Name identifies the query in results.
func (q *AggQuery) Name() string { return q.Label }

// Spec returns the data-set parameters.
func (q *AggQuery) Spec() Q2Spec { return q.spec }

// Global exposes the merged result table of the in-flight execution.
func (q *AggQuery) Global() *exec.AggTable { return q.global }

// LastResult returns the MAX-per-group result of the most recently
// completed execution (nil before the first one finishes).
func (q *AggQuery) LastResult() map[uint32]int64 { return q.lastResult }

// ensureTables sizes the worker-local tables for the planned core
// count once and reuses them across executions — their capacity, a
// function of the group count, is the cache footprint Figure 5 sweeps.
func (q *AggQuery) ensureTables(cores int) {
	groups := int(q.spec.Groups)
	if len(q.locals) != cores {
		q.locals = make([]*exec.AggTable, cores)
		for i := range q.locals {
			q.locals[i] = exec.NewAggTable(q.space, fmt.Sprintf("B.agg.local%d", i), groups)
		}
	}
	if q.global == nil {
		q.global = exec.NewAggTable(q.space, "B.agg.global", groups)
	}
}

// PrewarmRegions declares the aggregation's steady-state working set:
// the value dictionary and the hash tables.
func (q *AggQuery) PrewarmRegions(cores int) []memory.Region {
	q.ensureTables(cores)
	regions := []memory.Region{q.ValueCol.Dict.Region()}
	for _, lt := range q.locals {
		regions = append(regions, lt.Region())
	}
	regions = append(regions, q.global.Region())
	return regions
}

// Plan builds one execution: a cache-sensitive local aggregation phase
// and a merge phase.
func (q *AggQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	q.ensureTables(cores)
	parts := engine.PartitionRows(q.GroupCol.Rows(), cores)
	locals := make([]exec.Kernel, 0, len(parts))
	for i, p := range parts {
		q.locals[i].Clear()
		k, err := exec.NewAggLocal(q.GroupCol, q.ValueCol, p[0], p[1], q.locals[i])
		if err != nil {
			return nil, err
		}
		locals = append(locals, k)
	}
	// A non-empty global table is the previous execution's completed
	// result; snapshot it before clearing for the next run.
	if q.global.Len() > 0 {
		q.lastResult = make(map[uint32]int64, q.global.Len())
		q.global.Each(func(k uint32, v int64) { q.lastResult[k] = v })
	}
	q.global.Clear()
	// Parallel merge: each worker folds its own local table into the
	// shared global table (virtual-time execution serialises the
	// updates deterministically).
	merges := make([]exec.Kernel, 0, len(parts))
	for i := range parts {
		merges = append(merges, exec.NewAggMerge([]*exec.AggTable{q.locals[i]}, q.global))
	}
	return []engine.Phase{
		{
			Name:      "aggregate-local",
			CUID:      core.Sensitive,
			Kernels:   locals,
			CountRows: true,
		},
		{
			Name:    "aggregate-merge",
			CUID:    core.Sensitive,
			Kernels: merges,
			// The merge kernels all fold into the shared global table,
			// whose probe chains are insertion-order sensitive; parallel
			// runs must interleave them in virtual-time order.
			Serial: true,
		},
	}, nil
}

// Q3Spec describes the foreign-key join data set. Keys is the primary
// key cardinality N (bit vector of N bits); ProbeRows foreign keys are
// scanned per execution. BuildRows primary-key rows are scanned per
// execution to maintain the paper's build:probe work ratio N : 10^9
// under sampling (PaperProbeRows rescales that ratio; it defaults to
// 10^9).
type Q3Spec struct {
	ProbeRows      int
	Keys           int64
	PaperKeys      int64 // unscaled N for the work ratio; defaults to Keys
	PaperProbeRows int64 // defaults to 1e9
}

// BuildRowsPerExec computes the sampled build-side rows.
func (s Q3Spec) BuildRowsPerExec() int {
	paperKeys := s.PaperKeys
	if paperKeys == 0 {
		paperKeys = s.Keys
	}
	paperProbe := s.PaperProbeRows
	if paperProbe == 0 {
		paperProbe = 1_000_000_000
	}
	b := int(float64(s.ProbeRows) * float64(paperKeys) / float64(paperProbe))
	if b < 1 {
		b = 1
	}
	return b
}

// JoinQuery is Query 3: SELECT COUNT(*) FROM R, S WHERE R.P = S.F,
// executed as a bit-vector build over R's primary keys followed by a
// probe scan over S's foreign keys.
type JoinQuery struct {
	Label string
	PKCol *column.Column
	FKCol *column.Column
	BV    *exec.BitVector
	spec  Q3Spec
}

// NewQ3 generates the data set and returns the query. The bit vector
// is fully populated at load time (every key 1..N exists in R); each
// execution re-builds a ratio-preserving sample of it and probes all
// foreign keys.
func NewQ3(space *memory.Space, rng *rand.Rand, spec Q3Spec) (*JoinQuery, error) {
	if spec.ProbeRows <= 0 || spec.Keys <= 0 {
		return nil, fmt.Errorf("workload: bad Q3 spec %+v", spec)
	}
	buildRows := spec.BuildRowsPerExec()
	pkVals, err := DistinctInts(rng, buildRows, 1, spec.Keys)
	if err != nil {
		// More build rows than keys (tiny scales): fall back to the
		// full key set shuffled.
		pkVals, err = DistinctInts(rng, int(spec.Keys), 1, spec.Keys)
		if err != nil {
			return nil, err
		}
	}
	pkCol, err := column.EncodeDense(space, "R.P", pkVals, 1, spec.Keys, column.DefaultEntrySize)
	if err != nil {
		return nil, err
	}
	fkCol, err := EncodeUniformDense(space, "S.F", rng, spec.ProbeRows, 1, spec.Keys)
	if err != nil {
		return nil, err
	}
	bv, err := exec.NewBitVector(space, "R.P.bv", 1, uint64(spec.Keys))
	if err != nil {
		return nil, err
	}
	bv.SetAll()
	return &JoinQuery{Label: "Q3(join)", PKCol: pkCol, FKCol: fkCol, BV: bv, spec: spec}, nil
}

// Name identifies the query in results.
func (q *JoinQuery) Name() string { return q.Label }

// Spec returns the data-set parameters.
func (q *JoinQuery) Spec() Q3Spec { return q.spec }

// Footprint reports the bit-vector size hint the policy's Depends
// heuristic consumes.
func (q *JoinQuery) Footprint() core.Footprint {
	return core.Footprint{BitVectorBytes: q.BV.Bytes()}
}

// PrewarmRegions declares the join's steady-state working set: the bit
// vector.
func (q *JoinQuery) PrewarmRegions(cores int) []memory.Region {
	return []memory.Region{q.BV.Region()}
}

// Plan builds one execution: build then probe, both under the Depends
// identifier with the bit-vector footprint hint.
func (q *JoinQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	fp := q.Footprint()
	buildParts := engine.PartitionRows(q.PKCol.Rows(), cores)
	builds := make([]exec.Kernel, 0, len(buildParts))
	for _, p := range buildParts {
		k, err := exec.NewJoinBuild(q.PKCol, p[0], p[1], q.BV)
		if err != nil {
			return nil, err
		}
		builds = append(builds, k)
	}
	probeParts := engine.PartitionRows(q.FKCol.Rows(), cores)
	probes := make([]exec.Kernel, 0, len(probeParts))
	for _, p := range probeParts {
		k, err := exec.NewJoinProbe(q.FKCol, p[0], p[1], q.BV)
		if err != nil {
			return nil, err
		}
		probes = append(probes, k)
	}
	return []engine.Phase{
		{
			Name:      "join-build",
			CUID:      core.Depends,
			Footprint: fp,
			Kernels:   builds,
			CountRows: true,
		},
		{
			Name:      "join-probe",
			CUID:      core.Depends,
			Footprint: fp,
			Kernels:   probes,
			CountRows: true,
		},
	}, nil
}
