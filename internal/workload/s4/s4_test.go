package s4

import (
	"math/rand"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	space := memory.NewSpace()
	tab, err := Load(space, rand.New(rand.NewSource(1)), Spec{Rows: 50_000, Scale: 64, RowsPerDocument: 20})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestLoadGeometry(t *testing.T) {
	tab := testTable(t)
	if len(tab.Big) != 13 {
		t.Errorf("big columns = %d, want 13", len(tab.Big))
	}
	if len(tab.Small) != 6 {
		t.Errorf("small columns = %d, want 6", len(tab.Small))
	}
	if len(tab.Residual) != 4 {
		t.Errorf("residual key columns = %d, want 4", len(tab.Residual))
	}
	if tab.Docs() != 2500 {
		t.Errorf("docs = %d, want 50000/20", tab.Docs())
	}
	// Big dictionaries are bigger than small ones, and sorted
	// descending.
	if DictionaryBytes(tab.Big) <= DictionaryBytes(tab.Small) {
		t.Error("big projection set not bigger than small one")
	}
	for i := 1; i < len(tab.Big); i++ {
		if tab.Big[i].Dict.Bytes() > tab.Big[i-1].Dict.Bytes() {
			t.Error("big dictionaries not descending")
			break
		}
	}
}

func TestLoadValidation(t *testing.T) {
	space := memory.NewSpace()
	if _, err := Load(space, rand.New(rand.NewSource(1)), Spec{}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestResidualConsistency(t *testing.T) {
	tab := testTable(t)
	// Every row of one document carries that document's derived
	// residual keys — the property the lookup's verification relies on.
	rows := tab.Index.Lookup(7)
	if len(rows) == 0 {
		t.Fatal("document 7 has no rows")
	}
	want := residualOf(7)
	for _, r := range rows {
		for k, col := range tab.Residual {
			if got := col.Value(int(r)); got != want[k] {
				t.Fatalf("row %d residual %d = %d, want %d", r, k, got, want[k])
			}
		}
	}
}

func TestResidualOfDeterministicAndInCard(t *testing.T) {
	for doc := int64(1); doc < 500; doc++ {
		a := residualOf(doc)
		b := residualOf(doc)
		for k := range a {
			if a[k] != b[k] {
				t.Fatal("residualOf not deterministic")
			}
			if a[k] < 1 || a[k] > residualCards[k] {
				t.Fatalf("residual %d = %d outside card %d", k, a[k], residualCards[k])
			}
		}
	}
}

func TestOLTPQueryFindsDocumentRows(t *testing.T) {
	tab := testTable(t)
	q, err := NewOLTPQuery(tab, tab.Big[:3])
	if err != nil {
		t.Fatal(err)
	}
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 2
	m, _ := cachesim.New(cfg)
	ctx := &exec.Ctx{M: m, Core: 0}

	rng := rand.New(rand.NewSource(2))
	phases, err := q.Plan(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || len(phases[0].Kernels) != 1 {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].CUID != core.Sensitive {
		t.Error("OLTP query must be Sensitive (dedicated pool keeps the full cache)")
	}
	k := phases[0].Kernels[0].(*exec.PKLookupProject)
	exec.Drive(ctx, k, 64)
	rows := k.Rows()
	if len(rows) == 0 {
		t.Fatal("lookup found no rows")
	}
	// All returned rows hold the looked-up document.
	for _, r := range rows {
		if got := tab.DocKey.Value(int(r)); got != k.IndexKey {
			t.Fatalf("row %d holds doc %d, want %d", r, got, k.IndexKey)
		}
	}
	// All rows of that document were found.
	if want := tab.Index.Lookup(k.IndexKey); len(want) != len(rows) {
		t.Errorf("found %d rows, document has %d", len(rows), len(want))
	}
	if k.Projected != int64(len(rows)*3) {
		t.Errorf("Projected = %d, want rows×3", k.Projected)
	}
}

func TestOLTPQueryValidation(t *testing.T) {
	tab := testTable(t)
	if _, err := NewOLTPQuery(tab, nil); err == nil {
		t.Error("empty projection accepted")
	}
}

func TestPrewarmRegions(t *testing.T) {
	tab := testTable(t)
	q, _ := NewOLTPQuery(tab, tab.Big)
	regions := q.PrewarmRegions(1)
	// Only the dictionaries: the index is uncacheable by design.
	if len(regions) != len(tab.Big) {
		t.Errorf("prewarm regions = %d, want 13 dictionaries", len(regions))
	}
	for _, r := range regions {
		if r.Size == tab.Index.Region().Size && r.Base == tab.Index.Region().Base {
			t.Error("index must not be prewarmed")
		}
	}
}

func TestOLTPRunsOnEngine(t *testing.T) {
	tab := testTable(t)
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 2
	m, _ := cachesim.New(cfg)
	e, _ := engine.New(m, core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways))
	q, _ := NewOLTPQuery(tab, tab.Big[:6])
	res, err := e.Run([]engine.StreamSpec{{Query: q, Cores: []int{0}}},
		engine.RunOptions{Duration: 0.002, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Executions == 0 {
		t.Error("no OLTP executions completed")
	}
}
