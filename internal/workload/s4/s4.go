// Package s4 models the S/4HANA workload of Sections VI-A and VI-E:
// the ACDOCA "Universal Journal Entry Line Items" table — a wide table
// whose NVARCHAR/DECIMAL columns carry large dictionaries — and the
// customer system's most frequent OLTP query, which probes the
// primary-key columns' inverted indexes and projects the selected rows
// through the dictionaries of 13 (or 6) columns.
//
// The real table has 336 attributes and 151 million rows; the model
// materialises the columns the query touches (five key columns, 13
// big-dictionary and 6 smaller-dictionary projection columns) at a
// sampled row count, with dictionary sizes scaled like the machine's
// caches. What Figures 1 and 12 need preserved is the ratio between
// the projection columns' aggregate dictionary footprint and the LLC.
package s4

import (
	"fmt"
	"math/rand"

	"cachepart/internal/column"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
)

// Spec configures the ACDOCA model.
type Spec struct {
	// Rows is the sampled row count.
	Rows int
	// Scale divides the nominal dictionary sizes, matching the
	// machine scale.
	Scale int
	// RowsPerDocument is the average number of journal line items per
	// document, which sets the OLTP query's result size.
	RowsPerDocument int
}

// bigDictMiB are the nominal dictionary sizes of the 13 biggest
// NVARCHAR columns (Figure 12a's projection set), ~36 MiB in total —
// an OLTP working set comparable to the 55 MiB LLC.
var bigDictMiB = []float64{8, 6, 5, 4, 3, 2.5, 2, 1.5, 1.2, 1, 0.8, 0.6, 0.4}

// smallDictMiB are the nominal sizes for the 6 smaller-dictionary
// columns of Figure 12b, ~8 MiB in total.
var smallDictMiB = []float64{2, 1.5, 1.25, 1, 0.75, 0.5}

// nvarcharEntry is the simulated bytes per dictionary entry of an
// NVARCHAR(…) column.
const nvarcharEntry = 64

// Table is the generated ACDOCA model.
type Table struct {
	Spec Spec

	// DocKey is the high-cardinality key column (document number);
	// the OLTP query's index probe runs against it.
	DocKey *column.Column
	// Residual are the four remaining primary-key columns (client,
	// ledger, company code, fiscal year); their values are functions
	// of the document so residual verification matches.
	Residual []*column.Column
	// Index is the inverted index over DocKey.
	Index *column.InvertedIndex
	// Big and Small are the projection column sets.
	Big   []*column.Column
	Small []*column.Column

	docs int64
}

// residualCards are the cardinalities of the residual key columns.
var residualCards = []int64{4, 8, 16, 8}

// residualOf derives the residual key values of a document. Mixing
// with distinct multipliers keeps the columns decorrelated.
func residualOf(doc int64) []int64 {
	out := make([]int64, len(residualCards))
	h := uint64(doc) * 0x9e3779b97f4a7c15
	for i, card := range residualCards {
		out[i] = 1 + int64(h%uint64(card))
		h = h>>8 ^ h*0x100000001b3
	}
	return out
}

// Load generates the table.
func Load(space *memory.Space, rng *rand.Rand, spec Spec) (*Table, error) {
	if spec.Rows <= 0 {
		return nil, fmt.Errorf("s4: rows %d", spec.Rows)
	}
	if spec.Scale <= 0 {
		spec.Scale = 1
	}
	if spec.RowsPerDocument <= 0 {
		spec.RowsPerDocument = 24
	}
	t := &Table{Spec: spec}
	t.docs = int64(spec.Rows / spec.RowsPerDocument)
	if t.docs < 1 {
		t.docs = 1
	}

	// Assign every row a document, then derive the residual keys so
	// that all rows of one document agree on them.
	docOf := make([]int64, spec.Rows)
	for i := range docOf {
		docOf[i] = 1 + rng.Int63n(t.docs)
	}
	var err error
	t.DocKey, err = encodeInts(space, "acdoca.belnr", docOf, 1, t.docs, column.DefaultEntrySize)
	if err != nil {
		return nil, err
	}
	names := []string{"acdoca.rclnt", "acdoca.rldnr", "acdoca.rbukrs", "acdoca.gjahr"}
	for k, card := range residualCards {
		vals := make([]int64, spec.Rows)
		for i, d := range docOf {
			vals[i] = residualOf(d)[k]
		}
		col, err := encodeInts(space, names[k], vals, 1, card, column.DefaultEntrySize)
		if err != nil {
			return nil, err
		}
		t.Residual = append(t.Residual, col)
	}
	t.Index, err = column.BuildInvertedIndex(space, t.DocKey)
	if err != nil {
		return nil, err
	}

	t.Big, err = buildDictColumns(space, rng, "acdoca.big", bigDictMiB, spec)
	if err != nil {
		return nil, err
	}
	t.Small, err = buildDictColumns(space, rng, "acdoca.small", smallDictMiB, spec)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func buildDictColumns(space *memory.Space, rng *rand.Rand, prefix string, sizesMiB []float64, spec Spec) ([]*column.Column, error) {
	out := make([]*column.Column, 0, len(sizesMiB))
	for i, mib := range sizesMiB {
		distinct := int64(mib*1024*1024/nvarcharEntry) / int64(spec.Scale)
		if distinct < 2 {
			distinct = 2
		}
		dict, err := column.NewDenseDictionary(space,
			fmt.Sprintf("%s%d", prefix, i), 1, distinct, nvarcharEntry)
		if err != nil {
			return nil, err
		}
		codes, err := column.NewPackedVector(space,
			fmt.Sprintf("%s%d", prefix, i), spec.Rows, dict.CodeBits())
		if err != nil {
			return nil, err
		}
		for r := 0; r < spec.Rows; r++ {
			codes.Set(r, uint32(rng.Int63n(distinct)))
		}
		out = append(out, &column.Column{
			Name:  fmt.Sprintf("%s%d", prefix, i),
			Dict:  dict,
			Codes: codes,
		})
	}
	return out, nil
}

func encodeInts(space *memory.Space, name string, vals []int64, lo, hi int64, entry uint64) (*column.Column, error) {
	return column.EncodeDense(space, name, vals, lo, hi, entry)
}

// Docs reports the number of distinct documents.
func (t *Table) Docs() int64 { return t.docs }

// DictionaryBytes reports the aggregate simulated dictionary size of a
// projection set.
func DictionaryBytes(cols []*column.Column) uint64 {
	var total uint64
	for _, c := range cols {
		total += c.Dict.Bytes()
	}
	return total
}

// OLTPQuery is the most frequent OLTP query of the customer system:
// look up one document by its full primary key and project its line
// items to a set of columns.
type OLTPQuery struct {
	label   string
	t       *Table
	project []*column.Column
}

// NewOLTPQuery builds the query projecting the given columns.
// Figure 12a projects the 13 big-dictionary columns
// (t.Big), Figure 12b the 6 smaller ones (t.Small).
func NewOLTPQuery(t *Table, project []*column.Column) (*OLTPQuery, error) {
	if len(project) == 0 {
		return nil, fmt.Errorf("s4: no projection columns")
	}
	return &OLTPQuery{
		label:   fmt.Sprintf("OLTP(%d cols)", len(project)),
		t:       t,
		project: project,
	}, nil
}

// Name identifies the query in results.
func (q *OLTPQuery) Name() string { return q.label }

// Project exposes the projection set.
func (q *OLTPQuery) Project() []*column.Column { return q.project }

// PrewarmRegions declares the OLTP query's cacheable steady-state
// working set: the projected columns' dictionaries — exactly what a
// co-running scan evicts. The inverted index is deliberately absent:
// like the paper's 151-million-row index it is far larger than the
// LLC, so its probes miss regardless of partitioning.
func (q *OLTPQuery) PrewarmRegions(cores int) []memory.Region {
	regions := make([]memory.Region, 0, len(q.project))
	for _, c := range q.project {
		regions = append(regions, c.Dict.Region())
	}
	return regions
}

// StatementOverheadCycles is the fixed end-to-end cost of one OLTP
// statement outside the storage operators (parsing, plan cache,
// session, result transfer) — a few microseconds, as for a prepared
// single-row statement on the paper's system.
const StatementOverheadCycles = 10_000

// Plan builds one execution: a single-threaded primary-key lookup and
// projection. OLTP statements run in the engine's dedicated thread
// pool with access to the entire cache (Section V-C), hence the
// Sensitive identifier.
func (q *OLTPQuery) Plan(cores int, rng *rand.Rand) ([]engine.Phase, error) {
	doc := 1 + rng.Int63n(q.t.docs)
	k, err := exec.NewPKLookupProject(q.t.Index, doc, q.t.Residual, residualOf(doc), q.project)
	if err != nil {
		return nil, err
	}
	k.OverheadCycles = StatementOverheadCycles
	return []engine.Phase{{
		Name:      "pk-lookup-project",
		CUID:      core.Sensitive,
		Kernels:   []exec.Kernel{k},
		CountRows: true,
	}}, nil
}
