package workload

import (
	"math/rand"
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/memory"
)

func testRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestUniformInts(t *testing.T) {
	vals := UniformInts(testRng(), 10_000, 5, 9)
	seen := map[int64]bool{}
	for _, v := range vals {
		if v < 5 || v > 9 {
			t.Fatalf("value %d out of [5,9]", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("only %d distinct values", len(seen))
	}
}

func TestDistinctInts(t *testing.T) {
	vals, err := DistinctInts(testRng(), 100, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, v := range vals {
		if v < 1 || v > 1000 {
			t.Fatalf("value %d out of domain", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	// Dense fallback path.
	all, err := DistinctInts(testRng(), 10, 1, 10)
	if err != nil || len(all) != 10 {
		t.Fatalf("dense sample: %v, %v", all, err)
	}
	// Over-ask.
	if _, err := DistinctInts(testRng(), 11, 1, 10); err == nil {
		t.Error("oversized sample accepted")
	}
}

func TestZipfInts(t *testing.T) {
	vals, err := ZipfInts(testRng(), 50_000, 1, 1000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, v := range vals {
		if v < 1 || v > 1000 {
			t.Fatalf("value %d out of domain", v)
		}
		counts[v]++
	}
	// Skew: the most frequent value dominates a uniform share by far.
	if counts[1] < 10*len(vals)/1000 {
		t.Errorf("value 1 occurs %d times — not Zipf-skewed", counts[1])
	}
	if _, err := ZipfInts(testRng(), 10, 5, 4, 1.5); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := ZipfInts(testRng(), 10, 1, 10, 1.0); err == nil {
		t.Error("exponent 1 accepted")
	}
}

func TestEncodeZipfDense(t *testing.T) {
	space := memory.NewSpace()
	col, err := EncodeZipfDense(space, "z", testRng(), 5000, 10, 100, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < col.Rows(); i += 101 {
		if v := col.Value(i); v < 10 || v > 100 {
			t.Fatalf("value %d out of domain", v)
		}
	}
}

func TestEncodeUniformDenseRoundTrip(t *testing.T) {
	space := memory.NewSpace()
	col, err := EncodeUniformDense(space, "c", testRng(), 10_000, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < col.Rows(); i++ {
		v := col.Value(i)
		if v < 10 || v > 50 {
			t.Fatalf("row %d decodes to %d", i, v)
		}
	}
}

func TestQ1SpecAndPlan(t *testing.T) {
	space := memory.NewSpace()
	q, err := NewQ1(space, testRng(), Q1Spec{Rows: 10_000, Distinct: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() == "" || q.Spec().Rows != 10_000 {
		t.Error("spec lost")
	}
	phases, err := q.Plan(4, testRng())
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || len(phases[0].Kernels) != 4 {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].CUID != core.Polluting {
		t.Errorf("scan CUID = %v, want Polluting", phases[0].CUID)
	}
	if !phases[0].CountRows {
		t.Error("scan rows must count")
	}
	if _, err := NewQ1(space, testRng(), Q1Spec{}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestQ2PlanAndTables(t *testing.T) {
	space := memory.NewSpace()
	q, err := NewQ2(space, testRng(), Q2Spec{Rows: 10_000, DistinctV: 1000, Groups: 50})
	if err != nil {
		t.Fatal(err)
	}
	phases, err := q.Plan(4, testRng())
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("%d phases, want 2 (local+merge)", len(phases))
	}
	if phases[0].CUID != core.Sensitive || phases[1].CUID != core.Sensitive {
		t.Error("aggregation must be Sensitive")
	}
	if !phases[0].CountRows || phases[1].CountRows {
		t.Error("only the local phase counts rows")
	}
	if len(phases[1].Kernels) != 4 {
		t.Errorf("merge kernels = %d, want one per worker", len(phases[1].Kernels))
	}
	// Replanning with the same core count reuses the tables.
	regions := len(space.Regions())
	if _, err := q.Plan(4, testRng()); err != nil {
		t.Fatal(err)
	}
	if got := len(space.Regions()); got != regions {
		t.Errorf("replanning allocated %d new regions", got-regions)
	}
	// Prewarm regions include dictionary and tables.
	pw := q.PrewarmRegions(4)
	if len(pw) != 1+4+1 {
		t.Errorf("prewarm regions = %d, want dict+4 locals+global", len(pw))
	}
	if _, err := NewQ2(space, testRng(), Q2Spec{Rows: 1}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestQ3BuildRatio(t *testing.T) {
	// The paper's build:probe ratio N : 1e9 is preserved under
	// sampling.
	s := Q3Spec{ProbeRows: 1_000_000, Keys: 12_500_000, PaperKeys: 100_000_000}
	if got := s.BuildRowsPerExec(); got != 100_000 {
		t.Errorf("build rows = %d, want 1e5 (1e6 × 1e8/1e9)", got)
	}
	tiny := Q3Spec{ProbeRows: 100, Keys: 100} // defaults: PaperKeys=Keys, probe=1e9
	if got := tiny.BuildRowsPerExec(); got != 1 {
		t.Errorf("tiny build rows = %d, want clamp to 1", got)
	}
}

func TestQ3PlanAndFootprint(t *testing.T) {
	space := memory.NewSpace()
	q, err := NewQ3(space, testRng(), Q3Spec{ProbeRows: 10_000, Keys: 1 << 16, PaperKeys: 1 << 16, PaperProbeRows: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	// Bit vector fully populated at load.
	if got := q.BV.PopCount(); got != 1<<16 {
		t.Errorf("bit vector has %d bits, want %d", got, 1<<16)
	}
	if q.Footprint().BitVectorBytes != q.BV.Bytes() {
		t.Error("footprint mismatch")
	}
	phases, err := q.Plan(2, testRng())
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("%d phases, want build+probe", len(phases))
	}
	for _, ph := range phases {
		if ph.CUID != core.Depends {
			t.Errorf("phase %q CUID = %v, want Depends", ph.Name, ph.CUID)
		}
		if ph.Footprint.BitVectorBytes == 0 {
			t.Errorf("phase %q missing footprint hint", ph.Name)
		}
		if !ph.CountRows {
			t.Errorf("phase %q rows must count", ph.Name)
		}
	}
	if _, err := NewQ3(space, testRng(), Q3Spec{}); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestMicroQueriesRunOnEngine executes each micro query end to end on
// a small machine and verifies progress and determinism.
func TestMicroQueriesRunOnEngine(t *testing.T) {
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 4
	run := func() []engine.StreamResult {
		m, err := cachesim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pol := core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways)
		e, err := engine.New(m, pol)
		if err != nil {
			t.Fatal(err)
		}
		space := memory.NewSpace()
		rng := testRng()
		q1, err := NewQ1(space, rng, Q1Spec{Rows: 200_000, Distinct: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		q2, err := NewQ2(space, rng, Q2Spec{Rows: 50_000, DistinctV: 10_000, Groups: 100})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run([]engine.StreamSpec{
			{Query: q1, Cores: []int{0, 1}},
			{Query: q2, Cores: []int{2, 3}},
		}, engine.RunOptions{Duration: 0.0005, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a[0].Rows == 0 || a[1].Rows == 0 {
		t.Fatalf("no progress: %+v", a)
	}
	b := run()
	for i := range a {
		if a[i].Rows != b[i].Rows {
			t.Errorf("stream %d non-deterministic: %d vs %d", i, a[i].Rows, b[i].Rows)
		}
	}
}

// TestQ2ResultCorrectUnderEngine verifies the global aggregate is the
// true MAX per group after an engine-driven execution.
func TestQ2ResultCorrectUnderEngine(t *testing.T) {
	cfg := cachesim.DefaultConfig().Scaled(64)
	cfg.Cores = 4
	m, _ := cachesim.New(cfg)
	e, _ := engine.New(m, core.DefaultPolicy(cfg.LLC.Size, cfg.LLC.Ways))
	space := memory.NewSpace()
	rng := testRng()
	q2, err := NewQ2(space, rng, Q2Spec{Rows: 30_000, DistinctV: 5_000, Groups: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Long enough for at least one complete execution.
	if _, err := e.Run([]engine.StreamSpec{{Query: q2, Cores: []int{0, 1, 2, 3}}},
		engine.RunOptions{Duration: 0.01, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	want := map[uint32]int64{}
	for i := 0; i < q2.GroupCol.Rows(); i++ {
		g := q2.GroupCol.Codes.Get(i)
		v := q2.ValueCol.Value(i)
		if cur, ok := want[g]; !ok || v > cur {
			want[g] = v
		}
	}
	got := q2.LastResult()
	if len(got) != len(want) {
		t.Fatalf("result groups = %d, want %d", len(got), len(want))
	}
	for g, wv := range want {
		if v, ok := got[g]; !ok || v != wv {
			t.Errorf("group %d = %d, want %d", g, v, wv)
		}
	}
}
